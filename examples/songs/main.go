// Song year prediction: when input selection can hurt.
//
// Every song yields a training example (no wasted extraction) and the
// learner is a single global ridge regressor evaluated on an iid holdout.
// In that combination any non-uniform sampling — every bandit policy —
// biases the least-squares fit toward the over-sampled clusters, so the
// scan wins: there is nothing to select *for* and a statistical price to
// selecting at all. This is the cautionary boundary of the paper's idea;
// the benchmark suite's song task instead pairs the same corpus with a
// per-class learner (Gaussian naive Bayes + macro-F1), where sampling
// skew cannot bias other classes and finding rare fuzzy genres pays
// (~1.3-1.7x).
//
// Run with:
//
//	go run ./examples/songs [-n 6000]
package main

import (
	"flag"
	"fmt"
	"log"

	"zombie"
)

func main() {
	n := flag.Int("n", 6000, "corpus size (full evaluation uses 20000)")
	flag.Parse()

	gen := zombie.DefaultSongConfig()
	gen.N = *n
	inputs, err := zombie.GenerateSongs(gen, zombie.NewRNG(20))
	if err != nil {
		log.Fatal(err)
	}
	store := zombie.NewMemStore(inputs)

	groups, err := zombie.BuildIndex(store, zombie.IndexKMeansNumeric, 32, 21)
	if err != nil {
		log.Fatal(err)
	}

	feature := zombie.NewSongFeature(1, gen)
	task, err := zombie.NewTask("songs", store, feature,
		func(f zombie.FeatureFunc) zombie.Model { return zombie.NewRidgeClosed(f.Dim(), 1.0) },
		zombie.MetricNegRMSE, 0, zombie.CostModel{}, zombie.TaskOptions{}, zombie.NewRNG(22))
	if err != nil {
		log.Fatal(err)
	}

	// Scan reference.
	ref, err := zombie.NewEngine(zombie.Config{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	scan, err := ref.RunScan(task, true)
	if err != nil {
		log.Fatal(err)
	}
	// Target: RMSE within 5% of the final (quality is -RMSE).
	target := 1.05 * scan.FinalQuality
	scanInputs, _, _ := scan.InputsToQuality(target)
	fmt.Printf("scan: final RMSE %.2f years; within 5%% after %d songs\n\n",
		-scan.FinalQuality, scanInputs)

	fmt.Printf("%-18s %8s %10s %9s\n", "policy", "inputs", "final-rmse", "vs-scan")
	for _, policy := range []string{"eps-greedy:0.1", "eps-greedy:0.2", "ucb1:1", "thompson", "round-robin", "random"} {
		eng, err := zombie.NewEngine(zombie.Config{Seed: 23, Policy: zombie.PolicySpec(policy)})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(task, groups)
		if err != nil {
			log.Fatal(err)
		}
		inputs, _, ok := res.InputsToQuality(target)
		speed := "n/a"
		if ok && inputs > 0 {
			speed = fmt.Sprintf("%.2fx", float64(scanInputs)/float64(inputs))
		}
		fmt.Printf("%-18s %8d %10.2f %9s\n", policy, inputs, -res.FinalQuality, speed)
	}
	fmt.Println("\nevery policy loses here: a global least-squares fit on a bandit-skewed")
	fmt.Println("sample is biased, so uniform sampling is optimal. selection pays only")
	fmt.Println("when usefulness is skewed AND the learner tolerates sampling skew —")
	fmt.Println("see the benchmark suite's macro-F1 song task and the image/wiki tasks.")
}
