// Image tagging: a needle-in-a-haystack detector, Zombie's best case.
//
// Only ~2.5% of the corpus contains the object of interest, and those
// positives cluster visually. The example shows the full Zombie workflow:
// build and persist an index, run with early stopping, inspect which index
// groups the bandit favored, and quantify the speedup against both the
// random scan and the ground-truth oracle skyline. It also demonstrates a
// custom user-written FeatureFunc built on zombie.FuncCore.
//
// Run with:
//
//	go run ./examples/imagetag [-n 8000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"zombie"
)

// brightnessFeature is a user-written feature function: the raw descriptor
// plus a "brightness" aggregate (mean of all dimensions). It shows the
// FeatureFunc surface a Zombie user implements for their own data.
type brightnessFeature struct {
	zombie.FuncCore
	baseDim int
}

func newBrightnessFeature(dim int) *brightnessFeature {
	return &brightnessFeature{
		FuncCore: zombie.FuncCore{FuncName: "brightness-v1", FuncDim: dim + 1, Classes: 2},
		baseDim:  dim,
	}
}

// Extract implements zombie.FeatureFunc.
func (b *brightnessFeature) Extract(in *zombie.Input) (zombie.FeatureResult, error) {
	if in.Kind != zombie.NumericKind || len(in.Values) != b.baseDim {
		return zombie.FeatureResult{}, fmt.Errorf("brightness-v1: bad payload on %s", in.ID)
	}
	vals := make([]float64, 0, b.FuncDim)
	vals = append(vals, in.Values...)
	mean := 0.0
	for _, v := range in.Values {
		mean += v
	}
	vals = append(vals, mean/float64(b.baseDim))
	ex := zombie.Example{Features: zombie.DenseVec(vals), Class: in.Truth.Class}
	return zombie.FeatureResult{Example: ex, Produced: true, Useful: in.Truth.Class == 1}, nil
}

func main() {
	n := flag.Int("n", 8000, "corpus size (full evaluation uses 20000)")
	flag.Parse()

	gen := zombie.DefaultImageConfig()
	gen.N = *n
	inputs, err := zombie.GenerateImages(gen, zombie.NewRNG(30))
	if err != nil {
		log.Fatal(err)
	}
	store := zombie.NewMemStore(inputs)

	// Build the index and persist it, as a long-lived deployment would.
	groups, err := zombie.BuildIndex(store, zombie.IndexKMeansNumeric, 24, 31)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "zombie-imagetag")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	idxPath := filepath.Join(dir, "groups.gob")
	if err := groups.Save(idxPath); err != nil {
		log.Fatal(err)
	}
	groups, err = zombie.LoadGroups(idxPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index persisted and reloaded: %d groups\n", groups.K())

	feature := newBrightnessFeature(gen.Dim)
	task, err := zombie.NewTask("imagetag", store, feature,
		func(f zombie.FeatureFunc) zombie.Model { return zombie.NewGaussianNB(f.Dim(), 2, 1e-3) },
		zombie.MetricF1, 1, zombie.CostModel{}, zombie.TaskOptions{}, zombie.NewRNG(32))
	if err != nil {
		log.Fatal(err)
	}

	eng, err := zombie.NewEngine(zombie.Config{
		Policy:    "eps-greedy:0.1",
		Seed:      33,
		EarlyStop: zombie.EarlyStopConfig{Enabled: true, MinInputs: 400},
	})
	if err != nil {
		log.Fatal(err)
	}

	z, err := eng.Run(task, groups)
	if err != nil {
		log.Fatal(err)
	}
	s, err := eng.RunScan(task, true)
	if err != nil {
		log.Fatal(err)
	}
	o, err := eng.RunOracle(task)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("zombie:", z.Summary())
	fmt.Println("scan:  ", s.Summary())
	fmt.Println("oracle:", o.Summary())

	// Which groups did the bandit favor? The positive-bearing clusters
	// should dominate the pull counts.
	arms := append([]zombie.ArmStat(nil), z.Arms...)
	sort.Slice(arms, func(i, j int) bool { return arms[i].Pulls > arms[j].Pulls })
	fmt.Println("\ntop index groups by pulls:")
	for _, a := range arms[:3] {
		fmt.Printf("  group %2d: %4d pulls, mean reward %.3f\n", a.Arm, a.Pulls, a.Mean)
	}
	fmt.Printf("\nzombie found %d useful inputs in %d processed (%.1f%%); scan found %d (%.1f%%)\n",
		z.Useful, z.InputsProcessed, 100*z.UsefulRate(), s.Useful, 100*s.UsefulRate())
}
