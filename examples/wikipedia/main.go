// Wikipedia extraction session: the paper's motivating workload.
//
// An engineer iterates on feature code for an information-extraction task
// over a wiki-like crawl. Each iteration re-evaluates the corpus; the
// example replays the same 8-version session twice — under the status-quo
// full random scan and under Zombie (bandit selection + early stopping) —
// and prints the per-iteration and total engineer wait, reproducing the
// shape of the paper's 8-hours-to-5-hours claim.
//
// Run with:
//
//	go run ./examples/wikipedia [-n 6000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"zombie"
)

func main() {
	n := flag.Int("n", 6000, "corpus size (full evaluation uses 20000)")
	flag.Parse()

	gen := zombie.DefaultWikiConfig()
	gen.N = *n
	inputs, err := zombie.GenerateWiki(gen, zombie.NewRNG(10))
	if err != nil {
		log.Fatal(err)
	}
	store := zombie.NewMemStore(inputs)

	// Index once; every iteration of the session reuses it.
	start := time.Now()
	groups, err := zombie.BuildIndex(store, zombie.IndexKMeansText, 32, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d pages into %d groups in %s\n\n",
		groups.Len(), groups.K(), time.Since(start).Round(time.Millisecond))

	// The session: eight successive versions of the extraction feature
	// code (wider hash spaces, marker boosts, bigrams).
	session := zombie.StandardWikiSession()

	// Each page "costs" 150ms of parsing/extraction; the quality metric is
	// F1 of the extracted entity class on a held-out labeled set.
	task, err := zombie.NewTask("wiki", store, session.Versions[0],
		func(f zombie.FeatureFunc) zombie.Model { return zombie.NewMultinomialNB(f.Dim(), 2, 1) },
		zombie.MetricF1, 1,
		zombie.CostModel{PerInput: 150 * time.Millisecond},
		zombie.TaskOptions{}, zombie.NewRNG(12))
	if err != nil {
		log.Fatal(err)
	}

	eng, err := zombie.NewEngine(zombie.Config{
		Policy: "eps-greedy:0.1",
		Seed:   13,
		EarlyStop: zombie.EarlyStopConfig{
			Enabled:        true,
			Window:         8,
			SlopeThreshold: 0.002,
			Patience:       2,
			MinInputs:      400,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	scan, err := eng.RunSession(session, task, nil, false)
	if err != nil {
		log.Fatal(err)
	}
	zom, err := eng.RunSession(session, task, groups, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %22s %22s\n", "version", "scan (inputs, F1)", "zombie (inputs, F1, stop)")
	for i := range scan.Iterations {
		s := scan.Iterations[i].Run
		z := zom.Iterations[i].Run
		fmt.Printf("%-10s %14d %6.3f %14d %6.3f  %s\n",
			scan.Iterations[i].Version,
			s.InputsProcessed, s.FinalQuality,
			z.InputsProcessed, z.FinalQuality, z.Stop)
	}
	fmt.Println()
	fmt.Printf("scan session:   %s total (%d inputs processed)\n",
		scan.TotalTime().Round(time.Minute), scan.TotalInputs())
	fmt.Printf("zombie session: %s total (%d inputs processed, index %s)\n",
		zom.TotalTime().Round(time.Minute), zom.TotalInputs(), zom.IndexBuild.Round(time.Second))
	fmt.Printf("engineer waits %.1fx less (paper shape: 8h -> 5h)\n",
		float64(scan.TotalTime())/float64(zom.TotalTime()))
}
