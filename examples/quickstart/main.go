// Quickstart: the smallest complete Zombie program.
//
// It generates a needle-in-a-haystack image corpus, builds an index once,
// and then runs the same feature evaluation two ways — as a random scan
// (the status quo) and through Zombie's bandit — printing how much sooner
// Zombie's quality estimate converges.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"zombie"
)

func main() {
	// 1. A corpus of raw inputs. Real deployments read their own data;
	//    here we synthesize 8,000 "images" where only ~2.5% contain the
	//    object we want to detect.
	gen := zombie.DefaultImageConfig()
	gen.N = 8000
	inputs, err := zombie.GenerateImages(gen, zombie.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	store := zombie.NewMemStore(inputs)

	// 2. Offline: build index groups once. They are reused by every
	//    evaluation run of an engineering session.
	groups, err := zombie.BuildIndex(store, zombie.IndexKMeansNumeric, 32, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d groups over %d inputs (%s)\n", groups.K(), groups.Len(), groups.Strategy)

	// 3. The task: feature code + incremental learner + quality metric.
	feature := zombie.NewImageFeature(1, gen)
	task, err := zombie.NewTask("quickstart", store, feature,
		func(f zombie.FeatureFunc) zombie.Model { return zombie.NewGaussianNB(f.Dim(), 2, 1e-3) },
		zombie.MetricF1, 1, zombie.CostModel{}, zombie.TaskOptions{}, zombie.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}

	// 4. One engine, two input orders.
	eng, err := zombie.NewEngine(zombie.Config{Policy: "eps-greedy:0.1", Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	z, err := eng.Run(task, groups)
	if err != nil {
		log.Fatal(err)
	}
	s, err := eng.RunScan(task, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("zombie:", z.Summary())
	fmt.Println("scan:  ", s.Summary())

	target := 0.9 * min(z.FinalQuality, s.FinalQuality)
	zi, _, _ := z.InputsToQuality(target)
	si, _, _ := s.InputsToQuality(target)
	fmt.Printf("inputs to F1 >= %.3f: zombie=%d scan=%d (%.1fx fewer)\n",
		target, zi, si, float64(si)/float64(max(zi, 1)))
}
