package zombie

// End-to-end integration test: the full production story through the
// public API only — generate a corpus, persist it as JSONL, reopen it
// lazily from disk, build and persist an index, replay a multi-version
// engineering session with early stopping, and check the economics
// (zombie processes less, quality within tolerance, deterministic replay).

import (
	"path/filepath"
	"testing"
	"time"

	"zombie/internal/corpus"
)

func TestEndToEndEngineeringWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()

	// 1. Generate and persist the corpus (what zombie-datagen does).
	gen := DefaultWikiConfig()
	gen.N = 2500
	inputs, err := GenerateWiki(gen, NewRNG(7000))
	if err != nil {
		t.Fatal(err)
	}
	corpusPath := filepath.Join(dir, "crawl.jsonl")
	if err := WriteJSONL(corpusPath, inputs); err != nil {
		t.Fatal(err)
	}

	// 2. Reopen lazily from disk.
	store, err := OpenDiskStore(corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != gen.N {
		t.Fatalf("disk store lost inputs: %d", store.Len())
	}

	// 3. Build the index once and persist it.
	groups, err := BuildIndex(store, IndexKMeansText, 16, 7001)
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(dir, "groups.gob")
	if err := groups.Save(indexPath); err != nil {
		t.Fatal(err)
	}
	groups, err = LoadGroups(indexPath)
	if err != nil {
		t.Fatal(err)
	}

	// 4. An engineering session: three feature-code versions.
	session, err := NewSession("it", 5,
		NewWikiFeature(4), NewWikiFeature(6), NewWikiFeature(8))
	if err != nil {
		t.Fatal(err)
	}
	task, err := NewTask("wiki", store, session.Versions[0],
		func(f FeatureFunc) Model { return NewMultinomialNB(f.Dim(), 2, 1) },
		MetricF1, 1,
		CostModel{PerInput: 100 * time.Millisecond},
		TaskOptions{}, NewRNG(7002))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Policy:    "eps-greedy:0.1",
		Seed:      7003,
		EarlyStop: EarlyStopConfig{Enabled: true, MinInputs: 300},
	})
	if err != nil {
		t.Fatal(err)
	}

	zom, err := eng.RunSession(session, task, groups, true)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := eng.RunSession(session, task, nil, false)
	if err != nil {
		t.Fatal(err)
	}

	// 5. Economics: zombie processes a fraction of the inputs and waits
	// less; per-version quality stays within tolerance of the full scan.
	if zom.TotalInputs() >= scan.TotalInputs()/2 {
		t.Fatalf("zombie processed %d inputs vs scan %d; expected a large cut",
			zom.TotalInputs(), scan.TotalInputs())
	}
	if zom.TotalTime() >= scan.TotalTime() {
		t.Fatalf("zombie total %v vs scan %v", zom.TotalTime(), scan.TotalTime())
	}
	for i := range zom.Iterations {
		zq := zom.Iterations[i].Run.FinalQuality
		sq := scan.Iterations[i].Run.FinalQuality
		if sq-zq > 0.2 {
			t.Fatalf("iteration %d: zombie F1 %.3f too far below scan %.3f", i, zq, sq)
		}
	}

	// 6. Determinism: the whole session replays identically.
	again, err := eng.RunSession(session, task, groups, true)
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalInputs() != zom.TotalInputs() || again.ProcessingTime != zom.ProcessingTime {
		t.Fatal("session replay diverged")
	}
	for i := range zom.Iterations {
		if again.Iterations[i].Run.FinalQuality != zom.Iterations[i].Run.FinalQuality {
			t.Fatalf("iteration %d quality diverged on replay", i)
		}
	}

	// 7. The index diagnostic confirms the premise the speedup rests on.
	stats := corpus.ComputeStats(store)
	if stats.RelevantFrac < 0.02 || stats.RelevantFrac > 0.2 {
		t.Fatalf("corpus relevance %.3f outside the skewed regime", stats.RelevantFrac)
	}
}
