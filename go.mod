module zombie

go 1.22
