// Command zombie-bench regenerates the paper's tables and figures (as
// reconstructed in DESIGN.md §4) at configurable scale.
//
// Usage:
//
//	zombie-bench [-exp T2] [-scale 1.0] [-seed 20160516]
//	zombie-bench -exp all -scale 0.25
//	zombie-bench -list
//
// Scale 1.0 builds the full 20k-input corpora per task; smaller scales are
// proportionally faster and preserve the result shapes down to ~0.1.
// Output goes to stdout in the table/series formats recorded in
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zombie/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (T1-T4, F1-F7, or 'all')")
	scale := flag.Float64("scale", 1.0, "corpus scale multiplier (1.0 = 20k inputs per task)")
	seed := flag.Int64("seed", 0, "random seed (0 = default)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Title(id))
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	var err error
	if strings.EqualFold(*exp, "all") {
		err = experiments.RunAll(cfg, os.Stdout)
	} else {
		err = experiments.Run(strings.ToUpper(*exp), cfg, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zombie-bench:", err)
		os.Exit(1)
	}
}
