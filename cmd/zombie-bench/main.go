// Command zombie-bench regenerates the paper's tables and figures (as
// reconstructed in DESIGN.md §4) at configurable scale.
//
// Usage:
//
//	zombie-bench [-exp T2] [-exp T2,F1,D1] [-scale 1.0] [-seed 20160516]
//	zombie-bench -exp all -scale 0.25 -parallel 8
//	zombie-bench -emit-bench BENCH_results.json -parallel 0
//	zombie-bench -cpuprofile cpu.pprof -exp T2
//	zombie-bench -list
//
// Scale 1.0 builds the full 20k-input corpora per task; smaller scales are
// proportionally faster and preserve the result shapes down to ~0.1.
// Output goes to stdout in the table/series formats recorded in
// EXPERIMENTS.md. -parallel runs independent experiment work concurrently;
// the output is byte-identical to -parallel 1 for everything that does not
// print measured wall-clock values (see DESIGN.md §8). -emit-bench
// additionally times every experiment and writes a JSON regression report
// with per-experiment wall seconds and, when -parallel > 1, the
// speedup-vs-sequential baseline. Benches that include C1 also record a
// cache_iteration block: the wall-clock speedup of replaying the composite
// wiki session against a warm extraction cache versus the cold first pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"zombie/internal/experiments"
	"zombie/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment ids, comma-separated (T1-T4, F1-F8, B1, C1, D1, S1, or 'all')")
	scale := flag.Float64("scale", 1.0, "corpus scale multiplier (1.0 = 20k inputs per task)")
	seed := flag.Int64("seed", 0, "random seed (0 = default)")
	par := flag.Int("parallel", 1, "concurrent runs per experiment (0 = GOMAXPROCS; output is byte-identical for any value)")
	emitBench := flag.String("emit-bench", "", "write a JSON timing report (per-experiment wall seconds, speedup vs sequential) to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Title(id))
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Parallel: parallel.Workers(*par)}
	if err := run(cfg, *exp, *emitBench); err != nil {
		fatal(err)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // settle allocations so the heap profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// run dispatches the requested experiments, optionally through the timing
// harness when emitBench names a report path.
func run(cfg experiments.Config, exp, emitBench string) error {
	var ids []string // empty = all, in registry order
	if !strings.EqualFold(exp, "all") {
		for _, id := range strings.Split(exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, strings.ToUpper(id))
			}
		}
	}
	if emitBench == "" {
		if len(ids) == 0 {
			return experiments.RunAll(cfg, os.Stdout)
		}
		for _, id := range ids {
			if err := experiments.Run(id, cfg, os.Stdout); err != nil {
				return err
			}
		}
		return nil
	}
	report, err := experiments.RunBench(cfg, ids, os.Stdout)
	if err != nil {
		return err
	}
	f, err := os.Create(emitBench)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zombie-bench:", err)
	os.Exit(1)
}
