// Command zombie-serve runs the Zombie engine as a long-lived HTTP
// service: engineers register JSONL corpora, submit feature-evaluation
// runs, stream live learning curves over SSE, and cancel runs that are
// clearly not converging — the inner loop as a service rather than a
// one-shot CLI.
//
// Usage:
//
//	zombie-serve -addr :8080 -workers 4
//	zombie-serve -corpus wiki=wiki.jsonl -corpus imgs=images.jsonl
//	zombie-serve -corpus big=crawl.jsonl -stream   # corpora larger than RAM
//
// Then:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/runs -d '{"corpus":"wiki","task":"wiki"}'
//	curl -N 'localhost:8080/runs/r1/curve?follow=1'
//	curl -s -X DELETE localhost:8080/runs/r1
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops, queued
// and running runs drain (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zombie/internal/buildinfo"
	"zombie/internal/fault"
	"zombie/internal/obs"
	"zombie/internal/server"
)

// corpusFlags collects repeated -corpus name=path pairs.
type corpusFlags []string

func (c *corpusFlags) String() string { return strings.Join(*c, ",") }

func (c *corpusFlags) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zombie-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "run worker-pool size")
	queueCap := flag.Int("queue", 64, "max queued runs before submissions get 503")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight runs")
	stream := flag.Bool("stream", false, "open preregistered corpora as streamed DiskStores")
	cacheDir := flag.String("cache-dir", "", "persist the extraction cache to this directory (survives restarts)")
	stateDir := flag.String("state-dir", "", "journal run and session state to this directory; on restart, interrupted runs resume automatically")
	cacheMemMB := flag.Int("cache-mem-mb", 64, "extraction cache in-memory budget in MiB")
	runTimeout := flag.Duration("run-timeout", 0, "default per-run wall-clock deadline, e.g. 10m (0 = none; a run's timeout_ms overrides)")
	maxFailures := flag.Float64("max-failures", 0, "default failure budget: fraction of a run's inputs that may be quarantined before it degrades (0 = engine default 0.5)")
	batch := flag.Int("batch", 0, "default inputs popped per arm pull for runs that do not set batch (0/1 = classic per-step loop; see DESIGN.md §13)")
	distWorkers := flag.String("dist-workers", "", "comma-separated worker base URLs (zombie-serve processes serving /dist/*) that sharded runs execute over, e.g. http://w1:8080,http://w2:8080 (empty = shards run in-process)")
	faultSpec := flag.String("faults", "", "inject deterministic faults into every run, e.g. extract:err=0.01 (chaos deployments)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for -faults decisions")
	logFormat := flag.String("log-format", "text", "structured log format: text or json (stderr)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address, e.g. localhost:6060 (empty = off)")
	version := flag.Bool("version", false, "print version and exit")
	var corpora corpusFlags
	flag.Var(&corpora, "corpus", "preregister a corpus as name=path (repeatable)")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("zombie-serve"))
		return nil
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		return err
	}
	injector, err := fault.Parse(*faultSpec, *faultSeed)
	if err != nil {
		return err
	}
	var workerAddrs []string
	for _, a := range strings.Split(*distWorkers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			workerAddrs = append(workerAddrs, a)
		}
	}
	srv, err := server.New(server.Config{
		Workers:        *workers,
		QueueCap:       *queueCap,
		CacheDir:       *cacheDir,
		StateDir:       *stateDir,
		CacheMemMB:     *cacheMemMB,
		RunTimeout:     *runTimeout,
		MaxFailureFrac: *maxFailures,
		Batch:          *batch,
		Faults:         injector,
		DistWorkers:    workerAddrs,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener so profiling is never
		// exposed on the service port.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "error", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}
	for _, spec := range corpora {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-corpus wants name=path, got %q", spec)
		}
		info, err := srv.Registry().Add(name, path, *stream)
		if err != nil {
			return err
		}
		fmt.Printf("registered corpus %q: %d inputs from %s (stream=%t)\n",
			info.Name, info.Inputs, info.Path, info.Stream)
	}
	// Recovery waits until here: interrupted runs name corpora that only
	// now exist, and re-queuing them earlier would fail each one.
	if runs, versions := srv.Recover(); runs > 0 || versions > 0 {
		fmt.Printf("recovered state from %s: re-queued %d runs, %d session versions\n",
			*stateDir, runs, versions)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("zombie-serve listening on %s (%d workers)\n", *addr, *workers)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Println("shutting down: draining in-flight runs...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so no new work arrives, then drain runs.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Println("drain budget exceeded; in-flight runs were cancelled")
	}
	return nil
}
