// Command zombie-datagen writes the synthetic evaluation corpora to disk
// as JSONL, for use with cmd/zombie and the examples.
//
// Usage:
//
//	zombie-datagen -task wiki  -n 20000 -out wiki.jsonl
//	zombie-datagen -task songs -n 20000 -out songs.jsonl
//	zombie-datagen -task image -n 20000 -out images.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"zombie/internal/corpus"
	"zombie/internal/rng"
)

func main() {
	task := flag.String("task", "wiki", "corpus to generate: wiki, songs, or image")
	n := flag.Int("n", 20000, "number of inputs")
	seed := flag.Int64("seed", 20160516, "random seed")
	out := flag.String("out", "", "output JSONL path (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "zombie-datagen: -out is required")
		os.Exit(2)
	}
	r := rng.New(*seed)
	var (
		inputs []*corpus.Input
		err    error
	)
	switch *task {
	case "wiki":
		cfg := corpus.DefaultWikiConfig()
		cfg.N = *n
		inputs, err = corpus.GenerateWiki(cfg, r)
	case "songs":
		cfg := corpus.DefaultSongConfig()
		cfg.N = *n
		inputs, err = corpus.GenerateSongs(cfg, r)
	case "image":
		cfg := corpus.DefaultImageConfig()
		cfg.N = *n
		inputs, err = corpus.GenerateImages(cfg, r)
	default:
		err = fmt.Errorf("unknown task %q (want wiki, songs, or image)", *task)
	}
	if err == nil {
		err = corpus.WriteJSONL(*out, inputs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zombie-datagen:", err)
		os.Exit(1)
	}
	st := corpus.ComputeStats(corpus.NewMemStore(inputs))
	fmt.Printf("wrote %d %s inputs to %s (%.1f%% relevant, %.0f mean bytes)\n",
		st.Inputs, *task, *out, 100*st.RelevantFrac, st.MeanBytes)
}
