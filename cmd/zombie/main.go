// Command zombie runs one feature-evaluation inner loop over a JSONL
// corpus (see cmd/zombie-datagen) and prints the learning curve and run
// summary. It is the CLI face of the public zombie API.
//
// Usage:
//
//	zombie -corpus wiki.jsonl -task wiki -mode zombie -policy eps-greedy:0.1 -k 32
//	zombie -corpus wiki.jsonl -task wiki -mode scan-random
//	zombie -corpus images.jsonl -task image -mode zombie -early-stop
//	zombie -corpus wiki.jsonl -task wiki -index groups.gob   # reuse a saved index
//	zombie -corpus wiki.jsonl -task wiki -save-index groups.gob
//	zombie -corpus wiki.jsonl -task wiki -session            # full 8-version session
//	zombie -corpus wiki.jsonl -task wiki -recipe rec.json    # declarative feature recipe
//	zombie -corpus big.jsonl -task wiki -stream              # corpus larger than RAM
//	zombie -corpus wiki.jsonl -task wiki -cache-dir .zcache  # warm runs skip extraction
//	zombie -corpus wiki.jsonl -task wiki -shards 4           # sharded workers, same curve
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"zombie/internal/bandit"
	"zombie/internal/buildinfo"
	"zombie/internal/core"
	"zombie/internal/corpus"
	"zombie/internal/dist"
	"zombie/internal/fault"
	"zombie/internal/featcache"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/obs"
	"zombie/internal/otrace"
	"zombie/internal/recipe"
	"zombie/internal/rng"
	"zombie/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zombie:", err)
		os.Exit(1)
	}
}

func run() error {
	corpusPath := flag.String("corpus", "", "JSONL corpus path (required)")
	stream := flag.Bool("stream", false, "read the corpus lazily from disk instead of loading it")
	sessionMode := flag.Bool("session", false, "replay the standard 8-version engineering session (wiki only)")
	recipePath := flag.String("recipe", "", "run a declarative feature recipe (JSON spec, see internal/recipe) instead of the task's default feature")
	taskName := flag.String("task", "wiki", "task: wiki, songs, or image")
	mode := flag.String("mode", "zombie", "mode: zombie, scan-random, scan-sequential, or oracle")
	policy := flag.String("policy", "eps-greedy:0.1", "bandit policy spec")
	k := flag.Int("k", 32, "number of index groups")
	seed := flag.Int64("seed", 1, "random seed")
	maxInputs := flag.Int("max", 0, "input budget (0 = exhaust the pool)")
	batch := flag.Int("batch", 0, "inputs popped per arm pull (0/1 = classic per-step loop; K>1 amortizes selection, evaluation and RPCs — see DESIGN.md §13)")
	maxTime := flag.Duration("max-time", 0, "simulated-time budget, e.g. 20m (0 = none)")
	earlyStop := flag.Bool("early-stop", false, "enable plateau early stopping")
	version := flag.Int("feature-version", 0, "feature-code version (0 = task default)")
	indexPath := flag.String("index", "", "load a saved index instead of building one")
	saveIndex := flag.String("save-index", "", "save the built index to this path")
	curveEvery := flag.Int("curve-every", 0, "print every Nth curve point (0 = last 10)")
	cacheDir := flag.String("cache-dir", "", "persist the extraction cache in this directory (a second run over the same corpus serves extractions from disk)")
	cacheMemMB := flag.Int("cache-mem-mb", 0, "in-memory extraction-cache budget in MiB (0 = caching off unless -cache-dir is set, then 64)")
	faultSpec := flag.String("faults", "", "inject deterministic faults, e.g. extract:err=0.04,panic=0.04;corpus.read:err=0.03 (chaos testing)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for -faults decisions")
	maxFailures := flag.Float64("max-failures", 0, "failure budget: fraction of processed inputs that may be quarantined before the run degrades (0 = engine default 0.5, 1 = never degrade)")
	shards := flag.Int("shards", 0, "run distributed over this many in-process corpus shards (zombie mode; 0 = single-process; the curve is byte-identical either way)")
	traceOut := flag.String("trace-out", "", "record a span trace of the run and write Chrome trace-event JSON to this path (open in about://tracing); also prints trace: cost-attribution lines")
	logFormat := flag.String("log-format", "text", "structured log format: text or json (stderr; stdout stays the diffable curve CSV)")
	versionFlag := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *versionFlag {
		fmt.Println(buildinfo.String("zombie"))
		return nil
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		return err
	}
	if *corpusPath == "" {
		return fmt.Errorf("-corpus is required")
	}
	var store corpus.Store
	if *stream {
		ds, err := corpus.OpenDiskStore(*corpusPath)
		if err != nil {
			return err
		}
		defer ds.Close()
		store = ds
	} else {
		// Tolerant load: the CLI's corpora come from the wild, so a corrupt
		// line or torn tail is reported and skipped, not fatal. The notice
		// goes to stderr to keep stdout's CSV diffable.
		inputs, skips, err := corpus.ReadJSONLTolerant(*corpusPath)
		if err != nil {
			return err
		}
		for _, s := range skips {
			fmt.Fprintf(os.Stderr, "zombie: corpus line %d skipped: %s\n", s.Line, s.Reason)
		}
		store = corpus.NewMemStore(inputs)
	}
	task, grouper, err := workload.Build(*taskName, store, *version, rng.New(*seed).Split("task"))
	if err != nil {
		return err
	}
	if *recipePath != "" {
		if *sessionMode {
			return fmt.Errorf("-recipe and -session are mutually exclusive")
		}
		spec, err := recipe.ParseSpecFile(*recipePath)
		if err != nil {
			return err
		}
		rec, err := spec.Recipe()
		if err != nil {
			return err
		}
		if rec.Feature().NumClasses() != task.Feature.NumClasses() {
			return fmt.Errorf("recipe %s targets %d classes but task %s has %d",
				rec.Name(), rec.Feature().NumClasses(), *taskName, task.Feature.NumClasses())
		}
		// One "recipe:" line per part, filterable like cache:/dist: lines,
		// so scripts diffing curves across recipe edits can strip them.
		for _, p := range rec.Parts() {
			fmt.Printf("recipe: part=%s kind=%s version=%d fingerprint=%s\n",
				p.Name, p.Kind, max(p.Version, 1), rec.PartFingerprints()[p.Name])
		}
		task = task.WithFeature(rec.Feature())
	}

	var groups *index.Groups
	if *mode == "zombie" || *sessionMode {
		if *indexPath != "" {
			groups, err = index.LoadGroups(*indexPath)
		} else {
			start := time.Now()
			groups, err = grouper.Group(store, *k, rng.New(*seed).Split("index"))
			if err == nil {
				fmt.Printf("built %s index: k=%d in %s\n", groups.Strategy, groups.K(), time.Since(start).Round(time.Millisecond))
			}
		}
		if err != nil {
			return err
		}
		if *saveIndex != "" {
			if err := groups.Save(*saveIndex); err != nil {
				return err
			}
			fmt.Printf("saved index to %s\n", *saveIndex)
		}
	}

	cfg := core.Config{
		Policy:         bandit.Spec(*policy),
		Seed:           *seed,
		MaxInputs:      *maxInputs,
		MaxSimTime:     *maxTime,
		MaxFailureFrac: *maxFailures,
		BatchSize:      *batch,
	}
	if *earlyStop {
		cfg.EarlyStop = core.EarlyStopConfig{Enabled: true}
	}
	var tracer *otrace.Tracer
	if *traceOut != "" {
		tracer = otrace.New(fmt.Sprintf("cli-%s-%d", *taskName, *seed), 0)
		cfg.Tracer = tracer
	}
	injector, err := fault.Parse(*faultSpec, *faultSeed)
	if err != nil {
		return err
	}
	cfg.Faults = injector
	var fcache *featcache.Cache
	if *cacheDir != "" || *cacheMemMB > 0 {
		memMB := *cacheMemMB
		if memMB <= 0 {
			memMB = 64
		}
		fcache, err = featcache.Open(featcache.Config{MaxBytes: int64(memMB) << 20, Dir: *cacheDir, Faults: injector}, featurepipe.ResultCodec{})
		if err != nil {
			return err
		}
		defer fcache.Close()
		cfg.Cache = fcache
	}
	eng, err := core.New(cfg)
	if err != nil {
		return err
	}

	if *sessionMode {
		if err := runSession(eng, task, groups); err != nil {
			return err
		}
		printCacheStats(fcache)
		if tracer != nil {
			return writeTrace(*traceOut, tracer)
		}
		return nil
	}

	var res *core.RunResult
	var dres *dist.Result
	switch {
	case *shards > 0:
		if *mode != "zombie" {
			return fmt.Errorf("-shards requires -mode zombie, got %q", *mode)
		}
		// The dist workers own the per-step read + extract work (and the
		// extraction cache, when enabled); the engine's policy, learner, and
		// curve run unchanged coordinator-side, which is why the output below
		// is byte-identical to the single-process run.
		tr := dist.NewLocalTransport(store, *shards, fcache, nil)
		defer tr.Close()
		dres, err = dist.Run(context.Background(), eng, tr, dist.Spec{
			RunID:          "cli",
			Corpus:         *corpusPath,
			Task:           *taskName,
			FeatureVersion: *version,
			Seed:           *seed,
			Shards:         *shards,
			FaultSpec:      *faultSpec,
			FaultSeed:      *faultSeed,
			Tracer:         tracer,
		}, task, groups)
		if err == nil {
			res = dres.RunResult
		}
	default:
		switch *mode {
		case "zombie":
			res, err = eng.Run(task, groups)
		case "scan-random":
			res, err = eng.RunScan(task, true)
		case "scan-sequential":
			res, err = eng.RunScan(task, false)
		case "oracle":
			res, err = eng.RunOracle(task)
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
	}
	if err != nil {
		return err
	}

	// The structured record goes to stderr: wall time and the per-phase
	// breakdown that the diffable stdout CSV deliberately omits.
	p := res.Phases
	logger.Info("run finished",
		"task", res.Task, "strategy", res.Strategy, "stop", res.Stop.String(),
		"inputs", res.InputsProcessed, "quality", res.FinalQuality,
		"wall_ms", res.WallTime.Milliseconds(),
		"phase_coverage", fmt.Sprintf("%.2f", p.Coverage(res.WallTime)),
		"holdout_ms", p.Holdout.Milliseconds(), "select_ms", p.Select.Milliseconds(),
		"read_ms", p.Read.Milliseconds(), "extract_ms", p.Extract.Milliseconds(),
		"train_ms", p.Train.Milliseconds(), "eval_ms", p.Eval.Milliseconds(),
		"cache_lookup_ms", p.CacheLookup.Milliseconds())

	fmt.Println(res.Summary())
	printQuarantine(res)
	fmt.Println("inputs,quality,sim_seconds")
	points := res.Curve
	if *curveEvery > 0 {
		kept := points[:0:0]
		for i, p := range points {
			if i%*curveEvery == 0 || i == len(points)-1 {
				kept = append(kept, p)
			}
		}
		points = kept
	} else if len(points) > 10 {
		points = points[len(points)-10:]
	}
	for _, p := range points {
		fmt.Printf("%d,%.4f,%.1f\n", p.Inputs, p.Quality, p.SimTime.Seconds())
	}
	if res.Arms != nil {
		fmt.Println("arm,pulls,mean_reward")
		for _, a := range res.Arms {
			fmt.Printf("%d,%d,%.4f\n", a.Arm, a.Pulls, a.Mean)
		}
	}
	printCacheStats(fcache)
	printDistStats(dres)
	if tracer != nil {
		return writeTrace(*traceOut, tracer)
	}
	return nil
}

// writeTrace dumps the recorded spans as Chrome trace-event JSON and
// prints the cost-attribution summary on "trace:"-prefixed stdout lines —
// the same filterable-prefix convention as the cache: and dist: lines,
// since tracing must never perturb the diffable curve output.
func writeTrace(path string, tracer *otrace.Tracer) error {
	spans, dropped := tracer.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := otrace.WriteChrome(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	cost := otrace.BuildCost(spans, dropped)
	fmt.Printf("trace: %d spans (%d dropped), wall %.3fs, cpu %.3fs, chrome trace written to %s\n",
		len(spans), dropped, cost.WallSeconds, cost.CPUSeconds, path)
	for _, c := range cost.Cells {
		shard := "-"
		if c.Shard >= 0 {
			shard = strconv.Itoa(c.Shard)
		}
		part := c.Part
		if part == "" {
			part = "-"
		}
		fmt.Printf("trace: phase=%s shard=%s part=%s wall=%.3fs cpu=%.3fs\n",
			c.Phase, shard, part, c.WallSeconds, c.CPUSeconds)
	}
	return nil
}

// printDistStats reports a sharded run's per-worker summary on
// "dist:"-prefixed lines — the same filterable-prefix convention as the
// cache: line, because the lines legitimately differ across shard counts
// while the curve and summary above must not.
func printDistStats(r *dist.Result) {
	if r == nil {
		return
	}
	for _, w := range r.Workers {
		fmt.Printf("dist: transport=%s worker=%d inputs=%d holdout=%d steps=%d cache_hits=%d cache_misses=%d failed_calls=%d retried_calls=%d\n",
			r.Transport, w.Shard, w.Inputs, w.Holdout, w.Steps, w.CacheHits, w.CacheMisses, w.FailedCalls, w.RetriedCalls)
	}
}

// printQuarantine lists the run's quarantined inputs, one per
// "quarantine:"-prefixed line in the deterministic order they were hit —
// same filterable-prefix convention as the cache: line, so chaos scripts
// can both assert on and strip them.
func printQuarantine(res *core.RunResult) {
	for _, q := range res.Quarantined {
		fmt.Printf("quarantine: input=%s site=%s step=%d reason=%q\n",
			q.InputID, q.Site, q.Step, q.Reason)
	}
}

// printCacheStats reports the extraction-cache traffic on its own
// "cache:"-prefixed line, kept out of the curve/arm CSV so scripts
// comparing run output across cache states can filter it out.
func printCacheStats(c *featcache.Cache) {
	if c == nil {
		return
	}
	st := c.Stats()
	fmt.Printf("cache: hits=%d misses=%d disk_hits=%d entries=%d bytes=%d evictions=%d disk_errors=%d demoted=%t\n",
		st.Hits, st.Misses, st.DiskHits, st.Entries, st.Bytes, st.Evictions,
		st.DiskErrors, st.DiskDemoted)
}

// runSession replays the standard wiki engineering session under both the
// scan baseline and zombie, printing the engineer-wait comparison.
func runSession(eng *core.Engine, task *featurepipe.Task, groups *index.Groups) error {
	session := featurepipe.StandardWikiSession()
	if task.Feature.NumClasses() != session.Versions[0].NumClasses() {
		return fmt.Errorf("-session supports the wiki task only")
	}
	scan, err := eng.RunSession(session, task, nil, false)
	if err != nil {
		return err
	}
	zom, err := eng.RunSession(session, task, groups, true)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %12s %8s %14s %8s %s\n", "version", "scan-inputs", "scan-q", "zombie-inputs", "zombie-q", "stop")
	for i := range scan.Iterations {
		s := scan.Iterations[i].Run
		z := zom.Iterations[i].Run
		fmt.Printf("%-10s %12d %8.3f %14d %8.3f %s\n",
			scan.Iterations[i].Version, s.InputsProcessed, s.FinalQuality,
			z.InputsProcessed, z.FinalQuality, z.Stop)
	}
	fmt.Printf("scan total %s | zombie total %s | speedup %.2fx\n",
		scan.TotalTime().Round(time.Second), zom.TotalTime().Round(time.Second),
		float64(scan.TotalTime())/float64(zom.TotalTime()))
	return nil
}
