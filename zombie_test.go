package zombie

import (
	"strings"
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
	"zombie/internal/learner"
)

func demoStore(t *testing.T, n int, seed int64) Store {
	t.Helper()
	cfg := corpus.DefaultImageConfig()
	cfg.N = n
	ins, err := corpus.GenerateImages(cfg, NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return NewMemStore(ins)
}

func demoTask(t *testing.T, store Store, seed int64) *Task {
	t.Helper()
	cfg := corpus.DefaultImageConfig()
	f := featurepipe.NewImageFeature(1, cfg)
	task, err := NewTask("demo", store, f,
		func(ff FeatureFunc) Model { return learner.NewLogisticSGD(ff.Dim(), 0.3, 0, learner.ConstantLR) },
		MetricF1, 1, CostModel{}, TaskOptions{}, NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestPublicAPIEndToEnd(t *testing.T) {
	store := demoStore(t, 2000, 500)
	groups, err := BuildIndex(store, IndexKMeansNumeric, 8, 501)
	if err != nil {
		t.Fatal(err)
	}
	if groups.K() != 8 || groups.Len() != 2000 {
		t.Fatalf("groups: K=%d Len=%d", groups.K(), groups.Len())
	}
	task := demoTask(t, store, 502)
	eng, err := NewEngine(Config{
		Policy:    "eps-greedy:0.1",
		Seed:      503,
		MaxInputs: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.InputsProcessed != 300 || res.Stop != StopBudget {
		t.Fatalf("run: %s", res.Summary())
	}
	if !strings.Contains(res.Summary(), "zombie(") {
		t.Fatalf("summary missing strategy: %s", res.Summary())
	}
	scan, err := eng.RunScan(task, true)
	if err != nil {
		t.Fatal(err)
	}
	if scan.InputsProcessed != 300 {
		t.Fatalf("scan run: %s", scan.Summary())
	}
}

func TestBuildIndexStrategies(t *testing.T) {
	numeric := demoStore(t, 400, 504)
	wcfg := corpus.DefaultWikiConfig()
	wcfg.N = 400
	wiki, err := corpus.GenerateWiki(wcfg, NewRNG(505))
	if err != nil {
		t.Fatal(err)
	}
	text := NewMemStore(wiki)
	cases := []struct {
		store    Store
		strategy IndexStrategy
	}{
		{text, IndexKMeansText},
		{text, IndexKMeansTFIDF},
		{numeric, IndexKMeansNumeric},
		{text, IndexLSHText},
		{numeric, IndexLSHNumeric},
		{text, IndexStrategy("attribute:category")},
		{numeric, IndexHash},
		{numeric, IndexRandom},
	}
	for _, tc := range cases {
		groups, err := BuildIndex(tc.store, tc.strategy, 6, 506)
		if err != nil {
			t.Fatalf("%s: %v", tc.strategy, err)
		}
		if groups.K() != 6 {
			t.Fatalf("%s: K=%d", tc.strategy, groups.K())
		}
		if err := groups.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.strategy, err)
		}
	}
}

func TestBuildIndexErrors(t *testing.T) {
	store := demoStore(t, 100, 507)
	if _, err := BuildIndex(store, "nope", 4, 1); err == nil {
		t.Fatal("unknown strategy should fail")
	}
	if _, err := BuildIndex(store, IndexAttribute, 4, 1); err == nil {
		t.Fatal("attribute without key should fail")
	}
	// Numeric clustering over a text corpus fails.
	wcfg := corpus.DefaultWikiConfig()
	wcfg.N = 50
	wiki, _ := corpus.GenerateWiki(wcfg, NewRNG(1))
	if _, err := BuildIndex(NewMemStore(wiki), IndexKMeansNumeric, 4, 1); err == nil {
		t.Fatal("numeric strategy over text should fail")
	}
}

func TestDiskStoreThroughPublicAPI(t *testing.T) {
	cfg := corpus.DefaultImageConfig()
	cfg.N = 400
	ins, err := GenerateImages(cfg, NewRNG(600))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/c.jsonl"
	if err := WriteJSONL(path, ins); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	groups, err := BuildIndex(ds, IndexKMeansNumeric, 6, 601)
	if err != nil {
		t.Fatal(err)
	}
	task := demoTask(t, ds, 602)
	eng, err := NewEngine(Config{Seed: 603, MaxInputs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(task, groups); err != nil {
		t.Fatal(err)
	}
}

func TestPolicySpecsExposed(t *testing.T) {
	specs := PolicySpecs()
	if len(specs) < 10 {
		t.Fatalf("PolicySpecs = %v", specs)
	}
	for _, spec := range specs {
		if _, err := NewEngine(Config{Policy: PolicySpec(spec)}); err != nil {
			t.Fatalf("spec %q rejected by engine: %v", spec, err)
		}
	}
	if _, err := NewEngine(Config{Policy: "not-a-policy"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestAliasRoundTrip(t *testing.T) {
	// Dense and sparse vectors flow through the aliased constructors.
	v := DenseVec([]float64{1, 2})
	if v.Dim() != 2 {
		t.Fatal("DenseVec alias broken")
	}
	ex := Example{Features: v, Class: 1}
	if ex.Class != 1 {
		t.Fatal("Example alias broken")
	}
	if TextKind.String() != "text" || NumericKind.String() != "numeric" {
		t.Fatal("Kind alias broken")
	}
}
