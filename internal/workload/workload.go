// Package workload assembles the canonical evaluation tasks — wiki entity
// extraction, song genre classification, rare-image detection — over an
// arbitrary corpus Store, mirroring the learner, metric and cost choices
// the experiments use. It exists so every front end (the zombie CLI, the
// zombie-serve HTTP service, future drivers) builds byte-identical tasks
// from the same (name, version, seed) triple.
package workload

import (
	"fmt"
	"time"

	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/learner"
	"zombie/internal/rng"
)

// Names lists the known task names.
func Names() []string { return []string{"wiki", "songs", "image"} }

// Build assembles the named task over the store and returns it with the
// task's default index grouper. version selects the feature-code version
// (0 = task default); the split and any grouper fitting are deterministic
// in r.
func Build(name string, store corpus.Store, version int, r *rng.RNG) (*featurepipe.Task, index.Grouper, error) {
	switch name {
	case "wiki":
		if version == 0 {
			version = 4
		}
		feature := featurepipe.NewWikiFeature(version)
		task, err := featurepipe.NewTask("wiki", store, feature,
			func(f featurepipe.FeatureFunc) learner.Model { return learner.NewMultinomialNB(f.Dim(), 2, 1) },
			learner.MetricF1, 1,
			featurepipe.CostModel{PerInput: 150 * time.Millisecond},
			featurepipe.TaskOptions{}, r)
		grouper := &index.KMeansGrouper{Vectorizer: index.NewHashedText(256), Config: index.KMeansConfig{MaxIter: 25}}
		return task, grouper, err
	case "songs":
		gen := corpus.DefaultSongConfig()
		if version == 0 {
			version = 1
		}
		feature := featurepipe.NewSongFeature(version, gen)
		task, err := featurepipe.NewTask("songs", store, feature,
			func(f featurepipe.FeatureFunc) learner.Model { return learner.NewGaussianNB(f.Dim(), gen.Genres, 1e-3) },
			learner.MetricMacroF1, 0,
			featurepipe.CostModel{PerInput: 30 * time.Millisecond},
			featurepipe.TaskOptions{}, r)
		numeric := index.NewNumeric(gen.Dim)
		numeric.FitStandardize(store)
		grouper := &index.KMeansGrouper{Vectorizer: numeric, Config: index.KMeansConfig{MaxIter: 25}}
		return task, grouper, err
	case "image":
		gen := corpus.DefaultImageConfig()
		if version == 0 {
			version = 1
		}
		feature := featurepipe.NewImageFeature(version, gen)
		task, err := featurepipe.NewTask("image", store, feature,
			func(f featurepipe.FeatureFunc) learner.Model { return learner.NewGaussianNB(f.Dim(), 2, 1e-3) },
			learner.MetricF1, 1,
			featurepipe.CostModel{PerInput: 400 * time.Millisecond},
			featurepipe.TaskOptions{}, r)
		numeric := index.NewNumeric(gen.Dim)
		numeric.FitStandardize(store)
		grouper := &index.KMeansGrouper{Vectorizer: numeric, Config: index.KMeansConfig{MaxIter: 25}}
		return task, grouper, err
	default:
		return nil, nil, fmt.Errorf("workload: unknown task %q (want wiki, songs, or image)", name)
	}
}
