package workload

import (
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/rng"
)

func TestBuildKnownTasks(t *testing.T) {
	// Each canonical workload builds against its matching corpus and the
	// split is deterministic in the RNG — the property the service layer
	// relies on for reproducible runs.
	stores := map[string]corpus.Store{}
	wiki := corpus.DefaultWikiConfig()
	wiki.N = 120
	ins, err := corpus.GenerateWiki(wiki, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	stores["wiki"] = corpus.NewMemStore(ins)
	songs := corpus.DefaultSongConfig()
	songs.N = 120
	ins, err = corpus.GenerateSongs(songs, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	stores["songs"] = corpus.NewMemStore(ins)
	images := corpus.DefaultImageConfig()
	images.N = 120
	ins, err = corpus.GenerateImages(images, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	stores["image"] = corpus.NewMemStore(ins)

	for _, name := range Names() {
		task, grouper, err := Build(name, stores[name], 0, rng.New(7))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if task.Name != name || grouper == nil {
			t.Fatalf("%s: task %q, grouper %v", name, task.Name, grouper)
		}
		if len(task.PoolIdx) == 0 || len(task.HoldoutIdx) == 0 {
			t.Fatalf("%s: empty split", name)
		}
		again, _, err := Build(name, stores[name], 0, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		for i := range task.PoolIdx {
			if task.PoolIdx[i] != again.PoolIdx[i] {
				t.Fatalf("%s: split not deterministic at %d", name, i)
			}
		}
	}
}

func TestBuildUnknownTask(t *testing.T) {
	if _, _, err := Build("nope", corpus.NewMemStore(nil), 0, rng.New(1)); err == nil {
		t.Fatal("unknown task must fail")
	}
}
