// Package fault is the repo's deterministic fault-injection layer: a
// seeded Injector that decides, purely from (seed, site, id), whether an
// operation should fail, panic, or stall. The paper's inner loop runs
// over large messy corpora where some inputs are malformed and some
// feature code is broken by construction; this package makes those
// failures a first-class, reproducible input to the system instead of a
// flaky accident. Because every decision is a hash of stable identifiers
// — never time, never math/rand state — two runs with the same fault
// seed inject exactly the same faults in exactly the same places, under
// -race, at any worker count. make chaos-smoke builds on that guarantee:
// it diffs two faulted runs byte for byte.
//
// An Injector is immutable after construction and safe for concurrent
// use from any number of goroutines. A nil *Injector is valid and
// injects nothing, so call sites need no guards.
package fault

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Site names one fault-injection point in the pipeline. Sites are plain
// strings so layers can add their own without touching this package; the
// constants below are the ones the stack wires up.
type Site string

// Canonical injection sites, spanning the stack from corpus IO to the
// serving layer.
const (
	// SiteExtract faults fire inside feature extraction, keyed by input
	// ID — the "engineer's unfinished feature code" failure mode.
	SiteExtract Site = "extract"
	// SiteCorpusRead faults fire when the engine fetches a raw input from
	// the corpus store, keyed by the store index — a corrupt record, a
	// failed disk read.
	SiteCorpusRead Site = "corpus.read"
	// SiteCacheRead / SiteCacheWrite fault the extraction cache's disk
	// segment IO, keyed by cache key — a dying disk under the cache
	// directory. The cache must degrade to memory-only, never fail the
	// extraction.
	SiteCacheRead  Site = "cache.read"
	SiteCacheWrite Site = "cache.write"
	// SiteIndexBuild faults fire in the server's offline index build,
	// keyed by "corpus/strategy#attempt" — the transient failure the
	// build retry exists for.
	SiteIndexBuild Site = "index.build"
	// SiteDistStep faults fire on a distributed worker at the top of each
	// step it executes, keyed by the worker's shard label ("w0", "w1", …).
	// An error rule here models a dead worker (every step routed to it
	// fails, over any transport), a latency rule a slow one. The site is
	// fired worker-side so the local and http transports fail with
	// byte-identical messages.
	SiteDistStep Site = "dist.step"
	// SiteJournalWrite faults fire when the durable run store appends a
	// lifecycle record to its write-ahead journal, keyed by
	// "recordtype#n" — a dying disk under the state directory. Journal
	// failures must never fail a run: the store absorbs them and demotes
	// itself to memory-only after a few.
	SiteJournalWrite Site = "journal.write"
)

// Kind classifies what a fired fault does to the faulted operation.
type Kind int

const (
	// KindError makes the operation return an injected error.
	KindError Kind = iota
	// KindPanic makes the operation panic (the engine's panic isolation
	// must convert it into a quarantine, not a crash).
	KindPanic
	// KindLatency stalls the operation without failing it.
	KindLatency
)

// String returns the kind's label.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Rule is one site's fault rates. Rates are probabilities in [0,1] over
// the site's id space: ErrRate and PanicRate partition one hash draw
// (an id faults with error or panic, never both); latency uses an
// independent draw so a slow operation can also be one that fails.
type Rule struct {
	Site Site
	// ErrRate of ids return an injected error.
	ErrRate float64
	// PanicRate of ids (disjoint from ErrRate's share) panic.
	PanicRate float64
	// Latency stalls LatencyRate of ids for the given duration.
	Latency     time.Duration
	LatencyRate float64
}

func (r Rule) validate() error {
	if r.Site == "" {
		return fmt.Errorf("fault: rule needs a site")
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"err", r.ErrRate}, {"panic", r.PanicRate}, {"latency", r.LatencyRate}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s: %s rate %v out of [0,1]", r.Site, p.name, p.v)
		}
	}
	if r.ErrRate+r.PanicRate > 1 {
		return fmt.Errorf("fault: %s: err+panic rates %v exceed 1", r.Site, r.ErrRate+r.PanicRate)
	}
	if r.Latency < 0 {
		return fmt.Errorf("fault: %s: negative latency %v", r.Site, r.Latency)
	}
	return nil
}

// Injector decides fault outcomes. The zero of *Injector (nil) injects
// nothing; a non-nil Injector is immutable and concurrency-safe.
type Injector struct {
	seed  int64
	rules map[Site]Rule
}

// New builds an injector from explicit rules. A duplicate site is an
// error: merging rates silently would make specs order-dependent.
func New(seed int64, rules ...Rule) (*Injector, error) {
	inj := &Injector{seed: seed, rules: make(map[Site]Rule, len(rules))}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		if _, dup := inj.rules[r.Site]; dup {
			return nil, fmt.Errorf("fault: duplicate rule for site %q", r.Site)
		}
		inj.rules[r.Site] = r
	}
	return inj, nil
}

// Parse builds an injector from the flag syntax shared by cmd/zombie and
// cmd/zombie-serve:
//
//	site:key=value[,key=value...][;site:...]
//
// with keys err (error rate), panic (panic rate), lat (latency duration,
// e.g. 10ms) and latp (latency rate, default 1 when lat is set). Example:
//
//	extract:err=0.04,panic=0.04;corpus.read:err=0.03;cache.write:err=1
//
// An empty spec returns a nil injector (inject nothing).
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		site, body, ok := strings.Cut(clause, ":")
		site = strings.TrimSpace(site)
		if !ok || site == "" || strings.TrimSpace(body) == "" {
			return nil, fmt.Errorf("fault: clause %q wants site:key=value[,...]", clause)
		}
		rule := Rule{Site: Site(site), LatencyRate: -1}
		for _, kv := range strings.Split(body, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fault: %s: %q wants key=value", site, kv)
			}
			switch key {
			case "err", "panic", "latp":
				rate, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: %s: bad %s rate %q: %v", site, key, val, err)
				}
				switch key {
				case "err":
					rule.ErrRate = rate
				case "panic":
					rule.PanicRate = rate
				case "latp":
					rule.LatencyRate = rate
				}
			case "lat":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("fault: %s: bad latency %q: %v", site, val, err)
				}
				rule.Latency = d
			default:
				return nil, fmt.Errorf("fault: %s: unknown key %q (want err, panic, lat, latp)", site, key)
			}
		}
		if rule.LatencyRate < 0 { // latp unset: lat implies rate 1
			if rule.Latency > 0 {
				rule.LatencyRate = 1
			} else {
				rule.LatencyRate = 0
			}
		}
		rules = append(rules, rule)
	}
	return New(seed, rules...)
}

// Error is the error type injected faults return, so callers that need
// to treat injected failures specially (tests, mostly) can errors.As it.
type Error struct {
	Site Site
	ID   string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected error at %s on %s", e.Site, e.ID)
}

// roll maps (seed, site, id, stream) to a uniform draw in [0,1). fnv-1a
// over the concatenated identifiers keeps the decision stable across
// processes, goroutine schedules, and -race.
func (inj *Injector) roll(site Site, id, stream string) float64 {
	h := fnv.New64a()
	h.Write([]byte(strconv.FormatInt(inj.seed, 10)))
	h.Write([]byte{0x1f})
	h.Write([]byte(site))
	h.Write([]byte{0x1f})
	h.Write([]byte(id))
	h.Write([]byte{0x1f})
	h.Write([]byte(stream))
	// Keep 53 bits so the float conversion is exact.
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Check reports the fault (site, id) draws, without executing it:
// KindError and KindPanic from one draw against the rule's partition,
// KindLatency from an independent draw. ok is false when no rule covers
// the site or no fault fires. A nil injector never fires.
func (inj *Injector) Check(site Site, id string) (kind Kind, delay time.Duration, ok bool) {
	if inj == nil {
		return 0, 0, false
	}
	rule, have := inj.rules[site]
	if !have {
		return 0, 0, false
	}
	if rule.LatencyRate > 0 && inj.roll(site, id, "lat") < rule.LatencyRate {
		// Latency composes with error/panic at the call site via Fire;
		// Check reports the first applicable kind in fire order.
		return KindLatency, rule.Latency, true
	}
	u := inj.roll(site, id, "fail")
	switch {
	case u < rule.ErrRate:
		return KindError, 0, true
	case u < rule.ErrRate+rule.PanicRate:
		return KindPanic, 0, true
	}
	return 0, 0, false
}

// Fire executes the fault for (site, id): latency faults sleep, panic
// faults panic with a stable message, error faults return *Error, and
// non-faulted ids return nil. Latency is applied before the failure
// draw, so an id can stall and then fail — the worst case a robust
// pipeline has to absorb. Nil injectors return nil immediately.
func (inj *Injector) Fire(site Site, id string) error {
	if inj == nil {
		return nil
	}
	rule, have := inj.rules[site]
	if !have {
		return nil
	}
	if rule.LatencyRate > 0 && rule.Latency > 0 && inj.roll(site, id, "lat") < rule.LatencyRate {
		time.Sleep(rule.Latency)
	}
	u := inj.roll(site, id, "fail")
	switch {
	case u < rule.ErrRate:
		return &Error{Site: site, ID: id}
	case u < rule.ErrRate+rule.PanicRate:
		panic(fmt.Sprintf("fault: injected panic at %s on %s", site, id))
	}
	return nil
}

// Covers reports whether the injector has a rule for site — cheap gate
// for call sites that would otherwise build id strings per operation.
func (inj *Injector) Covers(site Site) bool {
	if inj == nil {
		return false
	}
	_, ok := inj.rules[site]
	return ok
}

// String renders the active rules in the Parse syntax, sites sorted, so
// logs and /healthz can echo the effective fault plan.
func (inj *Injector) String() string {
	if inj == nil || len(inj.rules) == 0 {
		return ""
	}
	sites := make([]string, 0, len(inj.rules))
	for s := range inj.rules {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	var b strings.Builder
	for i, s := range sites {
		if i > 0 {
			b.WriteByte(';')
		}
		r := inj.rules[Site(s)]
		b.WriteString(s)
		b.WriteByte(':')
		parts := make([]string, 0, 4)
		if r.ErrRate > 0 {
			parts = append(parts, "err="+strconv.FormatFloat(r.ErrRate, 'g', -1, 64))
		}
		if r.PanicRate > 0 {
			parts = append(parts, "panic="+strconv.FormatFloat(r.PanicRate, 'g', -1, 64))
		}
		if r.Latency > 0 && r.LatencyRate > 0 {
			parts = append(parts, "lat="+r.Latency.String(),
				"latp="+strconv.FormatFloat(r.LatencyRate, 'g', -1, 64))
		}
		b.WriteString(strings.Join(parts, ","))
	}
	return b.String()
}

// Seed returns the injector's seed (0 for nil), for run labels and logs.
func (inj *Injector) Seed() int64 {
	if inj == nil {
		return 0
	}
	return inj.seed
}
