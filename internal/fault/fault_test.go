package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustNew(t *testing.T, seed int64, rules ...Rule) *Injector {
	t.Helper()
	inj, err := New(seed, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if err := inj.Fire(SiteExtract, "x"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if _, _, ok := inj.Check(SiteExtract, "x"); ok {
		t.Fatal("nil injector checked true")
	}
	if inj.Covers(SiteExtract) {
		t.Fatal("nil injector covers a site")
	}
	if inj.String() != "" || inj.Seed() != 0 {
		t.Fatal("nil injector not empty")
	}
}

func TestDeterministicByKey(t *testing.T) {
	a := mustNew(t, 7, Rule{Site: SiteExtract, ErrRate: 0.3, PanicRate: 0.2})
	b := mustNew(t, 7, Rule{Site: SiteExtract, ErrRate: 0.3, PanicRate: 0.2})
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("in-%03d", i)
		ka, da, oka := a.Check(SiteExtract, id)
		kb, db, okb := b.Check(SiteExtract, id)
		if ka != kb || da != db || oka != okb {
			t.Fatalf("id %s: (%v,%v,%v) vs (%v,%v,%v)", id, ka, da, oka, kb, db, okb)
		}
	}
}

func TestSeedChangesOutcomes(t *testing.T) {
	a := mustNew(t, 1, Rule{Site: SiteExtract, ErrRate: 0.5})
	b := mustNew(t, 2, Rule{Site: SiteExtract, ErrRate: 0.5})
	differ := false
	for i := 0; i < 200 && !differ; i++ {
		id := fmt.Sprintf("in-%03d", i)
		_, _, oka := a.Check(SiteExtract, id)
		_, _, okb := b.Check(SiteExtract, id)
		differ = oka != okb
	}
	if !differ {
		t.Fatal("different seeds produced identical fault sets")
	}
}

func TestRatesApproximatelyHold(t *testing.T) {
	inj := mustNew(t, 42, Rule{Site: SiteExtract, ErrRate: 0.25, PanicRate: 0.25})
	var errs, panics int
	const n = 4000
	for i := 0; i < n; i++ {
		kind, _, ok := inj.Check(SiteExtract, fmt.Sprintf("id-%d", i))
		if !ok {
			continue
		}
		switch kind {
		case KindError:
			errs++
		case KindPanic:
			panics++
		}
	}
	for name, got := range map[string]int{"errs": errs, "panics": panics} {
		frac := float64(got) / n
		if frac < 0.20 || frac > 0.30 {
			t.Fatalf("%s rate %v far from 0.25", name, frac)
		}
	}
}

func TestFireKinds(t *testing.T) {
	inj := mustNew(t, 3,
		Rule{Site: "all-err", ErrRate: 1},
		Rule{Site: "all-panic", PanicRate: 1},
		Rule{Site: "all-lat", Latency: time.Millisecond, LatencyRate: 1})

	err := inj.Fire("all-err", "x")
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != "all-err" || fe.ID != "x" {
		t.Fatalf("error fault wrong: %v", err)
	}
	if !strings.Contains(err.Error(), "all-err") || !strings.Contains(err.Error(), "x") {
		t.Fatalf("error message lacks context: %v", err)
	}

	func() {
		defer func() {
			p := recover()
			if p == nil || !strings.Contains(fmt.Sprint(p), "injected panic") {
				t.Fatalf("panic fault wrong: %v", p)
			}
		}()
		inj.Fire("all-panic", "x") //nolint:errcheck // panics
	}()

	start := time.Now()
	if err := inj.Fire("all-lat", "x"); err != nil {
		t.Fatalf("latency fault errored: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("latency fault did not stall")
	}

	if err := inj.Fire("uncovered", "x"); err != nil {
		t.Fatalf("uncovered site fired: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	inj, err := Parse("extract:err=0.04,panic=0.04; corpus.read:err=0.03;cache.write:err=1", 9)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Covers(SiteExtract) || !inj.Covers(SiteCorpusRead) || !inj.Covers(SiteCacheWrite) {
		t.Fatalf("parsed sites missing: %s", inj)
	}
	if inj.Seed() != 9 {
		t.Fatalf("seed %d", inj.Seed())
	}
	s := inj.String()
	for _, want := range []string{"extract:err=0.04,panic=0.04", "corpus.read:err=0.03", "cache.write:err=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() %q missing %q", s, want)
		}
	}
	// The rendered spec must parse back to the same plan.
	back, err := Parse(s, 9)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != s {
		t.Fatalf("round trip drifted: %q vs %q", back.String(), s)
	}
}

func TestParseLatencyDefaults(t *testing.T) {
	inj, err := Parse("extract:lat=5ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	kind, delay, ok := inj.Check(SiteExtract, "anything")
	if !ok || kind != KindLatency || delay != 5*time.Millisecond {
		t.Fatalf("lat without latp should fire always: %v %v %v", kind, delay, ok)
	}

	inj, err = Parse("extract:lat=5ms,latp=0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := inj.Check(SiteExtract, "anything"); ok {
		t.Fatal("latp=0 still fired")
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if inj, err := Parse("   ", 1); err != nil || inj != nil {
		t.Fatalf("blank spec: %v %v", inj, err)
	}
	for _, bad := range []string{
		"noseparator",
		":err=1",
		"extract:",
		"extract:err",
		"extract:err=x",
		"extract:lat=x",
		"extract:wat=1",
		"extract:err=1.5",
		"extract:err=0.6,panic=0.6",
		"extract:err=-0.1",
		"extract:err=0.1;extract:panic=0.1",
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Fatalf("spec %q should fail", bad)
		}
	}
}

func TestNewRejectsBadRules(t *testing.T) {
	if _, err := New(1, Rule{}); err == nil {
		t.Fatal("empty site accepted")
	}
	if _, err := New(1, Rule{Site: "s", Latency: -time.Second}); err == nil {
		t.Fatal("negative latency accepted")
	}
	if _, err := New(1, Rule{Site: "s", LatencyRate: 2}); err == nil {
		t.Fatal("latency rate > 1 accepted")
	}
}

func TestKindString(t *testing.T) {
	if KindError.String() != "error" || KindPanic.String() != "panic" || KindLatency.String() != "latency" {
		t.Fatal("kind labels wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind label wrong")
	}
}

func TestConcurrentUseIsRaceFree(t *testing.T) {
	inj := mustNew(t, 5, Rule{Site: SiteExtract, ErrRate: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				inj.Fire(SiteExtract, fmt.Sprintf("g%d-%d", g, i)) //nolint:errcheck
				inj.Check(SiteExtract, fmt.Sprintf("g%d-%d", g, i))
			}
		}(g)
	}
	wg.Wait()
}
