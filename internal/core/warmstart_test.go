package core

import (
	"reflect"
	"testing"

	"zombie/internal/bandit"
)

// warmRun executes one wiki run with the given warm-start inputs and
// returns its result.
func warmRun(t *testing.T, snaps []bandit.ArmSnapshot, decay float64, policy bandit.Spec) *RunResult {
	t.Helper()
	task, groups := wikiTask(t, 400, 61)
	eng := mustEngine(t, Config{
		Policy:         policy,
		Seed:           9,
		MaxInputs:      150,
		EvalEvery:      25,
		WarmStart:      snaps,
		WarmStartDecay: decay,
	})
	res, err := eng.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWarmStartZeroDecayIdentity asserts the decay=0 identity contract:
// a run configured with snapshots but zero decay is byte-identical to a
// cold run — curve, arms, counters, everything the result carries.
func TestWarmStartZeroDecayIdentity(t *testing.T) {
	for _, policy := range []bandit.Spec{"eps-greedy:0.1", "ucb1", "thompson", "exp3"} {
		cold := warmRun(t, nil, 0, policy)
		prev := warmRun(t, nil, 0, policy) // donor run for snapshots
		seededZero := warmRun(t, prev.Arms, 0, policy)
		// WallTime and phase timings legitimately differ between any two
		// runs; everything semantic must match exactly.
		cold.WallTime, seededZero.WallTime = 0, 0
		cold.Phases, seededZero.Phases = PhaseBreakdown{}, PhaseBreakdown{}
		if !reflect.DeepEqual(cold, seededZero) {
			t.Fatalf("%s: decay=0 run with snapshots differs from cold run", policy)
		}
	}
}

// TestWarmStartDeterministic asserts a warm-started run is a pure
// function of (config, snapshots): two identical warm runs match exactly,
// and the seeded pulls show up in the result's arm statistics.
func TestWarmStartDeterministic(t *testing.T) {
	prev := warmRun(t, nil, 0, "eps-greedy:0.1")
	a := warmRun(t, prev.Arms, 0.5, "eps-greedy:0.1")
	b := warmRun(t, prev.Arms, 0.5, "eps-greedy:0.1")
	a.WallTime, b.WallTime = 0, 0
	a.Phases, b.Phases = PhaseBreakdown{}, PhaseBreakdown{}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical warm-started runs differ")
	}
	var want int64
	for _, s := range prev.Arms {
		want += bandit.SeededPulls(s.Pulls, 0.5)
	}
	if a.WarmStartPulls != want {
		t.Fatalf("WarmStartPulls = %d, want %d", a.WarmStartPulls, want)
	}
	if want == 0 {
		t.Fatal("donor run produced no pulls to seed")
	}
	// Seeded pulls are included in the final arm statistics.
	var coldPulls, warmPulls int64
	for i := range a.Arms {
		coldPulls += prev.Arms[i].Pulls
		warmPulls += a.Arms[i].Pulls
	}
	if warmPulls != int64(a.InputsProcessed)+a.WarmStartPulls {
		t.Fatalf("final pulls %d != processed %d + seeded %d", warmPulls, a.InputsProcessed, a.WarmStartPulls)
	}
	_ = coldPulls
}

// TestWarmStartChangesSelection sanity-checks that a non-zero decay
// actually alters the selection stream (otherwise the whole mechanism is
// a no-op and the identity test above proves nothing).
func TestWarmStartChangesSelection(t *testing.T) {
	cold := warmRun(t, nil, 0, "eps-greedy:0.1")
	warm := warmRun(t, cold.Arms, 1, "eps-greedy:0.1")
	if warm.WarmStartPulls == 0 {
		t.Fatal("decay=1 seeded nothing")
	}
	same := true
	for i := range warm.Arms {
		if warm.Arms[i].Pulls != cold.Arms[i].Pulls {
			same = false
			break
		}
	}
	if same {
		t.Fatal("warm-started run pulled arms identically to cold including seeds — seeding had no effect")
	}
}

// TestWarmStartValidation covers config- and run-time rejection: decay
// out of range at New, snapshot arms out of range at run time.
func TestWarmStartValidation(t *testing.T) {
	if _, err := New(Config{WarmStartDecay: 1.5}); err == nil {
		t.Error("WarmStartDecay 1.5: want error from New")
	}
	if _, err := New(Config{WarmStartDecay: -0.1}); err == nil {
		t.Error("WarmStartDecay -0.1: want error from New")
	}
	task, groups := wikiTask(t, 400, 61)
	eng := mustEngine(t, Config{
		Seed: 9, MaxInputs: 50,
		WarmStart:      []bandit.ArmSnapshot{{Arm: groups.K() + 3, Pulls: 5, Mean: 1}},
		WarmStartDecay: 1,
	})
	if _, err := eng.Run(task, groups); err == nil {
		t.Error("out-of-range snapshot arm: want run error")
	}
}
