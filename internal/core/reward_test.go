package core

import (
	"math"
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
	"zombie/internal/learner"
	"zombie/internal/rng"
)

func TestClamp01(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1},
	} {
		if got := clamp01(tc.in); got != tc.want {
			t.Errorf("clamp01(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// fixedHoldout builds a trivial 1-D binary holdout for reward tests.
func fixedHoldout() *learner.Holdout {
	exs := []learner.Example{
		{Features: learner.DenseVec([]float64{-1}), Class: 0},
		{Features: learner.DenseVec([]float64{-0.8}), Class: 0},
		{Features: learner.DenseVec([]float64{1}), Class: 1},
		{Features: learner.DenseVec([]float64{0.8}), Class: 1},
	}
	return learner.NewHoldout(exs, learner.MetricAccuracy, 1)
}

func TestRewardUsefulnessValues(t *testing.T) {
	e := mustEngine(t, Config{Reward: RewardUsefulness})
	model := learner.NewGaussianNB(1, 2, 1e-3)
	useful := featurepipe.Result{
		Example:  learner.Example{Features: learner.DenseVec([]float64{1}), Class: 1},
		Produced: true, Useful: true,
	}
	useless := featurepipe.Result{
		Example:  learner.Example{Features: learner.DenseVec([]float64{-1}), Class: 0},
		Produced: true, Useful: false,
	}
	if got := e.rewardFor(useful, model, nil); got != 1 {
		t.Fatalf("useful reward = %v", got)
	}
	if got := e.rewardFor(useless, model, nil); got != 0 {
		t.Fatalf("useless reward = %v", got)
	}
	if model.Seen() != 2 {
		t.Fatalf("model not trained by reward path: seen=%d", model.Seen())
	}
}

func TestRewardQualityDeltaPaysForImprovement(t *testing.T) {
	e := mustEngine(t, Config{Reward: RewardQualityDelta, RewardScale: 10})
	hold := fixedHoldout()
	model := learner.NewGaussianNB(1, 2, 1e-3)
	// Seed the model so quality is defined, with one example per class.
	model.PartialFit(learner.Example{Features: learner.DenseVec([]float64{-1}), Class: 0})
	model.PartialFit(learner.Example{Features: learner.DenseVec([]float64{-0.5}), Class: 1}) // wrong side
	before := hold.Quality(model)
	good := featurepipe.Result{
		Example:  learner.Example{Features: learner.DenseVec([]float64{1.2}), Class: 1},
		Produced: true, Useful: true,
	}
	reward := e.rewardFor(good, model, hold)
	after := hold.Quality(model)
	if after <= before {
		t.Skip("model did not improve on this seed; delta semantics untestable here")
	}
	want := clamp01((after - before) * 10)
	if math.Abs(reward-want) > 1e-12 {
		t.Fatalf("delta reward = %v, want %v", reward, want)
	}
}

func TestRewardQualityDeltaNeverNegative(t *testing.T) {
	e := mustEngine(t, Config{Reward: RewardQualityDelta})
	hold := fixedHoldout()
	model := learner.NewGaussianNB(1, 2, 1e-3)
	// Train to perfection first.
	for i := 0; i < 10; i++ {
		model.PartialFit(learner.Example{Features: learner.DenseVec([]float64{-1}), Class: 0})
		model.PartialFit(learner.Example{Features: learner.DenseVec([]float64{1}), Class: 1})
	}
	// A mislabeled example can only hurt quality; reward must clamp at 0.
	bad := featurepipe.Result{
		Example:  learner.Example{Features: learner.DenseVec([]float64{1}), Class: 0},
		Produced: true,
	}
	if got := e.rewardFor(bad, model, hold); got != 0 {
		t.Fatalf("harmful example earned reward %v", got)
	}
}

func TestRewardHybridAverages(t *testing.T) {
	e := mustEngine(t, Config{Reward: RewardHybrid, RewardScale: 10})
	hold := fixedHoldout()
	// Saturated model: delta is 0, so hybrid = 0.5*useful.
	model := learner.NewGaussianNB(1, 2, 1e-3)
	for i := 0; i < 20; i++ {
		model.PartialFit(learner.Example{Features: learner.DenseVec([]float64{-1}), Class: 0})
		model.PartialFit(learner.Example{Features: learner.DenseVec([]float64{1}), Class: 1})
	}
	useful := featurepipe.Result{
		Example:  learner.Example{Features: learner.DenseVec([]float64{1}), Class: 1},
		Produced: true, Useful: true,
	}
	got := e.rewardFor(useful, model, hold)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("hybrid reward on saturated model = %v, want 0.5", got)
	}
}

func TestSubsampleHoldout(t *testing.T) {
	exs := make([]learner.Example, 100)
	for i := range exs {
		exs[i] = learner.Example{Features: learner.DenseVec([]float64{float64(i)}), Class: i % 2}
	}
	h := learner.NewHoldout(exs, learner.MetricF1, 1)
	sub := subsampleHoldout(h, 20, rng.New(1))
	if len(sub.Examples) != 20 {
		t.Fatalf("subsample size = %d", len(sub.Examples))
	}
	if sub.Metric != learner.MetricF1 || sub.Positive != 1 {
		t.Fatal("subsample lost metric config")
	}
	seen := map[float64]bool{}
	for _, ex := range sub.Examples {
		v := ex.Features.At(0)
		if seen[v] {
			t.Fatalf("duplicate example %v in subsample", v)
		}
		seen[v] = true
	}
	// n >= len reuses the original.
	if got := subsampleHoldout(h, 100, rng.New(1)); got != h {
		t.Fatal("full-size subsample should reuse the holdout")
	}
	if got := subsampleHoldout(h, 500, rng.New(1)); got != h {
		t.Fatal("oversized subsample should reuse the holdout")
	}
}

func TestSafeExtractRecoversPanic(t *testing.T) {
	f := &featurepipe.FaultyFeature{
		Inner:    featurepipe.NewWikiFeature(1),
		PanicPct: 100,
	}
	in := &corpus.Input{ID: "x", Kind: corpus.TextKind, Text: "infobox born"}
	res, err, panicked := SafeExtract(f, in)
	if err == nil || !panicked {
		t.Fatal("panic should surface as error")
	}
	if res.Produced {
		t.Fatal("panicked extraction should produce nothing")
	}
}

func TestOracleUsefulDefinitions(t *testing.T) {
	wiki := featurepipe.NewWikiFeature(1)
	pos := &corpus.Input{Truth: corpus.Truth{Class: 1, Relevant: true}}
	neg := &corpus.Input{Truth: corpus.Truth{Class: 0}}
	if !oracleUseful(pos, wiki) || oracleUseful(neg, wiki) {
		t.Fatal("wiki oracle usefulness wrong")
	}
	songCfg := corpus.DefaultSongConfig()
	song := featurepipe.NewSongFeature(1, songCfg)
	rare := &corpus.Input{Truth: corpus.Truth{Class: songCfg.Genres - 1}}
	common := &corpus.Input{Truth: corpus.Truth{Class: 0}}
	if !oracleUseful(rare, song) || oracleUseful(common, song) {
		t.Fatal("song oracle usefulness wrong")
	}
}

func TestEvalIncrementalMode(t *testing.T) {
	task, groups := imageTask(t, 800, 900)
	inc := mustEngine(t, Config{Seed: 5, MaxInputs: 200, EvalIncremental: true})
	set := mustEngine(t, Config{Seed: 5, MaxInputs: 200})
	ri, err := inc.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := set.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	// Same selection trajectory (same seed), possibly different curves.
	if ri.InputsProcessed != rs.InputsProcessed || ri.Useful != rs.Useful {
		t.Fatalf("eval mode changed selection: %d/%d vs %d/%d",
			ri.InputsProcessed, ri.Useful, rs.InputsProcessed, rs.Useful)
	}
}

func TestEvalEpochsStabilizeSGD(t *testing.T) {
	// With an order-sensitive learner, set-based eval must still produce
	// a usable curve; more epochs should not break determinism.
	task, groups := imageTask(t, 800, 901)
	for _, epochs := range []int{1, 3} {
		e := mustEngine(t, Config{Seed: 7, MaxInputs: 150, EvalEpochs: epochs})
		a, err := e.Run(task, groups)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(task, groups)
		if err != nil {
			t.Fatal(err)
		}
		if a.FinalQuality != b.FinalQuality {
			t.Fatalf("epochs=%d: eval not deterministic", epochs)
		}
	}
}
