// Package core implements the Zombie engine — the paper's primary
// contribution. Given a Task (corpus + feature code + learner + metric)
// and a set of index Groups built offline, the engine runs the online
// inner loop: a multi-armed bandit repeatedly picks an index group, the
// group's next unprocessed input is run through the feature code, the
// resulting example trains the incremental learner, and the observed
// reward (usefulness or holdout-quality movement) updates the bandit.
// A plateau detector over the learning curve stops the run early once the
// quality estimate has converged.
//
// The package also implements the baselines the paper compares against —
// sequential scan, shuffled random scan, and the ground-truth oracle —
// over exactly the same loop, so measured differences isolate input
// selection.
package core

import (
	"fmt"
	"time"

	"zombie/internal/bandit"
	"zombie/internal/fault"
	"zombie/internal/featcache"
	"zombie/internal/obs"
	"zombie/internal/otrace"
	"zombie/internal/trace"
)

// RewardKind selects how the engine converts a step's outcome into a
// bandit reward.
type RewardKind int

const (
	// RewardUsefulness pays 1 when the feature code marks the input
	// useful (paper default: cheap, exact attribution).
	RewardUsefulness RewardKind = iota
	// RewardQualityDelta pays the clamped, scaled improvement of a small
	// holdout subsample's quality caused by training on the example.
	RewardQualityDelta
	// RewardHybrid averages the two.
	RewardHybrid
)

// String returns the reward's table label.
func (k RewardKind) String() string {
	switch k {
	case RewardUsefulness:
		return "usefulness"
	case RewardQualityDelta:
		return "quality-delta"
	case RewardHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("RewardKind(%d)", int(k))
	}
}

// EarlyStopConfig tunes plateau detection over the learning curve. The
// detector sees one quality sample per evaluation (every Config.EvalEvery
// inputs), so Window and Patience are measured in evaluations.
type EarlyStopConfig struct {
	// Enabled turns early stopping on.
	Enabled bool
	// Window is how many recent quality samples the slope is fitted over
	// (default 8).
	Window int
	// SlopeThreshold is the absolute per-sample slope below which the
	// curve counts as flat (default 0.002).
	SlopeThreshold float64
	// Patience is how many consecutive flat checks are required
	// (default 2).
	Patience int
	// MinInputs prevents stopping before this many inputs regardless of
	// slope (default 200).
	MinInputs int
}

func (c EarlyStopConfig) withDefaults() EarlyStopConfig {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.SlopeThreshold <= 0 {
		c.SlopeThreshold = 0.002
	}
	if c.Patience <= 0 {
		c.Patience = 2
	}
	if c.MinInputs <= 0 {
		c.MinInputs = 200
	}
	return c
}

// Config parameterizes an engine. The zero value plus a Policy is usable;
// New fills in defaults.
type Config struct {
	// Policy names the bandit policy (see bandit.Spec). Default
	// "eps-greedy:0.1", the paper's workhorse.
	Policy bandit.Spec
	// PolicyStats configures per-arm reward aging (default cumulative).
	PolicyStats bandit.StatsConfig
	// Reward selects the reward function.
	Reward RewardKind
	// RewardSubsample is the holdout subsample size used by the
	// quality-delta reward (default 50; values <= 0 also fall back to the
	// default, and a subsample at least as large as the holdout reuses the
	// full holdout). The floor exists because an empty reward holdout
	// would silently zero every quality-delta reward.
	RewardSubsample int
	// RewardScale multiplies the quality delta before clamping to [0,1]
	// (default 20).
	RewardScale float64
	// EvalEvery evaluates the full holdout every N processed inputs
	// (default 25). Smaller is a finer learning curve but more eval cost.
	EvalEvery int
	// EvalIncremental evaluates the running incremental model instead of
	// the default set-based evaluation, which retrains a fresh model on a
	// shuffled copy of every example collected so far at each evaluation
	// point. The default measures what the engineer cares about — the
	// quality of the collected example set — and is immune to
	// input-order artifacts of incremental learners (a bandit stream is
	// heavily ordered by construction). Incremental evaluation is cheaper
	// and matches the reward path exactly.
	EvalIncremental bool
	// EvalEpochs is how many shuffled passes set-based evaluation trains
	// for (default 1). SGD learners stabilize with 2-3 epochs over small
	// collected sets; count-based learners are unaffected. Values > 1
	// imply EvalFromScratch: multi-epoch training cannot be amortized.
	EvalEpochs int
	// EvalFromScratch forces the pre-amortization behavior of set-based
	// evaluation: retrain a fresh model over every collected example at
	// each evaluation point — O(n²) total work per run. By default the
	// engine amortizes evaluation for learners marked
	// learner.OrderInsensitive (the naive Bayes families): a persistent
	// evaluation model replays only the examples collected since the
	// previous evaluation (each delta shuffled deterministically), which
	// is O(n) total and identical in example-set semantics. Order-
	// sensitive learners (SGD, KNN, trees) always retrain from scratch
	// regardless of this flag, so set it only to compare NB curves against
	// the pre-amortization baseline.
	EvalFromScratch bool
	// BatchSize is how many inputs the loop pops per arm pull (default 1;
	// values <= 0 also mean 1, like RewardSubsample's floor).
	// At K=1 the loop is the classic per-step bandit and its output is
	// byte-identical to every release before batching existed. At K>1 the
	// selected arm yields up to K consecutive inputs which are read,
	// extracted and trained as one batch; the holdout is evaluated once per
	// batch boundary (whenever the processed-input count crosses a multiple
	// of EvalEvery), so the curve's points land on batch boundaries instead
	// of exact EvalEvery multiples. Delta-based rewards bracket the whole
	// batch with one before/after measurement — the amortization that makes
	// large K cheap — and every input in the batch is credited to the arm
	// individually. K>1 runs are deterministic for a given (seed, K) at any
	// shard count, transport, parallelism or cache state; see DESIGN.md §13.
	BatchSize int
	// EvalWorkers bounds the goroutines used per holdout evaluation
	// (default 1 = sequential). Quality scores are deterministic for any
	// worker count — see learner.(*Holdout).QualityParallel — so this is
	// purely a latency knob for large holdouts. Leave it at 1 when many
	// runs already execute concurrently (the experiment harness's
	// -parallel saturates cores at the run level).
	EvalWorkers int
	// EarlyStop configures plateau detection.
	EarlyStop EarlyStopConfig
	// MaxInputs caps processed inputs; 0 means run to exhaustion (or
	// early stop).
	MaxInputs int
	// MaxSimTime caps the simulated processing clock — the engineer's
	// "give me the best estimate you can in 20 minutes" budget; 0 means
	// no time cap.
	MaxSimTime time.Duration
	// Seed drives every random choice the engine makes.
	Seed int64
	// WarmStart, when non-empty and WarmStartDecay > 0, seeds the freshly
	// built bandit policy from a previous run's final ArmSnapshots before
	// the first selection — the session workspace's bridge between two
	// versions of a feature recipe over the same index groups. Each
	// snapshot arm receives round(WarmStartDecay × Pulls) synthetic
	// Update(arm, Mean) calls (see bandit.Seed); seeding consumes no
	// randomness, so a warm-started run is a pure function of
	// (Config, snapshots). Snapshot arms must index into the run's groups.
	// Ignored by scans and the oracle, which have no policy to seed.
	WarmStart []bandit.ArmSnapshot
	// WarmStartDecay scales trust in WarmStart, in [0,1]: 1 replays every
	// historical pull, 0 disables seeding entirely. The decay-0 identity
	// contract is load-bearing for sessions: with WarmStartDecay == 0 the
	// run is byte-identical to one with no WarmStart at all.
	WarmStartDecay float64
	// Cache, when non-nil, memoizes feature extraction through the
	// content-addressed extraction cache: every Extract during the run
	// (holdout builds included) is served from the cache when the
	// (feature-fingerprint, input) pair was computed before — by this run,
	// a concurrent run, or a previous process when the cache is
	// disk-backed. Extraction is deterministic and side-effect free by the
	// FeatureFunc contract and the simulated cost clock is charged either
	// way, so results are byte-identical with the cache on, off, cold or
	// warm; only WallTime and the RunResult cache counters change.
	Cache *featcache.Cache
	// MaxFailureFrac is the run's failure budget: the fraction of
	// processed inputs that may be quarantined (feature-code panics,
	// corpus read errors) before the run stops accepting more damage and
	// degrades to Stop = StopFailed with its partial results. Quarantined
	// inputs below the budget cost one record each and the run continues —
	// a messy corpus must not kill a run the serving layer promised to a
	// client. Default 0.5; 1 disables the budget (quarantine everything,
	// never degrade). The budget is only evaluated after a 20-step grace
	// period so one early failure cannot trip a fraction computed over a
	// handful of steps.
	MaxFailureFrac float64
	// Faults, when non-nil, injects seeded deterministic failures at the
	// engine's fault sites (fault.SiteExtract keyed by input ID,
	// fault.SiteCorpusRead keyed by store index). Production runs leave it
	// nil; chaos tests and make chaos-smoke use it to prove the quarantine
	// and budget machinery end to end. Because decisions are pure hashes
	// of (seed, site, id), two runs with the same engine seed and fault
	// seed are byte-identical, quarantine list included.
	Faults *fault.Injector
	// TraceEvents records a step-level trace into the result.
	TraceEvents bool
	// Progress, when non-nil, is invoked synchronously from the run
	// goroutine each time a learning-curve point is appended (including
	// the step-0 floor and the final point). Long-lived consumers — the
	// serving layer bridges this to SSE — must not block: the loop stalls
	// for as long as the callback runs.
	Progress func(CurvePoint)
	// Event, when non-nil, is invoked synchronously from the run goroutine
	// for every step event, whether or not TraceEvents retains them in the
	// result. The serving layer bridges this into each run's bounded trace
	// ring and SSE trace frames. Like Progress, the callback must not
	// block.
	Event func(trace.Event)
	// Obs, when non-nil, is the process-wide telemetry registry the run
	// observes into: per-phase latency histograms (zombie_phase_seconds)
	// and the whole-run histogram (zombie_run_seconds). Metric declaration
	// is idempotent, so every run of a process shares the same series.
	// Timing is observational only — RunResult.Phases is filled either way
	// and curves are byte-identical with Obs set or nil.
	Obs *obs.Registry
	// Tracer, when non-nil, records the run's span tree: a root "run"
	// span, a "holdout" span, one "batch" span per arm pull bracketing the
	// six phases with per-phase wall attrs, "eval" spans for the
	// out-of-batch holdout evaluations, and one "part" span per recipe
	// part carrying the per-part cache/compute cost (cached runs only).
	// The loop stamps each batch's span into the ctx it hands the
	// Executor, so the distributed coordinator parents its rpc spans —
	// and the worker spans it stitches back — under the right batch.
	// Tracing is observational by construction: a traced run's curve,
	// arms and quarantine list are byte-identical to an untraced one
	// (test-asserted), and nil disables it with zero cost.
	Tracer *otrace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "eps-greedy:0.1"
	}
	if c.RewardSubsample <= 0 {
		c.RewardSubsample = 50
	}
	if c.RewardScale <= 0 {
		c.RewardScale = 20
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 25
	}
	if c.EvalEpochs <= 0 {
		c.EvalEpochs = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.EvalWorkers <= 0 {
		c.EvalWorkers = 1
	}
	if c.MaxFailureFrac <= 0 {
		c.MaxFailureFrac = 0.5
	}
	c.EarlyStop = c.EarlyStop.withDefaults()
	return c
}

// Engine runs feature-evaluation inner loops. An Engine is immutable and
// safe to reuse across runs; each Run derives its own random substreams
// from Config.Seed, so repeated identical calls produce identical results.
type Engine struct {
	cfg Config
}

// New validates the configuration and returns an engine.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxInputs < 0 {
		return nil, fmt.Errorf("core: MaxInputs must be >= 0, got %d", cfg.MaxInputs)
	}
	if cfg.MaxSimTime < 0 {
		return nil, fmt.Errorf("core: MaxSimTime must be >= 0, got %v", cfg.MaxSimTime)
	}
	if cfg.MaxFailureFrac > 1 {
		return nil, fmt.Errorf("core: MaxFailureFrac must be in (0,1], got %v", cfg.MaxFailureFrac)
	}
	if cfg.WarmStartDecay != cfg.WarmStartDecay || cfg.WarmStartDecay < 0 || cfg.WarmStartDecay > 1 {
		return nil, fmt.Errorf("core: WarmStartDecay must be in [0,1], got %v", cfg.WarmStartDecay)
	}
	// Validate the policy spec eagerly with a throwaway build.
	if _, err := cfg.Policy.Build(2, cfg.PolicyStats, dummyRNG()); err != nil {
		return nil, err
	}
	switch cfg.Reward {
	case RewardUsefulness, RewardQualityDelta, RewardHybrid:
	default:
		return nil, fmt.Errorf("core: unknown RewardKind %d", int(cfg.Reward))
	}
	return &Engine{cfg: cfg}, nil
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }
