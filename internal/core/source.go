package core

import (
	"fmt"
	"sort"

	"zombie/internal/bandit"
	"zombie/internal/index"
	"zombie/internal/rng"
)

// inputSource abstracts where the next input comes from, so the bandit
// engine and the scan baselines share one inner loop.
type inputSource interface {
	// nextBatch returns up to k input store indices popped under one
	// selection decision, and the arm that chose them; ok is false when
	// the source is exhausted. Exactly one policy decision (and therefore
	// one RNG draw sequence) is consumed per call regardless of k, which
	// is what makes nextBatch(1) consume randomness identically to the
	// pre-batching per-step loop. The returned slice may alias internal
	// storage and is only valid until the next call. A short batch (fewer
	// than k indices) means the chosen arm ran out of inputs, not that the
	// source is exhausted — the caller keeps pulling.
	nextBatch(k int) (idxs []int, arm int, ok bool)
	// feedback credits the reward for one input of the most recent pull
	// of arm; a batch of n inputs feeds back n times.
	feedback(arm int, reward float64)
	// name labels the selection strategy in results.
	name() string
	// arms returns per-arm statistics (nil for scans).
	arms() []bandit.ArmSnapshot
}

func dummyRNG() *rng.RNG { return rng.New(0) }

// banditSource walks index groups under a bandit policy. Group member
// lists are pre-filtered to the task's input pool; each group keeps a
// cursor, and a group becomes ineligible when its cursor reaches the end.
type banditSource struct {
	policy  bandit.Policy
	members [][]int
	cursor  []int
	elig    []bool
	batch   []int // reused across nextBatch calls
	label   string
}

// newBanditSource filters groups to the pool mask and builds the policy.
func newBanditSource(groups *index.Groups, pool []bool, spec bandit.Spec,
	stats bandit.StatsConfig, r *rng.RNG) (*banditSource, error) {
	if groups == nil || groups.K() == 0 {
		return nil, fmt.Errorf("core: bandit run requires non-empty groups")
	}
	if len(pool) != groups.Len() {
		return nil, fmt.Errorf("core: pool mask length %d does not match groups over %d inputs", len(pool), groups.Len())
	}
	members := make([][]int, groups.K())
	total := 0
	for g, ms := range groups.Members {
		for _, idx := range ms {
			if pool[idx] {
				members[g] = append(members[g], idx)
			}
		}
		total += len(members[g])
	}
	if total == 0 {
		return nil, fmt.Errorf("core: no pool inputs fall inside the groups")
	}
	policy, err := spec.Build(groups.K(), stats, r)
	if err != nil {
		return nil, err
	}
	s := &banditSource{
		policy:  policy,
		members: members,
		cursor:  make([]int, groups.K()),
		elig:    make([]bool, groups.K()),
		label:   fmt.Sprintf("zombie(%s)", policy.Name()),
	}
	return s, nil
}

func (s *banditSource) nextBatch(k int) ([]int, int, bool) {
	any := false
	for g := range s.members {
		ok := s.cursor[g] < len(s.members[g])
		s.elig[g] = ok
		any = any || ok
	}
	if !any {
		return nil, 0, false
	}
	arm := s.policy.Select(s.elig)
	// Pop up to k consecutive members from the selected arm. When the arm
	// holds fewer than k the batch is short — the caller handles partial
	// batches; the arm simply becomes ineligible on the next pull.
	if remaining := len(s.members[arm]) - s.cursor[arm]; k > remaining {
		k = remaining
	}
	s.batch = s.batch[:0]
	for i := 0; i < k; i++ {
		s.batch = append(s.batch, s.members[arm][s.cursor[arm]])
		s.cursor[arm]++
	}
	return s.batch, arm, true
}

// warmStart seeds the policy from a previous run's arm snapshots (see
// bandit.Seed). It must run before the first nextBatch call; it returns
// the number of synthetic pulls applied.
func (s *banditSource) warmStart(snaps []bandit.ArmSnapshot, decay float64) (int64, error) {
	if decay == 0 || len(snaps) == 0 {
		return 0, nil
	}
	n, err := bandit.Seed(s.policy, snaps, decay)
	if err != nil {
		return 0, fmt.Errorf("core: warm start: %w", err)
	}
	return n, nil
}

func (s *banditSource) feedback(arm int, reward float64) { s.policy.Update(arm, reward) }
func (s *banditSource) name() string                     { return s.label }
func (s *banditSource) arms() []bandit.ArmSnapshot       { return s.policy.Snapshot() }

// scanSource yields a fixed order of pool indices: the sequential and
// shuffled-scan baselines, and the oracle ordering.
type scanSource struct {
	order  []int
	cursor int
	label  string
}

func (s *scanSource) nextBatch(k int) ([]int, int, bool) {
	if s.cursor >= len(s.order) {
		return nil, 0, false
	}
	if remaining := len(s.order) - s.cursor; k > remaining {
		k = remaining
	}
	batch := s.order[s.cursor : s.cursor+k]
	s.cursor += k
	return batch, 0, true
}

func (s *scanSource) feedback(int, float64)      {}
func (s *scanSource) name() string               { return s.label }
func (s *scanSource) arms() []bandit.ArmSnapshot { return nil }

// newSequentialScan processes the pool in ascending store order — the
// "just run the job" baseline whose order is whatever the crawl wrote.
func newSequentialScan(pool []int) *scanSource {
	order := append([]int(nil), pool...)
	sort.Ints(order)
	return &scanSource{order: order, label: "scan(sequential)"}
}

// newRandomScan processes the pool in seeded shuffled order — the
// paper's primary baseline (uniform random sampling without replacement).
func newRandomScan(pool []int, r *rng.RNG) *scanSource {
	order := append([]int(nil), pool...)
	r.ShuffleInts(order)
	return &scanSource{order: order, label: "scan(random)"}
}

// newOracleScan processes ground-truth useful inputs first — the skyline
// no selector can beat. usefulFirst lists pool indices with Truth-level
// usefulness; rest is everything else.
func newOracleScan(usefulFirst, rest []int, r *rng.RNG) *scanSource {
	a := append([]int(nil), usefulFirst...)
	b := append([]int(nil), rest...)
	r.ShuffleInts(a)
	r.ShuffleInts(b)
	return &scanSource{order: append(a, b...), label: "scan(oracle)"}
}
