package core

import "testing"

// benchInnerLoop drives the full bandit loop — select, read, extract,
// train, delta-reward bracket — over a generated wiki corpus and reports
// allocs/op for the whole run. RewardQualityDelta is the expensive reward
// (two holdout evaluations per pull), which is exactly where batching
// amortizes: K=16 pays the bracket once per 16 inputs instead of per input.
func benchInnerLoop(b *testing.B, batch int) {
	task, groups := wikiTask(b, 900, 77)
	cfg := Config{Seed: 5, MaxInputs: 200, Reward: RewardQualityDelta, BatchSize: batch}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mustEngine(b, cfg).Run(task, groups); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInnerStepK1(b *testing.B)  { benchInnerLoop(b, 1) }
func BenchmarkInnerStepK16(b *testing.B) { benchInnerLoop(b, 16) }
