package core

import (
	"reflect"
	"testing"
	"time"

	"zombie/internal/fault"
	"zombie/internal/featcache"
	"zombie/internal/featurepipe"
	"zombie/internal/otrace"
)

// TestTracingObservational is the tracing identity contract at the engine
// level: the same seed produces byte-identical curves, arms, and
// quarantine lists with a tracer attached or not — including under fault
// injection, where the quarantine list is the interesting output.
func TestTracingObservational(t *testing.T) {
	task, groups := wikiTask(t, 400, 7)
	faults, err := fault.Parse("extract:err=0.05,panic=0.03;corpus.read:err=0.02", 3)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Seed: 11, MaxInputs: 200, BatchSize: 4, Faults: faults, TraceEvents: true}

	plain, err := mustEngine(t, base).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	traced := base
	traced.Tracer = otrace.New("test-run", 0)
	withSpans, err := mustEngine(t, traced).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}

	identicalRuns(t, "tracing on/off", plain, withSpans)
	if !reflect.DeepEqual(plain.Arms, withSpans.Arms) {
		t.Fatalf("arms diverged:\n%v\n%v", plain.Arms, withSpans.Arms)
	}
	if !reflect.DeepEqual(plain.Quarantined, withSpans.Quarantined) {
		t.Fatalf("quarantine lists diverged:\n%v\n%v", plain.Quarantined, withSpans.Quarantined)
	}
	if traced.Tracer.Len() == 0 {
		t.Fatal("traced run recorded no spans")
	}
}

// TestRunSpanTreeShape asserts the structure the tracer records for a
// local run: one root "run" span, a "holdout" child, one "batch" span per
// arm pull with the six-phase attrs, and eval spans — all closed.
func TestRunSpanTreeShape(t *testing.T) {
	task, groups := wikiTask(t, 300, 5)
	tr := otrace.New("shape-run", 0)
	cfg := Config{Seed: 3, MaxInputs: 60, BatchSize: 4, Tracer: tr}
	res, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}

	spans, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("small run dropped %d spans", dropped)
	}
	counts := map[string]int{}
	var root otrace.Span
	var batchSelect, batchExtract time.Duration
	batchSteps := int64(0)
	for _, sp := range spans {
		counts[sp.Name]++
		if sp.DurNanos < 0 {
			t.Fatalf("span %q (id %d) never closed", sp.Name, sp.ID)
		}
		switch sp.Name {
		case "run":
			root = sp
		case "batch":
			if n, ok := sp.AttrInt("ns.select"); ok {
				batchSelect += time.Duration(n)
			}
			if n, ok := sp.AttrInt("ns.extract"); ok {
				batchExtract += time.Duration(n)
			}
			if n, ok := sp.AttrInt("steps"); ok {
				batchSteps += n
			}
		}
	}
	if counts["run"] != 1 || counts["holdout"] != 1 {
		t.Fatalf("span census: %v (want exactly one run and one holdout)", counts)
	}
	if counts["batch"] < res.InputsProcessed/cfg.BatchSize {
		t.Fatalf("only %d batch spans for %d inputs at K=%d", counts["batch"], res.InputsProcessed, cfg.BatchSize)
	}
	if counts["eval"] == 0 {
		t.Fatalf("no eval spans recorded: %v", counts)
	}
	if batchSteps != int64(res.InputsProcessed) {
		t.Fatalf("batch step attrs sum to %d, run processed %d", batchSteps, res.InputsProcessed)
	}
	// Phase attrs on batch spans must reconcile with the run's phase
	// breakdown — same clocks, read at batch boundaries.
	if batchSelect != res.Phases.Select {
		t.Fatalf("batch ns.select sum %v != phases.Select %v", batchSelect, res.Phases.Select)
	}
	if batchExtract != res.Phases.Extract {
		t.Fatalf("batch ns.extract sum %v != phases.Extract %v", batchExtract, res.Phases.Extract)
	}
	if stop, _ := root.Attr("stop"); stop != res.Stop.String() {
		t.Fatalf("run span stop attr %q, result %v", stop, res.Stop)
	}
	// The cost summary built from these spans attributes every phase to
	// the coordinator (-1) with no parts (uncached run).
	cost := otrace.BuildCost(spans, dropped)
	if cost.WallSeconds <= 0 || len(cost.Cells) == 0 {
		t.Fatalf("degenerate cost summary: %+v", cost)
	}
	for _, c := range cost.Cells {
		if c.Shard != -1 || c.Part != "" {
			t.Fatalf("local run produced non-local cost cell: %+v", c)
		}
	}
}

// TestPartSpansCarryCacheAttribution: a cached composite run emits one
// "part" span per recipe part, and the cost summary grows per-part
// extract cells from them.
func TestPartSpansCarryCacheAttribution(t *testing.T) {
	task, groups := wikiTask(t, 200, 9)
	comp, err := featurepipe.NewCompositeFeature("cwiki",
		featurepipe.NewWikiFeature(2), featurepipe.NewWikiFeature(4), featurepipe.NewWikiFeature(5))
	if err != nil {
		t.Fatal(err)
	}
	task = task.WithFeature(comp)
	cache := mustCache(t, featcache.Config{MaxBytes: 32 << 20})
	defer cache.Close()

	tr := otrace.New("part-run", 0)
	res, err := mustEngine(t, Config{Seed: 4, MaxInputs: 40, Cache: cache, Tracer: tr}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses == 0 {
		t.Fatal("cached run recorded no cache traffic")
	}
	spans, dropped := tr.Snapshot()
	parts := map[string]bool{}
	for _, sp := range spans {
		if sp.Name != "part" {
			continue
		}
		name, _ := sp.Attr("part")
		parts[name] = true
		if _, ok := sp.AttrInt("ns.extract"); !ok {
			t.Fatalf("part span %q missing ns.extract attr: %v", name, sp.Attrs)
		}
	}
	if len(parts) != 3 {
		t.Fatalf("got part spans %v, want the composite's 3 parts", parts)
	}
	cost := otrace.BuildCost(spans, dropped)
	partCells := 0
	for _, c := range cost.Cells {
		if c.Part != "" && c.Phase == "extract" {
			partCells++
		}
	}
	if partCells != 3 {
		t.Fatalf("cost summary has %d per-part extract cells, want 3: %+v", partCells, cost.Cells)
	}
}
