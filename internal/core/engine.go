package core

import (
	"context"
	"strconv"
	"time"

	"zombie/internal/corpus"
	"zombie/internal/fault"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/learner"
	"zombie/internal/otrace"
	"zombie/internal/rng"
	"zombie/internal/stats"
	"zombie/internal/trace"
)

// Run executes the Zombie inner loop over the task's input pool, selecting
// inputs through the index groups with the configured bandit policy.
func (e *Engine) Run(task *featurepipe.Task, groups *index.Groups) (*RunResult, error) {
	return e.RunContext(context.Background(), task, groups)
}

// RunContext is Run with cancellation: the loop checks ctx once per step
// and, when cancelled, returns the partial result accumulated so far with
// Stop = StopCancelled rather than an error.
func (e *Engine) RunContext(ctx context.Context, task *featurepipe.Task, groups *index.Groups) (*RunResult, error) {
	return e.RunWithExecutor(ctx, task, groups, NewLocalExecutor(task, e.cfg.Cache, e.cfg.Faults))
}

// RunWithExecutor is RunContext with step execution delegated to exec —
// the entry point the distributed coordinator uses. The RNG derivation,
// policy construction and loop are exactly RunContext's, so any executor
// producing the same step outcomes yields a byte-identical curve; task
// must be the unwrapped task (the executor owns cache and fault
// wrapping).
func (e *Engine) RunWithExecutor(ctx context.Context, task *featurepipe.Task, groups *index.Groups, exec Executor) (*RunResult, error) {
	r := rng.New(e.cfg.Seed).Split("run:" + task.Name + ":" + task.Feature.Name())
	src, err := newBanditSource(groups, task.PoolSet(), e.cfg.Policy, e.cfg.PolicyStats, r.Split("policy"))
	if err != nil {
		return nil, err
	}
	seeded, err := src.warmStart(e.cfg.WarmStart, e.cfg.WarmStartDecay)
	if err != nil {
		return nil, err
	}
	res, err := e.loop(ctx, task, src, r, exec)
	if res != nil {
		res.WarmStartPulls = seeded
	}
	return res, err
}

// RunScan executes the same loop over a fixed input order: the sequential
// baseline (shuffle=false) or the paper's random-sampling baseline
// (shuffle=true).
func (e *Engine) RunScan(task *featurepipe.Task, shuffle bool) (*RunResult, error) {
	return e.RunScanContext(context.Background(), task, shuffle)
}

// RunScanContext is RunScan with cancellation (see RunContext).
func (e *Engine) RunScanContext(ctx context.Context, task *featurepipe.Task, shuffle bool) (*RunResult, error) {
	r := rng.New(e.cfg.Seed).Split("scan:" + task.Name + ":" + task.Feature.Name())
	var src inputSource
	if shuffle {
		src = newRandomScan(task.PoolIdx, r.Split("order"))
	} else {
		src = newSequentialScan(task.PoolIdx)
	}
	return e.loop(ctx, task, src, r, NewLocalExecutor(task, e.cfg.Cache, e.cfg.Faults))
}

// RunOracle executes the loop over the ground-truth-best order: all
// useful inputs first. No realizable selector can beat it; experiments use
// it as the skyline.
func (e *Engine) RunOracle(task *featurepipe.Task) (*RunResult, error) {
	return e.RunOracleContext(context.Background(), task)
}

// RunOracleContext is RunOracle with cancellation (see RunContext).
func (e *Engine) RunOracleContext(ctx context.Context, task *featurepipe.Task) (*RunResult, error) {
	r := rng.New(e.cfg.Seed).Split("oracle:" + task.Name + ":" + task.Feature.Name())
	var useful, rest []int
	for _, idx := range task.PoolIdx {
		if oracleUseful(task.Store.Get(idx), task.Feature) {
			useful = append(useful, idx)
		} else {
			rest = append(rest, idx)
		}
	}
	src := newOracleScan(useful, rest, r.Split("order"))
	return e.loop(ctx, task, src, r, NewLocalExecutor(task, e.cfg.Cache, e.cfg.Faults))
}

// oracleUseful mirrors the task feature functions' usefulness definitions
// at the ground-truth level, without paying for extraction.
func oracleUseful(in *corpus.Input, f featurepipe.FeatureFunc) bool {
	if sf, ok := f.(*featurepipe.SongFeature); ok {
		return in.Truth.Class >= sf.Genres/2
	}
	return in.Truth.Class == 1
}

// loop is the shared inner loop: one iteration per processed input.
// Cancellation is checked once per step; a cancelled loop returns the
// partial result accumulated so far (never an error), skipping the final
// re-evaluation so cancellation latency is one step, not one holdout pass.
func (e *Engine) loop(ctx context.Context, task *featurepipe.Task, src inputSource, r *rng.RNG, exec Executor) (*RunResult, error) {
	wallStart := time.Now()
	// Phase accounting is always on: the timers cost a few time.Now calls
	// per step against feature-extraction work that dominates by orders of
	// magnitude, and every run reporting where its time went is the whole
	// point of the telemetry layer. The registry fan-out (po) is optional.
	// Cache threading and fault wrapping live inside the executor (see
	// NewLocalExecutor), after the callers derived their RNG substreams and
	// the oracle inspected the concrete feature type; the wrappers preserve
	// Name/Dim/fingerprints, so a cached run is byte-identical to an
	// uncached one and the loop's own task stays unwrapped.
	var phases PhaseBreakdown
	po := newPhaseObs(e.cfg.Obs)

	// Span tracing follows the same observational contract as the phase
	// clocks: a nil tracer records nothing and every Start/End below is a
	// no-op, so the decision stream cannot depend on tracing state.
	tracer := e.cfg.Tracer
	runRef := tracer.Start(0, "run",
		otrace.String("task", task.Name),
		otrace.String("strategy", src.name()))

	res := &RunResult{
		Task:     task.Name,
		Strategy: src.name(),
	}
	hRef := tracer.Start(runRef.ID(), "holdout")
	tHoldout := time.Now()
	holdout, skips, err := exec.BuildHoldout(otrace.ContextWithSpan(ctx, tracer, hRef.ID()))
	phases.Holdout = time.Since(tHoldout)
	po.observe(phHoldout, phases.Holdout)
	hRef.End(otrace.Dur("ns.holdout", phases.Holdout))
	for _, s := range skips {
		res.Quarantined = append(res.Quarantined, Quarantine{
			InputID: s.InputID, Site: "holdout", Step: 0, Reason: s.Reason,
		})
	}
	if err != nil {
		runRef.End(otrace.String("error", err.Error()))
		return nil, err
	}
	// The quality-delta reward evaluates a small fixed subsample before
	// and after each update; build it once per run.
	var rewardHold *learner.Holdout
	if e.cfg.Reward != RewardUsefulness {
		rewardHold = subsampleHoldout(holdout, e.cfg.RewardSubsample, r.Split("reward-subsample"))
	}

	model := task.NewModel(task.Feature)
	detector := stats.NewPlateauDetector(e.cfg.EarlyStop.Window, e.cfg.EarlyStop.SlopeThreshold, e.cfg.EarlyStop.Patience)

	// Set-based evaluation (the default) measures the quality of the
	// example set collected so far, independent of the stream order the
	// bandit imposed. The amortized scheme keeps one persistent evaluation
	// model (the "snapshot") and, at each evaluation point, replays only
	// the examples collected since the previous evaluation in a
	// deterministically shuffled order — O(n) total training work per run
	// instead of the O(n²) of retraining from scratch every time. The two
	// schemes train on identical example sets, so they are equivalent for
	// learners whose fit is order-insensitive (the naive Bayes families the
	// workloads use, marked by learner.OrderInsensitive); order-sensitive
	// learners (SGD, KNN, trees) automatically keep the from-scratch full
	// reshuffle, as do EvalFromScratch and EvalEpochs > 1 (multi-epoch
	// training cannot be amortized).
	_, orderInsensitive := model.(learner.OrderInsensitive)
	fromScratch := e.cfg.EvalFromScratch || e.cfg.EvalEpochs > 1 || !orderInsensitive
	var collected []learner.Example // every example, for from-scratch retrains
	var pending []learner.Example   // examples not yet replayed into evalModel
	var evalModel learner.Model
	evalRNG := r.Split("eval")
	evaluate := func() float64 {
		tEval := time.Now()
		defer func() {
			d := time.Since(tEval)
			phases.Eval += d
			po.observe(phEval, d)
		}()
		if e.cfg.EvalIncremental {
			return e.quality(holdout, model)
		}
		if fromScratch {
			m := task.NewModel(task.Feature)
			for epoch := 0; epoch < e.cfg.EvalEpochs; epoch++ {
				for _, i := range evalRNG.Perm(len(collected)) {
					m.PartialFit(collected[i])
				}
			}
			return e.quality(holdout, m)
		}
		if evalModel == nil {
			evalModel = task.NewModel(task.Feature)
		}
		if len(pending) > 0 {
			for _, i := range evalRNG.Perm(len(pending)) {
				evalModel.PartialFit(pending[i])
			}
			pending = pending[:0]
		}
		return e.quality(holdout, evalModel)
	}

	var events *trace.Log
	if e.cfg.TraceEvents {
		events = &trace.Log{}
	}
	// emit records a step event into the in-result log (nil-safe when
	// tracing is off) and mirrors it to the Event hook — the serving
	// layer's live trace ring.
	emit := func(ev trace.Event) {
		events.Record(ev)
		if e.cfg.Event != nil {
			e.cfg.Event(ev)
		}
	}

	record := func(p CurvePoint) {
		res.Curve = append(res.Curve, p)
		if e.cfg.Progress != nil {
			e.cfg.Progress(p)
		}
	}

	var simTime time.Duration
	eRef := tracer.Start(runRef.ID(), "eval", otrace.Int("inputs", 0))
	record(CurvePoint{Inputs: 0, Quality: evaluate(), SimTime: 0})
	eRef.End(otrace.Dur("ns.eval", phases.Eval))

	// loopQuarantined counts inputs quarantined by the loop itself
	// (holdout-phase quarantines predate the budget's denominator and are
	// excluded). overBudget is checked after every quarantine, behind a
	// grace period so a fraction computed over a handful of early steps
	// cannot trip it.
	const failureGraceSteps = 20
	loopQuarantined := 0
	overBudget := func(steps int) bool {
		return steps >= failureGraceSteps &&
			float64(loopQuarantined) > e.cfg.MaxFailureFrac*float64(steps)
	}

	// The loop processes inputs in batches of up to BatchSize per arm pull
	// (K=1, the default, is the classic per-step bandit; its decision
	// stream — and therefore its output — is byte-identical to the
	// pre-batching loop). Per-batch scratch is allocated once and reused:
	// the inner loop must not pay an allocation per processed input.
	deltaBased := e.cfg.Reward != RewardUsefulness
	batchExec, _ := exec.(BatchExecutor)
	batchCap := e.cfg.BatchSize
	rewards := make([]float64, 0, batchCap)
	errMsgs := make([]string, 0, batchCap)
	simAt := make([]time.Duration, 0, batchCap)
	var outs []StepOutcome
	var errs []error
	var out1 [1]StepOutcome // K=1 fast path: no per-step slice allocation
	var err1 [1]error
	if batchExec == nil && batchCap > 1 {
		outs = make([]StepOutcome, 0, batchCap)
		errs = make([]error, 0, batchCap)
	}

	// endBatch closes a batch span with the arm and the per-phase wall
	// deltas this batch contributed — the attrs the cost summary
	// aggregates. Defined once: the loop must not allocate a closure (or,
	// with tracing off, anything at all) per iteration.
	endBatch := func(bRef *otrace.SpanRef, arm, n int, prev PhaseBreakdown) {
		if bRef == nil {
			return
		}
		bRef.End(
			otrace.Int("arm", int64(arm)),
			otrace.Int("steps", int64(n)),
			otrace.Dur("ns.select", phases.Select-prev.Select),
			otrace.Dur("ns.read", phases.Read-prev.Read),
			otrace.Dur("ns.extract", phases.Extract-prev.Extract),
			otrace.Dur("ns.train", phases.Train-prev.Train),
			otrace.Dur("ns.eval", phases.Eval-prev.Eval),
			otrace.Dur("ns.rpc", phases.RPC-prev.RPC),
		)
	}

	// The batch span rides the ctx through a cursor stamped once here and
	// repointed per batch — context.WithValue per iteration would cost two
	// heap allocations. Safe because every consumer of a batch's position
	// (local executor goroutines, shard RPCs) joins before the next batch.
	cursor := tracer.Cursor()
	cursorCtx := otrace.ContextWithCursor(ctx, cursor)
	var batchSpan otrace.SpanRef // loop-owned; refilled by StartInto per batch

	stop := StopExhausted
	steps := 0
loop:
	for {
		if ctx.Err() != nil {
			stop = StopCancelled
			break
		}
		if e.cfg.MaxInputs > 0 && steps >= e.cfg.MaxInputs {
			stop = StopBudget
			break
		}
		if e.cfg.MaxSimTime > 0 && simTime >= e.cfg.MaxSimTime {
			stop = StopBudget
			break
		}
		// Clamp the batch to the remaining input budget so a batch never
		// overshoots MaxInputs: a K=16 run with MaxInputs=100 processes
		// exactly 100 inputs, same as K=1 would.
		k := e.cfg.BatchSize
		if e.cfg.MaxInputs > 0 && steps+k > e.cfg.MaxInputs {
			k = e.cfg.MaxInputs - steps
		}
		// One span per batch, bracketing the six phases; the batch's span
		// rides the ctx so a distributed executor parents its rpc spans
		// (and the stitched worker spans) under it.
		var bRef *otrace.SpanRef
		stepCtx := ctx
		prevPhases := phases
		tSelect := time.Now()
		if tracer != nil {
			// StartInto fills the loop-owned ref and shares tSelect's clock
			// reading — the batch span must cost no allocations and no
			// extra syscalls per iteration.
			tracer.StartInto(&batchSpan, tSelect, runRef.ID(), "batch",
				otrace.Int("step", int64(steps+1)))
			bRef = &batchSpan
			cursor.Move(batchSpan.ID())
			stepCtx = cursorCtx
		}
		idxs, arm, ok := src.nextBatch(k)
		dSelect := time.Since(tSelect)
		phases.Select += dSelect
		po.observe(phSelect, dSelect)
		if !ok {
			endBatch(bRef, -1, 0, prevPhases)
			break // pool exhausted
		}
		// The selected arm may hold fewer than k inputs; the short batch
		// still trains and evaluates normally (see TestPartialBatch).
		batchStart := steps
		tStep := time.Now()
		switch {
		case len(idxs) == 1:
			// Single-input batches dispatch through ExecuteStep so a K=1
			// run issues exactly the calls (and, distributed, the RPCs)
			// the pre-batching loop issued.
			out1[0], err1[0] = exec.ExecuteStep(stepCtx, steps+1, idxs[0])
			outs, errs = out1[:], err1[:]
		case batchExec != nil:
			outs, errs = batchExec.ExecuteBatch(stepCtx, steps+1, idxs)
		default:
			outs, errs = outs[:0], errs[:0]
			for j, idx := range idxs {
				out, err := exec.ExecuteStep(stepCtx, steps+1+j, idx)
				outs = append(outs, out)
				errs = append(errs, err)
			}
		}
		batchWall := time.Since(tStep)

		// Pass 1 — account and train, in input order. Failures quarantine
		// exactly as before: an executor error (dead worker past the
		// transport's retries) or a read error charges no cost and
		// quarantines by store index; a feature-code panic quarantines by
		// input ID. Delta-based rewards bracket the whole batch with one
		// before/after measurement of the reward holdout — the batch-train
		// amortization — which at K=1 degenerates to the exact per-input
		// bracket the loop always used.
		rewards, errMsgs, simAt = rewards[:0], errMsgs[:0], simAt[:0]
		var before float64
		beforeDone := false
		trained := 0         // produced examples trained this batch
		advanced := false    // any input reached the extract stage
		quarantined := false // any input quarantined this batch
		var workNanos int64  // worker-side read+extract time, for rpc split
		for j, idx := range idxs {
			steps++
			rewards = append(rewards, 0)
			errMsgs = append(errMsgs, "")
			simAt = append(simAt, simTime)
			if errs[j] != nil {
				quarantined = true
				loopQuarantined++
				errMsgs[j] = errs[j].Error()
				res.Quarantined = append(res.Quarantined, Quarantine{
					InputID: "#" + strconv.Itoa(idx), Site: string(fault.SiteDistStep),
					Step: steps, Reason: errMsgs[j],
				})
				continue
			}
			out := &outs[j]
			workNanos += out.ReadNanos + out.ExtractNanos
			dRead := time.Duration(out.ReadNanos)
			phases.Read += dRead
			po.observe(phRead, dRead)
			if out.ReadErr != "" {
				quarantined = true
				loopQuarantined++
				errMsgs[j] = out.ReadErr
				res.Quarantined = append(res.Quarantined, Quarantine{
					InputID: "#" + strconv.Itoa(idx), Site: string(fault.SiteCorpusRead),
					Step: steps, Reason: out.ReadErr,
				})
				continue
			}
			advanced = true
			simTime += out.Cost
			simAt[j] = simTime
			dExtract := time.Duration(out.ExtractNanos)
			phases.Extract += dExtract
			po.observe(phExtract, dExtract)
			switch {
			case out.ExtractErr != "":
				res.Errors++
				errMsgs[j] = out.ExtractErr
				if out.Panicked {
					// A panic is categorically worse than a returned error:
					// the feature code lost control on this input. Quarantine
					// it so the run report names every input of this kind.
					quarantined = true
					loopQuarantined++
					res.Quarantined = append(res.Quarantined, Quarantine{
						InputID: out.InputID, Site: string(fault.SiteExtract),
						Step: steps, Reason: errMsgs[j],
					})
				}
			case out.Res.Produced:
				res.Produced++
				if out.Res.Useful {
					res.Useful++
				}
				tTrain := time.Now()
				if deltaBased {
					// rewards[j] temporarily holds the usefulness bit; the
					// shared batch delta folds in after the batch trains.
					if !beforeDone {
						before = rewardHold.Quality(model)
						beforeDone = true
					}
					model.PartialFit(out.Res.Example)
					trained++
					if out.Res.Useful {
						rewards[j] = 1
					}
				} else {
					rewards[j] = e.rewardFor(out.Res, model, rewardHold)
				}
				dTrain := time.Since(tTrain)
				phases.Train += dTrain
				po.observe(phTrain, dTrain)
				if !e.cfg.EvalIncremental {
					if fromScratch {
						collected = append(collected, out.Res.Example)
					} else {
						pending = append(pending, out.Res.Example)
					}
				}
			}
		}
		// Read and extract are timed where they ran (on a remote worker,
		// inside the worker process); the remainder of the batch wall is
		// transport overhead — nanoseconds of call dispatch for the local
		// executor, real serialization and network time for http. A batch
		// that never executed (dead worker) is all transport time.
		if rpc := batchWall - time.Duration(workNanos); rpc > 0 {
			phases.RPC += rpc
			po.observe(phRPC, rpc)
		}

		// Pass 2 — close the delta-reward bracket: one "after" measurement
		// for the whole batch; every produced input shares the batch delta.
		if deltaBased && trained > 0 {
			tTrain := time.Now()
			after := rewardHold.Quality(model)
			delta := clamp01((after - before) * e.cfg.RewardScale)
			dTrain := time.Since(tTrain)
			phases.Train += dTrain
			po.observe(phTrain, dTrain)
			for j := range idxs {
				if errs[j] == nil && outs[j].Res.Produced {
					if e.cfg.Reward == RewardQualityDelta {
						rewards[j] = delta
					} else { // RewardHybrid
						rewards[j] = 0.5*rewards[j] + 0.5*delta
					}
				}
			}
		}

		// Pass 3 — credit the arm once per input and emit the step events,
		// in input order.
		for j, idx := range idxs {
			out := &outs[j]
			src.feedback(arm, rewards[j])
			emit(trace.Event{
				Step: batchStart + 1 + j, InputIdx: idx, Arm: arm, Reward: rewards[j],
				Produced: out.Res.Produced, Useful: out.Res.Useful, Err: errMsgs[j],
				SimTime: simAt[j], CacheHit: out.CacheHit,
				Quarantined: errs[j] != nil || out.ReadErr != "" || out.Panicked,
			})
		}
		if quarantined && overBudget(steps) {
			stop = StopFailed
			endBatch(bRef, arm, len(idxs), prevPhases)
			break loop
		}

		// Evaluate once per batch boundary: whenever this batch pushed the
		// processed-input count across a multiple of EvalEvery. At K=1 the
		// condition is exactly steps%EvalEvery == 0. A batch whose every
		// input failed before extraction records no point, matching the
		// per-step loop's behavior on failed steps.
		if advanced && steps/e.cfg.EvalEvery > batchStart/e.cfg.EvalEvery {
			q := evaluate()
			record(CurvePoint{Inputs: steps, Quality: q, SimTime: simTime})
			plateau := detector.Observe(q)
			if e.cfg.EarlyStop.Enabled && plateau && steps >= e.cfg.EarlyStop.MinInputs {
				stop = StopEarly
				endBatch(bRef, arm, len(idxs), prevPhases)
				break loop
			}
		}
		endBatch(bRef, arm, len(idxs), prevPhases)
	}

	// Reuse the last in-loop evaluation when it already covers the final
	// step: from-scratch evaluation reshuffles, so re-evaluating the same
	// point can return a slightly different number for order-sensitive
	// learners (amortized evaluation is stable on re-evaluation, but the
	// reuse still skips a full holdout pass). A cancelled run also reuses
	// it — the caller asked the loop to stop, so it must not pay for one
	// more holdout evaluation.
	var final float64
	if n := len(res.Curve); n > 0 && (res.Curve[n-1].Inputs == steps || stop == StopCancelled) {
		final = res.Curve[n-1].Quality
	} else {
		evalPrev := phases.Eval
		fRef := tracer.Start(runRef.ID(), "eval", otrace.Int("inputs", int64(steps)))
		final = evaluate()
		fRef.End(otrace.Dur("ns.eval", phases.Eval-evalPrev))
		record(CurvePoint{Inputs: steps, Quality: final, SimTime: simTime})
	}
	res.InputsProcessed = steps
	res.FinalQuality = final
	res.SimTime = simTime
	res.WallTime = time.Since(wallStart)
	res.Stop = stop
	res.Arms = src.arms()
	res.Events = events
	st := exec.Stats()
	res.CacheHits = st.CacheHits
	res.CacheMisses = st.CacheMisses
	phases.CacheLookup = time.Duration(st.CacheLookupNanos)
	res.Phases = phases
	po.observeRun(res.WallTime)
	if tracer != nil {
		// One zero-length "part" span per recipe part carries the run's
		// per-part extraction cost (cached runs only; holdout extractions
		// included) — pure data carriers the cost summary groups by part.
		for _, pc := range st.Parts {
			tracer.Start(runRef.ID(), "part",
				otrace.String("part", pc.Part),
				otrace.Int("hits", pc.Hits),
				otrace.Int("misses", pc.Misses),
				otrace.Dur("ns.cache_lookup", time.Duration(pc.LookupNanos)),
				otrace.Dur("ns.extract", time.Duration(pc.ComputeNanos)),
			).End()
		}
		runRef.End(
			otrace.String("stop", stop.String()),
			otrace.Int("inputs", int64(steps)),
			otrace.Dur("ns.cache_lookup", time.Duration(st.CacheLookupNanos)),
		)
	}
	return res, nil
}

// quality scores a model against a holdout, fanning the prediction pass
// out over EvalWorkers goroutines when configured. Scores are
// deterministic for any worker count.
func (e *Engine) quality(h *learner.Holdout, m learner.Model) float64 {
	if e.cfg.EvalWorkers > 1 {
		return h.QualityParallel(m, e.cfg.EvalWorkers)
	}
	return h.Quality(m)
}

// rewardFor computes the configured reward for a produced example. For
// delta-based rewards, the model is trained inside this function (the
// before/after measurement brackets the update); for pure usefulness the
// model is trained here too, keeping the call site uniform.
func (e *Engine) rewardFor(extRes featurepipe.Result, model learner.Model, rewardHold *learner.Holdout) float64 {
	switch e.cfg.Reward {
	case RewardUsefulness:
		model.PartialFit(extRes.Example)
		if extRes.Useful {
			return 1
		}
		return 0
	case RewardQualityDelta:
		before := rewardHold.Quality(model)
		model.PartialFit(extRes.Example)
		after := rewardHold.Quality(model)
		return clamp01((after - before) * e.cfg.RewardScale)
	default: // RewardHybrid
		before := rewardHold.Quality(model)
		model.PartialFit(extRes.Example)
		after := rewardHold.Quality(model)
		delta := clamp01((after - before) * e.cfg.RewardScale)
		useful := 0.0
		if extRes.Useful {
			useful = 1
		}
		return 0.5*useful + 0.5*delta
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// subsampleHoldout returns a holdout over up to n examples sampled without
// replacement from h, preserving metric configuration. With n >= len it
// reuses the full example set, and so does n <= 0: an empty subsample
// would silently zero every quality-delta reward, turning the bandit into
// a uniform sampler with no visible error (Config.RewardSubsample
// documents the floor).
func subsampleHoldout(h *learner.Holdout, n int, r *rng.RNG) *learner.Holdout {
	if n <= 0 || n >= len(h.Examples) {
		return h
	}
	picks := r.SampleWithoutReplacement(len(h.Examples), n)
	sub := make([]learner.Example, n)
	for i, p := range picks {
		sub[i] = h.Examples[p]
	}
	return learner.NewHoldout(sub, h.Metric, h.Positive)
}
