package core

import (
	"context"
	"strconv"
	"time"

	"zombie/internal/corpus"
	"zombie/internal/fault"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/learner"
	"zombie/internal/rng"
	"zombie/internal/stats"
	"zombie/internal/trace"
)

// Run executes the Zombie inner loop over the task's input pool, selecting
// inputs through the index groups with the configured bandit policy.
func (e *Engine) Run(task *featurepipe.Task, groups *index.Groups) (*RunResult, error) {
	return e.RunContext(context.Background(), task, groups)
}

// RunContext is Run with cancellation: the loop checks ctx once per step
// and, when cancelled, returns the partial result accumulated so far with
// Stop = StopCancelled rather than an error.
func (e *Engine) RunContext(ctx context.Context, task *featurepipe.Task, groups *index.Groups) (*RunResult, error) {
	return e.RunWithExecutor(ctx, task, groups, NewLocalExecutor(task, e.cfg.Cache, e.cfg.Faults))
}

// RunWithExecutor is RunContext with step execution delegated to exec —
// the entry point the distributed coordinator uses. The RNG derivation,
// policy construction and loop are exactly RunContext's, so any executor
// producing the same step outcomes yields a byte-identical curve; task
// must be the unwrapped task (the executor owns cache and fault
// wrapping).
func (e *Engine) RunWithExecutor(ctx context.Context, task *featurepipe.Task, groups *index.Groups, exec Executor) (*RunResult, error) {
	r := rng.New(e.cfg.Seed).Split("run:" + task.Name + ":" + task.Feature.Name())
	src, err := newBanditSource(groups, task.PoolSet(), e.cfg.Policy, e.cfg.PolicyStats, r.Split("policy"))
	if err != nil {
		return nil, err
	}
	return e.loop(ctx, task, src, r, exec)
}

// RunScan executes the same loop over a fixed input order: the sequential
// baseline (shuffle=false) or the paper's random-sampling baseline
// (shuffle=true).
func (e *Engine) RunScan(task *featurepipe.Task, shuffle bool) (*RunResult, error) {
	return e.RunScanContext(context.Background(), task, shuffle)
}

// RunScanContext is RunScan with cancellation (see RunContext).
func (e *Engine) RunScanContext(ctx context.Context, task *featurepipe.Task, shuffle bool) (*RunResult, error) {
	r := rng.New(e.cfg.Seed).Split("scan:" + task.Name + ":" + task.Feature.Name())
	var src inputSource
	if shuffle {
		src = newRandomScan(task.PoolIdx, r.Split("order"))
	} else {
		src = newSequentialScan(task.PoolIdx)
	}
	return e.loop(ctx, task, src, r, NewLocalExecutor(task, e.cfg.Cache, e.cfg.Faults))
}

// RunOracle executes the loop over the ground-truth-best order: all
// useful inputs first. No realizable selector can beat it; experiments use
// it as the skyline.
func (e *Engine) RunOracle(task *featurepipe.Task) (*RunResult, error) {
	return e.RunOracleContext(context.Background(), task)
}

// RunOracleContext is RunOracle with cancellation (see RunContext).
func (e *Engine) RunOracleContext(ctx context.Context, task *featurepipe.Task) (*RunResult, error) {
	r := rng.New(e.cfg.Seed).Split("oracle:" + task.Name + ":" + task.Feature.Name())
	var useful, rest []int
	for _, idx := range task.PoolIdx {
		if oracleUseful(task.Store.Get(idx), task.Feature) {
			useful = append(useful, idx)
		} else {
			rest = append(rest, idx)
		}
	}
	src := newOracleScan(useful, rest, r.Split("order"))
	return e.loop(ctx, task, src, r, NewLocalExecutor(task, e.cfg.Cache, e.cfg.Faults))
}

// oracleUseful mirrors the task feature functions' usefulness definitions
// at the ground-truth level, without paying for extraction.
func oracleUseful(in *corpus.Input, f featurepipe.FeatureFunc) bool {
	if sf, ok := f.(*featurepipe.SongFeature); ok {
		return in.Truth.Class >= sf.Genres/2
	}
	return in.Truth.Class == 1
}

// loop is the shared inner loop: one iteration per processed input.
// Cancellation is checked once per step; a cancelled loop returns the
// partial result accumulated so far (never an error), skipping the final
// re-evaluation so cancellation latency is one step, not one holdout pass.
func (e *Engine) loop(ctx context.Context, task *featurepipe.Task, src inputSource, r *rng.RNG, exec Executor) (*RunResult, error) {
	wallStart := time.Now()
	// Phase accounting is always on: the timers cost a few time.Now calls
	// per step against feature-extraction work that dominates by orders of
	// magnitude, and every run reporting where its time went is the whole
	// point of the telemetry layer. The registry fan-out (po) is optional.
	// Cache threading and fault wrapping live inside the executor (see
	// NewLocalExecutor), after the callers derived their RNG substreams and
	// the oracle inspected the concrete feature type; the wrappers preserve
	// Name/Dim/fingerprints, so a cached run is byte-identical to an
	// uncached one and the loop's own task stays unwrapped.
	var phases PhaseBreakdown
	po := newPhaseObs(e.cfg.Obs)

	res := &RunResult{
		Task:     task.Name,
		Strategy: src.name(),
	}
	tHoldout := time.Now()
	holdout, skips, err := exec.BuildHoldout(ctx)
	phases.Holdout = time.Since(tHoldout)
	po.observe(phHoldout, phases.Holdout)
	for _, s := range skips {
		res.Quarantined = append(res.Quarantined, Quarantine{
			InputID: s.InputID, Site: "holdout", Step: 0, Reason: s.Reason,
		})
	}
	if err != nil {
		return nil, err
	}
	// The quality-delta reward evaluates a small fixed subsample before
	// and after each update; build it once per run.
	var rewardHold *learner.Holdout
	if e.cfg.Reward != RewardUsefulness {
		rewardHold = subsampleHoldout(holdout, e.cfg.RewardSubsample, r.Split("reward-subsample"))
	}

	model := task.NewModel(task.Feature)
	detector := stats.NewPlateauDetector(e.cfg.EarlyStop.Window, e.cfg.EarlyStop.SlopeThreshold, e.cfg.EarlyStop.Patience)

	// Set-based evaluation (the default) measures the quality of the
	// example set collected so far, independent of the stream order the
	// bandit imposed. The amortized scheme keeps one persistent evaluation
	// model (the "snapshot") and, at each evaluation point, replays only
	// the examples collected since the previous evaluation in a
	// deterministically shuffled order — O(n) total training work per run
	// instead of the O(n²) of retraining from scratch every time. The two
	// schemes train on identical example sets, so they are equivalent for
	// learners whose fit is order-insensitive (the naive Bayes families the
	// workloads use, marked by learner.OrderInsensitive); order-sensitive
	// learners (SGD, KNN, trees) automatically keep the from-scratch full
	// reshuffle, as do EvalFromScratch and EvalEpochs > 1 (multi-epoch
	// training cannot be amortized).
	_, orderInsensitive := model.(learner.OrderInsensitive)
	fromScratch := e.cfg.EvalFromScratch || e.cfg.EvalEpochs > 1 || !orderInsensitive
	var collected []learner.Example // every example, for from-scratch retrains
	var pending []learner.Example   // examples not yet replayed into evalModel
	var evalModel learner.Model
	evalRNG := r.Split("eval")
	evaluate := func() float64 {
		tEval := time.Now()
		defer func() {
			d := time.Since(tEval)
			phases.Eval += d
			po.observe(phEval, d)
		}()
		if e.cfg.EvalIncremental {
			return e.quality(holdout, model)
		}
		if fromScratch {
			m := task.NewModel(task.Feature)
			for epoch := 0; epoch < e.cfg.EvalEpochs; epoch++ {
				for _, i := range evalRNG.Perm(len(collected)) {
					m.PartialFit(collected[i])
				}
			}
			return e.quality(holdout, m)
		}
		if evalModel == nil {
			evalModel = task.NewModel(task.Feature)
		}
		if len(pending) > 0 {
			for _, i := range evalRNG.Perm(len(pending)) {
				evalModel.PartialFit(pending[i])
			}
			pending = pending[:0]
		}
		return e.quality(holdout, evalModel)
	}

	var events *trace.Log
	if e.cfg.TraceEvents {
		events = &trace.Log{}
	}
	// emit records a step event into the in-result log (nil-safe when
	// tracing is off) and mirrors it to the Event hook — the serving
	// layer's live trace ring.
	emit := func(ev trace.Event) {
		events.Record(ev)
		if e.cfg.Event != nil {
			e.cfg.Event(ev)
		}
	}

	record := func(p CurvePoint) {
		res.Curve = append(res.Curve, p)
		if e.cfg.Progress != nil {
			e.cfg.Progress(p)
		}
	}

	var simTime time.Duration
	record(CurvePoint{Inputs: 0, Quality: evaluate(), SimTime: 0})

	// loopQuarantined counts inputs quarantined by the loop itself
	// (holdout-phase quarantines predate the budget's denominator and are
	// excluded). overBudget is checked after every quarantine, behind a
	// grace period so a fraction computed over a handful of early steps
	// cannot trip it.
	const failureGraceSteps = 20
	loopQuarantined := 0
	overBudget := func(steps int) bool {
		return steps >= failureGraceSteps &&
			float64(loopQuarantined) > e.cfg.MaxFailureFrac*float64(steps)
	}

	stop := StopExhausted
	steps := 0
loop:
	for {
		if ctx.Err() != nil {
			stop = StopCancelled
			break
		}
		if e.cfg.MaxInputs > 0 && steps >= e.cfg.MaxInputs {
			stop = StopBudget
			break
		}
		if e.cfg.MaxSimTime > 0 && simTime >= e.cfg.MaxSimTime {
			stop = StopBudget
			break
		}
		tSelect := time.Now()
		idx, arm, ok := src.next()
		dSelect := time.Since(tSelect)
		phases.Select += dSelect
		po.observe(phSelect, dSelect)
		if !ok {
			break // pool exhausted
		}
		steps++
		tStep := time.Now()
		out, execErr := exec.ExecuteStep(ctx, steps, idx)
		stepWall := time.Since(tStep)
		if execErr != nil {
			// The step never executed: the worker owning this input is dead
			// or unreachable past the transport's retries. Degrade exactly
			// like data loss — no cost charged, the arm learns nothing good
			// came of the pull, the input is quarantined by store index —
			// so a lost worker trips the same failure budget a corrupt
			// shard would. The whole step wall is transport time.
			phases.RPC += stepWall
			po.observe(phRPC, stepWall)
			loopQuarantined++
			res.Quarantined = append(res.Quarantined, Quarantine{
				InputID: "#" + strconv.Itoa(idx), Site: string(fault.SiteDistStep),
				Step: steps, Reason: execErr.Error(),
			})
			src.feedback(arm, 0)
			emit(trace.Event{
				Step: steps, InputIdx: idx, Arm: arm,
				Err: execErr.Error(), SimTime: simTime, Quarantined: true,
			})
			if overBudget(steps) {
				stop = StopFailed
				break loop
			}
			continue
		}
		// Read and extract are timed where they ran (on a remote worker,
		// inside the worker process); the remainder of the step wall is
		// transport overhead — nanoseconds of call dispatch for the local
		// executor, real serialization and network time for http.
		dRead := time.Duration(out.ReadNanos)
		phases.Read += dRead
		po.observe(phRead, dRead)
		if rpc := stepWall - time.Duration(out.ReadNanos+out.ExtractNanos); rpc > 0 {
			phases.RPC += rpc
			po.observe(phRPC, rpc)
		}
		if out.ReadErr != "" {
			// The input could not even be loaded: no cost is charged (the
			// payload never arrived), the arm learns nothing good came of
			// the pull, and the input is quarantined by store index.
			loopQuarantined++
			res.Quarantined = append(res.Quarantined, Quarantine{
				InputID: "#" + strconv.Itoa(idx), Site: string(fault.SiteCorpusRead),
				Step: steps, Reason: out.ReadErr,
			})
			src.feedback(arm, 0)
			emit(trace.Event{
				Step: steps, InputIdx: idx, Arm: arm,
				Err: out.ReadErr, SimTime: simTime, Quarantined: true,
			})
			if overBudget(steps) {
				stop = StopFailed
				break loop
			}
			continue
		}
		simTime += out.Cost

		dExtract := time.Duration(out.ExtractNanos)
		phases.Extract += dExtract
		po.observe(phExtract, dExtract)
		extRes := out.Res
		reward := 0.0
		errMsg := ""
		switch {
		case out.ExtractErr != "":
			res.Errors++
			errMsg = out.ExtractErr
			if out.Panicked {
				// A panic is categorically worse than a returned error:
				// the feature code lost control on this input. Quarantine
				// it so the run report names every input of this kind.
				loopQuarantined++
				res.Quarantined = append(res.Quarantined, Quarantine{
					InputID: out.InputID, Site: string(fault.SiteExtract),
					Step: steps, Reason: errMsg,
				})
			}
		case extRes.Produced:
			res.Produced++
			if extRes.Useful {
				res.Useful++
			}
			tTrain := time.Now()
			reward = e.rewardFor(extRes, model, rewardHold)
			dTrain := time.Since(tTrain)
			phases.Train += dTrain
			po.observe(phTrain, dTrain)
			if !e.cfg.EvalIncremental {
				if fromScratch {
					collected = append(collected, extRes.Example)
				} else {
					pending = append(pending, extRes.Example)
				}
			}
		}
		src.feedback(arm, reward)
		emit(trace.Event{
			Step: steps, InputIdx: idx, Arm: arm, Reward: reward,
			Produced: extRes.Produced, Useful: extRes.Useful, Err: errMsg,
			SimTime: simTime, CacheHit: out.CacheHit, Quarantined: out.Panicked,
		})
		if out.Panicked && overBudget(steps) {
			stop = StopFailed
			break loop
		}

		if steps%e.cfg.EvalEvery == 0 {
			q := evaluate()
			record(CurvePoint{Inputs: steps, Quality: q, SimTime: simTime})
			plateau := detector.Observe(q)
			if e.cfg.EarlyStop.Enabled && plateau && steps >= e.cfg.EarlyStop.MinInputs {
				stop = StopEarly
				break loop
			}
		}
	}

	// Reuse the last in-loop evaluation when it already covers the final
	// step: from-scratch evaluation reshuffles, so re-evaluating the same
	// point can return a slightly different number for order-sensitive
	// learners (amortized evaluation is stable on re-evaluation, but the
	// reuse still skips a full holdout pass). A cancelled run also reuses
	// it — the caller asked the loop to stop, so it must not pay for one
	// more holdout evaluation.
	var final float64
	if n := len(res.Curve); n > 0 && (res.Curve[n-1].Inputs == steps || stop == StopCancelled) {
		final = res.Curve[n-1].Quality
	} else {
		final = evaluate()
		record(CurvePoint{Inputs: steps, Quality: final, SimTime: simTime})
	}
	res.InputsProcessed = steps
	res.FinalQuality = final
	res.SimTime = simTime
	res.WallTime = time.Since(wallStart)
	res.Stop = stop
	res.Arms = src.arms()
	res.Events = events
	st := exec.Stats()
	res.CacheHits = st.CacheHits
	res.CacheMisses = st.CacheMisses
	phases.CacheLookup = time.Duration(st.CacheLookupNanos)
	res.Phases = phases
	po.observeRun(res.WallTime)
	return res, nil
}

// quality scores a model against a holdout, fanning the prediction pass
// out over EvalWorkers goroutines when configured. Scores are
// deterministic for any worker count.
func (e *Engine) quality(h *learner.Holdout, m learner.Model) float64 {
	if e.cfg.EvalWorkers > 1 {
		return h.QualityParallel(m, e.cfg.EvalWorkers)
	}
	return h.Quality(m)
}

// rewardFor computes the configured reward for a produced example. For
// delta-based rewards, the model is trained inside this function (the
// before/after measurement brackets the update); for pure usefulness the
// model is trained here too, keeping the call site uniform.
func (e *Engine) rewardFor(extRes featurepipe.Result, model learner.Model, rewardHold *learner.Holdout) float64 {
	switch e.cfg.Reward {
	case RewardUsefulness:
		model.PartialFit(extRes.Example)
		if extRes.Useful {
			return 1
		}
		return 0
	case RewardQualityDelta:
		before := rewardHold.Quality(model)
		model.PartialFit(extRes.Example)
		after := rewardHold.Quality(model)
		return clamp01((after - before) * e.cfg.RewardScale)
	default: // RewardHybrid
		before := rewardHold.Quality(model)
		model.PartialFit(extRes.Example)
		after := rewardHold.Quality(model)
		delta := clamp01((after - before) * e.cfg.RewardScale)
		useful := 0.0
		if extRes.Useful {
			useful = 1
		}
		return 0.5*useful + 0.5*delta
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// subsampleHoldout returns a holdout over up to n examples sampled without
// replacement from h, preserving metric configuration. With n >= len it
// reuses the full example set, and so does n <= 0: an empty subsample
// would silently zero every quality-delta reward, turning the bandit into
// a uniform sampler with no visible error (Config.RewardSubsample
// documents the floor).
func subsampleHoldout(h *learner.Holdout, n int, r *rng.RNG) *learner.Holdout {
	if n <= 0 || n >= len(h.Examples) {
		return h
	}
	picks := r.SampleWithoutReplacement(len(h.Examples), n)
	sub := make([]learner.Example, n)
	for i, p := range picks {
		sub[i] = h.Examples[p]
	}
	return learner.NewHoldout(sub, h.Metric, h.Positive)
}
