package core

import (
	"testing"
	"time"

	"zombie/internal/featcache"
	"zombie/internal/obs"
	"zombie/internal/trace"
)

// TestPhaseBreakdownCoversRun is the telemetry contract: on a real
// workload the six disjoint phases must explain at least 90% of the
// run's wall time, and never more than all of it.
func TestPhaseBreakdownCoversRun(t *testing.T) {
	task, groups := wikiTask(t, 1200, 501)
	res, err := mustEngine(t, Config{Seed: 41, MaxInputs: 300}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Phases
	for name, d := range p.Durations() {
		if d < 0 {
			t.Fatalf("phase %s negative: %v", name, d)
		}
	}
	if p.Holdout <= 0 || p.Extract <= 0 || p.Train <= 0 || p.Eval <= 0 {
		t.Fatalf("expected holdout/extract/train/eval all > 0: %+v", p)
	}
	if p.Accounted() > res.WallTime {
		t.Fatalf("accounted %v exceeds wall %v", p.Accounted(), res.WallTime)
	}
	if cov := p.Coverage(res.WallTime); cov < 0.9 {
		t.Fatalf("phase coverage %.3f < 0.9 (accounted %v of wall %v; %+v)",
			cov, p.Accounted(), res.WallTime, p)
	}
	if p.CacheLookup != 0 {
		t.Fatalf("cacheless run reported cache-lookup time %v", p.CacheLookup)
	}
}

// TestPhasesAreObservational: attaching a registry must not change the
// run — curves, counters and events stay byte-identical — while the
// registry fills the phase and run histograms.
func TestPhasesAreObservational(t *testing.T) {
	task, groups := wikiTask(t, 1000, 502)
	cfg := Config{Seed: 43, MaxInputs: 250, TraceEvents: true}
	plain, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	observed, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	identicalRuns(t, "obs-off-vs-on", plain, observed)

	flat := reg.FlatSnapshot()
	if n := flat["zombie_run_seconds_count"]; n != 1 {
		t.Fatalf("zombie_run_seconds count = %d, want 1", n)
	}
	for _, phase := range []string{"holdout", "extract", "train", "eval"} {
		if n := flat["zombie_phase_seconds_"+phase+"_count"]; n <= 0 {
			t.Fatalf("phase %s histogram empty", phase)
		}
	}
}

// TestEventCallbackSeesEveryStep: Config.Event must fire for each step
// event even when TraceEvents is off, and must deliver exactly the
// events a traced run retains.
func TestEventCallbackSeesEveryStep(t *testing.T) {
	task, groups := wikiTask(t, 1000, 503)
	cfg := Config{Seed: 47, MaxInputs: 200}

	var streamed []trace.Event
	cfg.Event = func(ev trace.Event) { streamed = append(streamed, ev) }
	res, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != nil {
		t.Fatal("TraceEvents off but result retained a trace")
	}
	if len(streamed) != res.InputsProcessed {
		t.Fatalf("callback saw %d events, processed %d inputs", len(streamed), res.InputsProcessed)
	}

	cfg.Event = nil
	cfg.TraceEvents = true
	traced, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Events.Events) != len(streamed) {
		t.Fatalf("trace has %d events, callback saw %d", len(traced.Events.Events), len(streamed))
	}
	for i := range streamed {
		if streamed[i] != traced.Events.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, streamed[i], traced.Events.Events[i])
		}
	}
}

// TestCacheLookupPhaseAndHitFlags: a warm cached run must attribute
// lookup overhead to CacheLookup (bounded by the phases it overlaps)
// and flag its hit steps in the trace; cache-off runs report neither.
func TestCacheLookupPhaseAndHitFlags(t *testing.T) {
	task, groups := wikiTask(t, 900, 504)
	cache := mustCache(t, featcache.Config{})
	cfg := Config{Seed: 53, MaxInputs: 200, TraceEvents: true, Cache: cache}

	cold, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits == 0 {
		t.Fatal("warm run had no cache hits")
	}
	if warm.Phases.CacheLookup <= 0 {
		t.Fatal("warm run reported zero cache-lookup time")
	}
	if max := warm.Phases.Extract + warm.Phases.Holdout; warm.Phases.CacheLookup > max {
		t.Fatalf("cache-lookup %v exceeds the phases it overlaps (%v)",
			warm.Phases.CacheLookup, max)
	}
	hitSteps := func(r *RunResult) int {
		n := 0
		for _, ev := range r.Events.Events {
			if ev.CacheHit {
				n++
			}
		}
		return n
	}
	// Cold runs may still flag a few steps (the holdout build warms the
	// cache for inputs the loop later revisits); the warm run must flag
	// strictly more.
	if warmHits, coldHits := hitSteps(warm), hitSteps(cold); warmHits == 0 || warmHits <= coldHits {
		t.Fatalf("warm run flagged %d hit steps, cold flagged %d", warmHits, coldHits)
	}
}

// TestPhaseBreakdownHelpers pins the pure accessors.
func TestPhaseBreakdownHelpers(t *testing.T) {
	p := PhaseBreakdown{
		Holdout: 1 * time.Millisecond,
		Select:  2 * time.Millisecond,
		Read:    3 * time.Millisecond,
		Extract: 4 * time.Millisecond,
		Train:   5 * time.Millisecond,
		Eval:    6 * time.Millisecond,
		RPC:     7 * time.Millisecond,
		// CacheLookup overlaps Extract/Holdout and must not count.
		CacheLookup: 100 * time.Millisecond,
	}
	if got := p.Accounted(); got != 28*time.Millisecond {
		t.Fatalf("Accounted = %v", got)
	}
	if got := p.Coverage(56 * time.Millisecond); got != 0.5 {
		t.Fatalf("Coverage = %v", got)
	}
	if got := p.Coverage(0); got != 0 {
		t.Fatalf("Coverage(0) = %v", got)
	}
	ms := p.Millis()
	if len(ms) != 7 || ms["extract"] != 4 || ms["eval"] != 6 || ms["rpc"] != 7 {
		t.Fatalf("Millis = %v", ms)
	}
}
