package core

import (
	"context"
	"testing"
)

func TestRunContextCancelledMidLoop(t *testing.T) {
	task, groups := imageTask(t, 2000, 210)
	e := mustEngine(t, Config{Seed: 1, EvalEvery: 10})

	// Cancel from inside the loop, deterministically: the Progress hook
	// fires on every appended curve point, so cancelling on the third
	// point guarantees the loop is mid-flight (past step 0) with work
	// remaining.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	points := 0
	cfg := e.Config()
	cfg.Progress = func(p CurvePoint) {
		points++
		if points == 3 {
			cancel()
		}
	}
	e = mustEngine(t, cfg)

	res, err := e.RunContext(ctx, task, groups)
	if err != nil {
		t.Fatalf("cancellation must not surface as an error: %v", err)
	}
	if res.Stop != StopCancelled {
		t.Fatalf("Stop = %s, want cancelled", res.Stop)
	}
	if res.Stop.String() != "cancelled" {
		t.Fatalf("StopCancelled label = %q", res.Stop.String())
	}
	// Partial but consistent: the loop saw the cancel within one step of
	// the third curve point (inputs 0, 10, 20), and the curve is the
	// prefix recorded so far with InputsProcessed past its last sample.
	if res.InputsProcessed < 20 || res.InputsProcessed > 30 {
		t.Fatalf("InputsProcessed = %d, want within one eval window of point 3", res.InputsProcessed)
	}
	if len(res.Curve) != 3 {
		t.Fatalf("curve has %d points, want the 3 recorded before cancel", len(res.Curve))
	}
	if last := res.Curve[len(res.Curve)-1]; res.FinalQuality != last.Quality {
		t.Fatalf("FinalQuality %v != last curve point %v", res.FinalQuality, last.Quality)
	}
	if res.InputsProcessed >= len(task.PoolIdx) {
		t.Fatal("cancelled run processed the whole pool")
	}
}

func TestRunScanContextPreCancelled(t *testing.T) {
	task, _ := imageTask(t, 500, 211)
	e := mustEngine(t, Config{Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RunScanContext(ctx, task, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopCancelled || res.InputsProcessed != 0 {
		t.Fatalf("pre-cancelled run: stop=%s inputs=%d, want cancelled/0", res.Stop, res.InputsProcessed)
	}
	if len(res.Curve) != 1 || res.Curve[0].Inputs != 0 {
		t.Fatalf("pre-cancelled run should still carry the step-0 floor, got %v", res.Curve)
	}
}

func TestProgressCallbackSeesEveryCurvePoint(t *testing.T) {
	task, groups := imageTask(t, 1500, 212)
	var seen []CurvePoint
	e := mustEngine(t, Config{Seed: 2, MaxInputs: 100, EvalEvery: 20,
		Progress: func(p CurvePoint) { seen = append(seen, p) }})
	res, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Curve) {
		t.Fatalf("Progress saw %d points, curve has %d", len(seen), len(res.Curve))
	}
	for i := range seen {
		if seen[i] != res.Curve[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, seen[i], res.Curve[i])
		}
	}
}

func TestRunSessionContextCancelled(t *testing.T) {
	sess, task, groups := miniWikiSession(t, 600, 213)
	e := mustEngine(t, Config{Seed: 3, MaxInputs: 60, EvalEvery: 20})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RunSessionContext(ctx, sess, task, groups, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 1 {
		t.Fatalf("cancelled session ran %d iterations, want 1", len(res.Iterations))
	}
	if res.Iterations[0].Run.Stop != StopCancelled {
		t.Fatalf("iteration stop = %s", res.Iterations[0].Run.Stop)
	}
}
