package core

import (
	"time"

	"zombie/internal/obs"
)

// PhaseBreakdown accounts a run's wall-clock time to the inner loop's
// phases. The seven primary phases are disjoint — each loop instruction is
// timed into at most one — so Accounted() is a true lower bound on the
// run's wall time and Coverage() measures how much of the run the
// breakdown explains (the remainder is loop bookkeeping: plateau
// detection, curve recording, trace appends, and the timers themselves).
//
// CacheLookup is the exception: it is the extraction cache's own
// overhead (key hashing, shard locking, decode) and is a subset of
// Extract and Holdout, reported separately so a cache-heavy run can
// split "feature code ran" from "cache answered". It is excluded from
// Accounted().
type PhaseBreakdown struct {
	// Holdout is the holdout-set construction before the loop (extracting
	// every holdout example through the feature code).
	Holdout time.Duration `json:"holdout"`
	// Select is bandit work: arm selection plus reward feedback.
	Select time.Duration `json:"select"`
	// Read is corpus input fetch (disk-backed stores pay real IO here).
	Read time.Duration `json:"read"`
	// Extract is feature-code execution over streamed inputs, cache
	// traffic included.
	Extract time.Duration `json:"extract"`
	// Train is model updates plus reward computation (for delta rewards,
	// the bracketing subsample evaluations).
	Train time.Duration `json:"train"`
	// Eval is full-holdout quality evaluation at curve points.
	Eval time.Duration `json:"eval"`
	// RPC is step-dispatch overhead: the part of each step's wall time not
	// spent reading or extracting where the work ran. For the in-process
	// executor this is nanoseconds of call dispatch; for a distributed run
	// it is serialization, network and coordinator retry time.
	RPC time.Duration `json:"rpc"`
	// CacheLookup is extraction-cache overhead, a subset of Extract and
	// Holdout (see above). Zero when the run had no cache.
	CacheLookup time.Duration `json:"cache_lookup"`
}

// phaseNames lists the primary (disjoint) phases in reporting order.
var phaseNames = []string{"holdout", "select", "read", "extract", "train", "eval", "rpc"}

// Durations returns the primary phases as a name → duration map,
// CacheLookup excluded (it overlaps Extract/Holdout).
func (p PhaseBreakdown) Durations() map[string]time.Duration {
	return map[string]time.Duration{
		"holdout": p.Holdout,
		"select":  p.Select,
		"read":    p.Read,
		"extract": p.Extract,
		"train":   p.Train,
		"eval":    p.Eval,
		"rpc":     p.RPC,
	}
}

// Millis renders the primary phases as milliseconds, the wire form
// RunInfo and the bench report use.
func (p PhaseBreakdown) Millis() map[string]float64 {
	out := make(map[string]float64, len(phaseNames))
	for name, d := range p.Durations() {
		out[name] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// Accounted sums the disjoint phases — the portion of the run's wall
// time the breakdown explains.
func (p PhaseBreakdown) Accounted() time.Duration {
	return p.Holdout + p.Select + p.Read + p.Extract + p.Train + p.Eval + p.RPC
}

// Coverage returns Accounted as a fraction of the given wall time
// (0 when wall is 0). The telemetry contract keeps this above 0.9 for
// real workloads: if it drifts lower, the loop grew an untimed phase.
func (p PhaseBreakdown) Coverage(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(p.Accounted()) / float64(wall)
}

// phaseID indexes a primary phase inside phaseObs.
type phaseID int

const (
	phHoldout phaseID = iota
	phSelect
	phRead
	phExtract
	phTrain
	phEval
	phRPC
	numPhases
)

// phaseObs is the registry-backed side of phase timing: one histogram
// series per phase (family zombie_phase_seconds) plus the whole-run
// histogram, declared idempotently so every run of a process shares the
// same series. A nil *phaseObs is valid and observes nothing — the
// engine times phases unconditionally (RunResult.Phases is always
// filled) and only the histogram fan-out is optional.
type phaseObs struct {
	phases [numPhases]*obs.Histogram
	run    *obs.Histogram
}

func newPhaseObs(r *obs.Registry) *phaseObs {
	if r == nil {
		return nil
	}
	const name, help = "zombie_phase_seconds", "Inner-loop wall time by phase."
	o := &phaseObs{
		run: r.Histogram("zombie_run_seconds", "Engine run wall time.", obs.RunBuckets),
	}
	for i, phase := range phaseNames {
		o.phases[i] = r.HistogramL(name, help, "phase", phase, obs.LatencyBuckets)
	}
	return o
}

// observe folds one per-step (or per-run, for holdout) duration into the
// phase's histogram.
func (o *phaseObs) observe(p phaseID, d time.Duration) {
	if o == nil {
		return
	}
	o.phases[p].ObserveDuration(d)
}

// observeRun records the whole-run wall time.
func (o *phaseObs) observeRun(d time.Duration) {
	if o == nil {
		return
	}
	o.run.ObserveDuration(d)
}
