package core

import (
	"strings"
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/featcache"
	"zombie/internal/featurepipe"
)

func mustCache(t *testing.T, cfg featcache.Config) *featcache.Cache {
	t.Helper()
	c, err := featcache.Open(cfg, featurepipe.ResultCodec{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// identicalRuns asserts two results are byte-identical in everything the
// experiment tables and curve output are built from.
func identicalRuns(t *testing.T, label string, a, b *RunResult) {
	t.Helper()
	if a.InputsProcessed != b.InputsProcessed || a.FinalQuality != b.FinalQuality ||
		a.Produced != b.Produced || a.Useful != b.Useful || a.Errors != b.Errors ||
		a.SimTime != b.SimTime || a.Stop != b.Stop {
		t.Fatalf("%s: summaries differ:\n%s\n%s", label, a.Summary(), b.Summary())
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("%s: curve lengths %d vs %d", label, len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("%s: curve diverged at %d: %+v vs %+v", label, i, a.Curve[i], b.Curve[i])
		}
	}
	for i := range a.Events.Events {
		ea, eb := a.Events.Events[i], b.Events.Events[i]
		// CacheHit is a cache-traffic diagnostic, like the RunResult
		// counters: it legitimately differs between cache-off, cold and
		// warm runs and is excluded from the determinism contract.
		ea.CacheHit, eb.CacheHit = false, false
		if ea != eb {
			t.Fatalf("%s: events diverged at step %d: %+v vs %+v", label, i, ea, eb)
		}
	}
}

// TestCacheRunsAreByteIdentical is the determinism contract of the
// extraction cache: the same run without a cache, with a cold cache, and
// with a warm cache must produce identical curves, traces and counters —
// only the cache-traffic diagnostics may differ.
func TestCacheRunsAreByteIdentical(t *testing.T) {
	task, groups := wikiTask(t, 1200, 230)
	cfg := Config{Seed: 11, MaxInputs: 300, TraceEvents: true}

	base, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if base.CacheHits != 0 || base.CacheMisses != 0 {
		t.Fatal("cacheless run reported cache traffic")
	}

	cache := mustCache(t, featcache.Config{})
	cfgCached := cfg
	cfgCached.Cache = cache
	cold, err := mustEngine(t, cfgCached).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	identicalRuns(t, "off-vs-cold", base, cold)
	if cold.CacheMisses == 0 {
		t.Fatal("cold run recorded no misses")
	}

	warm, err := mustEngine(t, cfgCached).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	identicalRuns(t, "off-vs-warm", base, warm)
	if warm.CacheHits == 0 {
		t.Fatal("warm run recorded no hits")
	}
	if warm.CacheMisses >= cold.CacheMisses {
		t.Fatalf("warm misses (%d) should drop below cold (%d)", warm.CacheMisses, cold.CacheMisses)
	}
}

// TestCacheSharedAcrossSessionVersions mirrors the engineering-session
// pattern the cache exists for: successive composite versions sharing
// parts reuse the shared parts' extractions run over run.
func TestCacheSharedAcrossSessionVersions(t *testing.T) {
	task, groups := wikiTask(t, 900, 231)
	session := featurepipe.CompositeWikiSession()
	cache := mustCache(t, featcache.Config{})
	e := mustEngine(t, Config{Seed: 13, MaxInputs: 200, Cache: cache})

	v1, err := e.Run(task.WithFeature(session.Versions[0]), groups)
	if err != nil {
		t.Fatal(err)
	}
	if v1.CacheHits != 0 {
		t.Fatalf("first version hit a cold cache %d times", v1.CacheHits)
	}
	v2, err := e.Run(task.WithFeature(session.Versions[1]), groups)
	if err != nil {
		t.Fatal(err)
	}
	// v2 shares two of three parts with v1 and the run replays the same
	// pool prefix (same seed and policy), so most extractions must hit.
	if v2.CacheHits <= v2.CacheMisses {
		t.Fatalf("edited version reused too little: hits=%d misses=%d", v2.CacheHits, v2.CacheMisses)
	}
}

// TestSafeExtractNamesFeatureAndInput pins the panic-isolation message:
// trace rows must identify which input crashed which feature-code version.
func TestSafeExtractNamesFeatureAndInput(t *testing.T) {
	f := &featurepipe.FaultyFeature{Inner: featurepipe.NewWikiFeature(2), PanicPct: 100}
	in := &corpus.Input{Kind: corpus.TextKind, ID: "page-042", Text: "infobox born text"}
	_, err, panicked := SafeExtract(f, in)
	if err == nil || !panicked {
		t.Fatal("panic not converted to an error")
	}
	for _, want := range []string{"wiki-v2+faults", "page-042", "injected panic"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	// The same message must reach the run's step trace.
	task, groups := wikiTask(t, 800, 232)
	exempt := map[string]bool{}
	for _, i := range task.HoldoutIdx {
		exempt[task.Store.Get(i).ID] = true
	}
	task.Feature = &featurepipe.FaultyFeature{Inner: task.Feature, PanicPct: 20, Exempt: exempt}
	res, err := mustEngine(t, Config{Seed: 23, MaxInputs: 300, TraceEvents: true}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, ev := range res.Events.Events {
		if ev.Err == "" {
			continue
		}
		seen = true
		if !strings.Contains(ev.Err, "wiki-v3+faults") || !strings.Contains(ev.Err, "panicked on input") {
			t.Fatalf("trace error lacks context: %q", ev.Err)
		}
	}
	if !seen {
		t.Fatal("no panic rows in trace")
	}
}
