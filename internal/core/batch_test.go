package core

import (
	"reflect"
	"testing"

	"zombie/internal/featcache"
)

// assertIdenticalResults is reflect.DeepEqual over everything the
// determinism contract covers: only wall-clock fields (WallTime, Phases)
// are stripped before comparing.
func assertIdenticalResults(t *testing.T, label string, a, b *RunResult) {
	t.Helper()
	ca, cb := *a, *b
	ca.WallTime, cb.WallTime = 0, 0
	ca.Phases, cb.Phases = PhaseBreakdown{}, PhaseBreakdown{}
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("%s: results differ:\n%s\n%s", label, a.Summary(), b.Summary())
	}
}

// TestBatchSizeOneMatchesDefault is the K=1 half of the batching
// contract: an explicit BatchSize of 1 (and the <=0 floor) must be
// byte-identical to the default config for every reward kind — same
// curve, same trace, same arm statistics.
func TestBatchSizeOneMatchesDefault(t *testing.T) {
	task, groups := wikiTask(t, 1200, 240)
	for _, reward := range []RewardKind{RewardUsefulness, RewardQualityDelta, RewardHybrid} {
		cfg := Config{Seed: 9, MaxInputs: 300, Reward: reward, TraceEvents: true}
		base, err := mustEngine(t, cfg).Run(task, groups)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 0, -3} {
			cfgK := cfg
			cfgK.BatchSize = k
			got, err := mustEngine(t, cfgK).Run(task, groups)
			if err != nil {
				t.Fatal(err)
			}
			assertIdenticalResults(t, reward.String(), base, got)
		}
	}
}

// TestBatchRunsAreDeterministic pins the K>1 half: a batched run is a
// pure function of (seed, K) — two runs of the same engine replay
// byte-identically, and different K values genuinely change the schedule
// (otherwise the knob would be dead).
func TestBatchRunsAreDeterministic(t *testing.T) {
	task, groups := wikiTask(t, 1200, 241)
	cfg := Config{Seed: 3, MaxInputs: 300, Reward: RewardQualityDelta, BatchSize: 16, TraceEvents: true}
	a, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalResults(t, "K=16 replay", a, b)

	cfg1 := cfg
	cfg1.BatchSize = 1
	single, err := mustEngine(t, cfg1).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if a.InputsProcessed != single.InputsProcessed {
		t.Fatalf("batching changed the input budget: %d vs %d", a.InputsProcessed, single.InputsProcessed)
	}
	sameArm := true
	for i := range a.Events.Events {
		if a.Events.Events[i].Arm != single.Events.Events[i].Arm {
			sameArm = false
			break
		}
	}
	if sameArm {
		t.Fatal("K=16 produced the same arm schedule as K=1 — the batch knob is dead")
	}
}

// TestPartialBatches covers the guardrails for K that does not divide the
// work: a budget that is not a multiple of K must stop exactly at the
// budget, and a K larger than any arm must drain every arm through short
// batches down to exhaustion, touching each input exactly once.
func TestPartialBatches(t *testing.T) {
	task, groups := wikiTask(t, 900, 242)

	// MaxInputs not a multiple of K: the last batch is clamped to the
	// remaining budget.
	got, err := mustEngine(t, Config{Seed: 4, MaxInputs: 100, BatchSize: 7, TraceEvents: true}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if got.InputsProcessed != 100 || got.Stop != StopBudget {
		t.Fatalf("budget overshoot: %d inputs, stop=%s", got.InputsProcessed, got.Stop)
	}

	// K far larger than any arm: every pull is a partial batch; the run
	// must still exhaust the pool with each input processed exactly once.
	exhaust1, err := mustEngine(t, Config{Seed: 4, BatchSize: 1}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	exhaustK, err := mustEngine(t, Config{Seed: 4, BatchSize: 512, TraceEvents: true}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if exhaustK.Stop != StopExhausted || exhaustK.InputsProcessed != exhaust1.InputsProcessed {
		t.Fatalf("oversized batches broke exhaustion: %d vs %d inputs, stop=%s",
			exhaustK.InputsProcessed, exhaust1.InputsProcessed, exhaustK.Stop)
	}
	seen := map[int]bool{}
	for _, ev := range exhaustK.Events.Events {
		if seen[ev.InputIdx] {
			t.Fatalf("input %d processed twice", ev.InputIdx)
		}
		seen[ev.InputIdx] = true
	}
}

// TestBatchCurveOnBoundaries documents what K changes about the curve: at
// K=1 points land on exact EvalEvery multiples; at K>1 each point lands
// on the first batch boundary crossing a new EvalEvery bucket, strictly
// increasing.
func TestBatchCurveOnBoundaries(t *testing.T) {
	task, groups := wikiTask(t, 1200, 243)
	every := 25

	k1, err := mustEngine(t, Config{Seed: 6, MaxInputs: 300, EvalEvery: every}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range k1.Curve[:len(k1.Curve)-1] { // final point may repeat the last eval
		if p.Inputs%every != 0 {
			t.Fatalf("K=1 curve point off the EvalEvery grid: %+v", p)
		}
	}

	k16, err := mustEngine(t, Config{Seed: 6, MaxInputs: 300, EvalEvery: every, BatchSize: 16}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, p := range k16.Curve[1 : len(k16.Curve)-1] {
		if p.Inputs <= prev {
			t.Fatalf("K=16 curve not strictly increasing at %+v", p)
		}
		if p.Inputs/every == prev/every {
			t.Fatalf("K=16 curve point did not cross a new EvalEvery bucket: %d after %d", p.Inputs, prev)
		}
		prev = p.Inputs
	}
}

// TestBatchCacheStatesIdentical extends the extraction-cache determinism
// contract to K>1: a batched run must be byte-identical with the cache
// off, cold, and warm.
func TestBatchCacheStatesIdentical(t *testing.T) {
	task, groups := wikiTask(t, 1200, 244)
	cfg := Config{Seed: 12, MaxInputs: 300, BatchSize: 8, TraceEvents: true}

	base, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	cache := mustCache(t, featcache.Config{})
	cfgCached := cfg
	cfgCached.Cache = cache
	cold, err := mustEngine(t, cfgCached).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := mustEngine(t, cfgCached).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits == 0 {
		t.Fatal("second cached run hit nothing — the cache is not warming")
	}
	identicalRuns(t, "off vs cold", base, cold)
	identicalRuns(t, "off vs warm", base, warm)
}
