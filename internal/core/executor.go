package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"zombie/internal/corpus"
	"zombie/internal/fault"
	"zombie/internal/featcache"
	"zombie/internal/featurepipe"
	"zombie/internal/learner"
)

// Executor is the seam between the bandit loop and step execution. The
// loop keeps everything that decides *what* to do next — policy, group
// cursors, learner, reward, holdout evaluation, budgets, early stopping —
// and delegates everything that *does* it: fetching an input from the
// corpus and running feature code over it. The split is what lets the
// distributed runtime (internal/dist) fan execution out over sharded
// workers while the decision stream, and therefore the quality curve,
// stays byte-identical to the single-process engine: both drive the same
// loop with the same RNG substreams, and an Executor's outcomes are pure
// functions of (task, seed, input index).
type Executor interface {
	// BuildHoldout constructs the task's holdout set, tolerating per-input
	// failures exactly like Task.BuildHoldoutTolerant: each skipped input
	// is reported (the loop quarantines it) and the build only errors when
	// zero examples survive. Implementations must preserve the global
	// HoldoutIdx order for both examples and skips.
	BuildHoldout(ctx context.Context) (*learner.Holdout, []featurepipe.HoldoutSkip, error)
	// ExecuteStep reads input idx from the corpus and extracts it, with
	// the same isolation contract as the in-process loop: a failed read is
	// reported in StepOutcome.ReadErr, a failed or panicked extraction in
	// ExtractErr/Panicked — none of them are errors. A non-nil error means
	// the step could not be executed at all (a dead worker, a transport
	// failure after retries); the loop quarantines the input and charges
	// the arm, so infrastructure loss degrades exactly like data loss.
	ExecuteStep(ctx context.Context, step, idx int) (StepOutcome, error)
	// Stats reports execution-side tallies after the loop finishes. It is
	// called once, after the last step.
	Stats() ExecutorStats
}

// BatchExecutor is an Executor that can execute a whole batch of steps in
// one call — the seam the batched bandit loop (Config.BatchSize > 1) uses
// to amortize per-input dispatch, and the distributed coordinator
// implements with one StepBatch RPC per owning worker instead of one Step
// RPC per input. Executors that don't implement it still work at any K:
// the loop falls back to per-input ExecuteStep calls.
type BatchExecutor interface {
	Executor
	// ExecuteBatch executes the inputs at store indices idxs; firstStep is
	// the loop's step counter for idxs[0] (idxs[j] runs as step
	// firstStep+j). Outcomes and errors are positional: outs[j]/errs[j]
	// belong to idxs[j], with errs[j] non-nil exactly when ExecuteStep
	// would have returned an error for that input — a per-input failure
	// must not poison the rest of the batch. Both slices have len(idxs).
	ExecuteBatch(ctx context.Context, firstStep int, idxs []int) (outs []StepOutcome, errs []error)
}

// StepOutcome is everything the loop needs back from executing one input.
type StepOutcome struct {
	// InputID is the corpus input's ID (empty when the read failed).
	InputID string
	// ReadErr is the corpus-read failure, if any; when set, none of the
	// remaining fields are meaningful except ReadNanos.
	ReadErr string
	// Cost is the task cost model's charge for this input.
	Cost time.Duration
	// Res is the extraction result (zero when extraction errored).
	Res featurepipe.Result
	// ExtractErr is the extraction failure, if any; Panicked marks it as a
	// recovered panic rather than a returned error.
	ExtractErr string
	Panicked   bool
	// CacheHit reports whether the extraction was served (at least
	// partially) by the executor's extraction cache.
	CacheHit bool
	// ReadNanos and ExtractNanos are wall time measured where the work ran
	// — on a remote worker, they exclude transport time, which the loop
	// accounts to the rpc phase instead.
	ReadNanos    int64
	ExtractNanos int64
}

// ExecutorStats are execution-side tallies folded into the RunResult.
type ExecutorStats struct {
	CacheHits        int64
	CacheMisses      int64
	CacheLookupNanos int64
	// Parts breaks the run's extraction cost down by recipe part (cached
	// runs only — the cache wrapper is where per-part attribution is
	// measured). The engine emits one "part" span per entry so the cost
	// summary can group extraction time by part. The distributed
	// coordinator reports these per shard through its own spans instead
	// and leaves this empty.
	Parts []featurepipe.PartCost
}

// LocalExecutor executes steps in-process over the task's own store: the
// single-machine fast path, and the code every distributed worker reuses
// so local and remote execution cannot drift apart.
type LocalExecutor struct {
	task   *featurepipe.Task
	faults *fault.Injector
	ctrs   *featurepipe.CacheCounters
}

// NewLocalExecutor wraps the task for in-process execution: the
// extraction cache threads under everything (when non-nil), and fault
// injection wraps OUTSIDE the cache so the injection decision — a pure
// hash of (fault seed, input ID) — is taken before any cache lookup. A
// faulted run is therefore byte-identical whether the cache is off, cold
// or warm, exactly the contract the unfaulted engine keeps. The wrappers
// preserve Name/Dim/fingerprints, so callers may keep using their
// unwrapped task for model sizing and RNG derivation.
func NewLocalExecutor(task *featurepipe.Task, cache *featcache.Cache, faults *fault.Injector) *LocalExecutor {
	x := &LocalExecutor{faults: faults}
	if cache != nil {
		x.ctrs = &featurepipe.CacheCounters{}
		task = task.WithFeature(featurepipe.Cached(task.Feature, cache, x.ctrs))
	}
	x.task = task.WithFeature(featurepipe.WithFaults(task.Feature, faults))
	return x
}

// Task returns the wrapped task the executor runs — cache threaded under
// fault injection. Distributed workers use it to extract the individual
// holdout inputs they own through the exact pipeline the loop uses.
func (x *LocalExecutor) Task() *featurepipe.Task { return x.task }

func (x *LocalExecutor) BuildHoldout(context.Context) (*learner.Holdout, []featurepipe.HoldoutSkip, error) {
	return x.task.BuildHoldoutTolerant()
}

func (x *LocalExecutor) ExecuteStep(_ context.Context, _, idx int) (StepOutcome, error) {
	var out StepOutcome
	tRead := time.Now()
	in, readErr := ReadStoreInput(x.task.Store, idx, x.faults)
	out.ReadNanos = time.Since(tRead).Nanoseconds()
	if readErr != nil {
		out.ReadErr = readErr.Error()
		return out, nil
	}
	out.InputID = in.ID
	out.Cost = x.task.Cost.Cost(in)
	var hitsBefore int64
	if x.ctrs != nil {
		hitsBefore = x.ctrs.Hits.Load()
	}
	tExtract := time.Now()
	res, extErr, panicked := SafeExtract(x.task.Feature, in)
	out.ExtractNanos = time.Since(tExtract).Nanoseconds()
	out.Res = res
	out.Panicked = panicked
	if extErr != nil {
		out.ExtractErr = extErr.Error()
	}
	// The executor is the only goroutine touching its counters, so a hit
	// delta across the extract call attributes cleanly to this step
	// (composite features may hit on several parts; any counts).
	out.CacheHit = x.ctrs != nil && x.ctrs.Hits.Load() > hitsBefore
	return out, nil
}

// ExecuteBatch implements BatchExecutor by executing the inputs in order
// through ExecuteStep. In-process there is nothing to amortize at the
// dispatch layer — the batching win for local runs comes from the loop's
// amortized selection, evaluation and reward accounting.
func (x *LocalExecutor) ExecuteBatch(ctx context.Context, firstStep int, idxs []int) ([]StepOutcome, []error) {
	outs := make([]StepOutcome, len(idxs))
	errs := make([]error, len(idxs))
	for j, idx := range idxs {
		outs[j], errs[j] = x.ExecuteStep(ctx, firstStep+j, idx)
	}
	return outs, errs
}

func (x *LocalExecutor) Stats() ExecutorStats {
	if x.ctrs == nil {
		return ExecutorStats{}
	}
	return ExecutorStats{
		CacheHits:        x.ctrs.Hits.Load(),
		CacheMisses:      x.ctrs.Misses.Load(),
		CacheLookupNanos: x.ctrs.LookupNanos.Load(),
		Parts:            x.ctrs.Parts(),
	}
}

// SafeExtract runs feature code with panic isolation: the code under
// evaluation is by definition unfinished, and a panic on one input must
// cost one reward, not the run. panicked distinguishes a recovered panic
// from an ordinary extraction error — the loop quarantines the former.
func SafeExtract(f featurepipe.FeatureFunc, in *corpus.Input) (res featurepipe.Result, err error, panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			res = featurepipe.Result{}
			err = fmt.Errorf("core: feature %s panicked on input %s: %v", f.Name(), in.ID, p)
			panicked = true
		}
	}()
	res, err = f.Extract(in)
	return res, err, false
}

// ReadStoreInput fetches one input from the store with panic isolation
// and corpus-read fault injection. Store implementations panic on corrupt
// records (DiskStore on a torn or garbage JSONL line); this converts that
// into a quarantinable error so one bad record costs one quarantine
// entry, not the run.
func ReadStoreInput(store corpus.Store, idx int, faults *fault.Injector) (in *corpus.Input, err error) {
	defer func() {
		if p := recover(); p != nil {
			in = nil
			err = fmt.Errorf("core: corpus read of input %d failed: %v", idx, p)
		}
	}()
	if ferr := faults.Fire(fault.SiteCorpusRead, strconv.Itoa(idx)); ferr != nil {
		return nil, ferr
	}
	return store.Get(idx), nil
}
