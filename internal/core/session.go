package core

import (
	"context"
	"fmt"
	"time"

	"zombie/internal/featurepipe"
	"zombie/internal/index"
)

// IterationResult is one feature-code version's evaluation inside a
// session.
type IterationResult struct {
	Version string
	Run     *RunResult
}

// SessionResult aggregates a whole engineering session — the paper's
// end-to-end unit of account (8 hours → 5 hours).
type SessionResult struct {
	// Name and Mode label the session and the system under test
	// ("zombie" or "scan").
	Name string
	Mode string
	// Iterations holds one result per feature-code version, in order.
	Iterations []IterationResult
	// IndexBuild is the one-time indexing cost charged to Zombie
	// sessions (zero for scans).
	IndexBuild time.Duration
	// ThinkTime is the engineer's fixed between-run time, counted once
	// per iteration under both modes.
	ThinkTime time.Duration
	// ProcessingTime is the summed simulated processing across runs.
	ProcessingTime time.Duration
}

// TotalTime is the engineer's wait: indexing (if any) + processing +
// think time.
func (s *SessionResult) TotalTime() time.Duration {
	return s.IndexBuild + s.ProcessingTime + s.ThinkTime
}

// TotalInputs sums inputs processed across iterations.
func (s *SessionResult) TotalInputs() int {
	total := 0
	for _, it := range s.Iterations {
		total += it.Run.InputsProcessed
	}
	return total
}

// RunSession replays an engineering session: each feature-code version is
// evaluated in order against the same task split. With useZombie, runs go
// through the index groups under the engine's policy and early stopping,
// and the one-time index build cost is charged up front; otherwise each
// run is a full random scan with early stopping disabled (the status-quo
// engineer who processes the corpus every iteration).
func (e *Engine) RunSession(s *featurepipe.Session, base *featurepipe.Task, groups *index.Groups, useZombie bool) (*SessionResult, error) {
	return e.RunSessionContext(context.Background(), s, base, groups, useZombie)
}

// RunSessionContext is RunSession with cancellation: a cancelled context
// ends the session after the iteration that observed it, returning the
// iterations completed so far (the last one carrying Stop = StopCancelled)
// rather than an error.
func (e *Engine) RunSessionContext(ctx context.Context, s *featurepipe.Session, base *featurepipe.Task, groups *index.Groups, useZombie bool) (*SessionResult, error) {
	if s == nil || len(s.Versions) == 0 {
		return nil, fmt.Errorf("core: RunSession requires a non-empty session")
	}
	out := &SessionResult{Name: s.Name}
	thinkPer := time.Duration(s.ThinkTimeMinutes * float64(time.Minute))

	if useZombie {
		if groups == nil {
			return nil, fmt.Errorf("core: zombie session requires groups")
		}
		out.Mode = "zombie"
		out.IndexBuild = groups.BuildTime
	} else {
		out.Mode = "scan"
	}

	scanEngine := e
	if !useZombie {
		cfg := e.cfg
		cfg.EarlyStop.Enabled = false
		var err error
		scanEngine, err = New(cfg)
		if err != nil {
			return nil, err
		}
	}

	for i, version := range s.Versions {
		task := base.WithFeature(version)
		var run *RunResult
		var err error
		if useZombie {
			run, err = e.RunContext(ctx, task, groups)
		} else {
			run, err = scanEngine.RunScanContext(ctx, task, true)
		}
		if err != nil {
			return nil, fmt.Errorf("core: session %s iteration %d (%s): %w", s.Name, i, version.Name(), err)
		}
		out.Iterations = append(out.Iterations, IterationResult{Version: version.Name(), Run: run})
		out.ProcessingTime += run.SimTime
		out.ThinkTime += thinkPer
		if run.Stop == StopCancelled {
			break
		}
	}
	return out, nil
}
