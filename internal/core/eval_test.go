package core

import (
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/learner"
	"zombie/internal/rng"
)

// nbWikiTask builds a wiki task backed by MultinomialNB — an
// order-insensitive learner, so the engine's amortized set-based
// evaluation applies.
func nbWikiTask(t *testing.T, n int, seed int64) (*featurepipe.Task, *index.Groups) {
	t.Helper()
	cfg := corpus.DefaultWikiConfig()
	cfg.N = n
	ins, err := corpus.GenerateWiki(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	store := corpus.NewMemStore(ins)
	f := featurepipe.NewWikiFeature(3)
	task, err := featurepipe.NewTask("wiki-nb", store, f,
		func(ff featurepipe.FeatureFunc) learner.Model {
			return learner.NewMultinomialNB(ff.Dim(), 2, 1)
		},
		learner.MetricF1, 1, featurepipe.CostModel{}, featurepipe.TaskOptions{}, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	grouper := &index.KMeansGrouper{
		Vectorizer: index.NewHashedText(128),
		Config:     index.KMeansConfig{MaxIter: 10},
	}
	groups, err := grouper.Group(store, 12, rng.New(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	return task, groups
}

// TestAmortizedEvalReproducible: the amortized evaluation path must keep
// the engine's replay guarantee — identical config and seed, identical
// curve.
func TestAmortizedEvalReproducible(t *testing.T) {
	task, groups := nbWikiTask(t, 1200, 500)
	e := mustEngine(t, Config{Seed: 5, MaxInputs: 400})
	a, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("curve point %d differs: %+v vs %+v", i, a.Curve[i], b.Curve[i])
		}
	}
}

// TestAmortizedEvalMatchesFromScratch: for an order-insensitive learner
// the amortized scheme trains the evaluation model on exactly the example
// set the from-scratch retrain uses, so curves agree up to floating-point
// accumulation order.
func TestAmortizedEvalMatchesFromScratch(t *testing.T) {
	task, groups := nbWikiTask(t, 1200, 501)
	amortized := mustEngine(t, Config{Seed: 9, MaxInputs: 400})
	scratch := mustEngine(t, Config{Seed: 9, MaxInputs: 400, EvalFromScratch: true})
	a, err := amortized.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	s, err := scratch.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Curve) != len(s.Curve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(a.Curve), len(s.Curve))
	}
	for i := range a.Curve {
		if diff := a.Curve[i].Quality - s.Curve[i].Quality; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("curve point %d: amortized %v vs from-scratch %v",
				i, a.Curve[i].Quality, s.Curve[i].Quality)
		}
	}
}

// TestOrderSensitiveLearnerKeepsFromScratch: an SGD-backed task must
// produce the same curve whether or not EvalFromScratch is set, because
// the engine refuses to amortize order-sensitive learners.
func TestOrderSensitiveLearnerKeepsFromScratch(t *testing.T) {
	task, groups := wikiTask(t, 1000, 502)
	def := mustEngine(t, Config{Seed: 3, MaxInputs: 300})
	forced := mustEngine(t, Config{Seed: 3, MaxInputs: 300, EvalFromScratch: true})
	a, err := def.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	b, err := forced.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("curve point %d differs: %+v vs %+v", i, a.Curve[i], b.Curve[i])
		}
	}
}

// TestEvalWorkersDeterministic: EvalWorkers is a latency knob only — any
// worker count yields the identical curve.
func TestEvalWorkersDeterministic(t *testing.T) {
	task, groups := nbWikiTask(t, 1200, 503)
	seq := mustEngine(t, Config{Seed: 7, MaxInputs: 300})
	par := mustEngine(t, Config{Seed: 7, MaxInputs: 300, EvalWorkers: 8})
	a, err := seq.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("curve point %d differs: %+v vs %+v", i, a.Curve[i], b.Curve[i])
		}
	}
}

// TestSubsampleHoldoutGuards: n <= 0 and n >= len both reuse the full
// holdout instead of producing an empty (reward-zeroing) subsample.
func TestSubsampleHoldoutGuards(t *testing.T) {
	examples := make([]learner.Example, 20)
	for i := range examples {
		examples[i] = learner.Example{
			Features: learner.DenseVec([]float64{float64(i)}),
			Class:    i % 2,
		}
	}
	h := learner.NewHoldout(examples, learner.MetricF1, 1)
	for _, n := range []int{0, -5, 20, 100} {
		if got := subsampleHoldout(h, n, rng.New(1)); got != h {
			t.Fatalf("n=%d: expected full holdout reuse, got %d examples", n, len(got.Examples))
		}
	}
	sub := subsampleHoldout(h, 5, rng.New(1))
	if sub == h || len(sub.Examples) != 5 {
		t.Fatalf("n=5: expected fresh 5-example subsample, got %d (reused=%v)",
			len(sub.Examples), sub == h)
	}
	if sub.Metric != h.Metric || sub.Positive != h.Positive {
		t.Fatal("subsample must preserve metric configuration")
	}
}
