package core

import (
	"strings"
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/fault"
	"zombie/internal/featcache"
)

// mustInjector parses a fault spec or fails the test.
func mustInjector(t *testing.T, spec string, seed int64) *fault.Injector {
	t.Helper()
	inj, err := fault.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestFaultedRunQuarantinesAndCompletes is the tentpole contract: a run
// over a corpus where a meaningful fraction of inputs fail (injected
// extraction errors and panics plus corpus read errors) completes with
// partial damage recorded as quarantine entries, not an abort.
func TestFaultedRunQuarantinesAndCompletes(t *testing.T) {
	task, groups := wikiTask(t, 1200, 301)
	inj := mustInjector(t, "extract:err=0.04,panic=0.05;corpus.read:err=0.04", 7)
	e := mustEngine(t, Config{Seed: 31, MaxInputs: 400, Faults: inj})
	res, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop == StopFailed {
		t.Fatalf("sub-budget fault rates degraded the run: %s", res.Summary())
	}
	if res.InputsProcessed != 400 {
		t.Fatalf("faults truncated the run: %d", res.InputsProcessed)
	}
	var extractQ, corpusQ int
	for _, q := range res.Quarantined {
		switch q.Site {
		case string(fault.SiteExtract):
			extractQ++
			if q.InputID == "" || q.Step == 0 || !strings.Contains(q.Reason, "panicked") {
				t.Fatalf("extract quarantine malformed: %+v", q)
			}
		case string(fault.SiteCorpusRead):
			corpusQ++
			if !strings.HasPrefix(q.InputID, "#") || q.Step == 0 {
				t.Fatalf("corpus quarantine malformed: %+v", q)
			}
		case "holdout":
			if q.Step != 0 {
				t.Fatalf("holdout quarantine carries a loop step: %+v", q)
			}
		default:
			t.Fatalf("unknown quarantine site %q", q.Site)
		}
	}
	if extractQ == 0 || corpusQ == 0 {
		t.Fatalf("expected both extract and corpus quarantines, got %d/%d", extractQ, corpusQ)
	}
	if !strings.Contains(res.Summary(), "quarantined=") {
		t.Fatalf("summary hides quarantines: %s", res.Summary())
	}
}

// TestFaultedRunsAreDeterministic: two runs with the same engine seed and
// the same fault seed must agree on everything, quarantine list included.
func TestFaultedRunsAreDeterministic(t *testing.T) {
	task, groups := wikiTask(t, 1000, 302)
	run := func() *RunResult {
		inj := mustInjector(t, "extract:err=0.05,panic=0.05;corpus.read:err=0.05", 11)
		res, err := mustEngine(t, Config{Seed: 33, MaxInputs: 300, TraceEvents: true, Faults: inj}).Run(task, groups)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	identicalRuns(t, "faulted-repeat", a, b)
	if len(a.Quarantined) == 0 || len(a.Quarantined) != len(b.Quarantined) {
		t.Fatalf("quarantine lists differ: %d vs %d", len(a.Quarantined), len(b.Quarantined))
	}
	for i := range a.Quarantined {
		if a.Quarantined[i] != b.Quarantined[i] {
			t.Fatalf("quarantine %d differs: %+v vs %+v", i, a.Quarantined[i], b.Quarantined[i])
		}
	}
}

// TestFaultedRunIsCacheInvariant: because injection is decided before any
// cache lookup, a faulted run must stay byte-identical with the cache
// off, cold, and warm.
func TestFaultedRunIsCacheInvariant(t *testing.T) {
	task, groups := wikiTask(t, 900, 303)
	spec, fseed := "extract:err=0.06,panic=0.04", int64(13)
	base, err := mustEngine(t, Config{Seed: 35, MaxInputs: 250, TraceEvents: true,
		Faults: mustInjector(t, spec, fseed)}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	cache := mustCache(t, featcache.Config{})
	cfg := Config{Seed: 35, MaxInputs: 250, TraceEvents: true,
		Faults: mustInjector(t, spec, fseed), Cache: cache}
	cold, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := mustEngine(t, cfg).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	identicalRuns(t, "faulted-off-vs-cold", base, cold)
	identicalRuns(t, "faulted-off-vs-warm", base, warm)
	if len(base.Quarantined) == 0 || len(cold.Quarantined) != len(base.Quarantined) ||
		len(warm.Quarantined) != len(base.Quarantined) {
		t.Fatalf("quarantines not cache-invariant: %d/%d/%d",
			len(base.Quarantined), len(cold.Quarantined), len(warm.Quarantined))
	}
}

// TestFailureBudgetDegradesToStopFailed: when quarantines swamp the run,
// it must stop accepting damage and return partial results under
// StopFailed instead of burning the remaining budget.
func TestFailureBudgetDegradesToStopFailed(t *testing.T) {
	task, groups := wikiTask(t, 1000, 304)
	inj := mustInjector(t, "extract:panic=0.9", 17)
	res, err := mustEngine(t, Config{Seed: 37, MaxInputs: 400, MaxFailureFrac: 0.25, Faults: inj}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopFailed {
		t.Fatalf("stop = %s, want failed (quarantined %d of %d)", res.Stop, len(res.Quarantined), res.InputsProcessed)
	}
	if res.InputsProcessed >= 400 {
		t.Fatal("budget-exceeded run did not stop early")
	}
	if res.InputsProcessed < 20 {
		t.Fatalf("grace period ignored: stopped at step %d", res.InputsProcessed)
	}
	if len(res.Curve) == 0 || res.Curve[len(res.Curve)-1].Inputs != res.InputsProcessed {
		t.Fatal("failed run lacks its final partial curve point")
	}
	if res.Stop.String() != "failed" {
		t.Fatalf("StopFailed label %q", res.Stop)
	}
}

// TestMaxFailureFracDisabledAtOne: a budget of 1 never trips — every
// input can be quarantined and the run still runs to its input budget.
func TestMaxFailureFracDisabledAtOne(t *testing.T) {
	task, groups := wikiTask(t, 800, 305)
	inj := mustInjector(t, "extract:panic=0.9", 19)
	res, err := mustEngine(t, Config{Seed: 39, MaxInputs: 100, MaxFailureFrac: 1, Faults: inj}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop == StopFailed {
		t.Fatalf("disabled budget still tripped: %s", res.Summary())
	}
	if res.InputsProcessed != 100 {
		t.Fatalf("run truncated: %d", res.InputsProcessed)
	}
	if len(res.Quarantined) < 50 {
		t.Fatalf("90%% panic rate quarantined only %d of 100", len(res.Quarantined))
	}
}

// TestHoldoutFaultsAreQuarantinedNotFatal: extraction failures on
// holdout inputs shrink the holdout and are reported, rather than
// aborting the run before it starts.
func TestHoldoutFaultsAreQuarantinedNotFatal(t *testing.T) {
	task, groups := wikiTask(t, 1000, 306)
	inj := mustInjector(t, "extract:err=0.10,panic=0.05", 23)
	res, err := mustEngine(t, Config{Seed: 41, MaxInputs: 150, Faults: inj}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	holdoutQ := 0
	for _, q := range res.Quarantined {
		if q.Site == "holdout" {
			holdoutQ++
			if q.Reason == "" || q.InputID == "" {
				t.Fatalf("holdout quarantine malformed: %+v", q)
			}
		}
	}
	if holdoutQ == 0 {
		t.Fatal("10%+5% fault rates never hit a 100-input holdout — injector not reaching holdout build")
	}
}

// TestCorpusReadPanicIsQuarantined: a store that panics on a corrupt
// record (DiskStore's contract) costs one quarantine entry, not the run.
func TestCorpusReadPanicIsQuarantined(t *testing.T) {
	task, groups := wikiTask(t, 900, 307)
	inner := task.Store
	task.Store = &panickyStore{Store: inner, badEvery: 17}
	res, err := mustEngine(t, Config{Seed: 43, MaxInputs: 200}).Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, q := range res.Quarantined {
		if q.Site == string(fault.SiteCorpusRead) && strings.Contains(q.Reason, "corrupt record") {
			found = true
		}
	}
	if !found {
		t.Fatal("no corpus.read quarantine from a panicking store")
	}
}

// panickyStore panics on every badEvery-th index, simulating corrupt
// records in a disk-backed corpus. Holdout indices are served normally
// only by luck of the modulus; the engine must survive either way.
type panickyStore struct {
	corpus.Store
	badEvery int
}

func (s *panickyStore) Get(i int) *corpus.Input {
	if s.badEvery > 0 && i%s.badEvery == 0 {
		panic("corpus: corrupt record (simulated)")
	}
	return s.Store.Get(i)
}

func TestConfigRejectsBadFailureFrac(t *testing.T) {
	if _, err := New(Config{MaxFailureFrac: 1.5}); err == nil {
		t.Fatal("MaxFailureFrac > 1 accepted")
	}
	e := mustEngine(t, Config{})
	if got := e.Config().MaxFailureFrac; got != 0.5 {
		t.Fatalf("default MaxFailureFrac = %v, want 0.5", got)
	}
}
