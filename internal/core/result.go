package core

import (
	"fmt"
	"time"

	"zombie/internal/bandit"
	"zombie/internal/trace"
)

// StopReason records why a run ended.
type StopReason int

const (
	// StopExhausted: the input pool ran dry.
	StopExhausted StopReason = iota
	// StopBudget: Config.MaxInputs was reached.
	StopBudget
	// StopEarly: the learning-curve plateau detector fired.
	StopEarly
	// StopCancelled: the run's context was cancelled mid-loop. The result
	// is still valid — curve so far, correct InputsProcessed — because a
	// cancelled run's partial learning curve is exactly what a service
	// caller wants to show for an aborted iteration.
	StopCancelled
	// StopFailed: quarantined inputs exceeded the failure budget
	// (Config.MaxFailureFrac) and the run degraded to its partial results.
	// The result is still valid — curve so far, quarantine list complete —
	// because "most of this corpus is broken" is itself the answer the
	// engineer needs, and an abort would discard the evidence.
	StopFailed
)

// String returns the reason's label.
func (s StopReason) String() string {
	switch s {
	case StopExhausted:
		return "exhausted"
	case StopBudget:
		return "budget"
	case StopEarly:
		return "early-stop"
	case StopCancelled:
		return "cancelled"
	case StopFailed:
		return "failed"
	default:
		return fmt.Sprintf("StopReason(%d)", int(s))
	}
}

// Quarantine records one input removed from a run after a failure the
// engine absorbed: a feature-code panic, a corpus read error, or a
// holdout input whose extraction failed. Quarantined inputs cost one
// record, not the run.
type Quarantine struct {
	// InputID is the corpus input's ID, or "#<store index>" when the read
	// itself failed before an ID was available.
	InputID string `json:"input_id"`
	// Site is the fault site ("extract", "corpus.read", "holdout").
	Site string `json:"site"`
	// Step is the 1-based loop step that hit the failure; 0 for inputs
	// quarantined while building the holdout, before the loop started.
	Step int `json:"step"`
	// Reason is the failure message.
	Reason string `json:"reason"`
}

// CurvePoint is one sample of the learning curve.
type CurvePoint struct {
	// Inputs is the number of inputs processed when the sample was taken.
	Inputs int
	// Quality is the full-holdout quality at that point.
	Quality float64
	// SimTime is the cumulative simulated processing time.
	SimTime time.Duration
}

// RunResult is everything one feature-evaluation run reports.
type RunResult struct {
	// Task and Strategy label the run ("wiki", "zombie(eps-greedy(0.10))").
	Task     string
	Strategy string
	// Curve is the learning curve, including the step-0 floor and the
	// final point.
	Curve []CurvePoint
	// InputsProcessed counts inputs actually run through feature code.
	InputsProcessed int
	// Produced / Useful / Errors break down the step outcomes.
	Produced int
	Useful   int
	Errors   int
	// FinalQuality is the last holdout evaluation.
	FinalQuality float64
	// SimTime is the total simulated processing time.
	SimTime time.Duration
	// WallTime is the real time the run took (engine overhead included).
	WallTime time.Duration
	// Phases breaks WallTime down by inner-loop phase (holdout build, arm
	// select, corpus read, extract, train, holdout eval, with the cache's
	// lookup overhead reported separately). Always filled; purely
	// observational — see PhaseBreakdown.
	Phases PhaseBreakdown
	// Stop records why the run ended.
	Stop StopReason
	// CacheHits / CacheMisses count this run's extraction-cache traffic
	// (both zero when Config.Cache is nil). They are diagnostics, not part
	// of the run's semantics, and are deliberately excluded from Summary so
	// identical runs print identically whether the cache was cold or warm.
	CacheHits   int64
	CacheMisses int64
	// Quarantined lists inputs the run removed after absorbed failures
	// (panicking feature code, corpus read errors, failed holdout
	// extractions), in the deterministic order they were hit. Empty for
	// clean runs. When the quarantine fraction exceeds
	// Config.MaxFailureFrac the run ends with Stop = StopFailed.
	Quarantined []Quarantine
	// Arms holds final per-group bandit statistics (nil for scans).
	Arms []bandit.ArmSnapshot
	// WarmStartPulls counts the synthetic pulls seeded into the policy
	// from Config.WarmStart before the first real selection (0 for cold
	// runs and scans). Seeded pulls are included in Arms' pull counts.
	WarmStartPulls int64
	// Events is the step trace when Config.TraceEvents was set.
	Events *trace.Log
}

// InputsToQuality returns the first curve point at or above the target
// quality, reporting the inputs processed and simulated time it took.
// ok is false when the run never reached the target.
func (r *RunResult) InputsToQuality(target float64) (inputs int, sim time.Duration, ok bool) {
	for _, p := range r.Curve {
		if p.Quality >= target {
			return p.Inputs, p.SimTime, true
		}
	}
	return 0, 0, false
}

// QualityAtInputs returns the quality of the last curve sample at or
// before the given input count (the step-0 floor when none). It lets
// experiments compare strategies at a fixed budget.
func (r *RunResult) QualityAtInputs(inputs int) float64 {
	q := 0.0
	if len(r.Curve) > 0 {
		q = r.Curve[0].Quality
	}
	for _, p := range r.Curve {
		if p.Inputs > inputs {
			break
		}
		q = p.Quality
	}
	return q
}

// UsefulRate returns Useful / InputsProcessed (0 for an empty run).
func (r *RunResult) UsefulRate() float64 {
	if r.InputsProcessed == 0 {
		return 0
	}
	return float64(r.Useful) / float64(r.InputsProcessed)
}

// Summary renders a one-line human-readable digest. Quarantine counts
// appear only when non-zero, so clean runs print exactly as they always
// have (scripts diff run output across configurations).
func (r *RunResult) Summary() string {
	s := fmt.Sprintf("%s/%s: inputs=%d useful=%d (%.1f%%) errors=%d quality=%.4f sim=%s stop=%s",
		r.Task, r.Strategy, r.InputsProcessed, r.Useful, 100*r.UsefulRate(),
		r.Errors, r.FinalQuality, r.SimTime.Round(time.Millisecond), r.Stop)
	if len(r.Quarantined) > 0 {
		s += fmt.Sprintf(" quarantined=%d", len(r.Quarantined))
	}
	return s
}
