package core

import (
	"testing"
	"time"

	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/learner"
	"zombie/internal/rng"
)

// miniWikiSession builds a 3-version wiki session over a small corpus with
// a nonzero cost model so session times are meaningful.
func miniWikiSession(t *testing.T, n int, seed int64) (*featurepipe.Session, *featurepipe.Task, *index.Groups) {
	t.Helper()
	cfg := corpus.DefaultWikiConfig()
	cfg.N = n
	ins, err := corpus.GenerateWiki(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	store := corpus.NewMemStore(ins)
	f := featurepipe.NewWikiFeature(2)
	task, err := featurepipe.NewTask("wiki", store, f,
		func(ff featurepipe.FeatureFunc) learner.Model {
			return learner.NewLogisticSGD(ff.Dim(), 0.5, 0, learner.ConstantLR)
		},
		learner.MetricF1, 1,
		featurepipe.CostModel{PerInput: 20 * time.Millisecond},
		featurepipe.TaskOptions{}, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	// The task's model factory is built for one dimensionality, so this
	// session iterates versions that share dim 16384 (v7 and v8 differ in
	// marker boost only).
	v7 := featurepipe.NewWikiFeature(7)
	v8 := featurepipe.NewWikiFeature(8)
	sess, err := featurepipe.NewSession("mini", 1, v7, v8)
	if err != nil {
		t.Fatal(err)
	}
	task.Feature = v7
	grouper := &index.KMeansGrouper{Vectorizer: index.NewHashedText(64), Config: index.KMeansConfig{MaxIter: 8}}
	groups, err := grouper.Group(store, 8, rng.New(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	return sess, task, groups
}

func TestRunSessionScanVsZombie(t *testing.T) {
	sess, task, groups := miniWikiSession(t, 2500, 400)
	e := mustEngine(t, Config{
		Seed: 1,
		EarlyStop: EarlyStopConfig{
			Enabled: true, Window: 6, SlopeThreshold: 0.004, Patience: 2, MinInputs: 250,
		},
	})
	zombie, err := e.RunSession(sess, task, groups, true)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := e.RunSession(sess, task, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(zombie.Iterations) != 2 || len(scan.Iterations) != 2 {
		t.Fatalf("iterations: %d vs %d", len(zombie.Iterations), len(scan.Iterations))
	}
	if zombie.Mode != "zombie" || scan.Mode != "scan" {
		t.Fatal("modes wrong")
	}
	// Scan processes the full pool every iteration.
	for i, it := range scan.Iterations {
		if it.Run.InputsProcessed != len(task.PoolIdx) {
			t.Fatalf("scan iteration %d processed %d of %d", i, it.Run.InputsProcessed, len(task.PoolIdx))
		}
		if it.Run.Stop == StopEarly {
			t.Fatal("scan session must not early-stop")
		}
	}
	// Zombie processes less in total and therefore waits less.
	if zombie.TotalInputs() >= scan.TotalInputs() {
		t.Fatalf("zombie processed %d inputs vs scan %d", zombie.TotalInputs(), scan.TotalInputs())
	}
	if zombie.TotalTime() >= scan.TotalTime() {
		t.Fatalf("zombie total %v vs scan %v", zombie.TotalTime(), scan.TotalTime())
	}
	// Both sessions charge think time identically.
	if zombie.ThinkTime != scan.ThinkTime {
		t.Fatal("think time should match across modes")
	}
	// Quality parity: zombie's final iteration quality within tolerance.
	zq := zombie.Iterations[1].Run.FinalQuality
	sq := scan.Iterations[1].Run.FinalQuality
	if sq-zq > 0.12 {
		t.Fatalf("zombie session lost too much quality: %.3f vs %.3f", zq, sq)
	}
}

func TestRunSessionValidation(t *testing.T) {
	sess, task, groups := miniWikiSession(t, 600, 401)
	e := mustEngine(t, Config{Seed: 1})
	if _, err := e.RunSession(nil, task, groups, true); err == nil {
		t.Fatal("nil session should fail")
	}
	if _, err := e.RunSession(sess, task, nil, true); err == nil {
		t.Fatal("zombie session without groups should fail")
	}
}

func TestSessionResultTotals(t *testing.T) {
	s := &SessionResult{
		IndexBuild:     2 * time.Minute,
		ThinkTime:      10 * time.Minute,
		ProcessingTime: 30 * time.Minute,
		Iterations: []IterationResult{
			{Run: &RunResult{InputsProcessed: 100}},
			{Run: &RunResult{InputsProcessed: 250}},
		},
	}
	if s.TotalTime() != 42*time.Minute {
		t.Fatalf("TotalTime = %v", s.TotalTime())
	}
	if s.TotalInputs() != 350 {
		t.Fatalf("TotalInputs = %d", s.TotalInputs())
	}
}
