package core

import (
	"testing"
	"time"

	"zombie/internal/bandit"
	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/learner"
	"zombie/internal/rng"
)

// imageTask builds a small needle-in-haystack image task plus k-means
// index groups — the regime where input selection matters most.
func imageTask(t *testing.T, n int, seed int64) (*featurepipe.Task, *index.Groups) {
	t.Helper()
	cfg := corpus.DefaultImageConfig()
	cfg.N = n
	ins, err := corpus.GenerateImages(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	store := corpus.NewMemStore(ins)
	f := featurepipe.NewImageFeature(1, cfg)
	task, err := featurepipe.NewTask("image", store, f,
		func(ff featurepipe.FeatureFunc) learner.Model {
			return learner.NewLogisticSGD(ff.Dim(), 0.3, 0.001, learner.ConstantLR)
		},
		learner.MetricF1, 1, featurepipe.CostModel{}, featurepipe.TaskOptions{}, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	grouper := &index.KMeansGrouper{
		Vectorizer: index.NewNumeric(cfg.Dim),
		Config:     index.KMeansConfig{MaxIter: 15},
	}
	groups, err := grouper.Group(store, 12, rng.New(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	return task, groups
}

func wikiTask(t testing.TB, n int, seed int64) (*featurepipe.Task, *index.Groups) {
	t.Helper()
	cfg := corpus.DefaultWikiConfig()
	cfg.N = n
	ins, err := corpus.GenerateWiki(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	store := corpus.NewMemStore(ins)
	f := featurepipe.NewWikiFeature(3)
	task, err := featurepipe.NewTask("wiki", store, f,
		func(ff featurepipe.FeatureFunc) learner.Model {
			return learner.NewLogisticSGD(ff.Dim(), 0.5, 0, learner.ConstantLR)
		},
		learner.MetricF1, 1, featurepipe.CostModel{}, featurepipe.TaskOptions{}, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	grouper := &index.KMeansGrouper{
		Vectorizer: index.NewHashedText(128),
		Config:     index.KMeansConfig{MaxIter: 10},
	}
	groups, err := grouper.Group(store, 12, rng.New(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	return task, groups
}

func mustEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Policy: "bogus"}); err == nil {
		t.Fatal("bad policy spec should fail")
	}
	if _, err := New(Config{MaxInputs: -1}); err == nil {
		t.Fatal("negative MaxInputs should fail")
	}
	if _, err := New(Config{Reward: RewardKind(42)}); err == nil {
		t.Fatal("unknown reward should fail")
	}
	e := mustEngine(t, Config{})
	cfg := e.Config()
	if cfg.Policy != "eps-greedy:0.1" || cfg.EvalEvery != 25 || cfg.RewardSubsample != 50 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.EarlyStop.Window != 8 || cfg.EarlyStop.Patience != 2 || cfg.EarlyStop.MinInputs != 200 {
		t.Fatalf("early-stop defaults wrong: %+v", cfg.EarlyStop)
	}
}

func TestRunBasicAccounting(t *testing.T) {
	task, groups := imageTask(t, 2000, 200)
	e := mustEngine(t, Config{Seed: 1, MaxInputs: 400, TraceEvents: true})
	res, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.InputsProcessed != 400 || res.Stop != StopBudget {
		t.Fatalf("budget stop wrong: %d inputs, stop=%s", res.InputsProcessed, res.Stop)
	}
	if res.Produced != 400 {
		t.Fatalf("image task always produces: %d", res.Produced)
	}
	if res.Useful == 0 {
		t.Fatal("run found no useful inputs at all")
	}
	if res.Events.Len() != 400 {
		t.Fatalf("trace has %d events", res.Events.Len())
	}
	// Arm pulls sum to steps.
	total := int64(0)
	for _, a := range res.Arms {
		total += a.Pulls
	}
	if total != 400 {
		t.Fatalf("arm pulls sum to %d", total)
	}
	// Curve starts at 0 inputs and ends at the final step.
	if res.Curve[0].Inputs != 0 {
		t.Fatal("curve missing floor point")
	}
	if last := res.Curve[len(res.Curve)-1]; last.Inputs != 400 || last.Quality != res.FinalQuality {
		t.Fatalf("curve end wrong: %+v vs final %v", last, res.FinalQuality)
	}
	if res.SimTime != 0 {
		t.Fatal("zero cost model should yield zero sim time")
	}
}

func TestRunDeterministicReplay(t *testing.T) {
	task, groups := imageTask(t, 1500, 201)
	e := mustEngine(t, Config{Seed: 7, MaxInputs: 300, TraceEvents: true})
	a, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if a.InputsProcessed != b.InputsProcessed || a.FinalQuality != b.FinalQuality {
		t.Fatal("replay differs at summary level")
	}
	for i := range a.Events.Events {
		ea, eb := a.Events.Events[i], b.Events.Events[i]
		if ea.InputIdx != eb.InputIdx || ea.Arm != eb.Arm || ea.Reward != eb.Reward {
			t.Fatalf("replay diverged at step %d: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestRunSeedChangesTrajectory(t *testing.T) {
	task, groups := imageTask(t, 1500, 202)
	a, _ := mustEngine(t, Config{Seed: 1, MaxInputs: 200, TraceEvents: true}).Run(task, groups)
	b, _ := mustEngine(t, Config{Seed: 2, MaxInputs: 200, TraceEvents: true}).Run(task, groups)
	same := 0
	for i := range a.Events.Events {
		if a.Events.Events[i].InputIdx == b.Events.Events[i].InputIdx {
			same++
		}
	}
	if same == len(a.Events.Events) {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestZombieNeverProcessesHoldout(t *testing.T) {
	task, groups := imageTask(t, 1000, 203)
	holdoutSet := map[int]bool{}
	for _, i := range task.HoldoutIdx {
		holdoutSet[i] = true
	}
	e := mustEngine(t, Config{Seed: 3, TraceEvents: true})
	res, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Events.Events {
		if holdoutSet[ev.InputIdx] {
			t.Fatalf("step %d processed holdout input %d", ev.Step, ev.InputIdx)
		}
	}
	// Exhaustion: all pool inputs processed exactly once.
	if res.InputsProcessed != len(task.PoolIdx) || res.Stop != StopExhausted {
		t.Fatalf("exhaustion wrong: %d of %d, stop=%s", res.InputsProcessed, len(task.PoolIdx), res.Stop)
	}
	seen := map[int]int{}
	for _, ev := range res.Events.Events {
		seen[ev.InputIdx]++
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("input %d processed %d times", idx, n)
		}
	}
}

func TestZombieBeatsRandomScanOnSkewedTask(t *testing.T) {
	// The headline property (experiment T2): at a fixed small budget, the
	// bandit over informative k-means groups reaches higher quality than
	// a random scan, because it concentrates on positive-rich groups.
	task, groups := imageTask(t, 6000, 204)
	budget := 600
	zombieWins := 0
	trials := 3
	for trial := 0; trial < trials; trial++ {
		seed := int64(300 + trial)
		e := mustEngine(t, Config{Seed: seed, MaxInputs: budget})
		z, err := e.Run(task, groups)
		if err != nil {
			t.Fatal(err)
		}
		s, err := e.RunScan(task, true)
		if err != nil {
			t.Fatal(err)
		}
		// The bandit must find substantially more useful inputs.
		if z.Useful > 2*s.Useful {
			zombieWins++
		}
		t.Logf("trial %d: zombie useful=%d q=%.3f | scan useful=%d q=%.3f",
			trial, z.Useful, z.FinalQuality, s.Useful, s.FinalQuality)
	}
	if zombieWins < 2 {
		t.Fatalf("zombie won only %d/%d trials on useful-input discovery", zombieWins, trials)
	}
}

func TestOracleDominatesZombie(t *testing.T) {
	task, groups := imageTask(t, 4000, 205)
	budget := 400
	e := mustEngine(t, Config{Seed: 9, MaxInputs: budget})
	z, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	o, err := e.RunOracle(task)
	if err != nil {
		t.Fatal(err)
	}
	if o.Useful < z.Useful {
		t.Fatalf("oracle (%d useful) must dominate zombie (%d useful)", o.Useful, z.Useful)
	}
	// Within budget, every oracle input is useful until positives run out.
	if o.Useful != budget && o.Useful < z.Useful {
		t.Fatalf("oracle useful=%d under budget %d", o.Useful, budget)
	}
}

func TestMaxSimTimeBudget(t *testing.T) {
	task, groups := imageTask(t, 2000, 920)
	task.Cost = featurepipe.CostModel{PerInput: 100 * time.Millisecond}
	e := mustEngine(t, Config{Seed: 1, MaxSimTime: 10 * time.Second})
	res, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopBudget {
		t.Fatalf("stop = %s", res.Stop)
	}
	// 10s at 100ms/input = 100 inputs (+1 for the step that crosses).
	if res.InputsProcessed < 99 || res.InputsProcessed > 101 {
		t.Fatalf("processed %d inputs under a 100-input time budget", res.InputsProcessed)
	}
	if res.SimTime < 9*time.Second {
		t.Fatalf("sim time %v under budget", res.SimTime)
	}
	if _, err := New(Config{MaxSimTime: -1}); err == nil {
		t.Fatal("negative MaxSimTime should fail")
	}
}

func TestEarlyStopFiresOnPlateau(t *testing.T) {
	task, groups := wikiTask(t, 3000, 206)
	e := mustEngine(t, Config{
		Seed: 11,
		EarlyStop: EarlyStopConfig{
			Enabled:        true,
			Window:         6,
			SlopeThreshold: 0.004,
			Patience:       2,
			MinInputs:      300,
		},
	})
	res, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopEarly {
		t.Fatalf("expected early stop, got %s after %d inputs", res.Stop, res.InputsProcessed)
	}
	if res.InputsProcessed < 300 {
		t.Fatalf("stopped before MinInputs: %d", res.InputsProcessed)
	}
	if res.InputsProcessed >= len(task.PoolIdx) {
		t.Fatal("early stop saved nothing")
	}
	// The early-stopped quality should be close to the full-run quality.
	full := mustEngine(t, Config{Seed: 11})
	fres, err := full.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if fres.FinalQuality-res.FinalQuality > 0.1 {
		t.Fatalf("early stop lost too much quality: %.3f vs %.3f", res.FinalQuality, fres.FinalQuality)
	}
}

func TestEarlyStopDisabledRunsToExhaustion(t *testing.T) {
	task, groups := wikiTask(t, 1200, 207)
	e := mustEngine(t, Config{Seed: 13})
	res, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != StopExhausted || res.InputsProcessed != len(task.PoolIdx) {
		t.Fatalf("expected exhaustion: %s after %d/%d", res.Stop, res.InputsProcessed, len(task.PoolIdx))
	}
}

func TestScanSequentialVsRandomOrders(t *testing.T) {
	task, _ := imageTask(t, 800, 208)
	e := mustEngine(t, Config{Seed: 15, MaxInputs: 100, TraceEvents: true})
	seq, err := e.RunScan(task, false)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential scan must process pool indices in ascending order.
	prev := -1
	for _, ev := range seq.Events.Events {
		if ev.InputIdx <= prev {
			t.Fatalf("sequential scan out of order: %d after %d", ev.InputIdx, prev)
		}
		prev = ev.InputIdx
	}
	rnd, err := e.RunScan(task, true)
	if err != nil {
		t.Fatal(err)
	}
	ordered := true
	prev = -1
	for _, ev := range rnd.Events.Events {
		if ev.InputIdx <= prev {
			ordered = false
			break
		}
		prev = ev.InputIdx
	}
	if ordered {
		t.Fatal("random scan came out sorted; shuffle missing")
	}
	if seq.Arms != nil || rnd.Arms != nil {
		t.Fatal("scan results should have no arm stats")
	}
}

func TestRewardKindsAllRun(t *testing.T) {
	task, groups := imageTask(t, 1200, 209)
	for _, reward := range []RewardKind{RewardUsefulness, RewardQualityDelta, RewardHybrid} {
		e := mustEngine(t, Config{Seed: 17, Reward: reward, MaxInputs: 150, RewardSubsample: 30})
		res, err := e.Run(task, groups)
		if err != nil {
			t.Fatalf("%s: %v", reward, err)
		}
		if res.InputsProcessed != 150 {
			t.Fatalf("%s: processed %d", reward, res.InputsProcessed)
		}
	}
}

func TestRewardKindString(t *testing.T) {
	if RewardUsefulness.String() != "usefulness" ||
		RewardQualityDelta.String() != "quality-delta" ||
		RewardHybrid.String() != "hybrid" {
		t.Fatal("reward labels wrong")
	}
	if RewardKind(9).String() != "RewardKind(9)" {
		t.Fatal("unknown reward label wrong")
	}
}

func TestStopReasonString(t *testing.T) {
	if StopExhausted.String() != "exhausted" || StopBudget.String() != "budget" || StopEarly.String() != "early-stop" {
		t.Fatal("stop labels wrong")
	}
	if StopReason(9).String() != "StopReason(9)" {
		t.Fatal("unknown stop label wrong")
	}
}

func TestFaultyFeatureCodeSurvives(t *testing.T) {
	task, groups := wikiTask(t, 1500, 210)
	exempt := map[string]bool{}
	for _, i := range task.HoldoutIdx {
		exempt[task.Store.Get(i).ID] = true
	}
	task.Feature = &featurepipe.FaultyFeature{Inner: task.Feature, ErrPct: 10, PanicPct: 5, Exempt: exempt}
	e := mustEngine(t, Config{Seed: 19, MaxInputs: 500})
	res, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("no injected failures observed")
	}
	if res.InputsProcessed != 500 {
		t.Fatalf("faults truncated the run: %d", res.InputsProcessed)
	}
	if res.FinalQuality <= 0 {
		t.Fatal("model learned nothing despite survivable faults")
	}
}

func TestRunErrorsOnMismatchedGroups(t *testing.T) {
	task, _ := imageTask(t, 500, 211)
	otherTask, otherGroups := imageTask(t, 700, 212)
	_ = otherTask
	e := mustEngine(t, Config{Seed: 21})
	if _, err := e.Run(task, otherGroups); err == nil {
		t.Fatal("groups over a different corpus size should fail")
	}
	if _, err := e.Run(task, nil); err == nil {
		t.Fatal("nil groups should fail")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &RunResult{
		Task: "t", Strategy: "s",
		Curve: []CurvePoint{
			{Inputs: 0, Quality: 0},
			{Inputs: 25, Quality: 0.5},
			{Inputs: 50, Quality: 0.8},
		},
		InputsProcessed: 50,
		Useful:          10,
	}
	if in, _, ok := r.InputsToQuality(0.5); !ok || in != 25 {
		t.Fatalf("InputsToQuality(0.5) = %d, %v", in, ok)
	}
	if _, _, ok := r.InputsToQuality(0.95); ok {
		t.Fatal("unreachable quality reported reached")
	}
	if q := r.QualityAtInputs(30); q != 0.5 {
		t.Fatalf("QualityAtInputs(30) = %v", q)
	}
	if q := r.QualityAtInputs(50); q != 0.8 {
		t.Fatalf("QualityAtInputs(50) = %v", q)
	}
	if q := r.QualityAtInputs(0); q != 0 {
		t.Fatalf("QualityAtInputs(0) = %v", q)
	}
	if r.UsefulRate() != 0.2 {
		t.Fatalf("UsefulRate = %v", r.UsefulRate())
	}
	if (&RunResult{}).UsefulRate() != 0 {
		t.Fatal("empty UsefulRate should be 0")
	}
	if r.Summary() == "" {
		t.Fatal("Summary empty")
	}
}

func TestBanditSourceExhaustsEveryGroup(t *testing.T) {
	// Force a tiny corpus with more groups than the pool can sustain;
	// every arm must drain without panics.
	task, groups := imageTask(t, 200, 213)
	e := mustEngine(t, Config{Seed: 23, Policy: "round-robin"})
	res, err := e.Run(task, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.InputsProcessed != len(task.PoolIdx) {
		t.Fatalf("drained %d of %d", res.InputsProcessed, len(task.PoolIdx))
	}
}

func TestAllPolicySpecsRunEndToEnd(t *testing.T) {
	task, groups := imageTask(t, 800, 214)
	for _, spec := range bandit.KnownSpecs() {
		e := mustEngine(t, Config{Seed: 25, Policy: bandit.Spec(spec), MaxInputs: 100})
		if _, err := e.Run(task, groups); err != nil {
			t.Fatalf("policy %q: %v", spec, err)
		}
	}
}

func TestWindowedStatsConfigRuns(t *testing.T) {
	task, groups := imageTask(t, 800, 215)
	e := mustEngine(t, Config{
		Seed:        27,
		PolicyStats: bandit.StatsConfig{Kind: bandit.Windowed, Window: 50},
		MaxInputs:   200,
	})
	if _, err := e.Run(task, groups); err != nil {
		t.Fatal(err)
	}
}
