package index

import (
	"hash/fnv"
	"math"
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/rng"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! foo-bar c3po  ")
	want := []string{"hello", "world", "foo", "bar", "c3po"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 {
		t.Fatal("empty text should yield no tokens")
	}
}

func TestHashTokenStableAndInRange(t *testing.T) {
	a := HashToken("hello", 64)
	b := HashToken("hello", 64)
	if a != b {
		t.Fatal("HashToken not stable")
	}
	for _, tok := range []string{"a", "bb", "ccc", "dddd", "many different tokens"} {
		h := HashToken(tok, 7)
		if h < 0 || h >= 7 {
			t.Fatalf("HashToken(%q, 7) = %d out of range", tok, h)
		}
	}
}

// TestHashTokenMatchesStdlibFNV pins the inlined hash to hash/fnv: bucket
// assignment is baked into every committed curve and baseline, so the
// allocation-free rewrite must be bit-equal to the stdlib hasher it
// replaced.
func TestHashTokenMatchesStdlibFNV(t *testing.T) {
	ref := func(s string, dim int) int {
		h := fnv.New32a()
		h.Write([]byte(s))
		return int(h.Sum32() % uint32(dim))
	}
	tokens := []string{"", "a", "the", "zombie", "élan", "a_b", "many different tokens", "0123456789"}
	for _, tok := range tokens {
		for _, dim := range []int{1, 7, 64, 16384} {
			if got, want := HashToken(tok, dim), ref(tok, dim); got != want {
				t.Fatalf("HashToken(%q, %d) = %d, want stdlib %d", tok, dim, got, want)
			}
		}
	}
	for _, a := range tokens {
		for _, b := range tokens {
			for _, dim := range []int{7, 4096} {
				if got, want := HashTokenPair(a, b, dim), ref(a+"_"+b, dim); got != want {
					t.Fatalf("HashTokenPair(%q, %q, %d) = %d, want joined %d", a, b, dim, got, want)
				}
			}
		}
	}
}

func TestHashedTextVectorizer(t *testing.T) {
	v := NewHashedText(32)
	if v.Dim() != 32 || v.Name() != "hashed-text" {
		t.Fatal("metadata wrong")
	}
	in := &corpus.Input{Kind: corpus.TextKind, Text: "apple apple banana"}
	vec := v.Vectorize(in)
	if len(vec) != 32 {
		t.Fatalf("dim = %d", len(vec))
	}
	// L2-normalized.
	norm := 0.0
	for _, x := range vec {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("norm² = %v", norm)
	}
	// apple bucket weight is double banana's (pre-normalization 2 vs 1).
	ai, bi := HashToken("apple", 32), HashToken("banana", 32)
	if ai != bi && vec[ai] <= vec[bi] {
		t.Fatalf("token weighting wrong: apple=%v banana=%v", vec[ai], vec[bi])
	}
	// Non-text inputs vectorize to zeros.
	zero := v.Vectorize(&corpus.Input{Kind: corpus.NumericKind, Values: []float64{1}})
	for _, x := range zero {
		if x != 0 {
			t.Fatal("numeric input should vectorize to zeros")
		}
	}
	mustPanic(t, "dim", func() { NewHashedText(0) })
}

func TestNumericVectorizer(t *testing.T) {
	v := NewNumeric(3)
	in := &corpus.Input{Kind: corpus.NumericKind, Values: []float64{1, 2, 3}}
	vec := v.Vectorize(in)
	if vec[0] != 1 || vec[2] != 3 {
		t.Fatalf("passthrough wrong: %v", vec)
	}
	// Wrong kind or dim yields zeros.
	if v.Vectorize(&corpus.Input{Kind: corpus.TextKind, Text: "x"})[0] != 0 {
		t.Fatal("text input should vectorize to zeros")
	}
	if v.Vectorize(&corpus.Input{Kind: corpus.NumericKind, Values: []float64{1}})[0] != 0 {
		t.Fatal("wrong-dim input should vectorize to zeros")
	}
	mustPanic(t, "dim", func() { NewNumeric(-1) })
}

func TestNumericStandardize(t *testing.T) {
	r := rng.New(50)
	ins := make([]*corpus.Input, 500)
	for i := range ins {
		ins[i] = &corpus.Input{
			Kind:   corpus.NumericKind,
			Values: []float64{r.Gaussian(10, 2), r.Gaussian(-5, 0.5), 7}, // dim 2 constant
		}
	}
	v := NewNumeric(3)
	v.FitStandardize(corpus.NewMemStore(ins))
	// After standardization the sample mean ≈ 0 and std ≈ 1 per dim.
	var sum, sum2 [3]float64
	for _, in := range ins {
		vec := v.Vectorize(in)
		for d := range vec {
			sum[d] += vec[d]
			sum2[d] += vec[d] * vec[d]
		}
	}
	n := float64(len(ins))
	for d := 0; d < 2; d++ {
		mean := sum[d] / n
		std := math.Sqrt(sum2[d]/n - mean*mean)
		if math.Abs(mean) > 0.1 || math.Abs(std-1) > 0.1 {
			t.Fatalf("dim %d not standardized: mean=%v std=%v", d, mean, std)
		}
	}
	// Constant dim: scale fell back to 1, so values become 0.
	if got := v.Vectorize(ins[0])[2]; got != 0 {
		t.Fatalf("constant dim should standardize to 0, got %v", got)
	}
}

func TestTFIDF(t *testing.T) {
	docs := []*corpus.Input{
		{Kind: corpus.TextKind, Text: "the cat sat"},
		{Kind: corpus.TextKind, Text: "the dog ran"},
		{Kind: corpus.TextKind, Text: "the the the"},
	}
	v := NewTFIDF(64)
	if v.Fitted() {
		t.Fatal("unfitted TFIDF claims fitted")
	}
	mustPanic(t, "vectorize before fit", func() {
		v.Vectorize(docs[0])
	})
	v.Fit(corpus.NewMemStore(docs))
	if !v.Fitted() || v.Docs() != 3 {
		t.Fatalf("Fit state wrong: fitted=%v docs=%d", v.Fitted(), v.Docs())
	}
	vec := v.Vectorize(docs[0])
	// "the" appears in every doc: its idf (and weight) must be the lowest
	// among the document's tokens.
	theW := vec[HashToken("the", 64)]
	catW := vec[HashToken("cat", 64)]
	if theW >= catW {
		t.Fatalf("idf weighting wrong: the=%v cat=%v", theW, catW)
	}
	mustPanic(t, "dim", func() { NewTFIDF(0) })
}

func TestTFIDFSparseMatchesDense(t *testing.T) {
	r := rng.New(51)
	cfg := corpus.DefaultWikiConfig()
	cfg.N = 60
	ins, _ := corpus.GenerateWiki(cfg, r)
	v := NewTFIDF(128)
	v.Fit(corpus.NewMemStore(ins))
	for _, in := range ins[:10] {
		dense := v.Vectorize(in)
		sparse := v.SparseVectorize(in).Dense()
		for b := range dense {
			if math.Abs(dense[b]-sparse[b]) > 1e-9 {
				t.Fatalf("sparse and dense tf-idf disagree at bucket %d: %v vs %v", b, dense[b], sparse[b])
			}
		}
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
