package index

import (
	"testing"

	"zombie/internal/linalg"
	"zombie/internal/rng"
)

// blobs generates n points around k well-separated centers.
func blobs(n, k int, r *rng.RNG) (points [][]float64, labels []int) {
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = []float64{float64(c * 10), float64((c % 2) * 10)}
	}
	points = make([][]float64, n)
	labels = make([]int, n)
	for i := range points {
		c := i % k
		labels[i] = c
		points[i] = []float64{
			r.Gaussian(centers[c][0], 0.5),
			r.Gaussian(centers[c][1], 0.5),
		}
	}
	return points, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	r := rng.New(60)
	points, labels := blobs(600, 3, r.Split("data"))
	res, err := KMeans(points, KMeansConfig{K: 3}, r.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	// Every true blob must map to a single dominant cluster and distinct
	// blobs to distinct clusters.
	vote := map[int]map[int]int{}
	for i, a := range res.Assign {
		if vote[labels[i]] == nil {
			vote[labels[i]] = map[int]int{}
		}
		vote[labels[i]][a]++
	}
	used := map[int]bool{}
	for blob, counts := range vote {
		best, bestN, total := -1, 0, 0
		for c, n := range counts {
			total += n
			if n > bestN {
				best, bestN = c, n
			}
		}
		if float64(bestN)/float64(total) < 0.95 {
			t.Fatalf("blob %d split across clusters: %v", blob, counts)
		}
		if used[best] {
			t.Fatalf("two blobs share cluster %d", best)
		}
		used[best] = true
	}
	if res.Iters == 0 {
		t.Fatal("no Lloyd iterations recorded")
	}
}

func TestKMeansAssignmentIsNearestCentroid(t *testing.T) {
	r := rng.New(61)
	points, _ := blobs(300, 4, r.Split("data"))
	res, err := KMeans(points, KMeansConfig{K: 4}, r.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		own := linalg.SqDist(p, res.Centroids[res.Assign[i]])
		for c := range res.Centroids {
			if d := linalg.SqDist(p, res.Centroids[c]); d < own-1e-9 {
				t.Fatalf("point %d assigned to %d but %d is closer (%v < %v)",
					i, res.Assign[i], c, d, own)
			}
		}
	}
}

func TestKMeansInertiaMatchesAssignment(t *testing.T) {
	r := rng.New(62)
	points, _ := blobs(200, 2, r.Split("data"))
	res, _ := KMeans(points, KMeansConfig{K: 2}, r.Split("fit"))
	want := 0.0
	for i, p := range points {
		want += linalg.SqDist(p, res.Centroids[res.Assign[i]])
	}
	if diff := res.Inertia - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Inertia = %v, recomputed %v", res.Inertia, want)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	points, _ := blobs(200, 3, rng.New(63))
	a, _ := KMeans(points, KMeansConfig{K: 3}, rng.New(7))
	b, _ := KMeans(points, KMeansConfig{K: 3}, rng.New(7))
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("k-means not deterministic at point %d", i)
		}
	}
}

func TestKMeansMiniBatch(t *testing.T) {
	r := rng.New(64)
	points, labels := blobs(1000, 3, r.Split("data"))
	res, err := KMeans(points, KMeansConfig{K: 3, MiniBatch: 32, MiniBatchIters: 200}, r.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSteps != 200 {
		t.Fatalf("BatchSteps = %d", res.BatchSteps)
	}
	// Mini-batch should still basically separate well-spread blobs.
	agree := 0
	vote := map[[2]int]int{}
	for i := range points {
		vote[[2]int{labels[i], res.Assign[i]}]++
	}
	for blob := 0; blob < 3; blob++ {
		best := 0
		for c := 0; c < 3; c++ {
			if vote[[2]int{blob, c}] > best {
				best = vote[[2]int{blob, c}]
			}
		}
		agree += best
	}
	if float64(agree)/float64(len(points)) < 0.9 {
		t.Fatalf("mini-batch purity %v too low", float64(agree)/float64(len(points)))
	}
}

func TestKMeansErrors(t *testing.T) {
	points := [][]float64{{1, 2}, {3, 4}}
	if _, err := KMeans(points, KMeansConfig{K: 0}, rng.New(1)); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, err := KMeans(points, KMeansConfig{K: 3}, rng.New(1)); err == nil {
		t.Fatal("K > n should fail")
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := KMeans(ragged, KMeansConfig{K: 1}, rng.New(1)); err == nil {
		t.Fatal("ragged points should fail")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	points := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	res, err := KMeans(points, KMeansConfig{K: 3}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("K=n should give zero inertia, got %v", res.Inertia)
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	points, _ := blobs(50, 2, rng.New(65))
	res, err := KMeans(points, KMeansConfig{K: 1}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("K=1 must assign everything to cluster 0")
		}
	}
}
