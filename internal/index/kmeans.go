package index

import (
	"fmt"
	"math"

	"zombie/internal/linalg"
	"zombie/internal/parallel"
	"zombie/internal/rng"
)

// KMeansConfig controls Lloyd's algorithm. Zero values get sane defaults
// from normalize().
type KMeansConfig struct {
	// K is the number of clusters; required.
	K int
	// MaxIter bounds the number of Lloyd iterations (default 50).
	MaxIter int
	// Tol stops early when the relative inertia improvement falls below
	// it (default 1e-4).
	Tol float64
	// MiniBatch > 0 switches to mini-batch k-means with that batch size,
	// trading exactness for speed on large corpora (the paper's indexer
	// must scale to full crawls).
	MiniBatch int
	// MiniBatchIters is the number of mini-batch steps (default 100·K).
	MiniBatchIters int
	// Workers bounds the goroutines used for the assignment passes (the
	// O(n·K·dim) hot path) and the k-means++ distance updates; <= 1 runs
	// sequentially. Results are bit-identical for any worker count:
	// assignments are pure per-point computations and inertia partials
	// accumulate over fixed-size chunks merged in chunk order (see
	// internal/parallel). Mini-batch updates always run sequentially —
	// they consume a single RNG stream.
	Workers int
}

func (c KMeansConfig) normalize(n int) (KMeansConfig, error) {
	if c.K <= 0 {
		return c, fmt.Errorf("index: KMeans requires K > 0, got %d", c.K)
	}
	if n < c.K {
		return c, fmt.Errorf("index: KMeans with K=%d needs at least K points, got %d", c.K, n)
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 50
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
	if c.MiniBatch > 0 && c.MiniBatchIters <= 0 {
		c.MiniBatchIters = 100 * c.K
	}
	return c, nil
}

// KMeansResult holds a fitted clustering.
type KMeansResult struct {
	// Centroids are the K cluster centers.
	Centroids [][]float64
	// Assign maps each point index to its cluster.
	Assign []int
	// Inertia is the total within-cluster squared distance.
	Inertia float64
	// Iters is the number of Lloyd iterations performed (0 for pure
	// mini-batch runs, which report batch steps in BatchSteps).
	Iters int
	// BatchSteps is the number of mini-batch updates performed.
	BatchSteps int
}

// KMeans clusters points with k-means++ initialization followed by
// Lloyd's algorithm (or mini-batch updates when configured). Points must
// all share one dimensionality. The result is deterministic given r.
func KMeans(points [][]float64, cfg KMeansConfig, r *rng.RNG) (*KMeansResult, error) {
	cfg, err := cfg.normalize(len(points))
	if err != nil {
		return nil, err
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("index: KMeans point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	centroids := kmeansPlusPlus(points, cfg.K, cfg.Workers, r)
	res := &KMeansResult{Centroids: centroids, Assign: make([]int, len(points))}
	if cfg.MiniBatch > 0 {
		miniBatch(points, res, cfg, r)
	} else {
		lloyd(points, res, cfg, r)
	}
	// Final assignment + inertia (mini-batch needs it; Lloyd refreshes it).
	res.Inertia = assignAll(points, res.Centroids, res.Assign, cfg.Workers)
	return res, nil
}

// kmeansPlusPlus seeds centroids with D² weighting. The distance-update
// sweeps fan out over workers goroutines; each point's d2 slot is written
// independently, so the seeding is identical for any worker count (the
// weighted draws consume r sequentially either way).
func kmeansPlusPlus(points [][]float64, k, workers int, r *rng.RNG) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[r.Intn(len(points))]
	centroids = append(centroids, linalg.Clone(first))
	d2 := make([]float64, len(points))
	parallel.ForEach(workers, len(points), func(i int) {
		d2[i] = linalg.SqDist(points[i], centroids[0])
	})
	for len(centroids) < k {
		idx := r.WeightedChoice(d2)
		centroids = append(centroids, linalg.Clone(points[idx]))
		last := centroids[len(centroids)-1]
		parallel.ForEach(workers, len(points), func(i int) {
			if d := linalg.SqDist(points[i], last); d < d2[i] {
				d2[i] = d
			}
		})
	}
	return centroids
}

// assignChunkSize fixes the reduction granularity of the assignment pass.
// Inertia partials always accumulate per chunk and merge in chunk order —
// in the sequential path too — so the reported inertia is bit-identical
// for any worker count.
const assignChunkSize = 512

// assignAll assigns every point to its nearest centroid and returns the
// inertia, fanning the pass out over up to workers goroutines.
func assignAll(points [][]float64, centroids [][]float64, assign []int, workers int) float64 {
	partials := parallel.MapChunks(workers, len(points), assignChunkSize, func(lo, hi int) float64 {
		inertia := 0.0
		for i := lo; i < hi; i++ {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := linalg.SqDist(points[i], cent); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			inertia += bestD
		}
		return inertia
	})
	inertia := 0.0
	for _, p := range partials {
		inertia += p
	}
	return inertia
}

func lloyd(points [][]float64, res *KMeansResult, cfg KMeansConfig, r *rng.RNG) {
	prev := math.Inf(1)
	counts := make([]int, cfg.K)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		inertia := assignAll(points, res.Centroids, res.Assign, cfg.Workers)
		res.Iters = iter + 1
		// Recompute centroids.
		for c := range res.Centroids {
			linalg.Zero(res.Centroids[c])
			counts[c] = 0
		}
		for i, p := range points {
			c := res.Assign[i]
			linalg.Add(p, res.Centroids[c])
			counts[c]++
		}
		for c := range res.Centroids {
			if counts[c] == 0 {
				// Empty cluster: reseed at a random point so K is
				// preserved (matters because K is the bandit arm count).
				copy(res.Centroids[c], points[r.Intn(len(points))])
				continue
			}
			linalg.Scale(1/float64(counts[c]), res.Centroids[c])
		}
		if prev-inertia < cfg.Tol*prev {
			break
		}
		prev = inertia
	}
}

func miniBatch(points [][]float64, res *KMeansResult, cfg KMeansConfig, r *rng.RNG) {
	counts := make([]float64, cfg.K)
	for step := 0; step < cfg.MiniBatchIters; step++ {
		for b := 0; b < cfg.MiniBatch; b++ {
			p := points[r.Intn(len(points))]
			best, bestD := 0, math.Inf(1)
			for c, cent := range res.Centroids {
				if d := linalg.SqDist(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			counts[best]++
			eta := 1 / counts[best]
			cent := res.Centroids[best]
			for d := range cent {
				cent[d] += eta * (p[d] - cent[d])
			}
		}
		res.BatchSteps++
	}
}
