package index

import (
	"testing"

	"zombie/internal/rng"
)

// TestKMeansParallelBitIdentical: worker count is a latency knob only —
// centroids, assignments, inertia, and iteration counts must be
// bit-identical to the sequential run for any worker count.
func TestKMeansParallelBitIdentical(t *testing.T) {
	points, _ := blobs(3000, 5, rng.New(80).Split("data"))
	base, err := KMeans(points, KMeansConfig{K: 5}, rng.New(81))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		res, err := KMeans(points, KMeansConfig{K: 5, Workers: workers}, rng.New(81))
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia != base.Inertia {
			t.Fatalf("workers=%d: inertia %v != sequential %v", workers, res.Inertia, base.Inertia)
		}
		if res.Iters != base.Iters {
			t.Fatalf("workers=%d: iters %d != sequential %d", workers, res.Iters, base.Iters)
		}
		for i := range res.Assign {
			if res.Assign[i] != base.Assign[i] {
				t.Fatalf("workers=%d: point %d assigned %d vs sequential %d",
					workers, i, res.Assign[i], base.Assign[i])
			}
		}
		for c := range res.Centroids {
			for d := range res.Centroids[c] {
				if res.Centroids[c][d] != base.Centroids[c][d] {
					t.Fatalf("workers=%d: centroid %d dim %d differs", workers, c, d)
				}
			}
		}
	}
}

// TestTFIDFFitParallelBitIdentical: document frequencies are integers, so
// the parallel fit must reproduce the sequential idf weights exactly.
func TestTFIDFFitParallelBitIdentical(t *testing.T) {
	store := wikiStore(t, 1500, 82)
	seq := NewTFIDF(256)
	seq.Fit(store)
	for _, workers := range []int{2, 4, 16} {
		par := NewTFIDF(256)
		par.FitParallel(store, workers)
		if par.Docs() != seq.Docs() {
			t.Fatalf("workers=%d: docs %d != sequential %d", workers, par.Docs(), seq.Docs())
		}
		for b := range par.idf {
			if par.idf[b] != seq.idf[b] {
				t.Fatalf("workers=%d: idf bucket %d: %v != %v", workers, b, par.idf[b], seq.idf[b])
			}
		}
	}
}

// TestKMeansGrouperParallelBitIdentical exercises the full grouper path —
// parallel vectorization plus parallel clustering — against the
// sequential build.
func TestKMeansGrouperParallelBitIdentical(t *testing.T) {
	store := wikiStore(t, 1200, 83)
	seqG := &KMeansGrouper{Vectorizer: NewHashedText(64), Config: KMeansConfig{MaxIter: 10}}
	base, err := seqG.Group(store, 8, rng.New(84))
	if err != nil {
		t.Fatal(err)
	}
	parG := &KMeansGrouper{Vectorizer: NewHashedText(64), Config: KMeansConfig{MaxIter: 10, Workers: 8}}
	par, err := parG.Group(store, 8, rng.New(84))
	if err != nil {
		t.Fatal(err)
	}
	if par.K() != base.K() || par.Len() != base.Len() {
		t.Fatalf("shape differs: %d/%d vs %d/%d", par.K(), par.Len(), base.K(), base.Len())
	}
	for i := range par.Assign {
		if par.Assign[i] != base.Assign[i] {
			t.Fatalf("input %d grouped %d vs sequential %d", i, par.Assign[i], base.Assign[i])
		}
	}
}
