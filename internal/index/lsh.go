package index

import (
	"fmt"
	"math"
	"sort"
	"time"

	"zombie/internal/corpus"
	"zombie/internal/rng"
)

// LSHGrouper partitions a corpus by random-hyperplane locality-sensitive
// hashing: each input's index-feature vector is reduced to a sign
// signature over ⌈log2 k⌉ random hyperplanes, and equal signatures share a
// group. Compared to k-means it needs one pass, no iteration and no
// centroid storage — the cheap-at-crawl-scale indexing option — at the
// cost of noisier groups, which the bandit layer is designed to tolerate.
type LSHGrouper struct {
	// Vectorizer produces the vectors the hyperplanes cut.
	Vectorizer Vectorizer
}

// Name implements Grouper.
func (g *LSHGrouper) Name() string {
	return fmt.Sprintf("lsh(%s)", g.Vectorizer.Name())
}

// Group implements Grouper. The number of hyperplanes is ⌈log2 k⌉, giving
// up to 2^h signatures; signatures are then mapped onto exactly k groups
// (merging the rarest signatures into the last group when 2^h > k).
func (g *LSHGrouper) Group(store corpus.Store, k int, r *rng.RNG) (*Groups, error) {
	if k <= 0 {
		return nil, fmt.Errorf("index: k must be > 0, got %d", k)
	}
	start := time.Now()
	dim := g.Vectorizer.Dim()
	h := bitsFor(k)
	planes := make([][]float64, h)
	for i := range planes {
		planes[i] = make([]float64, dim)
		for d := range planes[i] {
			planes[i][d] = r.NormFloat64()
		}
	}
	// First pass: signatures.
	sig := make([]int, store.Len())
	sigCount := map[int]int{}
	for i := 0; i < store.Len(); i++ {
		v := g.Vectorizer.Vectorize(store.Get(i))
		s := 0
		for b, plane := range planes {
			dot := 0.0
			for d, x := range v {
				dot += x * plane[d]
			}
			if dot >= 0 {
				s |= 1 << b
			}
		}
		sig[i] = s
		sigCount[s]++
	}
	// Map signatures to group ids: most frequent signatures get dedicated
	// groups; overflow signatures merge into the final group.
	sigs := make([]int, 0, len(sigCount))
	for s := range sigCount {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(a, b int) bool {
		if sigCount[sigs[a]] != sigCount[sigs[b]] {
			return sigCount[sigs[a]] > sigCount[sigs[b]]
		}
		return sigs[a] < sigs[b]
	})
	sigGroup := map[int]int{}
	for rank, s := range sigs {
		if rank < k {
			sigGroup[s] = rank
		} else {
			sigGroup[s] = k - 1
		}
	}
	assign := make([]int, store.Len())
	for i := range assign {
		assign[i] = sigGroup[sig[i]]
	}
	out := fromAssign(g.Name(), assign, k)
	out.BuildTime = time.Since(start)
	return out, nil
}

// bitsFor returns the number of hyperplanes needed to address at least k
// signatures, with a floor of 1 and two extra bits of slack so popular
// regions can split across groups.
func bitsFor(k int) int {
	h := int(math.Ceil(math.Log2(float64(k)))) + 2
	if h < 1 {
		h = 1
	}
	if h > 20 {
		h = 20
	}
	return h
}
