package index

import (
	"encoding/gob"
	"fmt"
	"os"
	"sort"
	"time"

	"zombie/internal/corpus"
	"zombie/internal/parallel"
	"zombie/internal/rng"
)

// Groups is a partition of a corpus into index groups — the arms of
// Zombie's bandit. Members lists each group's input indices in a fixed
// order; online runs keep a private cursor per group, so one Groups value
// is safely shared across runs and sessions.
type Groups struct {
	// Strategy names the grouper that built the partition.
	Strategy string
	// Members maps group -> ordered input indices into the source store.
	Members [][]int
	// Assign maps input index -> group.
	Assign []int
	// BuildTime is how long construction took (experiment T4 amortizes
	// it against per-run savings).
	BuildTime time.Duration
}

// K returns the number of groups.
func (g *Groups) K() int { return len(g.Members) }

// Len returns the number of grouped inputs.
func (g *Groups) Len() int { return len(g.Assign) }

// Sizes returns the group sizes.
func (g *Groups) Sizes() []int {
	out := make([]int, len(g.Members))
	for i, m := range g.Members {
		out[i] = len(m)
	}
	return out
}

// Validate checks structural invariants: every input appears in exactly
// one group and Assign agrees with Members.
func (g *Groups) Validate() error {
	seen := make([]int, len(g.Assign))
	for grp, members := range g.Members {
		for _, idx := range members {
			if idx < 0 || idx >= len(g.Assign) {
				return fmt.Errorf("index: group %d contains out-of-range input %d", grp, idx)
			}
			seen[idx]++
			if g.Assign[idx] != grp {
				return fmt.Errorf("index: input %d assigned to %d but member of %d", idx, g.Assign[idx], grp)
			}
		}
	}
	for idx, n := range seen {
		if n != 1 {
			return fmt.Errorf("index: input %d appears in %d groups", idx, n)
		}
	}
	return nil
}

// Grouper builds index groups over a store.
type Grouper interface {
	// Name identifies the strategy in traces and experiment tables.
	Name() string
	// Group partitions the store into k groups.
	Group(store corpus.Store, k int, r *rng.RNG) (*Groups, error)
}

// fromAssign builds a Groups from an assignment vector, preserving input
// order within each group.
func fromAssign(strategy string, assign []int, k int) *Groups {
	g := &Groups{
		Strategy: strategy,
		Assign:   assign,
		Members:  make([][]int, k),
	}
	for idx, grp := range assign {
		g.Members[grp] = append(g.Members[grp], idx)
	}
	for grp := range g.Members {
		if g.Members[grp] == nil {
			g.Members[grp] = []int{}
		}
	}
	return g
}

// KMeansGrouper clusters index-feature vectors with k-means — the paper's
// primary indexing strategy.
type KMeansGrouper struct {
	// Vectorizer produces the cheap index features to cluster on.
	Vectorizer Vectorizer
	// Config tunes the clustering; Config.K is overridden by the k passed
	// to Group.
	Config KMeansConfig
}

// Name implements Grouper.
func (g *KMeansGrouper) Name() string {
	return fmt.Sprintf("kmeans(%s)", g.Vectorizer.Name())
}

// Group implements Grouper.
func (g *KMeansGrouper) Group(store corpus.Store, k int, r *rng.RNG) (*Groups, error) {
	if k <= 0 {
		return nil, fmt.Errorf("index: k must be > 0, got %d", k)
	}
	start := time.Now()
	// Vectorization is a pure per-input computation; fan it out with the
	// same worker bound the clustering uses (every built-in Vectorizer is
	// read-only once fitted).
	points := make([][]float64, store.Len())
	parallel.ForEach(g.Config.Workers, store.Len(), func(i int) {
		points[i] = g.Vectorizer.Vectorize(store.Get(i))
	})
	cfg := g.Config
	cfg.K = k
	res, err := KMeans(points, cfg, r)
	if err != nil {
		return nil, err
	}
	out := fromAssign(g.Name(), res.Assign, k)
	out.BuildTime = time.Since(start)
	return out, nil
}

// AttributeGrouper buckets inputs by a cheap surface attribute
// (Meta[Attr]); distinct values are hashed down to k groups when there are
// more values than groups. It models indexing on metadata that arrives
// free with the input (URL domain, camera ID, decade).
type AttributeGrouper struct {
	// Attr is the Meta key to bucket on.
	Attr string
}

// Name implements Grouper.
func (g *AttributeGrouper) Name() string { return fmt.Sprintf("attribute(%s)", g.Attr) }

// Group implements Grouper.
func (g *AttributeGrouper) Group(store corpus.Store, k int, r *rng.RNG) (*Groups, error) {
	if k <= 0 {
		return nil, fmt.Errorf("index: k must be > 0, got %d", k)
	}
	start := time.Now()
	// Map attribute values to group ids: the most frequent values get
	// dedicated groups; the tail shares hashed groups.
	counts := map[string]int{}
	for i := 0; i < store.Len(); i++ {
		counts[store.Get(i).Meta[g.Attr]]++
	}
	values := make([]string, 0, len(counts))
	for v := range counts {
		values = append(values, v)
	}
	sort.Slice(values, func(a, b int) bool {
		if counts[values[a]] != counts[values[b]] {
			return counts[values[a]] > counts[values[b]]
		}
		return values[a] < values[b]
	})
	valueGroup := map[string]int{}
	if len(values) <= k {
		// Few enough values: hash the whole set so all k groups are used
		// and each group holds whole values.
		for rank, v := range values {
			valueGroup[v] = rank % k
		}
	} else {
		// Dedicate k-1 groups to the most frequent values and send the
		// long tail to the final "other" group, keeping dedicated groups
		// pure.
		for rank, v := range values {
			if rank < k-1 {
				valueGroup[v] = rank
			} else {
				valueGroup[v] = k - 1
			}
		}
	}
	assign := make([]int, store.Len())
	for i := range assign {
		assign[i] = valueGroup[store.Get(i).Meta[g.Attr]]
	}
	out := fromAssign(g.Name(), assign, k)
	out.BuildTime = time.Since(start)
	return out, nil
}

// HashGrouper partitions by a hash of the input ID. The resulting groups
// are statistically identical, so the bandit has nothing to learn: this is
// the "uninformative index" ablation that bounds Zombie from below at the
// random-scan baseline.
type HashGrouper struct{}

// Name implements Grouper.
func (HashGrouper) Name() string { return "hash" }

// Group implements Grouper.
func (HashGrouper) Group(store corpus.Store, k int, r *rng.RNG) (*Groups, error) {
	if k <= 0 {
		return nil, fmt.Errorf("index: k must be > 0, got %d", k)
	}
	start := time.Now()
	assign := make([]int, store.Len())
	for i := range assign {
		assign[i] = HashToken(store.Get(i).ID, k)
	}
	out := fromAssign("hash", assign, k)
	out.BuildTime = time.Since(start)
	return out, nil
}

// RandomGrouper deals inputs into k equal-size groups in shuffled order —
// like HashGrouper an uninformative baseline, but with exactly balanced
// group sizes.
type RandomGrouper struct{}

// Name implements Grouper.
func (RandomGrouper) Name() string { return "random" }

// Group implements Grouper.
func (RandomGrouper) Group(store corpus.Store, k int, r *rng.RNG) (*Groups, error) {
	if k <= 0 {
		return nil, fmt.Errorf("index: k must be > 0, got %d", k)
	}
	start := time.Now()
	perm := r.Perm(store.Len())
	assign := make([]int, store.Len())
	for pos, idx := range perm {
		assign[idx] = pos % k
	}
	out := fromAssign("random", assign, k)
	out.BuildTime = time.Since(start)
	return out, nil
}

// OracleGrouper groups by ground-truth usefulness (relevant vs not),
// splitting each side round-robin across the k groups' halves. It is the
// skyline no real index can beat and appears only in ablation experiments;
// it reads Truth, which real groupers must never do.
type OracleGrouper struct{}

// Name implements Grouper.
func (OracleGrouper) Name() string { return "oracle" }

// Group implements Grouper.
func (OracleGrouper) Group(store corpus.Store, k int, r *rng.RNG) (*Groups, error) {
	if k < 2 {
		return nil, fmt.Errorf("index: oracle grouper needs k >= 2, got %d", k)
	}
	start := time.Now()
	relGroups := k / 2
	assign := make([]int, store.Len())
	relSeen, irrSeen := 0, 0
	for i := 0; i < store.Len(); i++ {
		if store.Get(i).Truth.Relevant {
			assign[i] = relSeen % relGroups
			relSeen++
		} else {
			assign[i] = relGroups + irrSeen%(k-relGroups)
			irrSeen++
		}
	}
	out := fromAssign("oracle", assign, k)
	out.BuildTime = time.Since(start)
	return out, nil
}

// Save persists the groups to path with encoding/gob.
func (g *Groups) Save(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("index: close %s: %w", path, cerr)
		}
	}()
	if err := gob.NewEncoder(f).Encode(g); err != nil {
		return fmt.Errorf("index: encode groups: %w", err)
	}
	return nil
}

// LoadGroups reads groups persisted by Save and validates them.
func LoadGroups(path string) (*Groups, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: %w", path, err)
	}
	defer f.Close()
	g := new(Groups)
	if err := gob.NewDecoder(f).Decode(g); err != nil {
		return nil, fmt.Errorf("index: decode groups: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("index: loaded groups invalid: %w", err)
	}
	return g, nil
}
