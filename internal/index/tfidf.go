package index

import (
	"math"

	"zombie/internal/corpus"
	"zombie/internal/linalg"
	"zombie/internal/parallel"
)

// TFIDF is a hashed tf-idf vectorizer: tokens hash into dim buckets, and
// each bucket's term frequency is reweighted by the inverse document
// frequency fitted over a corpus. Compared to plain HashedText it
// suppresses background vocabulary (the Zipf head every page shares) so
// the k-means index groups align with topical — and therefore relevance —
// structure rather than with page length or stopword mix.
type TFIDF struct {
	dim  int
	idf  []float64
	docs int
}

// NewTFIDF returns an unfitted hashed tf-idf vectorizer with the given
// bucket count. It panics if dim <= 0.
func NewTFIDF(dim int) *TFIDF {
	if dim <= 0 {
		panic("index: TFIDF dim must be > 0")
	}
	return &TFIDF{dim: dim}
}

// Fit computes smoothed inverse document frequencies over the store:
// idf(b) = ln((1+N)/(1+df(b))) + 1. Non-text inputs are skipped.
func (v *TFIDF) Fit(store corpus.Store) {
	v.FitParallel(store, 1)
}

// fitChunkSize fixes the granularity of parallel document-frequency
// accumulation. Chunk boundaries depend only on the store size, and the
// per-chunk counts are integers, so the merged frequencies — and the
// fitted idf weights — are bit-identical for any worker count.
const fitChunkSize = 256

// dfPartial is one chunk's document-frequency contribution.
type dfPartial struct {
	df   []int
	docs int
}

// FitParallel is Fit with the document pass fanned out over up to workers
// goroutines; Fit delegates here with workers = 1. The store must be safe
// for concurrent Get when workers > 1 (corpus.MemStore is read-only).
func (v *TFIDF) FitParallel(store corpus.Store, workers int) {
	partials := parallel.MapChunks(workers, store.Len(), fitChunkSize, func(lo, hi int) dfPartial {
		p := dfPartial{df: make([]int, v.dim)}
		seen := make([]bool, v.dim)
		for i := lo; i < hi; i++ {
			in := store.Get(i)
			if in.Kind != corpus.TextKind {
				continue
			}
			p.docs++
			for b := range seen {
				seen[b] = false
			}
			for _, tok := range Tokenize(in.Text) {
				seen[HashToken(tok, v.dim)] = true
			}
			for b, s := range seen {
				if s {
					p.df[b]++
				}
			}
		}
		return p
	})
	df := make([]int, v.dim)
	docs := 0
	for _, p := range partials {
		docs += p.docs
		for b, n := range p.df {
			df[b] += n
		}
	}
	v.docs = docs
	v.idf = make([]float64, v.dim)
	for b := range v.idf {
		v.idf[b] = math.Log((1+float64(docs))/(1+float64(df[b]))) + 1
	}
}

// Fitted reports whether Fit has been called.
func (v *TFIDF) Fitted() bool { return v.idf != nil }

// Docs returns the number of documents seen during Fit.
func (v *TFIDF) Docs() int { return v.docs }

// Vectorize implements Vectorizer. It panics if called before Fit, since
// silently returning raw term frequencies would defeat the vectorizer's
// purpose. Non-text inputs vectorize to zeros.
func (v *TFIDF) Vectorize(in *corpus.Input) []float64 {
	if v.idf == nil {
		panic("index: TFIDF.Vectorize before Fit")
	}
	out := make([]float64, v.dim)
	if in.Kind != corpus.TextKind {
		return out
	}
	for _, tok := range Tokenize(in.Text) {
		out[HashToken(tok, v.dim)]++
	}
	for b := range out {
		if out[b] > 0 {
			out[b] = (1 + math.Log(out[b])) * v.idf[b] // sublinear tf
		}
	}
	linalg.Normalize(out)
	return out
}

// Dim implements Vectorizer.
func (v *TFIDF) Dim() int { return v.dim }

// Name implements Vectorizer.
func (v *TFIDF) Name() string { return "tfidf" }

// SparseVectorize returns the tf-idf vector in sparse form for callers
// (like the wiki feature code) that feed linear learners directly.
func (v *TFIDF) SparseVectorize(in *corpus.Input) *linalg.Sparse {
	if v.idf == nil {
		panic("index: TFIDF.SparseVectorize before Fit")
	}
	counts := map[int]float64{}
	if in.Kind == corpus.TextKind {
		for _, tok := range Tokenize(in.Text) {
			counts[HashToken(tok, v.dim)]++
		}
	}
	norm := 0.0
	for b, c := range counts {
		w := (1 + math.Log(c)) * v.idf[b]
		counts[b] = w
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for b := range counts {
			counts[b] /= norm
		}
	}
	return linalg.SparseFromMap(v.dim, counts)
}
