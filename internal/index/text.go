// Package index implements Zombie's offline indexing phase: it converts
// raw inputs into cheap index-feature vectors, clusters the corpus into
// *index groups*, and persists the grouping for reuse across the many
// evaluation runs of a feature-engineering session.
//
// The central premise (paper §3): index features only need to be cheap and
// generic — a hashed bag of words, raw numeric descriptors, a surface
// attribute — because the bandit layer tolerates noisy groups. The index
// is built once per corpus and amortized over every subsequent run, which
// experiment T4 quantifies.
package index

import (
	"math"
	"strings"
	"unicode"

	"zombie/internal/corpus"
	"zombie/internal/linalg"
)

// Tokenize splits text into lowercase alphanumeric tokens. It is the
// shared tokenizer for index features and for the task feature functions,
// mirroring how the paper's generic index features reuse the same parsing
// machinery as user code.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// FNV-1a 32-bit parameters (the same constants hash/fnv uses); hashing is
// inlined here because the stdlib hasher costs two heap allocations per
// call and HashToken sits on the per-token hot path of every extraction.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// HashToken maps a token to a bucket in [0, dim) with FNV-1a. All hashing
// in the system goes through this single function so vectorizers and
// feature code agree on bucket assignment.
func HashToken(token string, dim int) int {
	h := uint32(fnvOffset32)
	for i := 0; i < len(token); i++ {
		h ^= uint32(token[i])
		h *= fnvPrime32
	}
	return int(h % uint32(dim))
}

// HashTokenPair hashes the bigram "a_b" without building the joined
// string: it streams a, '_', b through the same FNV-1a state, so
// HashTokenPair(a, b, dim) == HashToken(a+"_"+b, dim) exactly — bucket
// assignments (and therefore every committed curve) are unchanged; only
// the per-bigram concatenation allocation is gone.
func HashTokenPair(a, b string, dim int) int {
	h := uint32(fnvOffset32)
	for i := 0; i < len(a); i++ {
		h ^= uint32(a[i])
		h *= fnvPrime32
	}
	h ^= uint32('_')
	h *= fnvPrime32
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= fnvPrime32
	}
	return int(h % uint32(dim))
}

// Vectorizer converts a raw input into a dense index-feature vector for
// clustering. Implementations must be cheap relative to the task feature
// code — the whole point of the index is to avoid the expensive path.
type Vectorizer interface {
	// Vectorize returns the input's index-feature vector of length Dim.
	Vectorize(in *corpus.Input) []float64
	// Dim returns the vector length.
	Dim() int
	// Name identifies the vectorizer in traces.
	Name() string
}

// HashedText is a hashing bag-of-words vectorizer: each token increments
// the bucket HashToken(token, dim); the result is L2-normalized so page
// length does not dominate the clustering distance.
type HashedText struct {
	dim int
}

// NewHashedText returns a hashing vectorizer with the given number of
// buckets. It panics if dim <= 0.
func NewHashedText(dim int) *HashedText {
	if dim <= 0 {
		panic("index: HashedText dim must be > 0")
	}
	return &HashedText{dim: dim}
}

// Vectorize implements Vectorizer. Non-text inputs vectorize to zeros.
func (v *HashedText) Vectorize(in *corpus.Input) []float64 {
	out := make([]float64, v.dim)
	if in.Kind != corpus.TextKind {
		return out
	}
	for _, tok := range Tokenize(in.Text) {
		out[HashToken(tok, v.dim)]++
	}
	linalg.Normalize(out)
	return out
}

// Dim implements Vectorizer.
func (v *HashedText) Dim() int { return v.dim }

// Name implements Vectorizer.
func (v *HashedText) Name() string { return "hashed-text" }

// Numeric passes an input's raw numeric payload through, optionally
// standardizing each dimension with precomputed means and scales.
type Numeric struct {
	dim   int
	mean  []float64
	scale []float64
}

// NewNumeric returns a pass-through vectorizer for dim-dimensional
// numeric inputs. It panics if dim <= 0.
func NewNumeric(dim int) *Numeric {
	if dim <= 0 {
		panic("index: Numeric dim must be > 0")
	}
	return &Numeric{dim: dim}
}

// FitStandardize computes per-dimension means and standard deviations
// over the store so Vectorize can z-score inputs. Dimensions with zero
// variance keep scale 1.
func (v *Numeric) FitStandardize(store corpus.Store) {
	n := 0
	mean := make([]float64, v.dim)
	m2 := make([]float64, v.dim)
	for i := 0; i < store.Len(); i++ {
		in := store.Get(i)
		if in.Kind != corpus.NumericKind || len(in.Values) != v.dim {
			continue
		}
		n++
		for d, x := range in.Values {
			delta := x - mean[d]
			mean[d] += delta / float64(n)
			m2[d] += delta * (x - mean[d])
		}
	}
	if n < 2 {
		return
	}
	scale := make([]float64, v.dim)
	for d := range scale {
		variance := m2[d] / float64(n-1)
		if variance > 0 {
			scale[d] = 1 / math.Sqrt(variance)
		} else {
			scale[d] = 1
		}
	}
	v.mean, v.scale = mean, scale
}

// Vectorize implements Vectorizer. Inputs of the wrong kind or length
// vectorize to zeros.
func (v *Numeric) Vectorize(in *corpus.Input) []float64 {
	out := make([]float64, v.dim)
	if in.Kind != corpus.NumericKind || len(in.Values) != v.dim {
		return out
	}
	copy(out, in.Values)
	if v.mean != nil {
		for d := range out {
			out[d] = (out[d] - v.mean[d]) * v.scale[d]
		}
	}
	return out
}

// Dim implements Vectorizer.
func (v *Numeric) Dim() int { return v.dim }

// Name implements Vectorizer.
func (v *Numeric) Name() string { return "numeric" }
