package index

import (
	"math"
	"strings"
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/rng"
)

func usefulTruth(in *corpus.Input) bool { return in.Truth.Class == 1 }

func TestDensityOracleGroupingIsMaximal(t *testing.T) {
	store := wikiStore(t, 1000, 500)
	oracle, err := OracleGrouper{}.Group(store, 8, rng.New(501))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Density(oracle, store, usefulTruth)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups[0].Density != 1 {
		t.Fatalf("oracle densest group density = %v, want 1", rep.Groups[0].Density)
	}
	if rep.Lift < 2 {
		t.Fatalf("oracle lift = %v, want >= 2", rep.Lift)
	}
	if rep.Gini < 0.4 {
		t.Fatalf("oracle gini = %v, expected strong concentration", rep.Gini)
	}
}

func TestDensityRandomGroupingIsFlat(t *testing.T) {
	store := wikiStore(t, 2000, 502)
	random, err := RandomGrouper{}.Group(store, 8, rng.New(503))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Density(random, store, usefulTruth)
	if err != nil {
		t.Fatal(err)
	}
	// Uninformative grouping: lift close to 1, low concentration.
	if rep.Lift > 2.5 {
		t.Fatalf("random grouping lift = %v, should be near 1", rep.Lift)
	}
	if rep.Gini > 0.5 {
		t.Fatalf("random grouping gini = %v, should be low", rep.Gini)
	}
}

func TestDensityKMeansBeatsRandom(t *testing.T) {
	store := wikiStore(t, 2000, 504)
	km := &KMeansGrouper{Vectorizer: NewHashedText(128), Config: KMeansConfig{MaxIter: 20}}
	informative, err := km.Group(store, 16, rng.New(505))
	if err != nil {
		t.Fatal(err)
	}
	random, err := RandomGrouper{}.Group(store, 16, rng.New(505))
	if err != nil {
		t.Fatal(err)
	}
	ri, err := Density(informative, store, usefulTruth)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Density(random, store, usefulTruth)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Lift <= rr.Lift {
		t.Fatalf("k-means lift %v should exceed random %v", ri.Lift, rr.Lift)
	}
}

func TestDensityAccounting(t *testing.T) {
	store := wikiStore(t, 300, 506)
	groups, _ := RandomGrouper{}.Group(store, 5, rng.New(507))
	rep, err := Density(groups, store, usefulTruth)
	if err != nil {
		t.Fatal(err)
	}
	totalUseful := 0
	totalSize := 0
	for _, g := range rep.Groups {
		if g.Useful > g.Size {
			t.Fatalf("group %d: useful %d > size %d", g.Group, g.Useful, g.Size)
		}
		totalUseful += g.Useful
		totalSize += g.Size
	}
	if totalSize != 300 {
		t.Fatalf("sizes sum to %d", totalSize)
	}
	wantBase := float64(totalUseful) / 300
	if math.Abs(rep.BaseRate-wantBase) > 1e-12 {
		t.Fatalf("base rate %v, want %v", rep.BaseRate, wantBase)
	}
	// Sorted densest-first.
	for i := 1; i < len(rep.Groups); i++ {
		if rep.Groups[i].Density > rep.Groups[i-1].Density {
			t.Fatal("groups not sorted by density")
		}
	}
	if k := rep.TopK(3); len(k) != 3 {
		t.Fatalf("TopK = %d", len(k))
	}
	if k := rep.TopK(99); len(k) != 5 {
		t.Fatalf("oversized TopK = %d", len(k))
	}
	if !strings.Contains(rep.String(), "lift=") {
		t.Fatalf("String = %q", rep.String())
	}
}

func TestDensityMismatchError(t *testing.T) {
	store := wikiStore(t, 100, 508)
	other := wikiStore(t, 200, 509)
	groups, _ := RandomGrouper{}.Group(store, 4, rng.New(510))
	if _, err := Density(groups, other, usefulTruth); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestDensityNoUsefulInputs(t *testing.T) {
	store := wikiStore(t, 200, 511)
	groups, _ := RandomGrouper{}.Group(store, 4, rng.New(512))
	rep, err := Density(groups, store, func(*corpus.Input) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseRate != 0 || rep.Lift != 0 || rep.Gini != 0 {
		t.Fatalf("empty usefulness should zero the report: %+v", rep)
	}
}
