package index

import (
	"path/filepath"
	"testing"
	"testing/quick"

	"zombie/internal/corpus"
	"zombie/internal/rng"
)

func wikiStore(t *testing.T, n int, seed int64) *corpus.MemStore {
	t.Helper()
	cfg := corpus.DefaultWikiConfig()
	cfg.N = n
	ins, err := corpus.GenerateWiki(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return corpus.NewMemStore(ins)
}

func imageStore(t *testing.T, n int, seed int64) *corpus.MemStore {
	t.Helper()
	cfg := corpus.DefaultImageConfig()
	cfg.N = n
	ins, err := corpus.GenerateImages(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return corpus.NewMemStore(ins)
}

func allGroupers() []Grouper {
	return []Grouper{
		&KMeansGrouper{Vectorizer: NewHashedText(64), Config: KMeansConfig{MaxIter: 10}},
		&LSHGrouper{Vectorizer: NewHashedText(64)},
		&AttributeGrouper{Attr: "category"},
		HashGrouper{},
		RandomGrouper{},
		OracleGrouper{},
	}
}

func TestAllGroupersProduceValidPartitions(t *testing.T) {
	store := wikiStore(t, 500, 70)
	r := rng.New(71)
	for _, g := range allGroupers() {
		groups, err := g.Group(store, 8, r.Split(g.Name()))
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if groups.K() != 8 {
			t.Fatalf("%s: K = %d", g.Name(), groups.K())
		}
		if groups.Len() != 500 {
			t.Fatalf("%s: Len = %d", g.Name(), groups.Len())
		}
		if err := groups.Validate(); err != nil {
			t.Fatalf("%s: invalid partition: %v", g.Name(), err)
		}
		total := 0
		for _, s := range groups.Sizes() {
			total += s
		}
		if total != 500 {
			t.Fatalf("%s: sizes sum to %d", g.Name(), total)
		}
	}
}

func TestGroupersRejectBadK(t *testing.T) {
	store := wikiStore(t, 50, 72)
	r := rng.New(73)
	for _, g := range allGroupers() {
		if _, err := g.Group(store, 0, r); err == nil {
			t.Fatalf("%s: k=0 should fail", g.Name())
		}
	}
}

func TestKMeansGrouperConcentratesRelevance(t *testing.T) {
	// The core index property: with an informative vectorizer, some group
	// must end up with a relevance density far above the corpus average.
	store := wikiStore(t, 2000, 74)
	g := &KMeansGrouper{Vectorizer: NewHashedText(128), Config: KMeansConfig{MaxIter: 20}}
	groups, err := g.Group(store, 16, rng.New(75))
	if err != nil {
		t.Fatal(err)
	}
	baseRate := corpus.ComputeStats(store).RelevantFrac
	bestDensity := 0.0
	for _, members := range groups.Members {
		if len(members) < 10 {
			continue
		}
		rel := 0
		for _, idx := range members {
			if store.Get(idx).Truth.Relevant {
				rel++
			}
		}
		if d := float64(rel) / float64(len(members)); d > bestDensity {
			bestDensity = d
		}
	}
	if bestDensity < 2*baseRate {
		t.Fatalf("k-means index failed to concentrate relevance: best %.3f vs base %.3f", bestDensity, baseRate)
	}
}

func TestHashGrouperUniformDensity(t *testing.T) {
	// The uninformative baseline: group densities should all be near the
	// corpus average.
	store := imageStore(t, 4000, 76)
	groups, err := HashGrouper{}.Group(store, 8, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	base := corpus.ComputeStats(store).RelevantFrac
	_ = base
	basePos := 0
	for i := 0; i < store.Len(); i++ {
		if store.Get(i).Truth.Class == 1 {
			basePos++
		}
	}
	baseRate := float64(basePos) / float64(store.Len())
	for grp, members := range groups.Members {
		pos := 0
		for _, idx := range members {
			if store.Get(idx).Truth.Class == 1 {
				pos++
			}
		}
		rate := float64(pos) / float64(len(members))
		if rate > 4*baseRate+0.02 {
			t.Fatalf("hash group %d suspiciously dense: %.3f vs %.3f", grp, rate, baseRate)
		}
	}
}

func TestRandomGrouperBalanced(t *testing.T) {
	store := wikiStore(t, 1000, 78)
	groups, err := RandomGrouper{}.Group(store, 7, rng.New(79))
	if err != nil {
		t.Fatal(err)
	}
	for grp, size := range groups.Sizes() {
		if size < 1000/7-1 || size > 1000/7+1 {
			t.Fatalf("random group %d size %d not balanced", grp, size)
		}
	}
}

func TestOracleGrouperSeparatesRelevance(t *testing.T) {
	store := wikiStore(t, 1000, 80)
	groups, err := OracleGrouper{}.Group(store, 8, rng.New(81))
	if err != nil {
		t.Fatal(err)
	}
	for grp, members := range groups.Members {
		for _, idx := range members {
			rel := store.Get(idx).Truth.Relevant
			if grp < 4 && !rel {
				t.Fatalf("irrelevant input in oracle relevant-group %d", grp)
			}
			if grp >= 4 && rel {
				t.Fatalf("relevant input in oracle irrelevant-group %d", grp)
			}
		}
	}
	if _, err := (OracleGrouper{}).Group(store, 1, rng.New(1)); err == nil {
		t.Fatal("oracle with k=1 should fail")
	}
}

func TestAttributeGrouperDedicatesTopValues(t *testing.T) {
	store := wikiStore(t, 1000, 82)
	groups, err := (&AttributeGrouper{Attr: "category"}).Group(store, 10, rng.New(83))
	if err != nil {
		t.Fatal(err)
	}
	// Every member of group 0 (the most common category) must share the
	// same attribute value.
	if len(groups.Members[0]) == 0 {
		t.Fatal("top attribute group empty")
	}
	first := store.Get(groups.Members[0][0]).Meta["category"]
	for _, idx := range groups.Members[0] {
		if store.Get(idx).Meta["category"] != first {
			t.Fatal("top attribute group mixes values")
		}
	}
}

func TestLSHGrouperConcentratesRelevance(t *testing.T) {
	// LSH groups are noisier than k-means but must still concentrate
	// relevance above the base rate on the skewed wiki corpus.
	store := wikiStore(t, 2000, 600)
	g := &LSHGrouper{Vectorizer: NewHashedText(128)}
	groups, err := g.Group(store, 16, rng.New(601))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Density(groups, store, func(in *corpus.Input) bool { return in.Truth.Class == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lift < 1.5 {
		t.Fatalf("LSH lift %v too low; index uninformative", rep.Lift)
	}
}

func TestLSHGrouperDeterministic(t *testing.T) {
	store := wikiStore(t, 300, 602)
	g := &LSHGrouper{Vectorizer: NewHashedText(64)}
	a, _ := g.Group(store, 8, rng.New(603))
	b, _ := g.Group(store, 8, rng.New(603))
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("LSH grouping not deterministic")
		}
	}
}

func TestBitsFor(t *testing.T) {
	for _, tc := range []struct{ k, min int }{{1, 1}, {2, 3}, {8, 5}, {64, 8}} {
		if got := bitsFor(tc.k); got < tc.min {
			t.Fatalf("bitsFor(%d) = %d, want >= %d", tc.k, got, tc.min)
		}
	}
	if bitsFor(1<<25) > 20 {
		t.Fatal("bitsFor should cap at 20")
	}
}

func TestGroupsValidateCatchesCorruption(t *testing.T) {
	store := wikiStore(t, 100, 84)
	groups, _ := RandomGrouper{}.Group(store, 4, rng.New(85))
	// Corrupt: move a member without updating Assign.
	groups.Members[0] = append(groups.Members[0], groups.Members[1][0])
	if err := groups.Validate(); err == nil {
		t.Fatal("Validate missed duplicated input")
	}
}

func TestGroupsSaveLoadRoundTrip(t *testing.T) {
	store := wikiStore(t, 200, 86)
	groups, _ := (&AttributeGrouper{Attr: "category"}).Group(store, 6, rng.New(87))
	path := filepath.Join(t.TempDir(), "groups.gob")
	if err := groups.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGroups(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != groups.K() || back.Strategy != groups.Strategy || back.Len() != groups.Len() {
		t.Fatal("round trip lost metadata")
	}
	for g := range groups.Members {
		if len(back.Members[g]) != len(groups.Members[g]) {
			t.Fatal("round trip lost members")
		}
	}
}

func TestLoadGroupsMissingFile(t *testing.T) {
	if _, err := LoadGroups("/nonexistent/groups.gob"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFromAssignPropertyEveryInputOnce(t *testing.T) {
	if err := quick.Check(func(raw [64]uint8, kRaw uint8) bool {
		k := int(kRaw%7) + 1
		assign := make([]int, len(raw))
		for i, v := range raw {
			assign[i] = int(v) % k
		}
		g := fromAssign("test", assign, k)
		return g.Validate() == nil && g.K() == k && g.Len() == len(raw)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
