package index

import (
	"fmt"
	"math"
	"sort"

	"zombie/internal/corpus"
)

// GroupDensity summarizes one index group's usefulness concentration.
type GroupDensity struct {
	Group   int
	Size    int
	Useful  int
	Density float64
}

// DensityReport measures how well a grouping concentrates useful inputs,
// given a usefulness predicate (typically ground truth in experiments, or
// the outcome of a previous run in production). It is the diagnostic
// behind the paper's claim that cheap index features correlate with
// usefulness: a good index has a few groups far above the base rate.
type DensityReport struct {
	// Groups lists per-group densities sorted densest-first.
	Groups []GroupDensity
	// BaseRate is the corpus-wide useful fraction.
	BaseRate float64
	// Lift is the densest group's density divided by the base rate
	// (1 means the index is uninformative).
	Lift float64
	// Gini is the Gini coefficient of useful inputs across groups:
	// 0 = usefulness spread evenly, 1 = concentrated in one group.
	Gini float64
}

// Density builds the report for a grouping over a store. It returns an
// error when the grouping does not match the store.
func Density(g *Groups, store corpus.Store, useful func(*corpus.Input) bool) (*DensityReport, error) {
	if g.Len() != store.Len() {
		return nil, fmt.Errorf("index: density: groups cover %d inputs, store has %d", g.Len(), store.Len())
	}
	report := &DensityReport{}
	totalUseful := 0
	for grp, members := range g.Members {
		gd := GroupDensity{Group: grp, Size: len(members)}
		for _, idx := range members {
			if useful(store.Get(idx)) {
				gd.Useful++
			}
		}
		if gd.Size > 0 {
			gd.Density = float64(gd.Useful) / float64(gd.Size)
		}
		totalUseful += gd.Useful
		report.Groups = append(report.Groups, gd)
	}
	sort.Slice(report.Groups, func(a, b int) bool {
		return report.Groups[a].Density > report.Groups[b].Density
	})
	if store.Len() > 0 {
		report.BaseRate = float64(totalUseful) / float64(store.Len())
	}
	if report.BaseRate > 0 && len(report.Groups) > 0 {
		report.Lift = report.Groups[0].Density / report.BaseRate
	}
	report.Gini = giniOfUseful(report.Groups, totalUseful)
	return report, nil
}

// giniOfUseful computes the Gini coefficient of the per-group useful
// counts, weighting groups equally.
func giniOfUseful(groups []GroupDensity, total int) float64 {
	if total == 0 || len(groups) < 2 {
		return 0
	}
	counts := make([]float64, len(groups))
	for i, g := range groups {
		counts[i] = float64(g.Useful)
	}
	sort.Float64s(counts)
	n := float64(len(counts))
	cum := 0.0
	weighted := 0.0
	for i, c := range counts {
		cum += c
		weighted += float64(i+1) * c
	}
	if cum == 0 {
		return 0
	}
	g := (2*weighted)/(n*cum) - (n+1)/n
	return math.Max(0, g)
}

// TopK returns the densest k groups (or all if fewer).
func (r *DensityReport) TopK(k int) []GroupDensity {
	if k > len(r.Groups) {
		k = len(r.Groups)
	}
	return r.Groups[:k]
}

// String renders a one-line summary.
func (r *DensityReport) String() string {
	return fmt.Sprintf("base=%.3f lift=%.1fx gini=%.2f over %d groups",
		r.BaseRate, r.Lift, r.Gini, len(r.Groups))
}
