package index

import (
	"testing"

	"zombie/internal/parallel"
	"zombie/internal/rng"
)

// benchPoints generates n points in dim dimensions scattered around k
// centers — the shape of the hashed-text vectors the workloads index
// (HashedText(64) with k = 32 groups at full scale).
func benchPoints(n, dim, k int) [][]float64 {
	r := rng.New(1234)
	points := make([][]float64, n)
	for i := range points {
		c := i % k
		p := make([]float64, dim)
		for d := range p {
			p[d] = r.NormFloat64() + float64((c+d)%k)
		}
		points[i] = p
	}
	return points
}

func benchKMeans(b *testing.B, workers int) {
	points := benchPoints(4000, 64, 32)
	cfg := KMeansConfig{K: 32, MaxIter: 10, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(points, cfg, rng.New(42)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans(b *testing.B)         { benchKMeans(b, 1) }
func BenchmarkKMeansParallel(b *testing.B) { benchKMeans(b, parallel.Workers(0)) }
