package server

import (
	"context"
	"sync"

	"zombie/internal/index"
)

// IndexKey identifies one cacheable index build. Strategy is the grouper's
// Name() — it encodes the vectorizer, so two tasks that would build
// different groups never collide.
type IndexKey struct {
	Corpus   string
	Strategy string
	K        int
	Seed     int64
}

// indexEntry is one in-flight or completed build. ready is closed when
// groups/err are final; waiters block on it instead of re-building.
type indexEntry struct {
	ready  chan struct{}
	groups *index.Groups
	err    error
}

// IndexCache caches built index groups keyed by (corpus, strategy, k,
// seed) with singleflight semantics: the first request for a key runs the
// build, concurrent requests for the same key wait for that one build, and
// later requests hit the cached result. Groups are immutable once built
// (runs keep private cursors), so one value is safely shared by every
// concurrent run.
//
// A failed build is evicted so the next request retries rather than
// pinning the error forever; the waiters of the failed attempt all observe
// its error.
type IndexCache struct {
	mu      sync.Mutex
	entries map[IndexKey]*indexEntry
	metrics *Metrics
}

// NewIndexCache returns an empty cache. metrics may be nil.
func NewIndexCache(metrics *Metrics) *IndexCache {
	return &IndexCache{entries: map[IndexKey]*indexEntry{}, metrics: metrics}
}

// Get returns the groups for key, building them with build if no other
// request has. The build itself is not interruptible (it runs on whichever
// goroutine got there first, for every waiter's benefit), but waiting for
// someone else's build respects ctx.
func (c *IndexCache) Get(ctx context.Context, key IndexKey, build func() (*index.Groups, error)) (*index.Groups, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		if c.metrics != nil {
			c.metrics.IndexCacheHits.Add(1)
		}
		select {
		case <-e.ready:
			return e.groups, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &indexEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	if c.metrics != nil {
		c.metrics.IndexBuilds.Add(1)
	}
	e.groups, e.err = build()
	if e.err != nil {
		c.mu.Lock()
		// Only evict our own entry: a concurrent retry may have already
		// replaced it.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return e.groups, e.err
}

// Len returns the number of cached (or in-flight) entries.
func (c *IndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
