package server

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRegistryToleratesCorruptLines: a corpus with corrupt lines and a
// torn tail registers successfully, drops the bad lines, and reports the
// damage in the corpus info.
func TestRegistryToleratesCorruptLines(t *testing.T) {
	clean := writeImageCorpus(t, 50, 7)
	b, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	dirty := filepath.Join(t.TempDir(), "dirty.jsonl")
	body := append([]byte("{garbage\n"), b...)
	body = append(body, []byte(`{"id":"torn","te`)...)
	if err := os.WriteFile(dirty, body, 0o644); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry()
	info, err := r.Add("dirty", dirty, false)
	if err != nil {
		t.Fatal(err)
	}
	if info.Inputs != 50 {
		t.Fatalf("inputs = %d, want 50", info.Inputs)
	}
	if info.SkippedLines != 2 {
		t.Fatalf("skipped = %d, want 2 (leading garbage + torn tail)", info.SkippedLines)
	}
	if got, _ := r.Info("dirty"); got.SkippedLines != 2 {
		t.Fatalf("Info lost the skip count: %+v", got)
	}
}

// TestRegistryRejectsAllCorrupt: a file with zero decodable lines still
// fails registration — tolerance is for damage, not for the wrong file.
func TestRegistryRejectsAllCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.jsonl")
	if err := os.WriteFile(path, []byte("junk\nmore\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry().Add("junk", path, false); err == nil {
		t.Fatal("all-corrupt corpus registered")
	}
}
