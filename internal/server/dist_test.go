package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// newWorkerServer boots a full Server with the named corpus registered —
// the process a production deployment would run with `zombie-serve
// -corpus name=path` to act as a dist worker.
func newWorkerServer(t *testing.T, corpusName, path string) *httptest.Server {
	t.Helper()
	s, ts := newTestServer(t)
	if _, err := s.Registry().Add(corpusName, path, false); err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestDistributedRunMatchesSingleProcess is the server-level identity
// check: the same RunSpec executed single-process, sharded in-process,
// and sharded over HTTP against two real zombie-serve workers must
// produce identical curves and summaries.
func TestDistributedRunMatchesSingleProcess(t *testing.T) {
	path := writeImageCorpus(t, 200, 21)
	coord, _ := newTestServer(t)
	if _, err := coord.Registry().Add("imgs", path, false); err != nil {
		t.Fatal(err)
	}
	w1 := newWorkerServer(t, "imgs", path)
	w2 := newWorkerServer(t, "imgs", path)

	base := RunSpec{Corpus: "imgs", Task: "image", MaxInputs: 60, EvalEvery: 20, Seed: 5}
	submit := func(spec RunSpec) *Run {
		t.Helper()
		run, err := coord.Manager().Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		<-run.Done()
		if st := run.State(); st != StateDone {
			t.Fatalf("run %s ended %s: %s", run.ID, st, run.Info().Error)
		}
		return run
	}

	ref := submit(base)

	local := base
	local.Shards = 2
	lrun := submit(local)
	if info := lrun.Info(); info.Transport != "local" || len(info.Workers) != 2 {
		t.Fatalf("local dist info: transport=%q workers=%+v", info.Transport, info.Workers)
	}

	remote := base
	remote.DistWorkers = []string{w1.URL, w2.URL}
	hrun := submit(remote)
	if info := hrun.Info(); info.Transport != "http" || len(info.Workers) != 2 {
		t.Fatalf("http dist info: transport=%q workers=%+v", info.Transport, info.Workers)
	}

	want := ref.Curve()
	for name, run := range map[string]*Run{"local": lrun, "http": hrun} {
		if got := run.Curve(); !reflect.DeepEqual(want, got) {
			t.Fatalf("%s sharded curve diverged:\nwant %+v\ngot  %+v", name, want, got)
		}
		ri, wi := run.Info(), ref.Info()
		if ri.FinalQuality != wi.FinalQuality || ri.InputsProcessed != wi.InputsProcessed || ri.Stop != wi.Stop {
			t.Fatalf("%s summary diverged: %+v vs %+v", name, ri, wi)
		}
	}
}

// TestDistSubmitValidation pins the sharding-specific submit guards.
func TestDistSubmitValidation(t *testing.T) {
	m, _ := newTestManager(t, "imgs", 100, 1, 4)
	cases := []RunSpec{
		{Corpus: "imgs", Task: "image", Shards: -1},
		{Corpus: "imgs", Task: "image", Mode: "scan-random", Shards: 2},
		{Corpus: "imgs", Task: "image", Mode: "oracle", DistWorkers: []string{"http://x"}},
		{Corpus: "imgs", Task: "image", Shards: 3, DistWorkers: []string{"http://x", "http://y"}},
	}
	for i, spec := range cases {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("case %d (%+v): expected a submit error", i, spec)
		}
	}
}

// TestDistWorkerEndpointUnknownRun: a step against a run that was never
// initialized on this worker must surface the worker's own error message
// through the JSON error body — the contract the HTTP transport's
// message-verbatim behavior rests on.
func TestDistWorkerEndpointUnknownRun(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/dist/step", map[string]any{"run_id": "ghost", "step": 1, "idx": 0})
	body := decodeBody[errorBody](t, resp, http.StatusInternalServerError)
	if body.Error != `dist: unknown run "ghost" on this worker (init first)` {
		t.Fatalf("error body %q", body.Error)
	}
}
