package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Workers: 2, QueueCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response, wantStatus int) T {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, wantStatus, raw)
	}
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad JSON body: %v\n%s", err, raw)
	}
	return v
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes the stream until EOF or until stop returns true for a
// parsed event.
func readSSE(t *testing.T, r io.Reader, stop func(sseEvent) bool) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
				if stop != nil && stop(cur) {
					return events
				}
				cur = sseEvent{}
			}
		}
	}
	return events
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	health := decodeBody[map[string]any](t, mustGet(t, ts.URL+"/healthz"), http.StatusOK)
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}
	metrics := decodeBody[map[string]int64](t, mustGet(t, ts.URL+"/metrics"), http.StatusOK)
	for _, key := range []string{"runs_started", "runs_completed", "runs_cancelled", "inputs_processed", "queue_depth", "index_builds"} {
		if _, ok := metrics[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, metrics)
		}
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCorpusEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	path := writeImageCorpus(t, 100, 7)

	info := decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "imgs", Path: path}), http.StatusCreated)
	if info.Name != "imgs" || info.Inputs != 100 {
		t.Fatalf("corpus info: %+v", info)
	}
	// Duplicate name and bad path are 400s.
	decodeBody[errorBody](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "imgs", Path: path}), http.StatusBadRequest)
	decodeBody[errorBody](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "x", Path: "/nope.jsonl"}), http.StatusBadRequest)

	list := decodeBody[[]CorpusInfo](t, mustGet(t, ts.URL+"/corpora"), http.StatusOK)
	if len(list) != 1 || list[0].Name != "imgs" {
		t.Fatalf("corpus list: %+v", list)
	}
	got := decodeBody[CorpusInfo](t, mustGet(t, ts.URL+"/corpora/imgs"), http.StatusOK)
	if got != info {
		t.Fatalf("corpus get: %+v vs %+v", got, info)
	}
	decodeBody[errorBody](t, mustGet(t, ts.URL+"/corpora/ghost"), http.StatusNotFound)
}

func TestRunEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t)
	path := writeImageCorpus(t, 100, 8)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "imgs", Path: path}), http.StatusCreated)

	decodeBody[errorBody](t, postJSON(t, ts.URL+"/runs", RunSpec{Corpus: "ghost", Task: "image"}), http.StatusBadRequest)
	decodeBody[errorBody](t, postJSON(t, ts.URL+"/runs", RunSpec{Corpus: "imgs", Task: "image", Policy: "bogus"}), http.StatusBadRequest)
	decodeBody[errorBody](t, mustGet(t, ts.URL+"/runs/r999"), http.StatusNotFound)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/r999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody[errorBody](t, resp, http.StatusNotFound)

	// Unknown fields in the body are rejected, not silently dropped.
	resp = postJSON(t, ts.URL+"/runs", map[string]any{"corpus": "imgs", "task": "image", "polcy": "typo"})
	decodeBody[errorBody](t, resp, http.StatusBadRequest)
}

// TestServeEndToEnd is the acceptance flow: register a corpus over HTTP,
// run a zombie run to completion while following its curve over SSE,
// fetch its trace, then cancel a long-running second run and observe the
// cancelled status with a partial curve.
func TestServeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	// Small corpus for the fast run, large one for the cancel target.
	small := writeImageCorpus(t, 600, 9)
	big := writeImageCorpus(t, 20000, 10)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "small", Path: small}), http.StatusCreated)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "big", Path: big, Stream: true}), http.StatusCreated)

	// Submit a bounded zombie run and follow its curve over SSE.
	spec := RunSpec{Corpus: "small", Task: "image", Mode: "zombie", K: 8, MaxInputs: 120, EvalEvery: 10, Trace: true}
	submitted := decodeBody[RunInfo](t, postJSON(t, ts.URL+"/runs", spec), http.StatusAccepted)
	if submitted.State != StateQueued && submitted.State != StateRunning {
		t.Fatalf("fresh run state = %s", submitted.State)
	}

	resp := mustGet(t, ts.URL+"/runs/"+submitted.ID+"/curve?follow=1")
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("follow content type = %q", ct)
	}
	events := readSSE(t, resp.Body, func(e sseEvent) bool { return e.name == "status" })
	resp.Body.Close()
	points := 0
	for _, e := range events {
		if e.name == "point" {
			points++
		}
	}
	if points < 2 {
		t.Fatalf("observed %d SSE curve events, want >= 2", points)
	}
	var status RunInfo
	if err := json.Unmarshal([]byte(events[len(events)-1].data), &status); err != nil {
		t.Fatal(err)
	}
	if status.State != StateDone || status.InputsProcessed != 120 {
		t.Fatalf("terminal status event: %+v", status)
	}

	// The JSON curve and CSV trace agree with the SSE view.
	curve := decodeBody[struct {
		State RunState         `json:"state"`
		Curve []curvePointJSON `json:"curve"`
	}](t, mustGet(t, ts.URL+"/runs/"+submitted.ID+"/curve"), http.StatusOK)
	if curve.State != StateDone || len(curve.Curve) != 13 { // 0,10,...,120
		t.Fatalf("curve: state=%s points=%d", curve.State, len(curve.Curve))
	}
	eventsResp := mustGet(t, ts.URL+"/runs/"+submitted.ID+"/events")
	csvBody, _ := io.ReadAll(eventsResp.Body)
	eventsResp.Body.Close()
	if eventsResp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d: %s", eventsResp.StatusCode, csvBody)
	}
	if rows := strings.Count(strings.TrimSpace(string(csvBody)), "\n"); rows != 120 {
		t.Fatalf("trace CSV has %d data rows, want 120", rows)
	}

	// Submit the long run over the streamed corpus, wait for its first SSE
	// point (it is definitely executing), then cancel it.
	long := decodeBody[RunInfo](t, postJSON(t, ts.URL+"/runs", longSpec("big")), http.StatusAccepted)
	follow := mustGet(t, ts.URL+"/runs/"+long.ID+"/curve?follow=1")
	readSSE(t, follow.Body, func(e sseEvent) bool { return e.name == "point" })

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+long.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody[RunInfo](t, delResp, http.StatusOK)

	// The follow stream ends with a cancelled status event.
	tail := readSSE(t, follow.Body, func(e sseEvent) bool { return e.name == "status" })
	follow.Body.Close()
	if len(tail) == 0 {
		t.Fatal("follow stream ended without a status event")
	}
	var cancelled RunInfo
	if err := json.Unmarshal([]byte(tail[len(tail)-1].data), &cancelled); err != nil {
		t.Fatal(err)
	}
	if cancelled.State != StateCancelled || cancelled.Stop != "cancelled" {
		t.Fatalf("cancelled status: %+v", cancelled)
	}
	if cancelled.CurvePoints < 1 || cancelled.InputsProcessed >= 18000 {
		t.Fatalf("cancelled run should carry a partial curve: %+v", cancelled)
	}

	// Run listing and metrics reflect both runs.
	runs := decodeBody[[]RunInfo](t, mustGet(t, ts.URL+"/runs"), http.StatusOK)
	if len(runs) != 2 || runs[0].ID != submitted.ID || runs[1].ID != long.ID {
		t.Fatalf("run list: %+v", runs)
	}
	metrics := decodeBody[map[string]int64](t, mustGet(t, ts.URL+"/metrics"), http.StatusOK)
	if metrics["runs_started"] != 2 || metrics["runs_completed"] != 1 || metrics["runs_cancelled"] != 1 {
		t.Fatalf("metrics after e2e: %v", metrics)
	}
	if metrics["inputs_processed"] < 120 || metrics["index_builds"] != 1 {
		t.Fatalf("metrics after e2e: %v", metrics)
	}
}

// TestIndexSharedAcrossConcurrentRuns submits identical zombie runs in
// parallel and checks the singleflight cache built the index exactly once.
func TestIndexSharedAcrossConcurrentRuns(t *testing.T) {
	s, ts := newTestServer(t)
	path := writeImageCorpus(t, 800, 11)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "imgs", Path: path}), http.StatusCreated)

	spec := RunSpec{Corpus: "imgs", Task: "image", Mode: "zombie", K: 8, MaxInputs: 40, EvalEvery: 20}
	var ids []string
	for i := 0; i < 3; i++ {
		info := decodeBody[RunInfo](t, postJSON(t, ts.URL+"/runs", spec), http.StatusAccepted)
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		run, ok := s.Manager().Get(id)
		if !ok {
			t.Fatalf("run %s missing", id)
		}
		<-run.Done()
		if st := run.State(); st != StateDone {
			t.Fatalf("run %s state = %s (%s)", id, st, run.Info().Error)
		}
	}
	metrics := decodeBody[map[string]int64](t, mustGet(t, ts.URL+"/metrics"), http.StatusOK)
	if metrics["index_builds"] != 1 {
		t.Fatalf("index built %d times for identical runs, want 1", metrics["index_builds"])
	}
	if metrics["index_cache_hits"] != 2 {
		t.Fatalf("index_cache_hits = %d, want 2", metrics["index_cache_hits"])
	}

	// Identical seeds mean identical results: the shared index is not
	// mutated by concurrent runs.
	var q []float64
	for _, id := range ids {
		run, _ := s.Manager().Get(id)
		q = append(q, run.Result().FinalQuality)
	}
	if q[0] != q[1] || q[1] != q[2] {
		t.Fatalf("identical runs diverged: %v", q)
	}
}

// TestSSEAfterCompletion: a follower that connects after the run finished
// still gets the full history and the terminal status immediately.
func TestSSEAfterCompletion(t *testing.T) {
	_, ts := newTestServer(t)
	path := writeImageCorpus(t, 400, 12)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "imgs", Path: path}), http.StatusCreated)
	info := decodeBody[RunInfo](t, postJSON(t, ts.URL+"/runs",
		RunSpec{Corpus: "imgs", Task: "image", Mode: "scan-sequential", MaxInputs: 30, EvalEvery: 10}), http.StatusAccepted)

	deadline := time.Now().Add(20 * time.Second)
	for {
		cur := decodeBody[RunInfo](t, mustGet(t, ts.URL+"/runs/"+info.ID), http.StatusOK)
		if cur.State == StateDone {
			break
		}
		if cur.State.terminal() {
			t.Fatalf("run ended %s: %s", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("run did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp := mustGet(t, ts.URL+"/runs/"+info.ID+"/curve?follow=1")
	events := readSSE(t, resp.Body, nil) // reads to EOF
	resp.Body.Close()
	points := 0
	var last sseEvent
	for _, e := range events {
		if e.name == "point" {
			points++
		}
		last = e
	}
	if points != 4 { // 0,10,20,30
		t.Fatalf("late follower saw %d points, want 4", points)
	}
	if last.name != "status" {
		t.Fatalf("stream must end with status, got %q", last.name)
	}
	if !strings.Contains(last.data, fmt.Sprintf("%q", StateDone)) {
		t.Fatalf("status data: %s", last.data)
	}
}

// TestExtractionCacheSharedAcrossRuns: the second identical run is served
// from the extraction cache populated by the first, the traffic shows up
// in RunInfo and /metrics, results stay identical, and DELETE /cache
// empties the cache.
func TestExtractionCacheSharedAcrossRuns(t *testing.T) {
	s, ts := newTestServer(t)
	path := writeImageCorpus(t, 500, 13)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "imgs", Path: path}), http.StatusCreated)

	spec := RunSpec{Corpus: "imgs", Task: "image", Mode: "scan-sequential", MaxInputs: 80, EvalEvery: 40}
	await := func(id string) RunInfo {
		run, ok := s.Manager().Get(id)
		if !ok {
			t.Fatalf("run %s missing", id)
		}
		<-run.Done()
		if st := run.State(); st != StateDone {
			t.Fatalf("run %s state = %s (%s)", id, st, run.Info().Error)
		}
		return run.Info()
	}
	cold := await(decodeBody[RunInfo](t, postJSON(t, ts.URL+"/runs", spec), http.StatusAccepted).ID)
	warm := await(decodeBody[RunInfo](t, postJSON(t, ts.URL+"/runs", spec), http.StatusAccepted).ID)

	if cold.CacheHits != 0 || cold.CacheMisses == 0 {
		t.Fatalf("cold run traffic: hits=%d misses=%d", cold.CacheHits, cold.CacheMisses)
	}
	if warm.CacheHits == 0 || warm.CacheMisses != 0 {
		t.Fatalf("warm run traffic: hits=%d misses=%d", warm.CacheHits, warm.CacheMisses)
	}
	if cold.FinalQuality != warm.FinalQuality || cold.InputsProcessed != warm.InputsProcessed {
		t.Fatalf("cached replay diverged: %+v vs %+v", cold, warm)
	}

	metrics := decodeBody[map[string]int64](t, mustGet(t, ts.URL+"/metrics"), http.StatusOK)
	if metrics["feat_cache_hits"] == 0 || metrics["feat_cache_misses"] == 0 ||
		metrics["feat_cache_entries"] == 0 || metrics["feat_cache_bytes"] == 0 {
		t.Fatalf("metrics missing cache traffic: %v", metrics)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/cache", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody[map[string]any](t, resp, http.StatusOK)
	metrics = decodeBody[map[string]int64](t, mustGet(t, ts.URL+"/metrics"), http.StatusOK)
	if metrics["feat_cache_entries"] != 0 || metrics["feat_cache_bytes"] != 0 {
		t.Fatalf("cache not emptied: %v", metrics)
	}
}
