package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"zombie/internal/bandit"
	"zombie/internal/core"
	"zombie/internal/corpus"
	"zombie/internal/dist"
	"zombie/internal/fault"
	"zombie/internal/featcache"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/obs"
	"zombie/internal/parallel"
	"zombie/internal/rng"
	"zombie/internal/trace"
	"zombie/internal/workload"
)

// Submission overload/lifecycle errors, distinguished so the HTTP layer
// can map them to 503 instead of 400.
var (
	ErrQueueFull    = errors.New("server: run queue full")
	ErrShuttingDown = errors.New("server: shutting down, not accepting runs")
)

// Manager executes runs asynchronously on a parallel.Pool — the same
// bounded worker pool the experiment harness uses for fork-join work.
// Submit validates and enqueues; the pool's workers drain the queue;
// Cancel stops a queued or running run; Shutdown drains in-flight work.
// Runs are kept forever (the manager is the system of record for run
// history); a production deployment would add retention, which is
// deliberately out of scope here.
type Manager struct {
	registry  *Registry
	cache     *IndexCache
	featCache *featcache.Cache
	metrics   *Metrics
	store     RunStore
	defaults  RunDefaults
	log       *slog.Logger

	pool    *parallel.Pool
	running atomic.Int64

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	runs   map[string]*Run
	order  []string // submission order, for List
	nextID int
	closed bool
	// pending holds restored interrupted runs awaiting recoverPending —
	// re-queueing is deferred until the embedder has registered the
	// corpora the runs reference.
	pending []*Run
}

// RunDefaults are the server-wide robustness settings a RunSpec inherits
// when it does not set its own. Zero values mean: no deadline, no fault
// injection, the engine's default failure budget.
type RunDefaults struct {
	// Timeout is the per-run wall-clock deadline (0 = none). A run over it
	// ends as cancelled-with-partials, marked timed_out.
	Timeout time.Duration
	// Faults injects deterministic failures into every run that does not
	// carry its own spec (chaos deployments only; normally nil).
	Faults *fault.Injector
	// MaxFailureFrac is the default failure budget (0 = core's default).
	MaxFailureFrac float64
	// Batch is the default core.Config.BatchSize for specs that leave
	// batch unset (0 = the engine's default of 1, the classic per-step
	// loop).
	Batch int
	// DistWorkers lists worker base URLs sharded runs execute over when
	// their spec names none of its own (see Config.DistWorkers).
	DistWorkers []string
}

// NewManager starts a pool of workers goroutines over a queue of queueCap
// pending runs (both floored at 1) and returns the manager. store
// receives every run lifecycle transition; nil means the in-memory
// no-op store (state dies with the process).
func NewManager(registry *Registry, cache *IndexCache, featCache *featcache.Cache, metrics *Metrics, store RunStore, workers, queueCap int, defaults RunDefaults) *Manager {
	if store == nil {
		store = NewMemStore()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		registry:   registry,
		cache:      cache,
		featCache:  featCache,
		metrics:    metrics,
		store:      store,
		defaults:   defaults,
		log:        obs.NopLogger(),
		pool:       parallel.NewPool(workers, queueCap),
		baseCtx:    ctx,
		baseCancel: cancel,
		runs:       map[string]*Run{},
	}
}

// SetLogger replaces the manager's run-lifecycle logger (a nop logger by
// default). Call it before submitting runs.
func (m *Manager) SetLogger(l *slog.Logger) {
	if l != nil {
		m.log = l
	}
}

// obsRegistry returns the telemetry registry runs observe into (nil when
// the manager has no metrics).
func (m *Manager) obsRegistry() *obs.Registry {
	if m.metrics == nil {
		return nil
	}
	return m.metrics.Registry()
}

// normalize fills spec defaults in place.
func (spec *RunSpec) normalize() {
	if spec.Mode == "" {
		spec.Mode = "zombie"
	}
	if spec.Policy == "" {
		spec.Policy = "eps-greedy:0.1"
	}
	if spec.K == 0 {
		spec.K = 32
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
}

// engineConfig translates a normalized spec into a core.Config (without
// the Progress hook, which is attached per run at execution time),
// filling robustness settings the spec leaves unset from the manager's
// defaults. The fault spec is parsed here, so Submit's eager validation
// rejects a malformed one as a 400.
func (m *Manager) engineConfig(spec RunSpec) (core.Config, error) {
	cfg := core.Config{
		Policy:         bandit.Spec(spec.Policy),
		Seed:           spec.Seed,
		MaxInputs:      spec.MaxInputs,
		EvalEvery:      spec.EvalEvery,
		MaxFailureFrac: spec.MaxFailures,
		BatchSize:      spec.Batch,
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = m.defaults.Batch
	}
	if spec.EarlyStop {
		cfg.EarlyStop = core.EarlyStopConfig{Enabled: true}
	}
	cfg.TraceEvents = spec.Trace
	if cfg.MaxFailureFrac == 0 {
		cfg.MaxFailureFrac = m.defaults.MaxFailureFrac
	}
	if spec.Faults != "" {
		inj, err := fault.Parse(spec.Faults, spec.FaultSeed)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Faults = inj
	} else {
		cfg.Faults = m.defaults.Faults
	}
	return cfg, nil
}

// timeoutFor resolves a run's effective deadline: the spec's own, or the
// server default.
func (m *Manager) timeoutFor(spec RunSpec) time.Duration {
	if spec.TimeoutMillis > 0 {
		return time.Duration(spec.TimeoutMillis) * time.Millisecond
	}
	return m.defaults.Timeout
}

// Submit validates the spec, assigns an ID, and enqueues the run. It
// returns an error for unknown corpora/tasks/modes, invalid engine
// configuration, a full queue, or a shutting-down manager.
func (m *Manager) Submit(spec RunSpec) (*Run, error) {
	spec.normalize()
	if _, err := m.registry.Get(spec.Corpus); err != nil {
		return nil, err
	}
	validTask := false
	for _, n := range workload.Names() {
		if spec.Task == n {
			validTask = true
		}
	}
	if !validTask {
		return nil, fmt.Errorf("server: unknown task %q (want one of %v)", spec.Task, workload.Names())
	}
	switch spec.Mode {
	case "zombie", "scan-random", "scan-sequential", "oracle":
	default:
		return nil, fmt.Errorf("server: unknown mode %q", spec.Mode)
	}
	if spec.K < 1 {
		return nil, fmt.Errorf("server: k must be >= 1, got %d", spec.K)
	}
	if spec.TimeoutMillis < 0 {
		return nil, fmt.Errorf("server: timeout_ms must be >= 0, got %d", spec.TimeoutMillis)
	}
	if spec.Shards < 0 {
		return nil, fmt.Errorf("server: shards must be >= 0, got %d", spec.Shards)
	}
	if spec.Batch < 0 {
		return nil, fmt.Errorf("server: batch must be >= 0, got %d", spec.Batch)
	}
	if spec.distributed() && spec.Mode != "zombie" {
		return nil, fmt.Errorf("server: distributed execution (shards/dist_workers) requires mode zombie, got %q", spec.Mode)
	}
	if spec.Shards > 0 && len(spec.DistWorkers) > 0 && spec.Shards != len(spec.DistWorkers) {
		return nil, fmt.Errorf("server: shards=%d does not match %d dist_workers", spec.Shards, len(spec.DistWorkers))
	}
	// Validate the engine configuration (policy and fault specs included)
	// eagerly so submission errors surface as 400s, not failed runs.
	cfg, err := m.engineConfig(spec)
	if err != nil {
		return nil, err
	}
	if _, err := core.New(cfg); err != nil {
		return nil, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	m.nextID++
	run := newRun("r"+strconv.Itoa(m.nextID), spec, time.Now())
	// Journal the submission before the enqueue: a worker may pick the run
	// up (and journal its start) the instant TrySubmit returns. A failed
	// enqueue is compensated with a discard record — the run never existed.
	m.store.RunSubmitted(run.ID, m.nextID, run.spec, run.created)
	if !m.pool.TrySubmit(func() { m.execute(run) }) {
		m.nextID-- // ID was never exposed
		m.store.RunDiscarded(run.ID)
		return nil, fmt.Errorf("%w (%d pending)", ErrQueueFull, m.pool.Cap())
	}
	m.runs[run.ID] = run
	m.order = append(m.order, run.ID)
	if m.metrics != nil {
		m.metrics.RunsStarted.Add(1)
	}
	return run, nil
}

// Get returns the run by ID.
func (m *Manager) Get(id string) (*Run, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	return r, ok
}

// List returns snapshots of all runs in submission order.
func (m *Manager) List() []RunInfo {
	m.mu.Lock()
	ids := make([]string, len(m.order))
	copy(ids, m.order)
	runs := make([]*Run, 0, len(ids))
	for _, id := range ids {
		runs = append(runs, m.runs[id])
	}
	m.mu.Unlock()
	out := make([]RunInfo, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.Info())
	}
	return out
}

// Cancel requests cancellation of the run. The returned info reflects the
// state after the request: cancelled for a queued run, still running for a
// run that has yet to observe its context, terminal states unchanged.
func (m *Manager) Cancel(id string) (RunInfo, error) {
	run, ok := m.Get(id)
	if !ok {
		return RunInfo{}, fmt.Errorf("server: unknown run %q", id)
	}
	now := time.Now()
	_, cancelledNow := run.requestCancel(now)
	if cancelledNow {
		if m.metrics != nil {
			m.metrics.RunsCancelled.Add(1)
		}
		// The cancel itself finished a queued run; no worker will ever own
		// it, so the terminal record is journaled here.
		m.store.RunFinished(run.ID, now, run.Info())
	}
	return run.Info(), nil
}

// QueueDepth returns the number of queued-not-yet-started runs.
func (m *Manager) QueueDepth() int { return m.pool.QueueDepth() }

// Running returns the number of runs currently executing.
func (m *Manager) Running() int { return int(m.running.Load()) }

// execute runs one queued run to a terminal state.
func (m *Manager) execute(run *Run) {
	var ctx context.Context
	var cancel context.CancelFunc
	if to := m.timeoutFor(run.spec); to > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, to)
	} else {
		ctx, cancel = context.WithCancel(m.baseCtx)
	}
	defer cancel()
	started := time.Now()
	if !run.start(cancel, started) {
		return // cancelled while queued
	}
	m.store.RunStarted(run.ID, started)
	m.running.Add(1)
	defer m.running.Add(-1)
	m.log.Info("run started", "run", run.ID, "corpus", run.spec.Corpus,
		"task", run.spec.Task, "mode", run.spec.Mode)

	res, err := m.runEngine(ctx, run)
	finished := time.Now()
	if m.metrics != nil {
		m.metrics.RunWallMillis.Add(finished.Sub(started).Milliseconds())
		if res != nil {
			m.metrics.InputsQuarantined.Add(int64(len(res.Quarantined)))
		}
	}
	switch {
	case err != nil:
		run.finish(StateFailed, nil, err.Error(), finished)
		if m.metrics != nil {
			m.metrics.RunsFailed.Add(1)
		}
	case res.Stop == core.StopFailed:
		// The failure budget tripped: terminal failed, but with the partial
		// result attached — the curve so far and the quarantine list are the
		// evidence the client needs. The message counts loop quarantines
		// only (Step >= 1): holdout-build entries are outside the budget.
		loopQuarantined := 0
		for _, q := range res.Quarantined {
			if q.Step >= 1 {
				loopQuarantined++
			}
		}
		run.finish(StateFailed, res,
			fmt.Sprintf("failure budget exceeded: %d of %d processed inputs quarantined",
				loopQuarantined, res.InputsProcessed), finished)
		if m.metrics != nil {
			m.metrics.RunsFailed.Add(1)
			m.metrics.InputsProcessed.Add(int64(res.InputsProcessed))
		}
	case res.Stop == core.StopCancelled:
		// Distinguish a deadline expiry from a client cancel: both surface
		// as a cancelled loop, but only the former carries DeadlineExceeded.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			run.setTimedOut()
			if m.metrics != nil {
				m.metrics.RunsTimedOut.Add(1)
			}
		}
		run.finish(StateCancelled, res, "", finished)
		if m.metrics != nil {
			m.metrics.RunsCancelled.Add(1)
			m.metrics.InputsProcessed.Add(int64(res.InputsProcessed))
		}
	default:
		run.finish(StateDone, res, "", finished)
		if m.metrics != nil {
			m.metrics.RunsCompleted.Add(1)
			m.metrics.InputsProcessed.Add(int64(res.InputsProcessed))
		}
	}
	info := run.Info()
	m.store.RunFinished(run.ID, finished, info)
	if info.Error != "" {
		m.log.Error("run finished", "run", run.ID, "state", info.State,
			"wall_ms", info.WallMillis, "error", info.Error)
	} else {
		m.log.Info("run finished", "run", run.ID, "state", info.State,
			"wall_ms", info.WallMillis, "inputs", info.InputsProcessed,
			"quality", info.FinalQuality, "quarantined", info.Quarantined)
	}
}

// runEngine assembles the task, resolves the index through the shared
// cache, and executes the engine loop with the run's live-curve bridge.
func (m *Manager) runEngine(ctx context.Context, run *Run) (*core.RunResult, error) {
	spec := run.spec // immutable after Submit
	store, err := m.registry.Get(spec.Corpus)
	if err != nil {
		return nil, err
	}
	task, grouper, err := workload.Build(spec.Task, store, spec.FeatureVersion, rng.New(spec.Seed).Split("task"))
	if err != nil {
		return nil, err
	}

	cfg, err := m.engineConfig(spec)
	if err != nil {
		return nil, err
	}
	cfg.Progress = func(p core.CurvePoint) {
		run.appendPoint(p)
		m.store.RunProgressed(run.ID, p)
	}
	cfg.Obs = m.obsRegistry()
	// The event hook is wired for every run now, not just traced ones: it
	// bridges step events into the trace ring/SSE stream (traced runs) and
	// journals quarantine transitions (all runs). Config.Event is
	// observational by contract, so this changes no run output.
	traced := spec.Trace
	cfg.Event = func(ev trace.Event) {
		if traced {
			run.appendEvent(ev)
		}
		if ev.Quarantined {
			m.store.RunQuarantined(run.ID)
		}
	}
	// Every run shares the server's extraction cache; results are
	// byte-identical either way (see core.Config.Cache), so this is purely
	// a wall-clock win across a session's repeated runs.
	cfg.Cache = m.featCache
	// The span tracer (nil unless the spec asked for spans) brackets the
	// engine's phases; distributed runs thread the same tracer through the
	// coordinator so worker-side spans stitch into one tree.
	cfg.Tracer = run.tracer
	m.metrics.ObserveTracer(run.tracer)
	eng, err := core.New(cfg)
	if err != nil {
		return nil, err
	}

	switch spec.Mode {
	case "zombie":
		key := IndexKey{Corpus: spec.Corpus, Strategy: grouper.Name(), K: spec.K, Seed: spec.Seed}
		groups, err := m.cache.Get(ctx, key, func() (*index.Groups, error) {
			return m.buildIndexWithRetry(ctx, key, cfg.Faults, func() (*index.Groups, error) {
				return grouper.Group(store, spec.K, rng.New(spec.Seed).Split("index"))
			})
		})
		if err != nil {
			return nil, err
		}
		if spec.distributed() {
			return m.runDist(ctx, run, eng, store, task, groups)
		}
		return eng.RunContext(ctx, task, groups)
	case "scan-random":
		return eng.RunScanContext(ctx, task, true)
	case "scan-sequential":
		return eng.RunScanContext(ctx, task, false)
	case "oracle":
		return eng.RunOracleContext(ctx, task)
	default:
		return nil, fmt.Errorf("server: unknown mode %q", spec.Mode)
	}
}

// runDist executes a sharded zombie run through internal/dist. The index
// was already resolved coordinator-side (through the shared index cache,
// exactly like a single-process run); only the per-input read + extract
// work fans out. Worker addresses resolve spec-first, then the server's
// -dist-workers default, then in-process local workers sharing the
// server's extraction cache and telemetry registry.
func (m *Manager) runDist(ctx context.Context, run *Run, eng *core.Engine, store corpus.Store, task *featurepipe.Task, groups *index.Groups) (*core.RunResult, error) {
	spec := run.spec
	addrs := spec.DistWorkers
	shards := spec.Shards
	if len(addrs) == 0 && shards > 0 && shards <= len(m.defaults.DistWorkers) {
		addrs = m.defaults.DistWorkers[:shards]
	}
	var tr dist.Transport
	if len(addrs) > 0 {
		shards = len(addrs)
		tr = dist.NewHTTPTransport(addrs)
	} else {
		tr = dist.NewLocalTransport(store, shards, m.featCache, m.obsRegistry())
	}
	defer tr.Close()
	res, err := dist.Run(ctx, eng, tr, dist.Spec{
		RunID:          run.ID,
		Corpus:         spec.Corpus,
		Task:           spec.Task,
		FeatureVersion: spec.FeatureVersion,
		Seed:           spec.Seed,
		Shards:         shards,
		FaultSpec:      spec.Faults,
		FaultSeed:      spec.FaultSeed,
		Obs:            m.obsRegistry(),
		Tracer:         run.tracer,
	}, task, groups)
	if err != nil {
		return nil, err
	}
	run.setDist(res.Transport, res.Workers)
	m.log.Info("distributed run merged", "run", run.ID,
		"transport", res.Transport, "shards", shards)
	return res.RunResult, nil
}

// Index builds are retried because they are the one run phase with a
// plausible transient failure mode in production (IO against a streamed
// corpus); three attempts with doubling backoff rides out a blip without
// meaningfully delaying the genuinely-broken case.
const (
	indexBuildAttempts = 3
	indexBuildBackoff  = 50 * time.Millisecond
)

// buildIndexWithRetry runs build with panic isolation and up to
// indexBuildAttempts attempts, backing off between them. An injector
// covering fault.SiteIndexBuild fails attempts deterministically, keyed
// "corpus/strategy#attempt", which is how chaos tests exercise this path.
func (m *Manager) buildIndexWithRetry(ctx context.Context, key IndexKey, inj *fault.Injector, build func() (*index.Groups, error)) (*index.Groups, error) {
	var lastErr error
	for attempt := 0; attempt < indexBuildAttempts; attempt++ {
		if attempt > 0 {
			if m.metrics != nil {
				m.metrics.IndexBuildRetries.Add(1)
			}
			select {
			case <-time.After(indexBuildBackoff << (attempt - 1)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		groups, err := buildIndexAttempt(key, attempt, inj, build)
		if err == nil {
			return groups, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("server: index build for %s/%s failed after %d attempts: %w",
		key.Corpus, key.Strategy, indexBuildAttempts, lastErr)
}

// buildIndexAttempt is one build attempt with panics flattened to errors
// so a grouper losing control on odd data is retryable like any failure.
func buildIndexAttempt(key IndexKey, attempt int, inj *fault.Injector, build func() (*index.Groups, error)) (groups *index.Groups, err error) {
	defer func() {
		if p := recover(); p != nil {
			groups, err = nil, fmt.Errorf("index build panicked: %v", p)
		}
	}()
	id := fmt.Sprintf("%s/%s#%d", key.Corpus, key.Strategy, attempt)
	if ferr := inj.Fire(fault.SiteIndexBuild, id); ferr != nil {
		return nil, ferr
	}
	return build()
}

// Shutdown stops intake and drains: queued and running runs continue to
// completion unless ctx expires first, at which point every in-flight run
// is cancelled and Shutdown waits for the workers to observe it. Returns
// ctx.Err() when the drain was cut short.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.pool.Close()
	}
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.pool.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		m.baseCancel() // cancel in-flight runs; loop notices within a step
		<-drained
		return ctx.Err()
	}
}

// restore rebuilds the manager's run table from recovered state:
// terminal runs come back with their full history, interrupted (queued
// or running at crash time) runs are reset to queued and parked until
// recoverPending re-queues them. It must run before the server starts
// accepting requests — it assumes an empty run table.
func (m *Manager) restore(st *persistState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st.NextRunID > m.nextID {
		m.nextID = st.NextRunID
	}
	for _, id := range st.RunOrder {
		pr := st.Runs[id]
		if pr == nil {
			continue
		}
		run := restoreRun(pr)
		m.runs[id] = run
		m.order = append(m.order, id)
		if !pr.State.terminal() {
			run.prepareRequeue()
			m.pending = append(m.pending, run)
		}
	}
}

// recoverPending re-queues every restored interrupted run for
// deterministic re-execution: the engine is a pure function of the spec,
// so the re-run's curve is byte-identical to what an uninterrupted run
// would have produced. It is separate from restore because the runs'
// corpora are registered by the embedder after the server is built;
// call it once registration is done. Returns the number re-queued.
func (m *Manager) recoverPending() int {
	m.mu.Lock()
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()

	recovered := 0
	for _, run := range pending {
		run := run
		m.store.RunRequeued(run.ID)
		if !m.pool.TrySubmit(func() { m.execute(run) }) {
			// A recovery flood larger than the queue: fail the overflow runs
			// loudly rather than dropping them silently. Clients see why.
			now := time.Now()
			run.finish(StateFailed, nil, "recovery re-queue failed: run queue full", now)
			m.store.RunFinished(run.ID, now, run.Info())
			if m.metrics != nil {
				m.metrics.RunsFailed.Add(1)
			}
			m.log.Error("run recovery failed", "run", run.ID, "error", "queue full")
			continue
		}
		recovered++
		if m.metrics != nil {
			m.metrics.RunsRecovered.Add(1)
		}
		m.log.Info("run recovered", "run", run.ID, "corpus", run.spec.Corpus,
			"task", run.spec.Task, "requeues", run.Info().Recovered)
	}
	return recovered
}

// stateCounts summarizes run states (for /healthz).
func (m *Manager) stateCounts() map[string]int {
	counts := map[string]int{}
	for _, info := range m.List() {
		counts[string(info.State)]++
	}
	return counts
}
