package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"zombie/internal/bandit"
	"zombie/internal/core"
	"zombie/internal/featcache"
	"zombie/internal/index"
	"zombie/internal/parallel"
	"zombie/internal/rng"
	"zombie/internal/workload"
)

// Submission overload/lifecycle errors, distinguished so the HTTP layer
// can map them to 503 instead of 400.
var (
	ErrQueueFull    = errors.New("server: run queue full")
	ErrShuttingDown = errors.New("server: shutting down, not accepting runs")
)

// Manager executes runs asynchronously on a parallel.Pool — the same
// bounded worker pool the experiment harness uses for fork-join work.
// Submit validates and enqueues; the pool's workers drain the queue;
// Cancel stops a queued or running run; Shutdown drains in-flight work.
// Runs are kept forever (the manager is the system of record for run
// history); a production deployment would add retention, which is
// deliberately out of scope here.
type Manager struct {
	registry  *Registry
	cache     *IndexCache
	featCache *featcache.Cache
	metrics   *Metrics

	pool    *parallel.Pool
	running atomic.Int64

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	runs   map[string]*Run
	order  []string // submission order, for List
	nextID int
	closed bool
}

// NewManager starts a pool of workers goroutines over a queue of queueCap
// pending runs (both floored at 1) and returns the manager.
func NewManager(registry *Registry, cache *IndexCache, featCache *featcache.Cache, metrics *Metrics, workers, queueCap int) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		registry:   registry,
		cache:      cache,
		featCache:  featCache,
		metrics:    metrics,
		pool:       parallel.NewPool(workers, queueCap),
		baseCtx:    ctx,
		baseCancel: cancel,
		runs:       map[string]*Run{},
	}
}

// normalize fills spec defaults in place.
func (spec *RunSpec) normalize() {
	if spec.Mode == "" {
		spec.Mode = "zombie"
	}
	if spec.Policy == "" {
		spec.Policy = "eps-greedy:0.1"
	}
	if spec.K == 0 {
		spec.K = 32
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
}

// engineConfig translates a normalized spec into a core.Config (without
// the Progress hook, which is attached per run at execution time).
func (spec RunSpec) engineConfig() core.Config {
	cfg := core.Config{
		Policy:    bandit.Spec(spec.Policy),
		Seed:      spec.Seed,
		MaxInputs: spec.MaxInputs,
		EvalEvery: spec.EvalEvery,
	}
	if spec.EarlyStop {
		cfg.EarlyStop = core.EarlyStopConfig{Enabled: true}
	}
	cfg.TraceEvents = spec.Trace
	return cfg
}

// Submit validates the spec, assigns an ID, and enqueues the run. It
// returns an error for unknown corpora/tasks/modes, invalid engine
// configuration, a full queue, or a shutting-down manager.
func (m *Manager) Submit(spec RunSpec) (*Run, error) {
	spec.normalize()
	if _, err := m.registry.Get(spec.Corpus); err != nil {
		return nil, err
	}
	validTask := false
	for _, n := range workload.Names() {
		if spec.Task == n {
			validTask = true
		}
	}
	if !validTask {
		return nil, fmt.Errorf("server: unknown task %q (want one of %v)", spec.Task, workload.Names())
	}
	switch spec.Mode {
	case "zombie", "scan-random", "scan-sequential", "oracle":
	default:
		return nil, fmt.Errorf("server: unknown mode %q", spec.Mode)
	}
	if spec.K < 1 {
		return nil, fmt.Errorf("server: k must be >= 1, got %d", spec.K)
	}
	// Validate the engine configuration (policy spec included) eagerly so
	// submission errors surface as 400s, not failed runs.
	if _, err := core.New(spec.engineConfig()); err != nil {
		return nil, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	m.nextID++
	run := newRun("r"+strconv.Itoa(m.nextID), spec, time.Now())
	if !m.pool.TrySubmit(func() { m.execute(run) }) {
		m.nextID-- // ID was never exposed
		return nil, fmt.Errorf("%w (%d pending)", ErrQueueFull, m.pool.Cap())
	}
	m.runs[run.ID] = run
	m.order = append(m.order, run.ID)
	if m.metrics != nil {
		m.metrics.RunsStarted.Add(1)
	}
	return run, nil
}

// Get returns the run by ID.
func (m *Manager) Get(id string) (*Run, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	return r, ok
}

// List returns snapshots of all runs in submission order.
func (m *Manager) List() []RunInfo {
	m.mu.Lock()
	ids := make([]string, len(m.order))
	copy(ids, m.order)
	runs := make([]*Run, 0, len(ids))
	for _, id := range ids {
		runs = append(runs, m.runs[id])
	}
	m.mu.Unlock()
	out := make([]RunInfo, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.Info())
	}
	return out
}

// Cancel requests cancellation of the run. The returned info reflects the
// state after the request: cancelled for a queued run, still running for a
// run that has yet to observe its context, terminal states unchanged.
func (m *Manager) Cancel(id string) (RunInfo, error) {
	run, ok := m.Get(id)
	if !ok {
		return RunInfo{}, fmt.Errorf("server: unknown run %q", id)
	}
	_, cancelledNow := run.requestCancel(time.Now())
	if cancelledNow && m.metrics != nil {
		m.metrics.RunsCancelled.Add(1)
	}
	return run.Info(), nil
}

// QueueDepth returns the number of queued-not-yet-started runs.
func (m *Manager) QueueDepth() int { return m.pool.QueueDepth() }

// Running returns the number of runs currently executing.
func (m *Manager) Running() int { return int(m.running.Load()) }

// execute runs one queued run to a terminal state.
func (m *Manager) execute(run *Run) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()
	started := time.Now()
	if !run.start(cancel, started) {
		return // cancelled while queued
	}
	m.running.Add(1)
	defer m.running.Add(-1)

	res, err := m.runEngine(ctx, run)
	finished := time.Now()
	if m.metrics != nil {
		m.metrics.RunWallMillis.Add(finished.Sub(started).Milliseconds())
	}
	switch {
	case err != nil:
		run.finish(StateFailed, nil, err.Error(), finished)
		if m.metrics != nil {
			m.metrics.RunsFailed.Add(1)
		}
	case res.Stop == core.StopCancelled:
		run.finish(StateCancelled, res, "", finished)
		if m.metrics != nil {
			m.metrics.RunsCancelled.Add(1)
			m.metrics.InputsProcessed.Add(int64(res.InputsProcessed))
		}
	default:
		run.finish(StateDone, res, "", finished)
		if m.metrics != nil {
			m.metrics.RunsCompleted.Add(1)
			m.metrics.InputsProcessed.Add(int64(res.InputsProcessed))
		}
	}
}

// runEngine assembles the task, resolves the index through the shared
// cache, and executes the engine loop with the run's live-curve bridge.
func (m *Manager) runEngine(ctx context.Context, run *Run) (*core.RunResult, error) {
	spec := run.spec // immutable after Submit
	store, err := m.registry.Get(spec.Corpus)
	if err != nil {
		return nil, err
	}
	task, grouper, err := workload.Build(spec.Task, store, spec.FeatureVersion, rng.New(spec.Seed).Split("task"))
	if err != nil {
		return nil, err
	}

	cfg := spec.engineConfig()
	cfg.Progress = run.appendPoint
	// Every run shares the server's extraction cache; results are
	// byte-identical either way (see core.Config.Cache), so this is purely
	// a wall-clock win across a session's repeated runs.
	cfg.Cache = m.featCache
	eng, err := core.New(cfg)
	if err != nil {
		return nil, err
	}

	switch spec.Mode {
	case "zombie":
		key := IndexKey{Corpus: spec.Corpus, Strategy: grouper.Name(), K: spec.K, Seed: spec.Seed}
		groups, err := m.cache.Get(ctx, key, func() (*index.Groups, error) {
			return grouper.Group(store, spec.K, rng.New(spec.Seed).Split("index"))
		})
		if err != nil {
			return nil, err
		}
		return eng.RunContext(ctx, task, groups)
	case "scan-random":
		return eng.RunScanContext(ctx, task, true)
	case "scan-sequential":
		return eng.RunScanContext(ctx, task, false)
	case "oracle":
		return eng.RunOracleContext(ctx, task)
	default:
		return nil, fmt.Errorf("server: unknown mode %q", spec.Mode)
	}
}

// Shutdown stops intake and drains: queued and running runs continue to
// completion unless ctx expires first, at which point every in-flight run
// is cancelled and Shutdown waits for the workers to observe it. Returns
// ctx.Err() when the drain was cut short.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.pool.Close()
	}
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.pool.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		m.baseCancel() // cancel in-flight runs; loop notices within a step
		<-drained
		return ctx.Err()
	}
}

// stateCounts summarizes run states (for /healthz).
func (m *Manager) stateCounts() map[string]int {
	counts := map[string]int{}
	for _, info := range m.List() {
		counts[string(info.State)]++
	}
	return counts
}
