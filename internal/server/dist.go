package server

import (
	"net/http"

	"zombie/internal/dist"
	"zombie/internal/otrace"
)

// The /dist/* endpoints make any zombie-serve process a distributed-run
// worker: a coordinator (another zombie-serve, or a test harness) POSTs
// the dist wire types here and this server executes the steps against its
// own registered corpora, extraction cache, and telemetry registry. The
// error convention is the server's usual {"error": "..."} body; the HTTP
// transport surfaces that message verbatim, which is what keeps failures
// byte-identical to the in-process local transport.
//
// Trace context arrives twice on a traced coordinator's requests: as the
// wire field and mirrored in the standard W3C `traceparent` header. The
// wire field wins; the header fallback keeps propagation working for
// coordinators (or middleware) that only speak the header.

// fillTraceparent backfills an empty wire-field traceparent from the
// request's W3C header.
func fillTraceparent(tp *string, r *http.Request) {
	if *tp == "" {
		*tp = r.Header.Get(otrace.Header)
	}
}

func (s *Server) handleDistInit(w http.ResponseWriter, r *http.Request) {
	var req dist.InitRequest
	if !readJSON(w, r, &req) {
		return
	}
	fillTraceparent(&req.Traceparent, r)
	resp, err := s.distWorker.Init(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDistHoldout(w http.ResponseWriter, r *http.Request) {
	var req dist.HoldoutRequest
	if !readJSON(w, r, &req) {
		return
	}
	fillTraceparent(&req.Traceparent, r)
	resp, err := s.distWorker.Holdout(req)
	if err == nil {
		err = resp.EncodeResults()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDistStep(w http.ResponseWriter, r *http.Request) {
	var req dist.StepRequest
	if !readJSON(w, r, &req) {
		return
	}
	fillTraceparent(&req.Traceparent, r)
	resp, err := s.distWorker.Step(req)
	if err == nil {
		err = resp.EncodeResult()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDistStepBatch(w http.ResponseWriter, r *http.Request) {
	var req dist.StepBatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	fillTraceparent(&req.Traceparent, r)
	resp, err := s.distWorker.StepBatch(req)
	if err == nil {
		err = resp.EncodeResults()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDistFinish(w http.ResponseWriter, r *http.Request) {
	var req dist.FinishRequest
	if !readJSON(w, r, &req) {
		return
	}
	fillTraceparent(&req.Traceparent, r)
	resp, err := s.distWorker.Finish(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
