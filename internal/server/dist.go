package server

import (
	"net/http"

	"zombie/internal/dist"
)

// The /dist/* endpoints make any zombie-serve process a distributed-run
// worker: a coordinator (another zombie-serve, or a test harness) POSTs
// the dist wire types here and this server executes the steps against its
// own registered corpora, extraction cache, and telemetry registry. The
// error convention is the server's usual {"error": "..."} body; the HTTP
// transport surfaces that message verbatim, which is what keeps failures
// byte-identical to the in-process local transport.

func (s *Server) handleDistInit(w http.ResponseWriter, r *http.Request) {
	var req dist.InitRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := s.distWorker.Init(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDistHoldout(w http.ResponseWriter, r *http.Request) {
	var req dist.HoldoutRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := s.distWorker.Holdout(req)
	if err == nil {
		err = resp.EncodeResults()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDistStep(w http.ResponseWriter, r *http.Request) {
	var req dist.StepRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := s.distWorker.Step(req)
	if err == nil {
		err = resp.EncodeResult()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDistStepBatch(w http.ResponseWriter, r *http.Request) {
	var req dist.StepBatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := s.distWorker.StepBatch(req)
	if err == nil {
		err = resp.EncodeResults()
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDistFinish(w http.ResponseWriter, r *http.Request) {
	var req dist.FinishRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := s.distWorker.Finish(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
