package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"zombie/internal/bandit"
	"zombie/internal/core"
	"zombie/internal/featcache"
	"zombie/internal/index"
	"zombie/internal/obs"
	"zombie/internal/otrace"
	"zombie/internal/parallel"
	"zombie/internal/recipe"
	"zombie/internal/rng"
	"zombie/internal/workload"
)

// defaultSessionDecay is the warm-start decay a session spec inherits when
// it does not set its own. Half trust is the conservative middle: enough
// seeded pulls to skip most of the re-explore cost, small enough that a
// genuinely different edit can overturn the prior quickly.
const defaultSessionDecay = 0.5

// SessionSpec is the POST /sessions request body: the fixed context every
// recipe version in the workspace runs against.
type SessionSpec struct {
	// Name labels the session (defaults to its ID).
	Name string `json:"name,omitempty"`
	// Corpus and Task fix what the session's runs evaluate against.
	Corpus string `json:"corpus"`
	Task   string `json:"task"`
	// Policy is the bandit policy spec (default eps-greedy:0.1).
	Policy string `json:"policy,omitempty"`
	// K is the index group count (default 32).
	K int `json:"k,omitempty"`
	// Seed drives every run in the session (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Decay is the warm-start decay in [0,1]; omitted means 0.5, explicit
	// 0 disables warm-starting (every version runs cold).
	Decay *float64 `json:"decay,omitempty"`
	// MaxInputs / EvalEvery / EarlyStop / Batch mirror RunSpec.
	MaxInputs int  `json:"max_inputs,omitempty"`
	EvalEvery int  `json:"eval_every,omitempty"`
	EarlyStop bool `json:"early_stop,omitempty"`
	Batch     int  `json:"batch,omitempty"`
	// Spans gives the session one span tracer shared by every version run,
	// served at GET /sessions/{id}/spans: the accumulated tree shows how
	// each version's extraction cost shrinks as the shared cache warms, and
	// the per-part cells attribute what remains to the recipe parts that
	// actually changed. Observational, like RunSpec.Spans.
	Spans bool `json:"spans,omitempty"`
}

func (spec *SessionSpec) normalize() {
	if spec.Policy == "" {
		spec.Policy = "eps-greedy:0.1"
	}
	if spec.K == 0 {
		spec.K = 32
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Decay == nil {
		d := defaultSessionDecay
		spec.Decay = &d
	}
}

// sessionVersion is one submitted recipe version's lifecycle record.
type sessionVersion struct {
	index    int
	state    RunState
	err      string
	spec     *recipe.Spec
	rec      *recipe.Recipe
	result   *recipe.Version // set when done
	started  time.Time
	finished time.Time
}

// Session is a server-side recipe workspace: a fixed (corpus, task,
// policy, k, seed) context plus an ordered history of recipe versions.
// Versions run sequentially — each warm-starts from the previous
// successful one — so the session serializes its own executions while
// different sessions run concurrently on the hub's pool.
type Session struct {
	ID      string
	spec    SessionSpec
	created time.Time

	execMu sync.Mutex // serializes version runs

	mu        sync.Mutex
	workspace *recipe.Session // built lazily by the first run
	versions  []*sessionVersion

	// tracer is the session's span buffer (nil unless spec.Spans), shared
	// by every version run so the tree accumulates the whole workspace's
	// history. Spans are not journaled; a restored session starts empty.
	tracer *otrace.Tracer
}

// SessionInfo is the wire form of a session.
type SessionInfo struct {
	ID          string               `json:"id"`
	Name        string               `json:"name"`
	Corpus      string               `json:"corpus"`
	Task        string               `json:"task"`
	Policy      string               `json:"policy"`
	K           int                  `json:"k"`
	Seed        int64                `json:"seed"`
	Decay       float64              `json:"decay"`
	CreatedUnix int64                `json:"created_unix"`
	Versions    []sessionVersionInfo `json:"versions"`
	// Spans / SpansDropped report the session tracer's buffer (sessions
	// created with "spans": true only); the tree itself is served at
	// GET /sessions/{id}/spans.
	Spans        int   `json:"spans,omitempty"`
	SpansDropped int64 `json:"spans_dropped,omitempty"`
}

// sessionPartInfo is the wire form of one compiled recipe part.
type sessionPartInfo struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// sessionVersionInfo is the wire form of one recipe version: state, the
// compiled recipe, the diff against the previous version, the learning
// curve, and the cache-reuse + warm-start stats the workspace exists to
// surface.
type sessionVersionInfo struct {
	Version     int                   `json:"version"`
	State       RunState              `json:"state"`
	Error       string                `json:"error,omitempty"`
	Recipe      string                `json:"recipe"`
	Fingerprint string                `json:"fingerprint,omitempty"`
	Parts       []sessionPartInfo     `json:"parts"`
	Diff        *recipe.Diff          `json:"diff,omitempty"`
	Curve       []curvePointJSON      `json:"curve,omitempty"`
	Final       float64               `json:"final_quality"`
	Inputs      int                   `json:"inputs_processed"`
	Stop        string                `json:"stop,omitempty"`
	CacheHits   int64                 `json:"cache_hits"`
	CacheMisses int64                 `json:"cache_misses"`
	SharedParts int                   `json:"shared_parts"`
	TotalParts  int                   `json:"total_parts"`
	WarmStart   recipe.WarmStartStats `json:"warm_start"`
	WallMillis  int64                 `json:"wall_ms,omitempty"`
}

// SessionHub owns the server's session workspaces and the pool their
// version runs execute on. It shares the manager's corpus registry, index
// cache and extraction cache — the cache sharing is what makes "edit one
// part, pay for one part" hold across a session's versions.
type SessionHub struct {
	registry  *Registry
	idxCache  *IndexCache
	featCache *featcache.Cache
	obsReg    *obs.Registry
	store     RunStore
	defaults  RunDefaults
	log       *slog.Logger

	pool       *parallel.Pool
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string
	nextID   int
	closed   bool
	// pending holds restored interrupted versions awaiting
	// recoverPending (see Manager.pending).
	pending []pendingVersion
}

// pendingVersion is one restored interrupted version awaiting re-queue.
type pendingVersion struct {
	s *Session
	v *sessionVersion
}

// NewSessionHub starts a hub whose version runs execute on workers
// goroutines over a queue of queueCap pending runs. store receives every
// session lifecycle transition; nil means the in-memory no-op store.
func NewSessionHub(registry *Registry, idxCache *IndexCache, featCache *featcache.Cache, obsReg *obs.Registry, store RunStore, workers, queueCap int, defaults RunDefaults) *SessionHub {
	if store == nil {
		store = NewMemStore()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &SessionHub{
		registry:   registry,
		idxCache:   idxCache,
		featCache:  featCache,
		obsReg:     obsReg,
		store:      store,
		defaults:   defaults,
		log:        obs.NopLogger(),
		pool:       parallel.NewPool(workers, queueCap),
		baseCtx:    ctx,
		baseCancel: cancel,
		sessions:   map[string]*Session{},
	}
}

// SetLogger replaces the hub's lifecycle logger.
func (h *SessionHub) SetLogger(l *slog.Logger) {
	if l != nil {
		h.log = l
	}
}

// engineConfig translates a session spec into the template engine config
// its versions run with (cache and telemetry attached at run time).
func (h *SessionHub) engineConfig(spec SessionSpec) core.Config {
	cfg := core.Config{
		Policy:         bandit.Spec(spec.Policy),
		Seed:           spec.Seed,
		MaxInputs:      spec.MaxInputs,
		EvalEvery:      spec.EvalEvery,
		BatchSize:      spec.Batch,
		MaxFailureFrac: h.defaults.MaxFailureFrac,
		Faults:         h.defaults.Faults,
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = h.defaults.Batch
	}
	if spec.EarlyStop {
		cfg.EarlyStop = core.EarlyStopConfig{Enabled: true}
	}
	return cfg
}

// Create validates the spec and registers an empty session.
func (h *SessionHub) Create(spec SessionSpec) (*Session, error) {
	spec.normalize()
	if _, err := h.registry.Get(spec.Corpus); err != nil {
		return nil, err
	}
	validTask := false
	for _, n := range workload.Names() {
		if spec.Task == n {
			validTask = true
		}
	}
	if !validTask {
		return nil, fmt.Errorf("server: unknown task %q (want one of %v)", spec.Task, workload.Names())
	}
	if spec.K < 1 {
		return nil, fmt.Errorf("server: k must be >= 1, got %d", spec.K)
	}
	if d := *spec.Decay; d != d || d < 0 || d > 1 {
		return nil, fmt.Errorf("server: decay must be in [0,1], got %v", d)
	}
	// Validate the engine template (policy spec included) eagerly so a bad
	// session is a 400 at create time, not a failed first run.
	if _, err := core.New(h.engineConfig(spec)); err != nil {
		return nil, err
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrShuttingDown
	}
	h.nextID++
	s := &Session{ID: "s" + strconv.Itoa(h.nextID), spec: spec, created: time.Now()}
	if s.spec.Name == "" {
		s.spec.Name = s.ID
	}
	if spec.Spans {
		s.tracer = otrace.New(s.ID, otrace.DefaultCapacity)
		observeTracer(h.obsReg, s.tracer)
	}
	h.sessions[s.ID] = s
	h.order = append(h.order, s.ID)
	h.store.SessionCreated(s.ID, h.nextID, s.spec, s.created)
	h.log.Info("session created", "session", s.ID, "corpus", spec.Corpus, "task", spec.Task)
	return s, nil
}

// Get returns the session by ID.
func (h *SessionHub) Get(id string) (*Session, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sessions[id]
	return s, ok
}

// List returns session snapshots in creation order.
func (h *SessionHub) List() []SessionInfo {
	h.mu.Lock()
	ids := make([]string, len(h.order))
	copy(ids, h.order)
	sessions := make([]*Session, 0, len(ids))
	for _, id := range ids {
		sessions = append(sessions, h.sessions[id])
	}
	h.mu.Unlock()
	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.Info())
	}
	return out
}

// Submit validates and compiles the recipe spec, then enqueues it as the
// session's next version.
func (h *SessionHub) Submit(s *Session, spec *recipe.Spec) (int, error) {
	rec, err := spec.Recipe()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	v := &sessionVersion{index: len(s.versions) + 1, state: StateQueued, spec: spec, rec: rec}
	s.versions = append(s.versions, v)
	s.mu.Unlock()
	// Journal the submission before the enqueue (a worker may start the
	// version immediately); a failed enqueue journals the failure so the
	// version's terminal state survives a restart like any other.
	h.store.VersionSubmitted(s.ID, v.index, spec)

	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return 0, ErrShuttingDown
	}
	if !h.pool.TrySubmit(func() { h.execute(s, v) }) {
		s.mu.Lock()
		v.state = StateFailed
		v.err = ErrQueueFull.Error()
		v.finished = time.Now()
		at := v.finished
		s.mu.Unlock()
		h.store.VersionFinished(s.ID, v.index, StateFailed, ErrQueueFull.Error(), at, nil)
		return 0, fmt.Errorf("%w (%d pending)", ErrQueueFull, h.pool.Cap())
	}
	return v.index, nil
}

// execute runs one queued version to a terminal state. The session's
// execMu guarantees versions run one at a time in submission order (the
// hub pool is FIFO), which the warm-start chain depends on.
func (h *SessionHub) execute(s *Session, v *sessionVersion) {
	s.execMu.Lock()
	defer s.execMu.Unlock()

	var ctx context.Context
	var cancel context.CancelFunc
	if h.defaults.Timeout > 0 {
		ctx, cancel = context.WithTimeout(h.baseCtx, h.defaults.Timeout)
	} else {
		ctx, cancel = context.WithCancel(h.baseCtx)
	}
	defer cancel()

	s.mu.Lock()
	v.state = StateRunning
	v.started = time.Now()
	started := v.started
	ws := s.workspace
	s.mu.Unlock()
	h.store.VersionStarted(s.ID, v.index, started)

	if ws == nil {
		built, err := h.buildWorkspace(ctx, s)
		if err != nil {
			h.finishVersion(s, v, nil, err)
			return
		}
		s.mu.Lock()
		s.workspace = built
		ws = built
		s.mu.Unlock()
	}

	res, err := ws.Submit(ctx, v.rec)
	h.finishVersion(s, v, res, err)
}

// finishVersion records a version's terminal state.
func (h *SessionHub) finishVersion(s *Session, v *sessionVersion, res *recipe.Version, err error) {
	s.mu.Lock()
	v.finished = time.Now()
	if err != nil {
		v.state = StateFailed
		v.err = err.Error()
	} else {
		v.state = StateDone
		v.result = res
	}
	state, errMsg, at := v.state, v.err, v.finished
	s.mu.Unlock()
	var rec *versionResult
	if state == StateDone {
		rec = versionRecord(res)
	}
	h.store.VersionFinished(s.ID, v.index, state, errMsg, at, rec)
	if err != nil {
		h.log.Error("session version finished", "session", s.ID, "version", v.index, "error", err.Error())
		return
	}
	h.log.Info("session version finished", "session", s.ID, "version", v.index,
		"quality", res.Run.FinalQuality, "inputs", res.Run.InputsProcessed,
		"cache_hits", res.Run.CacheHits, "warm_start", res.WarmStart.Applied)
}

// buildWorkspace assembles the session's task, index groups (through the
// shared singleflight cache) and recipe workspace. It runs once, under the
// session's execMu, when the first version executes.
func (h *SessionHub) buildWorkspace(ctx context.Context, s *Session) (*recipe.Session, error) {
	spec := s.spec
	store, err := h.registry.Get(spec.Corpus)
	if err != nil {
		return nil, err
	}
	task, grouper, err := workload.Build(spec.Task, store, 0, rng.New(spec.Seed).Split("task"))
	if err != nil {
		return nil, err
	}
	key := IndexKey{Corpus: spec.Corpus, Strategy: grouper.Name(), K: spec.K, Seed: spec.Seed}
	groups, err := h.idxCache.Get(ctx, key, func() (*index.Groups, error) {
		return grouper.Group(store, spec.K, rng.New(spec.Seed).Split("index"))
	})
	if err != nil {
		return nil, err
	}
	cfg := h.engineConfig(spec)
	cfg.Cache = h.featCache
	cfg.Obs = h.obsReg
	// Every version's engine shares the session tracer (nil unless the
	// session asked for spans), so one tree spans the whole edit history.
	cfg.Tracer = s.tracer
	ws, err := recipe.NewSession(spec.Name, task, groups, recipe.Config{Engine: cfg, Decay: *spec.Decay})
	if err != nil {
		return nil, err
	}
	// Re-seed the workspace with the session's restored done versions so
	// the next submission diffs against — and warm-starts from the
	// persisted arm snapshots of — pre-restart history, exactly as if the
	// process had never died.
	s.mu.Lock()
	var done []*sessionVersion
	for _, v := range s.versions {
		if v.state == StateDone && v.result != nil {
			done = append(done, v)
		}
	}
	s.mu.Unlock()
	for _, v := range done {
		if _, err := ws.Restore(v.result.Recipe, v.result.Run, v.result.WarmStart); err != nil {
			h.log.Warn("session version restore skipped", "session", s.ID,
				"version", v.index, "error", err.Error())
		}
	}
	return ws, nil
}

// Info snapshots the session for the wire.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := SessionInfo{
		ID:          s.ID,
		Name:        s.spec.Name,
		Corpus:      s.spec.Corpus,
		Task:        s.spec.Task,
		Policy:      s.spec.Policy,
		K:           s.spec.K,
		Seed:        s.spec.Seed,
		Decay:       *s.spec.Decay,
		CreatedUnix: s.created.Unix(),
		Versions:    make([]sessionVersionInfo, 0, len(s.versions)),
	}
	for _, v := range s.versions {
		vi := sessionVersionInfo{
			Version: v.index,
			State:   v.state,
			Error:   v.err,
			Recipe:  v.rec.Name(),
		}
		for _, p := range v.rec.Parts() {
			ver := p.Version
			if ver == 0 {
				ver = 1
			}
			vi.Parts = append(vi.Parts, sessionPartInfo{
				Name: p.Name, Kind: p.Kind, Version: ver,
				Fingerprint: v.rec.PartFingerprints()[p.Name],
			})
		}
		if v.result != nil {
			run := v.result.Run
			vi.Fingerprint = v.rec.Fingerprint()
			d := v.result.Diff
			vi.Diff = &d
			vi.Curve = make([]curvePointJSON, len(run.Curve))
			for i, p := range run.Curve {
				vi.Curve[i] = toCurveJSON(p)
			}
			vi.Final = run.FinalQuality
			vi.Inputs = run.InputsProcessed
			vi.Stop = run.Stop.String()
			vi.CacheHits = run.CacheHits
			vi.CacheMisses = run.CacheMisses
			vi.SharedParts = d.SharedParts
			vi.TotalParts = d.TotalParts
			vi.WarmStart = v.result.WarmStart
			if !v.finished.IsZero() && !v.started.IsZero() {
				vi.WallMillis = v.finished.Sub(v.started).Milliseconds()
			}
		}
		info.Versions = append(info.Versions, vi)
	}
	if s.tracer != nil {
		info.Spans = s.tracer.Len()
		info.SpansDropped = s.tracer.Dropped()
	}
	return info
}

// SpanSnapshot returns the session tracer's recorded spans; ok is false
// for sessions created without "spans": true.
func (s *Session) SpanSnapshot() (spans []otrace.Span, dropped int64, ok bool) {
	if s.tracer == nil {
		return nil, 0, false
	}
	spans, dropped = s.tracer.Snapshot()
	return spans, dropped, true
}

// Tracer returns the session's span tracer (nil unless spec.Spans).
func (s *Session) Tracer() *otrace.Tracer { return s.tracer }

// restore rebuilds the hub's session table from recovered state:
// terminal versions come back with their curves, diffs, and warm-start
// arms; interrupted versions are reset to queued and parked until
// recoverPending re-queues them. Must run before the server accepts
// requests — it assumes an empty session table.
func (h *SessionHub) restore(st *persistState) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st.NextSessionID > h.nextID {
		h.nextID = st.NextSessionID
	}
	for _, id := range st.SessionOrder {
		ps := st.Sessions[id]
		if ps == nil {
			continue
		}
		s := &Session{ID: id, spec: ps.Spec, created: time.Unix(0, ps.Created)}
		if s.spec.Decay == nil {
			d := defaultSessionDecay
			s.spec.Decay = &d
		}
		if s.spec.Spans {
			// Same policy as runs: spans are not journaled, the tracer
			// starts empty and refills as new versions execute.
			s.tracer = otrace.New(id, otrace.DefaultCapacity)
			observeTracer(h.obsReg, s.tracer)
		}
		for _, pv := range ps.Versions {
			v := restoreVersion(pv)
			if v == nil {
				h.log.Warn("session version dropped on restore: recipe no longer compiles",
					"session", id, "version", pv.Index)
				continue
			}
			s.versions = append(s.versions, v)
			if !v.state.terminal() {
				v.state = StateQueued
				v.started = time.Time{}
				h.pending = append(h.pending, pendingVersion{s: s, v: v})
			}
		}
		h.sessions[id] = s
		h.order = append(h.order, id)
	}
}

// restoreVersion rebuilds one version from its persisted record,
// recompiling the recipe from its spec. nil when the recipe cannot be
// recompiled (it compiled when journaled, so this means a code change
// between processes — the version is dropped rather than served broken).
func restoreVersion(pv *persistVersion) *sessionVersion {
	if pv.Recipe == nil {
		return nil
	}
	rec, err := pv.Recipe.Recipe()
	if err != nil {
		return nil
	}
	v := &sessionVersion{index: pv.Index, state: pv.State, err: pv.Err, spec: pv.Recipe, rec: rec}
	if pv.Started != 0 {
		v.started = time.Unix(0, pv.Started)
	}
	if pv.Finished != 0 {
		v.finished = time.Unix(0, pv.Finished)
	}
	if pv.Result != nil {
		res := pv.Result
		var d recipe.Diff
		if res.Diff != nil {
			d = *res.Diff
		}
		v.result = &recipe.Version{
			Index:  pv.Index,
			Recipe: rec,
			Diff:   d,
			Run: &core.RunResult{
				Curve:           append([]core.CurvePoint(nil), res.Curve...),
				FinalQuality:    res.Final,
				InputsProcessed: res.Inputs,
				Stop:            core.StopReason(res.Stop),
				CacheHits:       res.CacheHits,
				CacheMisses:     res.CacheMisses,
				Arms:            append([]bandit.ArmSnapshot(nil), res.Arms...),
			},
			WarmStart: res.WarmStart,
		}
	}
	return v
}

// recoverPending re-queues every restored interrupted version for
// deterministic re-execution through the normal execute path (execMu
// keeps per-session ordering). Call after corpora are registered.
// Returns the number re-queued.
func (h *SessionHub) recoverPending() int {
	h.mu.Lock()
	pending := h.pending
	h.pending = nil
	h.mu.Unlock()

	recovered := 0
	for _, p := range pending {
		p := p
		if !h.pool.TrySubmit(func() { h.execute(p.s, p.v) }) {
			now := time.Now()
			p.s.mu.Lock()
			p.v.state = StateFailed
			p.v.err = "recovery re-queue failed: queue full"
			p.v.finished = now
			p.s.mu.Unlock()
			h.store.VersionFinished(p.s.ID, p.v.index, StateFailed, p.v.err, now, nil)
			h.log.Error("session version recovery failed", "session", p.s.ID,
				"version", p.v.index, "error", "queue full")
			continue
		}
		recovered++
		h.log.Info("session version recovered", "session", p.s.ID, "version", p.v.index)
	}
	return recovered
}

// Shutdown stops intake and drains in-flight version runs (see
// Manager.Shutdown for the contract).
func (h *SessionHub) Shutdown(ctx context.Context) error {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		h.pool.Close()
	}
	h.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		h.pool.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		h.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// --- HTTP handlers ---

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var spec SessionSpec
	if !readJSON(w, r, &spec) {
		return
	}
	sess, err := s.sessions.Create(spec)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrShuttingDown) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("Location", "/sessions/"+sess.ID)
	writeJSON(w, http.StatusCreated, sess.Info())
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sessions.List())
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleSessionRun(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	var spec recipe.Spec
	if !readJSON(w, r, &spec) {
		return
	}
	version, err := s.sessions.Submit(sess, &spec)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrShuttingDown) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"session": sess.ID,
		"version": version,
		"state":   StateQueued,
	})
}
