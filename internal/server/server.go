// Package server is zombie's concurrent HTTP service layer: a JSON-over-
// HTTP API (stdlib net/http only) that manages corpora, index builds, and
// engine runs as named resources. Runs execute asynchronously on a bounded
// worker pool with per-run status, cancellation, and live learning-curve
// streaming over Server-Sent Events; index builds are deduplicated through
// a singleflight cache so concurrent runs over the same (corpus, strategy,
// k, seed) share one build.
//
//	POST   /corpora              register a JSONL corpus {name, path, stream}
//	GET    /corpora              list corpora
//	GET    /corpora/{name}       one corpus
//	POST   /runs                 submit a run (RunSpec) -> 202 + RunInfo
//	GET    /runs                 list runs
//	GET    /runs/{id}            run status
//	DELETE /runs/{id}            cancel (queued or running)
//	GET    /runs/{id}/curve      learning curve; ?follow=1 streams SSE
//	                             ("point" + "trace" frames, then "status")
//	GET    /runs/{id}/events     step-level trace as CSV (spec.trace runs)
//	GET    /runs/{id}/trace      trace-ring snapshot as JSON, live mid-run
//	GET    /runs/{id}/spans      span tree + cost attribution (spec.spans
//	                             runs); ?format=chrome emits Chrome
//	                             trace-event JSON for about://tracing
//	GET    /spans                process-level infrastructure spans (cache
//	                             disk IO, journal appends, snapshots)
//	POST   /sessions             open a recipe workspace (SessionSpec)
//	GET    /sessions             list sessions
//	GET    /sessions/{id}        session detail: version history with
//	                             per-version curves, diffs, cache-reuse
//	                             and warm-start stats
//	POST   /sessions/{id}/runs   submit a recipe version (recipe.Spec
//	                             JSON) -> 202; versions run sequentially,
//	                             each warm-starting from the previous
//	POST   /dist/{init,holdout,step,finish}
//	                             distributed-run worker endpoints: a
//	                             coordinator drives this server's corpus
//	                             shards through them (internal/dist)
//	DELETE /cache                invalidate the shared extraction cache
//	GET    /healthz              liveness + build info + run-state counts
//	GET    /metrics              expvar-style counter map (extraction-cache
//	                             traffic included); Prometheus text format
//	                             via ?format=prom or Accept: text/plain
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"zombie/internal/buildinfo"
	"zombie/internal/core"
	"zombie/internal/dist"
	"zombie/internal/fault"
	"zombie/internal/featcache"
	"zombie/internal/featurepipe"
	"zombie/internal/obs"
	"zombie/internal/otrace"
	"zombie/internal/trace"
)

// Config sizes the server.
type Config struct {
	// Workers is the run worker-pool size (default 2).
	Workers int
	// QueueCap bounds queued-not-yet-running runs (default 64); a full
	// queue rejects submissions with 503.
	QueueCap int
	// CacheDir, when non-empty, backs the shared extraction cache with a
	// disk segment store in that directory, so cached extractions survive
	// server restarts. Empty keeps the cache memory-only.
	CacheDir string
	// StateDir, when non-empty, makes the control plane durable: every
	// run and session lifecycle transition is journaled there
	// (write-ahead log + periodic snapshots), and a restarted server
	// replays the directory, restores run/session history, and re-queues
	// interrupted runs for deterministic re-execution — their curves come
	// out byte-identical to uninterrupted runs. Empty keeps run state
	// in-memory only (lost on restart). Embedders must call Recover once
	// the runs' corpora are registered.
	StateDir string
	// CacheMemMB is the extraction cache's in-memory budget in MiB
	// (default 64).
	CacheMemMB int
	// RunTimeout is the default per-run wall-clock deadline (0 = none); a
	// run's own timeout_ms overrides it. Runs over the deadline end as
	// cancelled-with-partials, marked timed_out.
	RunTimeout time.Duration
	// MaxFailureFrac is the default failure budget for runs that do not set
	// max_failures (0 = the engine's default of 0.5).
	MaxFailureFrac float64
	// Batch is the default engine batch size for runs that do not set
	// batch (0 = the engine's default of 1, the classic per-step loop).
	Batch int
	// Faults injects deterministic failures into every run without its own
	// faults spec — chaos deployments only; normally nil. It is also passed
	// to the extraction cache, covering the cache.read/cache.write sites.
	// Distributed runs are the exception: their workers rebuild injectors
	// from the run's own faults spec string, so this default does not reach
	// them.
	Faults *fault.Injector
	// DistWorkers lists worker base URLs (other zombie-serve processes
	// serving /dist/*) that sharded runs execute over by default: a run
	// submitted with shards=N and no dist_workers of its own uses the first
	// N of these over HTTP. Empty means sharded runs execute on in-process
	// workers.
	DistWorkers []string
	// Logger receives structured lifecycle logs (run start/finish, cache
	// invalidations). Nil discards them.
	Logger *slog.Logger
}

// Server wires the registry, index cache, extraction cache, run manager,
// metrics and telemetry registry behind one http.Handler.
type Server struct {
	registry   *Registry
	cache      *IndexCache
	featCache  *featcache.Cache
	manager    *Manager
	sessions   *SessionHub
	distWorker *dist.Worker
	store      RunStore
	metrics    *Metrics
	obs        *obs.Registry
	// procTracer records process-level infrastructure spans no single run
	// owns: extraction-cache disk IO and demotion, run-journal appends,
	// snapshot rotations, and the startup recovery replay. Served at
	// GET /spans.
	procTracer *otrace.Tracer
	log        *slog.Logger
	// httpSeconds times every request the handler serves (SSE streams
	// included, observed at disconnect).
	httpSeconds *obs.Histogram
	mux         *http.ServeMux
	start       time.Time
}

// New assembles a server and starts its worker pool. It fails only when
// the extraction cache's disk store cannot be opened.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 64
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	reg := obs.NewRegistry()
	metrics := NewMetrics(reg)
	registry := NewRegistry()
	cache := NewIndexCache(metrics)
	procTracer := otrace.New("process", otrace.DefaultCapacity)
	metrics.ObserveTracer(procTracer)
	// One extraction cache shared by every run the server executes — the
	// server is the long-lived process an engineering session talks to, so
	// cross-run reuse is the norm, not the exception.
	featCache, err := featcache.Open(featcache.Config{
		MaxBytes: int64(cfg.CacheMemMB) << 20,
		Dir:      cfg.CacheDir,
		Faults:   cfg.Faults,
		Tracer:   procTracer,
	}, featurepipe.ResultCodec{})
	if err != nil {
		return nil, err
	}
	registerFeatCacheMetrics(reg, featCache)
	// The durable store opens (and replays) before the manager and hub
	// exist, so their tables can be restored as part of construction.
	var store RunStore = NewMemStore()
	var recovered *persistState
	if cfg.StateDir != "" {
		ds, rec, err := OpenDurableStore(cfg.StateDir, metrics, cfg.Faults, cfg.Logger, procTracer)
		if err != nil {
			featCache.Close() //nolint:errcheck // already failing
			return nil, err
		}
		store = ds
		recovered = rec
		reg.GaugeFunc("journal_bytes", "Run journal size in bytes (since the last snapshot).",
			func() int64 { return ds.JournalBytes() })
		reg.GaugeFunc("journal_records", "Run journal records since the last snapshot.",
			func() int64 { return int64(ds.JournalRecords()) })
		reg.GaugeFunc("journal_demoted", "1 when the durable run store has been demoted to memory-only after journal errors.",
			func() int64 {
				if ds.Demoted() {
					return 1
				}
				return 0
			})
	}
	defaults := RunDefaults{
		Timeout:        cfg.RunTimeout,
		Faults:         cfg.Faults,
		MaxFailureFrac: cfg.MaxFailureFrac,
		Batch:          cfg.Batch,
		DistWorkers:    cfg.DistWorkers,
	}
	s := &Server{
		registry:  registry,
		cache:     cache,
		featCache: featCache,
		manager:   NewManager(registry, cache, featCache, metrics, store, cfg.Workers, cfg.QueueCap, defaults),
		// The session hub shares the manager's corpus registry, index cache
		// and extraction cache: a session's whole point is reusing what
		// earlier versions computed.
		sessions: NewSessionHub(registry, cache, featCache, reg, store, cfg.Workers, cfg.QueueCap, defaults),
		store:    store,
		// The dist worker shares the server's corpus registry, extraction
		// cache, and telemetry registry: serving a coordinator's steps is
		// just another way of running the inner loop over this process's
		// corpora.
		distWorker: dist.NewWorker(registry.Get, featCache, reg),
		metrics:    metrics,
		obs:        reg,
		procTracer: procTracer,
		log:        cfg.Logger,
		httpSeconds: reg.Histogram("zombie_http_request_seconds",
			"HTTP request service time (streaming requests observe at disconnect).",
			obs.LatencyBuckets),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.manager.SetLogger(cfg.Logger)
	s.sessions.SetLogger(cfg.Logger)
	if recovered != nil {
		// History is visible immediately; interrupted work stays parked
		// until Recover re-queues it (the corpora it references are
		// registered by the embedder after New returns).
		s.manager.restore(recovered)
		s.sessions.restore(recovered)
	}
	// Gauges owned by other structures, sampled at exposition time.
	reg.GaugeFunc("queue_depth", "Runs queued but not yet running.",
		func() int64 { return int64(s.manager.QueueDepth()) })
	reg.GaugeFunc("runs_running", "Runs currently executing.",
		func() int64 { return int64(s.manager.Running()) })
	reg.GaugeFunc("corpora", "Registered corpora.",
		func() int64 { return int64(s.registry.Len()) })
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /corpora", s.handleCorpusAdd)
	s.mux.HandleFunc("GET /corpora", s.handleCorpusList)
	s.mux.HandleFunc("GET /corpora/{name}", s.handleCorpusGet)
	s.mux.HandleFunc("POST /runs", s.handleRunSubmit)
	s.mux.HandleFunc("GET /runs", s.handleRunList)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRunGet)
	s.mux.HandleFunc("DELETE /runs/{id}", s.handleRunCancel)
	s.mux.HandleFunc("GET /runs/{id}/curve", s.handleRunCurve)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleRunEvents)
	s.mux.HandleFunc("GET /runs/{id}/trace", s.handleRunTrace)
	s.mux.HandleFunc("GET /runs/{id}/spans", s.handleRunSpans)
	s.mux.HandleFunc("GET /spans", s.handleProcessSpans)
	s.mux.HandleFunc("POST /sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /sessions", s.handleSessionList)
	s.mux.HandleFunc("GET /sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("POST /sessions/{id}/runs", s.handleSessionRun)
	s.mux.HandleFunc("GET /sessions/{id}/spans", s.handleSessionSpans)
	s.mux.HandleFunc("DELETE /cache", s.handleCacheInvalidate)
	s.mux.HandleFunc("POST /dist/init", s.handleDistInit)
	s.mux.HandleFunc("POST /dist/holdout", s.handleDistHoldout)
	s.mux.HandleFunc("POST /dist/step", s.handleDistStep)
	s.mux.HandleFunc("POST /dist/step-batch", s.handleDistStepBatch)
	s.mux.HandleFunc("POST /dist/finish", s.handleDistFinish)
	return s, nil
}

// Handler returns the routed handler, wrapped with request timing.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t := obs.StartTimer(s.httpSeconds)
		// The mux's writer is passed through untouched so streaming
		// handlers keep their http.Flusher.
		s.mux.ServeHTTP(w, r)
		t.Stop()
	})
}

// Obs returns the server's telemetry registry (tests and embedders).
func (s *Server) Obs() *obs.Registry { return s.obs }

// Registry exposes the corpus registry so embedders (cmd/zombie-serve)
// can preregister corpora from flags.
func (s *Server) Registry() *Registry { return s.registry }

// Manager exposes the run manager (tests and embedders).
func (s *Server) Manager() *Manager { return s.manager }

// Recover re-queues runs and session versions that the state directory
// shows were interrupted (queued or running) when the previous process
// died. They re-execute from scratch through the normal worker pool; the
// engine's determinism makes the recovered curves byte-identical to
// uninterrupted runs. Call it once after registering the corpora the
// restored state references — recovering earlier would fail every run
// with "unknown corpus". A server without a StateDir recovers nothing.
func (s *Server) Recover() (runs, versions int) {
	runs = s.manager.recoverPending()
	versions = s.sessions.recoverPending()
	if versions > 0 && s.metrics != nil {
		s.metrics.VersionsRecovered.Add(int64(versions))
	}
	if runs > 0 || versions > 0 {
		s.log.Info("control-plane state recovered", "runs_requeued", runs,
			"versions_requeued", versions)
	}
	return runs, versions
}

// Shutdown drains the run manager (see Manager.Shutdown), then closes any
// streamed corpora and the extraction cache (flushing its disk index).
// The HTTP listener should already be stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.manager.Shutdown(ctx)
	if serr := s.sessions.Shutdown(ctx); err == nil {
		err = serr
	}
	if cerr := s.registry.Close(); err == nil {
		err = cerr
	}
	if cerr := s.featCache.Close(); err == nil {
		err = cerr
	}
	// The store closes last, after the drained runs have journaled their
	// terminal records; its close takes a final snapshot so the next
	// startup replays nothing.
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- JSON plumbing ---

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// --- health + metrics ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	version, commit := buildinfo.Resolve()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"version":        version,
		"commit":         commit,
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
		"runs":           s.manager.stateCounts(),
	})
}

// handleMetrics serves the registry in the format the client asked for:
// the flat JSON map by default (the stable contract since PR 1 — existing
// keys never change name or meaning, new keys are only ever added), or
// the Prometheus text format via ?format=prom / ?format=json overrides or
// an Accept header naming text/plain.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "prom":
		s.writePromMetrics(w)
	case "json":
		writeJSON(w, http.StatusOK, s.obs.FlatSnapshot())
	case "":
		if acceptsPrometheus(r.Header.Get("Accept")) {
			s.writePromMetrics(w)
			return
		}
		writeJSON(w, http.StatusOK, s.obs.FlatSnapshot())
	default:
		writeError(w, http.StatusBadRequest, "unknown metrics format %q (want prom or json)", format)
	}
}

func (s *Server) writePromMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	w.WriteHeader(http.StatusOK)
	s.obs.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
}

// acceptsPrometheus reports whether the Accept header names the text
// exposition format. JSON stays the default: only an explicit text/plain
// (or the versioned Prometheus media type a scraper sends) flips formats,
// a bare */* does not.
func acceptsPrometheus(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mediaType) == "text/plain" {
			return true
		}
	}
	return false
}

// handleCacheInvalidate drops every cached extraction, memory and disk —
// the escape hatch for the one situation the fingerprint cannot see:
// feature code whose behavior changed without any parameter changing
// (a code edit during development).
func (s *Server) handleCacheInvalidate(w http.ResponseWriter, r *http.Request) {
	if err := s.featCache.Invalidate(); err != nil {
		writeError(w, http.StatusInternalServerError, "cache invalidation failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "invalidated",
		"cache":  s.featCache.Stats(),
	})
}

// --- corpora ---

type corpusAddRequest struct {
	Name   string `json:"name"`
	Path   string `json:"path"`
	Stream bool   `json:"stream,omitempty"`
}

func (s *Server) handleCorpusAdd(w http.ResponseWriter, r *http.Request) {
	var req corpusAddRequest
	if !readJSON(w, r, &req) {
		return
	}
	info, err := s.registry.Add(req.Name, req.Path, req.Stream)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleCorpusList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.registry.List())
}

func (s *Server) handleCorpusGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.registry.Info(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown corpus %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// --- runs ---

func (s *Server) handleRunSubmit(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	if !readJSON(w, r, &spec) {
		return
	}
	run, err := s.manager.Submit(spec)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrShuttingDown) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("Location", "/runs/"+run.ID)
	writeJSON(w, http.StatusAccepted, run.Info())
}

func (s *Server) handleRunList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.List())
}

func (s *Server) getRun(w http.ResponseWriter, r *http.Request) (*Run, bool) {
	run, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
	}
	return run, ok
}

func (s *Server) handleRunGet(w http.ResponseWriter, r *http.Request) {
	run, ok := s.getRun(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, run.Info())
}

func (s *Server) handleRunCancel(w http.ResponseWriter, r *http.Request) {
	run, ok := s.getRun(w, r)
	if !ok {
		return
	}
	info, err := s.manager.Cancel(run.ID)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// curvePointJSON is the wire form of one learning-curve sample.
type curvePointJSON struct {
	Inputs     int     `json:"inputs"`
	Quality    float64 `json:"quality"`
	SimSeconds float64 `json:"sim_seconds"`
}

func toCurveJSON(p core.CurvePoint) curvePointJSON {
	return curvePointJSON{Inputs: p.Inputs, Quality: p.Quality, SimSeconds: p.SimTime.Seconds()}
}

func (s *Server) handleRunCurve(w http.ResponseWriter, r *http.Request) {
	run, ok := s.getRun(w, r)
	if !ok {
		return
	}
	if follow, _ := strconv.ParseBool(r.URL.Query().Get("follow")); follow {
		s.streamCurve(w, r, run)
		return
	}
	points := run.Curve()
	out := make([]curvePointJSON, len(points))
	for i, p := range points {
		out[i] = toCurveJSON(p)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":    run.ID,
		"state": run.State(),
		"curve": out,
	})
}

// traceEventJSON is the wire form of one step event, used by both the
// trace-ring snapshot endpoint and the SSE "trace" frames.
type traceEventJSON struct {
	Step        int     `json:"step"`
	InputIdx    int     `json:"input"`
	Arm         int     `json:"arm"`
	Reward      float64 `json:"reward"`
	Produced    bool    `json:"produced"`
	Useful      bool    `json:"useful"`
	Err         string  `json:"err,omitempty"`
	SimMillis   float64 `json:"sim_ms"`
	CacheHit    bool    `json:"cache_hit"`
	Quarantined bool    `json:"quarantined"`
	// Dropped is the trace ring's eviction count as of this frame (SSE
	// frames only): non-zero means the ring wrapped and a late-joining
	// snapshot will not see the oldest steps.
	Dropped int64 `json:"dropped,omitempty"`
}

func toTraceJSON(e trace.Event) traceEventJSON {
	return traceEventJSON{
		Step: e.Step, InputIdx: e.InputIdx, Arm: e.Arm, Reward: e.Reward,
		Produced: e.Produced, Useful: e.Useful, Err: e.Err,
		SimMillis:   float64(e.SimTime) / float64(time.Millisecond),
		CacheHit:    e.CacheHit,
		Quarantined: e.Quarantined,
	}
}

// handleRunTrace serves a snapshot of the run's trace ring as JSON. It
// works mid-run — that is the point: the CSV /events endpoint needs the
// terminal result, the ring shows what a live run is doing right now.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	run, ok := s.getRun(w, r)
	if !ok {
		return
	}
	events, dropped, traced := run.TraceSnapshot()
	if !traced {
		writeError(w, http.StatusNotFound, "run %s is not traced (submit with \"trace\": true)", run.ID)
		return
	}
	out := make([]traceEventJSON, len(events))
	for i, e := range events {
		out[i] = toTraceJSON(e)
	}
	body := map[string]any{
		"id":      run.ID,
		"state":   run.State(),
		"dropped": dropped,
		"events":  out,
	}
	if res := run.Result(); res != nil {
		body["phase_ms"] = res.Phases.Millis()
	}
	writeJSON(w, http.StatusOK, body)
}

// streamCurve serves the run's live stream as Server-Sent Events: one
// "point" event per curve sample (history first, then live) and — for
// traced runs — one "trace" event per step, then a single "status" event
// carrying the terminal RunInfo, then EOF. A client that connects after
// completion gets the full point history and the status event immediately.
func (s *Server) streamCurve(w http.ResponseWriter, r *http.Request, run *Run) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	history, live, unsubscribe := run.Subscribe()
	defer unsubscribe()

	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	for _, p := range history {
		if !send("point", toCurveJSON(p)) {
			return
		}
	}
	if live != nil {
	follow:
		for {
			// The run's finish closes live after any buffered frames, and a
			// closed buffered channel drains before reporting !open, so no
			// separate Done case is needed.
			select {
			case msg, open := <-live:
				if !open {
					break follow
				}
				switch {
				case msg.point != nil:
					if !send("point", toCurveJSON(*msg.point)) {
						return
					}
				case msg.event != nil:
					frame := toTraceJSON(*msg.event)
					frame.Dropped = msg.dropped
					if !send("trace", frame) {
						return
					}
				}
			case <-r.Context().Done():
				return
			}
		}
	}
	send("status", run.Info())
}

func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := s.getRun(w, r)
	if !ok {
		return
	}
	res := run.Result()
	if res == nil {
		if run.State().terminal() {
			// A restored run: its summary and curve survived the restart,
			// but the step-level event log is deliberately not journaled.
			writeError(w, http.StatusGone, "run %s predates this server process; its step trace was not persisted", run.ID)
			return
		}
		writeError(w, http.StatusConflict, "run %s has no result yet (state %s)", run.ID, run.State())
		return
	}
	if res.Events == nil {
		writeError(w, http.StatusNotFound, "run %s was not traced (submit with \"trace\": true)", run.ID)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	res.Events.WriteCSV(w) //nolint:errcheck // client gone; nothing to do
}
