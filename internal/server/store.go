package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"zombie/internal/bandit"
	"zombie/internal/core"
	"zombie/internal/fault"
	"zombie/internal/obs"
	"zombie/internal/otrace"
	"zombie/internal/recipe"
	"zombie/internal/runstore"
)

// RunStore receives every control-plane lifecycle transition: run
// submission through terminal state, session creation, and recipe-version
// history. Implementations must be safe for concurrent use and must never
// fail the caller — durability problems are absorbed (and eventually
// demote the store to memory-only), because losing a journal must never
// lose a run.
//
// The memory implementation (NewMemStore) discards everything, matching
// the pre-durability server exactly. The durable implementation
// (OpenDurableStore) journals each transition through an
// internal/runstore write-ahead log with periodic snapshots, so a restart
// replays the control plane back into existence.
type RunStore interface {
	// RunSubmitted records a validated, enqueued run. num is the numeric
	// suffix of the run's ID, persisted so IDs stay monotonic across
	// restarts.
	RunSubmitted(id string, num int, spec RunSpec, created time.Time)
	// RunDiscarded compensates a RunSubmitted whose enqueue failed (queue
	// full): the run never existed.
	RunDiscarded(id string)
	// RunStarted records the queued → running transition. Recovery treats
	// it as the start of a fresh curve: every engine start emits the
	// complete curve, so any previously journaled points are stale.
	RunStarted(id string, at time.Time)
	// RunProgressed records one live learning-curve point.
	RunProgressed(id string, p core.CurvePoint)
	// RunQuarantined records one input quarantined by the run.
	RunQuarantined(id string)
	// RunRequeued records that recovery re-queued an interrupted run for
	// deterministic re-execution.
	RunRequeued(id string)
	// RunFinished records a terminal transition with the run's summary.
	RunFinished(id string, at time.Time, info RunInfo)

	// SessionCreated records a new session workspace (num as for runs).
	SessionCreated(id string, num int, spec SessionSpec, created time.Time)
	// VersionSubmitted records a compiled recipe version entering the
	// session's history.
	VersionSubmitted(sessionID string, index int, spec *recipe.Spec)
	// VersionStarted records a version's queued → running transition.
	VersionStarted(sessionID string, index int, at time.Time)
	// VersionFinished records a version's terminal state; res carries the
	// curve and warm-start arms for done versions, nil for failed ones.
	VersionFinished(sessionID string, index int, state RunState, errMsg string, at time.Time, res *versionResult)

	// Close flushes and releases the store.
	Close() error
}

// memStore is the non-durable RunStore: every record is dropped.
type memStore struct{}

// NewMemStore returns the in-memory RunStore, for servers without a
// state directory. It keeps nothing: the Manager's own run map remains
// the only copy, exactly the pre-durability behavior.
func NewMemStore() RunStore { return memStore{} }

func (memStore) RunSubmitted(string, int, RunSpec, time.Time)       {}
func (memStore) RunDiscarded(string)                                {}
func (memStore) RunStarted(string, time.Time)                       {}
func (memStore) RunProgressed(string, core.CurvePoint)              {}
func (memStore) RunQuarantined(string)                              {}
func (memStore) RunRequeued(string)                                 {}
func (memStore) RunFinished(string, time.Time, RunInfo)             {}
func (memStore) SessionCreated(string, int, SessionSpec, time.Time) {}
func (memStore) VersionSubmitted(string, int, *recipe.Spec)         {}
func (memStore) VersionStarted(string, int, time.Time)              {}
func (memStore) VersionFinished(string, int, RunState, string, time.Time, *versionResult) {
}
func (memStore) Close() error { return nil }

// --- journal record model ---

// Journal record types, one per lifecycle transition.
const (
	recRunSubmit  = "run-submit"
	recRunDiscard = "run-discard"
	recRunStart   = "run-start"
	recRunPoint   = "run-point"
	recRunQuar    = "run-quarantine"
	recRunRequeue = "run-requeue"
	recRunFinish  = "run-finish"
	recSessCreate = "session-create"
	recVerSubmit  = "version-submit"
	recVerStart   = "version-start"
	recVerFinish  = "version-finish"
)

// walRecord is one journaled lifecycle transition. A single shape covers
// every record type; unused fields are omitted from the JSON.
type walRecord struct {
	Type string `json:"t"`
	// ID is the run ID for run-* records, the session ID for the rest.
	ID string `json:"id,omitempty"`
	// Num is the ID's numeric suffix (submit/create records), feeding
	// next-ID recovery.
	Num int `json:"num,omitempty"`
	// At is the transition's wall-clock time in unix nanoseconds.
	At int64 `json:"at,omitempty"`

	Spec     *RunSpec         `json:"spec,omitempty"`
	Point    *core.CurvePoint `json:"point,omitempty"`
	State    RunState         `json:"state,omitempty"`
	Err      string           `json:"err,omitempty"`
	Summary  *runSummary      `json:"summary,omitempty"`
	TimedOut bool             `json:"timed_out,omitempty"`

	Session *SessionSpec   `json:"session,omitempty"`
	Ver     int            `json:"ver,omitempty"`
	Recipe  *recipe.Spec   `json:"recipe,omitempty"`
	Result  *versionResult `json:"result,omitempty"`
}

// runSummary is the persisted digest of a terminal run's result — what
// RunInfo needs when the engine result itself is gone (a restored run in
// a new process).
type runSummary struct {
	InputsProcessed int                `json:"inputs"`
	FinalQuality    float64            `json:"quality"`
	Stop            string             `json:"stop,omitempty"`
	Strategy        string             `json:"strategy,omitempty"`
	CacheHits       int64              `json:"cache_hits,omitempty"`
	CacheMisses     int64              `json:"cache_misses,omitempty"`
	Quarantined     int                `json:"quarantined,omitempty"`
	PhaseMillis     map[string]float64 `json:"phase_ms,omitempty"`
}

// summaryFromInfo extracts the persistable digest from a terminal run's
// info, nil when the run finished without a result (failed before the
// engine produced one, or cancelled while queued).
func summaryFromInfo(info RunInfo) *runSummary {
	if info.Stop == "" {
		return nil
	}
	return &runSummary{
		InputsProcessed: info.InputsProcessed,
		FinalQuality:    info.FinalQuality,
		Stop:            info.Stop,
		Strategy:        info.Strategy,
		CacheHits:       info.CacheHits,
		CacheMisses:     info.CacheMisses,
		Quarantined:     info.Quarantined,
		PhaseMillis:     info.PhaseMillis,
	}
}

// versionResult is the persisted digest of one done recipe version: the
// curve and stats its Info needs, plus the arm snapshots the next
// version's warm-start needs.
type versionResult struct {
	Curve       []core.CurvePoint     `json:"curve,omitempty"`
	Final       float64               `json:"final"`
	Inputs      int                   `json:"inputs"`
	Stop        int                   `json:"stop"`
	CacheHits   int64                 `json:"cache_hits,omitempty"`
	CacheMisses int64                 `json:"cache_misses,omitempty"`
	Diff        *recipe.Diff          `json:"diff,omitempty"`
	WarmStart   recipe.WarmStartStats `json:"warm_start"`
	Arms        []bandit.ArmSnapshot  `json:"arms,omitempty"`
}

// versionRecord builds the persisted digest from a finished version's
// result (nil for failed versions).
func versionRecord(res *recipe.Version) *versionResult {
	if res == nil || res.Run == nil {
		return nil
	}
	run := res.Run
	d := res.Diff
	return &versionResult{
		Curve:       append([]core.CurvePoint(nil), run.Curve...),
		Final:       run.FinalQuality,
		Inputs:      run.InputsProcessed,
		Stop:        int(run.Stop),
		CacheHits:   run.CacheHits,
		CacheMisses: run.CacheMisses,
		Diff:        &d,
		WarmStart:   res.WarmStart,
		Arms:        append([]bandit.ArmSnapshot(nil), run.Arms...),
	}
}

// --- recovered state ---

// persistState is the control plane's durable state: the reduction of
// every journaled transition. The durable store applies each record to
// its own copy as it journals, and recovery applies snapshot + journal
// through the same apply method — replay equivalence by construction.
type persistState struct {
	NextRunID     int                        `json:"next_run_id,omitempty"`
	NextSessionID int                        `json:"next_session_id,omitempty"`
	Runs          map[string]*persistRun     `json:"runs,omitempty"`
	RunOrder      []string                   `json:"run_order,omitempty"`
	Sessions      map[string]*persistSession `json:"sessions,omitempty"`
	SessionOrder  []string                   `json:"session_order,omitempty"`
}

type persistRun struct {
	ID          string            `json:"id"`
	Spec        RunSpec           `json:"spec"`
	State       RunState          `json:"state"`
	Created     int64             `json:"created"`
	Started     int64             `json:"started,omitempty"`
	Finished    int64             `json:"finished,omitempty"`
	Curve       []core.CurvePoint `json:"curve,omitempty"`
	Quarantined int               `json:"quarantined,omitempty"`
	Err         string            `json:"err,omitempty"`
	Summary     *runSummary       `json:"summary,omitempty"`
	TimedOut    bool              `json:"timed_out,omitempty"`
	Recovered   int               `json:"recovered,omitempty"`
}

type persistSession struct {
	ID       string            `json:"id"`
	Spec     SessionSpec       `json:"spec"`
	Created  int64             `json:"created"`
	Versions []*persistVersion `json:"versions,omitempty"`
}

type persistVersion struct {
	Index    int            `json:"index"`
	State    RunState       `json:"state"`
	Err      string         `json:"err,omitempty"`
	Recipe   *recipe.Spec   `json:"recipe,omitempty"`
	Started  int64          `json:"started,omitempty"`
	Finished int64          `json:"finished,omitempty"`
	Result   *versionResult `json:"result,omitempty"`
}

func newPersistState() *persistState {
	return &persistState{
		Runs:     map[string]*persistRun{},
		Sessions: map[string]*persistSession{},
	}
}

// apply advances the state machine by one record. Records referencing
// unknown IDs are skipped, not errors: a snapshot taken after a discard,
// or a journal from a newer server version, must not brick recovery.
func (st *persistState) apply(rec *walRecord) {
	switch rec.Type {
	case recRunSubmit:
		if rec.Spec == nil {
			return
		}
		st.Runs[rec.ID] = &persistRun{ID: rec.ID, Spec: *rec.Spec, State: StateQueued, Created: rec.At}
		st.RunOrder = append(st.RunOrder, rec.ID)
		if rec.Num > st.NextRunID {
			st.NextRunID = rec.Num
		}
	case recRunDiscard:
		delete(st.Runs, rec.ID)
		for i := len(st.RunOrder) - 1; i >= 0; i-- {
			if st.RunOrder[i] == rec.ID {
				st.RunOrder = append(st.RunOrder[:i], st.RunOrder[i+1:]...)
				break
			}
		}
	case recRunStart:
		if r := st.Runs[rec.ID]; r != nil {
			r.State = StateRunning
			r.Started = rec.At
			// Every engine start emits the complete curve from scratch, so a
			// requeued run's stale partial points must not survive the
			// transition (a crash → requeue → re-execute journal sequence
			// replays through here).
			r.Curve = nil
			r.Quarantined = 0
		}
	case recRunPoint:
		if r := st.Runs[rec.ID]; r != nil && rec.Point != nil {
			r.Curve = append(r.Curve, *rec.Point)
		}
	case recRunQuar:
		if r := st.Runs[rec.ID]; r != nil {
			r.Quarantined++
		}
	case recRunRequeue:
		if r := st.Runs[rec.ID]; r != nil {
			r.State = StateQueued
			r.Started, r.Finished = 0, 0
			r.Curve = nil
			r.Quarantined = 0
			r.Err = ""
			r.Recovered++
		}
	case recRunFinish:
		if r := st.Runs[rec.ID]; r != nil {
			r.State = rec.State
			r.Err = rec.Err
			r.Finished = rec.At
			r.Summary = rec.Summary
			r.TimedOut = rec.TimedOut
		}
	case recSessCreate:
		if rec.Session == nil {
			return
		}
		st.Sessions[rec.ID] = &persistSession{ID: rec.ID, Spec: *rec.Session, Created: rec.At}
		st.SessionOrder = append(st.SessionOrder, rec.ID)
		if rec.Num > st.NextSessionID {
			st.NextSessionID = rec.Num
		}
	case recVerSubmit:
		if s := st.Sessions[rec.ID]; s != nil {
			s.Versions = append(s.Versions, &persistVersion{Index: rec.Ver, State: StateQueued, Recipe: rec.Recipe})
		}
	case recVerStart:
		if v := st.version(rec.ID, rec.Ver); v != nil {
			v.State = StateRunning
			v.Started = rec.At
		}
	case recVerFinish:
		if v := st.version(rec.ID, rec.Ver); v != nil {
			v.State = rec.State
			v.Err = rec.Err
			v.Finished = rec.At
			v.Result = rec.Result
		}
	}
}

func (st *persistState) version(sessionID string, index int) *persistVersion {
	s := st.Sessions[sessionID]
	if s == nil {
		return nil
	}
	for _, v := range s.Versions {
		if v.Index == index {
			return v
		}
	}
	return nil
}

// clone deep-copies the state via its own JSON form, giving recovery an
// immutable view while the live store keeps mutating its copy.
func (st *persistState) clone() *persistState {
	out := newPersistState()
	b, err := json.Marshal(st)
	if err != nil {
		return out
	}
	json.Unmarshal(b, out) //nolint:errcheck // round-trip of our own encoding
	return out
}

// --- durable store ---

const (
	// journalErrorLimit is how many journal write failures the store
	// absorbs before demoting itself to memory-only — the same one-way
	// ladder the extraction cache's disk store uses. A demoted store keeps
	// the control plane running; it just stops surviving restarts.
	journalErrorLimit = 3
	// journalSnapshotBytes triggers an inline snapshot once the journal
	// grows past it, bounding replay work at the next startup.
	journalSnapshotBytes = 4 << 20
	// snapshotInterval is the background snapshot cadence for quiet
	// journals that never hit the size trigger.
	snapshotInterval = 30 * time.Second
)

// DurableStore is the storage-backed RunStore: every lifecycle transition
// is applied to an in-memory persistState and appended to a write-ahead
// journal, with periodic snapshots capping replay time. Journal failures
// never propagate to runs; after journalErrorLimit of them the store
// demotes itself to memory-only for the rest of the process.
type DurableStore struct {
	store   *runstore.Store
	metrics *Metrics
	faults  *fault.Injector
	log     *slog.Logger

	mu      sync.Mutex
	state   *persistState
	errors  int
	demoted bool
	frozen  bool
	appends uint64 // fault-site keying

	stopOnce sync.Once
	snapStop chan struct{}
	snapDone chan struct{}
}

// OpenDurableStore opens (creating if needed) the journal + snapshot pair
// in dir, replays it, and returns the store plus an immutable copy of the
// recovered state for the Manager and SessionHub to restore from. A
// corrupt snapshot or unreadable journal is an error: silently starting
// empty would orphan the very state the flag exists to keep. A non-nil
// tracer (the server's process tracer) records runstore durability spans:
// the startup recovery replay, plus every journal append and snapshot
// rotation.
func OpenDurableStore(dir string, metrics *Metrics, faults *fault.Injector, log *slog.Logger, tracer *otrace.Tracer) (*DurableStore, *persistState, error) {
	if log == nil {
		log = obs.NopLogger()
	}
	ds := &DurableStore{
		state:    newPersistState(),
		metrics:  metrics,
		faults:   faults,
		log:      log,
		snapStop: make(chan struct{}),
		snapDone: make(chan struct{}),
	}
	st, err := runstore.OpenTraced(dir,
		func(state []byte) error { return json.Unmarshal(state, ds.state) },
		func(payload []byte) error {
			var rec walRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				return fmt.Errorf("server: decode journal record: %w", err)
			}
			ds.state.apply(&rec)
			return nil
		},
		tracer)
	if err != nil {
		return nil, nil, err
	}
	ds.store = st
	recovered := ds.state.clone()
	go ds.snapshotLoop()
	return ds, recovered, nil
}

// record applies one transition to the in-memory state and journals it.
// The state machine always advances — a demoted (or frozen) store still
// serves the process, it just stops persisting.
func (ds *DurableStore) record(rec *walRecord) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.state.apply(rec)
	if ds.demoted || ds.frozen {
		return
	}
	payload, err := json.Marshal(rec)
	if err == nil {
		ds.appends++
		id := fmt.Sprintf("%s#%d", rec.Type, ds.appends)
		if ferr := ds.faults.Fire(fault.SiteJournalWrite, id); ferr != nil {
			err = ferr
		} else {
			err = ds.store.Append(payload)
		}
	}
	if err != nil {
		ds.journalErrorLocked(err)
		return
	}
	if ds.store.JournalBytes() >= journalSnapshotBytes {
		if serr := ds.snapshotLocked(); serr != nil {
			ds.journalErrorLocked(serr)
		}
	}
}

// journalErrorLocked tallies one journal failure and demotes the store —
// one way, for the rest of the process — once the limit is hit.
func (ds *DurableStore) journalErrorLocked(err error) {
	ds.errors++
	if ds.metrics != nil {
		ds.metrics.JournalErrors.Add(1)
	}
	ds.log.Warn("run journal write failed", "error", err.Error(), "errors", ds.errors)
	if ds.errors >= journalErrorLimit && !ds.demoted {
		ds.demoted = true
		ds.log.Error("run journal demoted to memory-only; state will not survive a restart",
			"errors", ds.errors)
	}
}

// snapshotLocked captures the current state atomically and resets the
// journal. Called with ds.mu held.
func (ds *DurableStore) snapshotLocked() error {
	start := time.Now()
	state, err := json.Marshal(ds.state)
	if err != nil {
		return err
	}
	if err := ds.store.Snapshot(state); err != nil {
		return err
	}
	if ds.metrics != nil {
		ds.metrics.SnapshotMillis.Add(time.Since(start).Milliseconds())
	}
	return nil
}

// snapshotLoop snapshots quiet journals on a timer so a mostly-idle
// server still recovers fast.
func (ds *DurableStore) snapshotLoop() {
	defer close(ds.snapDone)
	t := time.NewTicker(snapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			ds.mu.Lock()
			if !ds.demoted && !ds.frozen && ds.store.JournalRecords() > 0 {
				if err := ds.snapshotLocked(); err != nil {
					ds.journalErrorLocked(err)
				}
			}
			ds.mu.Unlock()
		case <-ds.snapStop:
			return
		}
	}
}

// freeze is a test hook simulating a hard kill (kill -9) from this
// process's point of view: every subsequent journal append and snapshot —
// Close's final one included — is dropped, leaving the on-disk state
// exactly as the "crash" found it. Tests then open a second store over
// the same directory, which is precisely what a restarted process does.
func (ds *DurableStore) freeze() {
	ds.mu.Lock()
	ds.frozen = true
	ds.mu.Unlock()
}

// JournalBytes / JournalRecords / Demoted expose the journal's state for
// metrics gauges.
func (ds *DurableStore) JournalBytes() int64 { return ds.store.JournalBytes() }

func (ds *DurableStore) JournalRecords() int { return ds.store.JournalRecords() }

func (ds *DurableStore) Demoted() bool {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.demoted
}

// Close stops the snapshot loop, takes a final snapshot (so the next
// startup replays nothing), and closes the journal.
func (ds *DurableStore) Close() error {
	ds.stopOnce.Do(func() { close(ds.snapStop) })
	<-ds.snapDone
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.frozen {
		return nil // simulated crash: leave the disk exactly as-is
	}
	if !ds.demoted {
		if err := ds.snapshotLocked(); err != nil {
			ds.journalErrorLocked(err)
		}
	}
	return ds.store.Close()
}

// --- RunStore implementation ---

func (ds *DurableStore) RunSubmitted(id string, num int, spec RunSpec, created time.Time) {
	ds.record(&walRecord{Type: recRunSubmit, ID: id, Num: num, Spec: &spec, At: created.UnixNano()})
}

func (ds *DurableStore) RunDiscarded(id string) {
	ds.record(&walRecord{Type: recRunDiscard, ID: id})
}

func (ds *DurableStore) RunStarted(id string, at time.Time) {
	ds.record(&walRecord{Type: recRunStart, ID: id, At: at.UnixNano()})
}

func (ds *DurableStore) RunProgressed(id string, p core.CurvePoint) {
	ds.record(&walRecord{Type: recRunPoint, ID: id, Point: &p})
}

func (ds *DurableStore) RunQuarantined(id string) {
	ds.record(&walRecord{Type: recRunQuar, ID: id})
}

func (ds *DurableStore) RunRequeued(id string) {
	ds.record(&walRecord{Type: recRunRequeue, ID: id})
}

func (ds *DurableStore) RunFinished(id string, at time.Time, info RunInfo) {
	ds.record(&walRecord{
		Type:     recRunFinish,
		ID:       id,
		At:       at.UnixNano(),
		State:    info.State,
		Err:      info.Error,
		Summary:  summaryFromInfo(info),
		TimedOut: info.TimedOut,
	})
}

func (ds *DurableStore) SessionCreated(id string, num int, spec SessionSpec, created time.Time) {
	ds.record(&walRecord{Type: recSessCreate, ID: id, Num: num, Session: &spec, At: created.UnixNano()})
}

func (ds *DurableStore) VersionSubmitted(sessionID string, index int, spec *recipe.Spec) {
	ds.record(&walRecord{Type: recVerSubmit, ID: sessionID, Ver: index, Recipe: spec})
}

func (ds *DurableStore) VersionStarted(sessionID string, index int, at time.Time) {
	ds.record(&walRecord{Type: recVerStart, ID: sessionID, Ver: index, At: at.UnixNano()})
}

func (ds *DurableStore) VersionFinished(sessionID string, index int, state RunState, errMsg string, at time.Time, res *versionResult) {
	ds.record(&walRecord{
		Type:   recVerFinish,
		ID:     sessionID,
		Ver:    index,
		State:  state,
		Err:    errMsg,
		At:     at.UnixNano(),
		Result: res,
	})
}
