package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"zombie/internal/trace"
)

// waitDone follows the run's SSE stream until its terminal status event —
// the cheapest "wait for completion" primitive the HTTP API offers.
func waitDone(t *testing.T, baseURL, id string) {
	t.Helper()
	resp := mustGet(t, baseURL+"/runs/"+id+"/curve?follow=1")
	defer resp.Body.Close()
	readSSE(t, resp.Body, func(e sseEvent) bool { return e.name == "status" })
}

// TestMetricsGoldenKeys is the exposition contract: every metric the
// registry knows appears in BOTH /metrics formats, and every key the flat
// JSON map has carried since PR 1 is still present.
func TestMetricsGoldenKeys(t *testing.T) {
	s, ts := newTestServer(t)
	path := writeImageCorpus(t, 600, 21)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "imgs", Path: path}), http.StatusCreated)
	run := decodeBody[RunInfo](t, postJSON(t, ts.URL+"/runs",
		RunSpec{Corpus: "imgs", Task: "image", MaxInputs: 60, EvalEvery: 20, Trace: true, Spans: true}), http.StatusAccepted)
	waitDone(t, ts.URL, run.ID)

	flat := decodeBody[map[string]int64](t, mustGet(t, ts.URL+"/metrics"), http.StatusOK)
	promResp := mustGet(t, ts.URL+"/metrics?format=prom")
	promBody, err := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	if err != nil || promResp.StatusCode != http.StatusOK {
		t.Fatalf("prom scrape: status %d err %v", promResp.StatusCode, err)
	}
	prom := string(promBody)

	names := s.Obs().Names()
	if len(names) == 0 {
		t.Fatal("registry is empty")
	}
	for _, name := range names {
		inFlat := false
		for key := range flat {
			if key == name || strings.HasPrefix(key, name+"_") {
				inFlat = true
				break
			}
		}
		if !inFlat {
			t.Errorf("metric %q missing from the flat JSON exposition", name)
		}
		if !strings.Contains(prom, "# TYPE "+name+" ") {
			t.Errorf("metric %q missing from the Prometheus exposition", name)
		}
	}

	// The stability contract: these keys predate the registry and must
	// never disappear or change meaning.
	for _, key := range []string{
		"feat_cache_hits", "feat_cache_misses", "feat_cache_disk_hits",
		"feat_cache_evictions", "feat_cache_entries", "feat_cache_bytes",
		"feat_cache_disk_entries", "feat_cache_disk_bytes",
		"feat_cache_disk_errors", "feat_cache_disk_demoted",
		"runs_started", "runs_completed", "runs_failed", "runs_cancelled",
		"runs_timed_out", "inputs_processed", "inputs_quarantined",
		"run_wall_ms", "run_seconds", "index_builds", "index_cache_hits",
		"index_build_retries", "queue_depth", "runs_running", "corpora",
		"spans_recorded", "spans_dropped",
	} {
		if _, ok := flat[key]; !ok {
			t.Errorf("pre-existing flat key %q missing", key)
		}
	}

	// A run executed, so the engine's phase histograms and the HTTP
	// histogram are populated in both formats.
	if flat["zombie_phase_seconds_extract_count"] <= 0 {
		t.Error("extract phase histogram empty after a run")
	}
	if flat["zombie_http_request_seconds_count"] <= 0 {
		t.Error("HTTP request histogram empty after requests")
	}
	if !strings.Contains(prom, `zombie_phase_seconds_bucket{phase="extract",le="+Inf"}`) {
		t.Error("prom exposition lacks the extract phase series")
	}
	if flat["runs_completed"] != 1 || flat["inputs_processed"] != 60 {
		t.Errorf("run counters: completed=%d inputs=%d", flat["runs_completed"], flat["inputs_processed"])
	}
	// The run above asked for spans, so the span counters moved: spans
	// were recorded and none dropped (the run is far under capacity).
	if flat["spans_recorded"] <= 0 || flat["spans_dropped"] != 0 {
		t.Errorf("span counters: recorded=%d dropped=%d", flat["spans_recorded"], flat["spans_dropped"])
	}
}

func TestMetricsFormatNegotiation(t *testing.T) {
	_, ts := newTestServer(t)

	resp := mustGet(t, ts.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type = %q", ct)
	}
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4, */*;q=0.1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Accept text/plain content type = %q", ct)
	}
	if !strings.Contains(string(body), "# TYPE runs_started counter") {
		t.Fatalf("prom body missing TYPE header:\n%s", body)
	}

	// A bare */* (or no Accept at all) keeps the JSON default.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "*/*")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("*/* content type = %q", ct)
	}

	// ?format=json wins over an Accept header; unknown formats are 400s.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/metrics?format=json", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody[map[string]int64](t, resp, http.StatusOK)
	decodeBody[errorBody](t, mustGet(t, ts.URL+"/metrics?format=xml"), http.StatusBadRequest)
}

// traceSnapshot mirrors handleRunTrace's response body.
type traceSnapshot struct {
	ID          string             `json:"id"`
	State       RunState           `json:"state"`
	Dropped     int64              `json:"dropped"`
	Events      []traceEventJSON   `json:"events"`
	PhaseMillis map[string]float64 `json:"phase_ms"`
}

func TestRunTraceStreamAndSnapshot(t *testing.T) {
	_, ts := newTestServer(t)
	big := writeImageCorpus(t, 20000, 22)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "big", Path: big, Stream: true}), http.StatusCreated)

	spec := longSpec("big")
	spec.Trace = true
	run := decodeBody[RunInfo](t, postJSON(t, ts.URL+"/runs", spec), http.StatusAccepted)

	// Follow the stream until the first live trace frame: the run is
	// definitely executing and its ring is non-empty.
	follow := mustGet(t, ts.URL+"/runs/"+run.ID+"/curve?follow=1")
	frames := readSSE(t, follow.Body, func(e sseEvent) bool { return e.name == "trace" })
	var ev traceEventJSON
	if err := json.Unmarshal([]byte(frames[len(frames)-1].data), &ev); err != nil {
		t.Fatalf("trace frame does not parse: %v", err)
	}
	if ev.Step < 1 {
		t.Fatalf("trace frame: %+v", ev)
	}

	// The ring snapshot works mid-run — that is its reason to exist.
	snap := decodeBody[traceSnapshot](t, mustGet(t, ts.URL+"/runs/"+run.ID+"/trace"), http.StatusOK)
	if snap.ID != run.ID || len(snap.Events) < 1 {
		t.Fatalf("live trace snapshot: %+v", snap)
	}
	if snap.PhaseMillis != nil {
		t.Fatalf("phase_ms present before the run is terminal: %+v", snap.PhaseMillis)
	}

	// Cancel, drain the stream, and check the terminal snapshot carries
	// the phase breakdown.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+run.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody[RunInfo](t, delResp, http.StatusOK)
	readSSE(t, follow.Body, func(e sseEvent) bool { return e.name == "status" })
	follow.Body.Close()

	final := decodeBody[traceSnapshot](t, mustGet(t, ts.URL+"/runs/"+run.ID+"/trace"), http.StatusOK)
	if len(final.Events) < len(snap.Events) {
		t.Fatalf("terminal snapshot shrank: %d -> %d events", len(snap.Events), len(final.Events))
	}
	if final.PhaseMillis["extract"] <= 0 || final.PhaseMillis["eval"] <= 0 {
		t.Fatalf("terminal phase_ms: %+v", final.PhaseMillis)
	}

	// Run info carries the same observability fields.
	info := decodeBody[RunInfo](t, mustGet(t, ts.URL+"/runs/"+run.ID), http.StatusOK)
	if info.TraceEvents < 1 || info.PhaseMillis["extract"] <= 0 {
		t.Fatalf("run info observability fields: %+v", info)
	}

	// Untraced runs have no ring: /trace is a 404, pointing at the flag.
	small := writeImageCorpus(t, 300, 23)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "small", Path: small}), http.StatusCreated)
	plain := decodeBody[RunInfo](t, postJSON(t, ts.URL+"/runs",
		RunSpec{Corpus: "small", Task: "image", MaxInputs: 20}), http.StatusAccepted)
	waitDone(t, ts.URL, plain.ID)
	decodeBody[errorBody](t, mustGet(t, ts.URL+"/runs/"+plain.ID+"/trace"), http.StatusNotFound)
}

// TestTraceFramesReportRingDrops drives a traced run's fan-out path past
// the ring capacity and asserts the streamed trace frames carry the exact
// eviction count — a follower must learn the ring wrapped without polling
// the snapshot endpoint.
func TestTraceFramesReportRingDrops(t *testing.T) {
	run := newRun("t-drops", RunSpec{Trace: true}, time.Now())
	const over = 3
	for i := 0; i < traceRingCap+over; i++ {
		run.appendEvent(trace.Event{Step: i + 1})
	}
	_, ch, unsubscribe := run.Subscribe()
	defer unsubscribe()
	run.appendEvent(trace.Event{Step: traceRingCap + over + 1})
	msg := <-ch
	if msg.event == nil {
		t.Fatalf("frame is not a trace event: %+v", msg)
	}
	if msg.dropped != over+1 {
		t.Fatalf("frame dropped = %d, want %d", msg.dropped, over+1)
	}
	if _, dropped, _ := run.TraceSnapshot(); dropped != over+1 {
		t.Fatalf("snapshot dropped = %d, want %d", dropped, over+1)
	}
}

func TestHealthzReportsBuildInfo(t *testing.T) {
	_, ts := newTestServer(t)
	health := decodeBody[map[string]any](t, mustGet(t, ts.URL+"/healthz"), http.StatusOK)
	version, _ := health["version"].(string)
	commit, _ := health["commit"].(string)
	if version == "" || commit == "" {
		t.Fatalf("healthz build info: version=%q commit=%q", version, commit)
	}
}
