package server

import (
	"net/http"

	"zombie/internal/otrace"
)

// spanBody is the JSON envelope both span endpoints serve: the stitched
// span tree plus the cost-attribution summary built from it.
type spanBody struct {
	ID      string              `json:"id,omitempty"`
	State   RunState            `json:"state,omitempty"`
	TraceID string              `json:"trace_id"`
	Spans   int                 `json:"spans"`
	Dropped int64               `json:"dropped"`
	Tree    []*otrace.Node      `json:"tree"`
	Cost    *otrace.CostSummary `json:"cost"`
}

// writeSpans renders a tracer snapshot in the requested format: the JSON
// tree + cost envelope by default, Chrome trace-event JSON (loadable in
// about://tracing or Perfetto) via ?format=chrome.
func writeSpans(w http.ResponseWriter, r *http.Request, body spanBody, spans []otrace.Span) {
	switch format := r.URL.Query().Get("format"); format {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		otrace.WriteChrome(w, spans) //nolint:errcheck // client gone; nothing to do
	case "", "json":
		body.Spans = len(spans)
		body.Tree = otrace.Tree(spans)
		body.Cost = otrace.BuildCost(spans, body.Dropped)
		writeJSON(w, http.StatusOK, body)
	default:
		writeError(w, http.StatusBadRequest, "unknown spans format %q (want json or chrome)", format)
	}
}

// handleRunSpans serves a run's span tree and cost attribution. It works
// mid-run — the snapshot shows the phases completed so far — and for a
// distributed run the tree includes the worker-side spans the coordinator
// stitched in over the wire.
func (s *Server) handleRunSpans(w http.ResponseWriter, r *http.Request) {
	run, ok := s.getRun(w, r)
	if !ok {
		return
	}
	spans, dropped, traced := run.SpanSnapshot()
	if !traced {
		writeError(w, http.StatusNotFound, "run %s has no span tracer (submit with \"spans\": true)", run.ID)
		return
	}
	writeSpans(w, r, spanBody{
		ID:      run.ID,
		State:   run.State(),
		TraceID: run.Tracer().TraceID(),
		Dropped: dropped,
	}, spans)
}

// handleSessionSpans serves a recipe session's accumulated span tree:
// every version run in the workspace appends to one tracer, so the tree
// shows extraction cost shrinking version-over-version as the shared
// cache warms.
func (s *Server) handleSessionSpans(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	spans, dropped, traced := sess.SpanSnapshot()
	if !traced {
		writeError(w, http.StatusNotFound, "session %s has no span tracer (create with \"spans\": true)", sess.ID)
		return
	}
	writeSpans(w, r, spanBody{
		ID:      sess.ID,
		TraceID: sess.Tracer().TraceID(),
		Dropped: dropped,
	}, spans)
}

// handleProcessSpans serves the server's process tracer: infrastructure
// spans owned by no single run (extraction-cache disk IO and demotion,
// run-journal appends, snapshot rotations, startup recovery).
func (s *Server) handleProcessSpans(w http.ResponseWriter, r *http.Request) {
	spans, dropped := s.procTracer.Snapshot()
	writeSpans(w, r, spanBody{
		TraceID: s.procTracer.TraceID(),
		Dropped: dropped,
	}, spans)
}
