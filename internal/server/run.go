package server

import (
	"context"
	"sync"
	"time"

	"zombie/internal/core"
	"zombie/internal/dist"
	"zombie/internal/otrace"
	"zombie/internal/trace"
)

// RunState is a run's lifecycle position. Transitions are strictly
// forward: queued → running → {done, failed, cancelled}, with the shortcut
// queued → cancelled for runs cancelled before a worker picked them up.
type RunState string

const (
	StateQueued    RunState = "queued"
	StateRunning   RunState = "running"
	StateDone      RunState = "done"
	StateFailed    RunState = "failed"
	StateCancelled RunState = "cancelled"
)

// terminal reports whether no further transition is possible.
func (s RunState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// RunSpec is a run submission. JSON field names are the HTTP API.
type RunSpec struct {
	// Corpus names a registered corpus; Task picks the workload
	// ("wiki", "songs", "image").
	Corpus string `json:"corpus"`
	Task   string `json:"task"`
	// Mode is zombie (default), scan-random, scan-sequential, or oracle.
	Mode string `json:"mode,omitempty"`
	// Policy is the bandit policy spec (zombie mode; default
	// "eps-greedy:0.1"). K is the number of index groups (default 32).
	Policy string `json:"policy,omitempty"`
	K      int    `json:"k,omitempty"`
	// Seed defaults to 1; FeatureVersion 0 means the task default.
	Seed           int64 `json:"seed,omitempty"`
	FeatureVersion int   `json:"feature_version,omitempty"`
	// Engine knobs, mirroring core.Config.
	MaxInputs int  `json:"max_inputs,omitempty"`
	EvalEvery int  `json:"eval_every,omitempty"`
	EarlyStop bool `json:"early_stop,omitempty"`
	// Batch is core.Config.BatchSize: inputs popped per arm pull. 0
	// inherits the server default (zombie-serve -batch, normally 1); 1 is
	// the classic per-step loop with byte-identical output; K>1 amortizes
	// selection, evaluation, and — for distributed runs — per-input RPCs
	// into one StepBatch call per owning shard. See DESIGN.md §13.
	Batch int `json:"batch,omitempty"`
	// Trace records the step-level event log, served at
	// GET /runs/{id}/events as CSV once the run is terminal, and feeds the
	// run's bounded trace ring, served live at GET /runs/{id}/trace and as
	// "trace" frames on the curve SSE stream.
	Trace bool `json:"trace,omitempty"`
	// Spans enables the run's span tracer: one bounded buffer of timing
	// spans (engine phases, dist RPCs, worker-side child spans stitched
	// across processes) served as a tree at GET /runs/{id}/spans and folded
	// into the run info's cost summary. Like Trace, it is observational:
	// curves, arms, and quarantine lists are byte-identical with spans on
	// or off.
	Spans bool `json:"spans,omitempty"`
	// TimeoutMillis is this run's wall-clock deadline; 0 inherits the
	// server's default (Config.RunTimeout). A run over its deadline ends as
	// cancelled-with-partials, marked timed_out in its info.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// MaxFailures overrides core.Config.MaxFailureFrac (0 inherits the
	// server default): the fraction of processed inputs that may be
	// quarantined before the run degrades to its partial results.
	MaxFailures float64 `json:"max_failures,omitempty"`
	// Faults is a fault-injection spec (fault.Parse syntax) evaluated with
	// FaultSeed. Empty inherits the server's injector (normally none);
	// chaos tests submit runs with their own spec.
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	// Shards > 0 executes the run distributed over that many corpus shards
	// (zombie mode only). The curve is byte-identical to the single-process
	// run for the same seed — shards only change where steps execute.
	// Without worker addresses the shards run on in-process workers.
	Shards int `json:"shards,omitempty"`
	// DistWorkers lists worker base URLs (zombie-serve processes serving
	// /dist/*) to execute the shards over HTTP; its length must match
	// shards when both are set. Empty inherits the server's -dist-workers
	// default, if any.
	DistWorkers []string `json:"dist_workers,omitempty"`
}

// distributed reports whether the spec asks for the sharded execution
// path (which requires mode zombie; Submit enforces that).
func (s *RunSpec) distributed() bool {
	return s.Shards > 0 || len(s.DistWorkers) > 0
}

// traceRingCap bounds each traced run's event ring. Long runs drop their
// oldest events (the ring reports how many); the full log is still served
// as CSV from the result once the run finishes.
const traceRingCap = 4096

// streamMsg is one frame of a run's live stream: exactly one of a curve
// point or a trace event. Trace frames carry the ring's drop count as of
// the append, so a stream follower learns the ring wrapped without
// polling the snapshot endpoint.
type streamMsg struct {
	point   *core.CurvePoint
	event   *trace.Event
	dropped int64
}

// Run is one managed run: the spec, its lifecycle state, the live learning
// curve, the trace ring (traced runs), and the subscriber fan-out feeding
// SSE streams. All mutable fields are guarded by mu; done is closed
// exactly once, on reaching a terminal state.
type Run struct {
	ID string

	mu       sync.Mutex
	spec     RunSpec
	state    RunState
	created  time.Time
	started  time.Time
	finished time.Time
	curve    []core.CurvePoint
	subs     map[int]chan streamMsg
	nextSub  int
	result   *core.RunResult
	errMsg   string
	cancel   context.CancelFunc
	timedOut bool
	// summary carries a restored terminal run's persisted digest; Info
	// falls back to it when result is nil because the engine result
	// belonged to a previous process. recovered counts how many times
	// recovery re-queued this run after a crash.
	summary   *runSummary
	recovered int
	// distTransport / distWorkers record the distribution summary for
	// sharded runs, set by the manager before the run finishes.
	distTransport string
	distWorkers   []dist.WorkerStats

	// ring holds the run's recent step events (nil unless spec.Trace). The
	// engine goroutine appends while HTTP handlers snapshot concurrently;
	// the ring has its own lock, so appends never contend with r.mu.
	ring *trace.Ring

	// tracer holds the run's span buffer (nil unless spec.Spans), seeded
	// with the run ID so the trace ID is stable across re-executions. Like
	// the ring it has its own lock; spans are not journaled, so a restored
	// terminal run reports none until re-executed.
	tracer *otrace.Tracer

	done chan struct{}
}

func newRun(id string, spec RunSpec, now time.Time) *Run {
	r := &Run{
		ID:      id,
		spec:    spec,
		state:   StateQueued,
		created: now,
		subs:    map[int]chan streamMsg{},
		done:    make(chan struct{}),
	}
	if spec.Trace {
		r.ring = trace.NewRing(traceRingCap)
	}
	if spec.Spans {
		r.tracer = otrace.New(id, otrace.DefaultCapacity)
	}
	return r
}

// restoreRun rebuilds a Run from its persisted record. Terminal runs
// come back with their history — curve, summary, error, timings — and a
// closed Done channel; interrupted (queued/running) runs come back as
// the crash left them, for the manager to re-queue via prepareRequeue.
func restoreRun(pr *persistRun) *Run {
	r := &Run{
		ID:        pr.ID,
		spec:      pr.Spec,
		state:     pr.State,
		created:   time.Unix(0, pr.Created),
		subs:      map[int]chan streamMsg{},
		done:      make(chan struct{}),
		errMsg:    pr.Err,
		summary:   pr.Summary,
		timedOut:  pr.TimedOut,
		recovered: pr.Recovered,
	}
	if pr.Started != 0 {
		r.started = time.Unix(0, pr.Started)
	}
	if pr.Finished != 0 {
		r.finished = time.Unix(0, pr.Finished)
	}
	r.curve = append(r.curve, pr.Curve...)
	if pr.Spec.Trace {
		// The ring starts empty: step events are not journaled (far too
		// dense); a re-executed run refills it, a restored terminal run
		// reports zero retained events.
		r.ring = trace.NewRing(traceRingCap)
	}
	if pr.Spec.Spans {
		// Same policy as the ring: spans are not journaled, a re-executed
		// run refills the buffer.
		r.tracer = otrace.New(pr.ID, otrace.DefaultCapacity)
	}
	if r.state.terminal() {
		close(r.done)
	}
	return r
}

// prepareRequeue resets an interrupted restored run to queued for
// deterministic re-execution. The stale partial curve is dropped: the
// engine re-emits the complete curve from scratch, byte-identical to an
// uninterrupted run of the same spec.
func (r *Run) prepareRequeue() {
	r.mu.Lock()
	r.state = StateQueued
	r.started = time.Time{}
	r.curve = nil
	r.errMsg = ""
	r.recovered++
	r.mu.Unlock()
}

// RunInfo is the externally visible run snapshot.
type RunInfo struct {
	ID       string   `json:"id"`
	Spec     RunSpec  `json:"spec"`
	State    RunState `json:"state"`
	Error    string   `json:"error,omitempty"`
	Created  string   `json:"created"`
	Started  string   `json:"started,omitempty"`
	Finished string   `json:"finished,omitempty"`
	// CurvePoints is the number of curve samples so far; the curve itself
	// is served by /runs/{id}/curve.
	CurvePoints int `json:"curve_points"`
	// WallMillis is the run's execution wall time in milliseconds, present
	// once the run has both started and reached a terminal state.
	WallMillis int64 `json:"wall_ms,omitempty"`
	// Summary fields, present once the run is terminal with a result.
	InputsProcessed int     `json:"inputs_processed,omitempty"`
	FinalQuality    float64 `json:"final_quality,omitempty"`
	Stop            string  `json:"stop,omitempty"`
	Strategy        string  `json:"strategy,omitempty"`
	// CacheHits / CacheMisses are the run's extraction-cache traffic.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	// Quarantined counts inputs the run removed after absorbed failures;
	// the full records are in the result's quarantine list.
	Quarantined int `json:"quarantined,omitempty"`
	// PhaseMillis breaks the run's wall time down by inner-loop phase
	// (milliseconds), present once the run is terminal with a result.
	PhaseMillis map[string]float64 `json:"phase_ms,omitempty"`
	// TraceEvents is the number of step events currently retained in the
	// run's trace ring (traced runs only; the ring is bounded, so long runs
	// report the cap).
	TraceEvents int `json:"trace_events,omitempty"`
	// Spans / SpansDropped report the span tracer's buffer (runs submitted
	// with "spans": true only); Cost is the per-run cost attribution built
	// from those spans — wall and CPU seconds by phase × shard × recipe
	// part — present once the run is terminal.
	Spans        int                 `json:"spans,omitempty"`
	SpansDropped int64               `json:"spans_dropped,omitempty"`
	Cost         *otrace.CostSummary `json:"cost,omitempty"`
	// TimedOut marks a cancelled run that hit its deadline rather than a
	// client's DELETE.
	TimedOut bool `json:"timed_out,omitempty"`
	// Transport and Workers describe a distributed run's execution: which
	// transport carried the steps ("local" or "http") and each worker's
	// share. Absent for single-process runs.
	Transport string             `json:"transport,omitempty"`
	Workers   []dist.WorkerStats `json:"workers,omitempty"`
	// Recovered counts how many times this run was interrupted by a server
	// crash and re-queued from the state directory. The curve of a
	// recovered run is byte-identical to an uninterrupted one — recovery
	// re-executes the deterministic engine, it does not splice state.
	Recovered int `json:"recovered,omitempty"`
}

// Info snapshots the run.
func (r *Run) Info() RunInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := RunInfo{
		ID:          r.ID,
		Spec:        r.spec,
		State:       r.state,
		Error:       r.errMsg,
		Created:     r.created.UTC().Format(time.RFC3339Nano),
		CurvePoints: len(r.curve),
	}
	if !r.started.IsZero() {
		info.Started = r.started.UTC().Format(time.RFC3339Nano)
	}
	if !r.finished.IsZero() {
		info.Finished = r.finished.UTC().Format(time.RFC3339Nano)
		if !r.started.IsZero() {
			info.WallMillis = r.finished.Sub(r.started).Milliseconds()
		}
	}
	if r.result != nil {
		info.InputsProcessed = r.result.InputsProcessed
		info.FinalQuality = r.result.FinalQuality
		info.Stop = r.result.Stop.String()
		info.Strategy = r.result.Strategy
		info.CacheHits = r.result.CacheHits
		info.CacheMisses = r.result.CacheMisses
		info.Quarantined = len(r.result.Quarantined)
		info.PhaseMillis = r.result.Phases.Millis()
	} else if r.summary != nil {
		info.InputsProcessed = r.summary.InputsProcessed
		info.FinalQuality = r.summary.FinalQuality
		info.Stop = r.summary.Stop
		info.Strategy = r.summary.Strategy
		info.CacheHits = r.summary.CacheHits
		info.CacheMisses = r.summary.CacheMisses
		info.Quarantined = r.summary.Quarantined
		info.PhaseMillis = r.summary.PhaseMillis
	}
	if r.ring != nil {
		info.TraceEvents = r.ring.Len()
	}
	if r.tracer != nil {
		info.Spans = r.tracer.Len()
		info.SpansDropped = r.tracer.Dropped()
		if r.state.terminal() {
			spans, dropped := r.tracer.Snapshot()
			info.Cost = otrace.BuildCost(spans, dropped)
		}
	}
	info.TimedOut = r.timedOut
	info.Recovered = r.recovered
	info.Transport = r.distTransport
	info.Workers = r.distWorkers
	return info
}

// setDist records a sharded run's distribution summary; called by the
// manager once the coordinator has merged the result.
func (r *Run) setDist(transport string, workers []dist.WorkerStats) {
	r.mu.Lock()
	r.distTransport = transport
	r.distWorkers = workers
	r.mu.Unlock()
}

// setTimedOut marks the run as deadline-expired; called by the worker
// before finishing a run whose context hit its timeout.
func (r *Run) setTimedOut() {
	r.mu.Lock()
	r.timedOut = true
	r.mu.Unlock()
}

// State returns the current lifecycle state.
func (r *Run) State() RunState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Curve returns a copy of the learning curve so far.
func (r *Run) Curve() []core.CurvePoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]core.CurvePoint, len(r.curve))
	copy(out, r.curve)
	return out
}

// Result returns the engine result once terminal (nil before, and nil
// forever for runs that failed or were cancelled while queued).
func (r *Run) Result() *core.RunResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.result
}

// Done returns a channel closed when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

// appendPoint records a live curve point and fans it out to subscribers.
// Slow subscribers are skipped rather than blocking the engine loop: SSE
// consumers that fall more than a channel buffer behind miss interior
// frames but always see the terminal state via Done.
func (r *Run) appendPoint(p core.CurvePoint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.curve = append(r.curve, p)
	r.fanOutLocked(streamMsg{point: &p})
}

// appendEvent records a step event into the trace ring and fans it out to
// subscribers. It is the engine's Config.Event bridge, wired only for
// traced runs, and must not block (see appendPoint).
func (r *Run) appendEvent(ev trace.Event) {
	r.ring.Append(ev)
	dropped := r.ring.Dropped()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fanOutLocked(streamMsg{event: &ev, dropped: dropped})
}

func (r *Run) fanOutLocked(msg streamMsg) {
	for _, ch := range r.subs {
		select {
		case ch <- msg:
		default:
		}
	}
}

// SpanSnapshot returns the run's recorded spans (start order, parents
// before children) and how many newer spans the bounded buffer refused.
// ok is false for runs submitted without "spans": true. Safe to call
// while the run executes.
func (r *Run) SpanSnapshot() (spans []otrace.Span, dropped int64, ok bool) {
	if r.tracer == nil {
		return nil, 0, false
	}
	spans, dropped = r.tracer.Snapshot()
	return spans, dropped, true
}

// Tracer returns the run's span tracer (nil unless spec.Spans).
func (r *Run) Tracer() *otrace.Tracer { return r.tracer }

// TraceSnapshot returns the trace ring's retained events (oldest first)
// and how many older ones the ring dropped. ok is false for untraced
// runs. It is safe to call while the run executes.
func (r *Run) TraceSnapshot() (events []trace.Event, dropped int64, ok bool) {
	if r.ring == nil {
		return nil, 0, false
	}
	events, dropped = r.ring.Snapshot()
	return events, dropped, true
}

// Subscribe returns the curve so far plus a channel of subsequent stream
// frames (curve points and, for traced runs, step events). The channel is
// closed when the run finishes; if the run is already terminal the
// returned channel is nil. unsubscribe is safe to call twice.
func (r *Run) Subscribe() (history []core.CurvePoint, ch <-chan streamMsg, unsubscribe func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	history = make([]core.CurvePoint, len(r.curve))
	copy(history, r.curve)
	if r.state.terminal() {
		return history, nil, func() {}
	}
	// Traced runs push one frame per step, far denser than curve points, so
	// the buffer is sized for them.
	c := make(chan streamMsg, 256)
	id := r.nextSub
	r.nextSub++
	r.subs[id] = c
	return history, c, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.subs[id]; ok {
			delete(r.subs, id)
			close(c)
		}
	}
}

// start transitions queued → running, recording the cancel hook a later
// DELETE will invoke. It reports false — and the worker must skip the run
// — when the run was cancelled while still queued.
func (r *Run) start(cancel context.CancelFunc, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateQueued {
		return false
	}
	r.state = StateRunning
	r.started = now
	r.cancel = cancel
	return true
}

// requestCancel asks the run to stop and returns the state observed at
// decision time. A queued run is finished as cancelled on the spot (no
// worker will ever own it); a running run gets its context cancelled and
// reaches StateCancelled when the engine loop notices; a terminal run is
// untouched. cancelledNow reports whether this call itself finished the
// run (the caller owns the metrics increment in that case).
func (r *Run) requestCancel(now time.Time) (state RunState, cancelledNow bool) {
	r.mu.Lock()
	if r.state == StateQueued {
		r.finishLocked(StateCancelled, nil, "", now)
		r.mu.Unlock()
		return StateCancelled, true
	}
	state = r.state
	cancel := r.cancel
	r.mu.Unlock()
	if state == StateRunning && cancel != nil {
		cancel()
	}
	return state, false
}

// finish moves the run to a terminal state, records the outcome, closes
// every subscriber channel, and signals Done. It is a no-op if the run is
// already terminal (a cancel racing a natural completion, for example).
// It reports whether this call performed the transition.
func (r *Run) finish(state RunState, res *core.RunResult, errMsg string, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state.terminal() {
		return false
	}
	r.finishLocked(state, res, errMsg, now)
	return true
}

// finishLocked is finish with r.mu already held and the state known to be
// non-terminal.
func (r *Run) finishLocked(state RunState, res *core.RunResult, errMsg string, now time.Time) {
	r.state = state
	r.result = res
	r.errMsg = errMsg
	r.finished = now
	for id, ch := range r.subs {
		delete(r.subs, id)
		close(ch)
	}
	close(r.done)
}
