package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// spanTreeJSON mirrors the /spans JSON envelope for decoding in tests.
type spanTreeJSON struct {
	ID      string          `json:"id"`
	TraceID string          `json:"trace_id"`
	Spans   int             `json:"spans"`
	Dropped int64           `json:"dropped"`
	Tree    []*spanNodeJSON `json:"tree"`
	Cost    struct {
		WallSeconds float64 `json:"wall_seconds"`
		Cells       []struct {
			Phase string `json:"phase"`
			Shard int    `json:"shard"`
			Part  string `json:"part"`
		} `json:"cells"`
	} `json:"cost"`
}

type spanNodeJSON struct {
	Name     string          `json:"name"`
	Children []*spanNodeJSON `json:"children,omitempty"`
}

// countNames walks the tree tallying span names.
func countNames(nodes []*spanNodeJSON, counts map[string]int) {
	for _, n := range nodes {
		counts[n.Name]++
		countNames(n.Children, counts)
	}
}

// TestRunSpansEndpoint drives a sharded run over two real HTTP workers
// with spans enabled and checks the full tracing surface: the spans
// endpoint serves a stitched tree with worker-side spans under the
// coordinator's rpc spans, the cost summary carries per-shard cells, the
// chrome format renders, the run info folds in the cost summary — and the
// curve is byte-identical to the same run without spans.
func TestRunSpansEndpoint(t *testing.T) {
	path := writeImageCorpus(t, 160, 9)
	coord, ts := newTestServer(t)
	if _, err := coord.Registry().Add("imgs", path, false); err != nil {
		t.Fatal(err)
	}
	w1 := newWorkerServer(t, "imgs", path)
	w2 := newWorkerServer(t, "imgs", path)

	base := RunSpec{Corpus: "imgs", Task: "image", MaxInputs: 50, EvalEvery: 10,
		Seed: 3, Batch: 4, DistWorkers: []string{w1.URL, w2.URL}}
	submit := func(spec RunSpec) *Run {
		t.Helper()
		run, err := coord.Manager().Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		<-run.Done()
		if st := run.State(); st != StateDone {
			t.Fatalf("run %s ended %s: %s", run.ID, st, run.Info().Error)
		}
		return run
	}

	plain := submit(base)
	traced := base
	traced.Spans = true
	run := submit(traced)

	if want, got := plain.Curve(), run.Curve(); !reflect.DeepEqual(want, got) {
		t.Fatalf("spans on/off curve diverged:\nwant %+v\ngot  %+v", want, got)
	}

	// Untraced runs 404 on the spans endpoint.
	resp := mustGet(t, ts.URL+"/runs/"+plain.ID+"/spans")
	decodeBody[errorBody](t, resp, http.StatusNotFound)

	resp = mustGet(t, ts.URL+"/runs/"+run.ID+"/spans")
	body := decodeBody[spanTreeJSON](t, resp, http.StatusOK)
	if body.ID != run.ID || body.TraceID == "" || body.Spans == 0 || len(body.Tree) == 0 {
		t.Fatalf("spans body: %+v", body)
	}
	counts := map[string]int{}
	countNames(body.Tree, counts)
	if counts["run"] != 1 || counts["dist.step_batch"] == 0 || counts["worker.step_batch"] == 0 {
		t.Fatalf("stitched tree missing expected spans: %v", counts)
	}
	if counts["worker.holdout"] != 2 {
		t.Fatalf("want one worker.holdout per shard, got %v", counts)
	}
	shards := map[int]bool{}
	for _, c := range body.Cost.Cells {
		if c.Phase == "extract" && c.Shard >= 0 && c.Part == "" {
			shards[c.Shard] = true
		}
	}
	if len(shards) != 2 {
		t.Fatalf("cost cells cover shards %v, want both: %+v", shards, body.Cost.Cells)
	}

	info := run.Info()
	if info.Spans == 0 || info.Cost == nil || info.Cost.WallSeconds <= 0 {
		t.Fatalf("run info missing span summary: spans=%d cost=%+v", info.Spans, info.Cost)
	}

	chrome := mustGet(t, ts.URL+"/runs/"+run.ID+"/spans?format=chrome")
	defer chrome.Body.Close()
	raw, err := io.ReadAll(chrome.Body)
	if err != nil || chrome.StatusCode != http.StatusOK {
		t.Fatalf("chrome format: status %d err %v", chrome.StatusCode, err)
	}
	if !strings.Contains(string(raw), `"traceEvents"`) || !strings.Contains(string(raw), `"worker.step_batch"`) {
		t.Fatalf("chrome output missing expected content: %.200s", raw)
	}
}

// TestRunSpansSingleProcess pins the non-distributed path: a local run
// with spans on records the engine phase spans and stays byte-identical
// to the same run with spans off.
func TestRunSpansSingleProcess(t *testing.T) {
	m, _ := newTestManager(t, "imgs", 120, 1, 4)
	base := RunSpec{Corpus: "imgs", Task: "image", MaxInputs: 40, EvalEvery: 10, Seed: 7}
	submit := func(spec RunSpec) *Run {
		t.Helper()
		run, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		<-run.Done()
		if st := run.State(); st != StateDone {
			t.Fatalf("run ended %s: %s", st, run.Info().Error)
		}
		return run
	}
	plain := submit(base)
	traced := base
	traced.Spans = true
	run := submit(traced)
	if want, got := plain.Curve(), run.Curve(); !reflect.DeepEqual(want, got) {
		t.Fatalf("spans on/off curve diverged")
	}
	spans, dropped, ok := run.SpanSnapshot()
	if !ok || dropped != 0 || len(spans) == 0 {
		t.Fatalf("span snapshot: ok=%v dropped=%d n=%d", ok, dropped, len(spans))
	}
	names := map[string]int{}
	for _, sp := range spans {
		names[sp.Name]++
	}
	for _, want := range []string{"run", "holdout", "batch", "eval"} {
		if names[want] == 0 {
			t.Fatalf("missing %q span in local run: %v", want, names)
		}
	}
	if _, _, ok := plain.SpanSnapshot(); ok {
		t.Fatal("untraced run reported a span snapshot")
	}
}

// TestProcessSpansEndpoint: the process tracer serves durability and
// cache infrastructure spans for a server with a state directory.
func TestProcessSpansEndpoint(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueCap: 4, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	if _, err := s.Registry().Add("imgs", writeImageCorpus(t, 60, 4), false); err != nil {
		t.Fatal(err)
	}
	run, err := s.Manager().Submit(RunSpec{Corpus: "imgs", Task: "image", MaxInputs: 10})
	if err != nil {
		t.Fatal(err)
	}
	<-run.Done()

	resp := mustGet(t, ts.URL+"/spans")
	body := decodeBody[spanTreeJSON](t, resp, http.StatusOK)
	if body.TraceID == "" || body.Spans == 0 {
		t.Fatalf("process spans body: %+v", body)
	}
	counts := map[string]int{}
	countNames(body.Tree, counts)
	// Recovery ran at open (over an empty directory) and the journal saw
	// the run's submission/start/finish records.
	if counts["runstore.recover"] != 1 || counts["runstore.append"] == 0 {
		t.Fatalf("process spans missing durability records: %v", counts)
	}
}

// TestSessionSpansEndpoint: a session created with spans accumulates one
// tree across versions, with per-part extraction cost cells attributing
// what each version actually paid for.
func TestSessionSpansEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	if _, err := s.Registry().Add("imgs", writeImageCorpus(t, 100, 11), false); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/sessions", map[string]any{
		"corpus": "imgs", "task": "image", "max_inputs": 20, "spans": true,
	})
	sess := decodeBody[SessionInfo](t, resp, http.StatusCreated)
	sessURL := ts.URL + "/sessions/" + sess.ID

	for _, midVersion := range []int{2, 3} {
		decodeBody[map[string]any](t, postJSON(t, sessURL+"/runs", imageRecipeSpec(midVersion)), http.StatusAccepted)
	}
	info := pollSession(t, sessURL, 2)
	if info.Spans == 0 {
		t.Fatalf("session info reports no spans: %+v", info)
	}

	resp = mustGet(t, sessURL+"/spans")
	body := decodeBody[spanTreeJSON](t, resp, http.StatusOK)
	if body.ID != sess.ID || body.Spans == 0 {
		t.Fatalf("session spans body: %+v", body)
	}
	counts := map[string]int{}
	countNames(body.Tree, counts)
	if counts["run"] != 2 {
		t.Fatalf("want one run root per version, got %v", counts)
	}
	parts := 0
	for _, c := range body.Cost.Cells {
		if c.Part != "" {
			parts++
		}
	}
	if parts == 0 {
		t.Fatalf("session cost has no per-part cells: %+v", body.Cost.Cells)
	}
}
