package server

import (
	"strings"
	"testing"
	"time"

	"zombie/internal/core"
)

// submitAndWait submits the spec and blocks until the run is terminal.
func submitAndWait(t *testing.T, m *Manager, spec RunSpec) *Run {
	t.Helper()
	run, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-run.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("run %s never finished (state %s)", run.ID, run.State())
	}
	return run
}

// TestRunTimeoutCancelsWithPartials: a run whose deadline expires ends
// cancelled with its partial curve and is marked timed_out, and the
// metrics count it separately from client cancels.
func TestRunTimeoutCancelsWithPartials(t *testing.T) {
	m, metrics := newTestManager(t, "imgs", 3000, 1, 4)
	spec := longSpec("imgs")
	spec.TimeoutMillis = 300
	run := submitAndWait(t, m, spec)

	if run.State() != StateCancelled {
		t.Fatalf("state = %s, want cancelled", run.State())
	}
	info := run.Info()
	if !info.TimedOut {
		t.Fatalf("run not marked timed out: %+v", info)
	}
	res := run.Result()
	if res == nil || res.Stop != core.StopCancelled {
		t.Fatalf("timed-out run lost its partial result: %+v", res)
	}
	if metrics.RunsTimedOut.Load() != 1 || metrics.RunsCancelled.Load() != 1 {
		t.Fatalf("timed_out=%d cancelled=%d, want 1/1",
			metrics.RunsTimedOut.Load(), metrics.RunsCancelled.Load())
	}
}

// TestClientCancelIsNotTimedOut: an explicit DELETE-path cancel must not
// be counted or labeled as a timeout.
func TestClientCancelIsNotTimedOut(t *testing.T) {
	m, metrics := newTestManager(t, "imgs", 3000, 1, 4)
	run, err := m.Submit(longSpec("imgs"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, run, StateRunning)
	if _, err := m.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, run, StateCancelled)
	if run.Info().TimedOut {
		t.Fatal("client cancel marked timed_out")
	}
	if metrics.RunsTimedOut.Load() != 0 {
		t.Fatalf("runs_timed_out = %d after client cancel", metrics.RunsTimedOut.Load())
	}
}

// TestFaultedRunQuarantineSurfaced: a run with its own fault spec
// completes, reports quarantine counts in its info, and feeds the
// inputs_quarantined metric.
func TestFaultedRunQuarantineSurfaced(t *testing.T) {
	m, metrics := newTestManager(t, "imgs", 600, 1, 4)
	run := submitAndWait(t, m, RunSpec{
		Corpus: "imgs", Task: "image", Mode: "scan-random",
		MaxInputs: 200,
		Faults:    "extract:panic=0.1", FaultSeed: 7,
	})
	if run.State() != StateDone {
		t.Fatalf("state = %s (%s)", run.State(), run.Info().Error)
	}
	info := run.Info()
	if info.Quarantined == 0 {
		t.Fatal("10% panic rate produced no quarantines in run info")
	}
	if metrics.InputsQuarantined.Load() != int64(info.Quarantined) {
		t.Fatalf("metric %d != info %d", metrics.InputsQuarantined.Load(), info.Quarantined)
	}
}

// TestBudgetExceededRunFailsWithResult: a run whose quarantines swamp its
// budget ends failed — but with the partial result attached, unlike an
// assembly error.
func TestBudgetExceededRunFailsWithResult(t *testing.T) {
	m, metrics := newTestManager(t, "imgs", 600, 1, 4)
	run := submitAndWait(t, m, RunSpec{
		Corpus: "imgs", Task: "image", Mode: "scan-random",
		MaxInputs: 200, MaxFailures: 0.25,
		Faults: "extract:panic=0.9", FaultSeed: 7,
	})
	if run.State() != StateFailed {
		t.Fatalf("state = %s, want failed", run.State())
	}
	info := run.Info()
	if !strings.Contains(info.Error, "failure budget exceeded") {
		t.Fatalf("error = %q", info.Error)
	}
	res := run.Result()
	if res == nil || res.Stop != core.StopFailed || len(res.Quarantined) == 0 {
		t.Fatalf("failed run lost its evidence: %+v", res)
	}
	if metrics.RunsFailed.Load() != 1 {
		t.Fatalf("runs_failed = %d", metrics.RunsFailed.Load())
	}
}

// TestSubmitRejectsBadFaultSpec: a malformed fault spec is a 400-class
// submission error, not a failed run.
func TestSubmitRejectsBadFaultSpec(t *testing.T) {
	m, _ := newTestManager(t, "imgs", 100, 1, 4)
	cases := []RunSpec{
		{Corpus: "imgs", Task: "image", Faults: "extract:frob=1"},
		{Corpus: "imgs", Task: "image", Faults: "nonsense"},
		{Corpus: "imgs", Task: "image", TimeoutMillis: -5},
		{Corpus: "imgs", Task: "image", MaxFailures: 1.5},
	}
	for _, spec := range cases {
		if _, err := m.Submit(spec); err == nil {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
}

// TestIndexBuildRetriesThroughTransientFaults: an injected index.build
// fault that clears on a later attempt is ridden out by the retry loop —
// the run still completes, and the retry counter records the attempts.
func TestIndexBuildRetriesThroughTransientFaults(t *testing.T) {
	m, metrics := newTestManager(t, "imgs", 300, 1, 4)
	// Fault seed 2 deterministically fails attempt #0 and passes attempt
	// #1 for this corpus/strategy (the injected id carries the attempt
	// number, so per-attempt outcomes are independent draws).
	run := submitAndWait(t, m, RunSpec{
		Corpus: "imgs", Task: "image", Mode: "zombie",
		MaxInputs: 50,
		Faults:    "index.build:err=0.5", FaultSeed: 2,
	})
	if run.State() != StateDone {
		t.Fatalf("state = %s (%s)", run.State(), run.Info().Error)
	}
	if got := metrics.IndexBuildRetries.Load(); got != 1 {
		t.Fatalf("index_build_retries = %d, want 1", got)
	}
}

// TestIndexBuildExhaustsRetries: with every attempt failing, the run
// fails with an error naming the attempt count.
func TestIndexBuildExhaustsRetries(t *testing.T) {
	m, metrics := newTestManager(t, "imgs", 300, 1, 4)
	run := submitAndWait(t, m, RunSpec{
		Corpus: "imgs", Task: "image", Mode: "zombie",
		MaxInputs: 50,
		Faults:    "index.build:err=1", FaultSeed: 3,
	})
	if run.State() != StateFailed {
		t.Fatalf("state = %s, want failed", run.State())
	}
	if !strings.Contains(run.Info().Error, "after 3 attempts") {
		t.Fatalf("error = %q", run.Info().Error)
	}
	if got := metrics.IndexBuildRetries.Load(); got != 2 {
		t.Fatalf("index_build_retries = %d, want 2", got)
	}
}
