package server

import (
	"fmt"
	"sort"
	"sync"

	"zombie/internal/corpus"
)

// CorpusInfo is the externally visible description of a registered corpus.
type CorpusInfo struct {
	Name   string `json:"name"`
	Path   string `json:"path"`
	Stream bool   `json:"stream"`
	Inputs int    `json:"inputs"`
	// SkippedLines counts corrupt JSONL lines dropped while loading the
	// corpus into memory (always 0 for streamed corpora, which index lazily
	// and surface corrupt records at read time as quarantined inputs).
	SkippedLines int `json:"skipped_lines,omitempty"`
}

type corpusEntry struct {
	info  CorpusInfo
	store corpus.Store
}

// Registry holds the server's named corpora. Registration opens the JSONL
// file once — either fully into memory or as a streamed DiskStore — and
// every run referencing the name shares that one store. DiskStore is safe
// for concurrent use, and MemStore is read-only after construction, so no
// per-run locking is needed here.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*corpusEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: map[string]*corpusEntry{}} }

// Add opens the JSONL corpus at path and registers it under name. With
// stream=true the corpus is indexed but not loaded (DiskStore); otherwise
// it is read fully into memory. Re-registering an existing name fails —
// replacing a corpus under running runs would be a correctness landmine.
func (r *Registry) Add(name, path string, stream bool) (CorpusInfo, error) {
	if name == "" {
		return CorpusInfo{}, fmt.Errorf("server: corpus name required")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[name]; ok {
		return CorpusInfo{}, fmt.Errorf("server: corpus %q already registered", name)
	}
	var store corpus.Store
	var skipped int
	if stream {
		ds, err := corpus.OpenDiskStore(path)
		if err != nil {
			return CorpusInfo{}, err
		}
		store = ds
	} else {
		// Tolerant load: a server registering client-supplied corpora must
		// survive the odd corrupt line or torn tail; the skip count is
		// reported in the corpus info so the damage is visible, not silent.
		inputs, skips, err := corpus.ReadJSONLTolerant(path)
		if err != nil {
			return CorpusInfo{}, err
		}
		skipped = len(skips)
		store = corpus.NewMemStore(inputs)
	}
	e := &corpusEntry{
		info:  CorpusInfo{Name: name, Path: path, Stream: stream, Inputs: store.Len(), SkippedLines: skipped},
		store: store,
	}
	r.m[name] = e
	return e.info, nil
}

// Get returns the store registered under name.
func (r *Registry) Get(name string) (corpus.Store, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.m[name]
	if !ok {
		return nil, fmt.Errorf("server: unknown corpus %q", name)
	}
	return e.store, nil
}

// Info returns the description of the named corpus.
func (r *Registry) Info(name string) (CorpusInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.m[name]
	if !ok {
		return CorpusInfo{}, false
	}
	return e.info, true
}

// List returns all registered corpora sorted by name.
func (r *Registry) List() []CorpusInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]CorpusInfo, 0, len(r.m))
	for _, e := range r.m {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered corpora.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Close closes every streamed corpus. The registry is unusable afterwards.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, e := range r.m {
		if ds, ok := e.store.(*corpus.DiskStore); ok {
			if err := ds.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	r.m = map[string]*corpusEntry{}
	return first
}
