package server

import (
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// pollSession fetches the session until version (1-based) reaches a
// terminal state, failing the test if it ends anything but done.
func pollSession(t *testing.T, url string, version int) SessionInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		info := decodeBody[SessionInfo](t, mustGet(t, url), http.StatusOK)
		if len(info.Versions) >= version {
			v := info.Versions[version-1]
			switch v.State {
			case StateDone:
				return info
			case StateFailed, StateCancelled:
				t.Fatalf("session version %d ended %s: %s", version, v.State, v.Error)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("session version %d did not finish", version)
	return SessionInfo{}
}

func imageRecipeSpec(midVersion int) map[string]any {
	return map[string]any{
		"name": "rec",
		"parts": []map[string]any{
			{"name": "base", "kind": "image", "version": 1},
			{"name": "mid", "kind": "image", "version": midVersion, "deps": []string{"base"}},
		},
	}
}

// TestSessionEndToEnd is the workspace acceptance flow over HTTP: create
// a session, run recipe v1, edit one part, run v2, and observe the
// part-level cache reuse and bandit warm start in the session view.
func TestSessionEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	path := writeImageCorpus(t, 500, 21)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "imgs", Path: path}), http.StatusCreated)

	spec := SessionSpec{Name: "ws", Corpus: "imgs", Task: "image", K: 8, Seed: 3, MaxInputs: 120, EvalEvery: 25}
	created := decodeBody[SessionInfo](t, postJSON(t, ts.URL+"/sessions", spec), http.StatusCreated)
	if created.ID == "" || created.Name != "ws" || created.Decay != defaultSessionDecay {
		t.Fatalf("created session: %+v", created)
	}
	list := decodeBody[[]SessionInfo](t, mustGet(t, ts.URL+"/sessions"), http.StatusOK)
	if len(list) != 1 || list[0].ID != created.ID {
		t.Fatalf("session list: %+v", list)
	}
	sessURL := ts.URL + "/sessions/" + created.ID

	// Version 1: cold run of the two-part recipe.
	sub := decodeBody[map[string]any](t, postJSON(t, sessURL+"/runs", imageRecipeSpec(2)), http.StatusAccepted)
	if sub["version"] != float64(1) || sub["state"] != string(StateQueued) {
		t.Fatalf("submit v1: %v", sub)
	}
	info := pollSession(t, sessURL, 1)
	v1 := info.Versions[0]
	if v1.WarmStart.Applied || v1.WarmStart.SeededPulls != 0 {
		t.Fatalf("v1 warm start: %+v", v1.WarmStart)
	}
	if v1.CacheMisses == 0 {
		t.Fatalf("cold v1 cache traffic: hits=%d misses=%d", v1.CacheHits, v1.CacheMisses)
	}
	if len(v1.Parts) != 2 || v1.Parts[0].Fingerprint == "" {
		t.Fatalf("v1 parts: %+v", v1.Parts)
	}
	if len(v1.Curve) == 0 || v1.Inputs != 120 || v1.Stop != "budget" {
		t.Fatalf("v1 run summary: %+v", v1)
	}

	// Version 2: edit one part. The unchanged part replays from the cache
	// and the bandit warm-starts from v1's arm statistics.
	decodeBody[map[string]any](t, postJSON(t, sessURL+"/runs", imageRecipeSpec(3)), http.StatusAccepted)
	info = pollSession(t, sessURL, 2)
	v2 := info.Versions[1]
	if !v2.WarmStart.Applied || v2.WarmStart.SeededPulls == 0 || v2.WarmStart.Decay != defaultSessionDecay {
		t.Fatalf("v2 warm start: %+v", v2.WarmStart)
	}
	if v2.CacheHits == 0 {
		t.Fatalf("v2 saw no cache hits despite one unchanged part: %+v", v2)
	}
	if v2.Diff == nil || !reflect.DeepEqual(v2.Diff.Changed, []string{"mid"}) {
		t.Fatalf("v2 diff: %+v", v2.Diff)
	}
	if v2.SharedParts != 1 || v2.TotalParts != 2 {
		t.Fatalf("v2 shared parts %d/%d, want 1/2", v2.SharedParts, v2.TotalParts)
	}
	if v2.Fingerprint == v1.Fingerprint {
		t.Fatal("edited recipe kept the same fingerprint")
	}
}

// TestSessionZeroDecayRunsCold pins the wire-level decay contract: an
// explicit decay of 0 disables warm-starting even with prior versions.
func TestSessionZeroDecayRunsCold(t *testing.T) {
	_, ts := newTestServer(t)
	path := writeImageCorpus(t, 400, 22)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "imgs", Path: path}), http.StatusCreated)

	zero := 0.0
	spec := SessionSpec{Corpus: "imgs", Task: "image", K: 8, Seed: 3, MaxInputs: 60, EvalEvery: 20, Decay: &zero}
	created := decodeBody[SessionInfo](t, postJSON(t, ts.URL+"/sessions", spec), http.StatusCreated)
	if created.Decay != 0 {
		t.Fatalf("decay = %v, want explicit 0", created.Decay)
	}
	sessURL := ts.URL + "/sessions/" + created.ID
	decodeBody[map[string]any](t, postJSON(t, sessURL+"/runs", imageRecipeSpec(2)), http.StatusAccepted)
	pollSession(t, sessURL, 1)
	decodeBody[map[string]any](t, postJSON(t, sessURL+"/runs", imageRecipeSpec(3)), http.StatusAccepted)
	info := pollSession(t, sessURL, 2)
	if ws := info.Versions[1].WarmStart; ws.Applied || ws.SeededPulls != 0 {
		t.Fatalf("decay=0 v2 warm start: %+v", ws)
	}
}

func TestSessionEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t)
	path := writeImageCorpus(t, 200, 23)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "imgs", Path: path}), http.StatusCreated)

	// Bad session specs are 400s with a reason.
	bad := 1.5
	cases := []SessionSpec{
		{Corpus: "ghost", Task: "image"},
		{Corpus: "imgs", Task: "video"},
		{Corpus: "imgs", Task: "image", K: -1},
		{Corpus: "imgs", Task: "image", Decay: &bad},
		{Corpus: "imgs", Task: "image", Policy: "bogus"},
	}
	for i, spec := range cases {
		body := decodeBody[errorBody](t, postJSON(t, ts.URL+"/sessions", spec), http.StatusBadRequest)
		if body.Error == "" {
			t.Fatalf("case %d: empty error body", i)
		}
	}

	// Unknown sessions are 404s for both GET and run submission.
	decodeBody[errorBody](t, mustGet(t, ts.URL+"/sessions/s999"), http.StatusNotFound)
	decodeBody[errorBody](t, postJSON(t, ts.URL+"/sessions/s999/runs", imageRecipeSpec(2)), http.StatusNotFound)

	// An invalid recipe (cycle) is rejected at submission time.
	created := decodeBody[SessionInfo](t, postJSON(t, ts.URL+"/sessions",
		SessionSpec{Corpus: "imgs", Task: "image", K: 8, MaxInputs: 40, EvalEvery: 20}), http.StatusCreated)
	cyclic := map[string]any{"name": "rec", "parts": []map[string]any{
		{"name": "a", "kind": "image", "deps": []string{"b"}},
		{"name": "b", "kind": "image", "version": 2, "deps": []string{"a"}},
	}}
	body := decodeBody[errorBody](t, postJSON(t, ts.URL+"/sessions/"+created.ID+"/runs", cyclic), http.StatusBadRequest)
	if body.Error == "" {
		t.Fatal("cycle rejection carried no reason")
	}
}

// TestStrictSpecDecoding pins the request-body contract on every POST
// endpoint: a fully-populated spec with only known fields is accepted,
// and any unknown field — typo or stale client — is a 400 naming the
// problem instead of a silent drop.
func TestStrictSpecDecoding(t *testing.T) {
	_, ts := newTestServer(t)
	path := writeImageCorpus(t, 300, 24)
	decodeBody[CorpusInfo](t, postJSON(t, ts.URL+"/corpora", corpusAddRequest{Name: "imgs", Path: path}), http.StatusCreated)

	// Every documented RunSpec field decodes.
	full := map[string]any{
		"corpus": "imgs", "task": "image", "mode": "zombie",
		"policy": "ucb1:1.0", "k": 8, "seed": 5, "feature_version": 2,
		"max_inputs": 30, "eval_every": 10, "early_stop": false,
		"batch": 1, "trace": true, "timeout_ms": 60000,
		"max_failures": 0.5, "faults": "", "fault_seed": 7,
		"shards": 2, "dist_workers": []string{},
	}
	decodeBody[RunInfo](t, postJSON(t, ts.URL+"/runs", full), http.StatusAccepted)

	// Every documented SessionSpec field decodes.
	fullSession := map[string]any{
		"name": "ws", "corpus": "imgs", "task": "image",
		"policy": "ucb1:1.0", "k": 8, "seed": 5, "decay": 0.25,
		"max_inputs": 30, "eval_every": 10, "early_stop": false, "batch": 1,
	}
	created := decodeBody[SessionInfo](t, postJSON(t, ts.URL+"/sessions", fullSession), http.StatusCreated)

	// Unknown fields are 400s that say what went wrong, everywhere.
	badBodies := []struct {
		url  string
		body map[string]any
	}{
		{ts.URL + "/runs", map[string]any{"corpus": "imgs", "task": "image", "polcy": "typo"}},
		{ts.URL + "/sessions", map[string]any{"corpus": "imgs", "task": "image", "decae": 0.5}},
		{ts.URL + "/sessions/" + created.ID + "/runs", map[string]any{
			"name": "rec", "parts": []map[string]any{{"name": "a", "kind": "image", "verison": 2}},
		}},
		{ts.URL + "/corpora", map[string]any{"name": "x", "path": path, "strem": true}},
	}
	for _, c := range badBodies {
		body := decodeBody[errorBody](t, postJSON(t, c.url, c.body), http.StatusBadRequest)
		if body.Error == "" {
			t.Fatalf("%s: unknown-field rejection carried no reason", c.url)
		}
	}

	// Malformed bodies are also 400s, not decode surprises.
	resp, err := http.Post(ts.URL+"/sessions", "application/json", strings.NewReader(`{"corpus": `))
	if err != nil {
		t.Fatal(err)
	}
	decodeBody[errorBody](t, resp, http.StatusBadRequest)
}
