package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zombie/internal/index"
)

func TestIndexCacheSingleflight(t *testing.T) {
	metrics := NewMetrics(nil)
	cache := NewIndexCache(metrics)
	key := IndexKey{Corpus: "c", Strategy: "kmeans", K: 8, Seed: 1}

	var builds atomic.Int64
	build := func() (*index.Groups, error) {
		builds.Add(1)
		time.Sleep(30 * time.Millisecond) // hold the flight open for the pack
		return &index.Groups{Strategy: "kmeans"}, nil
	}

	const callers = 8
	results := make([]*index.Groups, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := cache.Get(context.Background(), key, build)
			if err != nil {
				t.Error(err)
			}
			results[i] = g
		}(i)
	}
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	for i, g := range results {
		if g != results[0] {
			t.Fatalf("caller %d got a different Groups pointer", i)
		}
	}
	if metrics.IndexBuilds.Load() != 1 || metrics.IndexCacheHits.Load() != callers-1 {
		t.Fatalf("metrics: builds=%d hits=%d", metrics.IndexBuilds.Load(), metrics.IndexCacheHits.Load())
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
}

func TestIndexCacheDistinctKeysBuildSeparately(t *testing.T) {
	cache := NewIndexCache(nil)
	var builds atomic.Int64
	build := func() (*index.Groups, error) {
		builds.Add(1)
		return &index.Groups{}, nil
	}
	a := IndexKey{Corpus: "c", Strategy: "s", K: 8, Seed: 1}
	b := IndexKey{Corpus: "c", Strategy: "s", K: 16, Seed: 1}
	if _, err := cache.Get(context.Background(), a, build); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Get(context.Background(), b, build); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2 (distinct keys)", builds.Load())
	}
}

func TestIndexCacheEvictsFailedBuild(t *testing.T) {
	cache := NewIndexCache(nil)
	key := IndexKey{Corpus: "c", Strategy: "s", K: 8, Seed: 1}
	boom := errors.New("boom")
	if _, err := cache.Get(context.Background(), key, func() (*index.Groups, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if cache.Len() != 0 {
		t.Fatal("failed build left a cache entry")
	}
	// The next request retries and can succeed.
	g, err := cache.Get(context.Background(), key, func() (*index.Groups, error) { return &index.Groups{}, nil })
	if err != nil || g == nil {
		t.Fatalf("retry failed: %v", err)
	}
}

func TestIndexCacheWaiterRespectsContext(t *testing.T) {
	cache := NewIndexCache(nil)
	key := IndexKey{Corpus: "c", Strategy: "s", K: 8, Seed: 1}
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		cache.Get(context.Background(), key, func() (*index.Groups, error) { //nolint:errcheck
			close(started)
			<-release
			return &index.Groups{}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cache.Get(ctx, key, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
}
