package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"zombie/internal/fault"
)

// newDurableServer mirrors the zombie-serve startup sequence over a state
// directory: New (which replays the directory), register the corpus, then
// Recover to re-queue interrupted work. It returns the server plus what
// Recover re-queued.
func newDurableServer(t *testing.T, stateDir, corpusPath string, cfg Config) (*Server, int, int) {
	t.Helper()
	cfg.StateDir = stateDir
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 16
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Add("imgs", corpusPath, false); err != nil {
		t.Fatal(err)
	}
	runs, versions := s.Recover()
	return s, runs, versions
}

func shutdown(t *testing.T, s *Server, wait time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	s.Shutdown(ctx) //nolint:errcheck // crash tests cut the drain short on purpose
}

// awaitRun blocks until the run is terminal and asserts it ended done.
func awaitRun(t *testing.T, s *Server, id string) RunInfo {
	t.Helper()
	run, ok := s.Manager().Get(id)
	if !ok {
		t.Fatalf("run %s missing", id)
	}
	select {
	case <-run.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("run %s did not finish", id)
	}
	info := run.Info()
	if info.State != StateDone {
		t.Fatalf("run %s state = %s (%s)", id, info.State, info.Error)
	}
	return info
}

// TestRestartAfterKillResumesRun is the chaos-kill resume contract: a
// server dies (simulated via the store's freeze hook, which drops every
// journal write from that moment — including Close's final snapshot —
// exactly as kill -9 would) while a run is mid-curve; a second server
// over the same state directory re-queues the run, re-executes it, and
// the recovered curve is byte-identical to an uninterrupted run of the
// same spec.
func TestRestartAfterKillResumesRun(t *testing.T) {
	state := t.TempDir()
	corpus := writeImageCorpus(t, 500, 31)

	// Per-extraction latency stretches the run so the "crash" reliably
	// lands mid-curve. Latency faults never alter results.
	spec := RunSpec{Corpus: "imgs", Task: "image", Mode: "zombie", K: 8, Seed: 3,
		MaxInputs: 400, EvalEvery: 10, Faults: "extract:lat=3ms", FaultSeed: 7}

	s1, runs, versions := newDurableServer(t, state, corpus, Config{})
	if runs != 0 || versions != 0 {
		t.Fatalf("fresh state dir recovered %d runs, %d versions", runs, versions)
	}
	victim, err := s1.Manager().Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for len(victim.Curve()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("run never produced two curve points (state %s)", victim.State())
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.store.(*DurableStore).freeze() // the "kill -9"
	shutdown(t, s1, 50*time.Millisecond)

	// Restart: the run must come back, re-queue, and resume to done.
	s2, runs, versions := newDurableServer(t, state, corpus, Config{})
	defer shutdown(t, s2, 10*time.Second)
	if runs != 1 || versions != 0 {
		t.Fatalf("recovered %d runs, %d versions, want 1 run", runs, versions)
	}
	recovered := awaitRun(t, s2, victim.ID)
	if recovered.Recovered != 1 {
		t.Fatalf("recovered count = %d, want 1", recovered.Recovered)
	}
	if got := s2.Obs().FlatSnapshot()["runs_recovered"]; got != 1 {
		t.Fatalf("runs_recovered metric = %d, want 1", got)
	}

	// The recovered curve is byte-identical to an uninterrupted run.
	reference, err := s2.Manager().Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	refInfo := awaitRun(t, s2, reference.ID)
	recoveredRun, _ := s2.Manager().Get(victim.ID)
	if !reflect.DeepEqual(recoveredRun.Curve(), reference.Curve()) {
		t.Fatalf("recovered curve diverged from uninterrupted run:\n%v\nvs\n%v",
			recoveredRun.Curve(), reference.Curve())
	}
	if recovered2 := recoveredRun.Info(); recovered2.FinalQuality != refInfo.FinalQuality {
		t.Fatalf("recovered quality %v != reference %v", recovered2.FinalQuality, refInfo.FinalQuality)
	}
}

// TestGracefulRestartPreservesHistory: a cleanly shut down server's runs
// come back terminal with their curves and summaries (via the final
// snapshot), IDs stay monotonic, and the step-trace endpoint says Gone
// rather than pretending the unjournaled trace exists.
func TestGracefulRestartPreservesHistory(t *testing.T) {
	state := t.TempDir()
	corpus := writeImageCorpus(t, 400, 32)
	spec := RunSpec{Corpus: "imgs", Task: "image", Mode: "zombie", K: 8, Seed: 3,
		MaxInputs: 60, EvalEvery: 20, Trace: true}

	s1, _, _ := newDurableServer(t, state, corpus, Config{})
	first, err := s1.Manager().Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := awaitRun(t, s1, first.ID)
	shutdown(t, s1, 10*time.Second)

	s2, runs, versions := newDurableServer(t, state, corpus, Config{})
	defer shutdown(t, s2, 10*time.Second)
	if runs != 0 || versions != 0 {
		t.Fatalf("graceful restart re-queued %d runs, %d versions, want none", runs, versions)
	}
	restored, ok := s2.Manager().Get(first.ID)
	if !ok {
		t.Fatalf("run %s lost across restart", first.ID)
	}
	info := restored.Info()
	if info.State != StateDone || info.Recovered != 0 {
		t.Fatalf("restored run: %+v", info)
	}
	if info.FinalQuality != done.FinalQuality || info.InputsProcessed != done.InputsProcessed ||
		info.Stop != done.Stop || info.CurvePoints != done.CurvePoints {
		t.Fatalf("restored summary diverged:\n%+v\nvs\n%+v", info, done)
	}
	select {
	case <-restored.Done():
	default:
		t.Fatal("restored terminal run's Done channel is open")
	}

	// IDs continue after the highest persisted one instead of colliding.
	second, err := s2.Manager().Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != "r2" {
		t.Fatalf("post-restart run ID = %s, want r2", second.ID)
	}
	awaitRun(t, s2, second.ID)

	// The step trace was deliberately not journaled: Gone, not a 409/500.
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	resp := mustGet(t, ts.URL+"/runs/"+first.ID+"/events")
	decodeBody[errorBody](t, resp, http.StatusGone)
	// The re-executed second run served its trace normally.
	resp = mustGet(t, ts.URL+"/runs/"+second.ID+"/events")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh run events status = %d", resp.StatusCode)
	}
}

// TestSessionRestartWarmStartsFromPersistedArms: session history survives
// a restart, and the first post-restart version diffs against — and
// warm-starts from the persisted arm snapshots of — the pre-restart
// history. A version interrupted by a crash is re-queued and completes.
func TestSessionRestartWarmStartsFromPersistedArms(t *testing.T) {
	state := t.TempDir()
	corpus := writeImageCorpus(t, 500, 33)
	sessionSpec := SessionSpec{Name: "ws", Corpus: "imgs", Task: "image", K: 8, Seed: 3,
		MaxInputs: 120, EvalEvery: 25}

	s1, _, _ := newDurableServer(t, state, corpus, Config{})
	ts1 := httptest.NewServer(s1.Handler())
	created := decodeBody[SessionInfo](t, postJSON(t, ts1.URL+"/sessions", sessionSpec), http.StatusCreated)
	decodeBody[map[string]any](t, postJSON(t, ts1.URL+"/sessions/"+created.ID+"/runs", imageRecipeSpec(2)), http.StatusAccepted)
	pollSession(t, ts1.URL+"/sessions/"+created.ID, 1)
	ts1.Close()
	shutdown(t, s1, 10*time.Second)

	// Restart: v1 is visible with its curve; v2 submitted now diffs
	// against v1's recipe and warm-starts from its persisted arms. The
	// extraction latency stretches version runs so the crash below
	// reliably lands while v3 is still in flight (latency faults never
	// alter results).
	slow, err := fault.Parse("extract:lat=3ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, _ := newDurableServer(t, state, corpus, Config{Faults: slow})
	ts2 := httptest.NewServer(s2.Handler())
	info := decodeBody[SessionInfo](t, mustGet(t, ts2.URL+"/sessions/"+created.ID), http.StatusOK)
	if len(info.Versions) != 1 || info.Versions[0].State != StateDone || len(info.Versions[0].Curve) == 0 {
		t.Fatalf("restored session: %+v", info)
	}
	decodeBody[map[string]any](t, postJSON(t, ts2.URL+"/sessions/"+created.ID+"/runs", imageRecipeSpec(3)), http.StatusAccepted)
	info = pollSession(t, ts2.URL+"/sessions/"+created.ID, 2)
	v2 := info.Versions[1]
	if !v2.WarmStart.Applied || v2.WarmStart.SeededPulls == 0 {
		t.Fatalf("post-restart v2 warm start: %+v", v2.WarmStart)
	}
	if v2.Diff == nil || !reflect.DeepEqual(v2.Diff.Changed, []string{"mid"}) {
		t.Fatalf("post-restart v2 diff: %+v", v2.Diff)
	}

	// Crash with v3 in flight: the next server re-queues and finishes it.
	// (v3 edits the base part; image feature versions only go up to 3.)
	v3spec := map[string]any{
		"name": "rec",
		"parts": []map[string]any{
			{"name": "base", "kind": "image", "version": 2},
			{"name": "mid", "kind": "image", "version": 3, "deps": []string{"base"}},
		},
	}
	decodeBody[map[string]any](t, postJSON(t, ts2.URL+"/sessions/"+created.ID+"/runs", v3spec), http.StatusAccepted)
	s2.store.(*DurableStore).freeze()
	ts2.Close()
	shutdown(t, s2, 50*time.Millisecond)

	s3, _, versions := newDurableServer(t, state, corpus, Config{})
	defer shutdown(t, s3, 10*time.Second)
	if versions != 1 {
		t.Fatalf("recovered %d versions, want 1", versions)
	}
	if got := s3.Obs().FlatSnapshot()["versions_recovered"]; got != 1 {
		t.Fatalf("versions_recovered metric = %d, want 1", got)
	}
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	info = pollSession(t, ts3.URL+"/sessions/"+created.ID, 3)
	v3 := info.Versions[2]
	if !v3.WarmStart.Applied || v3.WarmStart.SeededPulls == 0 {
		t.Fatalf("recovered v3 warm start: %+v", v3.WarmStart)
	}
}

// TestJournalErrorsDemoteToMemory: a dying disk under the state directory
// (every journal append failing, injected at the journal.write site)
// never fails a run — the store absorbs the errors, demotes itself to
// memory-only after the limit, and the next startup simply finds nothing.
func TestJournalErrorsDemoteToMemory(t *testing.T) {
	state := t.TempDir()
	corpus := writeImageCorpus(t, 300, 34)
	inj, err := fault.Parse("journal.write:err=1", 1)
	if err != nil {
		t.Fatal(err)
	}

	s1, _, _ := newDurableServer(t, state, corpus, Config{Faults: inj})
	run, err := s1.Manager().Submit(RunSpec{Corpus: "imgs", Task: "image", Mode: "zombie",
		K: 8, Seed: 3, MaxInputs: 40, EvalEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	awaitRun(t, s1, run.ID) // journal failures must not touch the run
	ds := s1.store.(*DurableStore)
	if !ds.Demoted() {
		t.Fatal("store not demoted after persistent journal failures")
	}
	snap := s1.Obs().FlatSnapshot()
	if snap["journal_errors"] < journalErrorLimit {
		t.Fatalf("journal_errors = %d, want >= %d", snap["journal_errors"], journalErrorLimit)
	}
	if snap["journal_demoted"] != 1 {
		t.Fatalf("journal_demoted gauge = %d, want 1", snap["journal_demoted"])
	}
	shutdown(t, s1, 10*time.Second)

	// The demoted store persisted nothing: a restart starts clean.
	s2, runs, versions := newDurableServer(t, state, corpus, Config{})
	defer shutdown(t, s2, 10*time.Second)
	if runs != 0 || versions != 0 {
		t.Fatalf("demoted store left recoverable state: %d runs, %d versions", runs, versions)
	}
	if _, ok := s2.Manager().Get(run.ID); ok {
		t.Fatal("demoted store persisted the run anyway")
	}
}
