package server

import (
	"sync/atomic"

	"zombie/internal/featcache"
)

// Metrics is the server's counter set, exported at /metrics as a flat
// expvar-style JSON object. Counters are atomics so the run workers and
// HTTP handlers update them without shared locks; gauges (queue depth,
// running count) are sampled from their owners at serve time.
type Metrics struct {
	// Run lifecycle counters. RunsTimedOut is the subset of RunsCancelled
	// that hit their deadline rather than a client's DELETE.
	RunsStarted   atomic.Int64
	RunsCompleted atomic.Int64
	RunsFailed    atomic.Int64
	RunsCancelled atomic.Int64
	RunsTimedOut  atomic.Int64
	// InputsProcessed sums RunResult.InputsProcessed over finished runs;
	// InputsQuarantined sums their quarantine-list lengths.
	InputsProcessed   atomic.Int64
	InputsQuarantined atomic.Int64
	// RunWallMillis sums wall-clock run time (start to terminal state) over
	// finished runs, in milliseconds. Exposed as both run_wall_ms and the
	// truncated run_seconds.
	RunWallMillis atomic.Int64
	// Index cache traffic: builds actually executed vs. requests served
	// from (or coalesced onto) an existing entry. IndexBuildRetries counts
	// attempts after a failed first build.
	IndexBuilds       atomic.Int64
	IndexCacheHits    atomic.Int64
	IndexBuildRetries atomic.Int64
}

// snapshot renders the counters plus caller-sampled gauges, including the
// extraction cache's own counter snapshot under feat_cache_* keys.
func (m *Metrics) snapshot(queueDepth, running, corpora int, fc featcache.Stats) map[string]int64 {
	demoted := int64(0)
	if fc.DiskDemoted {
		demoted = 1
	}
	return map[string]int64{
		"feat_cache_hits":         fc.Hits,
		"feat_cache_misses":       fc.Misses,
		"feat_cache_disk_hits":    fc.DiskHits,
		"feat_cache_evictions":    fc.Evictions,
		"feat_cache_entries":      fc.Entries,
		"feat_cache_bytes":        fc.Bytes,
		"feat_cache_disk_entries": fc.DiskEntries,
		"feat_cache_disk_bytes":   fc.DiskBytes,
		"feat_cache_disk_errors":  fc.DiskErrors,
		"feat_cache_disk_demoted": demoted,
		"runs_started":            m.RunsStarted.Load(),
		"runs_completed":          m.RunsCompleted.Load(),
		"runs_failed":             m.RunsFailed.Load(),
		"runs_cancelled":          m.RunsCancelled.Load(),
		"runs_timed_out":          m.RunsTimedOut.Load(),
		"inputs_processed":        m.InputsProcessed.Load(),
		"inputs_quarantined":      m.InputsQuarantined.Load(),
		"run_wall_ms":             m.RunWallMillis.Load(),
		"run_seconds":             m.RunWallMillis.Load() / 1000,
		"index_builds":            m.IndexBuilds.Load(),
		"index_cache_hits":        m.IndexCacheHits.Load(),
		"index_build_retries":     m.IndexBuildRetries.Load(),
		"queue_depth":             int64(queueDepth),
		"runs_running":            int64(running),
		"corpora":                 int64(corpora),
	}
}
