package server

import (
	"zombie/internal/featcache"
	"zombie/internal/obs"
	"zombie/internal/otrace"
)

// Metrics is the server's counter set, declared against an obs.Registry
// so one set of declarations feeds both /metrics expositions (the flat
// JSON map served since PR 1 and the Prometheus text format). Counters
// are registry atomics so run workers and HTTP handlers update them
// without shared locks; gauges (queue depth, running count, cache
// residency) are registered as sampling funcs against their owners.
type Metrics struct {
	reg *obs.Registry

	// Run lifecycle counters. RunsTimedOut is the subset of RunsCancelled
	// that hit their deadline rather than a client's DELETE.
	RunsStarted   *obs.Counter
	RunsCompleted *obs.Counter
	RunsFailed    *obs.Counter
	RunsCancelled *obs.Counter
	RunsTimedOut  *obs.Counter
	// InputsProcessed sums RunResult.InputsProcessed over finished runs;
	// InputsQuarantined sums their quarantine-list lengths.
	InputsProcessed   *obs.Counter
	InputsQuarantined *obs.Counter
	// RunWallMillis sums wall-clock run time (start to terminal state) over
	// finished runs, in milliseconds. Exposed as both run_wall_ms and the
	// truncated run_seconds.
	RunWallMillis *obs.Counter
	// Index cache traffic: builds actually executed vs. requests served
	// from (or coalesced onto) an existing entry. IndexBuildRetries counts
	// attempts after a failed first build.
	IndexBuilds       *obs.Counter
	IndexCacheHits    *obs.Counter
	IndexBuildRetries *obs.Counter
	// Durability counters. RunsRecovered / VersionsRecovered count
	// interrupted runs and session versions re-queued from the state
	// directory at startup; JournalErrors counts absorbed journal write
	// failures; SnapshotMillis sums time spent writing state snapshots
	// (exposed as the truncated snapshot_seconds too).
	RunsRecovered     *obs.Counter
	VersionsRecovered *obs.Counter
	JournalErrors     *obs.Counter
	SnapshotMillis    *obs.Counter
	// Span-tracer counters: spans recorded into any run or process tracer,
	// and spans refused because a bounded buffer was full (the buffer keeps
	// the earliest spans — see otrace — so a non-zero drop count means the
	// tail of a long run is unattributed, not the start).
	SpansRecorded *obs.Counter
	SpansDropped  *obs.Counter
}

// NewMetrics declares the server's counters against reg (a fresh registry
// when nil). Declaration is idempotent, so two Metrics over one registry
// share series.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Metrics{
		reg:               reg,
		RunsStarted:       reg.Counter("runs_started", "Runs accepted and enqueued."),
		RunsCompleted:     reg.Counter("runs_completed", "Runs finished in state done."),
		RunsFailed:        reg.Counter("runs_failed", "Runs finished in state failed."),
		RunsCancelled:     reg.Counter("runs_cancelled", "Runs cancelled by a client or a deadline."),
		RunsTimedOut:      reg.Counter("runs_timed_out", "Cancelled runs that hit their deadline."),
		InputsProcessed:   reg.Counter("inputs_processed", "Inputs run through feature code, summed over finished runs."),
		InputsQuarantined: reg.Counter("inputs_quarantined", "Inputs quarantined after absorbed failures, summed over finished runs."),
		RunWallMillis:     reg.Counter("run_wall_ms", "Cumulative run wall-clock time in milliseconds."),
		IndexBuilds:       reg.Counter("index_builds", "Index builds actually executed."),
		IndexCacheHits:    reg.Counter("index_cache_hits", "Index requests served from (or coalesced onto) a cached build."),
		IndexBuildRetries: reg.Counter("index_build_retries", "Index build attempts after a failed first try."),
		RunsRecovered:     reg.Counter("runs_recovered", "Interrupted runs re-queued from the state directory at startup."),
		VersionsRecovered: reg.Counter("versions_recovered", "Interrupted session versions re-queued from the state directory at startup."),
		JournalErrors:     reg.Counter("journal_errors", "Run-journal write failures absorbed by the durable store."),
		SnapshotMillis:    reg.Counter("snapshot_ms", "Cumulative state-snapshot write time in milliseconds."),
		SpansRecorded:     reg.Counter("spans_recorded", "Timing spans recorded across all span tracers."),
		SpansDropped:      reg.Counter("spans_dropped", "Timing spans refused by full span buffers."),
	}
	reg.CounterFunc("run_seconds", "Cumulative run wall-clock time in whole seconds.",
		func() int64 { return m.RunWallMillis.Load() / 1000 })
	reg.CounterFunc("snapshot_seconds", "Cumulative state-snapshot write time in whole seconds.",
		func() int64 { return m.SnapshotMillis.Load() / 1000 })
	return m
}

// Registry returns the registry the metrics are declared on.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// ObserveTracer wires a span tracer's per-span hook into the
// spans_recorded / spans_dropped counters. Nil-safe on both sides.
func (m *Metrics) ObserveTracer(tr *otrace.Tracer) {
	if m == nil {
		return
	}
	observeTracer(m.reg, tr)
}

// observeTracer is ObserveTracer against a bare registry (the session
// hub holds the registry, not the Metrics struct). Counter declaration is
// idempotent, so these are the same series NewMetrics declared.
func observeTracer(reg *obs.Registry, tr *otrace.Tracer) {
	if reg == nil || tr == nil {
		return
	}
	recorded := reg.Counter("spans_recorded", "Timing spans recorded across all span tracers.")
	dropped := reg.Counter("spans_dropped", "Timing spans refused by full span buffers.")
	tr.OnSpan(func(ok bool) {
		if ok {
			recorded.Add(1)
		} else {
			dropped.Add(1)
		}
	})
}

// registerFeatCacheMetrics exposes the extraction cache's own tallies
// through the registry under the feat_cache_* keys /metrics has always
// carried. The cache owns the numbers, so every series is a sampling
// func over its Stats snapshot.
func registerFeatCacheMetrics(reg *obs.Registry, fc *featcache.Cache) {
	counter := func(name, help string, f func(featcache.Stats) int64) {
		reg.CounterFunc(name, help, func() int64 { return f(fc.Stats()) })
	}
	gauge := func(name, help string, f func(featcache.Stats) int64) {
		reg.GaugeFunc(name, help, func() int64 { return f(fc.Stats()) })
	}
	counter("feat_cache_hits", "Extraction-cache memory hits.",
		func(s featcache.Stats) int64 { return s.Hits })
	counter("feat_cache_misses", "Extraction-cache misses (feature code ran).",
		func(s featcache.Stats) int64 { return s.Misses })
	counter("feat_cache_disk_hits", "Extraction-cache hits served from the disk store.",
		func(s featcache.Stats) int64 { return s.DiskHits })
	counter("feat_cache_evictions", "Extraction-cache in-memory evictions.",
		func(s featcache.Stats) int64 { return s.Evictions })
	counter("feat_cache_disk_errors", "Extraction-cache disk store errors.",
		func(s featcache.Stats) int64 { return s.DiskErrors })
	gauge("feat_cache_entries", "Extraction-cache resident in-memory entries.",
		func(s featcache.Stats) int64 { return s.Entries })
	gauge("feat_cache_bytes", "Extraction-cache resident in-memory bytes.",
		func(s featcache.Stats) int64 { return s.Bytes })
	gauge("feat_cache_disk_entries", "Extraction-cache disk store entries.",
		func(s featcache.Stats) int64 { return s.DiskEntries })
	gauge("feat_cache_disk_bytes", "Extraction-cache disk store bytes.",
		func(s featcache.Stats) int64 { return s.DiskBytes })
	gauge("feat_cache_disk_demoted", "1 when the disk store has been demoted to memory-only after errors.",
		func(s featcache.Stats) int64 {
			if s.DiskDemoted {
				return 1
			}
			return 0
		})
}
