package server

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"zombie/internal/corpus"
	"zombie/internal/featcache"
	"zombie/internal/featurepipe"
	"zombie/internal/rng"
)

// writeImageCorpus generates an image corpus JSONL for tests: numeric
// payloads make it the cheapest workload to extract and index.
func writeImageCorpus(t *testing.T, n int, seed int64) string {
	t.Helper()
	cfg := corpus.DefaultImageConfig()
	cfg.N = n
	ins, err := corpus.GenerateImages(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "images.jsonl")
	if err := corpus.WriteJSONL(path, ins); err != nil {
		t.Fatal(err)
	}
	return path
}

// newTestManager wires a manager over a registry holding the named image
// corpus.
func newTestManager(t *testing.T, corpusName string, n int, workers, queueCap int) (*Manager, *Metrics) {
	t.Helper()
	metrics := NewMetrics(nil)
	registry := NewRegistry()
	if _, err := registry.Add(corpusName, writeImageCorpus(t, n, 42), false); err != nil {
		t.Fatal(err)
	}
	featCache, err := featcache.Open(featcache.Config{}, featurepipe.ResultCodec{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(registry, NewIndexCache(metrics), featCache, metrics, nil, workers, queueCap, RunDefaults{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		m.Shutdown(ctx) //nolint:errcheck
	})
	return m, metrics
}

// longSpec is a run that cannot finish quickly: per-step set-based
// re-evaluation over a large pool keeps the loop busy for many seconds,
// giving tests a wide window to observe and cancel it.
func longSpec(corpusName string) RunSpec {
	return RunSpec{Corpus: corpusName, Task: "image", Mode: "scan-random", EvalEvery: 1}
}

// waitState polls until the run reaches want or the deadline passes.
func waitState(t *testing.T, run *Run, want RunState) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if run.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s stuck in %s, want %s", run.ID, run.State(), want)
}

func TestSubmitValidation(t *testing.T) {
	m, _ := newTestManager(t, "imgs", 200, 1, 4)
	cases := []RunSpec{
		{Corpus: "nope", Task: "image"},
		{Corpus: "imgs", Task: "nope"},
		{Corpus: "imgs", Task: "image", Mode: "warp"},
		{Corpus: "imgs", Task: "image", Policy: "bogus-policy"},
		{Corpus: "imgs", Task: "image", K: -1},
		{Corpus: "imgs", Task: "image", MaxInputs: -5},
	}
	for i, spec := range cases {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("case %d (%+v): expected a submit error", i, spec)
		}
	}
}

func TestRunLifecycleAndDefaults(t *testing.T) {
	m, metrics := newTestManager(t, "imgs", 600, 2, 8)
	run, err := m.Submit(RunSpec{Corpus: "imgs", Task: "image", MaxInputs: 80, EvalEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	<-run.Done()
	info := run.Info()
	if info.State != StateDone {
		t.Fatalf("state = %s (%s)", info.State, info.Error)
	}
	if info.Spec.Mode != "zombie" || info.Spec.Policy != "eps-greedy:0.1" || info.Spec.K != 32 || info.Spec.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", info.Spec)
	}
	if info.InputsProcessed != 80 || info.Stop != "budget" {
		t.Fatalf("result summary wrong: %+v", info)
	}
	// Curve: step 0 + 4 evals; every point was live-published.
	if info.CurvePoints != 5 {
		t.Fatalf("curve points = %d, want 5", info.CurvePoints)
	}
	if metrics.RunsCompleted.Load() != 1 || metrics.InputsProcessed.Load() != 80 {
		t.Fatalf("metrics: completed=%d inputs=%d", metrics.RunsCompleted.Load(), metrics.InputsProcessed.Load())
	}
	if info.Started == "" || info.Finished == "" {
		t.Fatal("timestamps missing")
	}
}

func TestCancelRunningRun(t *testing.T) {
	m, metrics := newTestManager(t, "imgs", 20000, 1, 4)
	run, err := m.Submit(longSpec("imgs"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, run, StateRunning)
	if _, err := m.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	<-run.Done()
	info := run.Info()
	if info.State != StateCancelled || info.Stop != "cancelled" {
		t.Fatalf("cancelled run info: %+v", info)
	}
	// Partial curve: the step-0 floor at minimum, and nowhere near the
	// 18000-input pool.
	if info.CurvePoints < 1 {
		t.Fatal("cancelled run lost its partial curve")
	}
	if res := run.Result(); res == nil || res.InputsProcessed >= 18000 {
		t.Fatalf("cancelled run result: %+v", res)
	}
	if metrics.RunsCancelled.Load() != 1 {
		t.Fatalf("runs_cancelled = %d", metrics.RunsCancelled.Load())
	}
}

func TestCancelQueuedRun(t *testing.T) {
	m, metrics := newTestManager(t, "imgs", 20000, 1, 4)
	blocker, err := m.Submit(longSpec("imgs"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)
	queued, err := m.Submit(RunSpec{Corpus: "imgs", Task: "image", MaxInputs: 10})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCancelled || info.Started != "" {
		t.Fatalf("queued cancel: %+v", info)
	}
	select {
	case <-queued.Done():
	default:
		t.Fatal("queued-cancelled run should be terminal immediately")
	}
	if metrics.RunsCancelled.Load() != 1 {
		t.Fatalf("runs_cancelled = %d", metrics.RunsCancelled.Load())
	}
	// Cancelling again is a no-op, not a double count.
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if metrics.RunsCancelled.Load() != 1 {
		t.Fatal("double cancel double-counted")
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	<-blocker.Done()
}

func TestQueueFullRejects(t *testing.T) {
	m, _ := newTestManager(t, "imgs", 20000, 1, 1)
	blocker, err := m.Submit(longSpec("imgs"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)
	if _, err := m.Submit(RunSpec{Corpus: "imgs", Task: "image"}); err != nil {
		t.Fatalf("queue slot should be free: %v", err)
	}
	_, err = m.Submit(RunSpec{Corpus: "imgs", Task: "image"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	m.Cancel(blocker.ID) //nolint:errcheck
}

func TestShutdownDrains(t *testing.T) {
	m, _ := newTestManager(t, "imgs", 600, 1, 4)
	run, err := m.Submit(RunSpec{Corpus: "imgs", Task: "image", Mode: "scan-sequential", MaxInputs: 50, EvalEvery: 25})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if st := run.State(); st != StateDone {
		t.Fatalf("drained run state = %s", st)
	}
	if _, err := m.Submit(RunSpec{Corpus: "imgs", Task: "image"}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit err = %v", err)
	}
}

func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	m, _ := newTestManager(t, "imgs", 20000, 1, 4)
	run, err := m.Submit(longSpec("imgs"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, run, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Shutdown returned only after the worker observed the cancellation.
	if st := run.State(); st != StateCancelled {
		t.Fatalf("in-flight run state after forced shutdown = %s", st)
	}
}

func TestRunWallTimeMetrics(t *testing.T) {
	m, metrics := newTestManager(t, "imgs", 600, 1, 4)
	run, err := m.Submit(RunSpec{Corpus: "imgs", Task: "image", MaxInputs: 100, EvalEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-run.Done()
	info := run.Info()
	if info.State != StateDone {
		t.Fatalf("state = %s (%s)", info.State, info.Error)
	}
	if info.WallMillis <= 0 {
		t.Fatalf("wall_ms = %d, want > 0 for a per-step-eval run", info.WallMillis)
	}
	if got := metrics.RunWallMillis.Load(); got != info.WallMillis {
		t.Fatalf("cumulative run wall ms = %d, want %d (the only run's wall time)", got, info.WallMillis)
	}
	snap := metrics.Registry().FlatSnapshot()
	if snap["run_wall_ms"] != info.WallMillis {
		t.Fatalf("snapshot run_wall_ms = %d, want %d", snap["run_wall_ms"], info.WallMillis)
	}
	if want := info.WallMillis / 1000; snap["run_seconds"] != want {
		t.Fatalf("snapshot run_seconds = %d, want %d", snap["run_seconds"], want)
	}
}
