package corpus

import (
	"fmt"

	"zombie/internal/rng"
)

// SongConfig parameterizes the MSD-like song corpus: each song is a dense
// vector of timbre-style audio features drawn from its genre's Gaussian
// component, plus a release year that drifts by genre. Genres follow a
// skewed popularity distribution, so the rare genres that dominate
// macro-F1 error are concentrated in a few feature-space clusters — the
// structure Zombie's k-means index groups recover.
type SongConfig struct {
	// N is the number of songs.
	N int
	// Genres is the number of genre classes.
	Genres int
	// Dim is the audio feature dimensionality (MSD uses 12 timbre dims).
	Dim int
	// GenreSkew is the Zipf exponent of genre popularity.
	GenreSkew float64
	// ClusterStd is the within-genre feature standard deviation relative
	// to the unit spacing between genre centroids.
	ClusterStd float64
	// RareStdFactor multiplies ClusterStd for the rare half of the
	// genres: rare genres are both scarcer and fuzzier (niche genres blur
	// into neighbours), so they need disproportionately many examples —
	// the property that makes finding them worth a bandit's while.
	RareStdFactor float64
	// YearBase and YearSpread control the release-year target.
	YearBase   float64
	YearSpread float64
}

// DefaultSongConfig returns the parameters used by the experiments.
func DefaultSongConfig() SongConfig {
	return SongConfig{
		N:             20000,
		Genres:        10,
		Dim:           12,
		GenreSkew:     1.5,
		ClusterStd:    0.35,
		RareStdFactor: 2.5,
		YearBase:      1955,
		YearSpread:    60,
	}
}

func (c SongConfig) validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("corpus: SongConfig.N must be > 0, got %d", c.N)
	case c.Genres < 2:
		return fmt.Errorf("corpus: SongConfig.Genres must be >= 2, got %d", c.Genres)
	case c.Dim <= 0:
		return fmt.Errorf("corpus: SongConfig.Dim must be > 0, got %d", c.Dim)
	case c.GenreSkew <= 0:
		return fmt.Errorf("corpus: SongConfig.GenreSkew must be > 0, got %v", c.GenreSkew)
	case c.ClusterStd <= 0:
		return fmt.Errorf("corpus: SongConfig.ClusterStd must be > 0, got %v", c.ClusterStd)
	case c.RareStdFactor < 1:
		return fmt.Errorf("corpus: SongConfig.RareStdFactor must be >= 1, got %v", c.RareStdFactor)
	case c.YearSpread <= 0:
		return fmt.Errorf("corpus: SongConfig.YearSpread must be > 0, got %v", c.YearSpread)
	}
	return nil
}

// GenerateSongs builds the corpus deterministically from the seed.
func GenerateSongs(cfg SongConfig, r *rng.RNG) ([]*Input, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	centroidRNG := r.Split("centroids")
	centroids := make([][]float64, cfg.Genres)
	for g := range centroids {
		centroids[g] = make([]float64, cfg.Dim)
		for d := range centroids[g] {
			centroids[g][d] = centroidRNG.Range(-1, 1)
		}
	}
	genreZipf := r.Split("genre").NewZipf(cfg.GenreSkew, cfg.Genres)
	feat := r.Split("features")
	year := r.Split("years")

	inputs := make([]*Input, cfg.N)
	for i := range inputs {
		g := genreZipf.Draw()
		std := cfg.ClusterStd
		if g >= cfg.Genres/2 {
			std *= cfg.RareStdFactor
		}
		vals := make([]float64, cfg.Dim)
		for d := range vals {
			vals[d] = feat.Gaussian(centroids[g][d], std)
		}
		// Year drifts by genre with substantial per-song noise; the noise
		// keeps the regression from saturating after a handful of songs,
		// and the rare genres carry the year range's tail.
		y := cfg.YearBase + cfg.YearSpread*float64(g)/float64(cfg.Genres) +
			year.Gaussian(0, cfg.YearSpread/4)
		inputs[i] = &Input{
			ID:     fmt.Sprintf("song-%06d", i),
			Kind:   NumericKind,
			Values: vals,
			Meta: map[string]string{
				"decade": fmt.Sprintf("%d0s", int(y)/10),
			},
			Truth: Truth{Relevant: true, Class: g, Target: y},
		}
	}
	return inputs, nil
}
