package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// DiskStore is a read-only Store over a JSONL corpus file that never
// materializes the whole corpus in memory: construction indexes line
// offsets in one sequential pass, and Get reads and decodes a single
// record on demand. This is the corpus option for crawls larger than RAM
// — exactly the "over each page in a Web crawl" setting the paper's
// abstract motivates. A one-slot cache makes the engine's common pattern
// (Get followed by feature extraction of the same input) free.
//
// A DiskStore is safe for concurrent use: the serving layer runs multiple
// engine loops over one shared streamed corpus, so Get serializes the read
// and the one-slot cache behind a mutex. Each engine loop is still
// single-threaded; the lock only arbitrates between loops.
type DiskStore struct {
	path    string
	f       *os.File
	offsets []int64 // line start offsets; len = #inputs + 1 (end sentinel)

	mu      sync.Mutex // guards f reads and the one-slot cache below
	lastIdx int
	lastIn  *Input
}

// OpenDiskStore indexes the JSONL file at path and returns the store.
// The file stays open until Close.
func OpenDiskStore(path string) (*DiskStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: open %s: %w", path, err)
	}
	s := &DiskStore{path: path, f: f, lastIdx: -1}
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			// Skip blank lines but keep offset accounting exact.
			if !isBlank(line) {
				s.offsets = append(s.offsets, off)
			}
			off += int64(len(line))
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("corpus: index %s: %w", path, err)
		}
	}
	s.offsets = append(s.offsets, off) // end sentinel
	return s, nil
}

func isBlank(line []byte) bool {
	for _, b := range line {
		if b != ' ' && b != '\t' && b != '\n' && b != '\r' {
			return false
		}
	}
	return true
}

// Len implements Store.
func (s *DiskStore) Len() int { return len(s.offsets) - 1 }

// Get implements Store. It panics on out-of-range indices (matching
// MemStore) and on read or decode failures, which on an indexed file
// indicate corruption rather than a recoverable condition.
func (s *DiskStore) Get(i int) *Input {
	if i < 0 || i >= s.Len() {
		panic(fmt.Sprintf("corpus: DiskStore.Get(%d) out of range [0,%d)", i, s.Len()))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i == s.lastIdx {
		return s.lastIn
	}
	start, end := s.offsets[i], s.offsets[i+1]
	buf := make([]byte, end-start)
	if _, err := s.f.ReadAt(buf, start); err != nil && err != io.EOF {
		panic(fmt.Sprintf("corpus: DiskStore read %s record %d: %v", s.path, i, err))
	}
	in := new(Input)
	if err := json.Unmarshal(trimRecord(buf), in); err != nil {
		panic(fmt.Sprintf("corpus: DiskStore decode %s record %d: %v", s.path, i, err))
	}
	s.lastIdx, s.lastIn = i, in
	return in
}

// trimRecord strips trailing newline bytes and any interleaved blank
// lines captured between offsets.
func trimRecord(b []byte) []byte {
	end := len(b)
	for end > 0 && (b[end-1] == '\n' || b[end-1] == '\r' || b[end-1] == ' ' || b[end-1] == '\t') {
		end--
	}
	return b[:end]
}

// Path returns the backing file path.
func (s *DiskStore) Path() string { return s.path }

// Close releases the underlying file. The store is unusable afterwards.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastIdx, s.lastIn = -1, nil
	return s.f.Close()
}
