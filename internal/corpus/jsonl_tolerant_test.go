package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDecodeJSONLTolerantSkipsCorruptLines: good lines survive, bad lines
// are reported with their 1-based line numbers, order preserved.
func TestDecodeJSONLTolerantSkipsCorruptLines(t *testing.T) {
	src := strings.Join([]string{
		`{"id":"a","text":"one"}`,
		`{garbage`,
		``,
		`{"id":"b","text":"two"}`,
		`not json at all`,
		`{"id":"c","text":"three"}`,
	}, "\n")
	inputs, skipped, err := DecodeJSONLTolerant(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != 3 || inputs[0].ID != "a" || inputs[1].ID != "b" || inputs[2].ID != "c" {
		t.Fatalf("inputs = %v", inputs)
	}
	if len(skipped) != 2 || skipped[0].Line != 2 || skipped[1].Line != 5 {
		t.Fatalf("skipped = %+v", skipped)
	}
	for _, s := range skipped {
		if s.Reason == "" {
			t.Fatalf("skip without reason: %+v", s)
		}
	}
}

// TestDecodeJSONLTolerantToleratesTornTail: a half-written final line —
// what a crashed writer leaves — costs one skip, not the corpus.
func TestDecodeJSONLTolerantToleratesTornTail(t *testing.T) {
	src := `{"id":"a","text":"one"}` + "\n" + `{"id":"b","tex`
	inputs, skipped, err := DecodeJSONLTolerant(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != 1 || inputs[0].ID != "a" {
		t.Fatalf("inputs = %v", inputs)
	}
	if len(skipped) != 1 || skipped[0].Line != 2 {
		t.Fatalf("skipped = %+v", skipped)
	}
}

// TestDecodeJSONLTolerantRejectsAllCorrupt: zero survivors is a loud
// failure — an all-corrupt file is a wrong path, not a messy corpus.
func TestDecodeJSONLTolerantRejectsAllCorrupt(t *testing.T) {
	_, skipped, err := DecodeJSONLTolerant(strings.NewReader("junk\nmore junk\n"))
	if err == nil || !strings.Contains(err.Error(), "no input survived") {
		t.Fatalf("err = %v", err)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %+v", skipped)
	}
}

// TestDecodeJSONLTolerantEmptyReader: an empty file decodes to an empty
// corpus without error (nothing was corrupt), matching strict DecodeJSONL.
func TestDecodeJSONLTolerantEmptyReader(t *testing.T) {
	inputs, skipped, err := DecodeJSONLTolerant(strings.NewReader(""))
	if err != nil || len(inputs) != 0 || len(skipped) != 0 {
		t.Fatalf("inputs=%v skipped=%v err=%v", inputs, skipped, err)
	}
}

// TestReadJSONLTolerantRoundTrip: a file written by WriteJSONL with a torn
// tail appended loads every original record through the tolerant reader.
func TestReadJSONLTolerantRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	orig := []*Input{
		{ID: "x", Text: "alpha"},
		{ID: "y", Text: "beta"},
	}
	if err := WriteJSONL(path, orig); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"z","te`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := ReadJSONL(path); err == nil {
		t.Fatal("strict reader accepted the torn tail")
	}
	inputs, skipped, err := ReadJSONLTolerant(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != 2 || inputs[0].ID != "x" || inputs[1].ID != "y" {
		t.Fatalf("inputs = %v", inputs)
	}
	if len(skipped) != 1 {
		t.Fatalf("skipped = %+v", skipped)
	}
}
