// Package corpus models the raw-input side of Zombie: the large collection
// of expensive-to-process data objects (web pages, songs, images) that the
// engineer's feature code runs over.
//
// Because the paper's corpora (a Wikipedia crawl, the Million Song
// Dataset, a labeled image collection) are not redistributable, the
// package also provides deterministic synthetic generators that reproduce
// the *statistical* properties Zombie's evaluation depends on: inputs are
// expensive, usefulness is rare and unevenly distributed, and cheap
// surface features of an input correlate with its usefulness. See
// DESIGN.md §3 for the substitution argument.
package corpus

import "fmt"

// Kind distinguishes the raw payload a feature function will find in an
// Input.
type Kind int

const (
	// TextKind inputs carry a Text payload (wiki pages).
	TextKind Kind = iota
	// NumericKind inputs carry a Values payload (audio features, image
	// descriptors).
	NumericKind
)

// String returns the kind's label.
func (k Kind) String() string {
	switch k {
	case TextKind:
		return "text"
	case NumericKind:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Truth carries the generator's ground-truth annotations for an input.
// Feature functions may read Truth only to produce training labels
// (standing in for the paper's distant supervision / engineer-provided
// labels); they must not leak it into features. Index groupers never see
// Truth.
type Truth struct {
	// Relevant reports whether the input contains any signal of interest
	// — e.g., a wiki page that actually mentions the target entity type.
	// Processing an irrelevant input yields no training example, which is
	// exactly the waste Zombie's input selection avoids.
	Relevant bool
	// Class is the classification label (task-specific).
	Class int
	// Target is the regression target (task-specific).
	Target float64
}

// Input is one raw data object. Exactly one of Text or Values is populated
// depending on Kind. Meta holds cheap surface attributes (category tags,
// source hints) available to indexing without processing the payload.
type Input struct {
	ID     string            `json:"id"`
	Kind   Kind              `json:"kind"`
	Text   string            `json:"text,omitempty"`
	Values []float64         `json:"values,omitempty"`
	Meta   map[string]string `json:"meta,omitempty"`
	Truth  Truth             `json:"truth"`
}

// SizeBytes approximates the raw payload size, which the cost model uses
// to scale simulated processing time.
func (in *Input) SizeBytes() int {
	if in.Kind == TextKind {
		return len(in.Text)
	}
	return 8 * len(in.Values)
}

// Store is a read-only, randomly addressable collection of inputs. Zombie
// indexes a Store offline and draws individual inputs from it online; it
// never needs mutation.
type Store interface {
	// Len returns the number of inputs.
	Len() int
	// Get returns the i-th input. Implementations panic on out-of-range i.
	Get(i int) *Input
}

// MemStore is an in-memory Store backed by a slice.
type MemStore struct {
	inputs []*Input
}

// NewMemStore wraps inputs in a Store. The slice is not copied.
func NewMemStore(inputs []*Input) *MemStore {
	return &MemStore{inputs: inputs}
}

// Len implements Store.
func (s *MemStore) Len() int { return len(s.inputs) }

// Get implements Store.
func (s *MemStore) Get(i int) *Input {
	if i < 0 || i >= len(s.inputs) {
		panic(fmt.Sprintf("corpus: MemStore.Get(%d) out of range [0,%d)", i, len(s.inputs)))
	}
	return s.inputs[i]
}

// All returns the backing slice (not a copy) for bulk operations like
// index construction.
func (s *MemStore) All() []*Input { return s.inputs }

// Stats summarizes a store for dataset tables (experiment T1).
type Stats struct {
	Inputs       int
	Relevant     int
	RelevantFrac float64
	Classes      map[int]int
	TotalBytes   int64
	MeanBytes    float64
}

// ComputeStats scans the store once and returns its summary.
func ComputeStats(s Store) Stats {
	st := Stats{Classes: map[int]int{}}
	for i := 0; i < s.Len(); i++ {
		in := s.Get(i)
		st.Inputs++
		if in.Truth.Relevant {
			st.Relevant++
			st.Classes[in.Truth.Class]++
		}
		st.TotalBytes += int64(in.SizeBytes())
	}
	if st.Inputs > 0 {
		st.RelevantFrac = float64(st.Relevant) / float64(st.Inputs)
		st.MeanBytes = float64(st.TotalBytes) / float64(st.Inputs)
	}
	return st
}
