package corpus

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"zombie/internal/rng"
)

func writeTestCorpus(t *testing.T, n int, seed int64) (string, []*Input) {
	t.Helper()
	cfg := DefaultWikiConfig()
	cfg.N = n
	ins, err := GenerateWiki(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := WriteJSONL(path, ins); err != nil {
		t.Fatal(err)
	}
	return path, ins
}

func TestDiskStoreMatchesMemStore(t *testing.T) {
	path, ins := writeTestCorpus(t, 120, 700)
	ds, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Len() != len(ins) {
		t.Fatalf("Len = %d, want %d", ds.Len(), len(ins))
	}
	if ds.Path() != path {
		t.Fatal("Path wrong")
	}
	// Random-order access must return identical records.
	order := rng.New(701).Perm(len(ins))
	for _, i := range order {
		got := ds.Get(i)
		want := ins[i]
		if got.ID != want.ID || got.Text != want.Text || got.Truth != want.Truth {
			t.Fatalf("record %d differs: %s vs %s", i, got.ID, want.ID)
		}
	}
}

func TestDiskStoreRepeatedGetUsesCache(t *testing.T) {
	path, _ := writeTestCorpus(t, 10, 702)
	ds, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	a := ds.Get(3)
	b := ds.Get(3)
	if a != b {
		t.Fatal("repeated Get should return the cached pointer")
	}
	c := ds.Get(4)
	if c == a {
		t.Fatal("different index returned cached record")
	}
}

func TestDiskStoreParallelGet(t *testing.T) {
	// The serving layer runs several engine loops over one shared streamed
	// corpus; concurrent Gets must neither race (the -race build checks
	// that) nor cross-corrupt reads through the one-slot cache.
	path, ins := writeTestCorpus(t, 200, 705)
	ds, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			order := rng.New(int64(g)).Perm(len(ins))
			// Overlap index ranges across goroutines so cache slots collide.
			for _, i := range append(order, order...) {
				got := ds.Get(i)
				want := ins[i]
				if got.ID != want.ID || got.Text != want.Text || got.Truth != want.Truth {
					select {
					case errs <- got.ID + " != " + want.ID:
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatalf("concurrent Get returned a corrupt record: %s", msg)
	}
}

func TestDiskStoreBlankLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blanks.jsonl")
	content := `{"id":"a","kind":0,"text":"x"}

{"id":"b","kind":0,"text":"y"}

{"id":"c","kind":0,"text":"z"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ds.Len())
	}
	if ds.Get(0).ID != "a" || ds.Get(1).ID != "b" || ds.Get(2).ID != "c" {
		t.Fatal("blank-line handling broke record alignment")
	}
}

func TestDiskStoreNoTrailingNewline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "notrail.jsonl")
	if err := os.WriteFile(path, []byte(`{"id":"only","kind":0,"text":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Len() != 1 || ds.Get(0).ID != "only" {
		t.Fatalf("Len=%d", ds.Len())
	}
}

func TestDiskStorePanics(t *testing.T) {
	path, _ := writeTestCorpus(t, 5, 703)
	ds, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	mustPanic(t, "oob", func() { ds.Get(5) })
	mustPanic(t, "neg", func() { ds.Get(-1) })
}

func TestDiskStoreMissingFile(t *testing.T) {
	if _, err := OpenDiskStore("/nonexistent/nope.jsonl"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDiskStoreAsEngineStore(t *testing.T) {
	// The Store interface contract: ComputeStats over a DiskStore matches
	// the in-memory result.
	path, ins := writeTestCorpus(t, 80, 704)
	ds, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var s Store = ds
	got := ComputeStats(s)
	want := ComputeStats(NewMemStore(ins))
	if got.Inputs != want.Inputs || got.Relevant != want.Relevant || got.TotalBytes != want.TotalBytes {
		t.Fatalf("stats differ: %+v vs %+v", got, want)
	}
}
