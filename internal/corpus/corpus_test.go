package corpus

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"zombie/internal/rng"
)

func TestMemStore(t *testing.T) {
	ins := []*Input{{ID: "a"}, {ID: "b"}}
	s := NewMemStore(ins)
	if s.Len() != 2 || s.Get(1).ID != "b" {
		t.Fatal("MemStore basics wrong")
	}
	if len(s.All()) != 2 {
		t.Fatal("All wrong")
	}
	mustPanic(t, "oob", func() { s.Get(2) })
	mustPanic(t, "neg", func() { s.Get(-1) })
}

func TestKindString(t *testing.T) {
	if TextKind.String() != "text" || NumericKind.String() != "numeric" {
		t.Fatal("Kind labels wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Fatal("unknown Kind label wrong")
	}
}

func TestSizeBytes(t *testing.T) {
	if (&Input{Kind: TextKind, Text: "hello"}).SizeBytes() != 5 {
		t.Fatal("text size wrong")
	}
	if (&Input{Kind: NumericKind, Values: []float64{1, 2, 3}}).SizeBytes() != 24 {
		t.Fatal("numeric size wrong")
	}
}

func TestGenerateWikiDeterministic(t *testing.T) {
	cfg := DefaultWikiConfig()
	cfg.N = 200
	a, err := GenerateWiki(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWiki(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Text != b[i].Text || a[i].Truth != b[i].Truth {
			t.Fatalf("wiki generation not deterministic at %d", i)
		}
	}
}

func TestGenerateWikiProperties(t *testing.T) {
	cfg := DefaultWikiConfig()
	cfg.N = 3000
	ins, err := GenerateWiki(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(NewMemStore(ins))
	if st.Inputs != 3000 {
		t.Fatalf("Inputs = %d", st.Inputs)
	}
	// Overall relevance must be rare but present.
	if st.RelevantFrac < 0.01 || st.RelevantFrac > 0.25 {
		t.Fatalf("relevant fraction %v outside expected band", st.RelevantFrac)
	}
	// Relevant pages contain the infobox marker; class matches relevance.
	relByCat := map[string][2]int{}
	for _, in := range ins {
		if in.Kind != TextKind || in.Text == "" {
			t.Fatal("wiki input missing text")
		}
		if in.Truth.Relevant {
			if !strings.Contains(in.Text, "infobox") {
				t.Fatal("relevant page missing infobox marker")
			}
			if in.Truth.Class != 1 {
				t.Fatal("relevant page class != 1")
			}
		} else if in.Truth.Class != 0 {
			t.Fatal("irrelevant page class != 0")
		}
		cat := in.Meta["category"]
		pair := relByCat[cat]
		pair[1]++
		if in.Truth.Relevant {
			pair[0]++
		}
		relByCat[cat] = pair
	}
	// Relevance must be concentrated: some categories rich, most poor.
	rich := 0
	for _, pair := range relByCat {
		if pair[1] >= 20 && float64(pair[0])/float64(pair[1]) > 0.15 {
			rich++
		}
	}
	if rich == 0 {
		t.Fatal("no relevance-rich category found; skew is the core corpus property")
	}
	if rich > cfg.TargetCategories+1 {
		t.Fatalf("too many rich categories: %d", rich)
	}
}

func TestGenerateWikiValidation(t *testing.T) {
	bad := DefaultWikiConfig()
	bad.N = 0
	if _, err := GenerateWiki(bad, rng.New(1)); err == nil {
		t.Fatal("expected error for N=0")
	}
	bad = DefaultWikiConfig()
	bad.TargetCategories = 1000
	if _, err := GenerateWiki(bad, rng.New(1)); err == nil {
		t.Fatal("expected error for TargetCategories > Categories")
	}
	bad = DefaultWikiConfig()
	bad.TargetRelevantRate = 2
	if _, err := GenerateWiki(bad, rng.New(1)); err == nil {
		t.Fatal("expected error for rate > 1")
	}
}

func TestGenerateSongsProperties(t *testing.T) {
	cfg := DefaultSongConfig()
	cfg.N = 2000
	ins, err := GenerateSongs(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	classCount := map[int]int{}
	for _, in := range ins {
		if len(in.Values) != cfg.Dim {
			t.Fatalf("song dim = %d", len(in.Values))
		}
		if !in.Truth.Relevant {
			t.Fatal("songs are all relevant")
		}
		if in.Truth.Class < 0 || in.Truth.Class >= cfg.Genres {
			t.Fatalf("genre %d out of range", in.Truth.Class)
		}
		if in.Truth.Target < 1900 || in.Truth.Target > 2050 {
			t.Fatalf("implausible year %v", in.Truth.Target)
		}
		classCount[in.Truth.Class]++
	}
	// Zipf skew: genre 0 much more common than the rarest genre.
	minC, maxC := math.MaxInt32, 0
	for g := 0; g < cfg.Genres; g++ {
		c := classCount[g]
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 3*minC {
		t.Fatalf("genre popularity not skewed enough: min=%d max=%d", minC, maxC)
	}
}

func TestGenerateSongsGenreSeparation(t *testing.T) {
	cfg := DefaultSongConfig()
	cfg.N = 1000
	ins, _ := GenerateSongs(cfg, rng.New(10))
	// Within-genre distance must be smaller than cross-genre distance on
	// average, or the clustering index could never work.
	byGenre := map[int][][]float64{}
	for _, in := range ins {
		byGenre[in.Truth.Class] = append(byGenre[in.Truth.Class], in.Values)
	}
	mean := func(vs [][]float64) []float64 {
		m := make([]float64, cfg.Dim)
		for _, v := range vs {
			for d := range v {
				m[d] += v[d]
			}
		}
		for d := range m {
			m[d] /= float64(len(vs))
		}
		return m
	}
	g0, g1 := byGenre[0], byGenre[1]
	if len(g0) < 10 || len(g1) < 10 {
		t.Skip("not enough samples in top genres")
	}
	m0, m1 := mean(g0), mean(g1)
	dist := 0.0
	for d := range m0 {
		diff := m0[d] - m1[d]
		dist += diff * diff
	}
	within := 0.0
	for _, v := range g0[:10] {
		for d := range v {
			diff := v[d] - m0[d]
			within += diff * diff
		}
	}
	within /= 10
	if dist < within/4 {
		t.Fatalf("genres not separated: cross=%v within=%v", dist, within)
	}
}

func TestGenerateImagesProperties(t *testing.T) {
	cfg := DefaultImageConfig()
	cfg.N = 4000
	ins, err := GenerateImages(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, in := range ins {
		if len(in.Values) != cfg.Dim {
			t.Fatalf("image dim = %d", len(in.Values))
		}
		if in.Truth.Class == 1 {
			pos++
		}
	}
	rate := float64(pos) / float64(len(ins))
	if rate < 0.005 || rate > 0.08 {
		t.Fatalf("positive rate %v outside needle-in-haystack band", rate)
	}
}

func TestGenerateConfigValidationErrors(t *testing.T) {
	if _, err := GenerateSongs(SongConfig{}, rng.New(1)); err == nil {
		t.Fatal("zero SongConfig should fail")
	}
	if _, err := GenerateImages(ImageConfig{}, rng.New(1)); err == nil {
		t.Fatal("zero ImageConfig should fail")
	}
	bad := DefaultImageConfig()
	bad.PositiveConcepts = 100
	if _, err := GenerateImages(bad, rng.New(1)); err == nil {
		t.Fatal("PositiveConcepts > Concepts should fail")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	cfg := DefaultWikiConfig()
	cfg.N = 50
	ins, _ := GenerateWiki(cfg, rng.New(12))
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := WriteJSONL(path, ins); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ins) {
		t.Fatalf("round trip lost inputs: %d vs %d", len(back), len(ins))
	}
	for i := range ins {
		if back[i].ID != ins[i].ID || back[i].Text != ins[i].Text ||
			back[i].Truth != ins[i].Truth || back[i].Meta["category"] != ins[i].Meta["category"] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestJSONLNumericRoundTrip(t *testing.T) {
	cfg := DefaultSongConfig()
	cfg.N = 20
	ins, _ := GenerateSongs(cfg, rng.New(13))
	path := filepath.Join(t.TempDir(), "songs.jsonl")
	if err := WriteJSONL(path, ins); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		if len(back[i].Values) != len(ins[i].Values) {
			t.Fatal("values lost")
		}
		for d := range ins[i].Values {
			if back[i].Values[d] != ins[i].Values[d] {
				t.Fatal("float round trip mismatch")
			}
		}
	}
}

func TestDecodeJSONLSkipsBlankAndReportsErrors(t *testing.T) {
	good := `{"id":"a","kind":0,"text":"x"}

{"id":"b","kind":0,"text":"y"}`
	ins, err := DecodeJSONL(bytes.NewBufferString(good))
	if err != nil || len(ins) != 2 {
		t.Fatalf("decode: %v, %d inputs", err, len(ins))
	}
	if _, err := DecodeJSONL(bytes.NewBufferString("{bad json")); err == nil {
		t.Fatal("expected decode error")
	}
	_, err = DecodeJSONL(bytes.NewBufferString("{}\n{bad"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name the line: %v", err)
	}
}

func TestWriteJSONLNilInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.jsonl")
	if err := WriteJSONL(path, []*Input{nil}); err == nil {
		t.Fatal("expected error for nil input")
	}
}

func TestReadJSONLMissingFile(t *testing.T) {
	if _, err := ReadJSONL("/nonexistent/nope.jsonl"); err == nil {
		t.Fatal("expected error")
	}
}

func TestComputeStats(t *testing.T) {
	ins := []*Input{
		{Kind: TextKind, Text: "abcd", Truth: Truth{Relevant: true, Class: 1}},
		{Kind: TextKind, Text: "ab", Truth: Truth{}},
		{Kind: NumericKind, Values: []float64{1}, Truth: Truth{Relevant: true, Class: 2}},
	}
	st := ComputeStats(NewMemStore(ins))
	if st.Inputs != 3 || st.Relevant != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if math.Abs(st.RelevantFrac-2.0/3.0) > 1e-12 {
		t.Fatalf("RelevantFrac = %v", st.RelevantFrac)
	}
	if st.TotalBytes != 4+2+8 {
		t.Fatalf("TotalBytes = %d", st.TotalBytes)
	}
	if st.Classes[1] != 1 || st.Classes[2] != 1 {
		t.Fatalf("Classes = %v", st.Classes)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
