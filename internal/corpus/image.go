package corpus

import (
	"fmt"

	"zombie/internal/rng"
)

// ImageConfig parameterizes the synthetic image corpus: each "image" is a
// dense visual-descriptor vector drawn from one of many visual-concept
// clusters, and the positive class (the paper's running example is
// detecting a particular animal) is rare overall but concentrated in a
// handful of those clusters. This is the needle-in-a-haystack regime where
// the paper reports Zombie's largest speedups: a random scan sees a
// positive every ~1/rate inputs, while the bandit homes in on the
// positive-bearing clusters.
type ImageConfig struct {
	// N is the number of images.
	N int
	// Dim is the descriptor dimensionality.
	Dim int
	// Concepts is the number of visual-concept clusters.
	Concepts int
	// PositiveConcepts is how many clusters contain positives at
	// PositiveRateInConcept; other clusters contain none.
	PositiveConcepts      int
	PositiveRateInConcept float64
	// ClusterStd is the within-concept descriptor standard deviation.
	ClusterStd float64
	// PositivePull in [0,1] blends positive descriptors toward a shared
	// positive core: 0 leaves positives at their concept's centroid
	// (hardest to detect), 1 collapses them onto one dedicated cluster
	// (trivially indexable). Real rare classes sit in between — visually
	// similar to each other while still colored by their surroundings.
	PositivePull float64
	// DecoyRate is the fraction of negatives (corpus-wide) drawn as
	// decoys: visually positive-like (pulled toward the positive core at
	// DecoyPull) but labeled negative. Decoys cap achievable precision
	// until the detector has seen enough positives to tighten its
	// boundary, which keeps the learning curve gradual.
	DecoyRate float64
	// DecoyPull is the core pull applied to decoys (less than
	// PositivePull, so the classes remain separable).
	DecoyPull float64
}

// DefaultImageConfig returns the parameters used by the experiments
// (overall positive rate ≈ PositiveConcepts/Concepts × rate ≈ 2.5%).
func DefaultImageConfig() ImageConfig {
	return ImageConfig{
		N:                     20000,
		Dim:                   32,
		Concepts:              24,
		PositiveConcepts:      3,
		PositiveRateInConcept: 0.2,
		ClusterStd:            0.35,
		PositivePull:          0.6,
		DecoyRate:             0.05,
		DecoyPull:             0.42,
	}
}

func (c ImageConfig) validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("corpus: ImageConfig.N must be > 0, got %d", c.N)
	case c.Dim <= 0:
		return fmt.Errorf("corpus: ImageConfig.Dim must be > 0, got %d", c.Dim)
	case c.Concepts <= 0:
		return fmt.Errorf("corpus: ImageConfig.Concepts must be > 0, got %d", c.Concepts)
	case c.PositiveConcepts <= 0 || c.PositiveConcepts > c.Concepts:
		return fmt.Errorf("corpus: ImageConfig.PositiveConcepts must be in [1,%d], got %d", c.Concepts, c.PositiveConcepts)
	case c.PositiveRateInConcept <= 0 || c.PositiveRateInConcept > 1:
		return fmt.Errorf("corpus: ImageConfig.PositiveRateInConcept out of (0,1]: %v", c.PositiveRateInConcept)
	case c.ClusterStd <= 0:
		return fmt.Errorf("corpus: ImageConfig.ClusterStd must be > 0, got %v", c.ClusterStd)
	case c.PositivePull < 0 || c.PositivePull > 1:
		return fmt.Errorf("corpus: ImageConfig.PositivePull out of [0,1]: %v", c.PositivePull)
	case c.DecoyRate < 0 || c.DecoyRate > 1:
		return fmt.Errorf("corpus: ImageConfig.DecoyRate out of [0,1]: %v", c.DecoyRate)
	case c.DecoyPull < 0 || c.DecoyPull > 1:
		return fmt.Errorf("corpus: ImageConfig.DecoyPull out of [0,1]: %v", c.DecoyPull)
	}
	return nil
}

// GenerateImages builds the corpus deterministically from the seed.
func GenerateImages(cfg ImageConfig, r *rng.RNG) ([]*Input, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	centroidRNG := r.Split("centroids")
	centroids := make([][]float64, cfg.Concepts)
	for c := range centroids {
		centroids[c] = make([]float64, cfg.Dim)
		for d := range centroids[c] {
			centroids[c][d] = centroidRNG.Range(-1, 1)
		}
	}
	// Positives live in evenly spread concepts so popularity is not
	// confounded with the positive class.
	posConcepts := map[int]bool{}
	for i := 0; i < cfg.PositiveConcepts; i++ {
		posConcepts[(i*cfg.Concepts)/cfg.PositiveConcepts] = true
	}
	// Positives are pulled toward a shared positive core so the class is
	// learnable (and partially indexable) while keeping its concept's
	// coloring.
	posCore := make([]float64, cfg.Dim)
	for d := range posCore {
		posCore[d] = centroidRNG.Range(-1, 1)
	}

	feat := r.Split("features")
	pick := r.Split("concepts")
	lab := r.Split("labels")

	inputs := make([]*Input, cfg.N)
	for i := range inputs {
		concept := pick.Intn(cfg.Concepts)
		positive := posConcepts[concept] && lab.Bernoulli(cfg.PositiveRateInConcept)
		decoy := !positive && lab.Bernoulli(cfg.DecoyRate)
		pull := 0.0
		if positive {
			pull = cfg.PositivePull
		} else if decoy {
			pull = cfg.DecoyPull
		}
		vals := make([]float64, cfg.Dim)
		for d := range vals {
			mean := (1-pull)*centroids[concept][d] + pull*posCore[d]
			vals[d] = feat.Gaussian(mean, cfg.ClusterStd)
		}
		cls := 0
		if positive {
			cls = 1
		}
		inputs[i] = &Input{
			ID:     fmt.Sprintf("img-%06d", i),
			Kind:   NumericKind,
			Values: vals,
			Meta: map[string]string{
				"camera": fmt.Sprintf("cam-%d", concept%5),
			},
			Truth: Truth{Relevant: true, Class: cls},
		}
	}
	return inputs, nil
}
