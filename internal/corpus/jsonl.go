package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSONL writes inputs to path as one JSON object per line, the
// interchange format cmd/zombie-datagen produces and cmd/zombie consumes.
// The file is created or truncated.
func WriteJSONL(path string, inputs []*Input) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("corpus: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("corpus: close %s: %w", path, cerr)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(w)
	for i, in := range inputs {
		if in == nil {
			return fmt.Errorf("corpus: nil input at index %d", i)
		}
		if err := enc.Encode(in); err != nil {
			return fmt.Errorf("corpus: encode input %d (%s): %w", i, in.ID, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("corpus: flush %s: %w", path, err)
	}
	return nil
}

// ReadJSONL loads every input from a JSONL file written by WriteJSONL.
func ReadJSONL(path string) ([]*Input, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: open %s: %w", path, err)
	}
	defer f.Close()
	return DecodeJSONL(f)
}

// DecodeJSONL reads inputs from an io.Reader in JSONL form.
func DecodeJSONL(r io.Reader) ([]*Input, error) {
	var out []*Input
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // pages can be long lines
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		in := new(Input)
		if err := json.Unmarshal(raw, in); err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", line, err)
		}
		out = append(out, in)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: scan: %w", err)
	}
	return out, nil
}
