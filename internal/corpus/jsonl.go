package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSONL writes inputs to path as one JSON object per line, the
// interchange format cmd/zombie-datagen produces and cmd/zombie consumes.
// The file is created or truncated.
func WriteJSONL(path string, inputs []*Input) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("corpus: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("corpus: close %s: %w", path, cerr)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(w)
	for i, in := range inputs {
		if in == nil {
			return fmt.Errorf("corpus: nil input at index %d", i)
		}
		if err := enc.Encode(in); err != nil {
			return fmt.Errorf("corpus: encode input %d (%s): %w", i, in.ID, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("corpus: flush %s: %w", path, err)
	}
	return nil
}

// ReadJSONL loads every input from a JSONL file written by WriteJSONL.
func ReadJSONL(path string) ([]*Input, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: open %s: %w", path, err)
	}
	defer f.Close()
	return DecodeJSONL(f)
}

// DecodeJSONL reads inputs from an io.Reader in JSONL form.
func DecodeJSONL(r io.Reader) ([]*Input, error) {
	var out []*Input
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // pages can be long lines
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		in := new(Input)
		if err := json.Unmarshal(raw, in); err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", line, err)
		}
		out = append(out, in)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: scan: %w", err)
	}
	return out, nil
}

// Skipped records one corrupt JSONL line dropped by a tolerant decode.
type Skipped struct {
	// Line is the 1-based line number in the source.
	Line int `json:"line"`
	// Reason is the decode failure.
	Reason string `json:"reason"`
}

// ReadJSONLTolerant is ReadJSONL for corpora collected in the wild: a
// line that fails to decode is skipped and reported instead of aborting
// the load. A torn final line — the signature of a crashed or concurrent
// writer — is tolerated the same way. Strict loading (DecodeJSONL) stays
// the default for generated corpora, where a corrupt line means a bug,
// not weather.
func ReadJSONLTolerant(path string) ([]*Input, []Skipped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("corpus: open %s: %w", path, err)
	}
	defer f.Close()
	return DecodeJSONLTolerant(f)
}

// DecodeJSONLTolerant reads inputs from JSONL, skipping undecodable lines
// and reporting each skip with its line number. It fails only on reader
// errors (the data never arrived) or when no input survives (an
// all-corrupt corpus is indistinguishable from pointing at the wrong
// file, and deserves a loud failure rather than an empty store).
func DecodeJSONLTolerant(r io.Reader) ([]*Input, []Skipped, error) {
	var out []*Input
	var skipped []Skipped
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		in := new(Input)
		if err := json.Unmarshal(raw, in); err != nil {
			skipped = append(skipped, Skipped{Line: line, Reason: err.Error()})
			continue
		}
		out = append(out, in)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("corpus: scan: %w", err)
	}
	if len(out) == 0 && line > 0 {
		return nil, skipped, fmt.Errorf("corpus: no input survived tolerant decode (%d of %d lines corrupt)",
			len(skipped), line)
	}
	return out, skipped, nil
}
