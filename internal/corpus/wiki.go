package corpus

import (
	"fmt"
	"strings"

	"zombie/internal/rng"
)

// WikiConfig parameterizes the synthetic wiki-like corpus generator. It
// stands in for the paper's Wikipedia crawl: pages are bags of Zipfian
// tokens, each page belongs to a topical category, and the pages relevant
// to the extraction task (those that actually contain the target entity
// type) are heavily concentrated in a few categories. Because category
// membership shows through each page's surface vocabulary, cheap index
// features (hashed bags of words) correlate with relevance — the property
// Zombie's index groups exploit.
type WikiConfig struct {
	// N is the number of pages.
	N int
	// Categories is the number of topical categories.
	Categories int
	// TargetCategories is how many categories concentrate the relevant
	// pages (e.g., "NFL players" pages under sports categories).
	TargetCategories int
	// TargetRelevantRate is the probability a page in a target category is
	// relevant; BackgroundRelevantRate applies elsewhere.
	TargetRelevantRate     float64
	BackgroundRelevantRate float64
	// Vocab is the size of the shared background vocabulary; TopicWords is
	// the number of category-specific words per category.
	Vocab      int
	TopicWords int
	// MeanLength is the mean page length in tokens (Poisson).
	MeanLength float64
	// CategorySkew is the Zipf exponent of category popularity.
	CategorySkew float64
}

// DefaultWikiConfig returns the parameters used by the experiments
// (documented in DESIGN.md §4).
func DefaultWikiConfig() WikiConfig {
	return WikiConfig{
		N:                      20000,
		Categories:             40,
		TargetCategories:       6,
		TargetRelevantRate:     0.25,
		BackgroundRelevantRate: 0.01,
		Vocab:                  5000,
		TopicWords:             30,
		MeanLength:             120,
		CategorySkew:           1.05,
	}
}

func (c WikiConfig) validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("corpus: WikiConfig.N must be > 0, got %d", c.N)
	case c.Categories <= 0:
		return fmt.Errorf("corpus: WikiConfig.Categories must be > 0, got %d", c.Categories)
	case c.TargetCategories <= 0 || c.TargetCategories > c.Categories:
		return fmt.Errorf("corpus: WikiConfig.TargetCategories must be in [1,%d], got %d", c.Categories, c.TargetCategories)
	case c.TargetRelevantRate < 0 || c.TargetRelevantRate > 1:
		return fmt.Errorf("corpus: WikiConfig.TargetRelevantRate out of [0,1]: %v", c.TargetRelevantRate)
	case c.BackgroundRelevantRate < 0 || c.BackgroundRelevantRate > 1:
		return fmt.Errorf("corpus: WikiConfig.BackgroundRelevantRate out of [0,1]: %v", c.BackgroundRelevantRate)
	case c.Vocab <= 0 || c.TopicWords <= 0:
		return fmt.Errorf("corpus: WikiConfig vocabulary sizes must be > 0")
	case c.MeanLength <= 0:
		return fmt.Errorf("corpus: WikiConfig.MeanLength must be > 0, got %v", c.MeanLength)
	case c.CategorySkew <= 0:
		return fmt.Errorf("corpus: WikiConfig.CategorySkew must be > 0, got %v", c.CategorySkew)
	}
	return nil
}

// EntityMarkers are the tokens a relevant page's infobox-like section
// contains. The task feature code looks for them; they are deliberately
// rare outside relevant pages.
var EntityMarkers = []string{"infobox", "born", "career", "team", "position"}

// GenerateWiki builds the corpus. The same config and seed always produce
// the identical corpus.
func GenerateWiki(cfg WikiConfig, r *rng.RNG) ([]*Input, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	catZipf := r.Split("cat").NewZipf(cfg.CategorySkew, cfg.Categories)
	wordZipf := r.Split("vocab").NewZipf(1.1, cfg.Vocab)
	// Topic vocabularies for candidate sections: biography ranks draw
	// from the bottom of the shared range, news ranks from the top, so
	// they overlap in the middle.
	const topicRange = 400
	bioZipf := r.Split("bio").NewZipf(0.6, 260)
	newsZipf := r.Split("news").NewZipf(0.6, 260)
	body := r.Split("body")
	rel := r.Split("relevance")

	// The first TargetCategories ranks of the Zipf are popular categories;
	// to avoid conflating popularity with relevance, spread the target
	// categories across the popularity range deterministically.
	targets := map[int]bool{}
	for i := 0; i < cfg.TargetCategories; i++ {
		targets[(i*cfg.Categories)/(cfg.TargetCategories+1)+1] = true
	}

	inputs := make([]*Input, cfg.N)
	for i := range inputs {
		cat := catZipf.Draw()
		isTarget := targets[cat]
		rate := cfg.BackgroundRelevantRate
		if isTarget {
			rate = cfg.TargetRelevantRate
		}
		relevant := rel.Bernoulli(rate)

		length := body.Poisson(cfg.MeanLength)
		if length < 20 {
			length = 20
		}
		var sb strings.Builder
		sb.Grow(length * 6)
		for t := 0; t < length; t++ {
			// 30% of tokens are category topic words; the rest come from
			// the shared background vocabulary.
			if body.Bernoulli(0.3) {
				fmt.Fprintf(&sb, "c%dt%d ", cat, body.Intn(cfg.TopicWords))
			} else {
				fmt.Fprintf(&sb, "w%d ", wordZipf.Draw())
			}
		}
		if relevant {
			// Candidate section: entity markers plus biography-flavored
			// vocabulary. Markers only flag a page as a *candidate*; the
			// class signal lives in the topic-vocabulary distribution, so
			// the learner needs many positives before precision and
			// recall stabilize.
			sb.WriteString(EntityMarkers[0])
			sb.WriteByte(' ')
			for _, m := range EntityMarkers[1:] {
				if body.Bernoulli(0.7) {
					fmt.Fprintf(&sb, "%s ", m)
				}
			}
			for t := 0; t < 8; t++ {
				fmt.Fprintf(&sb, "t%d ", bioZipf.Draw())
			}
		} else if body.Bernoulli(0.10) {
			// Hard negatives: candidate-looking pages (markers present)
			// with news-flavored vocabulary that overlaps the biography
			// vocabulary. These cap precision until the vocabulary
			// statistics are learned.
			for _, m := range EntityMarkers[1:] {
				if body.Bernoulli(0.5) {
					fmt.Fprintf(&sb, "%s ", m)
				}
			}
			fmt.Fprintf(&sb, "%s ", EntityMarkers[1+body.Intn(len(EntityMarkers)-1)])
			for t := 0; t < 8; t++ {
				// News ranks map to the top of the shared token range so
				// the two topic distributions overlap in their tails.
				fmt.Fprintf(&sb, "t%d ", topicRange-1-newsZipf.Draw())
			}
		}

		cls := 0
		if relevant {
			cls = 1
		}
		inputs[i] = &Input{
			ID:   fmt.Sprintf("wiki-%06d", i),
			Kind: TextKind,
			Text: strings.TrimSpace(sb.String()),
			Meta: map[string]string{
				"category": fmt.Sprintf("cat-%02d", cat),
			},
			Truth: Truth{Relevant: relevant, Class: cls},
		}
	}
	return inputs, nil
}
