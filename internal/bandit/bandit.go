// Package bandit implements the multi-armed-bandit substrate behind
// Zombie's online input-selection loop.
//
// Each index group built over the raw corpus becomes one arm. On every
// step of the inner loop the engine asks a Policy for an arm, processes
// that group's next raw input, and feeds the resulting reward (was the
// input useful? did holdout quality move?) back to the policy. Groups can
// run out of inputs mid-run, so Select takes an eligibility mask rather
// than assuming every arm is always playable.
//
// Rewards in Zombie are nonstationary: a group that is rich in useful
// inputs early stops paying once the learner has absorbed what it has to
// teach. The Estimator abstraction therefore supports cumulative,
// sliding-window, and exponentially discounted arm statistics; experiment
// F7 ablates the three.
package bandit

import (
	"fmt"

	"zombie/internal/stats"
)

// Policy selects which arm (index group) to play next and learns from the
// observed rewards. Implementations are deterministic given their RNG
// substream. A Policy is not safe for concurrent use.
type Policy interface {
	// Name identifies the policy in traces and experiment tables.
	Name() string
	// NumArms returns the number of arms the policy was built with.
	NumArms() int
	// Select returns the next arm to play among those with eligible[i]
	// true. It panics if eligible has the wrong length or no arm is
	// eligible; the engine checks for corpus exhaustion before calling.
	Select(eligible []bool) int
	// Update folds the reward observed for arm into the policy state.
	// It panics on an out-of-range arm.
	Update(arm int, reward float64)
	// Snapshot returns per-arm statistics for tracing.
	Snapshot() []ArmSnapshot
	// Reset restores the policy to its initial (un-pulled) state without
	// reseeding its RNG.
	Reset()
}

// ArmSnapshot is a point-in-time view of one arm's statistics.
type ArmSnapshot struct {
	Arm    int
	Pulls  int64
	Mean   float64
	Recent float64 // estimator view (windowed/discounted differ from Mean)
}

// Estimator tracks a reward estimate for a single arm.
type Estimator interface {
	Observe(reward float64)
	// Value returns the current estimate used for arm comparison.
	Value() float64
	// N returns the (possibly effective) number of observations the
	// estimate is based on.
	N() float64
	Reset()
}

// StatsKind selects how arm reward estimates age.
type StatsKind int

const (
	// Cumulative averages every reward ever observed for the arm.
	Cumulative StatsKind = iota
	// Windowed averages only the most recent Window rewards.
	Windowed
	// Discounted multiplies history by Gamma per observation.
	Discounted
)

// String returns the kind's table label.
func (k StatsKind) String() string {
	switch k {
	case Cumulative:
		return "cumulative"
	case Windowed:
		return "windowed"
	case Discounted:
		return "discounted"
	default:
		return fmt.Sprintf("StatsKind(%d)", int(k))
	}
}

// StatsConfig configures per-arm estimators.
type StatsConfig struct {
	Kind   StatsKind
	Window int     // Windowed only; must be > 0
	Gamma  float64 // Discounted only; must be in (0,1)
}

// DefaultStats is the paper-default cumulative estimator.
func DefaultStats() StatsConfig { return StatsConfig{Kind: Cumulative} }

// NewEstimator builds one estimator for the configuration. It panics on an
// invalid configuration so misconfigured experiments fail loudly.
func (c StatsConfig) NewEstimator() Estimator {
	switch c.Kind {
	case Cumulative:
		return &cumulativeEstimator{}
	case Windowed:
		if c.Window <= 0 {
			panic("bandit: Windowed stats require Window > 0")
		}
		return &windowEstimator{win: stats.NewWindow(c.Window)}
	case Discounted:
		if c.Gamma <= 0 || c.Gamma >= 1 {
			panic("bandit: Discounted stats require Gamma in (0,1)")
		}
		return &discountedEstimator{gamma: c.Gamma}
	default:
		panic(fmt.Sprintf("bandit: unknown StatsKind %d", c.Kind))
	}
}

type cumulativeEstimator struct {
	n   float64
	sum float64
}

func (e *cumulativeEstimator) Observe(r float64) { e.n++; e.sum += r }
func (e *cumulativeEstimator) N() float64        { return e.n }
func (e *cumulativeEstimator) Reset()            { e.n, e.sum = 0, 0 }
func (e *cumulativeEstimator) Value() float64 {
	if e.n == 0 {
		return 0
	}
	return e.sum / e.n
}

type windowEstimator struct {
	win *stats.Window
}

func (e *windowEstimator) Observe(r float64) { e.win.Add(r) }
func (e *windowEstimator) Value() float64    { return e.win.Mean() }
func (e *windowEstimator) N() float64        { return float64(e.win.Len()) }
func (e *windowEstimator) Reset()            { e.win.Reset() }

type discountedEstimator struct {
	gamma float64
	num   float64 // discounted reward sum
	den   float64 // discounted count
}

func (e *discountedEstimator) Observe(r float64) {
	e.num = e.gamma*e.num + r
	e.den = e.gamma*e.den + 1
}

func (e *discountedEstimator) Value() float64 {
	if e.den == 0 {
		return 0
	}
	return e.num / e.den
}

func (e *discountedEstimator) N() float64 { return e.den }
func (e *discountedEstimator) Reset()     { e.num, e.den = 0, 0 }

// arms is the bookkeeping shared by every concrete policy.
type arms struct {
	est    []Estimator
	pulls  []int64
	total  int64
	config StatsConfig
}

func newArms(n int, cfg StatsConfig) *arms {
	if n <= 0 {
		panic("bandit: policies require at least one arm")
	}
	a := &arms{
		est:    make([]Estimator, n),
		pulls:  make([]int64, n),
		config: cfg,
	}
	for i := range a.est {
		a.est[i] = cfg.NewEstimator()
	}
	return a
}

func (a *arms) n() int { return len(a.est) }

func (a *arms) update(arm int, reward float64) {
	if arm < 0 || arm >= len(a.est) {
		panic(fmt.Sprintf("bandit: Update arm %d out of range [0,%d)", arm, len(a.est)))
	}
	a.est[arm].Observe(reward)
	a.pulls[arm]++
	a.total++
}

func (a *arms) snapshot() []ArmSnapshot {
	out := make([]ArmSnapshot, len(a.est))
	for i := range out {
		out[i] = ArmSnapshot{
			Arm:    i,
			Pulls:  a.pulls[i],
			Mean:   a.est[i].Value(),
			Recent: a.est[i].Value(),
		}
	}
	return out
}

func (a *arms) reset() {
	for i := range a.est {
		a.est[i].Reset()
		a.pulls[i] = 0
	}
	a.total = 0
}

// checkEligible validates the mask and returns the eligible arm indices.
// It panics if the mask length is wrong or no arm is eligible.
func checkEligible(n int, eligible []bool) []int {
	if len(eligible) != n {
		panic(fmt.Sprintf("bandit: eligibility mask length %d, want %d", len(eligible), n))
	}
	idx := make([]int, 0, n)
	for i, ok := range eligible {
		if ok {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		panic("bandit: Select with no eligible arm")
	}
	return idx
}

// AllEligible returns a mask of n true values, for callers that never
// exhaust arms (tests, simulations).
func AllEligible(n int) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = true
	}
	return m
}
