package bandit

import (
	"fmt"
	"math"

	"zombie/internal/rng"
	"zombie/internal/stats"
)

// SWUCB is sliding-window UCB (Garivier & Moulines): UCB computed over
// only the most recent `window` plays across all arms. Where plain UCB1
// never forgets, SW-UCB tracks the drifting arm payoffs Zombie induces as
// index groups deplete — the policy-level counterpart of the windowed
// estimator ablated in experiment F7.
type SWUCB struct {
	n      int
	window int
	c      float64
	r      *rng.RNG
	// ring of the last `window` (arm, reward) plays.
	arms    *stats.Window // stores arm indices as float64
	rewards *stats.Window
	pulls   []int64
	total   int64
}

// NewSWUCB returns a sliding-window UCB policy over nArms arms with the
// given window and exploration constant c. It panics on window < 1 or
// c < 0.
func NewSWUCB(nArms, window int, c float64, r *rng.RNG) *SWUCB {
	if nArms <= 0 {
		panic("bandit: SWUCB requires at least one arm")
	}
	if window < 1 {
		panic("bandit: SWUCB window must be >= 1")
	}
	if c < 0 {
		panic("bandit: SWUCB exploration constant must be >= 0")
	}
	return &SWUCB{
		n:       nArms,
		window:  window,
		c:       c,
		r:       r,
		arms:    stats.NewWindow(window),
		rewards: stats.NewWindow(window),
		pulls:   make([]int64, nArms),
	}
}

// Name implements Policy.
func (p *SWUCB) Name() string { return fmt.Sprintf("sw-ucb(%d,%.2f)", p.window, p.c) }

// NumArms implements Policy.
func (p *SWUCB) NumArms() int { return p.n }

// windowStats returns per-arm (count, mean) over the sliding window.
func (p *SWUCB) windowStats() (counts []float64, means []float64) {
	counts = make([]float64, p.n)
	sums := make([]float64, p.n)
	armVals := p.arms.Values()
	rewVals := p.rewards.Values()
	for i := range armVals {
		a := int(armVals[i])
		counts[a]++
		sums[a] += rewVals[i]
	}
	means = make([]float64, p.n)
	for a := range means {
		if counts[a] > 0 {
			means[a] = sums[a] / counts[a]
		}
	}
	return counts, means
}

// Select implements Policy.
func (p *SWUCB) Select(eligible []bool) int {
	idx := checkEligible(p.n, eligible)
	counts, means := p.windowStats()
	// Any eligible arm absent from the window is played first.
	var unseen []int
	for _, a := range idx {
		if counts[a] == 0 {
			unseen = append(unseen, a)
		}
	}
	if len(unseen) > 0 {
		return unseen[p.r.Choice(len(unseen))]
	}
	t := float64(p.arms.Len())
	best := math.Inf(-1)
	var ties []int
	for _, a := range idx {
		score := means[a] + p.c*math.Sqrt(2*math.Log(t)/counts[a])
		switch {
		case score > best:
			best = score
			ties = ties[:0]
			ties = append(ties, a)
		case score == best:
			ties = append(ties, a)
		}
	}
	if len(ties) == 1 {
		return ties[0]
	}
	return ties[p.r.Choice(len(ties))]
}

// Update implements Policy.
func (p *SWUCB) Update(arm int, reward float64) {
	if arm < 0 || arm >= p.n {
		panic(fmt.Sprintf("bandit: Update arm %d out of range [0,%d)", arm, p.n))
	}
	p.arms.Add(float64(arm))
	p.rewards.Add(reward)
	p.pulls[arm]++
	p.total++
}

// Snapshot implements Policy.
func (p *SWUCB) Snapshot() []ArmSnapshot {
	counts, means := p.windowStats()
	out := make([]ArmSnapshot, p.n)
	for a := range out {
		out[a] = ArmSnapshot{Arm: a, Pulls: p.pulls[a], Mean: means[a], Recent: means[a]}
		_ = counts
	}
	return out
}

// Reset implements Policy.
func (p *SWUCB) Reset() {
	p.arms.Reset()
	p.rewards.Reset()
	for a := range p.pulls {
		p.pulls[a] = 0
	}
	p.total = 0
}

// DUCB is discounted UCB (Kocsis & Szepesvári / Garivier & Moulines):
// every observation's weight decays by gamma per play, so the policy
// continuously forgets. The exploration bonus uses the effective sample
// counts.
type DUCB struct {
	n     int
	gamma float64
	c     float64
	r     *rng.RNG
	// Discounted sufficient statistics.
	discN   []float64
	discSum []float64
	pulls   []int64
	total   int64
}

// NewDUCB returns a discounted-UCB policy. It panics on gamma outside
// (0,1) or c < 0.
func NewDUCB(nArms int, gamma, c float64, r *rng.RNG) *DUCB {
	if nArms <= 0 {
		panic("bandit: DUCB requires at least one arm")
	}
	if gamma <= 0 || gamma >= 1 {
		panic("bandit: DUCB gamma must be in (0,1)")
	}
	if c < 0 {
		panic("bandit: DUCB exploration constant must be >= 0")
	}
	return &DUCB{
		n:       nArms,
		gamma:   gamma,
		c:       c,
		r:       r,
		discN:   make([]float64, nArms),
		discSum: make([]float64, nArms),
		pulls:   make([]int64, nArms),
	}
}

// Name implements Policy.
func (p *DUCB) Name() string { return fmt.Sprintf("d-ucb(%.3f,%.2f)", p.gamma, p.c) }

// NumArms implements Policy.
func (p *DUCB) NumArms() int { return p.n }

// Select implements Policy.
func (p *DUCB) Select(eligible []bool) int {
	idx := checkEligible(p.n, eligible)
	var unseen []int
	for _, a := range idx {
		if p.discN[a] <= 1e-9 {
			unseen = append(unseen, a)
		}
	}
	if len(unseen) > 0 {
		return unseen[p.r.Choice(len(unseen))]
	}
	totalN := 0.0
	for _, a := range idx {
		totalN += p.discN[a]
	}
	if totalN < 1 {
		totalN = 1
	}
	best := math.Inf(-1)
	var ties []int
	for _, a := range idx {
		mean := p.discSum[a] / p.discN[a]
		score := mean + p.c*math.Sqrt(2*math.Log(totalN)/p.discN[a])
		switch {
		case score > best:
			best = score
			ties = ties[:0]
			ties = append(ties, a)
		case score == best:
			ties = append(ties, a)
		}
	}
	if len(ties) == 1 {
		return ties[0]
	}
	return ties[p.r.Choice(len(ties))]
}

// Update implements Policy. Every arm's statistics decay on every play,
// which is what lets stale estimates fade even for unplayed arms.
func (p *DUCB) Update(arm int, reward float64) {
	if arm < 0 || arm >= p.n {
		panic(fmt.Sprintf("bandit: Update arm %d out of range [0,%d)", arm, p.n))
	}
	for a := 0; a < p.n; a++ {
		p.discN[a] *= p.gamma
		p.discSum[a] *= p.gamma
	}
	p.discN[arm]++
	p.discSum[arm] += reward
	p.pulls[arm]++
	p.total++
}

// Snapshot implements Policy.
func (p *DUCB) Snapshot() []ArmSnapshot {
	out := make([]ArmSnapshot, p.n)
	for a := range out {
		mean := 0.0
		if p.discN[a] > 0 {
			mean = p.discSum[a] / p.discN[a]
		}
		out[a] = ArmSnapshot{Arm: a, Pulls: p.pulls[a], Mean: mean, Recent: mean}
	}
	return out
}

// Reset implements Policy.
func (p *DUCB) Reset() {
	for a := 0; a < p.n; a++ {
		p.discN[a] = 0
		p.discSum[a] = 0
		p.pulls[a] = 0
	}
	p.total = 0
}
