package bandit

import (
	"fmt"
	"math"
)

// Seed warm-starts a freshly built policy from a previous run's final
// ArmSnapshots: the session workspace's bridge between two versions of a
// feature recipe. Editing one recipe part barely changes which index
// groups are rich in useful inputs, so the next run should not pay the
// full explore cost again — instead the previous run's per-arm statistics
// are replayed into the new policy as synthetic pulls.
//
// For each snapshot, the arm receives round(decay × Pulls) calls of
// Update(arm, Mean). Replaying through the public Update path (rather
// than poking estimator internals) makes seeding uniform across every
// policy: cumulative estimators land exactly on the snapshot mean,
// Thompson's Beta posterior accumulates the same pseudo-counts a real
// reward stream with that mean would have produced, UCB's pull counts
// shrink its exploration bonus, and EXP3's weights tilt toward the arms
// that paid. No policy consumes randomness in Update, so seeding draws
// nothing from the policy's RNG substream.
//
// decay scales trust in the previous version, in [0,1]: 1 replays every
// pull, 0 replays nothing. Seed is a pure function of (snapshots, decay):
// it touches only the policy, deterministically, so two policies seeded
// from the same inputs behave identically ever after. With decay = 0 (or
// no snapshots) Seed returns without calling Update at all, which is what
// makes a decay-0 session run byte-identical to a cold run.
//
// It returns the total number of synthetic pulls applied.
func Seed(p Policy, snaps []ArmSnapshot, decay float64) (int64, error) {
	if p == nil {
		return 0, fmt.Errorf("bandit: Seed requires a policy")
	}
	if decay < 0 || decay > 1 || math.IsNaN(decay) {
		return 0, fmt.Errorf("bandit: Seed decay must be in [0,1], got %v", decay)
	}
	if decay == 0 || len(snaps) == 0 {
		return 0, nil
	}
	n := p.NumArms()
	var total int64
	for _, s := range snaps {
		if s.Arm < 0 || s.Arm >= n {
			return 0, fmt.Errorf("bandit: Seed snapshot arm %d out of range [0,%d)", s.Arm, n)
		}
		if s.Pulls < 0 {
			return 0, fmt.Errorf("bandit: Seed snapshot arm %d has negative pulls %d", s.Arm, s.Pulls)
		}
		k := SeededPulls(s.Pulls, decay)
		for i := int64(0); i < k; i++ {
			p.Update(s.Arm, s.Mean)
		}
		total += k
	}
	return total, nil
}

// SeededPulls returns how many synthetic pulls Seed replays for an arm
// with the given historical pull count at the given decay:
// round(decay × pulls). Exposed so tests and stats reporting share the
// exact rounding rule.
func SeededPulls(pulls int64, decay float64) int64 {
	return int64(math.Floor(decay*float64(pulls) + 0.5))
}
