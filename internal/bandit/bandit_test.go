package bandit

import (
	"math"
	"testing"
	"testing/quick"

	"zombie/internal/rng"
)

func allPolicies(n int, r *rng.RNG) []Policy {
	cfg := DefaultStats()
	return []Policy{
		NewEpsilonGreedy(n, 0.1, 0, cfg, r.Split("eg")),
		NewEpsilonGreedy(n, 0, 0, cfg, r.Split("greedy")),
		NewEpsilonGreedy(n, 0.5, 0.01, cfg, r.Split("decay")),
		NewUCB1(n, 1, cfg, r.Split("ucb")),
		NewThompsonBernoulli(n, cfg, r.Split("ts")),
		NewThompsonGaussian(n, 1, cfg, r.Split("tsg")),
		NewSoftmax(n, 0.1, cfg, r.Split("sm")),
		NewEXP3(n, 0.1, cfg, r.Split("exp3")),
		NewRoundRobin(n, cfg),
		NewUniformRandom(n, cfg, r.Split("ur")),
	}
}

// bernoulliBandit runs policy p for steps pulls against stationary
// Bernoulli arms with the given success probabilities and returns per-arm
// pull counts.
func bernoulliBandit(p Policy, probs []float64, steps int, r *rng.RNG) []int64 {
	eligible := AllEligible(len(probs))
	for i := 0; i < steps; i++ {
		arm := p.Select(eligible)
		reward := 0.0
		if r.Bernoulli(probs[arm]) {
			reward = 1
		}
		p.Update(arm, reward)
	}
	counts := make([]int64, len(probs))
	for _, s := range p.Snapshot() {
		counts[s.Arm] = s.Pulls
	}
	return counts
}

func TestPullAccountingSumsToSteps(t *testing.T) {
	r := rng.New(100)
	for _, p := range allPolicies(5, r) {
		counts := bernoulliBandit(p, []float64{0.1, 0.2, 0.3, 0.4, 0.5}, 500, r.Split(p.Name()))
		total := int64(0)
		for _, c := range counts {
			total += c
		}
		if total != 500 {
			t.Errorf("%s: pulls sum to %d, want 500", p.Name(), total)
		}
	}
}

func TestAdaptivePoliciesFindBestArm(t *testing.T) {
	// On a strongly separated stationary problem, every reward-adaptive
	// policy should concentrate the majority of pulls on the best arm.
	probs := []float64{0.05, 0.1, 0.9, 0.05}
	r := rng.New(200)
	adaptive := []Policy{
		NewEpsilonGreedy(4, 0.1, 0, DefaultStats(), r.Split("eg")),
		NewUCB1(4, 1, DefaultStats(), r.Split("ucb")),
		NewThompsonBernoulli(4, DefaultStats(), r.Split("ts")),
		NewThompsonGaussian(4, 1, DefaultStats(), r.Split("tsg")),
		NewSoftmax(4, 0.05, DefaultStats(), r.Split("sm")),
		NewEXP3(4, 0.1, DefaultStats(), r.Split("exp3")),
	}
	for _, p := range adaptive {
		counts := bernoulliBandit(p, probs, 3000, r.Split("env-"+p.Name()))
		if counts[2] < 1500 {
			t.Errorf("%s: best arm pulled only %d/3000 times (%v)", p.Name(), counts[2], counts)
		}
	}
}

func TestNonAdaptiveBaselinesSpreadPulls(t *testing.T) {
	probs := []float64{0.05, 0.9, 0.05, 0.05}
	r := rng.New(300)
	for _, p := range []Policy{
		NewRoundRobin(4, DefaultStats()),
		NewUniformRandom(4, DefaultStats(), r.Split("ur")),
	} {
		counts := bernoulliBandit(p, probs, 4000, r.Split("env-"+p.Name()))
		for i, c := range counts {
			if c < 700 || c > 1300 {
				t.Errorf("%s: arm %d pulled %d times, expected ~1000 (%v)", p.Name(), i, c, counts)
			}
		}
	}
}

func TestRoundRobinExactCycle(t *testing.T) {
	p := NewRoundRobin(3, DefaultStats())
	eligible := AllEligible(3)
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		got := p.Select(eligible)
		if got != w {
			t.Fatalf("step %d: got arm %d, want %d", i, got, w)
		}
		p.Update(got, 0)
	}
}

func TestEligibilityMaskRespected(t *testing.T) {
	r := rng.New(400)
	for _, p := range allPolicies(6, r) {
		mask := []bool{false, true, false, true, false, false}
		for i := 0; i < 300; i++ {
			arm := p.Select(mask)
			if !mask[arm] {
				t.Fatalf("%s: selected ineligible arm %d", p.Name(), arm)
			}
			p.Update(arm, r.Float64())
		}
	}
}

func TestSingleEligibleArmAlwaysChosen(t *testing.T) {
	r := rng.New(500)
	for _, p := range allPolicies(4, r) {
		mask := []bool{false, false, true, false}
		for i := 0; i < 50; i++ {
			if arm := p.Select(mask); arm != 2 {
				t.Fatalf("%s: selected %d, only arm 2 eligible", p.Name(), arm)
			}
			p.Update(2, 1)
		}
	}
}

func TestSelectPanicsOnBadMask(t *testing.T) {
	r := rng.New(600)
	for _, p := range allPolicies(3, r) {
		p := p
		mustPanic(t, p.Name()+" empty mask", func() { p.Select([]bool{false, false, false}) })
		mustPanic(t, p.Name()+" wrong length", func() { p.Select([]bool{true}) })
	}
}

func TestUpdatePanicsOutOfRange(t *testing.T) {
	r := rng.New(700)
	for _, p := range allPolicies(3, r) {
		p := p
		mustPanic(t, p.Name()+" negative arm", func() { p.Update(-1, 1) })
		mustPanic(t, p.Name()+" overflow arm", func() { p.Update(3, 1) })
	}
}

func TestResetClearsState(t *testing.T) {
	r := rng.New(800)
	for _, p := range allPolicies(4, r) {
		bernoulliBandit(p, []float64{0.2, 0.8, 0.2, 0.2}, 200, r.Split("env-"+p.Name()))
		p.Reset()
		for _, s := range p.Snapshot() {
			if s.Pulls != 0 || s.Mean != 0 {
				// Thompson snapshot Recent reflects the prior (0.5); Mean
				// must still be zero after reset.
				t.Fatalf("%s: arm %d not reset: %+v", p.Name(), s.Arm, s)
			}
		}
		// Policy must remain usable after reset.
		arm := p.Select(AllEligible(4))
		p.Update(arm, 1)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []int {
		r := rng.New(900)
		p := NewEpsilonGreedy(5, 0.2, 0, DefaultStats(), r.Split("p"))
		env := r.Split("env")
		seq := make([]int, 300)
		eligible := AllEligible(5)
		for i := range seq {
			arm := p.Select(eligible)
			seq[i] = arm
			reward := 0.0
			if env.Bernoulli(0.2 * float64(arm+1)) {
				reward = 1
			}
			p.Update(arm, reward)
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestUnpulledArmsTriedFirst(t *testing.T) {
	// Optimistic initialization: greedy and UCB1 must try every arm before
	// settling, even with a tempting early winner.
	r := rng.New(1000)
	for _, p := range []Policy{
		NewEpsilonGreedy(6, 0, 0, DefaultStats(), r.Split("g")),
		NewUCB1(6, 1, DefaultStats(), r.Split("u")),
	} {
		seen := map[int]bool{}
		eligible := AllEligible(6)
		for i := 0; i < 6; i++ {
			arm := p.Select(eligible)
			if seen[arm] {
				t.Fatalf("%s: arm %d repeated before all arms tried", p.Name(), arm)
			}
			seen[arm] = true
			p.Update(arm, 1) // max reward: a greedy policy would stick without optimism
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	r := rng.New(1100)
	mustPanic(t, "zero arms", func() { NewRoundRobin(0, DefaultStats()) })
	mustPanic(t, "bad epsilon", func() { NewEpsilonGreedy(2, 1.5, 0, DefaultStats(), r) })
	mustPanic(t, "bad decay", func() { NewEpsilonGreedy(2, 0.1, -1, DefaultStats(), r) })
	mustPanic(t, "bad ucb c", func() { NewUCB1(2, -1, DefaultStats(), r) })
	mustPanic(t, "bad temperature", func() { NewSoftmax(2, 0, DefaultStats(), r) })
	mustPanic(t, "bad gamma", func() { NewEXP3(2, 0, DefaultStats(), r) })
	mustPanic(t, "bad gamma hi", func() { NewEXP3(2, 1.1, DefaultStats(), r) })
	mustPanic(t, "bad prior", func() { NewThompsonGaussian(2, 0, DefaultStats(), r) })
}

func TestSnapshotMeansMatchRewards(t *testing.T) {
	if err := quick.Check(func(rewardsRaw [20]uint8) bool {
		r := rng.New(1200)
		p := NewRoundRobin(2, DefaultStats())
		var sums [2]float64
		var counts [2]float64
		eligible := AllEligible(2)
		for _, raw := range rewardsRaw {
			arm := p.Select(eligible)
			reward := float64(raw%100) / 100
			p.Update(arm, reward)
			sums[arm] += reward
			counts[arm]++
		}
		_ = r
		for _, s := range p.Snapshot() {
			want := 0.0
			if counts[s.Arm] > 0 {
				want = sums[s.Arm] / counts[s.Arm]
			}
			if math.Abs(s.Mean-want) > 1e-9 {
				return false
			}
			if s.Pulls != int64(counts[s.Arm]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
