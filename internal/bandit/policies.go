package bandit

import (
	"fmt"
	"math"

	"zombie/internal/rng"
)

// EpsilonGreedy plays the best-estimate arm with probability 1-ε and a
// uniformly random eligible arm with probability ε. This is Zombie's
// default policy. With DecayRate > 0 the effective ε at step t is
// ε / (1 + DecayRate·t), shifting from exploration to exploitation as the
// run progresses.
type EpsilonGreedy struct {
	*arms
	Epsilon   float64
	DecayRate float64
	r         *rng.RNG
	step      int64
}

// NewEpsilonGreedy returns an ε-greedy policy over n arms. It panics if
// epsilon is outside [0,1] or decayRate is negative.
func NewEpsilonGreedy(n int, epsilon, decayRate float64, cfg StatsConfig, r *rng.RNG) *EpsilonGreedy {
	if epsilon < 0 || epsilon > 1 {
		panic("bandit: epsilon must be in [0,1]")
	}
	if decayRate < 0 {
		panic("bandit: decayRate must be >= 0")
	}
	return &EpsilonGreedy{arms: newArms(n, cfg), Epsilon: epsilon, DecayRate: decayRate, r: r}
}

// Name implements Policy.
func (p *EpsilonGreedy) Name() string {
	if p.DecayRate > 0 {
		return fmt.Sprintf("eps-greedy(%.2f,decay=%.3f)", p.Epsilon, p.DecayRate)
	}
	return fmt.Sprintf("eps-greedy(%.2f)", p.Epsilon)
}

// NumArms implements Policy.
func (p *EpsilonGreedy) NumArms() int { return p.n() }

// Select implements Policy.
func (p *EpsilonGreedy) Select(eligible []bool) int {
	idx := checkEligible(p.n(), eligible)
	p.step++
	eps := p.Epsilon
	if p.DecayRate > 0 {
		eps = p.Epsilon / (1 + p.DecayRate*float64(p.step))
	}
	if p.r.Bernoulli(eps) {
		return idx[p.r.Choice(len(idx))]
	}
	return bestEligible(p.arms, idx, p.r)
}

// Update implements Policy.
func (p *EpsilonGreedy) Update(arm int, reward float64) { p.update(arm, reward) }

// Snapshot implements Policy.
func (p *EpsilonGreedy) Snapshot() []ArmSnapshot { return p.snapshot() }

// Reset implements Policy.
func (p *EpsilonGreedy) Reset() { p.reset(); p.step = 0 }

// bestEligible returns the eligible arm with the highest estimate. Unpulled
// arms are treated as optimistic (estimate +Inf) so every arm is tried at
// least once; ties break uniformly at random to avoid index bias.
func bestEligible(a *arms, idx []int, r *rng.RNG) int {
	best := math.Inf(-1)
	var ties []int
	for _, i := range idx {
		v := a.est[i].Value()
		if a.pulls[i] == 0 {
			v = math.Inf(1)
		}
		switch {
		case v > best:
			best = v
			ties = ties[:0]
			ties = append(ties, i)
		case v == best:
			ties = append(ties, i)
		}
	}
	if len(ties) == 1 {
		return ties[0]
	}
	return ties[r.Choice(len(ties))]
}

// Softmax (Boltzmann exploration) selects arms with probability
// proportional to exp(estimate/Temperature).
type Softmax struct {
	*arms
	Temperature float64
	r           *rng.RNG
}

// NewSoftmax returns a Boltzmann policy. It panics if temperature <= 0.
func NewSoftmax(n int, temperature float64, cfg StatsConfig, r *rng.RNG) *Softmax {
	if temperature <= 0 {
		panic("bandit: softmax temperature must be > 0")
	}
	return &Softmax{arms: newArms(n, cfg), Temperature: temperature, r: r}
}

// Name implements Policy.
func (p *Softmax) Name() string { return fmt.Sprintf("softmax(%.2f)", p.Temperature) }

// NumArms implements Policy.
func (p *Softmax) NumArms() int { return p.n() }

// Select implements Policy.
func (p *Softmax) Select(eligible []bool) int {
	idx := checkEligible(p.n(), eligible)
	// Max-shift for stability, computed over eligible arms only.
	max := math.Inf(-1)
	for _, i := range idx {
		if v := p.est[i].Value(); v > max {
			max = v
		}
	}
	weights := make([]float64, len(idx))
	for k, i := range idx {
		weights[k] = math.Exp((p.est[i].Value() - max) / p.Temperature)
	}
	return idx[p.r.WeightedChoice(weights)]
}

// Update implements Policy.
func (p *Softmax) Update(arm int, reward float64) { p.update(arm, reward) }

// Snapshot implements Policy.
func (p *Softmax) Snapshot() []ArmSnapshot { return p.snapshot() }

// Reset implements Policy.
func (p *Softmax) Reset() { p.reset() }

// RoundRobin cycles deterministically through the eligible arms; it
// ignores rewards. It is the "fair scan over groups" baseline.
type RoundRobin struct {
	*arms
	next int
}

// NewRoundRobin returns a round-robin policy over n arms.
func NewRoundRobin(n int, cfg StatsConfig) *RoundRobin {
	return &RoundRobin{arms: newArms(n, cfg)}
}

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// NumArms implements Policy.
func (p *RoundRobin) NumArms() int { return p.n() }

// Select implements Policy.
func (p *RoundRobin) Select(eligible []bool) int {
	checkEligible(p.n(), eligible)
	for off := 0; off < p.n(); off++ {
		arm := (p.next + off) % p.n()
		if eligible[arm] {
			p.next = (arm + 1) % p.n()
			return arm
		}
	}
	panic("bandit: unreachable — checkEligible guarantees an eligible arm")
}

// Update implements Policy.
func (p *RoundRobin) Update(arm int, reward float64) { p.update(arm, reward) }

// Snapshot implements Policy.
func (p *RoundRobin) Snapshot() []ArmSnapshot { return p.snapshot() }

// Reset implements Policy.
func (p *RoundRobin) Reset() { p.reset(); p.next = 0 }

// UniformRandom picks an eligible arm uniformly at random; it ignores
// rewards. Selecting groups at random then draining inputs from them is
// statistically equivalent to a shuffled scan, making this the bandit-form
// random baseline.
type UniformRandom struct {
	*arms
	r *rng.RNG
}

// NewUniformRandom returns a uniform-random policy over n arms.
func NewUniformRandom(n int, cfg StatsConfig, r *rng.RNG) *UniformRandom {
	return &UniformRandom{arms: newArms(n, cfg), r: r}
}

// Name implements Policy.
func (p *UniformRandom) Name() string { return "uniform-random" }

// NumArms implements Policy.
func (p *UniformRandom) NumArms() int { return p.n() }

// Select implements Policy.
func (p *UniformRandom) Select(eligible []bool) int {
	idx := checkEligible(p.n(), eligible)
	return idx[p.r.Choice(len(idx))]
}

// Update implements Policy.
func (p *UniformRandom) Update(arm int, reward float64) { p.update(arm, reward) }

// Snapshot implements Policy.
func (p *UniformRandom) Snapshot() []ArmSnapshot { return p.snapshot() }

// Reset implements Policy.
func (p *UniformRandom) Reset() { p.reset() }
