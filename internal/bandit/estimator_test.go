package bandit

import (
	"math"
	"testing"

	"zombie/internal/rng"
)

func TestCumulativeEstimator(t *testing.T) {
	e := DefaultStats().NewEstimator()
	if e.Value() != 0 || e.N() != 0 {
		t.Fatal("fresh estimator not zero")
	}
	e.Observe(1)
	e.Observe(0)
	e.Observe(1)
	if math.Abs(e.Value()-2.0/3.0) > 1e-12 {
		t.Fatalf("Value = %v", e.Value())
	}
	if e.N() != 3 {
		t.Fatalf("N = %v", e.N())
	}
	e.Reset()
	if e.Value() != 0 || e.N() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestWindowEstimatorForgets(t *testing.T) {
	e := StatsConfig{Kind: Windowed, Window: 3}.NewEstimator()
	for i := 0; i < 10; i++ {
		e.Observe(1) // arm used to be great
	}
	for i := 0; i < 3; i++ {
		e.Observe(0) // then went cold
	}
	if e.Value() != 0 {
		t.Fatalf("windowed estimator should have forgotten: %v", e.Value())
	}
	if e.N() != 3 {
		t.Fatalf("effective N = %v", e.N())
	}
}

func TestCumulativeEstimatorDoesNotForget(t *testing.T) {
	e := DefaultStats().NewEstimator()
	for i := 0; i < 10; i++ {
		e.Observe(1)
	}
	for i := 0; i < 3; i++ {
		e.Observe(0)
	}
	if e.Value() < 0.5 {
		t.Fatalf("cumulative estimator forgot history: %v", e.Value())
	}
}

func TestDiscountedEstimatorTracksDrift(t *testing.T) {
	e := StatsConfig{Kind: Discounted, Gamma: 0.9}.NewEstimator()
	for i := 0; i < 100; i++ {
		e.Observe(1)
	}
	highVal := e.Value()
	for i := 0; i < 50; i++ {
		e.Observe(0)
	}
	if e.Value() > 0.1 {
		t.Fatalf("discounted estimator too sticky: %v (was %v)", e.Value(), highVal)
	}
	if math.Abs(highVal-1) > 1e-6 {
		t.Fatalf("constant stream should estimate 1, got %v", highVal)
	}
}

func TestEstimatorConfigValidation(t *testing.T) {
	mustPanic(t, "bad window", func() { StatsConfig{Kind: Windowed}.NewEstimator() })
	mustPanic(t, "bad gamma lo", func() { StatsConfig{Kind: Discounted, Gamma: 0}.NewEstimator() })
	mustPanic(t, "bad gamma hi", func() { StatsConfig{Kind: Discounted, Gamma: 1}.NewEstimator() })
	mustPanic(t, "unknown kind", func() { StatsConfig{Kind: StatsKind(99)}.NewEstimator() })
}

func TestStatsKindString(t *testing.T) {
	if Cumulative.String() != "cumulative" || Windowed.String() != "windowed" || Discounted.String() != "discounted" {
		t.Fatal("StatsKind labels wrong")
	}
	if StatsKind(42).String() != "StatsKind(42)" {
		t.Fatalf("unknown kind label: %s", StatsKind(42).String())
	}
}

func TestWindowedPolicyRecoversFromDrift(t *testing.T) {
	// Nonstationary environment: arm 0 pays early then dies; arm 1 starts
	// paying later. A windowed ε-greedy should shift to arm 1; a cumulative
	// one is slower. This is the mechanism experiment F7 measures.
	run := func(cfg StatsConfig) int64 {
		r := rng.New(42)
		p := NewEpsilonGreedy(2, 0.1, 0, cfg, r.Split("p"))
		env := r.Split("env")
		eligible := AllEligible(2)
		armPullsLate := int64(0)
		for step := 0; step < 4000; step++ {
			arm := p.Select(eligible)
			var prob float64
			if step < 2000 { // phase 1: arm 0 pays
				if arm == 0 {
					prob = 0.8
				} else {
					prob = 0.1
				}
			} else { // phase 2: arm 1 pays
				if arm == 1 {
					prob = 0.8
				} else {
					prob = 0.05
				}
				if arm == 1 {
					armPullsLate++
				}
			}
			reward := 0.0
			if env.Bernoulli(prob) {
				reward = 1
			}
			p.Update(arm, reward)
		}
		return armPullsLate
	}
	windowed := run(StatsConfig{Kind: Windowed, Window: 100})
	cumulative := run(DefaultStats())
	if windowed <= cumulative {
		t.Fatalf("windowed stats should adapt faster: windowed=%d cumulative=%d", windowed, cumulative)
	}
	if windowed < 1200 {
		t.Fatalf("windowed policy failed to shift to the new best arm: %d/2000 late pulls", windowed)
	}
}
