package bandit

import (
	"fmt"
	"math"

	"zombie/internal/rng"
)

// EXP3 implements the adversarial-bandit algorithm of Auer et al. with
// exploration mixing parameter Gamma in (0,1]. It makes no stationarity
// assumption at all, which makes it a natural point of comparison for
// Zombie's drifting rewards even though its regret bounds are looser than
// the stochastic policies on well-clustered corpora.
//
// Rewards are clamped into [0,1] before the exponential weight update (the
// standard EXP3 requirement); weights are renormalized whenever they grow
// large to avoid overflow on long runs.
type EXP3 struct {
	*arms
	Gamma   float64
	weights []float64
	r       *rng.RNG
	// lastProb remembers the selection probability of the last chosen
	// arm so Update can apply the importance-weighted estimate.
	lastProb []float64
}

// NewEXP3 returns an EXP3 policy over n arms. It panics if gamma is
// outside (0,1].
func NewEXP3(n int, gamma float64, cfg StatsConfig, r *rng.RNG) *EXP3 {
	if gamma <= 0 || gamma > 1 {
		panic("bandit: EXP3 gamma must be in (0,1]")
	}
	p := &EXP3{
		arms:     newArms(n, cfg),
		Gamma:    gamma,
		weights:  make([]float64, n),
		lastProb: make([]float64, n),
		r:        r,
	}
	for i := range p.weights {
		p.weights[i] = 1
	}
	return p
}

// Name implements Policy.
func (p *EXP3) Name() string { return fmt.Sprintf("exp3(%.2f)", p.Gamma) }

// NumArms implements Policy.
func (p *EXP3) NumArms() int { return p.n() }

// probabilities computes the EXP3 distribution restricted to the eligible
// arms: p_i = (1-γ)·w_i/Σw + γ/K over eligible arms.
func (p *EXP3) probabilities(idx []int) []float64 {
	total := 0.0
	for _, i := range idx {
		total += p.weights[i]
	}
	k := float64(len(idx))
	probs := make([]float64, len(idx))
	for j, i := range idx {
		share := 0.0
		if total > 0 {
			share = p.weights[i] / total
		} else {
			share = 1 / k
		}
		probs[j] = (1-p.Gamma)*share + p.Gamma/k
	}
	return probs
}

// Select implements Policy.
func (p *EXP3) Select(eligible []bool) int {
	idx := checkEligible(p.n(), eligible)
	probs := p.probabilities(idx)
	j := p.r.WeightedChoice(probs)
	arm := idx[j]
	for i := range p.lastProb {
		p.lastProb[i] = 0
	}
	for k, i := range idx {
		p.lastProb[i] = probs[k]
	}
	return arm
}

// Update implements Policy.
func (p *EXP3) Update(arm int, reward float64) {
	p.update(arm, reward)
	r := reward
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	prob := p.lastProb[arm]
	if prob <= 0 {
		// Update for an arm not offered in the last Select (e.g. replay);
		// fall back to a uniform probability so the weight still moves.
		prob = 1 / float64(p.n())
	}
	xhat := r / prob
	p.weights[arm] *= math.Exp(p.Gamma * xhat / float64(p.n()))
	// Renormalize to keep weights bounded on long runs.
	max := 0.0
	for _, w := range p.weights {
		if w > max {
			max = w
		}
	}
	if max > 1e100 {
		for i := range p.weights {
			p.weights[i] /= max
		}
	}
}

// Snapshot implements Policy.
func (p *EXP3) Snapshot() []ArmSnapshot { return p.snapshot() }

// Reset implements Policy.
func (p *EXP3) Reset() {
	p.reset()
	for i := range p.weights {
		p.weights[i] = 1
		p.lastProb[i] = 0
	}
}
