package bandit

import (
	"math"
	"reflect"
	"testing"

	"zombie/internal/rng"
)

// trainPolicy feeds a deterministic reward stream with per-arm means into
// a policy and returns its final snapshot. Rewards stay in {0,1} so every
// estimator family (cumulative mean, Beta pseudo-counts, EXP3 weights)
// sees the stream a real usefulness-reward run would produce.
func trainPolicy(p Policy, r *rng.RNG, steps int) []ArmSnapshot {
	n := p.NumArms()
	elig := AllEligible(n)
	for i := 0; i < steps; i++ {
		arm := p.Select(elig)
		// Arm j pays 1 with probability (j+1)/(n+1).
		reward := 0.0
		if r.Float64() < float64(arm+1)/float64(n+1) {
			reward = 1
		}
		p.Update(arm, reward)
	}
	return p.Snapshot()
}

func seedPolicies(t *testing.T) []func(seed int64) Policy {
	t.Helper()
	cfg := DefaultStats()
	return []func(seed int64) Policy{
		func(seed int64) Policy { return NewUCB1(6, math.Sqrt2, cfg, rng.New(seed)) },
		func(seed int64) Policy { return NewThompsonBernoulli(6, cfg, rng.New(seed)) },
		func(seed int64) Policy { return NewEXP3(6, 0.1, cfg, rng.New(seed)) },
		func(seed int64) Policy { return NewEpsilonGreedy(6, 0.1, 0, cfg, rng.New(seed)) },
	}
}

// TestSeedRoundTrip asserts the snapshot → seed round trip reproduces the
// estimator state a snapshot describes: at decay 1 the seeded policy's own
// snapshot carries the original pull counts and means.
func TestSeedRoundTrip(t *testing.T) {
	for _, build := range seedPolicies(t) {
		orig := build(1)
		snaps := trainPolicy(orig, rng.New(42), 400)

		seeded := build(1)
		total, err := Seed(seeded, snaps, 1)
		if err != nil {
			t.Fatalf("%s: Seed: %v", orig.Name(), err)
		}
		var wantTotal int64
		for _, s := range snaps {
			wantTotal += s.Pulls
		}
		if total != wantTotal {
			t.Fatalf("%s: seeded %d pulls, want %d", orig.Name(), total, wantTotal)
		}
		got := seeded.Snapshot()
		for i, s := range snaps {
			if got[i].Pulls != s.Pulls {
				t.Errorf("%s arm %d: seeded pulls %d, want %d", orig.Name(), i, got[i].Pulls, s.Pulls)
			}
			// Replaying Pulls copies of Mean lands a cumulative estimator
			// exactly on Mean; Thompson's Beta posterior (reported via
			// Recent) accumulates the same pseudo-counts, so its mean moves
			// to (prior + pulls·mean)/(prior·2 + pulls) — compare against
			// that when the policy overrides Recent.
			if math.Abs(got[i].Mean-s.Mean) > 1e-9 {
				t.Errorf("%s arm %d: seeded mean %v, want %v", orig.Name(), i, got[i].Mean, s.Mean)
			}
		}
	}
}

// TestSeedPure asserts decayed seeding is a pure function of
// (snapshot, decay): seeding two fresh policies produces identical
// snapshots and identical subsequent behavior, and seeding consumes no
// randomness from the policy's RNG substream.
func TestSeedPure(t *testing.T) {
	for _, build := range seedPolicies(t) {
		snaps := trainPolicy(build(1), rng.New(7), 300)
		for _, decay := range []float64{0.25, 0.5, 1} {
			a, b := build(9), build(9)
			ta, err := Seed(a, snaps, decay)
			if err != nil {
				t.Fatalf("Seed: %v", err)
			}
			tb, err := Seed(b, snaps, decay)
			if err != nil {
				t.Fatalf("Seed: %v", err)
			}
			if ta != tb {
				t.Fatalf("%s decay %v: pull totals differ: %d vs %d", a.Name(), decay, ta, tb)
			}
			if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
				t.Fatalf("%s decay %v: seeded snapshots differ", a.Name(), decay)
			}
			// Same RNG seed + same seeded state → identical selection stream.
			elig := AllEligible(a.NumArms())
			for i := 0; i < 50; i++ {
				sa, sb := a.Select(elig), b.Select(elig)
				if sa != sb {
					t.Fatalf("%s decay %v: Select diverged at step %d: %d vs %d", a.Name(), decay, i, sa, sb)
				}
				a.Update(sa, 1)
				b.Update(sb, 1)
			}
		}
	}
}

// TestSeedZeroDecayIsNoOp asserts the decay=0 identity contract at the
// policy level: a policy seeded with decay 0 is indistinguishable from a
// never-seeded one.
func TestSeedZeroDecayIsNoOp(t *testing.T) {
	for _, build := range seedPolicies(t) {
		snaps := trainPolicy(build(1), rng.New(11), 200)
		cold, seeded := build(3), build(3)
		total, err := Seed(seeded, snaps, 0)
		if err != nil {
			t.Fatalf("Seed: %v", err)
		}
		if total != 0 {
			t.Fatalf("%s: decay 0 applied %d pulls, want 0", cold.Name(), total)
		}
		if !reflect.DeepEqual(cold.Snapshot(), seeded.Snapshot()) {
			t.Fatalf("%s: decay 0 changed policy state", cold.Name())
		}
		elig := AllEligible(cold.NumArms())
		for i := 0; i < 50; i++ {
			sc, ss := cold.Select(elig), seeded.Select(elig)
			if sc != ss {
				t.Fatalf("%s: decay 0 diverged at step %d", cold.Name(), i)
			}
			cold.Update(sc, 0.5)
			seeded.Update(ss, 0.5)
		}
	}
}

// TestSeedThompsonPosterior pins the Thompson Beta posterior produced by
// seeding: alpha/beta pseudo-counts must match what a real reward stream
// with the snapshot's mean would have accumulated.
func TestSeedThompsonPosterior(t *testing.T) {
	snaps := []ArmSnapshot{
		{Arm: 0, Pulls: 10, Mean: 0.8},
		{Arm: 1, Pulls: 4, Mean: 0.25},
		{Arm: 2, Pulls: 0, Mean: 0},
	}
	p := NewThompsonBernoulli(3, DefaultStats(), rng.New(1))
	if _, err := Seed(p, snaps, 1); err != nil {
		t.Fatal(err)
	}
	got := p.Snapshot()
	// Recent reports the posterior mean alpha/(alpha+beta) with a (1,1)
	// prior: arm 0 → (1+8)/(2+10), arm 1 → (1+1)/(2+4), arm 2 untouched.
	want := []float64{9.0 / 12, 2.0 / 6, 0.5}
	for i, w := range want {
		if math.Abs(got[i].Recent-w) > 1e-9 {
			t.Errorf("arm %d posterior mean %v, want %v", i, got[i].Recent, w)
		}
	}
}

// TestSeedDecayScalesPulls pins the rounding rule and partial-decay pull
// counts.
func TestSeedDecayScalesPulls(t *testing.T) {
	cases := []struct {
		pulls int64
		decay float64
		want  int64
	}{
		{10, 1, 10}, {10, 0.5, 5}, {10, 0, 0},
		{3, 0.5, 2}, {1, 0.4, 0}, {1, 0.6, 1}, {7, 0.25, 2},
	}
	for _, c := range cases {
		if got := SeededPulls(c.pulls, c.decay); got != c.want {
			t.Errorf("SeededPulls(%d, %v) = %d, want %d", c.pulls, c.decay, got, c.want)
		}
	}
	p := NewUCB1(2, math.Sqrt2, DefaultStats(), rng.New(1))
	total, err := Seed(p, []ArmSnapshot{{Arm: 0, Pulls: 10, Mean: 1}, {Arm: 1, Pulls: 3, Mean: 0}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 {
		t.Fatalf("total seeded pulls = %d, want 7", total)
	}
	snap := p.Snapshot()
	if snap[0].Pulls != 5 || snap[1].Pulls != 2 {
		t.Fatalf("per-arm seeded pulls = %d,%d, want 5,2", snap[0].Pulls, snap[1].Pulls)
	}
}

// TestSeedValidation covers the error paths: bad decay, out-of-range arm,
// negative pulls, nil policy.
func TestSeedValidation(t *testing.T) {
	p := NewUCB1(2, math.Sqrt2, DefaultStats(), rng.New(1))
	if _, err := Seed(nil, nil, 0.5); err == nil {
		t.Error("nil policy: want error")
	}
	for _, d := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Seed(p, nil, d); err == nil {
			t.Errorf("decay %v: want error", d)
		}
	}
	if _, err := Seed(p, []ArmSnapshot{{Arm: 2, Pulls: 1}}, 1); err == nil {
		t.Error("out-of-range arm: want error")
	}
	if _, err := Seed(p, []ArmSnapshot{{Arm: 0, Pulls: -1}}, 1); err == nil {
		t.Error("negative pulls: want error")
	}
	// Errors must not leave partial state behind the caller's back for the
	// arms validated before the bad one — validation happens per snapshot,
	// so order matters; pin that the first (valid) snapshot did apply.
	snap := p.Snapshot()
	if snap[0].Pulls != 0 && snap[1].Pulls != 0 {
		// Seed applies snapshots in order; the documented contract is only
		// that an error return means the policy may be partially seeded.
		t.Log("partial seeding after error is acceptable")
	}
}
