package bandit

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"zombie/internal/rng"
)

// Spec describes a policy by name so experiment configurations and the CLI
// can construct policies from strings. Supported specs:
//
//	greedy                  ε-greedy with ε=0
//	eps-greedy:<ε>          e.g. eps-greedy:0.1
//	eps-decay:<ε>:<rate>    decaying ε-greedy
//	ucb1[:<c>]              UCB1, default c=1
//	sw-ucb[:<window>[:<c>]] sliding-window UCB, defaults 200, 1
//	d-ucb[:<gamma>[:<c>]]   discounted UCB, defaults 0.99, 1
//	thompson                Beta–Bernoulli Thompson sampling
//	thompson-gaussian[:<σ>] Gaussian Thompson, default prior σ=1
//	softmax:<temperature>
//	exp3:<γ>
//	round-robin
//	random
type Spec string

// KnownSpecs returns example specs for each supported policy family, in
// stable order, for CLI help text.
func KnownSpecs() []string {
	s := []string{
		"greedy",
		"eps-greedy:0.1",
		"eps-decay:0.5:0.01",
		"ucb1:1",
		"sw-ucb:200:1",
		"d-ucb:0.99:1",
		"thompson",
		"thompson-gaussian:1",
		"softmax:0.1",
		"exp3:0.1",
		"round-robin",
		"random",
	}
	sort.Strings(s)
	return s
}

// Build constructs the policy the spec names over n arms, using cfg for
// arm statistics and r for randomness. It returns an error for an unknown
// or malformed spec.
func (s Spec) Build(n int, cfg StatsConfig, r *rng.RNG) (Policy, error) {
	parts := strings.Split(string(s), ":")
	name := parts[0]
	argf := func(i int, def float64) (float64, error) {
		if len(parts) <= i {
			return def, nil
		}
		v, err := strconv.ParseFloat(parts[i], 64)
		if err != nil {
			return 0, fmt.Errorf("bandit: spec %q: bad argument %q: %v", s, parts[i], err)
		}
		return v, nil
	}
	switch name {
	case "greedy":
		return NewEpsilonGreedy(n, 0, 0, cfg, r), nil
	case "eps-greedy":
		eps, err := argf(1, 0.1)
		if err != nil {
			return nil, err
		}
		if eps < 0 || eps > 1 {
			return nil, fmt.Errorf("bandit: spec %q: epsilon %v out of [0,1]", s, eps)
		}
		return NewEpsilonGreedy(n, eps, 0, cfg, r), nil
	case "eps-decay":
		eps, err := argf(1, 0.5)
		if err != nil {
			return nil, err
		}
		rate, err := argf(2, 0.01)
		if err != nil {
			return nil, err
		}
		if eps < 0 || eps > 1 || rate < 0 {
			return nil, fmt.Errorf("bandit: spec %q: bad eps-decay parameters", s)
		}
		return NewEpsilonGreedy(n, eps, rate, cfg, r), nil
	case "ucb1":
		c, err := argf(1, 1)
		if err != nil {
			return nil, err
		}
		if c < 0 {
			return nil, fmt.Errorf("bandit: spec %q: c must be >= 0", s)
		}
		return NewUCB1(n, c, cfg, r), nil
	case "sw-ucb":
		win, err := argf(1, 200)
		if err != nil {
			return nil, err
		}
		c, err := argf(2, 1)
		if err != nil {
			return nil, err
		}
		if win < 1 || c < 0 {
			return nil, fmt.Errorf("bandit: spec %q: bad sw-ucb parameters", s)
		}
		return NewSWUCB(n, int(win), c, r), nil
	case "d-ucb":
		gamma, err := argf(1, 0.99)
		if err != nil {
			return nil, err
		}
		c, err := argf(2, 1)
		if err != nil {
			return nil, err
		}
		if gamma <= 0 || gamma >= 1 || c < 0 {
			return nil, fmt.Errorf("bandit: spec %q: bad d-ucb parameters", s)
		}
		return NewDUCB(n, gamma, c, r), nil
	case "thompson":
		return NewThompsonBernoulli(n, cfg, r), nil
	case "thompson-gaussian":
		sd, err := argf(1, 1)
		if err != nil {
			return nil, err
		}
		if sd <= 0 {
			return nil, fmt.Errorf("bandit: spec %q: sigma must be > 0", s)
		}
		return NewThompsonGaussian(n, sd, cfg, r), nil
	case "softmax":
		temp, err := argf(1, 0.1)
		if err != nil {
			return nil, err
		}
		if temp <= 0 {
			return nil, fmt.Errorf("bandit: spec %q: temperature must be > 0", s)
		}
		return NewSoftmax(n, temp, cfg, r), nil
	case "exp3":
		gamma, err := argf(1, 0.1)
		if err != nil {
			return nil, err
		}
		if gamma <= 0 || gamma > 1 {
			return nil, fmt.Errorf("bandit: spec %q: gamma must be in (0,1]", s)
		}
		return NewEXP3(n, gamma, cfg, r), nil
	case "round-robin":
		return NewRoundRobin(n, cfg), nil
	case "random":
		return NewUniformRandom(n, cfg, r), nil
	default:
		return nil, fmt.Errorf("bandit: unknown policy spec %q (known: %s)", s, strings.Join(KnownSpecs(), ", "))
	}
}

// MustBuild is Build for static specs in experiments; it panics on error.
func (s Spec) MustBuild(n int, cfg StatsConfig, r *rng.RNG) Policy {
	p, err := s.Build(n, cfg, r)
	if err != nil {
		panic(err)
	}
	return p
}
