package bandit

import (
	"testing"

	"zombie/internal/rng"
)

func nonstationaryPolicies(n int, r *rng.RNG) []Policy {
	return []Policy{
		NewSWUCB(n, 100, 1, r.Split("sw")),
		NewDUCB(n, 0.98, 1, r.Split("d")),
	}
}

func TestNonstationaryPoliciesBasicContract(t *testing.T) {
	r := rng.New(1)
	for _, p := range nonstationaryPolicies(5, r) {
		if p.NumArms() != 5 {
			t.Fatalf("%s: NumArms = %d", p.Name(), p.NumArms())
		}
		counts := bernoulliBandit(p, []float64{0.1, 0.2, 0.3, 0.4, 0.5}, 400, r.Split(p.Name()))
		total := int64(0)
		for _, c := range counts {
			total += c
		}
		if total != 400 {
			t.Fatalf("%s: pulls sum to %d", p.Name(), total)
		}
		for _, s := range p.Snapshot() {
			if s.Pulls < 0 || s.Mean < 0 || s.Mean > 1 {
				t.Fatalf("%s: bad snapshot %+v", p.Name(), s)
			}
		}
		p.Reset()
		for _, s := range p.Snapshot() {
			if s.Pulls != 0 || s.Mean != 0 {
				t.Fatalf("%s: reset incomplete: %+v", p.Name(), s)
			}
		}
		arm := p.Select(AllEligible(5))
		p.Update(arm, 1)
	}
}

func TestNonstationaryPoliciesFindBestArm(t *testing.T) {
	r := rng.New(2)
	for _, p := range nonstationaryPolicies(4, r) {
		counts := bernoulliBandit(p, []float64{0.1, 0.1, 0.85, 0.1}, 3000, r.Split("env-"+p.Name()))
		if counts[2] < 1200 {
			t.Fatalf("%s: best arm pulled only %d/3000 (%v)", p.Name(), counts[2], counts)
		}
	}
}

func TestNonstationaryPoliciesTrackDrift(t *testing.T) {
	// Arm 0 pays until step 1500, then arm 1 takes over. Forgetting
	// policies must shift most of their late pulls to arm 1; plain UCB1
	// is included to show the contrast.
	run := func(p Policy, r *rng.RNG) (latePullsArm1 int64) {
		eligible := AllEligible(2)
		for step := 0; step < 3000; step++ {
			arm := p.Select(eligible)
			prob := 0.1
			if (step < 1500 && arm == 0) || (step >= 1500 && arm == 1) {
				prob = 0.85
			}
			reward := 0.0
			if r.Bernoulli(prob) {
				reward = 1
			}
			p.Update(arm, reward)
			if step >= 2200 && arm == 1 {
				latePullsArm1++
			}
		}
		return latePullsArm1
	}
	r := rng.New(3)
	sw := run(NewSWUCB(2, 150, 1, r.Split("sw")), r.Split("env-sw"))
	du := run(NewDUCB(2, 0.99, 1, r.Split("d")), r.Split("env-d"))
	if sw < 600 {
		t.Fatalf("SW-UCB failed to track drift: %d/800 late pulls on new best arm", sw)
	}
	if du < 600 {
		t.Fatalf("D-UCB failed to track drift: %d/800 late pulls on new best arm", du)
	}
}

func TestNonstationaryEligibility(t *testing.T) {
	r := rng.New(4)
	for _, p := range nonstationaryPolicies(6, r) {
		mask := []bool{false, true, false, false, true, false}
		for i := 0; i < 200; i++ {
			arm := p.Select(mask)
			if !mask[arm] {
				t.Fatalf("%s: ineligible arm %d selected", p.Name(), arm)
			}
			p.Update(arm, r.Float64())
		}
	}
}

func TestNonstationaryValidation(t *testing.T) {
	r := rng.New(5)
	mustPanic(t, "sw arms", func() { NewSWUCB(0, 10, 1, r) })
	mustPanic(t, "sw window", func() { NewSWUCB(2, 0, 1, r) })
	mustPanic(t, "sw c", func() { NewSWUCB(2, 10, -1, r) })
	mustPanic(t, "d arms", func() { NewDUCB(0, 0.9, 1, r) })
	mustPanic(t, "d gamma lo", func() { NewDUCB(2, 0, 1, r) })
	mustPanic(t, "d gamma hi", func() { NewDUCB(2, 1, 1, r) })
	mustPanic(t, "d c", func() { NewDUCB(2, 0.9, -1, r) })
	sw := NewSWUCB(2, 10, 1, r)
	mustPanic(t, "sw update range", func() { sw.Update(5, 1) })
	du := NewDUCB(2, 0.9, 1, r)
	mustPanic(t, "d update range", func() { du.Update(-1, 1) })
}

func TestNonstationarySpecs(t *testing.T) {
	r := rng.New(6)
	for _, tc := range []struct {
		spec Spec
		name string
	}{
		{"sw-ucb", "sw-ucb(200,1.00)"},
		{"sw-ucb:50:2", "sw-ucb(50,2.00)"},
		{"d-ucb", "d-ucb(0.990,1.00)"},
		{"d-ucb:0.9:0.5", "d-ucb(0.900,0.50)"},
	} {
		p, err := tc.spec.Build(3, DefaultStats(), r.Split(string(tc.spec)))
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if p.Name() != tc.name {
			t.Fatalf("%s built %q, want %q", tc.spec, p.Name(), tc.name)
		}
	}
	for _, bad := range []Spec{"sw-ucb:0", "sw-ucb:10:-1", "d-ucb:1.5", "d-ucb:0.9:-1"} {
		if _, err := bad.Build(3, DefaultStats(), r); err == nil {
			t.Fatalf("%s: expected error", bad)
		}
	}
}
