package bandit

import (
	"fmt"
	"math"

	"zombie/internal/rng"
)

// UCB1 implements the classic upper-confidence-bound policy of Auer,
// Cesa-Bianchi and Fischer: each arm scores estimate + C·sqrt(2·ln t / n_i)
// and the highest score wins. Unpulled eligible arms are played first.
// C scales the exploration bonus; C=1 is the textbook setting.
type UCB1 struct {
	*arms
	C float64
	r *rng.RNG
}

// NewUCB1 returns a UCB1 policy over n arms. It panics if c < 0.
func NewUCB1(n int, c float64, cfg StatsConfig, r *rng.RNG) *UCB1 {
	if c < 0 {
		panic("bandit: UCB1 exploration constant must be >= 0")
	}
	return &UCB1{arms: newArms(n, cfg), C: c, r: r}
}

// Name implements Policy.
func (p *UCB1) Name() string { return fmt.Sprintf("ucb1(%.2f)", p.C) }

// NumArms implements Policy.
func (p *UCB1) NumArms() int { return p.n() }

// Select implements Policy.
func (p *UCB1) Select(eligible []bool) int {
	idx := checkEligible(p.n(), eligible)
	// Play each eligible unpulled arm once before scoring.
	var unpulled []int
	for _, i := range idx {
		if p.pulls[i] == 0 {
			unpulled = append(unpulled, i)
		}
	}
	if len(unpulled) > 0 {
		return unpulled[p.r.Choice(len(unpulled))]
	}
	t := float64(p.total)
	if t < 1 {
		t = 1
	}
	best := math.Inf(-1)
	var ties []int
	for _, i := range idx {
		score := p.est[i].Value() + p.C*math.Sqrt(2*math.Log(t)/float64(p.pulls[i]))
		switch {
		case score > best:
			best = score
			ties = ties[:0]
			ties = append(ties, i)
		case score == best:
			ties = append(ties, i)
		}
	}
	if len(ties) == 1 {
		return ties[0]
	}
	return ties[p.r.Choice(len(ties))]
}

// Update implements Policy.
func (p *UCB1) Update(arm int, reward float64) { p.update(arm, reward) }

// Snapshot implements Policy.
func (p *UCB1) Snapshot() []ArmSnapshot { return p.snapshot() }

// Reset implements Policy.
func (p *UCB1) Reset() { p.reset() }
