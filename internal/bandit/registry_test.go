package bandit

import (
	"strings"
	"testing"

	"zombie/internal/rng"
)

func TestSpecBuildKnown(t *testing.T) {
	r := rng.New(1)
	for _, tc := range []struct {
		spec Spec
		name string
	}{
		{"greedy", "eps-greedy(0.00)"},
		{"eps-greedy:0.25", "eps-greedy(0.25)"},
		{"eps-greedy", "eps-greedy(0.10)"},
		{"eps-decay:0.5:0.01", "eps-greedy(0.50,decay=0.010)"},
		{"ucb1", "ucb1(1.00)"},
		{"ucb1:2.5", "ucb1(2.50)"},
		{"thompson", "thompson"},
		{"thompson-gaussian:0.5", "thompson-gaussian"},
		{"softmax:0.2", "softmax(0.20)"},
		{"exp3:0.3", "exp3(0.30)"},
		{"round-robin", "round-robin"},
		{"random", "uniform-random"},
	} {
		p, err := tc.spec.Build(4, DefaultStats(), r.Split(string(tc.spec)))
		if err != nil {
			t.Fatalf("spec %q: %v", tc.spec, err)
		}
		if p.Name() != tc.name {
			t.Errorf("spec %q built %q, want %q", tc.spec, p.Name(), tc.name)
		}
		if p.NumArms() != 4 {
			t.Errorf("spec %q: NumArms = %d", tc.spec, p.NumArms())
		}
	}
}

func TestSpecBuildErrors(t *testing.T) {
	r := rng.New(2)
	for _, spec := range []Spec{
		"nope",
		"eps-greedy:abc",
		"eps-greedy:1.5",
		"eps-decay:0.5:-1",
		"ucb1:-2",
		"softmax:0",
		"exp3:0",
		"exp3:2",
		"thompson-gaussian:0",
	} {
		if _, err := spec.Build(3, DefaultStats(), r); err == nil {
			t.Errorf("spec %q: expected error", spec)
		}
	}
}

func TestUnknownSpecErrorListsKnown(t *testing.T) {
	_, err := Spec("bogus").Build(2, DefaultStats(), rng.New(3))
	if err == nil || !strings.Contains(err.Error(), "ucb1") {
		t.Fatalf("error should list known specs, got: %v", err)
	}
}

func TestMustBuildPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on bad spec")
		}
	}()
	Spec("bogus").MustBuild(2, DefaultStats(), rng.New(4))
}

func TestKnownSpecsAllBuild(t *testing.T) {
	r := rng.New(5)
	for _, s := range KnownSpecs() {
		if _, err := Spec(s).Build(3, DefaultStats(), r.Split(s)); err != nil {
			t.Errorf("known spec %q failed to build: %v", s, err)
		}
	}
}
