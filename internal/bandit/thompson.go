package bandit

import (
	"math"

	"zombie/internal/rng"
)

// ThompsonBernoulli implements Thompson sampling with a Beta–Bernoulli
// posterior per arm. Rewards are clamped into [0,1] and applied as
// fractional pseudo-counts (alpha += r, beta += 1-r), which reduces to the
// textbook update for binary usefulness rewards — Zombie's default reward —
// while still accepting graded quality-delta rewards.
type ThompsonBernoulli struct {
	*arms
	alpha []float64
	beta  []float64
	r     *rng.RNG
	// PriorAlpha and PriorBeta set the Beta prior; (1,1) is uniform.
	PriorAlpha, PriorBeta float64
}

// NewThompsonBernoulli returns a Thompson-sampling policy over n arms with
// a uniform Beta(1,1) prior.
func NewThompsonBernoulli(n int, cfg StatsConfig, r *rng.RNG) *ThompsonBernoulli {
	p := &ThompsonBernoulli{
		arms:       newArms(n, cfg),
		alpha:      make([]float64, n),
		beta:       make([]float64, n),
		r:          r,
		PriorAlpha: 1,
		PriorBeta:  1,
	}
	for i := 0; i < n; i++ {
		p.alpha[i] = p.PriorAlpha
		p.beta[i] = p.PriorBeta
	}
	return p
}

// Name implements Policy.
func (p *ThompsonBernoulli) Name() string { return "thompson" }

// NumArms implements Policy.
func (p *ThompsonBernoulli) NumArms() int { return p.n() }

// Select implements Policy.
func (p *ThompsonBernoulli) Select(eligible []bool) int {
	idx := checkEligible(p.n(), eligible)
	best := math.Inf(-1)
	bestArm := idx[0]
	for _, i := range idx {
		draw := p.r.Beta(p.alpha[i], p.beta[i])
		if draw > best {
			best = draw
			bestArm = i
		}
	}
	return bestArm
}

// Update implements Policy.
func (p *ThompsonBernoulli) Update(arm int, reward float64) {
	p.update(arm, reward)
	r := reward
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	p.alpha[arm] += r
	p.beta[arm] += 1 - r
}

// Snapshot implements Policy.
func (p *ThompsonBernoulli) Snapshot() []ArmSnapshot {
	out := p.snapshot()
	for i := range out {
		out[i].Recent = p.alpha[i] / (p.alpha[i] + p.beta[i])
	}
	return out
}

// Reset implements Policy.
func (p *ThompsonBernoulli) Reset() {
	p.reset()
	for i := range p.alpha {
		p.alpha[i] = p.PriorAlpha
		p.beta[i] = p.PriorBeta
	}
}

// ThompsonGaussian implements Thompson sampling with a Gaussian posterior
// over each arm's mean reward (known-variance approximation). It handles
// rewards of any scale, which matters for the quality-delta reward whose
// magnitude shrinks as the learning curve flattens.
type ThompsonGaussian struct {
	*arms
	sum  []float64
	sum2 []float64
	r    *rng.RNG
	// PriorStd is the standard deviation assumed before any observation.
	PriorStd float64
}

// NewThompsonGaussian returns a Gaussian Thompson-sampling policy. It
// panics if priorStd <= 0.
func NewThompsonGaussian(n int, priorStd float64, cfg StatsConfig, r *rng.RNG) *ThompsonGaussian {
	if priorStd <= 0 {
		panic("bandit: ThompsonGaussian priorStd must be > 0")
	}
	return &ThompsonGaussian{
		arms:     newArms(n, cfg),
		sum:      make([]float64, n),
		sum2:     make([]float64, n),
		r:        r,
		PriorStd: priorStd,
	}
}

// Name implements Policy.
func (p *ThompsonGaussian) Name() string { return "thompson-gaussian" }

// NumArms implements Policy.
func (p *ThompsonGaussian) NumArms() int { return p.n() }

// Select implements Policy.
func (p *ThompsonGaussian) Select(eligible []bool) int {
	idx := checkEligible(p.n(), eligible)
	best := math.Inf(-1)
	bestArm := idx[0]
	for _, i := range idx {
		n := float64(p.pulls[i])
		var mean, std float64
		if n == 0 {
			mean, std = 0, p.PriorStd
		} else {
			mean = p.sum[i] / n
			// Posterior std of the mean shrinks as 1/sqrt(n).
			std = p.PriorStd / math.Sqrt(n)
		}
		draw := p.r.Gaussian(mean, std)
		if draw > best {
			best = draw
			bestArm = i
		}
	}
	return bestArm
}

// Update implements Policy.
func (p *ThompsonGaussian) Update(arm int, reward float64) {
	p.update(arm, reward)
	p.sum[arm] += reward
	p.sum2[arm] += reward * reward
}

// Snapshot implements Policy.
func (p *ThompsonGaussian) Snapshot() []ArmSnapshot { return p.snapshot() }

// Reset implements Policy.
func (p *ThompsonGaussian) Reset() {
	p.reset()
	for i := range p.sum {
		p.sum[i], p.sum2[i] = 0, 0
	}
}
