package recipe

import (
	"reflect"
	"strings"
	"testing"
)

func wikiParts() []Part {
	return []Part{
		{Name: "base", Kind: "wiki", Version: 2},
		{Name: "mid", Kind: "wiki", Version: 4, Deps: []string{"base"}},
		{Name: "top", Kind: "wiki", Version: 5, Deps: []string{"mid"}},
	}
}

func TestRecipeCompile(t *testing.T) {
	r, err := New("rec", wikiParts())
	if err != nil {
		t.Fatal(err)
	}
	f := r.Feature()
	if f.Name() != "rec" {
		t.Errorf("compiled name %q, want rec", f.Name())
	}
	// wiki-v2 (512) + wiki-v4 (4096) + wiki-v5 (4096)
	if f.Dim() <= 0 || f.NumClasses() != 2 {
		t.Errorf("compiled dim %d classes %d", f.Dim(), f.NumClasses())
	}
	fps := r.PartFingerprints()
	if len(fps) != 3 {
		t.Fatalf("PartFingerprints has %d entries, want 3", len(fps))
	}
	for name, fp := range fps {
		if fp == "" {
			t.Errorf("part %s has empty fingerprint", name)
		}
	}
}

func TestRecipeSinglePart(t *testing.T) {
	r, err := New("solo", []Part{{Name: "only", Kind: "wiki", Version: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feature().Name() != "wiki-v3" {
		t.Errorf("single-part recipe compiled to %q, want the part itself", r.Feature().Name())
	}
}

// TestRecipeDeterministicOrder asserts declaration order does not matter:
// the same part set compiles to the same composite.
func TestRecipeDeterministicOrder(t *testing.T) {
	a, err := New("rec", wikiParts())
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []Part{wikiParts()[2], wikiParts()[0], wikiParts()[1]}
	b, err := New("rec", shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same parts, different declaration order → different fingerprint")
	}
	if !reflect.DeepEqual(a.Parts(), b.Parts()) {
		t.Fatal("same parts, different declaration order → different compiled order")
	}
}

func TestRecipeValidation(t *testing.T) {
	cases := []struct {
		name  string
		parts []Part
		want  string
	}{
		{"empty", nil, "no parts"},
		{"unnamed", []Part{{Kind: "wiki"}}, "no name"},
		{"dup", []Part{{Name: "a", Kind: "wiki"}, {Name: "a", Kind: "wiki", Version: 2}}, "duplicate"},
		{"dangling", []Part{{Name: "a", Kind: "wiki", Deps: []string{"ghost"}}}, "unknown part"},
		{"self", []Part{{Name: "a", Kind: "wiki", Deps: []string{"a"}}}, "depends on itself"},
		{"cycle", []Part{
			{Name: "a", Kind: "wiki", Deps: []string{"b"}},
			{Name: "b", Kind: "wiki", Version: 2, Deps: []string{"a"}},
		}, "cycle"},
		{"kind", []Part{{Name: "a", Kind: "video"}}, "unknown kind"},
		{"version", []Part{{Name: "a", Kind: "wiki", Version: 9}}, "out of range"},
		{"classes", []Part{
			{Name: "a", Kind: "wiki"},
			{Name: "b", Kind: "song"},
		}, "classes"},
	}
	for _, c := range cases {
		_, err := New("rec", c.parts)
		if err == nil {
			t.Errorf("%s: want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestRecipeDiff(t *testing.T) {
	v1, err := New("rec", wikiParts())
	if err != nil {
		t.Fatal(err)
	}
	edited := wikiParts()
	edited[2].Version = 6 // edit one part
	edited = append(edited, Part{Name: "extra", Kind: "wiki", Version: 7})
	v2, err := New("rec", edited)
	if err != nil {
		t.Fatal(err)
	}
	d := v2.DiffFrom(v1)
	if !reflect.DeepEqual(d.Changed, []string{"top"}) {
		t.Errorf("Changed = %v, want [top]", d.Changed)
	}
	if !reflect.DeepEqual(d.Unchanged, []string{"base", "mid"}) {
		t.Errorf("Unchanged = %v, want [base mid]", d.Unchanged)
	}
	if !reflect.DeepEqual(d.Added, []string{"extra"}) {
		t.Errorf("Added = %v, want [extra]", d.Added)
	}
	if len(d.Removed) != 0 {
		t.Errorf("Removed = %v, want none", d.Removed)
	}
	if d.SharedParts != 2 || d.TotalParts != 4 {
		t.Errorf("SharedParts/TotalParts = %d/%d, want 2/4", d.SharedParts, d.TotalParts)
	}
	// v1 against nothing: everything added.
	d0 := v1.DiffFrom(nil)
	if len(d0.Added) != 3 || d0.SharedParts != 0 {
		t.Errorf("DiffFrom(nil) = %+v", d0)
	}
	// A renamed but byte-identical part still counts as shared.
	renamed := wikiParts()
	renamed[0].Name = "renamed-base"
	renamed[1].Deps = []string{"renamed-base"}
	v3, err := New("rec", renamed)
	if err != nil {
		t.Fatal(err)
	}
	dr := v3.DiffFrom(v1)
	if dr.SharedParts != 3 {
		t.Errorf("renamed part: SharedParts = %d, want 3", dr.SharedParts)
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpecBytes([]byte(`{
		"name": "rec",
		"parts": [
			{"name": "base", "kind": "wiki", "version": 2},
			{"name": "top", "kind": "wiki", "version": 5, "deps": ["base"]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Recipe()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Parts()) != 2 {
		t.Fatalf("parsed %d parts, want 2", len(r.Parts()))
	}
	// Unknown fields must be rejected, at both levels.
	if _, err := ParseSpecBytes([]byte(`{"name": "rec", "parst": []}`)); err == nil {
		t.Error("typoed top-level field: want error")
	}
	if _, err := ParseSpecBytes([]byte(`{"name": "rec", "parts": [{"name":"a","kind":"wiki","verison":2}]}`)); err == nil {
		t.Error("typoed part field: want error")
	}
	if _, err := ParseSpecBytes([]byte(`{"name":"rec","parts":[]} {"trailing":true}`)); err == nil {
		t.Error("trailing document: want error")
	}
}
