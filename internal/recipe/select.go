package recipe

import (
	"context"
	"fmt"
	"sort"

	"zombie/internal/core"
)

// SelectConfig tunes the forward stepwise part-selection loop.
type SelectConfig struct {
	// MinGain is the minimum holdout-quality improvement a round must
	// deliver to keep growing the recipe (default 0.002, the engine's
	// plateau slope threshold). The first part is always kept.
	MinGain float64
	// MaxParts caps the selected part count; 0 means no cap.
	MaxParts int
}

// Candidate is one evaluated extension in a selection round.
type Candidate struct {
	// Part is the part name the round tried adding.
	Part string `json:"part"`
	// Quality is the run's final holdout quality with the part added.
	Quality float64 `json:"quality"`
	// Inputs is how many inputs the evaluation run processed.
	Inputs int `json:"inputs"`
}

// SelectRound records one round of forward selection.
type SelectRound struct {
	// Added is the part the round kept ("" when the round only measured
	// and stopped).
	Added string `json:"added"`
	// Quality is the best quality measured this round.
	Quality float64 `json:"quality"`
	// Candidates lists every extension evaluated, in name order.
	Candidates []Candidate `json:"candidates"`
}

// SelectResult is the outcome of SelectParts.
type SelectResult struct {
	// Selected lists the kept parts in the order they were added.
	Selected []string `json:"selected"`
	// Rounds records each selection round.
	Rounds []SelectRound `json:"rounds"`
	// Recipe is the final selected recipe.
	Recipe *Recipe `json:"-"`
	// Quality is the final recipe's measured holdout quality.
	Quality float64 `json:"quality"`
}

// SelectParts runs forward stepwise part selection — the first built-in
// multi-run scenario over the inner bandit loop. Starting from nothing,
// each round evaluates every not-yet-selected part whose dependencies are
// already selected (one full bandit run per candidate, sharing the
// session's extraction cache, so re-evaluating a part is nearly free
// after its first appearance) and keeps the part with the best final
// holdout quality. Selection stops when no eligible part remains, the
// best candidate improves quality by less than MinGain, or MaxParts is
// reached. Evaluation runs are cold (no warm-start): candidate sets
// differ structurally, and cross-candidate seeding would bias the
// comparison. The loop is deterministic: candidates evaluate in name
// order and ties keep the lexicographically first part.
func (s *Session) SelectParts(ctx context.Context, candidate *Recipe, cfg SelectConfig) (*SelectResult, error) {
	if candidate == nil {
		return nil, fmt.Errorf("recipe: SelectParts requires a candidate recipe")
	}
	if cfg.MinGain <= 0 {
		cfg.MinGain = 0.002
	}
	engCfg := s.cfg.Engine
	engCfg.WarmStart, engCfg.WarmStartDecay = nil, 0
	eng, err := core.New(engCfg)
	if err != nil {
		return nil, err
	}
	parts := candidate.Parts()
	byName := make(map[string]Part, len(parts))
	for _, p := range parts {
		byName[p.Name] = p
	}
	selected := make(map[string]bool, len(parts))
	res := &SelectResult{}
	bestQuality := 0.0
	for {
		if cfg.MaxParts > 0 && len(res.Selected) >= cfg.MaxParts {
			break
		}
		var eligible []string
		for _, p := range parts {
			if selected[p.Name] {
				continue
			}
			ready := true
			for _, d := range p.Deps {
				if !selected[d] {
					ready = false
					break
				}
			}
			if ready {
				eligible = append(eligible, p.Name)
			}
		}
		if len(eligible) == 0 {
			break
		}
		sort.Strings(eligible)
		round := SelectRound{}
		bestPart, bestQ := "", -1.0
		for _, name := range eligible {
			sub, err := subRecipe(candidate.Name(), byName, res.Selected, name)
			if err != nil {
				return nil, err
			}
			run, err := eng.RunContext(ctx, s.task.WithFeature(sub.Feature()), s.groups)
			if err != nil {
				return nil, fmt.Errorf("recipe: SelectParts: evaluate %s: %w", name, err)
			}
			round.Candidates = append(round.Candidates, Candidate{
				Part: name, Quality: run.FinalQuality, Inputs: run.InputsProcessed,
			})
			if run.FinalQuality > bestQ {
				bestPart, bestQ = name, run.FinalQuality
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		round.Quality = bestQ
		if len(res.Selected) > 0 && bestQ < bestQuality+cfg.MinGain {
			res.Rounds = append(res.Rounds, round)
			break
		}
		round.Added = bestPart
		res.Rounds = append(res.Rounds, round)
		res.Selected = append(res.Selected, bestPart)
		selected[bestPart] = true
		bestQuality = bestQ
	}
	if len(res.Selected) == 0 {
		return nil, fmt.Errorf("recipe: SelectParts selected no parts from %s", candidate.Name())
	}
	final, err := subRecipe(candidate.Name(), byName, res.Selected, "")
	if err != nil {
		return nil, err
	}
	res.Recipe = final
	res.Quality = bestQuality
	return res, nil
}

// subRecipe builds the recipe restricted to selected (+extra when
// non-empty), preserving each part's declared dependencies — all of which
// are inside the subset by construction of the eligibility rule.
func subRecipe(name string, byName map[string]Part, selected []string, extra string) (*Recipe, error) {
	names := append([]string(nil), selected...)
	if extra != "" {
		names = append(names, extra)
	}
	sub := make([]Part, 0, len(names))
	for _, n := range names {
		sub = append(sub, byName[n])
	}
	return New(fmt.Sprintf("%s[%d]", name, len(sub)), sub)
}
