// Package recipe models feature code the way an engineering session
// actually produces it: as a named DAG of parts, each part one
// fingerprinted featurepipe.FeatureFunc, compiled into a single
// CompositeFeature the engine can run. A Recipe is validated at
// registration — duplicate names, dangling dependencies, cycles and
// class-count mismatches fail before anything executes — and exposes
// per-part fingerprints so a session can diff two versions and know
// exactly which extractions the part-level cache will reuse.
//
// On top of recipes, Session (session.go) is the iterative workspace the
// paper's end-to-end numbers are about: submit v1, edit one part, submit
// v2 — unchanged parts hit the extraction cache and the new bandit run
// warm-starts from the previous version's arm statistics.
package recipe

import (
	"fmt"
	"sort"

	"zombie/internal/corpus"
	"zombie/internal/featurepipe"
)

// Part declares one node of a recipe DAG: a named instance of a built-in
// feature kind, plus the parts it depends on. Dependencies order the
// compiled composite (a part's vector block always comes after its
// dependencies') and let SelectParts respect prerequisite structure; they
// do not change what a part extracts.
type Part struct {
	// Name identifies the part inside the recipe; unique, non-empty.
	Name string `json:"name"`
	// Kind names the built-in feature family: "wiki", "song" or "image".
	Kind string `json:"kind"`
	// Version selects the feature-code version within the kind (wiki 1-8,
	// song 1-2, image 1-3). 0 means version 1.
	Version int `json:"version,omitempty"`
	// Deps lists part names that must precede this part.
	Deps []string `json:"deps,omitempty"`
}

// buildPart instantiates the feature function a part declares. Song and
// image parts are built against the default synthetic-corpus shapes, the
// same ones the workload layer uses.
func buildPart(p Part) (featurepipe.FeatureFunc, error) {
	v := p.Version
	if v == 0 {
		v = 1
	}
	switch p.Kind {
	case "wiki":
		if v < 1 || v > 8 {
			return nil, fmt.Errorf("recipe: part %s: wiki version %d out of range [1,8]", p.Name, v)
		}
		return featurepipe.NewWikiFeature(v), nil
	case "song":
		if v < 1 || v > 2 {
			return nil, fmt.Errorf("recipe: part %s: song version %d out of range [1,2]", p.Name, v)
		}
		return featurepipe.NewSongFeature(v, corpus.DefaultSongConfig()), nil
	case "image":
		if v < 1 || v > 3 {
			return nil, fmt.Errorf("recipe: part %s: image version %d out of range [1,3]", p.Name, v)
		}
		return featurepipe.NewImageFeature(v, corpus.DefaultImageConfig()), nil
	default:
		return nil, fmt.Errorf("recipe: part %s: unknown kind %q (known: wiki, song, image)", p.Name, p.Kind)
	}
}

// Recipe is a validated, compiled feature-recipe DAG. Parts are stored in
// deterministic topological order (dependencies first, ties broken by
// name), so two recipes declaring the same parts in any order compile to
// the same composite, fingerprint and all.
type Recipe struct {
	name    string
	parts   []Part
	funcs   []featurepipe.FeatureFunc
	feature featurepipe.FeatureFunc
}

// New validates the parts as a DAG and compiles the recipe. Registration
// fails on an empty or duplicate part name, a dependency on a part that
// does not exist (dangling), a dependency cycle, an unknown kind/version,
// or parts that disagree on class count (a composite cannot mix label
// spaces).
func New(name string, parts []Part) (*Recipe, error) {
	if name == "" {
		return nil, fmt.Errorf("recipe: recipe needs a name")
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("recipe: recipe %s has no parts", name)
	}
	byName := make(map[string]Part, len(parts))
	for _, p := range parts {
		if p.Name == "" {
			return nil, fmt.Errorf("recipe: recipe %s has a part with no name", name)
		}
		if _, dup := byName[p.Name]; dup {
			return nil, fmt.Errorf("recipe: recipe %s: duplicate part %q", name, p.Name)
		}
		byName[p.Name] = p
	}
	for _, p := range parts {
		for _, d := range p.Deps {
			if d == p.Name {
				return nil, fmt.Errorf("recipe: part %q depends on itself", p.Name)
			}
			if _, ok := byName[d]; !ok {
				return nil, fmt.Errorf("recipe: part %q depends on unknown part %q", p.Name, d)
			}
		}
	}
	ordered, err := topoSort(name, parts)
	if err != nil {
		return nil, err
	}
	r := &Recipe{name: name, parts: ordered}
	classes := 0
	for _, p := range ordered {
		f, err := buildPart(p)
		if err != nil {
			return nil, err
		}
		if f.Dim() <= 0 {
			return nil, fmt.Errorf("recipe: part %q declares dim %d", p.Name, f.Dim())
		}
		if classes == 0 {
			classes = f.NumClasses()
		} else if f.NumClasses() != classes {
			return nil, fmt.Errorf("recipe: part %q has %d classes, other parts have %d — a recipe cannot mix label spaces",
				p.Name, f.NumClasses(), classes)
		}
		r.funcs = append(r.funcs, f)
	}
	if len(r.funcs) == 1 {
		// A single-part recipe is just that part; CompositeFeature requires
		// two or more.
		r.feature = r.funcs[0]
	} else {
		comp, err := featurepipe.NewCompositeFeature(name, r.funcs...)
		if err != nil {
			return nil, fmt.Errorf("recipe: compile %s: %w", name, err)
		}
		r.feature = comp
	}
	return r, nil
}

// topoSort orders parts dependencies-first with deterministic name-order
// tie-breaking (Kahn's algorithm over a ready min-heap, here a sorted
// scan — recipes hold a handful of parts). A cycle reports the parts left
// unordered.
func topoSort(recipeName string, parts []Part) ([]Part, error) {
	byName := make(map[string]Part, len(parts))
	indeg := make(map[string]int, len(parts))
	dependents := make(map[string][]string, len(parts))
	for _, p := range parts {
		byName[p.Name] = p
		indeg[p.Name] += 0
	}
	for _, p := range parts {
		for _, d := range p.Deps {
			indeg[p.Name]++
			dependents[d] = append(dependents[d], p.Name)
		}
	}
	var ready []string
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	out := make([]Part, 0, len(parts))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, byName[n])
		changed := false
		for _, dep := range dependents[n] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
				changed = true
			}
		}
		if changed {
			sort.Strings(ready)
		}
	}
	if len(out) != len(parts) {
		var stuck []string
		for n, d := range indeg {
			if d > 0 {
				stuck = append(stuck, n)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("recipe: recipe %s has a dependency cycle involving %v", recipeName, stuck)
	}
	return out, nil
}

// Name returns the recipe's name.
func (r *Recipe) Name() string { return r.name }

// Parts returns the parts in compiled (topological) order.
func (r *Recipe) Parts() []Part { return append([]Part(nil), r.parts...) }

// Feature returns the compiled feature function: the lone part for a
// single-part recipe, a CompositeFeature otherwise. Every part flows
// through the part-level extraction cache when the engine runs it cached.
func (r *Recipe) Feature() featurepipe.FeatureFunc { return r.feature }

// Fingerprint returns the compiled feature's content fingerprint.
func (r *Recipe) Fingerprint() string { return featurepipe.FingerprintOf(r.feature) }

// PartFingerprints maps part name → the part's extraction fingerprint —
// the unit of cache reuse and the thing Diff compares across versions.
func (r *Recipe) PartFingerprints() map[string]string {
	out := make(map[string]string, len(r.parts))
	for i, p := range r.parts {
		out[p.Name] = featurepipe.FingerprintOf(r.funcs[i])
	}
	return out
}

// Diff summarizes how this recipe differs from a previous version. Part
// names are matched first; a name present in both with a different
// fingerprint is Changed (the edited part), same fingerprint Unchanged.
// SharedParts counts this recipe's parts whose fingerprint appeared
// anywhere in prev — the parts whose extractions the part-level cache
// serves for free even if the part was renamed.
type Diff struct {
	Added     []string `json:"added,omitempty"`
	Removed   []string `json:"removed,omitempty"`
	Changed   []string `json:"changed,omitempty"`
	Unchanged []string `json:"unchanged,omitempty"`
	// SharedParts / TotalParts are the cache-reuse prediction: how many of
	// the recipe's parts were already extracted under a previous version.
	SharedParts int `json:"shared_parts"`
	TotalParts  int `json:"total_parts"`
}

// DiffFrom computes the Diff of r against prev. A nil prev means
// everything is new.
func (r *Recipe) DiffFrom(prev *Recipe) Diff {
	d := Diff{TotalParts: len(r.parts)}
	if prev == nil {
		for _, p := range r.parts {
			d.Added = append(d.Added, p.Name)
		}
		sort.Strings(d.Added)
		return d
	}
	cur, old := r.PartFingerprints(), prev.PartFingerprints()
	oldFPs := make(map[string]int, len(old))
	for _, fp := range old {
		oldFPs[fp]++
	}
	for name, fp := range cur {
		prevFP, existed := old[name]
		switch {
		case !existed:
			d.Added = append(d.Added, name)
		case prevFP == fp:
			d.Unchanged = append(d.Unchanged, name)
		default:
			d.Changed = append(d.Changed, name)
		}
		if oldFPs[fp] > 0 {
			oldFPs[fp]--
			d.SharedParts++
		}
	}
	for name := range old {
		if _, still := cur[name]; !still {
			d.Removed = append(d.Removed, name)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Changed)
	sort.Strings(d.Unchanged)
	return d
}
