package recipe

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Spec is the JSON wire form of a recipe — what POST /sessions/{id}/runs
// accepts and what `zombie -recipe file.json` reads:
//
//	{
//	  "name": "wiki-rich",
//	  "parts": [
//	    {"name": "base", "kind": "wiki", "version": 2},
//	    {"name": "wide", "kind": "wiki", "version": 4, "deps": ["base"]}
//	  ]
//	}
type Spec struct {
	Name  string `json:"name"`
	Parts []Part `json:"parts"`
}

// ParseSpec decodes a recipe spec strictly: unknown JSON fields are
// rejected, so a typoed knob fails loudly instead of silently changing
// nothing.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("recipe: bad spec: %w", err)
	}
	// A trailing second document is as much a mistake as an unknown field.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("recipe: bad spec: trailing data after recipe object")
	}
	return &s, nil
}

// ParseSpecBytes is ParseSpec over a byte slice.
func ParseSpecBytes(b []byte) (*Spec, error) { return ParseSpec(bytes.NewReader(b)) }

// ParseSpecFile reads and decodes a recipe spec from disk.
func ParseSpecFile(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("recipe: read spec: %w", err)
	}
	return ParseSpecBytes(b)
}

// Recipe validates and compiles the spec.
func (s *Spec) Recipe() (*Recipe, error) { return New(s.Name, s.Parts) }
