package recipe

import (
	"context"
	"reflect"
	"testing"

	"zombie/internal/core"
	"zombie/internal/corpus"
	"zombie/internal/featcache"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
	"zombie/internal/rng"
	"zombie/internal/workload"
)

func wikiFixture(t testing.TB, n int, seed int64) (*featurepipe.Task, *index.Groups) {
	t.Helper()
	cfg := corpus.DefaultWikiConfig()
	cfg.N = n
	ins, err := corpus.GenerateWiki(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	store := corpus.NewMemStore(ins)
	task, grouper, err := workload.Build("wiki", store, 0, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	groups, err := grouper.Group(store, 8, rng.New(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	return task, groups
}

func testEngineConfig(cache *featcache.Cache) core.Config {
	return core.Config{
		Policy:    "eps-greedy:0.1",
		Seed:      5,
		MaxInputs: 120,
		EvalEvery: 25,
		Cache:     cache,
	}
}

func TestSessionEditOnePart(t *testing.T) {
	task, groups := wikiFixture(t, 400, 31)
	cache, err := featcache.Open(featcache.Config{}, featurepipe.ResultCodec{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession("edit", task, groups, Config{Engine: testEngineConfig(cache), Decay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	v1r, err := New("rec", wikiParts())
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.Submit(context.Background(), v1r)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Index != 1 || v1.WarmStart.Applied {
		t.Fatalf("v1 = index %d applied %v, want 1/false", v1.Index, v1.WarmStart.Applied)
	}
	edited := wikiParts()
	edited[2].Version = 6
	v2r, err := New("rec", edited)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Submit(context.Background(), v2r)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.WarmStart.Applied || v2.WarmStart.SeededPulls == 0 {
		t.Fatalf("v2 warm start = %+v, want applied with pulls", v2.WarmStart)
	}
	if v2.Run.WarmStartPulls != v2.WarmStart.SeededPulls {
		t.Fatal("session warm-start stats disagree with the run result")
	}
	if got := v2.Diff.Changed; !reflect.DeepEqual(got, []string{"top"}) {
		t.Fatalf("v2 diff changed = %v, want [top]", got)
	}
	if v2.Diff.SharedParts != 2 {
		t.Fatalf("v2 shared parts = %d, want 2", v2.Diff.SharedParts)
	}
	// The two unchanged parts were extracted under v1, so v2's run must
	// hit the part-level cache.
	if v2.Run.CacheHits == 0 {
		t.Fatal("v2 run saw no cache hits despite two unchanged parts")
	}
}

// TestSessionUnchangedRecipeFullReuse pins the acceptance contract: an
// unchanged recipe version gets every part extraction from the cache —
// zero misses.
func TestSessionUnchangedRecipeFullReuse(t *testing.T) {
	task, groups := wikiFixture(t, 400, 31)
	cache, err := featcache.Open(featcache.Config{}, featurepipe.ResultCodec{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession("same", task, groups, Config{Engine: testEngineConfig(cache), Decay: 0})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := New("rec", wikiParts())
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.Submit(context.Background(), rec)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Run.CacheMisses == 0 {
		t.Fatal("cold v1 should miss the cache")
	}
	v2, err := s.Submit(context.Background(), rec)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Run.CacheMisses != 0 {
		t.Fatalf("unchanged recipe re-run missed the cache %d times, want 0", v2.Run.CacheMisses)
	}
	if v2.Run.CacheHits == 0 {
		t.Fatal("unchanged recipe re-run recorded no cache hits")
	}
	if v2.Diff.SharedParts != v2.Diff.TotalParts {
		t.Fatalf("unchanged recipe shared %d/%d parts", v2.Diff.SharedParts, v2.Diff.TotalParts)
	}
}

// TestSessionZeroDecayIdentity pins the session-level identity contract:
// with decay 0 a later version's run is byte-identical to running the
// same recipe cold, snapshots or not.
func TestSessionZeroDecayIdentity(t *testing.T) {
	task, groups := wikiFixture(t, 400, 31)
	edited := wikiParts()
	edited[2].Version = 6
	v2r, err := New("rec", edited)
	if err != nil {
		t.Fatal(err)
	}

	// Cold: a fresh session running only v2.
	coldSess, err := NewSession("cold", task, groups, Config{Engine: testEngineConfig(nil)})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldSess.Submit(context.Background(), v2r)
	if err != nil {
		t.Fatal(err)
	}

	// Decay 0: v1 then v2 in one session; v2 must match cold exactly.
	zeroSess, err := NewSession("zero", task, groups, Config{Engine: testEngineConfig(nil), Decay: 0})
	if err != nil {
		t.Fatal(err)
	}
	v1r, err := New("rec", wikiParts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zeroSess.Submit(context.Background(), v1r); err != nil {
		t.Fatal(err)
	}
	warm0, err := zeroSess.Submit(context.Background(), v2r)
	if err != nil {
		t.Fatal(err)
	}
	a, b := *cold.Run, *warm0.Run
	a.WallTime, b.WallTime = 0, 0
	a.Phases, b.Phases = core.PhaseBreakdown{}, core.PhaseBreakdown{}
	if !reflect.DeepEqual(&a, &b) {
		t.Fatal("decay=0 session v2 differs from cold run of the same recipe")
	}
}

func TestSessionRejectsClassMismatch(t *testing.T) {
	task, groups := wikiFixture(t, 400, 31)
	s, err := NewSession("mismatch", task, groups, Config{Engine: testEngineConfig(nil)})
	if err != nil {
		t.Fatal(err)
	}
	songRec, err := New("songs", []Part{{Name: "a", Kind: "song"}, {Name: "b", Kind: "song", Version: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), songRec); err == nil {
		t.Fatal("song recipe against wiki task: want class-mismatch error")
	}
}

func TestSelectParts(t *testing.T) {
	task, groups := wikiFixture(t, 400, 31)
	cache, err := featcache.Open(featcache.Config{}, featurepipe.ResultCodec{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testEngineConfig(cache)
	cfg.MaxInputs = 80
	s, err := NewSession("select", task, groups, Config{Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	candidate, err := New("cand", []Part{
		{Name: "base", Kind: "wiki", Version: 2},
		{Name: "mid", Kind: "wiki", Version: 4},
		{Name: "top", Kind: "wiki", Version: 6, Deps: []string{"mid"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SelectParts(context.Background(), candidate, SelectConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) == 0 || res.Recipe == nil {
		t.Fatalf("SelectParts selected nothing: %+v", res)
	}
	// Dependency structure respected: "top" can only appear after "mid".
	pos := map[string]int{}
	for i, n := range res.Selected {
		pos[n] = i
	}
	if pt, ok := pos["top"]; ok {
		if pm, ok := pos["mid"]; !ok || pm > pt {
			t.Fatalf("top selected before its dependency mid: %v", res.Selected)
		}
	}
	// Round 1 must have evaluated only the dep-free parts.
	if len(res.Rounds) == 0 || len(res.Rounds[0].Candidates) != 2 {
		t.Fatalf("round 1 candidates = %+v, want base and mid only", res.Rounds)
	}
	// Determinism: same inputs → same selection.
	s2, err := NewSession("select2", task, groups, Config{Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.SelectParts(context.Background(), candidate, SelectConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Selected, res2.Selected) || !reflect.DeepEqual(res.Rounds, res2.Rounds) {
		t.Fatal("SelectParts is not deterministic")
	}
	// MaxParts caps growth.
	s3, err := NewSession("select3", task, groups, Config{Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := s3.SelectParts(context.Background(), candidate, SelectConfig{MaxParts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Selected) != 1 {
		t.Fatalf("MaxParts=1 selected %v", capped.Selected)
	}
}
