package recipe

import (
	"context"
	"fmt"

	"zombie/internal/core"
	"zombie/internal/featurepipe"
	"zombie/internal/index"
)

// Config parameterizes a session workspace.
type Config struct {
	// Engine is the template engine configuration each version runs with.
	// Its WarmStart fields are managed by the session (overwritten per
	// version); set Cache to share extractions across versions — that is
	// where the "edit one part, pay for one part" economics come from.
	Engine core.Config
	// Decay is the warm-start decay applied when a version runs after a
	// previous one, in [0,1]. 0 disables warm-starting entirely: every
	// version runs byte-identical to a cold run.
	Decay float64
}

// WarmStartStats records what seeding a version actually did.
type WarmStartStats struct {
	// Applied reports whether the version's policy was seeded from the
	// previous version's arm statistics.
	Applied bool `json:"applied"`
	// Decay is the decay the seeding used.
	Decay float64 `json:"decay"`
	// SeededPulls is the number of synthetic pulls replayed.
	SeededPulls int64 `json:"seeded_pulls"`
}

// Version is one submitted recipe iteration and its run.
type Version struct {
	// Index is the 1-based version number within the session.
	Index int
	// Recipe is the compiled recipe this version ran.
	Recipe *Recipe
	// Diff describes how the recipe changed from the previous version
	// (everything Added for v1).
	Diff Diff
	// Run is the engine result: curve, arms, cache counters, stop reason.
	Run *core.RunResult
	// WarmStart records the seeding applied before the run.
	WarmStart WarmStartStats
}

// Session is the iterative feature-engineering workspace: an engineer
// submits recipe versions one after another against a fixed task and
// index, and the session carries knowledge forward between them — cached
// part extractions through Config.Engine.Cache, and bandit arm statistics
// through warm-start seeding. A Session is not safe for concurrent use;
// versions are sequential by nature.
type Session struct {
	name     string
	cfg      Config
	task     *featurepipe.Task
	groups   *index.Groups
	versions []*Version
}

// NewSession validates the configuration and opens a workspace over the
// task and groups.
func NewSession(name string, task *featurepipe.Task, groups *index.Groups, cfg Config) (*Session, error) {
	if name == "" {
		return nil, fmt.Errorf("recipe: session needs a name")
	}
	if task == nil || groups == nil {
		return nil, fmt.Errorf("recipe: session %s needs a task and groups", name)
	}
	if cfg.Decay != cfg.Decay || cfg.Decay < 0 || cfg.Decay > 1 {
		return nil, fmt.Errorf("recipe: session %s: decay must be in [0,1], got %v", name, cfg.Decay)
	}
	// Validate the engine template eagerly so the first Submit cannot fail
	// on configuration the caller handed over at open time.
	if _, err := core.New(cfg.Engine); err != nil {
		return nil, err
	}
	return &Session{name: name, cfg: cfg, task: task, groups: groups}, nil
}

// Name returns the session's name.
func (s *Session) Name() string { return s.name }

// Versions returns the submitted versions in order.
func (s *Session) Versions() []*Version { return append([]*Version(nil), s.versions...) }

// Submit runs one recipe version: it diffs the recipe against the
// previous version, warm-starts the bandit from the previous version's
// arm statistics (Config.Decay > 0), runs the engine, and records the
// version. Unchanged parts are served by the extraction cache when the
// engine config carries one — the engine's cache counters in the returned
// version's Run show the reuse.
func (s *Session) Submit(ctx context.Context, r *Recipe) (*Version, error) {
	if r == nil {
		return nil, fmt.Errorf("recipe: session %s: Submit requires a recipe", s.name)
	}
	if got, want := r.Feature().NumClasses(), s.task.Feature.NumClasses(); got != want {
		return nil, fmt.Errorf("recipe: session %s: recipe %s has %d classes, task %s expects %d",
			s.name, r.Name(), got, s.task.Name, want)
	}
	cfg := s.cfg.Engine
	cfg.WarmStart, cfg.WarmStartDecay = nil, 0
	ws := WarmStartStats{Decay: s.cfg.Decay}
	if prev := s.last(); prev != nil && s.cfg.Decay > 0 && prev.Run != nil && len(prev.Run.Arms) > 0 {
		cfg.WarmStart = prev.Run.Arms
		cfg.WarmStartDecay = s.cfg.Decay
		ws.Applied = true
	}
	eng, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := eng.RunContext(ctx, s.task.WithFeature(r.Feature()), s.groups)
	if err != nil {
		return nil, fmt.Errorf("recipe: session %s: version %d: %w", s.name, len(s.versions)+1, err)
	}
	ws.SeededPulls = res.WarmStartPulls
	v := &Version{
		Index:     len(s.versions) + 1,
		Recipe:    r,
		Diff:      r.DiffFrom(s.prevRecipe()),
		Run:       res,
		WarmStart: ws,
	}
	s.versions = append(s.versions, v)
	return v, nil
}

// Restore appends a version that ran before this workspace existed — a
// restarted server recovering persisted session history. The version is
// recorded exactly as if Submit had just run it, so the next Submit
// diffs against its recipe and warm-starts from its arm snapshots, but
// nothing executes: run is the persisted result, trusted as-is. Restore
// versions before the first Submit; interleaving them afterwards would
// rewrite history the live versions already diffed against.
func (s *Session) Restore(r *Recipe, run *core.RunResult, ws WarmStartStats) (*Version, error) {
	if r == nil || run == nil {
		return nil, fmt.Errorf("recipe: session %s: Restore requires a recipe and a result", s.name)
	}
	v := &Version{
		Index:     len(s.versions) + 1,
		Recipe:    r,
		Diff:      r.DiffFrom(s.prevRecipe()),
		Run:       run,
		WarmStart: ws,
	}
	s.versions = append(s.versions, v)
	return v, nil
}

func (s *Session) last() *Version {
	if len(s.versions) == 0 {
		return nil
	}
	return s.versions[len(s.versions)-1]
}

func (s *Session) prevRecipe() *Recipe {
	if v := s.last(); v != nil {
		return v.Recipe
	}
	return nil
}
