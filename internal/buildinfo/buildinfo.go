// Package buildinfo identifies the binary: a version and VCS commit,
// settable at link time and recoverable from the Go build info when the
// linker flags were not used (a plain `go build` of a git checkout still
// stamps vcs.revision). Both CLIs print it under -version and the server
// reports it in /healthz, so a scrape or a bug report always names the
// exact build it came from.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version and Commit are overridden at link time:
//
//	go build -ldflags "-X zombie/internal/buildinfo.Version=v1.2.3 \
//	                   -X zombie/internal/buildinfo.Commit=abc1234"
var (
	Version = "dev"
	Commit  = ""
)

// Resolve returns the effective version and commit: the linker-set
// values, with the commit falling back to the module build info's
// vcs.revision (truncated to 12 chars, "+dirty" when the tree was
// modified) and finally "unknown".
func Resolve() (version, commit string) {
	version, commit = Version, Commit
	if commit == "" {
		if bi, ok := debug.ReadBuildInfo(); ok {
			var rev string
			var dirty bool
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					rev = s.Value
				case "vcs.modified":
					dirty = s.Value == "true"
				}
			}
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if rev != "" && dirty {
				rev += "+dirty"
			}
			commit = rev
		}
	}
	if commit == "" {
		commit = "unknown"
	}
	return version, commit
}

// String renders the one-line -version output for the named command.
func String(cmd string) string {
	version, commit := Resolve()
	return fmt.Sprintf("%s %s (commit %s, %s)", cmd, version, commit, runtime.Version())
}
