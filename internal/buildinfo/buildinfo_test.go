package buildinfo

import (
	"strings"
	"testing"
)

func TestResolveNeverEmpty(t *testing.T) {
	version, commit := Resolve()
	if version == "" || commit == "" {
		t.Fatalf("Resolve() = %q, %q; want non-empty", version, commit)
	}
}

func TestLinkerOverrideWins(t *testing.T) {
	oldV, oldC := Version, Commit
	defer func() { Version, Commit = oldV, oldC }()
	Version, Commit = "v9.9.9", "deadbeef"
	version, commit := Resolve()
	if version != "v9.9.9" || commit != "deadbeef" {
		t.Fatalf("Resolve() = %q, %q; want linker values", version, commit)
	}
	if s := String("zombie"); !strings.Contains(s, "zombie v9.9.9 (commit deadbeef") {
		t.Fatalf("String() = %q", s)
	}
}
