package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// FlatSnapshot renders every metric into the flat expvar-style int64 map
// the service has served at /metrics since PR 1. Counters and gauges
// appear under their metric name (label value folded in as a suffix);
// a histogram appears as <name>_count and <name>_sum_ms, the integer
// projections a flat map can carry.
func (r *Registry) FlatSnapshot() map[string]int64 {
	out := map[string]int64{}
	for _, m := range r.snapshot() {
		base := m.flatName()
		switch m.kind {
		case kindCounter:
			out[base] = m.counter.Load()
		case kindGauge:
			out[base] = m.gauge.Load()
		case kindGaugeFunc:
			out[base] = m.gaugeFn()
		case kindCounterFunc:
			out[base] = m.counterFn()
		case kindHistogram:
			out[base+"_count"] = m.hist.Count()
			out[base+"_sum_ms"] = int64(m.hist.Sum() * 1000)
		}
	}
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4). Families are emitted in sorted name order, each
// with one HELP/TYPE header followed by all its series, so multi-phase
// histograms sharing a name scrape as one family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	metrics := r.snapshot()
	byName := map[string][]*metric{}
	var names []string
	for _, m := range metrics {
		if _, ok := byName[m.name]; !ok {
			names = append(names, m.name)
		}
		byName[m.name] = append(byName[m.name], m)
	}
	sort.Strings(names)
	for _, name := range names {
		family := byName[name]
		first := family[0]
		if first.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(first.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, first.kind); err != nil {
			return err
		}
		for _, m := range family {
			if err := writePromSeries(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromSeries(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, labelSet(m, ""), m.counter.Load())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, labelSet(m, ""), m.gauge.Load())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, labelSet(m, ""), m.gaugeFn())
		return err
	case kindCounterFunc:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, labelSet(m, ""), m.counterFn())
		return err
	case kindHistogram:
		bounds, cum := m.hist.Buckets()
		for i, b := range bounds {
			le := strconv.FormatFloat(b, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, labelSet(m, le), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, labelSet(m, "+Inf"), cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, labelSet(m, ""),
			strconv.FormatFloat(m.hist.Sum(), 'g', -1, 64)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelSet(m, ""), m.hist.Count())
		return err
	}
	return nil
}

// labelSet renders the series' label block: the metric's constant labels
// (if any, in declaration order) plus the histogram "le" label (when le
// is non-empty), or the empty string when there are no labels at all.
func labelSet(m *metric, le string) string {
	var parts []string
	for _, l := range m.labels {
		parts = append(parts, l.Key+`="`+escapeLabel(l.Value)+`"`)
	}
	if le != "" {
		parts = append(parts, `le="`+le+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeHelp escapes a HELP line per the exposition format: backslash
// and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
