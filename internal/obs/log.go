package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a structured logger in the given format: "text"
// (human-oriented key=value lines, the default) or "json" (one JSON
// object per line, for log shippers). Both CLIs expose it as -log-format.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default for
// library code handed no logger, so logging is never a nil check at the
// call site.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
