package obs

import (
	"testing"
	"time"
)

// TestBucketBoundaries pins the le-semantics: a value equal to a bound
// lands in that bound's bucket, a value above every bound lands in +Inf.
func TestBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 5, 10, 50} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("bounds=%v cum=%v", bounds, cum)
	}
	// le=0.1: 0.05, 0.1 | le=1: +0.5, 1 | le=10: +5, 10 | +Inf: +50
	want := []int64{2, 4, 6, 7}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+1+5+10+50; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestBoundsAreSortedOnConstruction guards against a caller passing
// bounds out of order: observation must still bucket correctly.
func TestBoundsAreSortedOnConstruction(t *testing.T) {
	h := newHistogram([]float64{10, 0.1, 1})
	h.Observe(0.05)
	bounds, cum := h.Buckets()
	if bounds[0] != 0.1 || bounds[2] != 10 {
		t.Fatalf("bounds not sorted: %v", bounds)
	}
	if cum[0] != 1 {
		t.Fatalf("0.05 did not land in the first bucket: %v", cum)
	}
}

func TestTimerObserves(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	tm := StartTimer(h)
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d < time.Millisecond {
		t.Fatalf("timer measured %v, want >= 1ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("timer did not observe: count = %d", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("timer observed non-positive sum %v", h.Sum())
	}
	// A nil-histogram timer still measures; a zero timer is inert.
	if d := StartTimer(nil).Stop(); d < 0 {
		t.Fatalf("nil-histogram timer measured %v", d)
	}
	var zero Timer
	if d := zero.Stop(); d != 0 {
		t.Fatalf("zero timer measured %v, want 0", d)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 4, 3)
	want := []float64{1e-6, 4e-6, 1.6e-5}
	for i := range want {
		if diff := b[i] - want[i]; diff > 1e-18 || diff < -1e-18 {
			t.Fatalf("bucket[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}
