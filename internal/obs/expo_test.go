package obs

import (
	"strings"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_started", "Runs accepted for execution.").Add(3)
	r.Gauge("queue_depth", "Queued runs.").Set(2)
	h := r.HistogramL("phase_seconds", "Per-phase wall time.", "phase", "extract", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	out := scrape(t, r)
	for _, want := range []string{
		"# HELP runs_started Runs accepted for execution.",
		"# TYPE runs_started counter",
		"runs_started 3",
		"# TYPE queue_depth gauge",
		"queue_depth 2",
		"# TYPE phase_seconds histogram",
		`phase_seconds_bucket{phase="extract",le="0.001"} 1`,
		`phase_seconds_bucket{phase="extract",le="0.1"} 2`,
		`phase_seconds_bucket{phase="extract",le="+Inf"} 3`,
		`phase_seconds_sum{phase="extract"} 5.0505`,
		`phase_seconds_count{phase="extract"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusFamilyGrouping asserts all series of one family render
// under a single HELP/TYPE header, whatever the declaration interleaving.
func TestPrometheusFamilyGrouping(t *testing.T) {
	r := NewRegistry()
	r.HistogramL("phase_seconds", "h", "phase", "extract", []float64{1})
	r.Counter("other", "")
	r.HistogramL("phase_seconds", "h", "phase", "train", []float64{1})

	out := scrape(t, r)
	if n := strings.Count(out, "# TYPE phase_seconds histogram"); n != 1 {
		t.Fatalf("family header appears %d times, want 1:\n%s", n, out)
	}
	extract := strings.Index(out, `phase="extract"`)
	train := strings.Index(out, `phase="train"`)
	header := strings.Index(out, "# TYPE phase_seconds")
	if extract < header || train < header {
		t.Fatalf("series rendered before their family header:\n%s", out)
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird", "help with \\ backslash\nand newline")
	r.HistogramL("lbl", "", "site", "a\"b\\c\nd", []float64{1})

	out := scrape(t, r)
	if !strings.Contains(out, `# HELP weird help with \\ backslash\nand newline`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `site="a\"b\\c\nd"`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if strings.Contains(out, "\nand newline") {
		t.Fatalf("raw newline leaked into exposition:\n%s", out)
	}
}

// TestFlatHistogramProjection pins the flat-JSON shape of a histogram:
// integer count and millisecond sum under suffixed keys.
func TestFlatHistogramProjection(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramL("phase_seconds", "", "phase", "eval", []float64{1})
	h.Observe(0.5)
	h.Observe(0.25)
	flat := r.FlatSnapshot()
	if flat["phase_seconds_eval_count"] != 2 {
		t.Fatalf("flat count: %v", flat)
	}
	if flat["phase_seconds_eval_sum_ms"] != 750 {
		t.Fatalf("flat sum_ms: %v", flat)
	}
}

// TestEveryNameInBothExpositions is the package-level golden-key check:
// whatever is declared must surface in the flat map and the Prometheus
// text under its base name.
func TestEveryNameInBothExpositions(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "")
	r.Gauge("g", "")
	r.GaugeFunc("gf", "", func() int64 { return 1 })
	r.Histogram("h_seconds", "", []float64{1})
	r.HistogramL("hl_seconds", "", "phase", "x", []float64{1})

	flat := r.FlatSnapshot()
	prom := scrape(t, r)
	for _, name := range r.Names() {
		inFlat := false
		for key := range flat {
			if key == name || strings.HasPrefix(key, name+"_") {
				inFlat = true
				break
			}
		}
		if !inFlat {
			t.Errorf("metric %q missing from flat snapshot: %v", name, flat)
		}
		if !strings.Contains(prom, "# TYPE "+name+" ") {
			t.Errorf("metric %q missing from prometheus exposition", name)
		}
	}
}
