// Package obs is zombie's dependency-free telemetry layer: a registry of
// named counters, gauges, and fixed-bucket latency histograms with two
// exposition formats — the flat expvar-style JSON map the service has
// always served at /metrics, and the Prometheus text format scrapers
// expect. Every subsystem declares its metrics once against a registry
// and both formats render from the same declarations, so a counter can
// no longer exist in one exposition and silently miss the other.
//
// The hot path is lock-free: counters and gauges are single atomics,
// histogram observation is two atomic adds plus a binary search over a
// fixed bound slice, and none of them allocate. The registry's mutex is
// only taken at declaration and exposition time. Metrics may carry one
// constant label (the phase histograms use phase="extract" and friends);
// full dynamic label sets are deliberately out of scope — this is an
// instrumentation layer for one process, not a metrics database.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// kind discriminates registry entries.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindCounterFunc
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Label is one constant key/value pair on a series. Labels are ordered:
// series sharing a metric name must declare their labels in the same key
// order (declaration order is the exposition order).
type Label struct {
	Key   string
	Value string
}

// metric is one registered series: a name, optional constant labels, and
// exactly one of the value holders.
type metric struct {
	name   string
	help   string
	kind   kind
	labels []Label

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() int64
	counterFn func() int64
	hist      *Histogram
}

// flatName is the metric's key (base) in the flat-JSON exposition: the
// name, with every label value folded in as a suffix in declaration
// order, so labeled series stay distinct in a flat namespace.
func (m *metric) flatName() string {
	name := m.name
	for _, l := range m.labels {
		name += "_" + l.Value
	}
	return name
}

// id is the metric's registry identity: the name plus every label value.
func (m *metric) id() string {
	id := m.name
	for _, l := range m.labels {
		id += "\x00" + l.Value
	}
	return id
}

// Registry holds declared metrics. Declaration is idempotent: declaring
// the same (name, label) twice returns the existing metric, so per-run
// code can declare unconditionally and share series across runs.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric          // declaration order
	byID    map[string]*metric // name + "\x00" + each label value
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]*metric{}}
}

// declare registers m unless its identity already exists, in which case
// the existing entry is returned. A kind clash on one identity is a
// programming error and panics at declaration time, never at scrape time.
func (r *Registry) declare(m *metric) *metric {
	id := m.id()
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.byID[id]; ok {
		if have.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %q redeclared as %s (was %s)", m.name, m.kind, have.kind))
		}
		return have
	}
	r.byID[id] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter declares (or returns the existing) counter with the given name.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.declare(&metric{name: name, help: help, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// Gauge declares (or returns the existing) settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.declare(&metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}})
	return m.gauge
}

// GaugeL is Gauge with one constant label, e.g. shard="0" — the same
// labeling rule HistogramL follows: series sharing a name must share the
// label key, and the flat-JSON exposition folds the value into the key.
func (r *Registry) GaugeL(name, help, labelKey, labelValue string) *Gauge {
	m := r.declare(&metric{
		name: name, help: help, kind: kindGauge,
		labels: []Label{{labelKey, labelValue}},
		gauge:  &Gauge{},
	})
	return m.gauge
}

// CounterL is Counter with an ordered set of constant labels, e.g.
// method="step",worker="1". Series sharing a name must declare the same
// label keys in the same order; the flat-JSON exposition folds every
// value into the key suffix (dist_rpc_errors_step_1).
func (r *Registry) CounterL(name, help string, labels ...Label) *Counter {
	m := r.declare(&metric{
		name: name, help: help, kind: kindCounter,
		labels:  append([]Label(nil), labels...),
		counter: &Counter{},
	})
	return m.counter
}

// GaugeFunc declares a gauge sampled by calling fn at exposition time —
// for values owned by another structure (queue depths, cache residency).
// fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.declare(&metric{name: name, help: help, kind: kindGaugeFunc, gaugeFn: fn})
}

// CounterFunc declares a monotonic counter sampled by calling fn at
// exposition time — for counts owned by another structure (the extraction
// cache keeps its own hit/miss tallies). fn must be safe to call from any
// goroutine and must never decrease.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.declare(&metric{name: name, help: help, kind: kindCounterFunc, counterFn: fn})
}

// Histogram declares (or returns the existing) histogram with the given
// upper bucket bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.declare(&metric{name: name, help: help, kind: kindHistogram, hist: newHistogram(bounds)})
	return m.hist
}

// HistogramL is Histogram with one constant label, e.g. phase="extract".
// Series sharing a name must share bounds and label key; the first
// declaration wins on both.
func (r *Registry) HistogramL(name, help, labelKey, labelValue string, bounds []float64) *Histogram {
	m := r.declare(&metric{
		name: name, help: help, kind: kindHistogram,
		labels: []Label{{labelKey, labelValue}},
		hist:   newHistogram(bounds),
	})
	return m.hist
}

// Names returns the declared metric base names, sorted and deduplicated —
// the key set tests use to assert both expositions cover every metric.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	var names []string
	for _, m := range r.metrics {
		if !seen[m.name] {
			seen[m.name] = true
			names = append(names, m.name)
		}
	}
	sort.Strings(names)
	return names
}

// snapshot returns the metric list under the lock; values are read from
// the atomics afterwards, so a scrape never blocks a writer.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}
