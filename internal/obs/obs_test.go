package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs", "requests")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if g.Load() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Load())
	}
	r.GaugeFunc("sampled", "sampled gauge", func() int64 { return 42 })

	flat := r.FlatSnapshot()
	if flat["reqs"] != 5 || flat["depth"] != 5 || flat["sampled"] != 42 {
		t.Fatalf("flat snapshot: %v", flat)
	}
}

func TestDeclarationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "help")
	b := r.Counter("x", "other help ignored")
	if a != b {
		t.Fatal("redeclaring a counter returned a different instance")
	}
	h1 := r.HistogramL("phase", "h", "phase", "extract", LatencyBuckets)
	h2 := r.HistogramL("phase", "h", "phase", "extract", LatencyBuckets)
	if h1 != h2 {
		t.Fatal("redeclaring a labeled histogram returned a different instance")
	}
	h3 := r.HistogramL("phase", "h", "phase", "train", LatencyBuckets)
	if h3 == h1 {
		t.Fatal("distinct label values shared one histogram")
	}
	if len(r.Names()) != 2 {
		t.Fatalf("names = %v, want [phase x]", r.Names())
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", []float64{0.5})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got, want := h.Sum(), 0.25*workers*per; got != want {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
}

func TestNopAndFormatLoggers(t *testing.T) {
	if _, err := NewLogger(&strings.Builder{}, "json"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLogger(&strings.Builder{}, "text"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLogger(&strings.Builder{}, "yaml"); err == nil {
		t.Fatal("bad format accepted")
	}
	NopLogger().Info("goes nowhere")
}
