package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution: observation is two atomic
// adds (count, sum) plus one atomic add on the bucket found by binary
// search over the immutable bound slice. Bounds are upper-inclusive
// (Prometheus "le" semantics) with an implicit +Inf bucket at the end.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		bounds:  bs,
		buckets: make([]atomic.Int64, len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s finds the first bound >= v only for exact
	// matches; we want the first bound >= v under le-semantics, i.e. the
	// first i with v <= bounds[i].
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and cumulative counts (le-semantics,
// +Inf last) as parallel slices — the Prometheus wire shape.
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = h.bounds
	cumulative = make([]int64, len(h.buckets))
	var acc int64
	for i := range h.buckets {
		acc += h.buckets[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// Timer measures one interval into a histogram. The zero Timer is inert.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing against h (which may be nil: the returned
// timer still measures, it just observes nowhere — callers timing phases
// unconditionally pay one time.Now either way).
func StartTimer(h *Histogram) Timer {
	return Timer{h: h, start: time.Now()}
}

// Stop observes the elapsed time (when the timer has a histogram) and
// returns it, so one measurement can feed both a histogram and an
// accumulator.
func (t Timer) Stop() time.Duration {
	if t.start.IsZero() {
		return 0
	}
	d := time.Since(t.start)
	if t.h != nil {
		t.h.ObserveDuration(d)
	}
	return d
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start, each factor times the previous — the standard latency ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets covers inner-loop phase durations: 1µs to ~0.26s.
var LatencyBuckets = ExpBuckets(1e-6, 4, 10)

// RunBuckets covers whole-run durations: 10ms to ~2.7min.
var RunBuckets = ExpBuckets(0.01, 4, 8)
