package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Record(Event{Step: 1})
	if l.Len() != 0 {
		t.Fatal("nil log should record nothing")
	}
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "step,") {
		t.Fatal("nil log CSV missing header")
	}
}

func TestLogRecordAndCSV(t *testing.T) {
	l := &Log{}
	l.Record(Event{Step: 1, InputIdx: 42, Arm: 3, Reward: 0.5, Produced: true, Useful: true, SimTime: 20 * time.Millisecond})
	l.Record(Event{Step: 2, InputIdx: 7, Err: "boom"})
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "1,42,3,0.500000,true,true") {
		t.Fatalf("row 1 wrong: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"boom"`) {
		t.Fatalf("error not quoted: %s", lines[2])
	}
	if !strings.Contains(lines[1], "20.000") {
		t.Fatalf("sim time wrong: %s", lines[1])
	}
}

func TestWriteCSVParsesBack(t *testing.T) {
	// The Err column carries arbitrary feature-code panic text; commas,
	// quotes and newlines in it must survive a real CSV parser round-trip.
	l := &Log{}
	l.Record(Event{Step: 1, InputIdx: 9, Arm: 2, Reward: 1, Produced: true, SimTime: time.Second})
	l.Record(Event{Step: 2, Err: `panic: bad "input", see log`})
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	header := strings.Join(rows[0], ",")
	if header != "step,input,arm,reward,produced,useful,err,sim_ms,cache_hit,quarantined" {
		t.Fatalf("header = %q", header)
	}
	if rows[1][0] != "1" || rows[1][1] != "9" || rows[1][2] != "2" || rows[1][7] != "1000.000" {
		t.Fatalf("row 1 = %v", rows[1])
	}
	if rows[2][6] != `panic: bad "input", see log` {
		t.Fatalf("err column mangled: %q", rows[2][6])
	}
}

func TestWriteCSVNilLogHeaderOnly(t *testing.T) {
	// A nil log is a valid "nothing was traced" value end to end: WriteCSV
	// must emit exactly the header so downstream tooling sees an empty,
	// well-formed table.
	var l *Log
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 10 {
		t.Fatalf("nil log CSV = %v, want a single 10-column header", rows)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "zombie"}
	s.AddPoint(0, 0.1)
	s.AddPoint(25, 0.4)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, s, &Series{Name: "scan", X: []float64{0}, Y: []float64{0.1}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "zombie,25,0.4") || !strings.Contains(out, "scan,0,0.1") {
		t.Fatalf("series CSV wrong:\n%s", out)
	}
}

func TestWriteSeriesCSVCorrupt(t *testing.T) {
	bad := &Series{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}
	if err := WriteSeriesCSV(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("expected error for corrupt series")
	}
}

func TestSeriesAddPointPanicsOnCorrupt(t *testing.T) {
	s := &Series{Name: "x", X: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.AddPoint(2, 2)
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n--
	if w.n < 0 {
		return 0, errFail
	}
	return len(p), nil
}

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "injected write failure" }

func TestWriteCSVPropagatesWriterErrors(t *testing.T) {
	l := &Log{}
	l.Record(Event{Step: 1})
	// Fail on the header.
	if err := l.WriteCSV(&failWriter{n: 0}); err == nil {
		t.Fatal("header write error swallowed")
	}
	// Fail on the first row.
	if err := l.WriteCSV(&failWriter{n: 1}); err == nil {
		t.Fatal("row write error swallowed")
	}
}

func TestWriteSeriesCSVPropagatesWriterErrors(t *testing.T) {
	s := &Series{Name: "a", X: []float64{1}, Y: []float64{2}}
	if err := WriteSeriesCSV(&failWriter{n: 0}, s); err == nil {
		t.Fatal("header write error swallowed")
	}
	if err := WriteSeriesCSV(&failWriter{n: 1}, s); err == nil {
		t.Fatal("row write error swallowed")
	}
}
