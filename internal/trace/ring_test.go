package trace

import (
	"sync"
	"testing"
)

func TestRingRetainsNewestAndCountsDrops(t *testing.T) {
	r := NewRing(3)
	for step := 1; step <= 5; step++ {
		r.Append(Event{Step: step})
	}
	events, dropped := r.Snapshot()
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if len(events) != 3 || events[0].Step != 3 || events[2].Step != 5 {
		t.Fatalf("snapshot = %+v, want steps 3..5 oldest-first", events)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
}

func TestRingUnderfilled(t *testing.T) {
	r := NewRing(8)
	r.Append(Event{Step: 1})
	r.Append(Event{Step: 2})
	events, dropped := r.Snapshot()
	if dropped != 0 || len(events) != 2 || events[0].Step != 1 {
		t.Fatalf("snapshot = %+v dropped=%d", events, dropped)
	}
}

func TestRingCapFloor(t *testing.T) {
	r := NewRing(0)
	r.Append(Event{Step: 1})
	r.Append(Event{Step: 2})
	events, dropped := r.Snapshot()
	if len(events) != 1 || events[0].Step != 2 || dropped != 1 {
		t.Fatalf("cap-0 ring: %+v dropped=%d", events, dropped)
	}
}

// TestRingConcurrent exercises append-while-snapshot under the race
// detector: the serving layer reads a live run's ring from HTTP handlers
// while the engine goroutine appends.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			r.Append(Event{Step: i})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			events, _ := r.Snapshot()
			for j := 1; j < len(events); j++ {
				if events[j].Step != events[j-1].Step+1 {
					t.Errorf("snapshot out of order: %d after %d", events[j].Step, events[j-1].Step)
					return
				}
			}
		}
	}()
	wg.Wait()
}
