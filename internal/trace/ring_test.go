package trace

import (
	"sync"
	"testing"
)

func TestRingRetainsNewestAndCountsDrops(t *testing.T) {
	r := NewRing(3)
	for step := 1; step <= 5; step++ {
		r.Append(Event{Step: step})
	}
	events, dropped := r.Snapshot()
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if len(events) != 3 || events[0].Step != 3 || events[2].Step != 5 {
		t.Fatalf("snapshot = %+v, want steps 3..5 oldest-first", events)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
}

// TestRingWraparoundExactDrops pins the eviction arithmetic across
// multiple full wraparounds: after N appends into a cap-C ring the drop
// count is exactly N-C (not off by the number of wraps), the resident
// window is the last C events oldest-first, and Dropped agrees with
// Snapshot without copying the buffer.
func TestRingWraparoundExactDrops(t *testing.T) {
	const cap, total = 4, 11 // 2 full wraps plus a partial third
	r := NewRing(cap)
	for step := 1; step <= total; step++ {
		r.Append(Event{Step: step})
		wantDropped := int64(step - cap)
		if wantDropped < 0 {
			wantDropped = 0
		}
		if got := r.Dropped(); got != wantDropped {
			t.Fatalf("after %d appends Dropped = %d, want %d", step, got, wantDropped)
		}
	}
	events, dropped := r.Snapshot()
	if dropped != total-cap {
		t.Fatalf("dropped = %d, want exactly %d", dropped, total-cap)
	}
	if len(events) != cap {
		t.Fatalf("resident = %d, want %d", len(events), cap)
	}
	for i, e := range events {
		if want := total - cap + 1 + i; e.Step != want {
			t.Fatalf("events[%d].Step = %d, want %d (window %d..%d)", i, e.Step, want, total-cap+1, total)
		}
	}
}

func TestRingUnderfilled(t *testing.T) {
	r := NewRing(8)
	r.Append(Event{Step: 1})
	r.Append(Event{Step: 2})
	events, dropped := r.Snapshot()
	if dropped != 0 || len(events) != 2 || events[0].Step != 1 {
		t.Fatalf("snapshot = %+v dropped=%d", events, dropped)
	}
}

func TestRingCapFloor(t *testing.T) {
	r := NewRing(0)
	r.Append(Event{Step: 1})
	r.Append(Event{Step: 2})
	events, dropped := r.Snapshot()
	if len(events) != 1 || events[0].Step != 2 || dropped != 1 {
		t.Fatalf("cap-0 ring: %+v dropped=%d", events, dropped)
	}
}

// TestRingConcurrent exercises append-while-snapshot under the race
// detector: the serving layer reads a live run's ring from HTTP handlers
// while the engine goroutine appends.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			r.Append(Event{Step: i})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			events, _ := r.Snapshot()
			for j := 1; j < len(events); j++ {
				if events[j].Step != events[j-1].Step+1 {
					t.Errorf("snapshot out of order: %d after %d", events[j].Step, events[j-1].Step)
					return
				}
			}
		}
	}()
	wg.Wait()
}
