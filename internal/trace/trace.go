// Package trace records what a Zombie run did, step by step, and renders
// run series as CSV for the experiment harness. Traces exist for two
// consumers: tests that assert on engine behavior (exact replay, reward
// attribution) and the bench harness that prints learning-curve series.
package trace

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Event is one step of the inner loop.
type Event struct {
	// Step is the 1-based step number.
	Step int
	// InputIdx is the store index of the processed input.
	InputIdx int
	// Arm is the index group the input came from (0 for scan baselines).
	Arm int
	// Reward is the bandit reward credited for this step.
	Reward float64
	// Produced and Useful mirror the feature function's result.
	Produced bool
	Useful   bool
	// Err holds the extraction error message, if any.
	Err string
	// SimTime is the cumulative simulated processing time after the step.
	SimTime time.Duration
	// CacheHit reports whether the step's extraction was served (at least
	// in part) from the extraction cache.
	CacheHit bool
	// Quarantined reports whether the step quarantined its input (a
	// feature-code panic or corpus read failure the engine absorbed).
	Quarantined bool
}

// Log is an append-only event recorder. A nil *Log is valid and records
// nothing, so the engine can trace unconditionally.
type Log struct {
	Events []Event
}

// Record appends an event. Recording on a nil log is a no-op.
func (l *Log) Record(e Event) {
	if l == nil {
		return
	}
	l.Events = append(l.Events, e)
}

// Len returns the number of recorded events (0 for nil).
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.Events)
}

// WriteCSV renders the event log with a header row. Columns are
// append-only: consumers written against an older header keep parsing
// (the original eight columns are stable), new columns ride at the end.
func (l *Log) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step,input,arm,reward,produced,useful,err,sim_ms,cache_hit,quarantined"); err != nil {
		return err
	}
	if l == nil {
		return nil
	}
	for _, e := range l.Events {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%.6f,%t,%t,%s,%.3f,%t,%t\n",
			e.Step, e.InputIdx, e.Arm, e.Reward, e.Produced, e.Useful, csvQuote(e.Err),
			float64(e.SimTime)/float64(time.Millisecond), e.CacheHit, e.Quarantined); err != nil {
			return err
		}
	}
	return nil
}

// csvQuote renders s as an always-quoted RFC 4180 field: inner quotes are
// doubled, not backslash-escaped (feature-code panic messages routinely
// contain quotes and commas, and %q would emit CSV no parser accepts).
func csvQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Series is a named (x, y) sequence — one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// AddPoint appends one point. It panics if the series has drifted out of
// sync, which would mean a harness bug.
func (s *Series) AddPoint(x, y float64) {
	if len(s.X) != len(s.Y) {
		panic(fmt.Sprintf("trace: series %q corrupt: %d xs vs %d ys", s.Name, len(s.X), len(s.Y)))
	}
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// WriteSeriesCSV renders multiple series long-form: series,x,y.
func WriteSeriesCSV(w io.Writer, series ...*Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("trace: series %q has %d xs but %d ys", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
