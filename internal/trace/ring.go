package trace

import "sync"

// Ring is a bounded event buffer: the newest cap events are retained,
// older ones are dropped and counted. The serving layer keeps one per
// traced run, so a long run's trace costs bounded memory while the tail
// — the part an engineer debugging a live run actually wants — is always
// available. Unlike Log, a Ring is safe for concurrent append and
// snapshot: the engine goroutine appends while HTTP handlers read.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // events resident
	dropped int64
}

// NewRing returns a ring retaining up to cap events (floored at 1).
func NewRing(cap int) *Ring {
	if cap < 1 {
		cap = 1
	}
	return &Ring{buf: make([]Event, cap)}
}

// Append records an event, evicting the oldest when full.
func (r *Ring) Append(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// Snapshot returns the resident events oldest-first and the count of
// events evicted to make room for them.
func (r *Ring) Snapshot() (events []Event, dropped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	events = make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		events[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return events, r.dropped
}

// Dropped returns how many events have been evicted so far — cheap
// enough to stamp onto every streamed frame, unlike Snapshot.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of resident events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
