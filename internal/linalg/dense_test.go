package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
	mustPanic(t, func() { Dot([]float64{1}, []float64{1, 2}) })
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	mustPanic(t, func() { Axpy(1, []float64{1}, []float64{1, 2}) })
}

func TestAddSub(t *testing.T) {
	y := []float64{5, 5}
	Add([]float64{1, 2}, y)
	if y[0] != 6 || y[1] != 7 {
		t.Fatalf("Add gave %v", y)
	}
	Sub([]float64{1, 2}, y)
	if y[0] != 5 || y[1] != 5 {
		t.Fatalf("Sub gave %v", y)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if !almostEq(Norm2(x), 5) {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if !almostEq(Norm1(x), 7) {
		t.Fatalf("Norm1 = %v", Norm1(x))
	}
	if Norm2(nil) != 0 || Norm1(nil) != 0 {
		t.Fatal("norms of empty vector should be 0")
	}
}

func TestSqDistMatchesDefinition(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(func(a, b [8]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			a[i] = math.Mod(a[i], 1000)
			b[i] = math.Mod(b[i], 1000)
		}
		d := SqDist(a[:], b[:])
		diff := make([]float64, 8)
		copy(diff, a[:])
		Sub(b[:], diff)
		n := Norm2(diff)
		return math.Abs(d-n*n) < 1e-6*(1+d)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCosine(t *testing.T) {
	if !almostEq(Cosine([]float64{1, 0}, []float64{1, 0}), 1) {
		t.Fatal("parallel cosine != 1")
	}
	if !almostEq(Cosine([]float64{1, 0}, []float64{0, 1}), 0) {
		t.Fatal("orthogonal cosine != 0")
	}
	if !almostEq(Cosine([]float64{1, 0}, []float64{-2, 0}), -1) {
		t.Fatal("antiparallel cosine != -1")
	}
	if Cosine([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Fatal("zero-vector cosine should be 0")
	}
	mustPanic(t, func() { Cosine([]float64{0, 0}, []float64{1}) })
}

func TestArgMaxMin(t *testing.T) {
	x := []float64{1, 5, 5, -2}
	if ArgMax(x) != 1 {
		t.Fatalf("ArgMax tie-break wrong: %d", ArgMax(x))
	}
	if ArgMin(x) != 3 {
		t.Fatalf("ArgMin = %d", ArgMin(x))
	}
	mustPanic(t, func() { ArgMax(nil) })
	mustPanic(t, func() { ArgMin(nil) })
}

func TestNormalize(t *testing.T) {
	x := []float64{3, 4}
	n := Normalize(x)
	if !almostEq(n, 5) {
		t.Fatalf("returned norm %v", n)
	}
	if !almostEq(Norm2(x), 1) {
		t.Fatalf("normalized norm %v", Norm2(x))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 || z[0] != 0 {
		t.Fatal("zero vector should be unchanged")
	}
}

func TestSoftmax(t *testing.T) {
	out := make([]float64, 3)
	Softmax([]float64{1, 2, 3}, out)
	total := Sum(out)
	if !almostEq(total, 1) {
		t.Fatalf("softmax sums to %v", total)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Fatalf("softmax not monotone: %v", out)
	}
	// Large logits must not overflow.
	Softmax([]float64{1000, 1001}, out[:2])
	if math.IsNaN(out[0]) || math.IsInf(out[1], 0) {
		t.Fatalf("softmax unstable: %v", out[:2])
	}
	// Aliasing input and output is allowed.
	x := []float64{0, 0}
	Softmax(x, x)
	if !almostEq(x[0], 0.5) {
		t.Fatalf("aliased softmax: %v", x)
	}
	mustPanic(t, func() { Softmax(nil, nil) })
}

func TestSoftmaxSumsToOneProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(func(logits [6]float64) bool {
		for i := range logits {
			if math.IsNaN(logits[i]) || math.IsInf(logits[i], 0) {
				return true
			}
			// quick generates huge magnitudes; scale into a sane range.
			logits[i] = math.Mod(logits[i], 50)
		}
		out := make([]float64, 6)
		Softmax(logits[:], out)
		s := Sum(out)
		for _, v := range out {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return math.Abs(s-1) < 1e-9
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEq(Sigmoid(0), 0.5) {
		t.Fatalf("Sigmoid(0) = %v", Sigmoid(0))
	}
	if Sigmoid(1000) != 1 && math.Abs(Sigmoid(1000)-1) > 1e-12 {
		t.Fatalf("Sigmoid(1000) = %v", Sigmoid(1000))
	}
	if Sigmoid(-1000) > 1e-12 {
		t.Fatalf("Sigmoid(-1000) = %v", Sigmoid(-1000))
	}
	// Symmetry property: sigmoid(-x) = 1 - sigmoid(x).
	for _, x := range []float64{0.1, 1, 5, 30} {
		if !almostEq(Sigmoid(-x), 1-Sigmoid(x)) {
			t.Fatalf("sigmoid symmetry broken at %v", x)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

func TestCloneZeroScaleMeanSum(t *testing.T) {
	x := []float64{1, 2, 3}
	c := Clone(x)
	c[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone aliases input")
	}
	Scale(2, x)
	if x[2] != 6 {
		t.Fatalf("Scale gave %v", x)
	}
	if Sum(x) != 12 || !almostEq(Mean(x), 4) {
		t.Fatalf("Sum/Mean wrong: %v %v", Sum(x), Mean(x))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	Zero(x)
	if Sum(x) != 0 {
		t.Fatal("Zero failed")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
