package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Sparse is an immutable-by-convention sparse vector in coordinate form.
// Indices are strictly increasing and values are non-zero; NewSparse
// establishes the invariant and the arithmetic below relies on it. The
// feature-hashing vectorizer and the tf-idf index produce Sparse vectors;
// the linear learners consume them without densifying.
type Sparse struct {
	Idx []int
	Val []float64
	Dim int
}

// NewSparse builds a Sparse vector of dimension dim from parallel
// index/value slices. It copies its arguments, drops zero values, sorts by
// index, and sums duplicate indices. It panics if the slices have different
// lengths or any index is outside [0, dim).
func NewSparse(dim int, idx []int, val []float64) *Sparse {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("linalg: NewSparse index/value length mismatch %d vs %d", len(idx), len(val)))
	}
	type pair struct {
		i int
		v float64
	}
	pairs := make([]pair, 0, len(idx))
	for k, i := range idx {
		if i < 0 || i >= dim {
			panic(fmt.Sprintf("linalg: NewSparse index %d out of range [0,%d)", i, dim))
		}
		if val[k] != 0 {
			pairs = append(pairs, pair{i, val[k]})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].i < pairs[b].i })
	s := &Sparse{Dim: dim}
	for _, p := range pairs {
		if n := len(s.Idx); n > 0 && s.Idx[n-1] == p.i {
			s.Val[n-1] += p.v
			continue
		}
		s.Idx = append(s.Idx, p.i)
		s.Val = append(s.Val, p.v)
	}
	// Duplicate merging can cancel to zero; sweep those out.
	w := 0
	for k := range s.Idx {
		if s.Val[k] != 0 {
			s.Idx[w], s.Val[w] = s.Idx[k], s.Val[k]
			w++
		}
	}
	s.Idx, s.Val = s.Idx[:w], s.Val[:w]
	return s
}

// SparseFromOrdered wraps already-ordered coordinate slices as a Sparse
// vector without copying or sorting. The caller promises strictly
// increasing indices within [0, dim) and non-zero values — the invariant
// NewSparse would otherwise establish in O(n log n). Violations panic, so
// misuse is loud rather than silently breaking the arithmetic.
func SparseFromOrdered(dim int, idx []int, val []float64) *Sparse {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("linalg: SparseFromOrdered index/value length mismatch %d vs %d", len(idx), len(val)))
	}
	prev := -1
	for k, i := range idx {
		if i <= prev || i >= dim {
			panic(fmt.Sprintf("linalg: SparseFromOrdered index %d at position %d breaks strictly-increasing [0,%d)", i, k, dim))
		}
		if val[k] == 0 {
			panic(fmt.Sprintf("linalg: SparseFromOrdered zero value at position %d", k))
		}
		prev = i
	}
	return &Sparse{Idx: idx, Val: val, Dim: dim}
}

// SparseFromMap builds a Sparse vector from an index→value map.
func SparseFromMap(dim int, m map[int]float64) *Sparse {
	idx := make([]int, 0, len(m))
	val := make([]float64, 0, len(m))
	for i, v := range m {
		idx = append(idx, i)
		val = append(val, v)
	}
	return NewSparse(dim, idx, val)
}

// NNZ returns the number of stored (non-zero) entries.
func (s *Sparse) NNZ() int { return len(s.Idx) }

// At returns the value at index i (0 if not stored). It panics if i is out
// of range.
func (s *Sparse) At(i int) float64 {
	if i < 0 || i >= s.Dim {
		panic(fmt.Sprintf("linalg: Sparse.At index %d out of range [0,%d)", i, s.Dim))
	}
	k := sort.SearchInts(s.Idx, i)
	if k < len(s.Idx) && s.Idx[k] == i {
		return s.Val[k]
	}
	return 0
}

// Dense materializes the vector into a new dense slice of length Dim.
func (s *Sparse) Dense() []float64 {
	out := make([]float64, s.Dim)
	for k, i := range s.Idx {
		out[i] = s.Val[k]
	}
	return out
}

// DotDense returns the inner product with a dense vector. It panics on
// dimension mismatch.
func (s *Sparse) DotDense(d []float64) float64 {
	if len(d) != s.Dim {
		panic(fmt.Sprintf("linalg: Sparse.DotDense dimension mismatch %d vs %d", s.Dim, len(d)))
	}
	sum := 0.0
	for k, i := range s.Idx {
		sum += s.Val[k] * d[i]
	}
	return sum
}

// AxpyDense computes d += alpha * s into the dense vector d. It panics on
// dimension mismatch.
func (s *Sparse) AxpyDense(alpha float64, d []float64) {
	if len(d) != s.Dim {
		panic(fmt.Sprintf("linalg: Sparse.AxpyDense dimension mismatch %d vs %d", s.Dim, len(d)))
	}
	if alpha == 0 {
		return
	}
	for k, i := range s.Idx {
		d[i] += alpha * s.Val[k]
	}
}

// DotSparse returns the inner product with another sparse vector via an
// ordered merge. It panics on dimension mismatch.
func (s *Sparse) DotSparse(o *Sparse) float64 {
	if s.Dim != o.Dim {
		panic(fmt.Sprintf("linalg: Sparse.DotSparse dimension mismatch %d vs %d", s.Dim, o.Dim))
	}
	sum := 0.0
	a, b := 0, 0
	for a < len(s.Idx) && b < len(o.Idx) {
		switch {
		case s.Idx[a] == o.Idx[b]:
			sum += s.Val[a] * o.Val[b]
			a++
			b++
		case s.Idx[a] < o.Idx[b]:
			a++
		default:
			b++
		}
	}
	return sum
}

// Norm2 returns the Euclidean norm.
func (s *Sparse) Norm2() float64 {
	sum := 0.0
	for _, v := range s.Val {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Scale returns a new Sparse equal to alpha * s. Scaling by zero returns an
// empty vector of the same dimension.
func (s *Sparse) Scale(alpha float64) *Sparse {
	if alpha == 0 {
		return &Sparse{Dim: s.Dim}
	}
	out := &Sparse{
		Idx: append([]int(nil), s.Idx...),
		Val: make([]float64, len(s.Val)),
		Dim: s.Dim,
	}
	for k, v := range s.Val {
		out.Val[k] = alpha * v
	}
	return out
}

// CosineSparse returns the cosine similarity between two sparse vectors,
// or 0 when either is all zeros.
func (s *Sparse) CosineSparse(o *Sparse) float64 {
	ns, no := s.Norm2(), o.Norm2()
	if ns == 0 || no == 0 {
		return 0
	}
	return s.DotSparse(o) / (ns * no)
}

// SqDistDense returns the squared Euclidean distance to a dense vector,
// computed in O(nnz + |d|) without materializing s.
func (s *Sparse) SqDistDense(d []float64) float64 {
	if len(d) != s.Dim {
		panic(fmt.Sprintf("linalg: Sparse.SqDistDense dimension mismatch %d vs %d", s.Dim, len(d)))
	}
	// ||s-d||^2 = ||d||^2 - 2*s·d + ||s||^2
	nd := 0.0
	for _, v := range d {
		nd += v * v
	}
	ns := 0.0
	for _, v := range s.Val {
		ns += v * v
	}
	dist := nd - 2*s.DotDense(d) + ns
	if dist < 0 { // floating-point cancellation
		return 0
	}
	return dist
}
