// Package linalg provides the small dense- and sparse-vector algebra that
// the learners and the indexing layer are built on.
//
// Everything here is deliberately allocation-conscious: the Zombie inner
// loop performs one learner update per raw input processed, so the hot
// operations (Dot, Axpy, Scale) write into caller-provided storage and
// never allocate. The package has no dependencies beyond math.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if the lengths
// differ, since a silent truncation would corrupt a model.
//
// The loop is 4-way unrolled into a SINGLE sequential accumulator: the
// additions happen in exactly the same order as the plain range loop, so
// the result is bit-identical — splitting into partial sums would
// reassociate floating-point adds and silently change every committed
// curve.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)] // hoist the bounds check out of the loop
	s := 0.0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha * x in place. It panics on length mismatch.
// Element-wise, so unrolling cannot reassociate anything.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	y = y[:len(x)] // hoist the bounds check out of the loop
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes y += x in place. It panics on length mismatch.
func Add(x, y []float64) { Axpy(1, x, y) }

// Sub computes y -= x in place. It panics on length mismatch.
func Sub(x, y []float64) { Axpy(-1, x, y) }

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// SqDist returns the squared Euclidean distance between a and b. It panics
// on length mismatch. This is the k-means hot path. Like Dot, the unroll
// keeps one sequential accumulator so the sum order (and therefore the
// clustering, and every committed grouping) is unchanged.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SqDist length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)] // hoist the bounds check out of the loop
	s := 0.0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Cosine returns the cosine similarity of a and b, or 0 when either vector
// is all zeros. It panics on length mismatch.
func Cosine(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		// Dot still validates lengths for the zero case.
		_ = Dot(a, b)
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// ArgMax returns the index of the largest element, breaking ties toward the
// lower index. It panics on an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("linalg: ArgMax on empty slice")
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element, breaking ties toward
// the lower index. It panics on an empty slice.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		panic("linalg: ArgMin on empty slice")
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] < x[best] {
			best = i
		}
	}
	return best
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Normalize scales x in place to unit Euclidean norm. A zero vector is left
// unchanged. It returns the original norm.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n > 0 {
		Scale(1/n, x)
	}
	return n
}

// Softmax writes the softmax of logits into out (which may alias logits)
// using the max-shift trick for numerical stability. It panics on length
// mismatch or empty input.
func Softmax(logits, out []float64) {
	if len(logits) == 0 {
		panic("linalg: Softmax on empty slice")
	}
	if len(logits) != len(out) {
		panic(fmt.Sprintf("linalg: Softmax length mismatch %d vs %d", len(logits), len(out)))
	}
	max := logits[ArgMax(logits)]
	total := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		out[i] = e
		total += e
	}
	for i := range out {
		out[i] /= total
	}
}

// Sigmoid returns 1/(1+exp(-x)) computed stably for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
