// Package linalg provides the small dense- and sparse-vector algebra that
// the learners and the indexing layer are built on.
//
// Everything here is deliberately allocation-conscious: the Zombie inner
// loop performs one learner update per raw input processed, so the hot
// operations (Dot, Axpy, Scale) write into caller-provided storage and
// never allocate. The package has no dependencies beyond math.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if the lengths
// differ, since a silent truncation would corrupt a model.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha * x in place. It panics on length mismatch.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes y += x in place. It panics on length mismatch.
func Add(x, y []float64) { Axpy(1, x, y) }

// Sub computes y -= x in place. It panics on length mismatch.
func Sub(x, y []float64) { Axpy(-1, x, y) }

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// SqDist returns the squared Euclidean distance between a and b. It panics
// on length mismatch. This is the k-means hot path.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SqDist length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Cosine returns the cosine similarity of a and b, or 0 when either vector
// is all zeros. It panics on length mismatch.
func Cosine(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		// Dot still validates lengths for the zero case.
		_ = Dot(a, b)
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// ArgMax returns the index of the largest element, breaking ties toward the
// lower index. It panics on an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("linalg: ArgMax on empty slice")
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element, breaking ties toward
// the lower index. It panics on an empty slice.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		panic("linalg: ArgMin on empty slice")
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] < x[best] {
			best = i
		}
	}
	return best
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Normalize scales x in place to unit Euclidean norm. A zero vector is left
// unchanged. It returns the original norm.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n > 0 {
		Scale(1/n, x)
	}
	return n
}

// Softmax writes the softmax of logits into out (which may alias logits)
// using the max-shift trick for numerical stability. It panics on length
// mismatch or empty input.
func Softmax(logits, out []float64) {
	if len(logits) == 0 {
		panic("linalg: Softmax on empty slice")
	}
	if len(logits) != len(out) {
		panic(fmt.Sprintf("linalg: Softmax length mismatch %d vs %d", len(logits), len(out)))
	}
	max := logits[ArgMax(logits)]
	total := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		out[i] = e
		total += e
	}
	for i := range out {
		out[i] /= total
	}
}

// Sigmoid returns 1/(1+exp(-x)) computed stably for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
