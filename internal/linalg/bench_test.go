package linalg

import "testing"

// benchVecs builds two deterministic dense vectors at the dimensionality
// the learners actually use (LogisticSGD weights over hashed wiki text).
func benchVecs(dim int) ([]float64, []float64) {
	a := make([]float64, dim)
	b := make([]float64, dim)
	for i := range a {
		a[i] = float64(i%17) * 0.25
		b[i] = float64((i+5)%13) * 0.5
	}
	return a, b
}

var sinkFloat float64

func BenchmarkDot(b *testing.B) {
	x, y := benchVecs(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = Dot(x, y)
	}
}

func BenchmarkAxpy(b *testing.B) {
	x, y := benchVecs(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(0.001, x, y)
	}
}

func BenchmarkSqDist(b *testing.B) {
	x, y := benchVecs(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = SqDist(x, y)
	}
}
