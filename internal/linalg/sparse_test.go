package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSparseInvariants(t *testing.T) {
	s := NewSparse(10, []int{5, 2, 5, 8}, []float64{1, 2, 3, 0})
	// zero dropped, duplicates merged, indices sorted
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", s.NNZ())
	}
	if s.Idx[0] != 2 || s.Idx[1] != 5 {
		t.Fatalf("indices not sorted: %v", s.Idx)
	}
	if s.At(5) != 4 {
		t.Fatalf("duplicate merge: At(5) = %v, want 4", s.At(5))
	}
	if s.At(0) != 0 {
		t.Fatalf("missing index should be 0, got %v", s.At(0))
	}
	mustPanic(t, func() { NewSparse(10, []int{10}, []float64{1}) })
	mustPanic(t, func() { NewSparse(10, []int{-1}, []float64{1}) })
	mustPanic(t, func() { NewSparse(10, []int{1, 2}, []float64{1}) })
	mustPanic(t, func() { s.At(10) })
}

func TestNewSparseCancellation(t *testing.T) {
	s := NewSparse(4, []int{1, 1}, []float64{2, -2})
	if s.NNZ() != 0 {
		t.Fatalf("cancelled duplicates should be removed, NNZ=%d", s.NNZ())
	}
}

func TestSparseFromMap(t *testing.T) {
	s := SparseFromMap(6, map[int]float64{3: 1.5, 1: -2, 4: 0})
	if s.NNZ() != 2 || s.At(3) != 1.5 || s.At(1) != -2 {
		t.Fatalf("SparseFromMap wrong: idx=%v val=%v", s.Idx, s.Val)
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(func(vals [12]float64) bool {
		d := make([]float64, 12)
		m := map[int]float64{}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			v = math.Mod(v, 100)
			d[i] = v
			if v != 0 {
				m[i] = v
			}
		}
		s := SparseFromMap(12, m)
		back := s.Dense()
		for i := range d {
			if back[i] != d[i] {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSparseDotsAgree(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(func(a, b [10]float64) bool {
		for i := range a {
			if bad(a[i]) || bad(b[i]) {
				return true
			}
			a[i] = math.Mod(a[i], 10)
			b[i] = math.Mod(b[i], 10)
		}
		sa := fromDense(a[:])
		sb := fromDense(b[:])
		want := Dot(a[:], b[:])
		if !close6(sa.DotDense(b[:]), want) {
			return false
		}
		if !close6(sb.DotDense(a[:]), want) {
			return false
		}
		return close6(sa.DotSparse(sb), want)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSparseAxpyDense(t *testing.T) {
	d := []float64{1, 1, 1, 1}
	s := NewSparse(4, []int{0, 3}, []float64{2, -1})
	s.AxpyDense(3, d)
	want := []float64{7, 1, 1, -2}
	for i := range d {
		if d[i] != want[i] {
			t.Fatalf("AxpyDense[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	s.AxpyDense(0, d) // no-op
	if d[0] != 7 {
		t.Fatal("alpha=0 should not modify")
	}
	mustPanic(t, func() { s.AxpyDense(1, []float64{1}) })
}

func TestSparseScale(t *testing.T) {
	s := NewSparse(4, []int{1, 2}, []float64{3, 4})
	sc := s.Scale(2)
	if sc.At(1) != 6 || sc.At(2) != 8 {
		t.Fatalf("Scale wrong: %v", sc.Val)
	}
	if s.At(1) != 3 {
		t.Fatal("Scale mutated receiver")
	}
	z := s.Scale(0)
	if z.NNZ() != 0 || z.Dim != 4 {
		t.Fatalf("Scale(0) should be empty with same dim: nnz=%d dim=%d", z.NNZ(), z.Dim)
	}
}

func TestSparseNorm2AndCosine(t *testing.T) {
	s := NewSparse(5, []int{0, 1}, []float64{3, 4})
	if !almostEq(s.Norm2(), 5) {
		t.Fatalf("Norm2 = %v", s.Norm2())
	}
	o := NewSparse(5, []int{0, 1}, []float64{3, 4})
	if !almostEq(s.CosineSparse(o), 1) {
		t.Fatalf("self cosine = %v", s.CosineSparse(o))
	}
	empty := &Sparse{Dim: 5}
	if s.CosineSparse(empty) != 0 {
		t.Fatal("cosine with zero vector should be 0")
	}
}

func TestSparseSqDistDense(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(func(a, b [9]float64) bool {
		for i := range a {
			if bad(a[i]) || bad(b[i]) {
				return true
			}
			a[i] = math.Mod(a[i], 10)
			b[i] = math.Mod(b[i], 10)
		}
		s := fromDense(a[:])
		want := SqDist(a[:], b[:])
		return close6(s.SqDistDense(b[:]), want)
	}, cfg); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, func() { (&Sparse{Dim: 3}).SqDistDense([]float64{1}) })
}

func TestSparseDimMismatchPanics(t *testing.T) {
	a := NewSparse(3, []int{0}, []float64{1})
	b := NewSparse(4, []int{0}, []float64{1})
	mustPanic(t, func() { a.DotSparse(b) })
	mustPanic(t, func() { a.DotDense([]float64{1, 2}) })
}

func fromDense(d []float64) *Sparse {
	m := map[int]float64{}
	for i, v := range d {
		if v != 0 {
			m[i] = v
		}
	}
	return SparseFromMap(len(d), m)
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

func close6(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}
