package learner

import (
	"testing"

	"zombie/internal/rng"
)

func TestKFoldOnSeparableData(t *testing.T) {
	r := rng.New(800)
	exs := linearlySeparable(300, r.Split("data"))
	res, err := KFold(exs, 5, func() Model {
		return NewLogisticSGD(2, 0.5, 0, ConstantLR)
	}, MetricAccuracy, 1, r.Split("cv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldQuality) != 5 {
		t.Fatalf("folds = %d", len(res.FoldQuality))
	}
	if res.Mean < 0.9 {
		t.Fatalf("CV mean accuracy %.3f on separable data", res.Mean)
	}
	if res.Std < 0 || res.Std > 0.2 {
		t.Fatalf("CV std %.3f implausible", res.Std)
	}
	// Every example appears in exactly one test fold: fold sizes sum to n.
	total := 0
	for fold := 0; fold < 5; fold++ {
		lo := fold * 300 / 5
		hi := (fold + 1) * 300 / 5
		total += hi - lo
	}
	if total != 300 {
		t.Fatalf("fold partition covers %d of 300", total)
	}
}

func TestKFoldDeterministic(t *testing.T) {
	exs := linearlySeparable(100, rng.New(801))
	run := func() float64 {
		res, err := KFold(exs, 4, func() Model {
			return NewGaussianNB(2, 2, 1e-3)
		}, MetricAccuracy, 1, rng.New(802))
		if err != nil {
			t.Fatal(err)
		}
		return res.Mean
	}
	if run() != run() {
		t.Fatal("KFold not deterministic with a fixed seed")
	}
}

func TestKFoldDoesNotMutateInput(t *testing.T) {
	exs := linearlySeparable(50, rng.New(803))
	first := exs[0].Features.At(0)
	if _, err := KFold(exs, 5, func() Model {
		return NewPerceptron(2, 2)
	}, MetricAccuracy, 1, rng.New(804)); err != nil {
		t.Fatal(err)
	}
	if exs[0].Features.At(0) != first {
		t.Fatal("KFold reordered the caller's slice")
	}
}

func TestKFoldValidation(t *testing.T) {
	exs := linearlySeparable(10, rng.New(805))
	nm := func() Model { return NewPerceptron(2, 2) }
	if _, err := KFold(exs, 1, nm, MetricAccuracy, 1, rng.New(1)); err == nil {
		t.Fatal("k=1 should fail")
	}
	if _, err := KFold(exs[:3], 5, nm, MetricAccuracy, 1, rng.New(1)); err == nil {
		t.Fatal("fewer examples than folds should fail")
	}
	if _, err := KFold(exs, 5, nil, MetricAccuracy, 1, rng.New(1)); err == nil {
		t.Fatal("nil factory should fail")
	}
}
