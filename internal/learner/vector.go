// Package learner is the machine-learning substrate under the Zombie
// engine. The paper's prototype delegates model training to scikit-learn;
// Go has no equivalent standard library, so this package implements the
// learners Zombie needs from scratch: incremental linear models (logistic
// and softmax SGD, perceptron, passive-aggressive, linear regression),
// naive Bayes (multinomial and Gaussian), k-nearest-neighbors, a small
// ridge solver, and the metrics and holdout evaluation the reward
// functions and learning curves are computed from.
//
// Everything is incremental: Zombie feeds the learner exactly one example
// per raw input processed, so every model implements PartialFit and keeps
// its state updatable in O(features) per example.
package learner

import (
	"fmt"

	"zombie/internal/linalg"
)

// FeatureVector is a feature vector that is either dense or sparse.
// Feature code over text produces hashed sparse vectors; numeric tasks
// (audio features, image descriptors) produce dense ones. Learners accept
// both through this type without copying.
type FeatureVector struct {
	dense  []float64
	sparse *linalg.Sparse
	dim    int
}

// DenseVec wraps a dense feature slice. The slice is not copied; callers
// must not mutate it afterwards.
func DenseVec(x []float64) FeatureVector {
	return FeatureVector{dense: x, dim: len(x)}
}

// SparseVec wraps a sparse vector. The vector is not copied.
func SparseVec(s *linalg.Sparse) FeatureVector {
	if s == nil {
		panic("learner: SparseVec(nil)")
	}
	return FeatureVector{sparse: s, dim: s.Dim}
}

// Dim returns the dimensionality of the vector.
func (v FeatureVector) Dim() int { return v.dim }

// IsZero reports whether the vector was never initialized (no backing
// storage), as opposed to an all-zero vector of positive dimension.
func (v FeatureVector) IsZero() bool { return v.dense == nil && v.sparse == nil }

// IsSparse reports whether the vector has a sparse backing store.
func (v FeatureVector) IsSparse() bool { return v.sparse != nil }

// At returns element i. It panics when i is out of range.
func (v FeatureVector) At(i int) float64 {
	if v.sparse != nil {
		return v.sparse.At(i)
	}
	if i < 0 || i >= len(v.dense) {
		panic(fmt.Sprintf("learner: FeatureVector.At index %d out of range [0,%d)", i, len(v.dense)))
	}
	return v.dense[i]
}

// Dot returns the inner product with a dense weight vector. It panics on
// dimension mismatch.
func (v FeatureVector) Dot(w []float64) float64 {
	if v.sparse != nil {
		return v.sparse.DotDense(w)
	}
	return linalg.Dot(v.dense, w)
}

// Axpy computes w += alpha * v into the dense weight vector w. It panics
// on dimension mismatch. This is the SGD hot path; the sparse form touches
// only the non-zero coordinates.
func (v FeatureVector) Axpy(alpha float64, w []float64) {
	if v.sparse != nil {
		v.sparse.AxpyDense(alpha, w)
		return
	}
	linalg.Axpy(alpha, v.dense, w)
}

// Dense materializes the vector as a new dense slice.
func (v FeatureVector) Dense() []float64 {
	if v.sparse != nil {
		return v.sparse.Dense()
	}
	return linalg.Clone(v.dense)
}

// NNZ returns the number of non-zero coordinates (exact for sparse,
// counted for dense).
func (v FeatureVector) NNZ() int {
	if v.sparse != nil {
		return v.sparse.NNZ()
	}
	n := 0
	for _, x := range v.dense {
		if x != 0 {
			n++
		}
	}
	return n
}

// ForEachNonZero calls f(i, x) for every non-zero coordinate x at index i,
// in increasing index order. For sparse vectors this touches only stored
// entries, which keeps count-based learners O(nnz) per example.
func (v FeatureVector) ForEachNonZero(f func(i int, x float64)) {
	if v.sparse != nil {
		for k, i := range v.sparse.Idx {
			f(i, v.sparse.Val[k])
		}
		return
	}
	for i, x := range v.dense {
		if x != 0 {
			f(i, x)
		}
	}
}

// Norm2Sq returns the squared Euclidean norm of the vector.
func (v FeatureVector) Norm2Sq() float64 {
	if v.sparse != nil {
		n := v.sparse.Norm2()
		return n * n
	}
	n := linalg.Norm2(v.dense)
	return n * n
}

// SqDist returns the squared Euclidean distance to another vector of the
// same dimension. Used by k-NN. It panics on dimension mismatch.
func (v FeatureVector) SqDist(o FeatureVector) float64 {
	switch {
	case v.sparse == nil && o.sparse == nil:
		return linalg.SqDist(v.dense, o.dense)
	case v.sparse != nil && o.sparse == nil:
		return v.sparse.SqDistDense(o.dense)
	case v.sparse == nil && o.sparse != nil:
		return o.sparse.SqDistDense(v.dense)
	default:
		// ||a||² - 2a·b + ||b||²
		na, nb := v.sparse.Norm2(), o.sparse.Norm2()
		d := na*na - 2*v.sparse.DotSparse(o.sparse) + nb*nb
		if d < 0 {
			return 0
		}
		return d
	}
}

// Example is one labeled training or evaluation example produced by a
// feature function. Class carries the classification label; Target carries
// the regression target. Which one is meaningful depends on the task.
type Example struct {
	Features FeatureVector
	Class    int
	Target   float64
}

// checkDim panics with a descriptive message when an example's
// dimensionality does not match the model's.
func checkDim(modelDim int, v FeatureVector, model string) {
	if v.Dim() != modelDim {
		panic(fmt.Sprintf("learner: %s built for dim %d got vector of dim %d", model, modelDim, v.Dim()))
	}
}

// checkClass panics when a class label is outside the model's range.
func checkClass(numClasses, class int, model string) {
	if class < 0 || class >= numClasses {
		panic(fmt.Sprintf("learner: %s built for %d classes got class %d", model, numClasses, class))
	}
}

// Model is the minimal contract the Zombie engine needs from any learner.
type Model interface {
	// PartialFit folds a single example into the model.
	PartialFit(ex Example)
	// Seen returns how many examples the model has absorbed.
	Seen() int
	// Reset restores the model to its untrained state.
	Reset()
}

// Classifier predicts a discrete class.
type Classifier interface {
	Model
	// PredictClass returns the most likely class for v.
	PredictClass(v FeatureVector) int
	// NumClasses returns the number of classes the model was built with.
	NumClasses() int
}

// BufferedClassifier is a Classifier whose class scoring can run through
// a caller-provided buffer instead of allocating one per prediction — the
// holdout evaluator's hot path calls PredictClass once per holdout example
// per curve point, so the per-call []float64 dominates evaluation allocs
// for the naive Bayes families. PredictClassInto must return exactly what
// PredictClass returns; buf needs len >= NumClasses() and its contents on
// entry are irrelevant (every class score is overwritten).
type BufferedClassifier interface {
	Classifier
	// PredictClassInto returns the most likely class for v, using buf as
	// the class-score scratch.
	PredictClassInto(v FeatureVector, buf []float64) int
}

// ProbClassifier additionally exposes per-class probabilities.
type ProbClassifier interface {
	Classifier
	// Proba returns a probability distribution over classes for v.
	Proba(v FeatureVector) []float64
}

// Regressor predicts a real-valued target.
type Regressor interface {
	Model
	// Predict returns the predicted target for v.
	Predict(v FeatureVector) float64
}

// ConcurrentPredictor marks models whose prediction methods (PredictClass,
// Predict, Proba) are read-only and therefore safe to call from many
// goroutines at once while training is paused. Models that reuse scratch
// buffers across calls (Perceptron, AveragedPerceptron, SoftmaxSGD) or
// refit lazily at prediction time (DecisionTree, RidgeClosed) must not
// implement it; Holdout.QualityParallel falls back to the sequential path
// for them.
type ConcurrentPredictor interface {
	// ConcurrentPredictable is a marker with no behavior.
	ConcurrentPredictable()
}

// OrderInsensitive marks models whose fitted state after PartialFit over a
// set of examples does not depend on the order the examples arrived in
// (beyond floating-point accumulation order). Count- and moment-based
// learners (the naive Bayes families) qualify; SGD-style learners, KNN
// (FIFO eviction, insertion-order tie-breaks), and trees do not. The
// engine's amortized set-based evaluation relies on this property and
// falls back to from-scratch retraining for models that do not implement
// it.
type OrderInsensitive interface {
	// OrderInsensitiveFit is a marker with no behavior.
	OrderInsensitiveFit()
}
