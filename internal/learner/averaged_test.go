package learner

import (
	"testing"

	"zombie/internal/rng"
)

func TestAveragedPerceptronLearnsSeparable(t *testing.T) {
	r := rng.New(950)
	train := linearlySeparable(400, r.Split("train"))
	test := linearlySeparable(200, r.Split("test"))
	m := NewAveragedPerceptron(2, 2)
	trainAll(m, train, 3)
	if acc := classifierAccuracy(m, test); acc < 0.95 {
		t.Fatalf("accuracy %.3f on separable data", acc)
	}
}

func TestAveragedPerceptronMoreStableThanPlain(t *testing.T) {
	// On noisy data, the averaged predictor's accuracy varies less across
	// stream suffixes than the plain perceptron's (whose hypothesis jumps
	// with every late mistake). We measure accuracy after each of several
	// extra noisy examples and compare variance.
	r := rng.New(951)
	base := linearlySeparable(400, r.Split("train"))
	test := linearlySeparable(300, r.Split("test"))
	noisy := linearlySeparable(60, r.Split("noise"))
	for i := range noisy {
		if r.Bernoulli(0.35) {
			noisy[i].Class = 1 - noisy[i].Class // label noise
		}
	}
	variance := func(m Classifier) float64 {
		for _, ex := range base {
			m.(Model).PartialFit(ex)
		}
		var accs []float64
		for _, ex := range noisy {
			m.(Model).PartialFit(ex)
			accs = append(accs, classifierAccuracy(m, test))
		}
		mean := 0.0
		for _, a := range accs {
			mean += a
		}
		mean /= float64(len(accs))
		v := 0.0
		for _, a := range accs {
			v += (a - mean) * (a - mean)
		}
		return v / float64(len(accs))
	}
	plainVar := variance(NewPerceptron(2, 2))
	avgVar := variance(NewAveragedPerceptron(2, 2))
	if avgVar > plainVar {
		t.Fatalf("averaged perceptron less stable than plain: %.6f vs %.6f", avgVar, plainVar)
	}
}

func TestAveragedPerceptronMatchesPlainOnMistakeCounts(t *testing.T) {
	// The averaged model's *updates* are identical to the plain
	// perceptron's (same mistake-driven rule); only prediction differs.
	r := rng.New(952)
	exs := linearlySeparable(200, r)
	plain := NewPerceptron(2, 2)
	avg := NewAveragedPerceptron(2, 2)
	for _, ex := range exs {
		plain.PartialFit(ex)
		avg.PartialFit(ex)
	}
	// Current (non-averaged) weights must coincide.
	for c := range plain.w {
		for d := range plain.w[c] {
			if plain.w[c][d] != avg.w[c][d] {
				t.Fatalf("raw weights diverged at class %d dim %d", c, d)
			}
		}
		if plain.bias[c] != avg.bias[c] {
			t.Fatalf("raw bias diverged at class %d", c)
		}
	}
}

func TestAveragedPerceptronResetAndValidation(t *testing.T) {
	m := NewAveragedPerceptron(2, 3)
	if m.NumClasses() != 3 {
		t.Fatal("NumClasses wrong")
	}
	// Untrained prediction is class 0 by convention.
	if m.PredictClass(DenseVec([]float64{1, 1})) != 0 {
		t.Fatal("untrained prediction should be 0")
	}
	m.PartialFit(Example{Features: DenseVec([]float64{1, 0}), Class: 2})
	if m.Seen() != 1 {
		t.Fatal("Seen wrong")
	}
	m.Reset()
	if m.Seen() != 0 {
		t.Fatal("Reset failed")
	}
	mustPanic(t, "dim", func() { NewAveragedPerceptron(0, 2) })
	mustPanic(t, "classes", func() { NewAveragedPerceptron(2, 1) })
	mustPanic(t, "bad class", func() {
		m.PartialFit(Example{Features: DenseVec([]float64{1, 0}), Class: 5})
	})
	mustPanic(t, "bad dim", func() {
		m.PartialFit(Example{Features: DenseVec([]float64{1}), Class: 0})
	})
}
