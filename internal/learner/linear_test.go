package learner

import (
	"math"
	"testing"

	"zombie/internal/rng"
)

// linearlySeparable builds a 2-D binary problem: class 1 iff x0+x1 > 0,
// with a comfortable margin.
func linearlySeparable(n int, r *rng.RNG) []Example {
	out := make([]Example, n)
	for i := range out {
		x := []float64{r.Range(-1, 1), r.Range(-1, 1)}
		cls := 0
		if x[0]+x[1] > 0 {
			cls = 1
		}
		// Push points away from the boundary for a clean margin.
		shift := 0.3
		if cls == 1 {
			x[0] += shift
			x[1] += shift
		} else {
			x[0] -= shift
			x[1] -= shift
		}
		out[i] = Example{Features: DenseVec(x), Class: cls}
	}
	return out
}

func trainAll(m Model, exs []Example, epochs int) {
	for e := 0; e < epochs; e++ {
		for _, ex := range exs {
			m.PartialFit(ex)
		}
	}
}

func classifierAccuracy(c Classifier, exs []Example) float64 {
	correct := 0
	for _, ex := range exs {
		if c.PredictClass(ex.Features) == ex.Class {
			correct++
		}
	}
	return float64(correct) / float64(len(exs))
}

func TestBinaryClassifiersLearnSeparableProblem(t *testing.T) {
	r := rng.New(1)
	train := linearlySeparable(400, r.Split("train"))
	test := linearlySeparable(200, r.Split("test"))
	for _, tc := range []struct {
		name string
		m    Classifier
	}{
		{"logistic", NewLogisticSGD(2, 0.5, 0, ConstantLR)},
		{"logistic-l2", NewLogisticSGD(2, 0.5, 0.001, ConstantLR)},
		{"logistic-inv", NewLogisticSGD(2, 1.0, 0, InvScalingLR)},
		{"softmax", NewSoftmaxSGD(2, 2, 0.5, 0, ConstantLR)},
		{"perceptron", NewPerceptron(2, 2)},
		{"pa", NewPassiveAggressive(2, 1)},
	} {
		trainAll(tc.m, train, 3)
		if acc := classifierAccuracy(tc.m, test); acc < 0.95 {
			t.Errorf("%s: accuracy %.3f < 0.95 on separable data", tc.name, acc)
		}
		if tc.m.Seen() != 1200 {
			t.Errorf("%s: Seen = %d, want 1200", tc.name, tc.m.Seen())
		}
	}
}

func TestSoftmaxMulticlass(t *testing.T) {
	// Three Gaussian blobs in 2-D.
	r := rng.New(2)
	centers := [][]float64{{2, 0}, {-2, 0}, {0, 2.5}}
	gen := func(n int, rr *rng.RNG) []Example {
		out := make([]Example, n)
		for i := range out {
			c := i % 3
			out[i] = Example{
				Features: DenseVec([]float64{
					rr.Gaussian(centers[c][0], 0.4),
					rr.Gaussian(centers[c][1], 0.4),
				}),
				Class: c,
			}
		}
		return out
	}
	train := gen(600, r.Split("train"))
	test := gen(300, r.Split("test"))
	for _, tc := range []struct {
		name string
		m    Classifier
	}{
		{"softmax", NewSoftmaxSGD(2, 3, 0.3, 0, ConstantLR)},
		{"perceptron", NewPerceptron(2, 3)},
		{"gauss-nb", NewGaussianNB(2, 3, 1e-3)},
		{"knn", NewKNN(5, 3, 0)},
	} {
		trainAll(tc.m, train, 2)
		if acc := classifierAccuracy(tc.m, test); acc < 0.9 {
			t.Errorf("%s: accuracy %.3f < 0.9 on 3 blobs", tc.name, acc)
		}
	}
}

func TestLogisticProbaSumsToOne(t *testing.T) {
	m := NewLogisticSGD(3, 0.1, 0, ConstantLR)
	m.PartialFit(Example{Features: DenseVec([]float64{1, 2, 3}), Class: 1})
	p := m.Proba(DenseVec([]float64{0.5, -1, 2}))
	if math.Abs(p[0]+p[1]-1) > 1e-12 {
		t.Fatalf("proba sums to %v", p[0]+p[1])
	}
}

func TestSoftmaxProbaSumsToOne(t *testing.T) {
	m := NewSoftmaxSGD(2, 4, 0.1, 0, ConstantLR)
	m.PartialFit(Example{Features: DenseVec([]float64{1, -1}), Class: 2})
	p := m.Proba(DenseVec([]float64{3, 1}))
	total := 0.0
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability %v", v)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("proba sums to %v", total)
	}
}

func TestLinearRegSGDRecoversLine(t *testing.T) {
	r := rng.New(3)
	// y = 2*x0 - 3*x1 + 1 + noise
	m := NewLinearRegSGD(2, 0.05, 0, InvScalingLR)
	for i := 0; i < 20000; i++ {
		x := []float64{r.Range(-1, 1), r.Range(-1, 1)}
		y := 2*x[0] - 3*x[1] + 1 + r.Gaussian(0, 0.01)
		m.PartialFit(Example{Features: DenseVec(x), Target: y})
	}
	for _, tc := range []struct {
		x    []float64
		want float64
	}{
		{[]float64{0, 0}, 1},
		{[]float64{1, 0}, 3},
		{[]float64{0, 1}, -2},
	} {
		if got := m.Predict(DenseVec(tc.x)); math.Abs(got-tc.want) > 0.15 {
			t.Errorf("Predict(%v) = %v, want ~%v", tc.x, got, tc.want)
		}
	}
}

func TestSGDWithSparseFeatures(t *testing.T) {
	// Sparse text-like features: token 3 implies class 1, token 7 class 0.
	m := NewLogisticSGD(16, 0.5, 0, ConstantLR)
	r := rng.New(4)
	for i := 0; i < 500; i++ {
		if r.Bernoulli(0.5) {
			m.PartialFit(Example{Features: sv(16, map[int]float64{3: 1, int(r.Intn(3)) + 10: 1}), Class: 1})
		} else {
			m.PartialFit(Example{Features: sv(16, map[int]float64{7: 1, int(r.Intn(3)) + 10: 1}), Class: 0})
		}
	}
	if m.PredictClass(sv(16, map[int]float64{3: 1})) != 1 {
		t.Fatal("positive token not learned")
	}
	if m.PredictClass(sv(16, map[int]float64{7: 1})) != 0 {
		t.Fatal("negative token not learned")
	}
}

func TestResetRestoresUntrainedState(t *testing.T) {
	exs := linearlySeparable(50, rng.New(5))
	models := []Model{
		NewLogisticSGD(2, 0.1, 0.01, ConstantLR),
		NewSoftmaxSGD(2, 2, 0.1, 0, ConstantLR),
		NewPerceptron(2, 2),
		NewPassiveAggressive(2, 1),
		NewLinearRegSGD(2, 0.1, 0, ConstantLR),
	}
	for _, m := range models {
		trainAll(m, exs, 1)
		if m.Seen() == 0 {
			t.Fatalf("%T: training did not register", m)
		}
		m.Reset()
		if m.Seen() != 0 {
			t.Errorf("%T: Seen after Reset = %d", m, m.Seen())
		}
	}
	// After reset, logistic predictions are the 0.5 coin flip.
	m := NewLogisticSGD(2, 0.1, 0, ConstantLR)
	trainAll(m, exs, 1)
	m.Reset()
	p := m.Proba(DenseVec([]float64{1, 1}))
	if p[1] != 0.5 {
		t.Errorf("reset logistic proba = %v, want 0.5", p[1])
	}
}

func TestDimAndClassValidation(t *testing.T) {
	m := NewLogisticSGD(3, 0.1, 0, ConstantLR)
	mustPanic(t, "dim", func() {
		m.PartialFit(Example{Features: DenseVec([]float64{1}), Class: 0})
	})
	mustPanic(t, "class", func() {
		m.PartialFit(Example{Features: DenseVec([]float64{1, 2, 3}), Class: 2})
	})
	mustPanic(t, "predict dim", func() { m.PredictClass(DenseVec([]float64{1})) })
	sm := NewSoftmaxSGD(2, 3, 0.1, 0, ConstantLR)
	mustPanic(t, "softmax class", func() {
		sm.PartialFit(Example{Features: DenseVec([]float64{1, 2}), Class: 3})
	})
}

func TestConstructorPanics(t *testing.T) {
	mustPanic(t, "lr", func() { NewLogisticSGD(2, 0, 0, ConstantLR) })
	mustPanic(t, "l2", func() { NewLogisticSGD(2, 0.1, -1, ConstantLR) })
	mustPanic(t, "dim", func() { NewLogisticSGD(0, 0.1, 0, ConstantLR) })
	mustPanic(t, "classes", func() { NewSoftmaxSGD(2, 1, 0.1, 0, ConstantLR) })
	mustPanic(t, "pa c", func() { NewPassiveAggressive(2, 0) })
	mustPanic(t, "perceptron", func() { NewPerceptron(0, 2) })
	mustPanic(t, "linreg", func() { NewLinearRegSGD(-1, 0.1, 0, ConstantLR) })
}

func TestL2ShrinksWeights(t *testing.T) {
	strong := NewLogisticSGD(2, 0.1, 0.1, ConstantLR)
	none := NewLogisticSGD(2, 0.1, 0, ConstantLR)
	exs := linearlySeparable(500, rng.New(6))
	trainAll(strong, exs, 3)
	trainAll(none, exs, 3)
	ns := math.Abs(strong.Weights()[0]) + math.Abs(strong.Weights()[1])
	nn := math.Abs(none.Weights()[0]) + math.Abs(none.Weights()[1])
	if ns >= nn {
		t.Fatalf("L2 should shrink weights: with=%v without=%v", ns, nn)
	}
}
