package learner

import (
	"math"
	"testing"

	"zombie/internal/linalg"
)

func sv(dim int, m map[int]float64) FeatureVector {
	return SparseVec(linalg.SparseFromMap(dim, m))
}

func TestFeatureVectorDense(t *testing.T) {
	v := DenseVec([]float64{1, 0, 3})
	if v.Dim() != 3 || v.IsSparse() || v.IsZero() {
		t.Fatal("dense wrapper state wrong")
	}
	if v.At(0) != 1 || v.At(2) != 3 {
		t.Fatal("At wrong")
	}
	if v.NNZ() != 2 {
		t.Fatalf("NNZ = %d", v.NNZ())
	}
	mustPanic(t, "At OOB", func() { v.At(3) })
}

func TestFeatureVectorSparse(t *testing.T) {
	v := sv(5, map[int]float64{1: 2, 4: -1})
	if v.Dim() != 5 || !v.IsSparse() {
		t.Fatal("sparse wrapper state wrong")
	}
	if v.At(1) != 2 || v.At(0) != 0 {
		t.Fatal("At wrong")
	}
	if v.NNZ() != 2 {
		t.Fatalf("NNZ = %d", v.NNZ())
	}
	d := v.Dense()
	if len(d) != 5 || d[4] != -1 {
		t.Fatalf("Dense = %v", d)
	}
	mustPanic(t, "nil sparse", func() { SparseVec(nil) })
}

func TestFeatureVectorDotAxpyAgree(t *testing.T) {
	w := []float64{1, 2, 3, 4}
	dense := DenseVec([]float64{1, 0, -1, 2})
	sparse := sv(4, map[int]float64{0: 1, 2: -1, 3: 2})
	if dense.Dot(w) != sparse.Dot(w) {
		t.Fatalf("dot mismatch: %v vs %v", dense.Dot(w), sparse.Dot(w))
	}
	w1 := []float64{0, 0, 0, 0}
	w2 := []float64{0, 0, 0, 0}
	dense.Axpy(2, w1)
	sparse.Axpy(2, w2)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("axpy mismatch at %d: %v vs %v", i, w1[i], w2[i])
		}
	}
}

func TestFeatureVectorForEachNonZero(t *testing.T) {
	for _, v := range []FeatureVector{
		DenseVec([]float64{0, 5, 0, -2}),
		sv(4, map[int]float64{1: 5, 3: -2}),
	} {
		gotIdx := []int{}
		gotVal := []float64{}
		v.ForEachNonZero(func(i int, x float64) {
			gotIdx = append(gotIdx, i)
			gotVal = append(gotVal, x)
		})
		if len(gotIdx) != 2 || gotIdx[0] != 1 || gotIdx[1] != 3 || gotVal[0] != 5 || gotVal[1] != -2 {
			t.Fatalf("ForEachNonZero gave %v %v", gotIdx, gotVal)
		}
	}
}

func TestFeatureVectorNorm2Sq(t *testing.T) {
	d := DenseVec([]float64{3, 4})
	s := sv(2, map[int]float64{0: 3, 1: 4})
	if math.Abs(d.Norm2Sq()-25) > 1e-12 || math.Abs(s.Norm2Sq()-25) > 1e-12 {
		t.Fatalf("Norm2Sq = %v / %v", d.Norm2Sq(), s.Norm2Sq())
	}
}

func TestFeatureVectorSqDistAllCombos(t *testing.T) {
	a := []float64{1, 2, 0, -1}
	b := []float64{0, 2, 3, 1}
	want := linalg.SqDist(a, b)
	da, db := DenseVec(a), DenseVec(b)
	sa := sv(4, map[int]float64{0: 1, 1: 2, 3: -1})
	sb := sv(4, map[int]float64{1: 2, 2: 3, 3: 1})
	for name, got := range map[string]float64{
		"dense-dense":   da.SqDist(db),
		"sparse-dense":  sa.SqDist(db),
		"dense-sparse":  da.SqDist(sb),
		"sparse-sparse": sa.SqDist(sb),
	} {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: SqDist = %v, want %v", name, got, want)
		}
	}
}

func TestFeatureVectorIsZero(t *testing.T) {
	var v FeatureVector
	if !v.IsZero() {
		t.Fatal("zero-value FeatureVector should report IsZero")
	}
	if DenseVec([]float64{}).IsZero() {
		t.Fatal("wrapped empty slice is initialized")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
