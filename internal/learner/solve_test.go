package learner

import (
	"math"
	"testing"

	"zombie/internal/rng"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1},
		{1, 3},
	}
	b := []float64{5, 10}
	x, ok := SolveLinear(a, b)
	if !ok {
		t.Fatal("solver reported singular")
	}
	// 2x+y=5, x+3y=10 -> x=1, y=3
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("x = %v", x)
	}
	// Inputs must be untouched.
	if a[0][0] != 2 || b[0] != 5 {
		t.Fatal("SolveLinear mutated inputs")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	x, ok := SolveLinear(a, []float64{2, 3})
	if !ok || math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("pivoting solve failed: %v ok=%v", x, ok)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, ok := SolveLinear(a, []float64{1, 2}); ok {
		t.Fatal("singular system reported solvable")
	}
}

func TestSolveLinearValidation(t *testing.T) {
	mustPanic(t, "empty", func() { SolveLinear(nil, nil) })
	mustPanic(t, "not square", func() { SolveLinear([][]float64{{1, 2}}, []float64{1}) })
	mustPanic(t, "b mismatch", func() { SolveLinear([][]float64{{1}}, []float64{1, 2}) })
}

func TestSolveLinearRandomSystems(t *testing.T) {
	r := rng.New(20)
	for trial := 0; trial < 50; trial++ {
		n := r.IntRange(1, 8)
		a := make([][]float64, n)
		xTrue := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.Range(-5, 5)
			}
			a[i][i] += 10 // diagonally dominant: well-conditioned
			xTrue[i] = r.Range(-3, 3)
		}
		b := make([]float64, n)
		for i := range b {
			for j := range xTrue {
				b[i] += a[i][j] * xTrue[j]
			}
		}
		x, ok := SolveLinear(a, b)
		if !ok {
			t.Fatalf("trial %d: well-conditioned system reported singular", trial)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestRidgeClosedRecoversLine(t *testing.T) {
	r := rng.New(21)
	m := NewRidgeClosed(2, 1e-6)
	for i := 0; i < 500; i++ {
		x := []float64{r.Range(-1, 1), r.Range(-1, 1)}
		y := 3*x[0] - 2*x[1] + 0.5
		m.PartialFit(Example{Features: DenseVec(x), Target: y})
	}
	w := m.Weights()
	if math.Abs(w[0]-3) > 1e-6 || math.Abs(w[1]+2) > 1e-6 || math.Abs(w[2]-0.5) > 1e-6 {
		t.Fatalf("weights = %v", w)
	}
	if got := m.Predict(DenseVec([]float64{1, 1})); math.Abs(got-1.5) > 1e-6 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestRidgeClosedRegularizationShrinks(t *testing.T) {
	r := rng.New(22)
	weak := NewRidgeClosed(1, 1e-9)
	strong := NewRidgeClosed(1, 100)
	for i := 0; i < 100; i++ {
		x := r.Range(-1, 1)
		ex := Example{Features: DenseVec([]float64{x}), Target: 5 * x}
		weak.PartialFit(ex)
		strong.PartialFit(ex)
	}
	if math.Abs(strong.Weights()[0]) >= math.Abs(weak.Weights()[0]) {
		t.Fatalf("lambda=100 weight %v not shrunk vs %v", strong.Weights()[0], weak.Weights()[0])
	}
}

func TestRidgeClosedUntrained(t *testing.T) {
	m := NewRidgeClosed(2, 1)
	// Singular normal equations: prediction falls back to zero weights.
	if got := m.Predict(DenseVec([]float64{1, 1})); got != 0 {
		t.Fatalf("untrained Predict = %v", got)
	}
	if m.Seen() != 0 {
		t.Fatal("Seen != 0")
	}
}

func TestRidgeClosedMatchesSGDOnCleanData(t *testing.T) {
	r := rng.New(23)
	ridge := NewRidgeClosed(2, 1e-9)
	sgd := NewLinearRegSGD(2, 0.05, 0, InvScalingLR)
	exs := make([]Example, 3000)
	for i := range exs {
		x := []float64{r.Range(-1, 1), r.Range(-1, 1)}
		exs[i] = Example{Features: DenseVec(x), Target: -x[0] + 2*x[1] + 3}
	}
	for _, ex := range exs {
		ridge.PartialFit(ex)
	}
	for epoch := 0; epoch < 5; epoch++ {
		for _, ex := range exs {
			sgd.PartialFit(ex)
		}
	}
	for _, probe := range [][]float64{{0, 0}, {1, -1}, {0.5, 0.5}} {
		pr := ridge.Predict(DenseVec(probe))
		ps := sgd.Predict(DenseVec(probe))
		if math.Abs(pr-ps) > 0.2 {
			t.Fatalf("ridge %v and SGD %v disagree at %v", pr, ps, probe)
		}
	}
}

func TestRidgeClosedReset(t *testing.T) {
	m := NewRidgeClosed(1, 0.1)
	m.PartialFit(Example{Features: DenseVec([]float64{1}), Target: 2})
	m.Reset()
	if m.Seen() != 0 || m.Predict(DenseVec([]float64{1})) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRidgeClosedValidation(t *testing.T) {
	mustPanic(t, "dim", func() { NewRidgeClosed(0, 1) })
	mustPanic(t, "lambda", func() { NewRidgeClosed(1, -1) })
}
