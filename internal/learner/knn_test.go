package learner

import (
	"math"
	"strings"
	"testing"
)

func TestKNNClassification(t *testing.T) {
	m := NewKNN(3, 2, 0)
	pts := []struct {
		x   []float64
		cls int
	}{
		{[]float64{0, 0}, 0}, {[]float64{0.1, 0}, 0}, {[]float64{0, 0.1}, 0},
		{[]float64{5, 5}, 1}, {[]float64{5.1, 5}, 1}, {[]float64{5, 5.1}, 1},
	}
	for _, p := range pts {
		m.PartialFit(Example{Features: DenseVec(p.x), Class: p.cls})
	}
	if m.PredictClass(DenseVec([]float64{0.05, 0.05})) != 0 {
		t.Fatal("origin cluster misclassified")
	}
	if m.PredictClass(DenseVec([]float64{4.9, 5.2})) != 1 {
		t.Fatal("far cluster misclassified")
	}
	if m.Stored() != 6 || m.Seen() != 6 {
		t.Fatalf("Stored/Seen = %d/%d", m.Stored(), m.Seen())
	}
}

func TestKNNRegression(t *testing.T) {
	m := NewKNN(2, 0, 0)
	m.PartialFit(Example{Features: DenseVec([]float64{0}), Target: 1})
	m.PartialFit(Example{Features: DenseVec([]float64{0.1}), Target: 3})
	m.PartialFit(Example{Features: DenseVec([]float64{10}), Target: 100})
	got := m.Predict(DenseVec([]float64{0.05}))
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("Predict = %v, want 2 (mean of 2 nearest)", got)
	}
}

func TestKNNFewerStoredThanK(t *testing.T) {
	m := NewKNN(5, 2, 0)
	m.PartialFit(Example{Features: DenseVec([]float64{1}), Class: 1})
	if m.PredictClass(DenseVec([]float64{0})) != 1 {
		t.Fatal("single stored example should decide the vote")
	}
}

func TestKNNBoundedMemoryFIFO(t *testing.T) {
	m := NewKNN(1, 2, 3)
	for i := 0; i < 10; i++ {
		cls := 0
		if i >= 7 {
			cls = 1 // the three newest are class 1
		}
		m.PartialFit(Example{Features: DenseVec([]float64{float64(i)}), Class: cls})
	}
	if m.Stored() != 3 {
		t.Fatalf("Stored = %d, want 3", m.Stored())
	}
	// All remaining examples are class 1; any query must return 1.
	if m.PredictClass(DenseVec([]float64{0})) != 1 {
		t.Fatal("FIFO eviction failed: old class still winning")
	}
	if m.Seen() != 10 {
		t.Fatalf("Seen = %d, want 10", m.Seen())
	}
}

func TestKNNPanics(t *testing.T) {
	mustPanic(t, "k", func() { NewKNN(0, 2, 0) })
	mustPanic(t, "classes", func() { NewKNN(1, -1, 0) })
	empty := NewKNN(1, 2, 0)
	mustPanic(t, "predict before fit", func() { empty.PredictClass(DenseVec([]float64{0})) })
	reg := NewKNN(1, 0, 0)
	reg.PartialFit(Example{Features: DenseVec([]float64{0}), Target: 1})
	mustPanic(t, "classify without classes", func() { reg.PredictClass(DenseVec([]float64{0})) })
}

func TestKNNReset(t *testing.T) {
	m := NewKNN(1, 2, 0)
	m.PartialFit(Example{Features: DenseVec([]float64{0}), Class: 0})
	m.Reset()
	if m.Stored() != 0 || m.Seen() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestKNNString(t *testing.T) {
	m := NewKNN(3, 2, 10)
	if !strings.Contains(m.String(), "k=3") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestKNNMixedSparseDense(t *testing.T) {
	m := NewKNN(1, 2, 0)
	m.PartialFit(Example{Features: sv(3, map[int]float64{0: 1}), Class: 1})
	m.PartialFit(Example{Features: DenseVec([]float64{0, 0, 5}), Class: 0})
	if m.PredictClass(DenseVec([]float64{1.1, 0, 0})) != 1 {
		t.Fatal("sparse stored example not matched")
	}
	if m.PredictClass(sv(3, map[int]float64{2: 4.5})) != 0 {
		t.Fatal("sparse query not matched to dense example")
	}
}
