package learner

import (
	"fmt"
	"math"
	"sort"
)

// ConfusionMatrix accumulates classification outcomes. Cell [t][p] counts
// examples of true class t predicted as class p.
type ConfusionMatrix struct {
	Cells [][]int64
}

// NewConfusionMatrix returns an empty numClasses×numClasses matrix.
func NewConfusionMatrix(numClasses int) *ConfusionMatrix {
	if numClasses <= 0 {
		panic("learner: ConfusionMatrix requires numClasses > 0")
	}
	m := &ConfusionMatrix{Cells: make([][]int64, numClasses)}
	for i := range m.Cells {
		m.Cells[i] = make([]int64, numClasses)
	}
	return m
}

// Observe records one (true, predicted) pair.
func (m *ConfusionMatrix) Observe(trueClass, predClass int) {
	n := len(m.Cells)
	if trueClass < 0 || trueClass >= n || predClass < 0 || predClass >= n {
		panic(fmt.Sprintf("learner: ConfusionMatrix.Observe(%d,%d) out of range [0,%d)", trueClass, predClass, n))
	}
	m.Cells[trueClass][predClass]++
}

// Merge folds other's counts into m. Counts are integers, so a merged
// matrix is identical to one accumulated sequentially in any order. It
// panics on a size mismatch.
func (m *ConfusionMatrix) Merge(other *ConfusionMatrix) {
	if len(m.Cells) != len(other.Cells) {
		panic(fmt.Sprintf("learner: ConfusionMatrix.Merge size mismatch: %d vs %d", len(m.Cells), len(other.Cells)))
	}
	for i := range m.Cells {
		for j := range m.Cells[i] {
			m.Cells[i][j] += other.Cells[i][j]
		}
	}
}

// Reset zeroes every cell so the matrix can be reused across evaluations
// without reallocating its rows.
func (m *ConfusionMatrix) Reset() {
	for _, row := range m.Cells {
		for j := range row {
			row[j] = 0
		}
	}
}

// Total returns the number of observations.
func (m *ConfusionMatrix) Total() int64 {
	var t int64
	for _, row := range m.Cells {
		for _, c := range row {
			t += c
		}
	}
	return t
}

// Accuracy returns the fraction of correct predictions, or 0 when empty.
func (m *ConfusionMatrix) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	var correct int64
	for i := range m.Cells {
		correct += m.Cells[i][i]
	}
	return float64(correct) / float64(total)
}

// PrecisionRecallF1 returns precision, recall, and F1 for one class
// treated as positive. An undefined ratio (zero denominator) is reported
// as 0, the usual information-extraction convention.
func (m *ConfusionMatrix) PrecisionRecallF1(class int) (precision, recall, f1 float64) {
	n := len(m.Cells)
	if class < 0 || class >= n {
		panic(fmt.Sprintf("learner: PrecisionRecallF1 class %d out of range [0,%d)", class, n))
	}
	var tp, fp, fn int64
	tp = m.Cells[class][class]
	for i := 0; i < n; i++ {
		if i != class {
			fp += m.Cells[i][class]
			fn += m.Cells[class][i]
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// MacroF1 returns the unweighted mean F1 across all classes.
func (m *ConfusionMatrix) MacroF1() float64 {
	total := 0.0
	for c := range m.Cells {
		_, _, f1 := m.PrecisionRecallF1(c)
		total += f1
	}
	return total / float64(len(m.Cells))
}

// RegressionMetrics accumulates regression outcomes online.
type RegressionMetrics struct {
	n         int
	sumErr2   float64
	sumAbsErr float64
	// Welford over targets for R².
	meanY float64
	m2Y   float64
}

// Observe records one (true target, prediction) pair.
func (m *RegressionMetrics) Observe(target, pred float64) {
	err := pred - target
	m.sumErr2 += err * err
	m.sumAbsErr += math.Abs(err)
	m.n++
	delta := target - m.meanY
	m.meanY += delta / float64(m.n)
	m.m2Y += delta * (target - m.meanY)
}

// Merge folds other into m using the pairwise (Chan et al.) update for the
// target variance. Merging chunk partials in a fixed order is
// deterministic, but the floating-point sums may differ from a single
// sequential accumulation in the last bits.
func (m *RegressionMetrics) Merge(other *RegressionMetrics) {
	if other.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *other
		return
	}
	n1, n2 := float64(m.n), float64(other.n)
	delta := other.meanY - m.meanY
	m.m2Y += other.m2Y + delta*delta*n1*n2/(n1+n2)
	m.meanY += delta * n2 / (n1 + n2)
	m.sumErr2 += other.sumErr2
	m.sumAbsErr += other.sumAbsErr
	m.n += other.n
}

// N returns the number of observations.
func (m *RegressionMetrics) N() int { return m.n }

// RMSE returns the root-mean-squared error, or 0 when empty.
func (m *RegressionMetrics) RMSE() float64 {
	if m.n == 0 {
		return 0
	}
	return math.Sqrt(m.sumErr2 / float64(m.n))
}

// MAE returns the mean absolute error, or 0 when empty.
func (m *RegressionMetrics) MAE() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sumAbsErr / float64(m.n)
}

// R2 returns the coefficient of determination. A constant target series
// yields 1 for a perfect fit and 0 otherwise; an empty series yields 0.
func (m *RegressionMetrics) R2() float64 {
	if m.n == 0 {
		return 0
	}
	if m.m2Y == 0 {
		if m.sumErr2 == 0 {
			return 1
		}
		return 0
	}
	return 1 - m.sumErr2/m.m2Y
}

// AUC returns the area under the ROC curve for binary labels (0/1) given
// per-example positive-class scores, computed with the rank statistic
// (equivalent to the Mann–Whitney U). Ties in score contribute half. It
// returns 0.5 when either class is absent, and panics on length mismatch.
func AUC(labels []int, scores []float64) float64 {
	if len(labels) != len(scores) {
		panic("learner: AUC length mismatch")
	}
	type pair struct {
		score float64
		label int
	}
	pairs := make([]pair, len(labels))
	var pos, neg int
	for i := range labels {
		if labels[i] != 0 && labels[i] != 1 {
			panic(fmt.Sprintf("learner: AUC label %d not binary", labels[i]))
		}
		pairs[i] = pair{scores[i], labels[i]}
		if labels[i] == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].score < pairs[j].score })
	// Assign average ranks, handling ties.
	ranks := make([]float64, len(pairs))
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].score == pairs[i].score {
			j++
		}
		avg := float64(i+j-1)/2 + 1 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	sumPosRanks := 0.0
	for i, p := range pairs {
		if p.label == 1 {
			sumPosRanks += ranks[i]
		}
	}
	u := sumPosRanks - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}
