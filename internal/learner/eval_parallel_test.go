package learner

import (
	"sync"
	"testing"

	"zombie/internal/rng"
)

// evalFixture builds a trained GaussianNB and a holdout of n examples.
func evalFixture(t testing.TB, n int) (*Holdout, Model) {
	t.Helper()
	r := rng.New(7)
	dim := 16
	examples := make([]Example, n)
	for i := range examples {
		class := i % 2
		vec := make([]float64, dim)
		for d := range vec {
			vec[d] = r.NormFloat64() + float64(class)*1.5
		}
		examples[i] = Example{Features: DenseVec(vec), Class: class}
	}
	m := NewGaussianNB(dim, 2, 1e-3)
	for _, ex := range examples[:n/2] {
		m.PartialFit(ex)
	}
	return NewHoldout(examples, MetricF1, 1), m
}

// TestQualityParallelMatchesSequential asserts bit-identical classification
// scores for every worker count — the engine's determinism depends on it.
func TestQualityParallelMatchesSequential(t *testing.T) {
	h, m := evalFixture(t, 2000)
	want := h.Quality(m)
	for _, workers := range []int{1, 2, 3, 8, 32} {
		if got := h.QualityParallel(m, workers); got != want {
			t.Fatalf("workers=%d: %v != sequential %v", workers, got, want)
		}
	}
}

// TestQualityParallelRegressionDeterministic asserts regression scores are
// identical across worker counts (chunk-order merge), and close to the
// sequential accumulation.
func TestQualityParallelRegressionDeterministic(t *testing.T) {
	r := rng.New(11)
	dim := 8
	n := 3000
	examples := make([]Example, n)
	for i := range examples {
		vec := make([]float64, dim)
		sum := 0.0
		for d := range vec {
			vec[d] = r.NormFloat64()
			sum += vec[d]
		}
		examples[i] = Example{Features: DenseVec(vec), Target: sum + 0.1*r.NormFloat64()}
	}
	m := NewLinearRegSGD(dim, 0.05, 0, InvScalingLR)
	for _, ex := range examples[:n/2] {
		m.PartialFit(ex)
	}
	h := NewHoldout(examples, MetricNegRMSE, 0)
	base := h.QualityParallel(m, 2)
	for _, workers := range []int{3, 8, 17} {
		if got := h.QualityParallel(m, workers); got != base {
			t.Fatalf("workers=%d: %v != workers=2 %v", workers, got, base)
		}
	}
	seq := h.Quality(m)
	if diff := base - seq; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("parallel %v too far from sequential %v", base, seq)
	}
}

// TestQualityParallelFallsBackForUnsafeModels: a model without the
// ConcurrentPredictor marker (Perceptron reuses a scratch score buffer)
// must still evaluate correctly — via the sequential path.
func TestQualityParallelFallsBackForUnsafeModels(t *testing.T) {
	h, _ := evalFixture(t, 1000)
	p := NewPerceptron(16, 2)
	for _, ex := range h.Examples[:200] {
		p.PartialFit(ex)
	}
	if got, want := h.QualityParallel(p, 8), h.Quality(p); got != want {
		t.Fatalf("fallback mismatch: %v != %v", got, want)
	}
}

// TestQualityParallelConcurrentCallers exercises simultaneous parallel
// evaluations of one shared model; `make race` runs this under the race
// detector, which is the real assertion.
func TestQualityParallelConcurrentCallers(t *testing.T) {
	h, m := evalFixture(t, 4000)
	want := h.Quality(m)
	var wg sync.WaitGroup
	errs := make(chan float64, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- h.QualityParallel(m, 4)
		}()
	}
	wg.Wait()
	close(errs)
	for got := range errs {
		if got != want {
			t.Fatalf("concurrent caller got %v, want %v", got, want)
		}
	}
}
