package learner

import "zombie/internal/linalg"

// AveragedPerceptron is the averaged variant of the multiclass perceptron
// (Freund & Schapire's voted perceptron in its practical form): predictions
// use the running average of all intermediate weight vectors rather than
// the final one, which substantially reduces the plain perceptron's
// sensitivity to the order and noise of its stream — a property worth
// having when the stream is a bandit's.
type AveragedPerceptron struct {
	w      [][]float64 // current weights
	u      [][]float64 // weighted accumulator for averaging
	bias   []float64
	biasU  []float64
	scores []float64
	t      float64 // 1-based update counter
	seen   int
}

// NewAveragedPerceptron returns an averaged multiclass perceptron over dim
// features.
func NewAveragedPerceptron(dim, numClasses int) *AveragedPerceptron {
	if dim <= 0 || numClasses < 2 {
		panic("learner: AveragedPerceptron requires dim > 0 and numClasses >= 2")
	}
	m := &AveragedPerceptron{
		w:      make([][]float64, numClasses),
		u:      make([][]float64, numClasses),
		bias:   make([]float64, numClasses),
		biasU:  make([]float64, numClasses),
		scores: make([]float64, numClasses),
	}
	for c := range m.w {
		m.w[c] = make([]float64, dim)
		m.u[c] = make([]float64, dim)
	}
	return m
}

// rawPredict scores with the current (non-averaged) weights.
func (m *AveragedPerceptron) rawPredict(v FeatureVector) int {
	for c := range m.w {
		m.scores[c] = v.Dot(m.w[c]) + m.bias[c]
	}
	return linalg.ArgMax(m.scores)
}

// PartialFit implements Model. The averaging trick keeps the update O(nnz):
// u accumulates t-weighted updates so that w - u/t is the average of all
// intermediate weight vectors.
func (m *AveragedPerceptron) PartialFit(ex Example) {
	checkDim(len(m.w[0]), ex.Features, "AveragedPerceptron")
	checkClass(len(m.w), ex.Class, "AveragedPerceptron")
	m.t++
	if pred := m.rawPredict(ex.Features); pred != ex.Class {
		ex.Features.Axpy(1, m.w[ex.Class])
		m.bias[ex.Class]++
		ex.Features.Axpy(-1, m.w[pred])
		m.bias[pred]--
		// t-weighted mirror updates.
		ex.Features.Axpy(m.t, m.u[ex.Class])
		m.biasU[ex.Class] += m.t
		ex.Features.Axpy(-m.t, m.u[pred])
		m.biasU[pred] -= m.t
	}
	m.seen++
}

// PredictClass implements Classifier with the averaged weights
// w_avg = w - u/t.
func (m *AveragedPerceptron) PredictClass(v FeatureVector) int {
	checkDim(len(m.w[0]), v, "AveragedPerceptron")
	if m.t == 0 {
		return 0
	}
	for c := range m.w {
		m.scores[c] = (v.Dot(m.w[c]) + m.bias[c]) - (v.Dot(m.u[c])+m.biasU[c])/m.t
	}
	return linalg.ArgMax(m.scores)
}

// NumClasses implements Classifier.
func (m *AveragedPerceptron) NumClasses() int { return len(m.w) }

// Seen implements Model.
func (m *AveragedPerceptron) Seen() int { return m.seen }

// Reset implements Model.
func (m *AveragedPerceptron) Reset() {
	for c := range m.w {
		linalg.Zero(m.w[c])
		linalg.Zero(m.u[c])
		m.bias[c] = 0
		m.biasU[c] = 0
	}
	m.t = 0
	m.seen = 0
}
