package learner

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionMatrixAccuracy(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.Observe(0, 0)
	m.Observe(0, 1)
	m.Observe(1, 1)
	m.Observe(1, 1)
	if m.Total() != 4 {
		t.Fatalf("Total = %d", m.Total())
	}
	if math.Abs(m.Accuracy()-0.75) > 1e-12 {
		t.Fatalf("Accuracy = %v", m.Accuracy())
	}
}

func TestConfusionMatrixEmptyAccuracy(t *testing.T) {
	if NewConfusionMatrix(3).Accuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	m := NewConfusionMatrix(2)
	// tp=8, fp=2, fn=4, tn=6
	for i := 0; i < 8; i++ {
		m.Observe(1, 1)
	}
	for i := 0; i < 2; i++ {
		m.Observe(0, 1)
	}
	for i := 0; i < 4; i++ {
		m.Observe(1, 0)
	}
	for i := 0; i < 6; i++ {
		m.Observe(0, 0)
	}
	p, r, f1 := m.PrecisionRecallF1(1)
	if math.Abs(p-0.8) > 1e-12 {
		t.Fatalf("precision = %v", p)
	}
	if math.Abs(r-8.0/12.0) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	wantF1 := 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0/12.0)
	if math.Abs(f1-wantF1) > 1e-12 {
		t.Fatalf("f1 = %v want %v", f1, wantF1)
	}
}

func TestPRF1UndefinedIsZero(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.Observe(0, 0) // never predicts or contains class 1
	p, r, f1 := m.PrecisionRecallF1(1)
	if p != 0 || r != 0 || f1 != 0 {
		t.Fatalf("undefined PRF should be 0: %v %v %v", p, r, f1)
	}
}

func TestMacroF1(t *testing.T) {
	m := NewConfusionMatrix(2)
	// Perfect on both classes.
	m.Observe(0, 0)
	m.Observe(1, 1)
	if math.Abs(m.MacroF1()-1) > 1e-12 {
		t.Fatalf("MacroF1 = %v", m.MacroF1())
	}
}

func TestConfusionMatrixMarginalsProperty(t *testing.T) {
	// Property: total == sum of row sums == sum of col sums, and accuracy
	// in [0,1].
	if err := quick.Check(func(obs [30]uint8) bool {
		m := NewConfusionMatrix(3)
		for _, o := range obs {
			m.Observe(int(o%3), int((o/3)%3))
		}
		var rows, cols int64
		for i := range m.Cells {
			for j := range m.Cells[i] {
				rows += m.Cells[i][j]
				cols += m.Cells[j][i]
			}
		}
		acc := m.Accuracy()
		return rows == m.Total() && cols == m.Total() && acc >= 0 && acc <= 1
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionMatrixPanics(t *testing.T) {
	mustPanic(t, "size", func() { NewConfusionMatrix(0) })
	m := NewConfusionMatrix(2)
	mustPanic(t, "observe range", func() { m.Observe(2, 0) })
	mustPanic(t, "prf range", func() { m.PrecisionRecallF1(5) })
}

func TestRegressionMetrics(t *testing.T) {
	var m RegressionMetrics
	m.Observe(1, 2) // err 1
	m.Observe(3, 1) // err -2
	m.Observe(5, 5) // err 0
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	if math.Abs(m.MAE()-1) > 1e-12 {
		t.Fatalf("MAE = %v", m.MAE())
	}
	wantRMSE := math.Sqrt(5.0 / 3.0)
	if math.Abs(m.RMSE()-wantRMSE) > 1e-12 {
		t.Fatalf("RMSE = %v", m.RMSE())
	}
	if m.R2() >= 1 {
		t.Fatalf("imperfect fit has R2 = %v", m.R2())
	}
}

func TestRegressionMetricsPerfectAndEmpty(t *testing.T) {
	var m RegressionMetrics
	if m.RMSE() != 0 || m.R2() != 0 || m.MAE() != 0 {
		t.Fatal("empty metrics should be 0")
	}
	m.Observe(2, 2)
	m.Observe(4, 4)
	if m.R2() != 1 {
		t.Fatalf("perfect R2 = %v", m.R2())
	}
	// Constant target, imperfect: 0 by convention.
	var c RegressionMetrics
	c.Observe(1, 2)
	c.Observe(1, 2)
	if c.R2() != 0 {
		t.Fatalf("constant-target R2 = %v", c.R2())
	}
}

func TestAUCPerfectAndReverse(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	if got := AUC(labels, []float64{0.1, 0.2, 0.8, 0.9}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	if got := AUC(labels, []float64{0.9, 0.8, 0.2, 0.1}); got != 0 {
		t.Fatalf("reversed AUC = %v", got)
	}
}

func TestAUCTiesAndDegenerate(t *testing.T) {
	// All scores equal: AUC 0.5.
	if got := AUC([]int{0, 1, 0, 1}, []float64{0.5, 0.5, 0.5, 0.5}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v", got)
	}
	// One class absent: defined as 0.5.
	if got := AUC([]int{1, 1}, []float64{0.1, 0.9}); got != 0.5 {
		t.Fatalf("single-class AUC = %v", got)
	}
	mustPanic(t, "length", func() { AUC([]int{1}, []float64{1, 2}) })
	mustPanic(t, "label", func() { AUC([]int{2}, []float64{1}) })
}

func TestAUCInvariantToMonotoneTransform(t *testing.T) {
	labels := []int{0, 1, 0, 1, 1, 0, 0, 1}
	scores := []float64{0.2, 0.7, 0.4, 0.6, 0.9, 0.1, 0.5, 0.8}
	a := AUC(labels, scores)
	squared := make([]float64, len(scores))
	for i, s := range scores {
		squared[i] = s * s
	}
	b := AUC(labels, squared)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("AUC not rank-invariant: %v vs %v", a, b)
	}
}
