package learner

import (
	"container/heap"
	"fmt"
)

// KNN is a k-nearest-neighbors model that serves both classification
// (majority vote) and regression (mean target). It is trivially
// incremental — PartialFit just stores the example — at the cost of O(n)
// prediction, which is why the evaluation harness prefers the linear
// learners on large holdouts. MaxStored bounds memory: once full, new
// examples overwrite the oldest (FIFO), keeping the model usable on
// unbounded streams.
type KNN struct {
	k          int
	numClasses int
	maxStored  int
	examples   []Example
	next       int // FIFO overwrite cursor once full
	seen       int
}

// NewKNN returns a k-NN model. numClasses may be 0 for regression-only
// use. maxStored <= 0 means unbounded. It panics if k <= 0.
func NewKNN(k, numClasses, maxStored int) *KNN {
	if k <= 0 {
		panic("learner: KNN requires k > 0")
	}
	if numClasses < 0 {
		panic("learner: KNN numClasses must be >= 0")
	}
	return &KNN{k: k, numClasses: numClasses, maxStored: maxStored}
}

// PartialFit implements Model.
func (m *KNN) PartialFit(ex Example) {
	if m.numClasses > 0 {
		checkClass(m.numClasses, ex.Class, "KNN")
	}
	if m.maxStored > 0 && len(m.examples) == m.maxStored {
		m.examples[m.next] = ex
		m.next = (m.next + 1) % m.maxStored
	} else {
		m.examples = append(m.examples, ex)
	}
	m.seen++
}

// Stored returns how many examples are currently retained.
func (m *KNN) Stored() int { return len(m.examples) }

// neighborHeap is a max-heap on distance so the farthest of the current
// k candidates sits at the root and is evicted first.
type neighborHeap []neighbor

type neighbor struct {
	dist float64
	idx  int
}

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// nearest returns the indices of the (up to) k nearest stored examples.
func (m *KNN) nearest(v FeatureVector) []int {
	if len(m.examples) == 0 {
		panic("learner: KNN prediction before any example")
	}
	h := make(neighborHeap, 0, m.k)
	for i := range m.examples {
		d := v.SqDist(m.examples[i].Features)
		if len(h) < m.k {
			heap.Push(&h, neighbor{d, i})
		} else if d < h[0].dist {
			h[0] = neighbor{d, i}
			heap.Fix(&h, 0)
		}
	}
	out := make([]int, len(h))
	for i, nb := range h {
		out[i] = nb.idx
	}
	return out
}

// PredictClass implements Classifier by majority vote among the k nearest
// stored examples, breaking ties toward the lower class index.
func (m *KNN) PredictClass(v FeatureVector) int {
	if m.numClasses == 0 {
		panic("learner: KNN built without classes used as classifier")
	}
	votes := make([]int, m.numClasses)
	for _, i := range m.nearest(v) {
		votes[m.examples[i].Class]++
	}
	best := 0
	for c := 1; c < len(votes); c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}

// Predict implements Regressor as the mean target of the k nearest stored
// examples.
func (m *KNN) Predict(v FeatureVector) float64 {
	idx := m.nearest(v)
	sum := 0.0
	for _, i := range idx {
		sum += m.examples[i].Target
	}
	return sum / float64(len(idx))
}

// NumClasses implements Classifier.
func (m *KNN) NumClasses() int { return m.numClasses }

// Seen implements Model.
func (m *KNN) Seen() int { return m.seen }

// ConcurrentPredictable implements ConcurrentPredictor: prediction scans
// the stored examples without mutating them.
func (m *KNN) ConcurrentPredictable() {}

// Reset implements Model.
func (m *KNN) Reset() {
	m.examples = m.examples[:0]
	m.next = 0
	m.seen = 0
}

// String describes the model configuration.
func (m *KNN) String() string {
	return fmt.Sprintf("knn(k=%d,classes=%d,stored=%d)", m.k, m.numClasses, len(m.examples))
}
