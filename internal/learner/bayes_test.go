package learner

import (
	"math"
	"testing"

	"zombie/internal/rng"
)

func TestMultinomialNBTextLike(t *testing.T) {
	// Vocabulary of 20 tokens: tokens 0-4 indicate class 0, 5-9 class 1.
	r := rng.New(10)
	m := NewMultinomialNB(20, 2, 1)
	gen := func(cls int, rr *rng.RNG) Example {
		counts := map[int]float64{}
		base := cls * 5
		for k := 0; k < 8; k++ {
			if rr.Bernoulli(0.7) {
				counts[base+rr.Intn(5)]++
			} else {
				counts[10+rr.Intn(10)]++ // shared noise tokens
			}
		}
		return Example{Features: sv(20, counts), Class: cls}
	}
	for i := 0; i < 600; i++ {
		m.PartialFit(gen(i%2, r.Split("train")))
	}
	correct := 0
	for i := 0; i < 200; i++ {
		ex := gen(i%2, r.Split("test"))
		if m.PredictClass(ex.Features) == ex.Class {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.9 {
		t.Fatalf("MultinomialNB accuracy %.3f < 0.9", acc)
	}
}

func TestMultinomialNBProba(t *testing.T) {
	m := NewMultinomialNB(4, 3, 0.5)
	m.PartialFit(Example{Features: sv(4, map[int]float64{0: 2}), Class: 0})
	m.PartialFit(Example{Features: sv(4, map[int]float64{1: 2}), Class: 1})
	m.PartialFit(Example{Features: sv(4, map[int]float64{2: 2}), Class: 2})
	p := m.Proba(sv(4, map[int]float64{0: 3}))
	total := 0.0
	for _, v := range p {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("proba sums to %v", total)
	}
	if p[0] <= p[1] || p[0] <= p[2] {
		t.Fatalf("class 0 should dominate: %v", p)
	}
}

func TestMultinomialNBIgnoresNegativeValues(t *testing.T) {
	m := NewMultinomialNB(3, 2, 1)
	m.PartialFit(Example{Features: DenseVec([]float64{-5, 1, 0}), Class: 0})
	m.PartialFit(Example{Features: DenseVec([]float64{0, 0, 1}), Class: 1})
	// Feature 0's negative count must not have been absorbed.
	if m.featCount[0][0] != 0 {
		t.Fatalf("negative value leaked into counts: %v", m.featCount[0][0])
	}
}

func TestGaussianNBSeparatesGaussians(t *testing.T) {
	r := rng.New(11)
	m := NewGaussianNB(1, 2, 1e-3)
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			m.PartialFit(Example{Features: DenseVec([]float64{r.Gaussian(-2, 0.5)}), Class: 0})
		} else {
			m.PartialFit(Example{Features: DenseVec([]float64{r.Gaussian(2, 0.5)}), Class: 1})
		}
	}
	if m.PredictClass(DenseVec([]float64{-2})) != 0 {
		t.Fatal("left blob misclassified")
	}
	if m.PredictClass(DenseVec([]float64{2})) != 1 {
		t.Fatal("right blob misclassified")
	}
	p := m.Proba(DenseVec([]float64{-2}))
	if p[0] < 0.9 {
		t.Fatalf("confidence too low: %v", p)
	}
}

func TestGaussianNBUsesVariance(t *testing.T) {
	// Same mean, very different variance: a wide class should claim
	// far-out points even though means coincide.
	r := rng.New(12)
	m := NewGaussianNB(1, 2, 1e-4)
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			m.PartialFit(Example{Features: DenseVec([]float64{r.Gaussian(0, 0.1)}), Class: 0})
		} else {
			m.PartialFit(Example{Features: DenseVec([]float64{r.Gaussian(0, 3)}), Class: 1})
		}
	}
	if m.PredictClass(DenseVec([]float64{5})) != 1 {
		t.Fatal("far point should belong to the wide class")
	}
	if m.PredictClass(DenseVec([]float64{0.01})) != 0 {
		t.Fatal("central point should belong to the narrow class")
	}
}

func TestNBResetAndSeen(t *testing.T) {
	mn := NewMultinomialNB(4, 2, 1)
	gn := NewGaussianNB(4, 2, 1e-3)
	ex := Example{Features: DenseVec([]float64{1, 0, 2, 0}), Class: 1}
	for _, m := range []Model{mn, gn} {
		m.PartialFit(ex)
		m.PartialFit(ex)
		if m.Seen() != 2 {
			t.Fatalf("%T Seen = %d", m, m.Seen())
		}
		m.Reset()
		if m.Seen() != 0 {
			t.Fatalf("%T Seen after reset = %d", m, m.Seen())
		}
	}
	if gn.classCount[1] != 0 || mn.featTotal[1] != 0 {
		t.Fatal("reset left internal counts")
	}
}

func TestNBConstructorValidation(t *testing.T) {
	mustPanic(t, "alpha", func() { NewMultinomialNB(4, 2, 0) })
	mustPanic(t, "classes", func() { NewMultinomialNB(4, 1, 1) })
	mustPanic(t, "dim", func() { NewMultinomialNB(0, 2, 1) })
	mustPanic(t, "varFloor", func() { NewGaussianNB(4, 2, 0) })
	mustPanic(t, "gnb classes", func() { NewGaussianNB(4, 0, 1e-3) })
}

func TestNBClassValidation(t *testing.T) {
	m := NewMultinomialNB(2, 2, 1)
	mustPanic(t, "class range", func() {
		m.PartialFit(Example{Features: DenseVec([]float64{1, 0}), Class: 5})
	})
	g := NewGaussianNB(2, 2, 1e-3)
	mustPanic(t, "gnb dim", func() {
		g.PartialFit(Example{Features: DenseVec([]float64{1}), Class: 0})
	})
}
