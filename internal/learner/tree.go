package learner

import (
	"fmt"
	"sort"
)

// DecisionTree is a CART-style classification tree over dense features.
// It honors the incremental Model contract the way RidgeClosed does:
// PartialFit appends the example and marks the model dirty; the first
// prediction after new data refits the tree from scratch. That makes it
// order-insensitive (the fit depends only on the example set), a good
// match for the engine's set-based evaluation, at the cost of O(n·d·log n)
// per refit — use it on modest corpora or as a session's "try a tree"
// iteration.
type DecisionTree struct {
	maxDepth   int
	minLeaf    int
	numClasses int
	dim        int
	examples   []Example
	root       *treeNode
	dirty      bool
	seen       int
}

type treeNode struct {
	// Leaf payload.
	class int
	leaf  bool
	// Split payload.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
}

// NewDecisionTree returns a tree classifier over dim features. maxDepth
// bounds tree height (>=1); minLeaf is the minimum examples per leaf
// (>=1).
func NewDecisionTree(dim, numClasses, maxDepth, minLeaf int) *DecisionTree {
	if dim <= 0 || numClasses < 2 {
		panic("learner: DecisionTree requires dim > 0 and numClasses >= 2")
	}
	if maxDepth < 1 {
		panic("learner: DecisionTree maxDepth must be >= 1")
	}
	if minLeaf < 1 {
		panic("learner: DecisionTree minLeaf must be >= 1")
	}
	return &DecisionTree{maxDepth: maxDepth, minLeaf: minLeaf, numClasses: numClasses, dim: dim}
}

// PartialFit implements Model.
func (m *DecisionTree) PartialFit(ex Example) {
	checkDim(m.dim, ex.Features, "DecisionTree")
	checkClass(m.numClasses, ex.Class, "DecisionTree")
	m.examples = append(m.examples, ex)
	m.dirty = true
	m.seen++
}

// PredictClass implements Classifier.
func (m *DecisionTree) PredictClass(v FeatureVector) int {
	checkDim(m.dim, v, "DecisionTree")
	if m.dirty {
		m.refit()
	}
	if m.root == nil {
		panic("learner: DecisionTree prediction before any example")
	}
	node := m.root
	for !node.leaf {
		if v.At(node.feature) <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.class
}

// NumClasses implements Classifier.
func (m *DecisionTree) NumClasses() int { return m.numClasses }

// Seen implements Model.
func (m *DecisionTree) Seen() int { return m.seen }

// Reset implements Model.
func (m *DecisionTree) Reset() {
	m.examples = m.examples[:0]
	m.root = nil
	m.dirty = false
	m.seen = 0
}

// Depth returns the fitted tree's depth (0 when unfitted), refitting if
// needed.
func (m *DecisionTree) Depth() int {
	if m.dirty {
		m.refit()
	}
	return depth(m.root)
}

func depth(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func (m *DecisionTree) refit() {
	idx := make([]int, len(m.examples))
	for i := range idx {
		idx[i] = i
	}
	m.root = m.build(idx, m.maxDepth)
	m.dirty = false
}

// build grows a subtree over the examples at idx.
func (m *DecisionTree) build(idx []int, depthLeft int) *treeNode {
	if len(idx) == 0 {
		return nil
	}
	counts := make([]int, m.numClasses)
	for _, i := range idx {
		counts[m.examples[i].Class]++
	}
	majority, pure := majorityClass(counts, len(idx))
	if pure || depthLeft == 0 || len(idx) < 2*m.minLeaf {
		return &treeNode{leaf: true, class: majority}
	}
	feature, threshold, ok := m.bestSplit(idx, counts)
	if !ok {
		return &treeNode{leaf: true, class: majority}
	}
	var left, right []int
	for _, i := range idx {
		if m.examples[i].Features.At(feature) <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < m.minLeaf || len(right) < m.minLeaf {
		return &treeNode{leaf: true, class: majority}
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      m.build(left, depthLeft-1),
		right:     m.build(right, depthLeft-1),
	}
}

func majorityClass(counts []int, total int) (class int, pure bool) {
	best := 0
	for c := 1; c < len(counts); c++ {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return best, counts[best] == total
}

// bestSplit scans every feature's sorted values for the split minimizing
// weighted Gini impurity. totalCounts are the class counts over idx.
func (m *DecisionTree) bestSplit(idx []int, totalCounts []int) (feature int, threshold float64, ok bool) {
	n := len(idx)
	bestGini := gini(totalCounts, n) // must strictly improve on the parent
	type fv struct {
		value float64
		class int
	}
	column := make([]fv, n)
	leftCounts := make([]int, m.numClasses)
	rightCounts := make([]int, m.numClasses)
	for f := 0; f < m.dim; f++ {
		for j, i := range idx {
			column[j] = fv{m.examples[i].Features.At(f), m.examples[i].Class}
		}
		sort.Slice(column, func(a, b int) bool { return column[a].value < column[b].value })
		for c := range leftCounts {
			leftCounts[c] = 0
			rightCounts[c] = totalCounts[c]
		}
		for j := 0; j < n-1; j++ {
			leftCounts[column[j].class]++
			rightCounts[column[j].class]--
			if column[j].value == column[j+1].value {
				continue // can't split between equal values
			}
			nl, nr := j+1, n-j-1
			if nl < m.minLeaf || nr < m.minLeaf {
				continue
			}
			g := (float64(nl)*gini(leftCounts, nl) + float64(nr)*gini(rightCounts, nr)) / float64(n)
			if g < bestGini-1e-12 {
				bestGini = g
				feature = f
				threshold = (column[j].value + column[j+1].value) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// gini returns the Gini impurity of the class counts.
func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		s -= p * p
	}
	return s
}

// String describes the model.
func (m *DecisionTree) String() string {
	return fmt.Sprintf("tree(depth<=%d,minLeaf=%d,stored=%d)", m.maxDepth, m.minLeaf, len(m.examples))
}
