package learner

import (
	"fmt"
	"math"

	"zombie/internal/rng"
)

// KFoldResult summarizes a cross-validation run.
type KFoldResult struct {
	// FoldQuality is the held-out quality of each fold, higher better.
	FoldQuality []float64
	// Mean and Std summarize the folds.
	Mean float64
	Std  float64
}

// KFold estimates a model family's quality by k-fold cross-validation:
// examples are shuffled (deterministically in r) and split into k folds;
// for each fold a fresh model from newModel is trained on the other k-1
// folds and scored on the held-out fold with the given metric. The
// engineer's outer loop uses this to validate a feature-code version on
// the examples a run collected, independent of the run's own holdout.
func KFold(examples []Example, k int, newModel func() Model,
	metric Metric, positive int, r *rng.RNG) (*KFoldResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("learner: KFold requires k >= 2, got %d", k)
	}
	if len(examples) < k {
		return nil, fmt.Errorf("learner: KFold with k=%d needs at least k examples, got %d", k, len(examples))
	}
	if newModel == nil {
		return nil, fmt.Errorf("learner: KFold requires a model factory")
	}
	shuffled := append([]Example(nil), examples...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	res := &KFoldResult{}
	for fold := 0; fold < k; fold++ {
		lo := fold * len(shuffled) / k
		hi := (fold + 1) * len(shuffled) / k
		test := shuffled[lo:hi]
		model := newModel()
		for i, ex := range shuffled {
			if i < lo || i >= hi {
				model.PartialFit(ex)
			}
		}
		holdout := NewHoldout(test, metric, positive)
		res.FoldQuality = append(res.FoldQuality, holdout.Quality(model))
	}
	sum, sum2 := 0.0, 0.0
	for _, q := range res.FoldQuality {
		sum += q
		sum2 += q * q
	}
	n := float64(len(res.FoldQuality))
	res.Mean = sum / n
	variance := sum2/n - res.Mean*res.Mean
	if variance > 0 {
		res.Std = math.Sqrt(variance)
	}
	return res, nil
}
