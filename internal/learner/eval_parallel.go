package learner

import "zombie/internal/parallel"

// evalChunkSize fixes the reduction granularity of parallel holdout
// evaluation. Chunk boundaries depend only on the example count — never on
// the worker count — so merged results are deterministic however many
// goroutines participate.
const evalChunkSize = 256

// QualityParallel is Quality with the prediction pass fanned out over up
// to workers goroutines in fixed-size chunks. It requires a model whose
// prediction path is concurrency-safe: models that do not implement
// ConcurrentPredictor fall back to the sequential Quality, as do holdouts
// too small for chunking to pay. For classification metrics the result is
// bit-identical to Quality (integer confusion counts merge exactly); for
// regression metrics it is deterministic for any worker count (partials
// merge in chunk order) but may differ from the sequential accumulation in
// the last floating-point bits.
func (h *Holdout) QualityParallel(m Model, workers int) float64 {
	if workers <= 1 || len(h.Examples) <= evalChunkSize || m.Seen() == 0 {
		return h.Quality(m)
	}
	if _, ok := m.(ConcurrentPredictor); !ok {
		return h.Quality(m)
	}
	if h.Metric.IsClassification() {
		c := h.classifier(m)
		parts := parallel.MapChunks(workers, len(h.Examples), evalChunkSize, func(lo, hi int) *ConfusionMatrix {
			// One matrix and one score buffer per chunk (they outlive the
			// chunk via the merge below, so they cannot come from the eval
			// scratch pool) instead of one score slice per prediction.
			cm := NewConfusionMatrix(c.NumClasses())
			observeClassified(cm, c, h.Examples[lo:hi], make([]float64, c.NumClasses()))
			return cm
		})
		cm := parts[0]
		for _, p := range parts[1:] {
			cm.Merge(p)
		}
		return h.scoreClassification(cm)
	}
	r := h.regressor(m)
	parts := parallel.MapChunks(workers, len(h.Examples), evalChunkSize, func(lo, hi int) *RegressionMetrics {
		var rm RegressionMetrics
		for _, ex := range h.Examples[lo:hi] {
			rm.Observe(ex.Target, r.Predict(ex.Features))
		}
		return &rm
	})
	var rm RegressionMetrics
	for _, p := range parts {
		rm.Merge(p)
	}
	return h.scoreRegression(&rm)
}
