package learner

import (
	"math"

	"zombie/internal/linalg"
)

// MultinomialNB is an incremental multinomial naive Bayes classifier with
// Laplace (add-alpha) smoothing. It expects non-negative feature values
// (term counts or tf-idf weights) and is the natural learner for the
// hashed text features Zombie's wiki task produces. Negative feature
// values are treated as zero.
type MultinomialNB struct {
	alpha      float64
	classCount []float64
	featCount  [][]float64 // [class][feature] accumulated counts
	featTotal  []float64   // [class] sum over features
	seen       int
}

// NewMultinomialNB returns a multinomial NB over dim features and
// numClasses classes with smoothing alpha. It panics if alpha <= 0.
func NewMultinomialNB(dim, numClasses int, alpha float64) *MultinomialNB {
	if dim <= 0 || numClasses < 2 {
		panic("learner: MultinomialNB requires dim > 0 and numClasses >= 2")
	}
	if alpha <= 0 {
		panic("learner: MultinomialNB alpha must be > 0")
	}
	m := &MultinomialNB{
		alpha:      alpha,
		classCount: make([]float64, numClasses),
		featCount:  make([][]float64, numClasses),
		featTotal:  make([]float64, numClasses),
	}
	for c := range m.featCount {
		m.featCount[c] = make([]float64, dim)
	}
	return m
}

// PartialFit implements Model.
func (m *MultinomialNB) PartialFit(ex Example) {
	checkDim(len(m.featCount[0]), ex.Features, "MultinomialNB")
	checkClass(len(m.featCount), ex.Class, "MultinomialNB")
	m.classCount[ex.Class]++
	row := m.featCount[ex.Class]
	ex.Features.ForEachNonZero(func(i int, v float64) {
		if v > 0 {
			row[i] += v
			m.featTotal[ex.Class] += v
		}
	})
	m.seen++
}

// logJoint computes the unnormalized log posterior for every class.
func (m *MultinomialNB) logJoint(v FeatureVector, out []float64) {
	dim := float64(len(m.featCount[0]))
	totalDocs := 0.0
	for _, c := range m.classCount {
		totalDocs += c
	}
	for c := range out {
		// Smoothed class prior; with no data all classes tie.
		prior := math.Log((m.classCount[c] + 1) / (totalDocs + float64(len(out))))
		ll := prior
		den := math.Log(m.featTotal[c] + m.alpha*dim)
		row := m.featCount[c]
		v.ForEachNonZero(func(i int, x float64) {
			if x > 0 {
				ll += x * (math.Log(row[i]+m.alpha) - den)
			}
		})
		out[c] = ll
	}
}

// PredictClass implements Classifier.
func (m *MultinomialNB) PredictClass(v FeatureVector) int {
	return m.PredictClassInto(v, make([]float64, len(m.featCount)))
}

// PredictClassInto implements BufferedClassifier.
func (m *MultinomialNB) PredictClassInto(v FeatureVector, buf []float64) int {
	checkDim(len(m.featCount[0]), v, "MultinomialNB")
	out := buf[:len(m.featCount)]
	m.logJoint(v, out)
	return linalg.ArgMax(out)
}

// Proba implements ProbClassifier.
func (m *MultinomialNB) Proba(v FeatureVector) []float64 {
	checkDim(len(m.featCount[0]), v, "MultinomialNB")
	out := make([]float64, len(m.featCount))
	m.logJoint(v, out)
	linalg.Softmax(out, out)
	return out
}

// NumClasses implements Classifier.
func (m *MultinomialNB) NumClasses() int { return len(m.featCount) }

// Seen implements Model.
func (m *MultinomialNB) Seen() int { return m.seen }

// ConcurrentPredictable implements ConcurrentPredictor: prediction only
// reads the fitted counts.
func (m *MultinomialNB) ConcurrentPredictable() {}

// OrderInsensitiveFit implements OrderInsensitive: the fitted counts are
// sums over the example set, independent of arrival order.
func (m *MultinomialNB) OrderInsensitiveFit() {}

// Reset implements Model.
func (m *MultinomialNB) Reset() {
	for c := range m.featCount {
		linalg.Zero(m.featCount[c])
		m.classCount[c] = 0
		m.featTotal[c] = 0
	}
	m.seen = 0
}

// GaussianNB is an incremental Gaussian naive Bayes classifier: each
// feature is modeled per class by an online mean and variance (Welford
// update). It suits the dense numeric features of the song and image
// tasks.
type GaussianNB struct {
	classCount []float64
	mean       [][]float64
	m2         [][]float64
	varFloor   float64
	seen       int
}

// NewGaussianNB returns a Gaussian NB over dim features. varFloor guards
// against zero-variance features; it panics if varFloor <= 0.
func NewGaussianNB(dim, numClasses int, varFloor float64) *GaussianNB {
	if dim <= 0 || numClasses < 2 {
		panic("learner: GaussianNB requires dim > 0 and numClasses >= 2")
	}
	if varFloor <= 0 {
		panic("learner: GaussianNB varFloor must be > 0")
	}
	m := &GaussianNB{
		classCount: make([]float64, numClasses),
		mean:       make([][]float64, numClasses),
		m2:         make([][]float64, numClasses),
		varFloor:   varFloor,
	}
	for c := 0; c < numClasses; c++ {
		m.mean[c] = make([]float64, dim)
		m.m2[c] = make([]float64, dim)
	}
	return m
}

// PartialFit implements Model.
func (m *GaussianNB) PartialFit(ex Example) {
	checkDim(len(m.mean[0]), ex.Features, "GaussianNB")
	checkClass(len(m.mean), ex.Class, "GaussianNB")
	c := ex.Class
	m.classCount[c]++
	n := m.classCount[c]
	for i := 0; i < ex.Features.Dim(); i++ {
		x := ex.Features.At(i)
		delta := x - m.mean[c][i]
		m.mean[c][i] += delta / n
		m.m2[c][i] += delta * (x - m.mean[c][i])
	}
	m.seen++
}

func (m *GaussianNB) logJoint(v FeatureVector, out []float64) {
	totalDocs := 0.0
	for _, c := range m.classCount {
		totalDocs += c
	}
	for c := range out {
		prior := math.Log((m.classCount[c] + 1) / (totalDocs + float64(len(out))))
		ll := prior
		n := m.classCount[c]
		for i := 0; i < v.Dim(); i++ {
			variance := m.varFloor
			if n >= 2 {
				variance = m.m2[c][i]/(n-1) + m.varFloor
			}
			d := v.At(i) - m.mean[c][i]
			ll += -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
		}
		out[c] = ll
	}
}

// PredictClass implements Classifier.
func (m *GaussianNB) PredictClass(v FeatureVector) int {
	return m.PredictClassInto(v, make([]float64, len(m.mean)))
}

// PredictClassInto implements BufferedClassifier.
func (m *GaussianNB) PredictClassInto(v FeatureVector, buf []float64) int {
	checkDim(len(m.mean[0]), v, "GaussianNB")
	out := buf[:len(m.mean)]
	m.logJoint(v, out)
	return linalg.ArgMax(out)
}

// Proba implements ProbClassifier.
func (m *GaussianNB) Proba(v FeatureVector) []float64 {
	checkDim(len(m.mean[0]), v, "GaussianNB")
	out := make([]float64, len(m.mean))
	m.logJoint(v, out)
	linalg.Softmax(out, out)
	return out
}

// NumClasses implements Classifier.
func (m *GaussianNB) NumClasses() int { return len(m.mean) }

// Seen implements Model.
func (m *GaussianNB) Seen() int { return m.seen }

// ConcurrentPredictable implements ConcurrentPredictor: prediction only
// reads the fitted moments.
func (m *GaussianNB) ConcurrentPredictable() {}

// OrderInsensitiveFit implements OrderInsensitive: the fitted moments are
// set statistics, independent of arrival order up to floating-point
// accumulation.
func (m *GaussianNB) OrderInsensitiveFit() {}

// Reset implements Model.
func (m *GaussianNB) Reset() {
	for c := range m.mean {
		linalg.Zero(m.mean[c])
		linalg.Zero(m.m2[c])
		m.classCount[c] = 0
	}
	m.seen = 0
}
