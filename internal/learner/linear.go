package learner

import (
	"math"

	"zombie/internal/linalg"
)

// LRSchedule selects how the SGD learning rate evolves with the number of
// examples seen.
type LRSchedule int

const (
	// ConstantLR keeps the initial rate forever.
	ConstantLR LRSchedule = iota
	// InvScalingLR decays the rate as lr0 / sqrt(1+t).
	InvScalingLR
)

// sgdBase holds the bookkeeping shared by the SGD linear models.
type sgdBase struct {
	lr0      float64
	schedule LRSchedule
	l2       float64
	t        int
}

func newSGDBase(lr0, l2 float64, schedule LRSchedule) sgdBase {
	if lr0 <= 0 {
		panic("learner: learning rate must be > 0")
	}
	if l2 < 0 {
		panic("learner: L2 penalty must be >= 0")
	}
	return sgdBase{lr0: lr0, schedule: schedule, l2: l2}
}

// rate returns the step size for the next update and advances t.
func (b *sgdBase) rate() float64 {
	b.t++
	switch b.schedule {
	case InvScalingLR:
		return b.lr0 / math.Sqrt(1+float64(b.t))
	default:
		return b.lr0
	}
}

// LogisticSGD is an incremental binary logistic-regression classifier
// trained with stochastic gradient descent and optional L2 regularization.
// Classes are 0 (negative) and 1 (positive). This is the default learner
// for Zombie's extraction-style tasks, matching the linear classifiers the
// paper drives through scikit-learn.
type LogisticSGD struct {
	sgdBase
	w    []float64
	bias float64
	seen int
}

// NewLogisticSGD returns a binary logistic classifier over dim features.
func NewLogisticSGD(dim int, lr0, l2 float64, schedule LRSchedule) *LogisticSGD {
	if dim <= 0 {
		panic("learner: LogisticSGD dim must be > 0")
	}
	return &LogisticSGD{sgdBase: newSGDBase(lr0, l2, schedule), w: make([]float64, dim)}
}

// PartialFit implements Model.
func (m *LogisticSGD) PartialFit(ex Example) {
	checkDim(len(m.w), ex.Features, "LogisticSGD")
	checkClass(2, ex.Class, "LogisticSGD")
	lr := m.rate()
	p := linalg.Sigmoid(ex.Features.Dot(m.w) + m.bias)
	grad := p - float64(ex.Class) // dLoss/dLogit
	if m.l2 > 0 {
		linalg.Scale(1-lr*m.l2, m.w)
	}
	ex.Features.Axpy(-lr*grad, m.w)
	m.bias -= lr * grad
	m.seen++
}

// PredictClass implements Classifier.
func (m *LogisticSGD) PredictClass(v FeatureVector) int {
	if m.Proba(v)[1] >= 0.5 {
		return 1
	}
	return 0
}

// Proba implements ProbClassifier.
func (m *LogisticSGD) Proba(v FeatureVector) []float64 {
	checkDim(len(m.w), v, "LogisticSGD")
	p := linalg.Sigmoid(v.Dot(m.w) + m.bias)
	return []float64{1 - p, p}
}

// NumClasses implements Classifier.
func (m *LogisticSGD) NumClasses() int { return 2 }

// Seen implements Model.
func (m *LogisticSGD) Seen() int { return m.seen }

// ConcurrentPredictable implements ConcurrentPredictor: prediction only
// reads the weights.
func (m *LogisticSGD) ConcurrentPredictable() {}

// Reset implements Model.
func (m *LogisticSGD) Reset() {
	linalg.Zero(m.w)
	m.bias = 0
	m.t = 0
	m.seen = 0
}

// Weights exposes the learned weight vector (not a copy) for inspection.
func (m *LogisticSGD) Weights() []float64 { return m.w }

// SoftmaxSGD is an incremental multiclass logistic-regression (maximum
// entropy) classifier trained with SGD.
type SoftmaxSGD struct {
	sgdBase
	w      [][]float64 // per-class weight rows
	bias   []float64
	logits []float64 // scratch, reused across calls
	seen   int
}

// NewSoftmaxSGD returns a multiclass classifier over dim features and
// numClasses classes.
func NewSoftmaxSGD(dim, numClasses int, lr0, l2 float64, schedule LRSchedule) *SoftmaxSGD {
	if dim <= 0 || numClasses < 2 {
		panic("learner: SoftmaxSGD requires dim > 0 and numClasses >= 2")
	}
	m := &SoftmaxSGD{
		sgdBase: newSGDBase(lr0, l2, schedule),
		w:       make([][]float64, numClasses),
		bias:    make([]float64, numClasses),
		logits:  make([]float64, numClasses),
	}
	for c := range m.w {
		m.w[c] = make([]float64, dim)
	}
	return m
}

func (m *SoftmaxSGD) computeProba(v FeatureVector, out []float64) {
	for c := range m.w {
		m.logits[c] = v.Dot(m.w[c]) + m.bias[c]
	}
	linalg.Softmax(m.logits, out)
}

// PartialFit implements Model.
func (m *SoftmaxSGD) PartialFit(ex Example) {
	checkDim(len(m.w[0]), ex.Features, "SoftmaxSGD")
	checkClass(len(m.w), ex.Class, "SoftmaxSGD")
	lr := m.rate()
	proba := make([]float64, len(m.w))
	m.computeProba(ex.Features, proba)
	for c := range m.w {
		grad := proba[c]
		if c == ex.Class {
			grad -= 1
		}
		if m.l2 > 0 {
			linalg.Scale(1-lr*m.l2, m.w[c])
		}
		ex.Features.Axpy(-lr*grad, m.w[c])
		m.bias[c] -= lr * grad
	}
	m.seen++
}

// PredictClass implements Classifier.
func (m *SoftmaxSGD) PredictClass(v FeatureVector) int {
	checkDim(len(m.w[0]), v, "SoftmaxSGD")
	for c := range m.w {
		m.logits[c] = v.Dot(m.w[c]) + m.bias[c]
	}
	return linalg.ArgMax(m.logits)
}

// Proba implements ProbClassifier.
func (m *SoftmaxSGD) Proba(v FeatureVector) []float64 {
	checkDim(len(m.w[0]), v, "SoftmaxSGD")
	out := make([]float64, len(m.w))
	m.computeProba(v, out)
	return out
}

// NumClasses implements Classifier.
func (m *SoftmaxSGD) NumClasses() int { return len(m.w) }

// Seen implements Model.
func (m *SoftmaxSGD) Seen() int { return m.seen }

// Reset implements Model.
func (m *SoftmaxSGD) Reset() {
	for c := range m.w {
		linalg.Zero(m.w[c])
		m.bias[c] = 0
	}
	m.t = 0
	m.seen = 0
}

// Perceptron is an incremental multiclass perceptron: on a mistake it adds
// the example to the true class row and subtracts it from the predicted
// row. Mistake-driven and hyperparameter-free, it is the cheapest learner
// in the suite.
type Perceptron struct {
	w      [][]float64
	bias   []float64
	scores []float64
	seen   int
}

// NewPerceptron returns a multiclass perceptron over dim features.
func NewPerceptron(dim, numClasses int) *Perceptron {
	if dim <= 0 || numClasses < 2 {
		panic("learner: Perceptron requires dim > 0 and numClasses >= 2")
	}
	m := &Perceptron{
		w:      make([][]float64, numClasses),
		bias:   make([]float64, numClasses),
		scores: make([]float64, numClasses),
	}
	for c := range m.w {
		m.w[c] = make([]float64, dim)
	}
	return m
}

// PartialFit implements Model.
func (m *Perceptron) PartialFit(ex Example) {
	checkDim(len(m.w[0]), ex.Features, "Perceptron")
	checkClass(len(m.w), ex.Class, "Perceptron")
	pred := m.PredictClass(ex.Features)
	if pred != ex.Class {
		ex.Features.Axpy(1, m.w[ex.Class])
		m.bias[ex.Class]++
		ex.Features.Axpy(-1, m.w[pred])
		m.bias[pred]--
	}
	m.seen++
}

// PredictClass implements Classifier.
func (m *Perceptron) PredictClass(v FeatureVector) int {
	checkDim(len(m.w[0]), v, "Perceptron")
	for c := range m.w {
		m.scores[c] = v.Dot(m.w[c]) + m.bias[c]
	}
	return linalg.ArgMax(m.scores)
}

// NumClasses implements Classifier.
func (m *Perceptron) NumClasses() int { return len(m.w) }

// Seen implements Model.
func (m *Perceptron) Seen() int { return m.seen }

// Reset implements Model.
func (m *Perceptron) Reset() {
	for c := range m.w {
		linalg.Zero(m.w[c])
		m.bias[c] = 0
	}
	m.seen = 0
}

// PassiveAggressive is the binary PA-I classifier of Crammer et al.:
// on each example it makes the smallest weight update that achieves a
// hinge margin of 1, capped by aggressiveness C. Classes are 0 and 1
// (mapped internally to ±1).
type PassiveAggressive struct {
	w    []float64
	bias float64
	c    float64
	seen int
}

// NewPassiveAggressive returns a PA-I classifier over dim features with
// aggressiveness cap c. It panics if c <= 0.
func NewPassiveAggressive(dim int, c float64) *PassiveAggressive {
	if dim <= 0 {
		panic("learner: PassiveAggressive dim must be > 0")
	}
	if c <= 0 {
		panic("learner: PassiveAggressive C must be > 0")
	}
	return &PassiveAggressive{w: make([]float64, dim), c: c}
}

// PartialFit implements Model.
func (m *PassiveAggressive) PartialFit(ex Example) {
	checkDim(len(m.w), ex.Features, "PassiveAggressive")
	checkClass(2, ex.Class, "PassiveAggressive")
	y := float64(2*ex.Class - 1) // {0,1} -> {-1,+1}
	margin := y * (ex.Features.Dot(m.w) + m.bias)
	loss := 1 - margin
	if loss > 0 {
		// +1 accounts for the implicit bias feature.
		tau := loss / (ex.Features.Norm2Sq() + 1)
		if tau > m.c {
			tau = m.c
		}
		ex.Features.Axpy(tau*y, m.w)
		m.bias += tau * y
	}
	m.seen++
}

// PredictClass implements Classifier.
func (m *PassiveAggressive) PredictClass(v FeatureVector) int {
	checkDim(len(m.w), v, "PassiveAggressive")
	if v.Dot(m.w)+m.bias >= 0 {
		return 1
	}
	return 0
}

// NumClasses implements Classifier.
func (m *PassiveAggressive) NumClasses() int { return 2 }

// Seen implements Model.
func (m *PassiveAggressive) Seen() int { return m.seen }

// ConcurrentPredictable implements ConcurrentPredictor: prediction only
// reads the weights.
func (m *PassiveAggressive) ConcurrentPredictable() {}

// Reset implements Model.
func (m *PassiveAggressive) Reset() {
	linalg.Zero(m.w)
	m.bias = 0
	m.seen = 0
}

// LinearRegSGD is an incremental least-squares linear regressor trained
// with SGD and optional L2 regularization.
type LinearRegSGD struct {
	sgdBase
	w    []float64
	bias float64
	seen int
}

// NewLinearRegSGD returns a linear regressor over dim features.
func NewLinearRegSGD(dim int, lr0, l2 float64, schedule LRSchedule) *LinearRegSGD {
	if dim <= 0 {
		panic("learner: LinearRegSGD dim must be > 0")
	}
	return &LinearRegSGD{sgdBase: newSGDBase(lr0, l2, schedule), w: make([]float64, dim)}
}

// PartialFit implements Model.
func (m *LinearRegSGD) PartialFit(ex Example) {
	checkDim(len(m.w), ex.Features, "LinearRegSGD")
	lr := m.rate()
	err := ex.Features.Dot(m.w) + m.bias - ex.Target
	if m.l2 > 0 {
		linalg.Scale(1-lr*m.l2, m.w)
	}
	ex.Features.Axpy(-lr*err, m.w)
	m.bias -= lr * err
	m.seen++
}

// Predict implements Regressor.
func (m *LinearRegSGD) Predict(v FeatureVector) float64 {
	checkDim(len(m.w), v, "LinearRegSGD")
	return v.Dot(m.w) + m.bias
}

// Seen implements Model.
func (m *LinearRegSGD) Seen() int { return m.seen }

// ConcurrentPredictable implements ConcurrentPredictor: prediction only
// reads the weights.
func (m *LinearRegSGD) ConcurrentPredictable() {}

// Reset implements Model.
func (m *LinearRegSGD) Reset() {
	linalg.Zero(m.w)
	m.bias = 0
	m.t = 0
	m.seen = 0
}
