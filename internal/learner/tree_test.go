package learner

import (
	"strings"
	"testing"

	"zombie/internal/rng"
)

func TestDecisionTreeAxisAlignedProblem(t *testing.T) {
	// XOR-free axis-aligned problem a depth-2 tree nails but a linear
	// model can also solve: class 1 iff x0 > 0.5.
	m := NewDecisionTree(2, 2, 3, 1)
	r := rng.New(1)
	for i := 0; i < 400; i++ {
		x := []float64{r.Float64(), r.Float64()}
		cls := 0
		if x[0] > 0.5 {
			cls = 1
		}
		m.PartialFit(Example{Features: DenseVec(x), Class: cls})
	}
	correct := 0
	for i := 0; i < 200; i++ {
		x := []float64{r.Float64(), r.Float64()}
		want := 0
		if x[0] > 0.5 {
			want = 1
		}
		if m.PredictClass(DenseVec(x)) == want {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.97 {
		t.Fatalf("accuracy %.3f on trivial split", acc)
	}
	if d := m.Depth(); d < 1 || d > 3 {
		t.Fatalf("depth = %d", d)
	}
}

func TestDecisionTreeConjunction(t *testing.T) {
	// "x0 > 0 AND x1 > 0" needs depth 2 and, unlike XOR, has a
	// greedy-visible first split (greedy CART cannot split XOR at all:
	// every root split has zero Gini gain).
	m := NewDecisionTree(2, 2, 2, 1)
	r := rng.New(2)
	gen := func(rr *rng.RNG) ([]float64, int) {
		x := []float64{rr.Range(-1, 1), rr.Range(-1, 1)}
		cls := 0
		if x[0] > 0 && x[1] > 0 {
			cls = 1
		}
		return x, cls
	}
	for i := 0; i < 600; i++ {
		x, cls := gen(r)
		m.PartialFit(Example{Features: DenseVec(x), Class: cls})
	}
	correct := 0
	for i := 0; i < 300; i++ {
		x, want := gen(r)
		if m.PredictClass(DenseVec(x)) == want {
			correct++
		}
	}
	if acc := float64(correct) / 300; acc < 0.93 {
		t.Fatalf("conjunction accuracy %.3f", acc)
	}
	// A depth-1 stump cannot represent the conjunction exactly; its best
	// achievable accuracy is ~0.75 plus class-imbalance slack.
	stump := NewDecisionTree(2, 2, 1, 1)
	r2 := rng.New(3)
	for i := 0; i < 600; i++ {
		x, cls := gen(r2)
		stump.PartialFit(Example{Features: DenseVec(x), Class: cls})
	}
	correct = 0
	for i := 0; i < 300; i++ {
		x, want := gen(r2)
		if stump.PredictClass(DenseVec(x)) == want {
			correct++
		}
	}
	if acc := float64(correct) / 300; acc > 0.93 {
		t.Fatalf("stump should not match the full tree, got accuracy %.3f", acc)
	}
}

func TestDecisionTreeOrderInsensitive(t *testing.T) {
	r := rng.New(4)
	examples := make([]Example, 200)
	for i := range examples {
		x := []float64{r.Range(-1, 1), r.Range(-1, 1)}
		cls := 0
		if x[1] > 0.2 {
			cls = 1
		}
		examples[i] = Example{Features: DenseVec(x), Class: cls}
	}
	a := NewDecisionTree(2, 2, 3, 2)
	b := NewDecisionTree(2, 2, 3, 2)
	for _, ex := range examples {
		a.PartialFit(ex)
	}
	for i := len(examples) - 1; i >= 0; i-- {
		b.PartialFit(examples[i])
	}
	for i := 0; i < 100; i++ {
		x := DenseVec([]float64{r.Range(-1, 1), r.Range(-1, 1)})
		if a.PredictClass(x) != b.PredictClass(x) {
			t.Fatal("tree depends on insertion order")
		}
	}
}

func TestDecisionTreeMinLeafPruning(t *testing.T) {
	m := NewDecisionTree(1, 2, 10, 50)
	r := rng.New(5)
	// 60 examples: any split would leave < 50 on one side.
	for i := 0; i < 60; i++ {
		cls := 0
		if r.Bernoulli(0.3) {
			cls = 1
		}
		m.PartialFit(Example{Features: DenseVec([]float64{r.Float64()}), Class: cls})
	}
	if d := m.Depth(); d != 0 {
		t.Fatalf("minLeaf should force a leaf, depth = %d", d)
	}
	// Majority class prediction.
	if m.PredictClass(DenseVec([]float64{0.5})) != 0 {
		t.Fatal("leaf should predict majority class")
	}
}

func TestDecisionTreeResetAndValidation(t *testing.T) {
	m := NewDecisionTree(2, 2, 2, 1)
	m.PartialFit(Example{Features: DenseVec([]float64{0, 0}), Class: 0})
	if m.Seen() != 1 {
		t.Fatal("Seen wrong")
	}
	m.Reset()
	if m.Seen() != 0 {
		t.Fatal("Reset failed")
	}
	mustPanic(t, "predict before fit", func() { m.PredictClass(DenseVec([]float64{0, 0})) })
	mustPanic(t, "dim", func() { NewDecisionTree(0, 2, 2, 1) })
	mustPanic(t, "classes", func() { NewDecisionTree(2, 1, 2, 1) })
	mustPanic(t, "depth", func() { NewDecisionTree(2, 2, 0, 1) })
	mustPanic(t, "minLeaf", func() { NewDecisionTree(2, 2, 2, 0) })
	mustPanic(t, "bad class", func() {
		m.PartialFit(Example{Features: DenseVec([]float64{0, 0}), Class: 9})
	})
	if m.NumClasses() != 2 {
		t.Fatal("NumClasses wrong")
	}
	if !strings.Contains(m.String(), "tree(") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestDecisionTreeConstantFeatures(t *testing.T) {
	// All feature values equal: no split possible; must not loop or panic.
	m := NewDecisionTree(1, 2, 5, 1)
	for i := 0; i < 20; i++ {
		m.PartialFit(Example{Features: DenseVec([]float64{1}), Class: i % 2})
	}
	if got := m.PredictClass(DenseVec([]float64{1})); got != 0 {
		t.Fatalf("tie should go to lower class, got %d", got)
	}
	if m.Depth() != 0 {
		t.Fatal("constant features should yield a leaf")
	}
}

func TestDecisionTreeMulticlass(t *testing.T) {
	m := NewDecisionTree(1, 3, 3, 1)
	r := rng.New(6)
	for i := 0; i < 600; i++ {
		x := r.Range(0, 3)
		m.PartialFit(Example{Features: DenseVec([]float64{x}), Class: int(x)})
	}
	for _, tc := range []struct {
		x    float64
		want int
	}{{0.5, 0}, {1.5, 1}, {2.5, 2}} {
		if got := m.PredictClass(DenseVec([]float64{tc.x})); got != tc.want {
			t.Fatalf("PredictClass(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}
