package learner

import (
	"math"
	"testing"

	"zombie/internal/rng"
)

func TestHoldoutQualityClassification(t *testing.T) {
	r := rng.New(30)
	exs := linearlySeparable(300, r.Split("data"))
	train, hold := StratifiedSplit(exs, 0.3, r.Split("split"))
	h := NewHoldout(hold, MetricAccuracy, 1)
	m := NewLogisticSGD(2, 0.5, 0, ConstantLR)
	if q := h.Quality(m); q != 0 {
		t.Fatalf("untrained quality = %v, want 0", q)
	}
	trainAll(m, train, 3)
	if q := h.Quality(m); q < 0.95 {
		t.Fatalf("trained accuracy = %v", q)
	}
	hf1 := NewHoldout(hold, MetricF1, 1)
	if q := hf1.Quality(m); q < 0.9 {
		t.Fatalf("trained F1 = %v", q)
	}
	hm := NewHoldout(hold, MetricMacroF1, 0)
	if q := hm.Quality(m); q < 0.9 {
		t.Fatalf("trained macro-F1 = %v", q)
	}
}

func TestHoldoutQualityRegression(t *testing.T) {
	r := rng.New(31)
	exs := make([]Example, 400)
	for i := range exs {
		x := r.Range(-1, 1)
		exs[i] = Example{Features: DenseVec([]float64{x}), Target: 4 * x}
	}
	train, hold := Split(exs, 0.25, r.Split("split"))
	h := NewHoldout(hold, MetricR2, 0)
	m := NewLinearRegSGD(1, 0.1, 0, InvScalingLR)
	trainAll(m, train, 10)
	if q := h.Quality(m); q < 0.95 {
		t.Fatalf("R2 = %v", q)
	}
	hr := NewHoldout(hold, MetricNegRMSE, 0)
	if q := hr.Quality(m); q > 0 || q < -0.5 {
		t.Fatalf("-RMSE = %v", q)
	}
	// Untrained regression floor uses the zero predictor.
	m2 := NewLinearRegSGD(1, 0.1, 0, ConstantLR)
	floor := hr.Quality(m2)
	if floor >= 0 {
		t.Fatalf("floor = %v, expected negative", floor)
	}
}

func TestHoldoutMetricModelMismatchPanics(t *testing.T) {
	hold := []Example{{Features: DenseVec([]float64{1}), Class: 0, Target: 1}}
	hc := NewHoldout(hold, MetricAccuracy, 0)
	reg := NewLinearRegSGD(1, 0.1, 0, ConstantLR)
	reg.PartialFit(hold[0])
	mustPanic(t, "classifier metric on regressor", func() { hc.Quality(reg) })
	hr := NewHoldout(hold, MetricR2, 0)
	cls := NewPerceptron(1, 2)
	cls.PartialFit(hold[0])
	mustPanic(t, "regressor metric on classifier", func() { hr.Quality(cls) })
	mustPanic(t, "empty holdout", func() { NewHoldout(nil, MetricAccuracy, 0) })
}

func TestStratifiedSplitPreservesProportions(t *testing.T) {
	r := rng.New(32)
	exs := make([]Example, 1000)
	for i := range exs {
		cls := 0
		if i%10 == 0 { // 10% positives — the skew Zombie cares about
			cls = 1
		}
		exs[i] = Example{Features: DenseVec([]float64{float64(i)}), Class: cls}
	}
	train, hold := StratifiedSplit(exs, 0.2, r)
	if len(train)+len(hold) != 1000 {
		t.Fatalf("split lost examples: %d + %d", len(train), len(hold))
	}
	countPos := func(s []Example) int {
		n := 0
		for _, e := range s {
			if e.Class == 1 {
				n++
			}
		}
		return n
	}
	holdPosFrac := float64(countPos(hold)) / float64(len(hold))
	if math.Abs(holdPosFrac-0.1) > 0.03 {
		t.Fatalf("holdout positive fraction %v, want ~0.1", holdPosFrac)
	}
	if countPos(hold) == 0 {
		t.Fatal("stratified holdout lost the rare class")
	}
}

func TestStratifiedSplitRareClassGuarantee(t *testing.T) {
	// Two positives out of 100 with a 10% holdout: naive splitting could
	// lose the class; stratification guarantees at least one.
	r := rng.New(33)
	exs := make([]Example, 100)
	for i := range exs {
		cls := 0
		if i < 2 {
			cls = 1
		}
		exs[i] = Example{Features: DenseVec([]float64{float64(i)}), Class: cls}
	}
	_, hold := StratifiedSplit(exs, 0.1, r)
	found := false
	for _, e := range hold {
		if e.Class == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("rare class missing from stratified holdout")
	}
}

func TestSplitDeterministicWithSeed(t *testing.T) {
	exs := make([]Example, 50)
	for i := range exs {
		exs[i] = Example{Features: DenseVec([]float64{float64(i)}), Class: i % 2}
	}
	t1, h1 := Split(exs, 0.2, rng.New(99))
	t2, h2 := Split(exs, 0.2, rng.New(99))
	if len(t1) != len(t2) || len(h1) != len(h2) {
		t.Fatal("sizes differ")
	}
	for i := range t1 {
		if t1[i].Features.At(0) != t2[i].Features.At(0) {
			t.Fatal("same seed produced different split")
		}
	}
	// Does not mutate the input order.
	for i := range exs {
		if exs[i].Features.At(0) != float64(i) {
			t.Fatal("Split mutated input slice")
		}
	}
}

func TestSplitValidation(t *testing.T) {
	exs := []Example{{Features: DenseVec([]float64{1})}}
	mustPanic(t, "frac 0", func() { Split(exs, 0, rng.New(1)) })
	mustPanic(t, "frac 1", func() { StratifiedSplit(exs, 1, rng.New(1)) })
}

func TestMetricString(t *testing.T) {
	for m, want := range map[Metric]string{
		MetricAccuracy: "accuracy",
		MetricF1:       "f1",
		MetricMacroF1:  "macro-f1",
		MetricR2:       "r2",
		MetricNegRMSE:  "-rmse",
		Metric(9):      "Metric(9)",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if !MetricF1.IsClassification() || MetricR2.IsClassification() {
		t.Fatal("IsClassification wrong")
	}
}
