package learner

import (
	"testing"

	"zombie/internal/parallel"
)

// The holdout size mirrors the full-scale engine configuration: a ~2k
// example holdout scored on every evaluation step, which makes Quality the
// engine's hottest read path.

func BenchmarkHoldoutQuality(b *testing.B) {
	h, m := evalFixture(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quality(m)
	}
}

func BenchmarkHoldoutQualityParallel(b *testing.B) {
	h, m := evalFixture(b, 2000)
	workers := parallel.Workers(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.QualityParallel(m, workers)
	}
}
