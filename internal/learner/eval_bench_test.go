package learner

import (
	"testing"

	"zombie/internal/linalg"
	"zombie/internal/parallel"
	"zombie/internal/rng"
)

// The holdout size mirrors the full-scale engine configuration: a ~2k
// example holdout scored on every evaluation step, which makes Quality the
// engine's hottest read path. Allocations here are paid twice per bandit
// step (quality-delta reward brackets train with a before/after pair), so
// every benchmark reports allocs/op.

func BenchmarkHoldoutQuality(b *testing.B) {
	h, m := evalFixture(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quality(m)
	}
}

func BenchmarkHoldoutQualityParallel(b *testing.B) {
	h, m := evalFixture(b, 2000)
	workers := parallel.Workers(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.QualityParallel(m, workers)
	}
}

// BenchmarkHoldoutQualityMultinomial scores the sparse-count path
// (MultinomialNB over hashed text), the model the wiki workload trains.
func BenchmarkHoldoutQualityMultinomial(b *testing.B) {
	r := rng.New(11)
	const dim, n = 256, 2000
	examples := make([]Example, n)
	for i := range examples {
		class := i % 2
		var idx []int
		var val []float64
		for d := 0; d < dim; d += 32 {
			idx = append(idx, d+(i+class)%32)
			val = append(val, float64(r.IntRange(1, 4)))
		}
		examples[i] = Example{Features: SparseVec(linalg.NewSparse(dim, idx, val)), Class: class}
	}
	m := NewMultinomialNB(dim, 2, 1.0)
	for _, ex := range examples[:n/2] {
		m.PartialFit(ex)
	}
	h := NewHoldout(examples, MetricF1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quality(m)
	}
}
