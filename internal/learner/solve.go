package learner

import (
	"fmt"
	"math"
)

// RidgeClosed is a batch ridge regressor solved in closed form:
// w = (XᵀX + λI)⁻¹ Xᵀy via Gaussian elimination on the normal equations.
// It accumulates XᵀX and Xᵀy incrementally (so PartialFit stays O(d²) per
// example) and lazily re-solves when a prediction is requested after new
// data. It is the exact baseline the SGD regressor is validated against
// in tests, and gives experiments a deterministic regression target.
type RidgeClosed struct {
	dim    int
	lambda float64
	xtx    [][]float64 // (d+1)×(d+1), last row/col is the bias feature
	xty    []float64
	w      []float64
	dirty  bool
	seen   int
}

// NewRidgeClosed returns a closed-form ridge regressor over dim features
// with regularization strength lambda >= 0.
func NewRidgeClosed(dim int, lambda float64) *RidgeClosed {
	if dim <= 0 {
		panic("learner: RidgeClosed dim must be > 0")
	}
	if lambda < 0 {
		panic("learner: RidgeClosed lambda must be >= 0")
	}
	d := dim + 1
	m := &RidgeClosed{
		dim:    dim,
		lambda: lambda,
		xtx:    make([][]float64, d),
		xty:    make([]float64, d),
		w:      make([]float64, d),
	}
	for i := range m.xtx {
		m.xtx[i] = make([]float64, d)
	}
	return m
}

// PartialFit implements Model.
func (m *RidgeClosed) PartialFit(ex Example) {
	checkDim(m.dim, ex.Features, "RidgeClosed")
	x := ex.Features.Dense()
	x = append(x, 1) // bias feature
	for i := range x {
		if x[i] == 0 {
			continue
		}
		for j := range x {
			m.xtx[i][j] += x[i] * x[j]
		}
		m.xty[i] += x[i] * ex.Target
	}
	m.dirty = true
	m.seen++
}

// solve refreshes w from the accumulated normal equations.
func (m *RidgeClosed) solve() {
	d := m.dim + 1
	// Copy A = XtX + λI (bias unregularized) and b = Xty.
	a := make([][]float64, d)
	b := make([]float64, d)
	for i := 0; i < d; i++ {
		a[i] = make([]float64, d)
		copy(a[i], m.xtx[i])
		if i < m.dim {
			a[i][i] += m.lambda
		}
		b[i] = m.xty[i]
	}
	w, ok := SolveLinear(a, b)
	if !ok {
		// Singular system (e.g., no data yet): keep the previous weights,
		// falling back to zeros for a fresh model.
		m.dirty = false
		return
	}
	m.w = w
	m.dirty = false
}

// Predict implements Regressor.
func (m *RidgeClosed) Predict(v FeatureVector) float64 {
	checkDim(m.dim, v, "RidgeClosed")
	if m.dirty {
		m.solve()
	}
	return v.Dot(m.w[:m.dim]) + m.w[m.dim]
}

// Weights returns a copy of the current weight vector (bias last),
// solving first if needed.
func (m *RidgeClosed) Weights() []float64 {
	if m.dirty {
		m.solve()
	}
	out := make([]float64, len(m.w))
	copy(out, m.w)
	return out
}

// Seen implements Model.
func (m *RidgeClosed) Seen() int { return m.seen }

// Reset implements Model.
func (m *RidgeClosed) Reset() {
	for i := range m.xtx {
		for j := range m.xtx[i] {
			m.xtx[i][j] = 0
		}
		m.xty[i] = 0
		m.w[i] = 0
	}
	m.dirty = false
	m.seen = 0
}

// SolveLinear solves A·x = b by Gaussian elimination with partial
// pivoting. It returns (x, true) on success or (nil, false) when A is
// singular to working precision. A and b are not modified. It panics on a
// non-square or mismatched system.
func SolveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	if n == 0 || len(b) != n {
		panic(fmt.Sprintf("learner: SolveLinear needs square system, got %dx? and b of %d", n, len(b)))
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			panic("learner: SolveLinear matrix is not square")
		}
		m[i] = make([]float64, n)
		copy(m[i], a[i])
	}
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, true
}
