package learner

import (
	"fmt"
	"sort"
	"sync"

	"zombie/internal/rng"
)

// Metric selects the quality measure a Holdout evaluator reports. All
// metrics are oriented so that higher is better, which the Zombie engine's
// reward functions and early-stopping detector rely on.
type Metric int

const (
	// MetricAccuracy is classification accuracy.
	MetricAccuracy Metric = iota
	// MetricF1 is the F1 of the evaluator's Positive class — the paper's
	// headline measure for extraction tasks, where positives are rare.
	MetricF1
	// MetricMacroF1 is the unweighted mean F1 across classes.
	MetricMacroF1
	// MetricR2 is the coefficient of determination for regression.
	MetricR2
	// MetricNegRMSE is -RMSE so that higher remains better.
	MetricNegRMSE
)

// String returns the metric's table label.
func (m Metric) String() string {
	switch m {
	case MetricAccuracy:
		return "accuracy"
	case MetricF1:
		return "f1"
	case MetricMacroF1:
		return "macro-f1"
	case MetricR2:
		return "r2"
	case MetricNegRMSE:
		return "-rmse"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// IsClassification reports whether the metric applies to classifiers.
func (m Metric) IsClassification() bool {
	return m == MetricAccuracy || m == MetricF1 || m == MetricMacroF1
}

// Holdout evaluates a model against a fixed labeled example set. Zombie
// computes its learning curve — and its quality-delta rewards — by
// re-evaluating the incrementally trained model against this set as inputs
// stream in. The holdout is built once per task from ground-truth labels
// (in the paper: the engineer's labeled evaluation data) and never fed to
// the model.
type Holdout struct {
	Examples []Example
	Metric   Metric
	// Positive is the class treated as positive by MetricF1.
	Positive int
}

// NewHoldout returns an evaluator over the given examples. It panics on an
// empty example set.
func NewHoldout(examples []Example, metric Metric, positive int) *Holdout {
	if len(examples) == 0 {
		panic("learner: Holdout requires at least one example")
	}
	return &Holdout{Examples: examples, Metric: metric, Positive: positive}
}

// Quality evaluates the model and returns the configured metric, higher
// better. It panics when the metric does not match the model kind (e.g.,
// accuracy for a pure Regressor) so that misconfigured tasks fail loudly
// rather than optimizing a meaningless number. An untrained model (Seen()
// == 0) scores the metric's natural floor without touching the model.
func (h *Holdout) Quality(m Model) float64 {
	if m.Seen() == 0 {
		// k-NN and friends cannot predict before any example; report the
		// floor so learning curves start at a defined point.
		if h.Metric == MetricNegRMSE {
			return negRMSEFloor(h.Examples)
		}
		return 0
	}
	if h.Metric.IsClassification() {
		c := h.classifier(m)
		s := getEvalScratch(c.NumClasses())
		observeClassified(s.cm, c, h.Examples, s.buf)
		q := h.scoreClassification(s.cm)
		evalScratchPool.Put(s)
		return q
	}
	r := h.regressor(m)
	var rm RegressionMetrics
	for _, ex := range h.Examples {
		rm.Observe(ex.Target, r.Predict(ex.Features))
	}
	return h.scoreRegression(&rm)
}

// evalScratch is the per-evaluation reusable state: the confusion matrix
// and the class-score buffer handed to BufferedClassifier models. Quality
// runs once per curve point and twice per delta-reward bracket, so the
// per-call matrix and per-prediction score slice used to dominate the
// evaluation phase's allocations. Pooled because many runs (and the
// engine's parallel evaluation chunks) evaluate concurrently.
type evalScratch struct {
	cm  *ConfusionMatrix
	buf []float64
}

var evalScratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// getEvalScratch returns a scratch with a zeroed classes×classes matrix
// and a class-score buffer of at least classes entries.
func getEvalScratch(classes int) *evalScratch {
	s := evalScratchPool.Get().(*evalScratch)
	if s.cm == nil || len(s.cm.Cells) != classes {
		s.cm = NewConfusionMatrix(classes)
	} else {
		s.cm.Reset()
	}
	if len(s.buf) < classes {
		s.buf = make([]float64, classes)
	}
	return s
}

// observeClassified fills cm with one Observe per example, routing
// predictions through the caller's score buffer when the model supports
// it. The buffered and unbuffered paths return identical classes by the
// BufferedClassifier contract.
func observeClassified(cm *ConfusionMatrix, c Classifier, examples []Example, buf []float64) {
	if bc, ok := c.(BufferedClassifier); ok {
		for _, ex := range examples {
			cm.Observe(ex.Class, bc.PredictClassInto(ex.Features, buf))
		}
		return
	}
	for _, ex := range examples {
		cm.Observe(ex.Class, c.PredictClass(ex.Features))
	}
}

// classifier asserts the model matches the classification metric.
func (h *Holdout) classifier(m Model) Classifier {
	c, ok := m.(Classifier)
	if !ok {
		panic(fmt.Sprintf("learner: metric %v needs a Classifier, got %T", h.Metric, m))
	}
	return c
}

// regressor asserts the model matches the regression metric.
func (h *Holdout) regressor(m Model) Regressor {
	r, ok := m.(Regressor)
	if !ok {
		panic(fmt.Sprintf("learner: metric %v needs a Regressor, got %T", h.Metric, m))
	}
	return r
}

// scoreClassification extracts the configured metric from a filled matrix.
func (h *Holdout) scoreClassification(cm *ConfusionMatrix) float64 {
	switch h.Metric {
	case MetricAccuracy:
		return cm.Accuracy()
	case MetricF1:
		_, _, f1 := cm.PrecisionRecallF1(h.Positive)
		return f1
	default:
		return cm.MacroF1()
	}
}

// scoreRegression extracts the configured metric from accumulated errors.
func (h *Holdout) scoreRegression(rm *RegressionMetrics) float64 {
	if h.Metric == MetricR2 {
		return rm.R2()
	}
	return -rm.RMSE()
}

// negRMSEFloor returns -RMSE of the all-zero predictor, a defined starting
// point for regression learning curves.
func negRMSEFloor(examples []Example) float64 {
	var rm RegressionMetrics
	for _, ex := range examples {
		rm.Observe(ex.Target, 0)
	}
	return -rm.RMSE()
}

// StratifiedSplit partitions examples into a training pool and a holdout
// of approximately holdoutFrac of the data, preserving per-class
// proportions. Examples are shuffled with r before splitting. For
// regression tasks (no meaningful Class) use Split instead. It panics if
// holdoutFrac is outside (0,1).
func StratifiedSplit(examples []Example, holdoutFrac float64, r *rng.RNG) (train, holdout []Example) {
	if holdoutFrac <= 0 || holdoutFrac >= 1 {
		panic("learner: holdoutFrac must be in (0,1)")
	}
	byClass := map[int][]Example{}
	for _, ex := range examples {
		byClass[ex.Class] = append(byClass[ex.Class], ex)
	}
	// Iterate classes in stable order for determinism.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		group := byClass[c]
		r.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
		k := int(holdoutFrac * float64(len(group)))
		if k == 0 && len(group) > 1 {
			k = 1 // every class with 2+ examples contributes to the holdout
		}
		holdout = append(holdout, group[:k]...)
		train = append(train, group[k:]...)
	}
	r.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
	r.Shuffle(len(holdout), func(i, j int) { holdout[i], holdout[j] = holdout[j], holdout[i] })
	return train, holdout
}

// Split partitions examples into train/holdout without stratification.
// It panics if holdoutFrac is outside (0,1).
func Split(examples []Example, holdoutFrac float64, r *rng.RNG) (train, holdout []Example) {
	if holdoutFrac <= 0 || holdoutFrac >= 1 {
		panic("learner: holdoutFrac must be in (0,1)")
	}
	shuffled := append([]Example(nil), examples...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	k := int(holdoutFrac * float64(len(shuffled)))
	return shuffled[k:], shuffled[:k]
}
