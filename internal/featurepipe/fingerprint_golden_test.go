package featurepipe

import (
	"testing"

	"zombie/internal/corpus"
)

// TestGoldenFingerprints pins the fingerprint of every built-in feature
// version and of a composite. Fingerprints key the extraction cache —
// on-disk caches and session workspaces survive process restarts only if
// these strings are stable across builds. If this test breaks, the change
// invalidated every cached extraction for that feature; that can be the
// right call (the extraction logic really changed), but it must be
// deliberate: update the golden value AND note the cache invalidation in
// the change description.
func TestGoldenFingerprints(t *testing.T) {
	golden := map[string]string{
		"wiki-v1":   "c88e466a71d14387",
		"wiki-v2":   "da168e26076cd578",
		"wiki-v3":   "69a3c335d17cf963",
		"wiki-v4":   "f2e5f6811e97ca98",
		"wiki-v5":   "818c8c15c68188ec",
		"wiki-v6":   "f4199f753f8bdd22",
		"wiki-v7":   "403d06de5708757",
		"wiki-v8":   "265e56429efd0fa5",
		"song-v1":   "82eb27a4b447d73a",
		"song-v2":   "30427e1a2990d1e7",
		"image-v1":  "96b698725e372dd5",
		"image-v2":  "bdfa2a66860393df",
		"image-v3":  "bedd2aa4fe3486ab",
		"composite": "9e5e91834177f844",
	}
	features := map[string]FeatureFunc{}
	for v := 1; v <= 8; v++ {
		features[name("wiki", v)] = NewWikiFeature(v)
	}
	for v := 1; v <= 2; v++ {
		features[name("song", v)] = NewSongFeature(v, corpus.DefaultSongConfig())
	}
	for v := 1; v <= 3; v++ {
		features[name("image", v)] = NewImageFeature(v, corpus.DefaultImageConfig())
	}
	comp, err := NewCompositeFeature("golden-comp", NewWikiFeature(2), NewWikiFeature(5))
	if err != nil {
		t.Fatal(err)
	}
	features["composite"] = comp

	for key, f := range features {
		want, ok := golden[key]
		if !ok {
			t.Errorf("no golden value for %s: got %q", key, FingerprintOf(f))
			continue
		}
		if got := FingerprintOf(f); got != want {
			t.Errorf("%s fingerprint = %q, want %q (cache invalidation — see test comment)", key, got, want)
		}
	}
}

func name(kind string, v int) string {
	return kind + "-v" + string(rune('0'+v))
}
