// Package featurepipe models the feature-engineering side of Zombie: the
// engineer-written feature code that turns a raw input into a training
// example, the (simulated) cost of running that code over one input, the
// Task bundle the engine executes against, and the Session abstraction
// that strings together the engineer's successive feature-code versions —
// the trial-and-error outer loop whose inner loop Zombie accelerates.
package featurepipe

import (
	"fmt"
	"time"

	"zombie/internal/corpus"
	"zombie/internal/learner"
)

// Result is the outcome of running feature code on one raw input.
type Result struct {
	// Example is the produced training example; meaningful only when
	// Produced is true.
	Example learner.Example
	// Produced reports whether the input yielded a training example at
	// all. In extraction tasks most inputs yield nothing — that wasted
	// work is precisely what input selection avoids.
	Produced bool
	// Useful reports whether the input was useful in the task's sense
	// (e.g., produced a positive example). The engine's usefulness reward
	// is 1 exactly when this is true.
	Useful bool
}

// FeatureFunc is one version of the engineer's feature code. Extract must
// be deterministic and side-effect free: the engine may replay it, and
// per-run reproducibility depends on it.
type FeatureFunc interface {
	// Name identifies the feature-code version in traces and tables.
	Name() string
	// Dim is the dimensionality of the produced feature vectors.
	Dim() int
	// NumClasses is the number of classes the produced labels range over
	// (0 for pure regression tasks).
	NumClasses() int
	// Extract runs the feature code on one input.
	Extract(in *corpus.Input) (Result, error)
}

// CostModel charges simulated processing time per input, standing in for
// the expensive parsing/vision/audio work real feature code performs. The
// engine adds Cost(input) to its simulated clock for every processed
// input; experiment tables report that clock. With Sleep set, the cost is
// also paid in real wall-clock time (demo realism only — benches keep it
// off).
type CostModel struct {
	// PerInput is the fixed cost per input.
	PerInput time.Duration
	// PerKB is added per kilobyte of raw payload.
	PerKB time.Duration
	// Sleep makes Cost also block for the computed duration.
	Sleep bool
}

// Cost returns the simulated processing cost of in, sleeping if
// configured.
func (c CostModel) Cost(in *corpus.Input) time.Duration {
	d := c.PerInput + time.Duration(float64(c.PerKB)*float64(in.SizeBytes())/1024)
	if c.Sleep && d > 0 {
		time.Sleep(d)
	}
	return d
}

// FuncCore holds the identity fields shared by the concrete feature
// functions; embedding it keeps each implementation focused on Extract.
type FuncCore struct {
	FuncName string
	FuncDim  int
	Classes  int
}

// Name implements FeatureFunc.
func (c FuncCore) Name() string { return c.FuncName }

// Dim implements FeatureFunc.
func (c FuncCore) Dim() int { return c.FuncDim }

// NumClasses implements FeatureFunc.
func (c FuncCore) NumClasses() int { return c.Classes }

// Validate checks the core fields are sane; concrete constructors call it.
func (c FuncCore) Validate() error {
	if c.FuncName == "" {
		return fmt.Errorf("featurepipe: feature function needs a name")
	}
	if c.FuncDim <= 0 {
		return fmt.Errorf("featurepipe: %s: dim must be > 0, got %d", c.FuncName, c.FuncDim)
	}
	if c.Classes < 0 {
		return fmt.Errorf("featurepipe: %s: NumClasses must be >= 0, got %d", c.FuncName, c.Classes)
	}
	return nil
}
