package featurepipe

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"zombie/internal/corpus"
	"zombie/internal/index"
	"zombie/internal/learner"
	"zombie/internal/linalg"
)

// WikiFeature is the extraction-task feature code over wiki-like pages:
// it detects candidate pages by their entity-marker tokens and emits a
// hashed bag-of-words example labeled by ground truth (standing in for
// the engineer's distant supervision). Successive versions widen the hash
// space, boost the marker signal, and add bigrams — the kind of small
// iterative changes the paper's engineer makes between evaluation runs.
type WikiFeature struct {
	FuncCore
	// MarkerBoost multiplies the weight of entity-marker tokens.
	MarkerBoost float64
	// Bigrams adds hashed token bigrams to the feature space.
	Bigrams bool
	// NegSamplePct is the percentage (0-100) of marker-free pages that
	// still emit a negative example, keyed deterministically off the
	// input ID.
	NegSamplePct int
}

// NewWikiFeature returns the canonical version-v wiki feature code
// (v in [1,8]); quality improves with v. It panics on other versions.
func NewWikiFeature(v int) *WikiFeature {
	specs := map[int]*WikiFeature{
		1: {FuncCore: FuncCore{FuncDim: 256}, MarkerBoost: 1},
		2: {FuncCore: FuncCore{FuncDim: 1024}, MarkerBoost: 1},
		3: {FuncCore: FuncCore{FuncDim: 1024}, MarkerBoost: 3},
		4: {FuncCore: FuncCore{FuncDim: 4096}, MarkerBoost: 3},
		5: {FuncCore: FuncCore{FuncDim: 4096}, MarkerBoost: 3, Bigrams: true},
		6: {FuncCore: FuncCore{FuncDim: 8192}, MarkerBoost: 5, Bigrams: true},
		7: {FuncCore: FuncCore{FuncDim: 16384}, MarkerBoost: 5, Bigrams: true},
		8: {FuncCore: FuncCore{FuncDim: 16384}, MarkerBoost: 8, Bigrams: true},
	}
	f, ok := specs[v]
	if !ok {
		panic(fmt.Sprintf("featurepipe: no canonical wiki feature version %d", v))
	}
	f.FuncName = fmt.Sprintf("wiki-v%d", v)
	f.Classes = 2
	f.NegSamplePct = 25
	if err := f.Validate(); err != nil {
		panic(err)
	}
	return f
}

// markerSet is the lowercase entity-marker lookup shared by Extract calls.
var markerSet = func() map[string]bool {
	m := map[string]bool{}
	for _, w := range corpus.EntityMarkers {
		m[strings.ToLower(w)] = true
	}
	return m
}()

// wikiScratch is the reusable accumulation buffer behind WikiFeature
// extraction: a dense bucket array standing in for the per-call
// map[int]float64 the pre-batching code allocated, plus the list of
// touched buckets so reset is O(nnz) instead of O(FuncDim). Pooled
// because extraction runs concurrently (parallel holdout builds,
// distributed workers sharing a process).
type wikiScratch struct {
	dense   []float64
	touched []int
}

var wikiScratchPool = sync.Pool{New: func() any { return new(wikiScratch) }}

// getWikiScratch returns a scratch whose dense buffer covers dim and is
// all zeros — freshly grown buffers come zeroed from make, reused ones
// were reset entry-by-entry before Put.
func getWikiScratch(dim int) *wikiScratch {
	s := wikiScratchPool.Get().(*wikiScratch)
	if len(s.dense) < dim {
		s.dense = make([]float64, dim)
	}
	s.touched = s.touched[:0]
	return s
}

// putWikiScratch zeroes the touched entries and returns the scratch to
// the pool. touched may hold duplicates; zeroing is idempotent.
func putWikiScratch(s *wikiScratch) {
	for _, h := range s.touched {
		s.dense[h] = 0
	}
	wikiScratchPool.Put(s)
}

// add accumulates weight w into bucket h, recording the bucket the first
// time it leaves zero. Accumulation order is the caller's token order —
// the same order the old map-based code summed in, so the per-bucket
// floating-point totals are bit-identical.
func (s *wikiScratch) add(h int, w float64) {
	before := s.dense[h]
	s.dense[h] = before + w
	if before == 0 && s.dense[h] != 0 {
		s.touched = append(s.touched, h)
	}
}

// sparse builds the exact-size Sparse vector from the accumulated
// buckets: sort the touched list, skip duplicates and entries that ended
// at zero (NewSparse drops those too), and hand the slices to
// SparseFromOrdered — one allocation each for Idx and Val, nothing else.
func (s *wikiScratch) sparse(dim int) *linalg.Sparse {
	sort.Ints(s.touched)
	n := 0
	prev := -1
	for _, h := range s.touched {
		if h != prev && s.dense[h] != 0 {
			n++
		}
		prev = h
	}
	idx := make([]int, 0, n)
	val := make([]float64, 0, n)
	prev = -1
	for _, h := range s.touched {
		if h != prev && s.dense[h] != 0 {
			idx = append(idx, h)
			val = append(val, s.dense[h])
		}
		prev = h
	}
	return linalg.SparseFromOrdered(dim, idx, val)
}

// Extract implements FeatureFunc.
func (f *WikiFeature) Extract(in *corpus.Input) (Result, error) {
	if in.Kind != corpus.TextKind {
		return Result{}, fmt.Errorf("featurepipe: %s: input %s is not text", f.FuncName, in.ID)
	}
	tokens := index.Tokenize(in.Text)
	hasMarker := false
	for _, tok := range tokens {
		if markerSet[tok] {
			hasMarker = true
			break
		}
	}
	if !hasMarker {
		// No candidate on the page. Sometimes emit a plain negative so the
		// learner sees background pages; deterministic via the ID hash.
		if index.HashToken(in.ID, 100) >= f.NegSamplePct {
			return Result{}, nil
		}
	}
	scratch := getWikiScratch(f.FuncDim)
	var prev string
	for _, tok := range tokens {
		w := 1.0
		if markerSet[tok] {
			w = f.MarkerBoost
		}
		scratch.add(index.HashToken(tok, f.FuncDim), w)
		if f.Bigrams && prev != "" {
			scratch.add(index.HashTokenPair(prev, tok, f.FuncDim), 1)
		}
		prev = tok
	}
	vec := scratch.sparse(f.FuncDim)
	putWikiScratch(scratch)
	ex := learner.Example{
		Features: learner.SparseVec(vec),
		Class:    in.Truth.Class,
	}
	return Result{Example: ex, Produced: true, Useful: in.Truth.Class == 1}, nil
}

// SongFeature is the genre-classification feature code over song records:
// the raw timbre vector, optionally augmented with squared terms (a later
// "version" an engineer might try). Usefulness marks examples of the rare
// genre half — the examples macro-F1 is starved for.
type SongFeature struct {
	FuncCore
	// Squares appends per-dimension squared features.
	Squares bool
	// Genres is the total number of genres (classes).
	Genres  int
	baseDim int
}

// NewSongFeature returns the version-v song feature code (v in [1,2]) for
// corpora generated with the given SongConfig dimensions.
func NewSongFeature(v int, cfg corpus.SongConfig) *SongFeature {
	f := &SongFeature{Genres: cfg.Genres, baseDim: cfg.Dim}
	dim := cfg.Dim
	switch v {
	case 1:
	case 2:
		f.Squares = true
		dim = 2 * cfg.Dim
	default:
		panic(fmt.Sprintf("featurepipe: no canonical song feature version %d", v))
	}
	f.FuncCore = FuncCore{
		FuncName: fmt.Sprintf("song-v%d", v),
		FuncDim:  dim,
		Classes:  cfg.Genres,
	}
	if err := f.Validate(); err != nil {
		panic(err)
	}
	return f
}

// Extract implements FeatureFunc.
func (f *SongFeature) Extract(in *corpus.Input) (Result, error) {
	if in.Kind != corpus.NumericKind || len(in.Values) != f.baseDim {
		return Result{}, fmt.Errorf("featurepipe: %s: input %s has wrong payload", f.FuncName, in.ID)
	}
	vals := make([]float64, 0, f.FuncDim)
	vals = append(vals, in.Values...)
	if f.Squares {
		for _, x := range in.Values {
			vals = append(vals, x*x)
		}
	}
	ex := learner.Example{
		Features: learner.DenseVec(vals),
		Class:    in.Truth.Class,
		Target:   in.Truth.Target,
	}
	// Rare-genre examples are the useful ones: Zipf popularity makes the
	// upper half of genre indices scarce.
	useful := in.Truth.Class >= f.Genres/2
	return Result{Example: ex, Produced: true, Useful: useful}, nil
}

// ImageFeature is the rare-class detection feature code over image
// descriptors. Useful inputs are the positives the detector is starving
// for (the paper's strongest speedup regime).
type ImageFeature struct {
	FuncCore
	baseDim int
	// Normalize L2-normalizes descriptors (the engineer's v2 tweak).
	Normalize bool
	// Squares appends per-dimension squared terms (the engineer's v3
	// change), which lets a linear model express spherical boundaries —
	// exactly what a compact rare class needs.
	Squares bool
}

// NewImageFeature returns the version-v image feature code (v in [1,3])
// for corpora generated with the given ImageConfig dimensions.
func NewImageFeature(v int, cfg corpus.ImageConfig) *ImageFeature {
	f := &ImageFeature{baseDim: cfg.Dim}
	dim := cfg.Dim
	switch v {
	case 1:
	case 2:
		f.Normalize = true
	case 3:
		f.Squares = true
		dim = 2 * cfg.Dim
	default:
		panic(fmt.Sprintf("featurepipe: no canonical image feature version %d", v))
	}
	f.FuncCore = FuncCore{
		FuncName: fmt.Sprintf("image-v%d", v),
		FuncDim:  dim,
		Classes:  2,
	}
	if err := f.Validate(); err != nil {
		panic(err)
	}
	return f
}

// Extract implements FeatureFunc.
func (f *ImageFeature) Extract(in *corpus.Input) (Result, error) {
	if in.Kind != corpus.NumericKind || len(in.Values) != f.baseDim {
		return Result{}, fmt.Errorf("featurepipe: %s: input %s has wrong payload", f.FuncName, in.ID)
	}
	vals := make([]float64, 0, f.FuncDim)
	vals = append(vals, in.Values...)
	if f.Normalize {
		linalg.Normalize(vals)
	}
	if f.Squares {
		for _, x := range in.Values {
			vals = append(vals, x*x)
		}
	}
	ex := learner.Example{
		Features: learner.DenseVec(vals),
		Class:    in.Truth.Class,
	}
	return Result{Example: ex, Produced: true, Useful: in.Truth.Class == 1}, nil
}
