package featurepipe

import "fmt"

// Session is one feature-engineering session: an ordered series of
// feature-code versions the engineer evaluates in turn, each informed by
// the previous run's verdict. The paper's end-to-end claim (engineer wait
// time cut from 8 to 5 hours) is about the *sum* of inner-loop times
// across a session; experiment T3 reproduces it by replaying a session
// under both the scan baseline and Zombie.
type Session struct {
	// Name labels the session.
	Name string
	// Versions are the successive feature-code versions, oldest first.
	Versions []FeatureFunc
	// ThinkTime is the fixed engineer time between runs (reading results,
	// editing code); it is identical under both systems and dilutes the
	// relative speedup exactly as in the paper's 8h→5h arithmetic.
	ThinkTimeMinutes float64
}

// NewSession validates and returns a session. It returns an error when no
// versions are supplied or any version is nil.
func NewSession(name string, thinkTimeMinutes float64, versions ...FeatureFunc) (*Session, error) {
	if len(versions) == 0 {
		return nil, fmt.Errorf("featurepipe: session %s needs at least one version", name)
	}
	for i, v := range versions {
		if v == nil {
			return nil, fmt.Errorf("featurepipe: session %s: version %d is nil", name, i)
		}
	}
	if thinkTimeMinutes < 0 {
		return nil, fmt.Errorf("featurepipe: session %s: negative think time", name)
	}
	return &Session{Name: name, Versions: versions, ThinkTimeMinutes: thinkTimeMinutes}, nil
}

// StandardWikiSession returns the 8-iteration wiki engineering session
// used by experiment T3: the engineer starts with a low-capacity hashed
// bag of words and incrementally widens the hash space, boosts the
// infobox-marker signal and adds bigrams.
func StandardWikiSession() *Session {
	versions := make([]FeatureFunc, 0, 8)
	for v := 1; v <= 8; v++ {
		versions = append(versions, NewWikiFeature(v))
	}
	s, err := NewSession("wiki-session", 10, versions...)
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return s
}
