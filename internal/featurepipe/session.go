package featurepipe

import "fmt"

// Session is one feature-engineering session: an ordered series of
// feature-code versions the engineer evaluates in turn, each informed by
// the previous run's verdict. The paper's end-to-end claim (engineer wait
// time cut from 8 to 5 hours) is about the *sum* of inner-loop times
// across a session; experiment T3 reproduces it by replaying a session
// under both the scan baseline and Zombie.
type Session struct {
	// Name labels the session.
	Name string
	// Versions are the successive feature-code versions, oldest first.
	Versions []FeatureFunc
	// ThinkTime is the fixed engineer time between runs (reading results,
	// editing code); it is identical under both systems and dilutes the
	// relative speedup exactly as in the paper's 8h→5h arithmetic.
	ThinkTimeMinutes float64
}

// NewSession validates and returns a session. It returns an error when no
// versions are supplied or any version is nil.
func NewSession(name string, thinkTimeMinutes float64, versions ...FeatureFunc) (*Session, error) {
	if len(versions) == 0 {
		return nil, fmt.Errorf("featurepipe: session %s needs at least one version", name)
	}
	for i, v := range versions {
		if v == nil {
			return nil, fmt.Errorf("featurepipe: session %s: version %d is nil", name, i)
		}
	}
	if thinkTimeMinutes < 0 {
		return nil, fmt.Errorf("featurepipe: session %s: negative think time", name)
	}
	return &Session{Name: name, Versions: versions, ThinkTimeMinutes: thinkTimeMinutes}, nil
}

// Transition is the bookkeeping for one version step of a session: how
// many of the new version's parts carry a fingerprint already present in
// the previous version. This is exactly the quantity the part-level
// extraction cache exploits — SharedParts/TotalParts of the next
// iteration's extraction work was already computed by the previous one. A
// non-composite version counts as a single part.
type Transition struct {
	// From and To are the version names on either side of the step.
	From, To string
	// SharedParts of the To version's TotalParts match a part fingerprint
	// of the From version.
	SharedParts int
	TotalParts  int
}

// Transitions returns the session's version-transition bookkeeping, one
// entry per consecutive version pair (empty for single-version sessions).
func (s *Session) Transitions() []Transition {
	if len(s.Versions) < 2 {
		return nil
	}
	out := make([]Transition, 0, len(s.Versions)-1)
	for i := 1; i < len(s.Versions); i++ {
		remaining := map[string]int{}
		for _, fp := range partFingerprints(s.Versions[i-1]) {
			remaining[fp]++
		}
		cur := partFingerprints(s.Versions[i])
		shared := 0
		for _, fp := range cur {
			if remaining[fp] > 0 {
				remaining[fp]--
				shared++
			}
		}
		out = append(out, Transition{
			From:        s.Versions[i-1].Name(),
			To:          s.Versions[i].Name(),
			SharedParts: shared,
			TotalParts:  len(cur),
		})
	}
	return out
}

// partFingerprints returns the cache-relevant identity of f: its parts'
// fingerprints for a composite, its own fingerprint otherwise.
func partFingerprints(f FeatureFunc) []string {
	if comp, ok := f.(*CompositeFeature); ok {
		fps := make([]string, len(comp.parts))
		for i, p := range comp.parts {
			fps[i] = FingerprintOf(p)
		}
		return fps
	}
	return []string{FingerprintOf(f)}
}

// StandardWikiSession returns the 8-iteration wiki engineering session
// used by experiment T3: the engineer starts with a low-capacity hashed
// bag of words and incrementally widens the hash space, boosts the
// infobox-marker signal and adds bigrams.
func StandardWikiSession() *Session {
	versions := make([]FeatureFunc, 0, 8)
	for v := 1; v <= 8; v++ {
		versions = append(versions, NewWikiFeature(v))
	}
	s, err := NewSession("wiki-session", 10, versions...)
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return s
}

// CompositeWikiSession returns a 4-iteration engineering session over
// three-part composite feature code where each iteration edits exactly
// one part — the session shape under which part-level extraction caching
// pays: two thirds of every iteration's extraction work was already
// computed by the previous one. The cache benchmark (C1) replays it cold
// and warm.
func CompositeWikiSession() *Session {
	mk := func(v int, parts ...FeatureFunc) FeatureFunc {
		c, err := NewCompositeFeature(fmt.Sprintf("cwiki-v%d", v), parts...)
		if err != nil {
			panic(err) // static construction cannot fail
		}
		return c
	}
	versions := []FeatureFunc{
		mk(1, NewWikiFeature(2), NewWikiFeature(4), NewWikiFeature(5)),
		mk(2, NewWikiFeature(2), NewWikiFeature(4), NewWikiFeature(6)),
		mk(3, NewWikiFeature(3), NewWikiFeature(4), NewWikiFeature(6)),
		mk(4, NewWikiFeature(3), NewWikiFeature(4), NewWikiFeature(8)),
	}
	s, err := NewSession("cwiki-session", 10, versions...)
	if err != nil {
		panic(err)
	}
	return s
}
