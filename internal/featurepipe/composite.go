package featurepipe

import (
	"fmt"

	"zombie/internal/corpus"
	"zombie/internal/learner"
	"zombie/internal/linalg"
)

// CompositeFeature concatenates the feature vectors of several feature
// functions into one — the "add a new signal to the existing code" step of
// an engineering session, without rewriting the earlier extractors. The
// composite produces an example only when every part produces one (each
// part sees the same raw input); labels are taken from the first part, and
// the input counts as useful if any part marks it useful.
type CompositeFeature struct {
	FuncCore
	parts []FeatureFunc
}

// NewCompositeFeature builds a composite over the given parts. It returns
// an error when fewer than two parts are supplied or the parts disagree on
// class count.
func NewCompositeFeature(name string, parts ...FeatureFunc) (*CompositeFeature, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("featurepipe: composite %s needs at least two parts", name)
	}
	dim := 0
	classes := parts[0].NumClasses()
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("featurepipe: composite %s: part %d is nil", name, i)
		}
		if p.NumClasses() != classes {
			return nil, fmt.Errorf("featurepipe: composite %s: part %s has %d classes, want %d",
				name, p.Name(), p.NumClasses(), classes)
		}
		dim += p.Dim()
	}
	c := &CompositeFeature{
		FuncCore: FuncCore{FuncName: name, FuncDim: dim, Classes: classes},
		parts:    parts,
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Extract implements FeatureFunc.
func (c *CompositeFeature) Extract(in *corpus.Input) (Result, error) {
	// Parts emit non-zeros in increasing index order and their offset
	// ranges are disjoint, so the concatenated coordinates arrive already
	// sorted — the assembly is O(nnz) with no map or sort.
	offset := 0
	var idx []int
	var val []float64
	useful := false
	var first *Result
	for _, p := range c.parts {
		res, err := p.Extract(in)
		if err != nil {
			return Result{}, fmt.Errorf("featurepipe: composite %s: part %s: %w", c.FuncName, p.Name(), err)
		}
		if !res.Produced {
			return Result{}, nil
		}
		if got := res.Example.Features.Dim(); got != p.Dim() {
			return Result{}, fmt.Errorf("featurepipe: composite %s: part %s produced dim %d, declared %d",
				c.FuncName, p.Name(), got, p.Dim())
		}
		if first == nil {
			r := res
			first = &r
		}
		useful = useful || res.Useful
		res.Example.Features.ForEachNonZero(func(i int, x float64) {
			idx = append(idx, offset+i)
			val = append(val, x)
		})
		offset += p.Dim()
	}
	ex := learner.Example{
		Features: learner.SparseVec(linalg.SparseFromOrdered(c.FuncDim, idx, val)),
		Class:    first.Example.Class,
		Target:   first.Example.Target,
	}
	return Result{Example: ex, Produced: true, Useful: useful}, nil
}
