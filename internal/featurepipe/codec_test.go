package featurepipe

import (
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/rng"
)

func codecRoundTrip(t *testing.T, res Result) Result {
	t.Helper()
	b, err := ResultCodec{}.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ResultCodec{}.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	return v.(Result)
}

func TestResultCodecRoundTrip(t *testing.T) {
	// Sparse results (wiki) and dense results (songs) through real feature
	// code, plus the not-produced case.
	wiki := NewWikiFeature(5)
	wcfg := corpus.DefaultWikiConfig()
	wcfg.N = 120
	wins, _ := corpus.GenerateWiki(wcfg, rng.New(200))
	sparseSeen, skippedSeen := false, false
	for _, in := range wins {
		res, err := wiki.Extract(in)
		if err != nil {
			t.Fatal(err)
		}
		got := codecRoundTrip(t, res)
		if !sameResult(res, got) {
			t.Fatalf("wiki round trip drifted on %s", in.ID)
		}
		if res.Produced && res.Example.Features.IsSparse() {
			if !got.Example.Features.IsSparse() {
				t.Fatal("sparse vector decoded dense")
			}
			sparseSeen = true
		}
		skippedSeen = skippedSeen || !res.Produced
	}
	if !sparseSeen || !skippedSeen {
		t.Fatalf("coverage: sparse=%v skipped=%v", sparseSeen, skippedSeen)
	}

	scfg := corpus.DefaultSongConfig()
	scfg.N = 40
	sins, _ := corpus.GenerateSongs(scfg, rng.New(201))
	song := NewSongFeature(2, scfg)
	for _, in := range sins {
		res, err := song.Extract(in)
		if err != nil {
			t.Fatal(err)
		}
		got := codecRoundTrip(t, res)
		if !sameResult(res, got) {
			t.Fatal("song round trip drifted")
		}
		if got.Example.Features.IsSparse() {
			t.Fatal("dense vector decoded sparse")
		}
		if got.Example.Target != in.Truth.Target {
			t.Fatal("regression target lost")
		}
	}
}

func TestResultCodecRejectsCorruptRecords(t *testing.T) {
	res, err := NewWikiFeature(2).Extract(markerInput("c"))
	if err != nil || !res.Produced {
		t.Fatal("fixture extraction failed")
	}
	good, err := ResultCodec{}.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (ResultCodec{}).Decode(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if _, err := (ResultCodec{}).Decode([]byte{99, 0}); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := (ResultCodec{}).Decode(good[:len(good)-3]); err == nil {
		t.Fatal("truncated body accepted")
	}
	if _, err := (ResultCodec{}).Decode(good[:5]); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Zero out a sparse value: the strictly-nonzero invariant must reject
	// it rather than hand linalg a malformed vector.
	bad := append([]byte(nil), good...)
	for i := len(bad) - 8; i < len(bad); i++ {
		bad[i] = 0
	}
	if _, err := (ResultCodec{}).Decode(bad); err == nil {
		t.Fatal("zero sparse value accepted")
	}
	if _, err := (ResultCodec{}).Encode("not a result"); err == nil {
		t.Fatal("foreign type accepted")
	}
}
