package featurepipe

import (
	"strings"
	"testing"
	"time"

	"zombie/internal/corpus"
	"zombie/internal/learner"
	"zombie/internal/rng"
)

func wikiInputs(t testing.TB, n int, seed int64) []*corpus.Input {
	t.Helper()
	cfg := corpus.DefaultWikiConfig()
	cfg.N = n
	ins, err := corpus.GenerateWiki(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestWikiFeatureExtract(t *testing.T) {
	f := NewWikiFeature(4)
	if f.Dim() != 4096 || f.NumClasses() != 2 || f.Name() != "wiki-v4" {
		t.Fatalf("metadata wrong: %s dim=%d", f.Name(), f.Dim())
	}
	ins := wikiInputs(t, 500, 100)
	produced, useful, relevant := 0, 0, 0
	for _, in := range ins {
		res, err := f.Extract(in)
		if err != nil {
			t.Fatal(err)
		}
		if in.Truth.Relevant {
			relevant++
			if !res.Produced || !res.Useful {
				t.Fatal("relevant page must produce a useful example")
			}
			if res.Example.Class != 1 {
				t.Fatal("relevant label wrong")
			}
		}
		if res.Produced {
			produced++
			if res.Example.Features.Dim() != f.Dim() {
				t.Fatal("feature dim wrong")
			}
			if res.Useful {
				useful++
			}
		}
	}
	if useful != relevant {
		t.Fatalf("useful (%d) should equal relevant (%d) for wiki", useful, relevant)
	}
	// Negative sampling: some but not all irrelevant pages produce.
	if produced <= relevant {
		t.Fatal("no negative examples produced")
	}
	if produced >= len(ins) {
		t.Fatal("every page produced an example; extraction waste missing")
	}
}

func TestWikiFeatureDeterministic(t *testing.T) {
	f := NewWikiFeature(2)
	in := wikiInputs(t, 10, 101)[3]
	a, _ := f.Extract(in)
	b, _ := f.Extract(in)
	if a.Produced != b.Produced || a.Useful != b.Useful {
		t.Fatal("extraction not deterministic")
	}
	if a.Produced && a.Example.Features.Norm2Sq() != b.Example.Features.Norm2Sq() {
		t.Fatal("feature vectors differ across calls")
	}
}

func TestWikiFeatureVersionsImproveSignal(t *testing.T) {
	// Higher versions boost markers: the marker bucket weight must grow.
	in := &corpus.Input{
		Kind:  corpus.TextKind,
		Text:  "infobox born career w1 w2 w3",
		ID:    "x",
		Truth: corpus.Truth{Relevant: true, Class: 1},
	}
	r3, _ := NewWikiFeature(3).Extract(in)
	r2, _ := NewWikiFeature(2).Extract(in)
	if !r3.Produced || !r2.Produced {
		t.Fatal("marker page must produce")
	}
	if r3.Example.Features.Norm2Sq() <= r2.Example.Features.Norm2Sq() {
		t.Fatal("marker boost should increase feature mass")
	}
	mustPanic(t, "version", func() { NewWikiFeature(99) })
}

func TestWikiFeatureRejectsNumeric(t *testing.T) {
	f := NewWikiFeature(1)
	if _, err := f.Extract(&corpus.Input{Kind: corpus.NumericKind, Values: []float64{1}}); err == nil {
		t.Fatal("expected kind error")
	}
}

func TestSongFeature(t *testing.T) {
	cfg := corpus.DefaultSongConfig()
	cfg.N = 200
	ins, _ := corpus.GenerateSongs(cfg, rng.New(102))
	v1 := NewSongFeature(1, cfg)
	v2 := NewSongFeature(2, cfg)
	if v1.Dim() != cfg.Dim || v2.Dim() != 2*cfg.Dim {
		t.Fatalf("dims: v1=%d v2=%d", v1.Dim(), v2.Dim())
	}
	for _, in := range ins {
		r1, err := v1.Extract(in)
		if err != nil || !r1.Produced {
			t.Fatal("song extraction failed")
		}
		if r1.Example.Class != in.Truth.Class || r1.Example.Target != in.Truth.Target {
			t.Fatal("labels wrong")
		}
		wantUseful := in.Truth.Class >= cfg.Genres/2
		if r1.Useful != wantUseful {
			t.Fatal("rare-genre usefulness wrong")
		}
		r2, _ := v2.Extract(in)
		if r2.Example.Features.Dim() != 2*cfg.Dim {
			t.Fatal("squares missing")
		}
		// squared features match
		if r2.Example.Features.At(cfg.Dim) != in.Values[0]*in.Values[0] {
			t.Fatal("squared term wrong")
		}
	}
	mustPanic(t, "version", func() { NewSongFeature(3, cfg) })
	if _, err := v1.Extract(&corpus.Input{Kind: corpus.TextKind, Text: "x"}); err == nil {
		t.Fatal("expected kind error")
	}
}

func TestImageFeature(t *testing.T) {
	cfg := corpus.DefaultImageConfig()
	cfg.N = 300
	ins, _ := corpus.GenerateImages(cfg, rng.New(103))
	v1 := NewImageFeature(1, cfg)
	v2 := NewImageFeature(2, cfg)
	posUseful := 0
	for _, in := range ins {
		r1, err := v1.Extract(in)
		if err != nil || !r1.Produced {
			t.Fatal("image extraction failed")
		}
		if r1.Useful {
			posUseful++
			if in.Truth.Class != 1 {
				t.Fatal("useful non-positive")
			}
		}
		r2, _ := v2.Extract(in)
		n := r2.Example.Features.Norm2Sq()
		if n > 1.0001 {
			t.Fatalf("v2 should normalize, norm²=%v", n)
		}
	}
	if posUseful == 0 {
		t.Fatal("no useful images found")
	}
	mustPanic(t, "version", func() { NewImageFeature(5, cfg) })
}

func TestCostModel(t *testing.T) {
	c := CostModel{PerInput: 10 * time.Millisecond, PerKB: 2 * time.Millisecond}
	in := &corpus.Input{Kind: corpus.TextKind, Text: strings.Repeat("a", 2048)}
	got := c.Cost(in)
	want := 10*time.Millisecond + 4*time.Millisecond
	if got != want {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
	// Sleep actually blocks.
	cs := CostModel{PerInput: 5 * time.Millisecond, Sleep: true}
	start := time.Now()
	cs.Cost(in)
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("Sleep cost did not block")
	}
}

func newTestTask(t *testing.T, n int, seed int64) *Task {
	t.Helper()
	ins := wikiInputs(t, n, seed)
	f := NewWikiFeature(3)
	task, err := NewTask("wiki", corpus.NewMemStore(ins), f,
		func(ff FeatureFunc) learner.Model {
			return learner.NewLogisticSGD(ff.Dim(), 0.5, 0, learner.ConstantLR)
		},
		learner.MetricF1, 1, CostModel{}, TaskOptions{}, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewTaskSplit(t *testing.T) {
	task := newTestTask(t, 1000, 104)
	if len(task.PoolIdx)+len(task.HoldoutIdx) != 1000 {
		t.Fatalf("split lost inputs: %d + %d", len(task.PoolIdx), len(task.HoldoutIdx))
	}
	if len(task.HoldoutIdx) < 80 || len(task.HoldoutIdx) > 120 {
		t.Fatalf("holdout size %d, want ~100", len(task.HoldoutIdx))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, task.PoolIdx...), task.HoldoutIdx...) {
		if seen[i] {
			t.Fatalf("index %d in both pool and holdout", i)
		}
		seen[i] = true
	}
	// Stratified: holdout contains relevant pages.
	rel := 0
	for _, i := range task.HoldoutIdx {
		if task.Store.Get(i).Truth.Relevant {
			rel++
		}
	}
	if rel == 0 {
		t.Fatal("stratified holdout lost the positive class")
	}
	mask := task.PoolSet()
	for _, i := range task.HoldoutIdx {
		if mask[i] {
			t.Fatal("PoolSet includes holdout input")
		}
	}
	for _, i := range task.PoolIdx {
		if !mask[i] {
			t.Fatal("PoolSet missing pool input")
		}
	}
}

func TestBuildHoldout(t *testing.T) {
	task := newTestTask(t, 800, 105)
	h, err := task.BuildHoldout()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Examples) == 0 || len(h.Examples) > len(task.HoldoutIdx) {
		t.Fatalf("holdout examples = %d", len(h.Examples))
	}
	if h.Metric != learner.MetricF1 || h.Positive != 1 {
		t.Fatal("holdout config wrong")
	}
	// Must contain at least one positive example or F1 is meaningless.
	pos := 0
	for _, ex := range h.Examples {
		if ex.Class == 1 {
			pos++
		}
	}
	if pos == 0 {
		t.Fatal("holdout has no positive examples")
	}
}

func TestBuildHoldoutPropagatesErrors(t *testing.T) {
	task := newTestTask(t, 300, 106)
	task.Feature = &FaultyFeature{Inner: task.Feature, ErrPct: 100}
	if _, err := task.BuildHoldout(); err == nil {
		t.Fatal("expected holdout extraction error")
	}
}

func TestNewTaskValidation(t *testing.T) {
	ins := wikiInputs(t, 50, 107)
	store := corpus.NewMemStore(ins)
	f := NewWikiFeature(1)
	nm := func(ff FeatureFunc) learner.Model { return learner.NewPerceptron(ff.Dim(), 2) }
	if _, err := NewTask("x", corpus.NewMemStore(nil), f, nm, learner.MetricF1, 1, CostModel{}, TaskOptions{}, rng.New(1)); err == nil {
		t.Fatal("empty store should fail")
	}
	if _, err := NewTask("x", store, nil, nm, learner.MetricF1, 1, CostModel{}, TaskOptions{}, rng.New(1)); err == nil {
		t.Fatal("nil feature should fail")
	}
	if _, err := NewTask("x", store, f, nil, learner.MetricF1, 1, CostModel{}, TaskOptions{}, rng.New(1)); err == nil {
		t.Fatal("nil model factory should fail")
	}
	if _, err := NewTask("x", store, f, nm, learner.MetricF1, 1, CostModel{}, TaskOptions{HoldoutFrac: 2}, rng.New(1)); err == nil {
		t.Fatal("bad HoldoutFrac should fail")
	}
}

func TestWithFeature(t *testing.T) {
	task := newTestTask(t, 300, 108)
	v5 := NewWikiFeature(5)
	t2 := task.WithFeature(v5)
	if t2.Feature.Name() != "wiki-v5" {
		t.Fatal("WithFeature did not swap feature")
	}
	if task.Feature.Name() == "wiki-v5" {
		t.Fatal("WithFeature mutated original")
	}
	if &task.PoolIdx[0] != &t2.PoolIdx[0] {
		t.Fatal("WithFeature should share the split")
	}
}

func TestSession(t *testing.T) {
	s := StandardWikiSession()
	if len(s.Versions) != 8 {
		t.Fatalf("standard session has %d versions", len(s.Versions))
	}
	for i, v := range s.Versions {
		if v.Name() == "" || v.Dim() <= 0 {
			t.Fatalf("version %d malformed", i)
		}
	}
	if _, err := NewSession("x", 5); err == nil {
		t.Fatal("empty session should fail")
	}
	if _, err := NewSession("x", 5, nil); err == nil {
		t.Fatal("nil version should fail")
	}
	if _, err := NewSession("x", -1, NewWikiFeature(1)); err == nil {
		t.Fatal("negative think time should fail")
	}
}

func TestFaultyFeature(t *testing.T) {
	inner := NewWikiFeature(1)
	f := &FaultyFeature{Inner: inner, ErrPct: 30, PanicPct: 10}
	if f.Dim() != inner.Dim() || f.NumClasses() != 2 || !strings.Contains(f.Name(), "faults") {
		t.Fatal("wrapper metadata wrong")
	}
	ins := wikiInputs(t, 400, 109)
	errs, panics, ok := 0, 0, 0
	for _, in := range ins {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			if _, err := f.Extract(in); err != nil {
				errs++
			} else {
				ok++
			}
		}()
	}
	if errs == 0 || panics == 0 || ok == 0 {
		t.Fatalf("fault mix wrong: errs=%d panics=%d ok=%d", errs, panics, ok)
	}
	// Deterministic: same input fails the same way.
	var firstErr bool
	for _, in := range ins {
		if _, err := func() (r Result, err error) {
			defer func() { recover() }()
			return f.Extract(in)
		}(); err != nil {
			firstErr = true
			if _, err2 := func() (r Result, err error) {
				defer func() { recover() }()
				return f.Extract(in)
			}(); err2 == nil {
				t.Fatal("fault injection not deterministic")
			}
			break
		}
	}
	if !firstErr {
		t.Fatal("no error found to check determinism")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
