package featurepipe

import "testing"

// BenchmarkWikiExtract measures the tokenize → hash → sparse-vector path
// for one input, the per-step cost every bandit pull pays. The pooled
// dense scratch should keep allocs/op flat regardless of token count.
func BenchmarkWikiExtract(b *testing.B) {
	f := NewWikiFeature(3)
	ins := wikiInputs(b, 256, 900)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Extract(ins[i%len(ins)]); err != nil {
			b.Fatal(err)
		}
	}
}
