package featurepipe

import (
	"encoding/binary"
	"fmt"
	"math"

	"zombie/internal/learner"
	"zombie/internal/linalg"
)

// ResultCodec serializes extraction Results for the disk half of the
// extraction cache (featcache.Codec). The format is a compact
// little-endian binary layout — versioned so a future change invalidates
// old records by failing to decode rather than silently misreading them:
//
//	u8 version (1)
//	u8 flags: bit0 produced, bit1 useful, bit2 sparse features
//	-- remaining fields only when produced --
//	i32 class | f64 target | u32 dim
//	sparse: u32 nnz, then nnz × (u32 idx, f64 val)
//	dense:  u32 n,   then n × f64
type ResultCodec struct{}

const resultCodecVersion = 1

// Encode implements featcache.Codec.
func (ResultCodec) Encode(v any) ([]byte, error) {
	res, ok := v.(Result)
	if !ok {
		return nil, fmt.Errorf("featurepipe: ResultCodec.Encode: not a Result: %T", v)
	}
	var flags byte
	if res.Produced {
		flags |= 1
	}
	if res.Useful {
		flags |= 2
	}
	if !res.Produced {
		return []byte{resultCodecVersion, flags}, nil
	}
	fv := res.Example.Features
	if fv.IsSparse() {
		flags |= 4
	}
	b := make([]byte, 0, 2+4+8+4+4+12*fv.NNZ())
	b = append(b, resultCodecVersion, flags)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(res.Example.Class)))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(res.Example.Target))
	b = binary.LittleEndian.AppendUint32(b, uint32(fv.Dim()))
	if fv.IsSparse() {
		b = binary.LittleEndian.AppendUint32(b, uint32(fv.NNZ()))
		fv.ForEachNonZero(func(i int, x float64) {
			b = binary.LittleEndian.AppendUint32(b, uint32(i))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
		})
	} else {
		dense := fv.Dense()
		b = binary.LittleEndian.AppendUint32(b, uint32(len(dense)))
		for _, x := range dense {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
		}
	}
	return b, nil
}

// Decode implements featcache.Codec.
func (ResultCodec) Decode(b []byte) (any, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("featurepipe: ResultCodec.Decode: record too short (%d bytes)", len(b))
	}
	if b[0] != resultCodecVersion {
		return nil, fmt.Errorf("featurepipe: ResultCodec.Decode: version %d, want %d", b[0], resultCodecVersion)
	}
	flags := b[1]
	res := Result{Produced: flags&1 != 0, Useful: flags&2 != 0}
	if !res.Produced {
		return res, nil
	}
	b = b[2:]
	if len(b) < 4+8+4+4 {
		return nil, fmt.Errorf("featurepipe: ResultCodec.Decode: truncated header")
	}
	res.Example.Class = int(int32(binary.LittleEndian.Uint32(b)))
	res.Example.Target = math.Float64frombits(binary.LittleEndian.Uint64(b[4:]))
	dim := int(binary.LittleEndian.Uint32(b[12:]))
	n := int(binary.LittleEndian.Uint32(b[16:]))
	b = b[20:]
	if flags&4 != 0 {
		if len(b) != 12*n {
			return nil, fmt.Errorf("featurepipe: ResultCodec.Decode: sparse body %d bytes, want %d", len(b), 12*n)
		}
		// Rebuild the vector directly (Encode wrote entries in the strictly
		// increasing, non-zero order linalg.Sparse guarantees), validating
		// the invariant so a corrupt record surfaces as an error, not a
		// panic inside vector arithmetic.
		sp := &linalg.Sparse{Dim: dim, Idx: make([]int, n), Val: make([]float64, n)}
		prev := -1
		for k := 0; k < n; k++ {
			i := int(binary.LittleEndian.Uint32(b[12*k:]))
			x := math.Float64frombits(binary.LittleEndian.Uint64(b[12*k+4:]))
			if i <= prev || i >= dim || x == 0 {
				return nil, fmt.Errorf("featurepipe: ResultCodec.Decode: invalid sparse entry %d (idx %d)", k, i)
			}
			sp.Idx[k], sp.Val[k] = i, x
			prev = i
		}
		res.Example.Features = learner.SparseVec(sp)
	} else {
		if len(b) != 8*n {
			return nil, fmt.Errorf("featurepipe: ResultCodec.Decode: dense body %d bytes, want %d", len(b), 8*n)
		}
		dense := make([]float64, n)
		for k := range dense {
			dense[k] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*k:]))
		}
		res.Example.Features = learner.DenseVec(dense)
	}
	return res, nil
}
