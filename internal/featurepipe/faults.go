package featurepipe

import (
	"fmt"

	"zombie/internal/corpus"
	"zombie/internal/index"
)

// FaultyFeature wraps a feature function and injects failures on a
// deterministic subset of inputs, for failure-injection tests and for
// demonstrating that the engine survives buggy feature code (a central
// reality of feature engineering: the code under evaluation is by
// definition unfinished).
type FaultyFeature struct {
	// Inner is the wrapped feature code.
	Inner FeatureFunc
	// ErrPct of inputs (by ID hash, 0-100) return an error.
	ErrPct int
	// PanicPct of inputs (by ID hash, disjoint range above ErrPct) panic.
	PanicPct int
	// Exempt inputs (by ID) never fault — e.g., the holdout inputs, whose
	// extraction happens under the engineer's eye before the run.
	Exempt map[string]bool
}

// Name implements FeatureFunc.
func (f *FaultyFeature) Name() string { return f.Inner.Name() + "+faults" }

// Dim implements FeatureFunc.
func (f *FaultyFeature) Dim() int { return f.Inner.Dim() }

// NumClasses implements FeatureFunc.
func (f *FaultyFeature) NumClasses() int { return f.Inner.NumClasses() }

// Extract implements FeatureFunc, failing deterministically by input ID.
func (f *FaultyFeature) Extract(in *corpus.Input) (Result, error) {
	if f.Exempt[in.ID] {
		return f.Inner.Extract(in)
	}
	h := index.HashToken("fault:"+in.ID, 100)
	if h < f.ErrPct {
		return Result{}, fmt.Errorf("featurepipe: injected error on %s", in.ID)
	}
	if h < f.ErrPct+f.PanicPct {
		panic(fmt.Sprintf("featurepipe: injected panic on %s", in.ID))
	}
	return f.Inner.Extract(in)
}
