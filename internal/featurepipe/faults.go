package featurepipe

import (
	"fmt"

	"zombie/internal/corpus"
	"zombie/internal/fault"
	"zombie/internal/index"
)

// WithFaults wraps feature code with seeded fault injection at
// fault.SiteExtract, keyed by input ID. Unlike FaultyFeature (a test
// double with its own hard-coded hash), the wrapper is transparent —
// Name, Dim, NumClasses and fingerprints are the inner function's, so RNG
// substreams, trace labels and cache keys are unchanged and a faulted run
// differs from a clean one only where faults actually fire. Injection
// happens before the inner Extract, so the decision is independent of
// any caching layered underneath: the same (fault seed, input) faults
// identically whether the extraction would have hit or missed.
//
// A nil injector, or one with no SiteExtract rule, returns f unchanged.
func WithFaults(f FeatureFunc, inj *fault.Injector) FeatureFunc {
	if !inj.Covers(fault.SiteExtract) {
		return f
	}
	return &faultedFunc{inner: f, inj: inj}
}

// faultedFunc injects extract-site faults in front of one feature
// function.
type faultedFunc struct {
	inner FeatureFunc
	inj   *fault.Injector
}

// Name implements FeatureFunc (transparent — see WithFaults).
func (f *faultedFunc) Name() string { return f.inner.Name() }

// Dim implements FeatureFunc.
func (f *faultedFunc) Dim() int { return f.inner.Dim() }

// NumClasses implements FeatureFunc.
func (f *faultedFunc) NumClasses() int { return f.inner.NumClasses() }

// Fingerprint implements Fingerprinter: the wrapper does not change what
// the feature computes on the inputs it lets through.
func (f *faultedFunc) Fingerprint() string { return FingerprintOf(f.inner) }

// Extract implements FeatureFunc, firing the injector first: latency
// faults stall, error faults return the injected error, panic faults
// panic into the engine's isolation.
func (f *faultedFunc) Extract(in *corpus.Input) (Result, error) {
	if err := f.inj.Fire(fault.SiteExtract, in.ID); err != nil {
		return Result{}, err
	}
	return f.inner.Extract(in)
}

// FaultyFeature wraps a feature function and injects failures on a
// deterministic subset of inputs, for failure-injection tests and for
// demonstrating that the engine survives buggy feature code (a central
// reality of feature engineering: the code under evaluation is by
// definition unfinished).
type FaultyFeature struct {
	// Inner is the wrapped feature code.
	Inner FeatureFunc
	// ErrPct of inputs (by ID hash, 0-100) return an error.
	ErrPct int
	// PanicPct of inputs (by ID hash, disjoint range above ErrPct) panic.
	PanicPct int
	// Exempt inputs (by ID) never fault — e.g., the holdout inputs, whose
	// extraction happens under the engineer's eye before the run.
	Exempt map[string]bool
}

// Name implements FeatureFunc.
func (f *FaultyFeature) Name() string { return f.Inner.Name() + "+faults" }

// Dim implements FeatureFunc.
func (f *FaultyFeature) Dim() int { return f.Inner.Dim() }

// NumClasses implements FeatureFunc.
func (f *FaultyFeature) NumClasses() int { return f.Inner.NumClasses() }

// Extract implements FeatureFunc, failing deterministically by input ID.
func (f *FaultyFeature) Extract(in *corpus.Input) (Result, error) {
	if f.Exempt[in.ID] {
		return f.Inner.Extract(in)
	}
	h := index.HashToken("fault:"+in.ID, 100)
	if h < f.ErrPct {
		return Result{}, fmt.Errorf("featurepipe: injected error on %s", in.ID)
	}
	if h < f.ErrPct+f.PanicPct {
		panic(fmt.Sprintf("featurepipe: injected panic on %s", in.ID))
	}
	return f.Inner.Extract(in)
}
