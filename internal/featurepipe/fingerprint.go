package featurepipe

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Fingerprinter is implemented by feature functions that can describe
// their extraction behavior as a stable content hash. Two feature values
// share a fingerprint exactly when Extract is guaranteed to produce
// identical results for every input — the property the extraction cache
// keys on. The canonical feature types all implement it over their full
// parameter set; see FingerprintOf for the fallback.
type Fingerprinter interface {
	Fingerprint() string
}

// FingerprintOf returns the cache fingerprint for any feature function.
// Types implementing Fingerprinter get their content hash; everything
// else falls back to (type, name, dim, classes), which is correct as long
// as distinct feature-code versions carry distinct names — the convention
// every canonical constructor follows ("wiki-v4", "song-v2", ...).
func FingerprintOf(f FeatureFunc) string {
	if fp, ok := f.(Fingerprinter); ok {
		return fp.Fingerprint()
	}
	return fpHash("fallback", fmt.Sprintf("%T", f), f.Name(),
		strconv.Itoa(f.Dim()), strconv.Itoa(f.NumClasses()))
}

// fpHash hashes the parts into a short hex fingerprint. FNV-1a is not
// collision-proof in the cryptographic sense, but fingerprints are drawn
// from a handful of feature versions per session, not an adversarial
// space.
func fpHash(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// Fingerprint implements Fingerprinter over every behavior-determining
// field of the wiki feature code.
func (f *WikiFeature) Fingerprint() string {
	return fpHash("wiki", f.FuncName, strconv.Itoa(f.FuncDim), strconv.Itoa(f.Classes),
		strconv.FormatFloat(f.MarkerBoost, 'g', -1, 64),
		strconv.FormatBool(f.Bigrams), strconv.Itoa(f.NegSamplePct))
}

// Fingerprint implements Fingerprinter.
func (f *SongFeature) Fingerprint() string {
	return fpHash("song", f.FuncName, strconv.Itoa(f.FuncDim), strconv.Itoa(f.Classes),
		strconv.FormatBool(f.Squares), strconv.Itoa(f.Genres), strconv.Itoa(f.baseDim))
}

// Fingerprint implements Fingerprinter.
func (f *ImageFeature) Fingerprint() string {
	return fpHash("image", f.FuncName, strconv.Itoa(f.FuncDim), strconv.Itoa(f.Classes),
		strconv.FormatBool(f.Normalize), strconv.FormatBool(f.Squares), strconv.Itoa(f.baseDim))
}

// Fingerprint implements Fingerprinter: the composite's identity is the
// ordered list of its parts' fingerprints, so editing one part changes
// the composite's fingerprint (and that part's) while the other parts'
// fingerprints — and their cached vectors — are untouched.
func (c *CompositeFeature) Fingerprint() string {
	parts := make([]string, 0, len(c.parts)+2)
	parts = append(parts, "composite", strconv.Itoa(c.FuncDim))
	for _, p := range c.parts {
		parts = append(parts, FingerprintOf(p))
	}
	return fpHash(parts...)
}

// Fingerprint implements Fingerprinter: fault injection changes which
// inputs succeed, so the wrapper's identity covers the fault parameters
// and the exempt set on top of the inner code's fingerprint.
func (f *FaultyFeature) Fingerprint() string {
	exempt := make([]string, 0, len(f.Exempt))
	for id, ok := range f.Exempt {
		if ok {
			exempt = append(exempt, id)
		}
	}
	sort.Strings(exempt)
	parts := append([]string{"faulty", FingerprintOf(f.Inner),
		strconv.Itoa(f.ErrPct), strconv.Itoa(f.PanicPct)}, exempt...)
	return fpHash(parts...)
}
