package featurepipe

import (
	"strings"
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/rng"
)

func TestCompositeFeatureConcatenates(t *testing.T) {
	cfg := corpus.DefaultImageConfig()
	cfg.N = 50
	ins, _ := corpus.GenerateImages(cfg, rng.New(900))
	v1 := NewImageFeature(1, cfg)
	v3 := NewImageFeature(3, cfg)
	comp, err := NewCompositeFeature("img-combo", v1, v3)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Dim() != v1.Dim()+v3.Dim() {
		t.Fatalf("composite dim = %d", comp.Dim())
	}
	if comp.NumClasses() != 2 || comp.Name() != "img-combo" {
		t.Fatal("composite metadata wrong")
	}
	for _, in := range ins[:10] {
		res, err := comp.Extract(in)
		if err != nil || !res.Produced {
			t.Fatal("composite extraction failed")
		}
		r1, _ := v1.Extract(in)
		r3, _ := v3.Extract(in)
		// First block matches part 1, second block matches part 3.
		for d := 0; d < v1.Dim(); d++ {
			if res.Example.Features.At(d) != r1.Example.Features.At(d) {
				t.Fatalf("block 1 mismatch at %d", d)
			}
		}
		for d := 0; d < v3.Dim(); d++ {
			if res.Example.Features.At(v1.Dim()+d) != r3.Example.Features.At(d) {
				t.Fatalf("block 2 mismatch at %d", d)
			}
		}
		if res.Example.Class != in.Truth.Class {
			t.Fatal("composite label wrong")
		}
		if res.Useful != (in.Truth.Class == 1) {
			t.Fatal("composite usefulness wrong")
		}
	}
}

func TestCompositeFeatureSkipsWhenAnyPartSkips(t *testing.T) {
	wcfg := corpus.DefaultWikiConfig()
	wcfg.N = 300
	ins, _ := corpus.GenerateWiki(wcfg, rng.New(901))
	v1 := NewWikiFeature(1)
	v4 := NewWikiFeature(4)
	comp, err := NewCompositeFeature("wiki-combo", v1, v4)
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, in := range ins {
		res, err := comp.Extract(in)
		if err != nil {
			t.Fatal(err)
		}
		r1, _ := v1.Extract(in)
		if res.Produced != r1.Produced {
			t.Fatal("composite production should match its parts (same candidate logic)")
		}
		if !res.Produced {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no skipped inputs; wiki extraction waste missing")
	}
}

func TestCompositeFeatureErrors(t *testing.T) {
	cfg := corpus.DefaultImageConfig()
	v1 := NewImageFeature(1, cfg)
	if _, err := NewCompositeFeature("x", v1); err == nil {
		t.Fatal("single part should fail")
	}
	if _, err := NewCompositeFeature("x", v1, nil); err == nil {
		t.Fatal("nil part should fail")
	}
	scfg := corpus.DefaultSongConfig()
	song := NewSongFeature(1, scfg)
	if _, err := NewCompositeFeature("x", v1, song); err == nil {
		t.Fatal("class-count mismatch should fail")
	}
	comp, err := NewCompositeFeature("x", v1, NewImageFeature(2, cfg))
	if err != nil {
		t.Fatal(err)
	}
	// Part errors propagate with context.
	if _, err := comp.Extract(&corpus.Input{Kind: corpus.TextKind, Text: "t"}); err == nil ||
		!strings.Contains(err.Error(), "image-v1") {
		t.Fatalf("part error not propagated: %v", err)
	}
}
