package featurepipe

import (
	"fmt"

	"zombie/internal/corpus"
	"zombie/internal/learner"
	"zombie/internal/rng"
)

// Task bundles everything one feature-evaluation run needs: the corpus,
// the feature-code version under evaluation, a learner factory, the
// quality metric, the cost model, and the index split between the input
// pool (what the run may process) and the reserved holdout (what quality
// is measured on).
type Task struct {
	// Name labels the task in traces and tables ("wiki", "songs", ...).
	Name string
	// Store is the raw corpus.
	Store corpus.Store
	// Feature is the feature-code version under evaluation.
	Feature FeatureFunc
	// NewModel constructs a fresh learner for a run, sized to the given
	// feature-code version (versions in a session may change feature
	// dimensionality).
	NewModel func(f FeatureFunc) learner.Model
	// Metric is the holdout quality measure; Positive is the class
	// MetricF1 treats as positive.
	Metric   learner.Metric
	Positive int
	// Cost simulates per-input processing expense.
	Cost CostModel
	// PoolIdx are the store indices a run may process; HoldoutIdx are
	// reserved for quality measurement and never processed by a run.
	PoolIdx    []int
	HoldoutIdx []int
}

// TaskOptions configures NewTask. Zero values get defaults.
type TaskOptions struct {
	// HoldoutFrac is the fraction of the corpus reserved for the quality
	// holdout (default 0.1).
	HoldoutFrac float64
	// Stratify splits the holdout stratified by ground-truth class so
	// rare classes are represented (default true via StratifyOff=false).
	StratifyOff bool
}

// NewTask reserves a holdout from the store and returns the assembled
// task. The split is deterministic in r.
func NewTask(name string, store corpus.Store, feature FeatureFunc,
	newModel func(f FeatureFunc) learner.Model, metric learner.Metric, positive int,
	cost CostModel, opts TaskOptions, r *rng.RNG) (*Task, error) {
	if store.Len() == 0 {
		return nil, fmt.Errorf("featurepipe: task %s: empty store", name)
	}
	if feature == nil || newModel == nil {
		return nil, fmt.Errorf("featurepipe: task %s: feature and model factory required", name)
	}
	frac := opts.HoldoutFrac
	if frac == 0 {
		frac = 0.1
	}
	if frac <= 0 || frac >= 1 {
		return nil, fmt.Errorf("featurepipe: task %s: HoldoutFrac %v out of (0,1)", name, frac)
	}
	pool, holdout := splitIndices(store, frac, !opts.StratifyOff, r)
	if len(holdout) == 0 {
		return nil, fmt.Errorf("featurepipe: task %s: holdout empty (store too small for frac %v)", name, frac)
	}
	return &Task{
		Name:       name,
		Store:      store,
		Feature:    feature,
		NewModel:   newModel,
		Metric:     metric,
		Positive:   positive,
		Cost:       cost,
		PoolIdx:    pool,
		HoldoutIdx: holdout,
	}, nil
}

// splitIndices partitions store indices into pool/holdout, optionally
// stratified by ground-truth class.
func splitIndices(store corpus.Store, frac float64, stratify bool, r *rng.RNG) (pool, holdout []int) {
	if !stratify {
		perm := r.Perm(store.Len())
		k := int(frac * float64(store.Len()))
		return perm[k:], perm[:k]
	}
	byClass := map[int][]int{}
	for i := 0; i < store.Len(); i++ {
		c := store.Get(i).Truth.Class
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	// insertion sort for stable iteration order
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	for _, c := range classes {
		idx := byClass[c]
		r.ShuffleInts(idx)
		k := int(frac * float64(len(idx)))
		if k == 0 && len(idx) > 1 {
			k = 1
		}
		holdout = append(holdout, idx[:k]...)
		pool = append(pool, idx[k:]...)
	}
	r.ShuffleInts(pool)
	r.ShuffleInts(holdout)
	return pool, holdout
}

// BuildHoldout extracts holdout examples with the task's current feature
// code. It must be re-run whenever Feature changes (each session
// iteration), exactly as the paper's engineer re-featurizes the labeled
// dev set. Inputs that produce no example are skipped; extraction errors
// abort, since a holdout silently missing a class would corrupt every
// quality number downstream.
func (t *Task) BuildHoldout() (*learner.Holdout, error) {
	examples := make([]learner.Example, 0, len(t.HoldoutIdx))
	for _, idx := range t.HoldoutIdx {
		res, err := t.Feature.Extract(t.Store.Get(idx))
		if err != nil {
			return nil, fmt.Errorf("featurepipe: task %s: holdout extract input %d: %w", t.Name, idx, err)
		}
		if res.Produced {
			examples = append(examples, res.Example)
		}
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("featurepipe: task %s: holdout produced no examples", t.Name)
	}
	return learner.NewHoldout(examples, t.Metric, t.Positive), nil
}

// HoldoutSkip records one holdout input dropped by the tolerant build:
// which input, and why its extraction failed.
type HoldoutSkip struct {
	InputID string
	Reason  string
}

// BuildHoldoutTolerant is BuildHoldout for a messy world: an input whose
// read or extraction fails (error or panic) is skipped and reported
// instead of aborting the build, so a handful of corrupt records cannot
// deny quality measurement for the whole run. The skips are returned —
// never swallowed — because the caller (the engine) must surface them as
// quarantined inputs. Building still fails when no example survives:
// a holdout of zero examples measures nothing.
func (t *Task) BuildHoldoutTolerant() (*learner.Holdout, []HoldoutSkip, error) {
	examples := make([]learner.Example, 0, len(t.HoldoutIdx))
	var skips []HoldoutSkip
	for _, idx := range t.HoldoutIdx {
		res, id, err := t.holdoutExtract(idx)
		if err != nil {
			skips = append(skips, HoldoutSkip{InputID: id, Reason: err.Error()})
			continue
		}
		if res.Produced {
			examples = append(examples, res.Example)
		}
	}
	if len(examples) == 0 {
		return nil, skips, fmt.Errorf("featurepipe: task %s: holdout produced no examples (%d of %d inputs skipped)",
			t.Name, len(skips), len(t.HoldoutIdx))
	}
	return learner.NewHoldout(examples, t.Metric, t.Positive), skips, nil
}

// ExtractHoldout reads and extracts the holdout input at store index idx
// with the tolerant build's exact isolation and ID semantics — the
// per-input unit BuildHoldoutTolerant is made of, exported so a
// distributed worker can extract just the holdout inputs it owns while
// the coordinator merges examples and skips in global HoldoutIdx order.
func (t *Task) ExtractHoldout(idx int) (res Result, id string, err error) {
	return t.holdoutExtract(idx)
}

// holdoutExtract reads and extracts one holdout input with panic
// isolation around both the store read and the feature code. The input
// ID is best-effort: "#<idx>" when the read itself failed.
func (t *Task) holdoutExtract(idx int) (res Result, id string, err error) {
	id = fmt.Sprintf("#%d", idx)
	defer func() {
		if p := recover(); p != nil {
			res, err = Result{}, fmt.Errorf("panic: %v", p)
		}
	}()
	in := t.Store.Get(idx)
	id = in.ID
	res, err = t.Feature.Extract(in)
	return res, id, err
}

// PoolSet returns a membership mask over store indices: true for inputs a
// run may process. The engine uses it to skip holdout inputs when walking
// index groups (groups are built corpus-wide, once, and shared across
// tasks and sessions).
func (t *Task) PoolSet() []bool {
	mask := make([]bool, t.Store.Len())
	for _, idx := range t.PoolIdx {
		mask[idx] = true
	}
	return mask
}

// WithFeature returns a shallow copy of the task evaluating a different
// feature-code version against the same corpus, split, learner factory
// and metric — one iteration step of an engineering session.
func (t *Task) WithFeature(f FeatureFunc) *Task {
	c := *t
	c.Feature = f
	return &c
}
