package featurepipe

import (
	"strings"
	"testing"

	"zombie/internal/corpus"
	"zombie/internal/featcache"
	"zombie/internal/learner"
)

// markerInput is a text input every wiki feature version produces an
// example for (it carries entity markers), so composite parts all fire.
func markerInput(id string) *corpus.Input {
	return &corpus.Input{
		Kind:  corpus.TextKind,
		ID:    id,
		Text:  "infobox born career alpha beta gamma delta",
		Truth: corpus.Truth{Relevant: true, Class: 1},
	}
}

func newTestCache(t *testing.T) *featcache.Cache {
	t.Helper()
	c, err := featcache.Open(featcache.Config{}, ResultCodec{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sameResult(a, b Result) bool {
	if a.Produced != b.Produced || a.Useful != b.Useful {
		return false
	}
	if !a.Produced {
		return true
	}
	if a.Example.Class != b.Example.Class || a.Example.Target != b.Example.Target {
		return false
	}
	if a.Example.Features.Dim() != b.Example.Features.Dim() {
		return false
	}
	for d := 0; d < a.Example.Features.Dim(); d++ {
		if a.Example.Features.At(d) != b.Example.Features.At(d) {
			return false
		}
	}
	return true
}

func TestCachedTransparentAndCounts(t *testing.T) {
	cache := newTestCache(t)
	inner := NewWikiFeature(4)
	var ctrs CacheCounters
	f := Cached(inner, cache, &ctrs)
	if f.Name() != inner.Name() || f.Dim() != inner.Dim() || f.NumClasses() != inner.NumClasses() {
		t.Fatal("cached wrapper must not change feature metadata")
	}
	if FingerprintOf(f) != FingerprintOf(inner) {
		t.Fatal("cached wrapper must keep the inner fingerprint")
	}
	if Cached(inner, nil, &ctrs) != FeatureFunc(inner) {
		t.Fatal("nil cache must return the feature unchanged")
	}

	in := markerInput("p1")
	fresh, err := inner.Extract(in)
	if err != nil {
		t.Fatal(err)
	}
	first, err := f.Extract(in)
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.Extract(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(fresh, first) || !sameResult(fresh, second) {
		t.Fatal("cached extraction differs from fresh extraction")
	}
	if h, m := ctrs.Hits.Load(), ctrs.Misses.Load(); h != 1 || m != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestCachedCompositePartLevelReuse(t *testing.T) {
	// v1 and v2 share two of three parts; after running v1, a v2 extraction
	// over the same input recomputes only the edited part.
	cache := newTestCache(t)
	mk := func(name string, parts ...FeatureFunc) *CompositeFeature {
		c, err := NewCompositeFeature(name, parts...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	v1 := mk("combo-v1", NewWikiFeature(2), NewWikiFeature(4), NewWikiFeature(5))
	v2 := mk("combo-v2", NewWikiFeature(2), NewWikiFeature(4), NewWikiFeature(6))

	var c1, c2 CacheCounters
	in := markerInput("page")
	if _, err := Cached(v1, cache, &c1).Extract(in); err != nil {
		t.Fatal(err)
	}
	if h, m := c1.Hits.Load(), c1.Misses.Load(); h != 0 || m != 3 {
		t.Fatalf("cold composite: hits=%d misses=%d, want 0/3", h, m)
	}
	cachedV2 := Cached(v2, cache, &c2)
	got, err := cachedV2.Extract(in)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c2.Hits.Load(), c2.Misses.Load(); h != 2 || m != 1 {
		t.Fatalf("edited composite: hits=%d misses=%d, want 2/1 (shared parts reused)", h, m)
	}
	fresh, err := v2.Extract(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(fresh, got) {
		t.Fatal("part-cached composite result differs from fresh extraction")
	}
	// The composite wrapper stays a CompositeFeature (assembly is not
	// cached), so metadata and skip logic are untouched.
	if cachedV2.Name() != "combo-v2" || cachedV2.Dim() != v2.Dim() {
		t.Fatal("cached composite metadata wrong")
	}
}

func TestCachedErrorsAndPanicsPassThrough(t *testing.T) {
	cache := newTestCache(t)
	in := markerInput("boom")

	var ctrs CacheCounters
	erring := Cached(&FaultyFeature{Inner: NewWikiFeature(1), ErrPct: 100}, cache, &ctrs)
	for i := 0; i < 2; i++ {
		if _, err := erring.Extract(in); err == nil || !strings.Contains(err.Error(), "injected error") {
			t.Fatalf("call %d: err = %v, want injected error every time (errors not cached)", i, err)
		}
	}
	if ctrs.Hits.Load() != 0 || ctrs.Misses.Load() != 0 {
		t.Fatal("failed extractions must not count as cache traffic")
	}

	panicking := Cached(&FaultyFeature{Inner: NewWikiFeature(1), PanicPct: 100}, cache, nil)
	defer func() {
		p := recover()
		if p == nil || !strings.Contains(p.(string), "injected panic") {
			t.Fatalf("panic = %v, want the feature code's own panic value", p)
		}
	}()
	panicking.Extract(in)
}

// badDimFeature declares Dim 4 but produces 1-dimensional vectors — the
// kind of bug composite assembly must reject rather than silently
// misalign feature blocks.
type badDimFeature struct{ FuncCore }

func (b *badDimFeature) Extract(in *corpus.Input) (Result, error) {
	return Result{
		Produced: true,
		Example:  learner.Example{Features: learner.DenseVec([]float64{1})},
	}, nil
}

func TestCompositePartDimMismatch(t *testing.T) {
	bad := &badDimFeature{FuncCore{FuncName: "bad-dim", FuncDim: 4, Classes: 2}}
	comp, err := NewCompositeFeature("combo", bad, NewWikiFeature(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = comp.Extract(markerInput("x"))
	if err == nil || !strings.Contains(err.Error(), "produced dim 1, declared 4") ||
		!strings.Contains(err.Error(), "bad-dim") {
		t.Fatalf("err = %v, want part dim-mismatch naming the part", err)
	}
}

func TestFingerprintsDistinguishVersions(t *testing.T) {
	seen := map[string]string{}
	for v := 1; v <= 8; v++ {
		f := NewWikiFeature(v)
		fp := FingerprintOf(f)
		if fp == "" {
			t.Fatalf("wiki-v%d: empty fingerprint", v)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("wiki-v%d collides with %s", v, prev)
		}
		seen[fp] = f.Name()
		if FingerprintOf(NewWikiFeature(v)) != fp {
			t.Fatalf("wiki-v%d: fingerprint not stable", v)
		}
	}
	// Fault injection changes behavior, so it must change the fingerprint.
	inner := NewWikiFeature(3)
	faulty := &FaultyFeature{Inner: inner, ErrPct: 10}
	if FingerprintOf(faulty) == FingerprintOf(inner) {
		t.Fatal("faulty wrapper shares the inner fingerprint")
	}
	// Composites: editing one part changes the composite fingerprint but
	// not the untouched parts'.
	a, _ := NewCompositeFeature("c", NewWikiFeature(2), NewWikiFeature(4))
	b, _ := NewCompositeFeature("c", NewWikiFeature(2), NewWikiFeature(5))
	if FingerprintOf(a) == FingerprintOf(b) {
		t.Fatal("edited composite keeps its fingerprint")
	}
	if FingerprintOf(a.parts[0]) != FingerprintOf(b.parts[0]) {
		t.Fatal("untouched part fingerprint drifted")
	}
	// The fallback path covers types without Fingerprinter.
	if FingerprintOf(&badDimFeature{FuncCore{FuncName: "x", FuncDim: 1, Classes: 2}}) == "" {
		t.Fatal("fallback fingerprint empty")
	}
}

func TestSessionTransitions(t *testing.T) {
	s := CompositeWikiSession()
	if len(s.Versions) != 4 {
		t.Fatalf("composite session has %d versions", len(s.Versions))
	}
	trs := s.Transitions()
	if len(trs) != 3 {
		t.Fatalf("transitions = %d, want 3", len(trs))
	}
	for i, tr := range trs {
		if tr.From != s.Versions[i].Name() || tr.To != s.Versions[i+1].Name() {
			t.Fatalf("transition %d names wrong: %+v", i, tr)
		}
		if tr.TotalParts != 3 || tr.SharedParts != 2 {
			t.Fatalf("transition %d shares %d/%d parts, want 2/3", i, tr.SharedParts, tr.TotalParts)
		}
	}
	// Non-composite sessions count whole versions: consecutive wiki
	// versions never share, so every transition is 0/1.
	for _, tr := range StandardWikiSession().Transitions() {
		if tr.SharedParts != 0 || tr.TotalParts != 1 {
			t.Fatalf("wiki transition %+v, want 0/1", tr)
		}
	}
	solo, err := NewSession("solo", 0, NewWikiFeature(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := solo.Transitions(); got != nil {
		t.Fatalf("single-version session transitions = %v", got)
	}
}
