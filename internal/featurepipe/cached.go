package featurepipe

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zombie/internal/corpus"
	"zombie/internal/featcache"
)

// CacheCounters tallies extraction-cache traffic for one consumer (the
// engine allocates one per run so RunResult can report per-run hit rates
// against a cache shared by many runs). Counters are atomics because the
// server executes runs concurrently against one shared cache.
type CacheCounters struct {
	Hits   atomic.Int64
	Misses atomic.Int64
	// LookupNanos accumulates pure cache overhead: wall time spent inside
	// the cache (key hashing, shard locking, disk decode, singleflight
	// waits) with the inner feature-code compute subtracted out. It is the
	// "cache-lookup" phase of the run's PhaseBreakdown — a subset of
	// extraction time, never additional to it.
	LookupNanos atomic.Int64

	// Per-part tallies, keyed by the wrapped function's Name (for a
	// composite feature that is the recipe part name — the dimension the
	// cost-attribution summary groups extraction time by). The map is
	// lazily populated on first touch per part; after that a part's
	// tallies are atomic adds, so the steady-state extract path stays
	// allocation-free.
	mu    sync.Mutex
	parts map[string]*partTally
}

type partTally struct {
	hits, misses, lookupNanos, computeNanos atomic.Int64
}

// partAdd records one cache-mediated extraction against the named part.
func (c *CacheCounters) partAdd(part string, hit bool, lookup, compute time.Duration) {
	c.mu.Lock()
	t := c.parts[part]
	if t == nil {
		if c.parts == nil {
			c.parts = map[string]*partTally{}
		}
		t = &partTally{}
		c.parts[part] = t
	}
	c.mu.Unlock()
	if hit {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
	if lookup > 0 {
		t.lookupNanos.Add(int64(lookup))
	}
	if compute > 0 {
		t.computeNanos.Add(int64(compute))
	}
}

// PartCost is one part's extraction-cost tally: how often the cache
// served it, the cache overhead it paid, and the feature-code compute it
// actually ran (zero on hits — that is the reuse the cache buys).
type PartCost struct {
	Part         string `json:"part"`
	Hits         int64  `json:"hits"`
	Misses       int64  `json:"misses"`
	LookupNanos  int64  `json:"lookup_ns"`
	ComputeNanos int64  `json:"compute_ns"`
}

// Parts returns the per-part cost tallies, sorted by part name.
func (c *CacheCounters) Parts() []PartCost {
	c.mu.Lock()
	out := make([]PartCost, 0, len(c.parts))
	for name, t := range c.parts {
		out = append(out, PartCost{
			Part:         name,
			Hits:         t.hits.Load(),
			Misses:       t.misses.Load(),
			LookupNanos:  t.lookupNanos.Load(),
			ComputeNanos: t.computeNanos.Load(),
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Part < out[j].Part })
	return out
}

// Cached wraps feature code with the extraction cache: Extract serves
// (fingerprint, input ID) pairs the cache has seen before without running
// the inner code. Because FeatureFunc contracts Extract to be
// deterministic and side-effect free, the wrapped function is
// observationally identical to the inner one — results, errors, and
// panics included — only faster on repeats. ctrs may be nil.
//
// A CompositeFeature is cached at the part level instead of as a whole:
// each part is wrapped individually and the concatenation is recomputed
// from the parts' (cached) vectors. This is where cross-version reuse
// pays — an engineering session that edits one sub-feature reuses every
// other part's cached vectors, mirroring how featurepipe.Session versions
// v1→vN typically share most of their parts.
//
// Cached results are shared by reference across runs; consumers must
// treat them as immutable (every learner does — features are read-only
// after extraction).
func Cached(f FeatureFunc, cache *featcache.Cache, ctrs *CacheCounters) FeatureFunc {
	if cache == nil {
		return f
	}
	if comp, ok := f.(*CompositeFeature); ok {
		parts := make([]FeatureFunc, len(comp.parts))
		for i, p := range comp.parts {
			parts[i] = Cached(p, cache, ctrs)
		}
		return &CompositeFeature{FuncCore: comp.FuncCore, parts: parts}
	}
	if already, ok := f.(*cachedFunc); ok {
		return &cachedFunc{inner: already.inner, fp: already.fp, cache: cache, ctrs: ctrs}
	}
	return &cachedFunc{inner: f, fp: FingerprintOf(f), cache: cache, ctrs: ctrs}
}

// cachedFunc memoizes one (non-composite) feature function.
type cachedFunc struct {
	inner FeatureFunc
	fp    string
	cache *featcache.Cache
	ctrs  *CacheCounters
}

// Name implements FeatureFunc. The wrapper is transparent: traces, table
// labels and RNG substream derivations must not change when caching is
// switched on.
func (c *cachedFunc) Name() string { return c.inner.Name() }

// Dim implements FeatureFunc.
func (c *cachedFunc) Dim() int { return c.inner.Dim() }

// NumClasses implements FeatureFunc.
func (c *cachedFunc) NumClasses() int { return c.inner.NumClasses() }

// Fingerprint implements Fingerprinter, so re-wrapping is stable.
func (c *cachedFunc) Fingerprint() string { return c.fp }

// Extract implements FeatureFunc through the cache. Extraction errors are
// returned verbatim and never cached (each request retries, exactly like
// the uncached path); panics propagate to this caller.
func (c *cachedFunc) Extract(in *corpus.Input) (Result, error) {
	start := time.Now()
	var compute time.Duration
	v, hit, err := c.cache.GetOrCompute(c.fp, in.ID, func() (any, error) {
		t := time.Now()
		res, err := c.inner.Extract(in)
		compute = time.Since(t)
		if err != nil {
			return nil, err
		}
		return res, nil
	})
	if c.ctrs != nil {
		// Lookup time is total minus the inner compute, so hits charge the
		// full call and misses charge only the cache's own overhead.
		if overhead := time.Since(start) - compute; overhead > 0 {
			c.ctrs.LookupNanos.Add(int64(overhead))
		}
	}
	if err != nil {
		return Result{}, err
	}
	if c.ctrs != nil {
		if hit {
			c.ctrs.Hits.Add(1)
		} else {
			c.ctrs.Misses.Add(1)
		}
		overhead := time.Since(start) - compute
		if overhead < 0 {
			overhead = 0
		}
		c.ctrs.partAdd(c.inner.Name(), hit, overhead, compute)
	}
	return v.(Result), nil
}
