package stats

import "math"

// OLS holds the result of a simple ordinary-least-squares fit y = a + b*x.
type OLS struct {
	Intercept float64
	Slope     float64
	R2        float64
	N         int
}

// FitOLS fits y = a + b*x by least squares. It returns a zero-slope fit
// when fewer than two points are supplied or x is constant.
func FitOLS(x, y []float64) OLS {
	if len(x) != len(y) {
		panic("stats: FitOLS length mismatch")
	}
	n := len(x)
	if n < 2 {
		fit := OLS{N: n}
		if n == 1 {
			fit.Intercept = y[0]
		}
		return fit
	}
	mx, my := mean(x), mean(y)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return OLS{Intercept: my, N: n}
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	} else {
		r2 = 1 // perfectly flat series is perfectly explained
	}
	return OLS{Intercept: a, Slope: b, R2: r2, N: n}
}

// SlopeOverIndex fits y against its own index 0..n-1 and returns the slope.
// This is the primitive the plateau detector uses: the recent quality
// series is regressed against step number; a slope near zero means the
// learning curve has flattened.
func SlopeOverIndex(y []float64) float64 {
	if len(y) < 2 {
		return 0
	}
	x := make([]float64, len(y))
	for i := range x {
		x[i] = float64(i)
	}
	return FitOLS(x, y).Slope
}

func mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// PlateauDetector watches a quality series and reports when it has
// flattened. It keeps the last Window observations; once the window is
// full, Plateaued reports true when the absolute per-observation OLS slope
// stays below Threshold for Patience consecutive checks. Patience > 1
// guards against a momentarily flat curve that is about to climb again
// (common right after the bandit switches to a fresh group).
type PlateauDetector struct {
	win       *Window
	threshold float64
	patience  int
	hits      int
	checks    int
}

// NewPlateauDetector returns a detector over a window of the given size.
// threshold is the absolute slope (quality units per observation) below
// which the curve counts as flat; patience is how many consecutive flat
// checks are required. It panics on non-positive window or patience, or a
// negative threshold.
func NewPlateauDetector(window int, threshold float64, patience int) *PlateauDetector {
	if window < 2 {
		panic("stats: PlateauDetector window must be >= 2")
	}
	if threshold < 0 {
		panic("stats: PlateauDetector threshold must be >= 0")
	}
	if patience < 1 {
		panic("stats: PlateauDetector patience must be >= 1")
	}
	return &PlateauDetector{win: NewWindow(window), threshold: threshold, patience: patience}
}

// Observe folds a quality sample into the detector and returns the current
// plateau verdict (equivalent to calling Plateaued after).
func (p *PlateauDetector) Observe(quality float64) bool {
	p.win.Add(quality)
	p.checks++
	if !p.win.Full() {
		p.hits = 0
		return false
	}
	if math.Abs(SlopeOverIndex(p.win.Values())) < p.threshold {
		p.hits++
	} else {
		p.hits = 0
	}
	return p.Plateaued()
}

// Plateaued reports whether the series has been flat for at least
// `patience` consecutive full-window checks.
func (p *PlateauDetector) Plateaued() bool { return p.hits >= p.patience }

// Slope returns the OLS slope over the current window contents (0 until at
// least two samples arrive).
func (p *PlateauDetector) Slope() float64 {
	return SlopeOverIndex(p.win.Values())
}

// Observations returns the number of samples observed so far.
func (p *PlateauDetector) Observations() int { return p.checks }

// Reset clears all state, ready for a new series.
func (p *PlateauDetector) Reset() {
	p.win.Reset()
	p.hits = 0
	p.checks = 0
}
