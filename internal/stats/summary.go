package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between order statistics. It panics on an empty slice or a
// p outside [0, 100]. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile on empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: Percentile p must be in [0,100]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the
// range are clamped into the edge bins so no observation is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram returns a histogram with the given bin count over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: Histogram bins must be positive")
	}
	if hi <= lo {
		panic("stats: Histogram requires hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bin := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns an approximate quantile (q in [0,1]) by walking the
// cumulative counts and interpolating within the containing bin. It panics
// when the histogram is empty or q is outside [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		panic("stats: Quantile on empty Histogram")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile q must be in [0,1]")
	}
	target := q * float64(h.total)
	cum := 0.0
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= target {
			frac := 0.5
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return h.Lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.Hi
}

// BootstrapMeanCI returns a two-sided bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g., 0.95), using the supplied
// deterministic uniform source. resamples controls the number of bootstrap
// replicates. It panics on an empty input, a confidence outside (0,1), or
// non-positive resamples.
func BootstrapMeanCI(xs []float64, confidence float64, resamples int, uniform func() float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapMeanCI on empty slice")
	}
	if confidence <= 0 || confidence >= 1 {
		panic("stats: BootstrapMeanCI confidence must be in (0,1)")
	}
	if resamples <= 0 {
		panic("stats: BootstrapMeanCI resamples must be positive")
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		s := 0.0
		for i := 0; i < len(xs); i++ {
			s += xs[int(uniform()*float64(len(xs)))%len(xs)]
		}
		means[r] = s / float64(len(xs))
	}
	alpha := (1 - confidence) / 2
	return Percentile(means, 100*alpha), Percentile(means, 100*(1-alpha))
}
