// Package stats provides the online-statistics substrate used across the
// Zombie system: Welford accumulators, exponentially weighted averages,
// fixed-size sliding windows, histograms with percentile queries, ordinary
// least squares over short series (the early-stopping plateau detector is
// built on the OLS slope), and bootstrap confidence intervals for the
// experiment harness.
//
// All types are plain values with no goroutine-safety guarantees; callers
// that share them across goroutines must synchronize externally. The
// Zombie inner loop is single-threaded by design (the paper's system
// processes one input at a time so reward attribution stays exact), so
// this is the common case.
package stats

import "math"

// Online accumulates count, mean and variance in a single pass using
// Welford's algorithm, which stays numerically stable for long streams.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// AddAll folds every value of xs into the accumulator.
func (o *Online) AddAll(xs []float64) {
	for _, x := range xs {
		o.Add(x)
	}
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean, or 0 before any observation.
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation, or 0 before any observation.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation, or 0 before any observation.
func (o *Online) Max() float64 { return o.max }

// Sum returns mean*n; exact enough for reporting.
func (o *Online) Sum() float64 { return o.mean * float64(o.n) }

// Merge folds another accumulator into this one (parallel Welford merge).
func (o *Online) Merge(b *Online) {
	if b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *b
		return
	}
	n := o.n + b.n
	delta := b.mean - o.mean
	mean := o.mean + delta*float64(b.n)/float64(n)
	m2 := o.m2 + b.m2 + delta*delta*float64(o.n)*float64(b.n)/float64(n)
	if b.min < o.min {
		o.min = b.min
	}
	if b.max > o.max {
		o.max = b.max
	}
	o.n, o.mean, o.m2 = n, mean, m2
}

// EWMA is an exponentially weighted moving average. Alpha in (0, 1] is the
// weight of the newest observation; larger alpha forgets faster.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. It panics if
// alpha is outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Add folds x into the average. The first observation initializes the
// average exactly.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been added.
func (e *EWMA) Initialized() bool { return e.init }

// Counter is a simple monotone event counter with a rate helper, used by
// the trace layer.
type Counter struct {
	n int64
}

// Inc adds one event.
func (c *Counter) Inc() { c.n++ }

// Addn adds n events.
func (c *Counter) Addn(n int64) { c.n += n }

// Count returns the total.
func (c *Counter) Count() int64 { return c.n }
