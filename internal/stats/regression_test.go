package stats

import (
	"math"
	"testing"
)

func TestFitOLSExactLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit := FitOLS(x, y)
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitOLSDegenerate(t *testing.T) {
	if fit := FitOLS(nil, nil); fit.Slope != 0 || fit.N != 0 {
		t.Fatalf("empty fit = %+v", fit)
	}
	if fit := FitOLS([]float64{2}, []float64{5}); fit.Intercept != 5 || fit.Slope != 0 {
		t.Fatalf("single-point fit = %+v", fit)
	}
	// Constant x: slope undefined, returns 0 with mean intercept.
	fit := FitOLS([]float64{3, 3, 3}, []float64{1, 2, 3})
	if fit.Slope != 0 || math.Abs(fit.Intercept-2) > 1e-12 {
		t.Fatalf("constant-x fit = %+v", fit)
	}
	// Constant y: flat series, R2 defined as 1.
	fit = FitOLS([]float64{1, 2, 3}, []float64{4, 4, 4})
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Fatalf("constant-y fit = %+v", fit)
	}
	mustPanic(t, func() { FitOLS([]float64{1}, []float64{1, 2}) })
}

func TestSlopeOverIndex(t *testing.T) {
	if s := SlopeOverIndex([]float64{5}); s != 0 {
		t.Fatalf("single-point slope = %v", s)
	}
	if s := SlopeOverIndex([]float64{0, 2, 4, 6}); math.Abs(s-2) > 1e-12 {
		t.Fatalf("slope = %v, want 2", s)
	}
	if s := SlopeOverIndex([]float64{9, 9, 9}); s != 0 {
		t.Fatalf("flat slope = %v", s)
	}
}

func TestPlateauDetectorFlatSeries(t *testing.T) {
	p := NewPlateauDetector(5, 0.01, 2)
	// Window not yet full: never plateaued.
	for i := 0; i < 4; i++ {
		if p.Observe(1.0) {
			t.Fatalf("plateaued before window full at obs %d", i)
		}
	}
	// 5th obs fills the window (hit 1), 6th gives hit 2 -> plateau.
	if p.Observe(1.0) {
		t.Fatal("plateaued before patience satisfied")
	}
	if !p.Observe(1.0) {
		t.Fatal("flat series should plateau after patience checks")
	}
	if p.Observations() != 6 {
		t.Fatalf("Observations = %d", p.Observations())
	}
}

func TestPlateauDetectorRisingSeriesNeverFires(t *testing.T) {
	p := NewPlateauDetector(5, 0.01, 1)
	for i := 0; i < 100; i++ {
		if p.Observe(float64(i) * 0.5) {
			t.Fatalf("rising series plateaued at obs %d", i)
		}
	}
}

func TestPlateauDetectorPatienceResets(t *testing.T) {
	p := NewPlateauDetector(4, 0.05, 3)
	// flat, flat, then a jump resets the patience counter
	seq := []float64{1, 1, 1, 1, 1, 5, 5, 5, 5}
	fired := -1
	for i, v := range seq {
		if p.Observe(v) {
			fired = i
			break
		}
	}
	if fired != -1 {
		t.Fatalf("plateau fired at %d despite jump resetting patience", fired)
	}
	// Now hold flat long enough: should eventually fire.
	for i := 0; i < 10; i++ {
		if p.Observe(5) {
			return
		}
	}
	t.Fatal("detector never fired on a long flat tail")
}

func TestPlateauDetectorReset(t *testing.T) {
	p := NewPlateauDetector(3, 0.01, 1)
	for i := 0; i < 5; i++ {
		p.Observe(2)
	}
	if !p.Plateaued() {
		t.Fatal("setup failed: should be plateaued")
	}
	p.Reset()
	if p.Plateaued() || p.Observations() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestPlateauDetectorPanics(t *testing.T) {
	mustPanic(t, func() { NewPlateauDetector(1, 0.1, 1) })
	mustPanic(t, func() { NewPlateauDetector(5, -0.1, 1) })
	mustPanic(t, func() { NewPlateauDetector(5, 0.1, 0) })
}
