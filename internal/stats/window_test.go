package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 || w.Cap() != 3 || w.Full() {
		t.Fatal("fresh window state wrong")
	}
	if w.Sum() != 0 || w.Mean() != 0 {
		t.Fatal("empty window sums should be 0")
	}
	w.Add(1)
	w.Add(2)
	w.Add(3)
	if !w.Full() || w.Sum() != 6 || w.Mean() != 2 {
		t.Fatalf("full window wrong: sum=%v mean=%v", w.Sum(), w.Mean())
	}
	w.Add(4) // evicts 1
	if w.Sum() != 9 || w.First() != 2 || w.Last() != 4 {
		t.Fatalf("eviction wrong: sum=%v first=%v last=%v", w.Sum(), w.First(), w.Last())
	}
	vals := w.Values()
	if len(vals) != 3 || vals[0] != 2 || vals[2] != 4 {
		t.Fatalf("Values order wrong: %v", vals)
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4)
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.Len() != 0 || w.Sum() != 0 {
		t.Fatal("Reset did not clear")
	}
	w.Add(9)
	if w.Last() != 9 || w.Len() != 1 {
		t.Fatal("window unusable after Reset")
	}
}

func TestWindowPanics(t *testing.T) {
	mustPanic(t, func() { NewWindow(0) })
	w := NewWindow(2)
	mustPanic(t, func() { w.Last() })
	mustPanic(t, func() { w.First() })
}

func TestWindowSumMatchesValues(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(func(xs [40]float64, capRaw uint8) bool {
		capacity := int(capRaw%10) + 1
		w := NewWindow(capacity)
		for _, x := range xs {
			if bad(x) {
				return true
			}
			w.Add(math.Mod(x, 1e4))
		}
		want := 0.0
		for _, v := range w.Values() {
			want += v
		}
		return math.Abs(w.Sum()-want) < 1e-6*(1+math.Abs(want)) &&
			w.Len() == min(capacity, len(xs))
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWindowLongStreamNoDrift(t *testing.T) {
	w := NewWindow(7)
	for i := 0; i < 100000; i++ {
		w.Add(float64(i%13) * 0.1)
	}
	want := 0.0
	for _, v := range w.Values() {
		want += v
	}
	if math.Abs(w.Sum()-want) > 1e-6 {
		t.Fatalf("sum drifted: incremental=%v recomputed=%v", w.Sum(), want)
	}
}
