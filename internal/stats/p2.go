package stats

import (
	"fmt"
	"sort"
)

// P2Quantile is the Jain & Chlamtac P² streaming quantile estimator: it
// maintains five markers and estimates a fixed quantile of an unbounded
// stream in O(1) memory and time per observation — no buffering, no
// sorting. Use it to summarize unbounded per-step streams (rewards,
// per-input costs) where retaining the observations would defeat the
// purpose of a streaming run.
type P2Quantile struct {
	p       float64
	q       [5]float64 // marker heights
	n       [5]float64 // marker positions (1-based)
	nDesire [5]float64 // desired positions
	dn      [5]float64 // desired-position increments
	count   int
	init    []float64
}

// NewP2Quantile returns an estimator for quantile p in (0,1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: P2Quantile p must be in (0,1), got %v", p))
	}
	e := &P2Quantile{p: p}
	e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add folds one observation into the estimator.
func (e *P2Quantile) Add(x float64) {
	e.count++
	if len(e.init) < 5 {
		e.init = append(e.init, x)
		if len(e.init) == 5 {
			sort.Float64s(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.n[i] = float64(i + 1)
			}
			e.nDesire = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}

	// Locate the cell containing x and clamp the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.nDesire[i] += e.dn[i]
	}
	// Adjust interior markers with the piecewise-parabolic formula.
	for i := 1; i <= 3; i++ {
		d := e.nDesire[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qNew := e.parabolic(i, sign)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.n[i] += sign
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact order statistic of what it has;
// with none it returns 0.
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if len(e.init) < 5 {
		s := append([]float64(nil), e.init...)
		sort.Float64s(s)
		idx := int(e.p * float64(len(s)))
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return e.q[2]
}

// N returns the number of observations.
func (e *P2Quantile) N() int { return e.count }
