package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestP2QuantileUniform(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		e := NewP2Quantile(p)
		for i := 0; i < 50000; i++ {
			e.Add(r.Float64())
		}
		if got := e.Value(); math.Abs(got-p) > 0.02 {
			t.Fatalf("p=%.2f: estimate %.4f", p, got)
		}
		if e.N() != 50000 {
			t.Fatalf("N = %d", e.N())
		}
	}
}

func TestP2QuantileGaussianMedian(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	e := NewP2Quantile(0.5)
	for i := 0; i < 50000; i++ {
		e.Add(10 + 3*r.NormFloat64())
	}
	if got := e.Value(); math.Abs(got-10) > 0.15 {
		t.Fatalf("median estimate %.4f, want ~10", got)
	}
}

func TestP2QuantileAgainstExact(t *testing.T) {
	// Compare against the exact percentile on a retained sample.
	r := rand.New(rand.NewSource(3))
	e := NewP2Quantile(0.9)
	var xs []float64
	for i := 0; i < 20000; i++ {
		// Skewed distribution: exponential.
		x := r.ExpFloat64() * 5
		e.Add(x)
		xs = append(xs, x)
	}
	exact := Percentile(xs, 90)
	if math.Abs(e.Value()-exact) > 0.15*exact {
		t.Fatalf("P2 %.4f vs exact %.4f", e.Value(), exact)
	}
}

func TestP2QuantileSmallStreams(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 {
		t.Fatal("empty estimator should return 0")
	}
	e.Add(7)
	if e.Value() != 7 {
		t.Fatalf("single observation: %v", e.Value())
	}
	e.Add(1)
	e.Add(9)
	// Exact order statistic for 3 values at p=0.5 is the middle one.
	if e.Value() != 7 {
		t.Fatalf("three observations: %v", e.Value())
	}
}

func TestP2QuantileMonotoneInputs(t *testing.T) {
	e := NewP2Quantile(0.5)
	for i := 1; i <= 10001; i++ {
		e.Add(float64(i))
	}
	if got := e.Value(); math.Abs(got-5001) > 250 {
		t.Fatalf("median of 1..10001 estimated %.1f", got)
	}
}

func TestP2QuantilePanics(t *testing.T) {
	mustPanic(t, func() { NewP2Quantile(0) })
	mustPanic(t, func() { NewP2Quantile(1) })
}
