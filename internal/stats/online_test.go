package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnlineBasics(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Var() != 0 {
		t.Fatal("zero value should report zeros")
	}
	o.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", o.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(o.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v", o.Var())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", o.Min(), o.Max())
	}
	if math.Abs(o.Sum()-40) > 1e-9 {
		t.Fatalf("Sum = %v", o.Sum())
	}
}

func TestOnlineSingleObservation(t *testing.T) {
	var o Online
	o.Add(3.5)
	if o.Var() != 0 || o.Std() != 0 {
		t.Fatal("variance with one observation should be 0")
	}
	if o.Min() != 3.5 || o.Max() != 3.5 {
		t.Fatal("min/max wrong for single observation")
	}
}

func TestOnlineMergeMatchesSequential(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(func(a, b [16]float64) bool {
		for i := range a {
			if bad(a[i]) || bad(b[i]) {
				return true
			}
			a[i] = math.Mod(a[i], 1e6)
			b[i] = math.Mod(b[i], 1e6)
		}
		var whole, left, right Online
		whole.AddAll(a[:])
		whole.AddAll(b[:])
		left.AddAll(a[:])
		right.AddAll(b[:])
		left.Merge(&right)
		return left.N() == whole.N() &&
			close9(left.Mean(), whole.Mean()) &&
			close9(left.Var(), whole.Var()) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMergeEmpty(t *testing.T) {
	var a, b Online
	a.Add(1)
	a.Merge(&b) // empty rhs: no-op
	if a.N() != 1 {
		t.Fatal("merge with empty changed state")
	}
	var c Online
	c.Merge(&a) // empty lhs: copy
	if c.N() != 1 || c.Mean() != 1 {
		t.Fatal("merge into empty should copy")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA claims initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first obs should initialize exactly, got %v", e.Value())
	}
	e.Add(0)
	if e.Value() != 5 {
		t.Fatalf("EWMA = %v, want 5", e.Value())
	}
	mustPanic(t, func() { NewEWMA(0) })
	mustPanic(t, func() { NewEWMA(1.5) })
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Add(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Fatalf("EWMA should converge to constant, got %v", e.Value())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Addn(4)
	if c.Count() != 5 {
		t.Fatalf("Count = %d", c.Count())
	}
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

func close9(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
