package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Median(xs); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median = %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Percentile mutated input")
	}
	if got := Percentile([]float64{7}, 40); got != 7 {
		t.Fatalf("single-element percentile = %v", got)
	}
	mustPanic(t, func() { Percentile(nil, 50) })
	mustPanic(t, func() { Percentile(xs, -1) })
	mustPanic(t, func() { Percentile(xs, 101) })
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count = %d", i, c)
		}
	}
	// Out-of-range values clamp into edge bins.
	h.Add(-5)
	h.Add(99)
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Fatalf("clamping wrong: %v", h.Counts)
	}
	if h.Total() != 12 {
		t.Fatalf("Total = %d", h.Total())
	}
	mustPanic(t, func() { NewHistogram(0, 0, 5) })
	mustPanic(t, func() { NewHistogram(0, 1, 0) })
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median estimate %v too far from 50", med)
	}
	if q := h.Quantile(1); q < 99 || q > 100 {
		t.Fatalf("q1.0 = %v", q)
	}
	mustPanic(t, func() { NewHistogram(0, 1, 3).Quantile(0.5) })
	mustPanic(t, func() { h.Quantile(1.5) })
}

func TestBootstrapMeanCI(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	lo, hi := BootstrapMeanCI(xs, 0.95, 500, r.Float64)
	if lo > hi {
		t.Fatalf("inverted CI [%v, %v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%v, %v] excludes true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Fatalf("CI [%v, %v] implausibly wide", lo, hi)
	}
	mustPanic(t, func() { BootstrapMeanCI(nil, 0.95, 10, r.Float64) })
	mustPanic(t, func() { BootstrapMeanCI(xs, 1.0, 10, r.Float64) })
	mustPanic(t, func() { BootstrapMeanCI(xs, 0.95, 0, r.Float64) })
}
