package stats

// Window is a fixed-capacity sliding window over a float64 stream with O(1)
// amortized mean/sum queries. The bandit layer uses windows to keep arm
// reward estimates responsive when rewards are nonstationary (a group's
// marginal usefulness decays as the learner saturates on it), and the
// early-stopping detector uses one to hold the recent quality curve.
type Window struct {
	buf   []float64
	head  int
	count int
	sum   float64
}

// NewWindow returns a window holding at most capacity values. It panics if
// capacity <= 0.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic("stats: Window capacity must be positive")
	}
	return &Window{buf: make([]float64, capacity)}
}

// Add pushes x, evicting the oldest value when full.
func (w *Window) Add(x float64) {
	if w.count == len(w.buf) {
		w.sum -= w.buf[w.head]
	} else {
		w.count++
	}
	w.sum += x
	w.buf[w.head] = x
	w.head = (w.head + 1) % len(w.buf)
	// Periodically rebuild the sum to bound floating-point drift.
	if w.head == 0 {
		w.recompute()
	}
}

func (w *Window) recompute() {
	s := 0.0
	for i := 0; i < w.count; i++ {
		s += w.at(i)
	}
	w.sum = s
}

// at returns the i-th oldest value (0 = oldest). Caller guarantees i < count.
func (w *Window) at(i int) float64 {
	start := w.head - w.count
	if start < 0 {
		start += len(w.buf)
	}
	return w.buf[(start+i)%len(w.buf)]
}

// Len returns the number of stored values.
func (w *Window) Len() int { return w.count }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether the window has reached capacity.
func (w *Window) Full() bool { return w.count == len(w.buf) }

// Sum returns the sum of the stored values.
func (w *Window) Sum() float64 {
	if w.count == 0 {
		return 0
	}
	return w.sum
}

// Mean returns the mean of the stored values, or 0 when empty.
func (w *Window) Mean() float64 {
	if w.count == 0 {
		return 0
	}
	return w.sum / float64(w.count)
}

// Values returns the stored values oldest-first in a new slice.
func (w *Window) Values() []float64 {
	out := make([]float64, w.count)
	for i := 0; i < w.count; i++ {
		out[i] = w.at(i)
	}
	return out
}

// Last returns the newest value. It panics when empty.
func (w *Window) Last() float64 {
	if w.count == 0 {
		panic("stats: Last on empty Window")
	}
	return w.at(w.count - 1)
}

// First returns the oldest value. It panics when empty.
func (w *Window) First() float64 {
	if w.count == 0 {
		panic("stats: First on empty Window")
	}
	return w.at(0)
}

// Reset empties the window without reallocating.
func (w *Window) Reset() {
	w.head, w.count, w.sum = 0, 0, 0
}
