// Package parallel provides the bounded-concurrency primitives shared by
// the rest of the system: ordered fan-out/fan-in over index spaces for the
// experiment harness and the engine hot paths, fixed-granularity chunking
// for deterministic reductions, and a fixed-size worker pool backing the
// serving layer.
//
// Determinism contract: every helper returns (or hands the caller) results
// keyed by index or chunk position, never by completion order. Callers that
// merge floating-point partials must do so in index order; with that rule a
// computation produces identical output for any worker count, which is what
// lets `zombie-bench -parallel N` stay byte-identical to the sequential
// baseline.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n > 0 is used as-is, anything
// else falls back to GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// and returns when all calls have finished. With workers <= 1 (or n <= 1)
// it runs inline on the calling goroutine, so sequential callers pay no
// synchronization. fn must write any output to per-index slots; it must not
// share mutable state across indices.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) with bounded concurrency and returns the results
// in index order regardless of completion order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible jobs. Every job runs to completion (no
// cancellation of siblings); the error returned is the first failure in
// index order — not submission or completion order — so an error surfaced
// to the caller is the same one a sequential loop would have hit first.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// NumChunks returns how many fixed-size chunks cover n items.
func NumChunks(n, chunkSize int) int {
	if n <= 0 {
		return 0
	}
	return (n + chunkSize - 1) / chunkSize
}

// ChunkBounds returns the half-open [lo, hi) bounds of chunk i when n items
// are split into fixed-size chunks.
func ChunkBounds(n, chunkSize, i int) (lo, hi int) {
	lo = i * chunkSize
	hi = lo + chunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// MapChunks splits [0, n) into fixed-size chunks and runs fn over each
// chunk's bounds with bounded concurrency, returning per-chunk results in
// chunk order. Because the chunk boundaries depend only on n and chunkSize
// — never on the worker count — a caller that folds the returned partials
// left-to-right gets an identical result for any worker count, including
// for order-sensitive merges like floating-point sums. It panics if
// chunkSize <= 0.
func MapChunks[T any](workers, n, chunkSize int, fn func(lo, hi int) T) []T {
	if chunkSize <= 0 {
		panic("parallel: MapChunks requires chunkSize > 0")
	}
	chunks := NumChunks(n, chunkSize)
	return Map(workers, chunks, func(i int) T {
		lo, hi := ChunkBounds(n, chunkSize, i)
		return fn(lo, hi)
	})
}
