package parallel

import "sync"

// Pool is a fixed-size worker pool over a bounded task queue. Unlike the
// fork-join helpers in this package, a Pool is long-lived: workers start at
// construction and drain the queue until Close. The serving layer runs its
// asynchronous experiment runs on one; anything needing
// submit-now-execute-later semantics with backpressure can share it.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts workers goroutines over a queue holding up to queueCap
// pending tasks (both floored at 1).
func NewPool(workers, queueCap int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	p := &Pool{tasks: make(chan func(), queueCap)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// TrySubmit enqueues fn without blocking. It reports false when the queue
// is full or the pool is closed; the caller decides how to surface
// backpressure (the server maps it to HTTP 503).
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// QueueDepth returns the number of tasks waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// Cap returns the queue capacity.
func (p *Pool) Cap() int { return cap(p.tasks) }

// Close stops intake. Queued tasks still run; Wait blocks until the
// workers drain them. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}

// Wait blocks until every worker has exited. Callers must Close first or
// Wait blocks forever.
func (p *Pool) Wait() { p.wg.Wait() }
