package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatal("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("fallback must be >= 1")
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		hits := make([]atomic.Int64, n)
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	ForEach(4, -1, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapErrFirstErrorInIndexOrder(t *testing.T) {
	errA := errors.New("a")
	// Index 3 fails fast, index 1 fails slow: the reported error must be
	// index 1's regardless of completion order.
	_, err := MapErr(8, 6, func(i int) (int, error) {
		switch i {
		case 1:
			time.Sleep(20 * time.Millisecond)
			return 0, errA
		case 3:
			return 0, fmt.Errorf("b")
		default:
			return i, nil
		}
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want first-by-index error", err)
	}
}

func TestMapErrNoError(t *testing.T) {
	out, err := MapErr(4, 10, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestChunkBounds(t *testing.T) {
	if NumChunks(0, 10) != 0 || NumChunks(10, 10) != 1 || NumChunks(11, 10) != 2 {
		t.Fatal("NumChunks wrong")
	}
	lo, hi := ChunkBounds(25, 10, 2)
	if lo != 20 || hi != 25 {
		t.Fatalf("bounds = [%d,%d)", lo, hi)
	}
}

func TestMapChunksDeterministicPartition(t *testing.T) {
	n := 1003
	for _, workers := range []int{1, 5} {
		parts := MapChunks(workers, n, 64, func(lo, hi int) int { return hi - lo })
		if len(parts) != NumChunks(n, 64) {
			t.Fatalf("chunks = %d", len(parts))
		}
		total := 0
		for _, p := range parts {
			total += p
		}
		if total != n {
			t.Fatalf("workers=%d: covered %d of %d", workers, total, n)
		}
	}
}

// TestMapChunksFloatMergeStable is the determinism contract: folding chunk
// partials in order yields bit-identical sums for any worker count.
func TestMapChunksFloatMergeStable(t *testing.T) {
	n := 5000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+1)
	}
	sum := func(workers int) float64 {
		parts := MapChunks(workers, n, 256, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		})
		total := 0.0
		for _, p := range parts {
			total += p
		}
		return total
	}
	base := sum(1)
	for _, workers := range []int{2, 3, 8, 32} {
		if got := sum(workers); got != base {
			t.Fatalf("workers=%d: sum %v != sequential %v", workers, got, base)
		}
	}
}

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(3, 16)
	var count atomic.Int64
	for i := 0; i < 10; i++ {
		if !p.TrySubmit(func() { count.Add(1) }) {
			t.Fatal("submit refused")
		}
	}
	p.Close()
	p.Wait()
	if count.Load() != 10 {
		t.Fatalf("ran %d of 10", count.Load())
	}
}

func TestPoolBackpressureAndClose(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	p.TrySubmit(func() { defer wg.Done(); <-block }) // occupies the worker
	// Fill the single queue slot, then the next submit must be refused.
	filled := p.TrySubmit(func() {})
	// The worker may have already dequeued the first task, freeing a slot;
	// keep filling until refused to make the test robust.
	for filled {
		filled = p.TrySubmit(func() {})
	}
	if p.QueueDepth() > p.Cap() {
		t.Fatalf("queue depth %d exceeds cap %d", p.QueueDepth(), p.Cap())
	}
	close(block)
	p.Close()
	if p.TrySubmit(func() {}) {
		t.Fatal("submit accepted after Close")
	}
	p.Close() // idempotent
	p.Wait()
	wg.Wait()
}
