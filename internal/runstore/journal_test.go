package runstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func appendAll(t *testing.T, j *Journal, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := j.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
}

func replayAll(t *testing.T, path string) ([]string, *Journal) {
	t.Helper()
	var got []string
	j, err := OpenJournal(path, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return got, j
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "one", "two", "three")
	if j.Records() != 3 {
		t.Fatalf("Records = %d, want 3", j.Records())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, j2 := replayAll(t, path)
	defer j2.Close()
	if len(got) != 3 || got[0] != "one" || got[1] != "two" || got[2] != "three" {
		t.Fatalf("replay = %v, want [one two three]", got)
	}
	// Appending after a replayed open continues the stream.
	appendAll(t, j2, "four")
	j2.Close()
	got, j3 := replayAll(t, path)
	defer j3.Close()
	if len(got) != 4 || got[3] != "four" {
		t.Fatalf("replay after re-append = %v", got)
	}
}

// TestJournalTornTail covers every tail state a crash can leave: a short
// length prefix, a half-written payload, and a payload whose checksum
// does not match. Each must recover the good prefix and truncate the
// damage so subsequent appends land on a valid stream.
func TestJournalTornTail(t *testing.T) {
	cases := []struct {
		name string
		tear func(b []byte) []byte
	}{
		{"short length prefix", func(b []byte) []byte { return append(b, 0x09, 0x00) }},
		{"half-written payload", func(b []byte) []byte { return append(b, 0x09, 0x00, 0x00, 0x00, 'p', 'a', 'r') }},
		{"corrupt checksum", func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef, 0x01) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "t.wal")
			j, err := OpenJournal(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, j, "alpha", "beta")
			j.Close()

			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.tear(b), 0o644); err != nil {
				t.Fatal(err)
			}

			got, j2 := replayAll(t, path)
			if tc.name == "corrupt checksum" {
				// The checksum tear damages the last record itself.
				if len(got) != 1 || got[0] != "alpha" {
					t.Fatalf("replay = %v, want [alpha]", got)
				}
			} else if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
				t.Fatalf("replay = %v, want [alpha beta]", got)
			}
			// The tail was truncated: appending and reopening yields a clean
			// stream with the new record last.
			appendAll(t, j2, "gamma")
			j2.Close()
			got2, j3 := replayAll(t, path)
			defer j3.Close()
			if len(got2) != len(got)+1 || got2[len(got2)-1] != "gamma" {
				t.Fatalf("replay after heal = %v", got2)
			}
		})
	}
}

func TestJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.wal")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, nil); err == nil {
		t.Fatal("OpenJournal accepted a foreign file")
	}
}

func TestJournalReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "a", "b")
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 0 {
		t.Fatalf("Records after Reset = %d, want 0", j.Records())
	}
	appendAll(t, j, "c")
	j.Close()
	got, j2 := replayAll(t, path)
	defer j2.Close()
	if len(got) != 1 || got[0] != "c" {
		t.Fatalf("replay after Reset = %v, want [c]", got)
	}
}

func TestJournalReplayErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "a")
	j.Close()
	_, err = OpenJournal(path, func([]byte) error { return fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("OpenJournal ignored a replay error")
	}
}

func TestJournalAppendValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(nil); err == nil {
		t.Fatal("Append accepted an empty payload")
	}
}
