// Package runstore is the durable half of the control plane: a
// write-ahead journal plus point-in-time snapshots that let the serving
// layer's run and session state survive a crash. The package is
// deliberately payload-agnostic — callers journal opaque byte records
// and interpret them at recovery — so the same store serves run
// lifecycle transitions and session version history alike.
//
// The on-disk framing reuses the codec proven by internal/featcache's
// disk segments: length-prefixed records, each closed by a CRC32 of its
// payload, appended at the validated end of the file. Records are never
// rewritten, so a crash can only damage the tail, and Open detects a
// torn or garbage tail by checksum and truncates back to the last
// complete record.
package runstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// walMagic brands the journal file so a path pointed at something else
// fails loudly instead of being silently truncated to nothing.
var walMagic = []byte("ZWJ1")

// maxRecordBytes bounds a single journal record. Lifecycle records are
// hundreds of bytes; anything past this is corruption, not data.
const maxRecordBytes = 1 << 26

// Journal is an append-only write-ahead log of opaque records.
//
// Frame layout (all little-endian), after the 4-byte file magic:
//
//	per record: plen u32 | payload | crc32(payload) u32
//
// Append builds the frame in one buffer and writes it with a single
// WriteAt at the validated end of the file, so a crash mid-write leaves
// at most one torn record — exactly what the recovery scan truncates.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64 // bytes of validated data (including magic)
	records int
}

// OpenJournal opens (creating if needed) the journal at path and replays
// every complete record through replay in append order. A torn or
// corrupt tail — the only damage a process crash can inflict on an
// append-only file — is truncated after the last checksum-valid record.
// A replay error aborts the open: the caller's state machine could not
// apply history, and appending past the failure would corrupt it further.
func OpenJournal(path string, replay func(payload []byte) error) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: open journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	if err := j.load(replay); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load validates the header and scans the record stream, truncating a
// torn tail back to the last complete record.
func (j *Journal) load(replay func([]byte) error) error {
	st, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("runstore: stat journal: %w", err)
	}
	if st.Size() == 0 {
		if _, err := j.f.Write(walMagic); err != nil {
			return fmt.Errorf("runstore: write journal header: %w", err)
		}
		j.size = int64(len(walMagic))
		return nil
	}
	header := make([]byte, len(walMagic))
	if _, err := j.f.ReadAt(header, 0); err != nil || string(header) != string(walMagic) {
		return fmt.Errorf("runstore: %s is not a run journal", j.path)
	}
	r := io.NewSectionReader(j.f, int64(len(walMagic)), st.Size()-int64(len(walMagic)))
	good := int64(len(walMagic))
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			break
		}
		plen := binary.LittleEndian.Uint32(lenBuf[:])
		if plen == 0 || plen > maxRecordBytes {
			break
		}
		body := make([]byte, int64(plen)+4)
		if _, err := io.ReadFull(r, body); err != nil {
			break
		}
		payload := body[:plen]
		sum := binary.LittleEndian.Uint32(body[plen:])
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				return fmt.Errorf("runstore: replay journal record %d: %w", j.records, err)
			}
		}
		j.records++
		good += 4 + int64(plen) + 4
	}
	j.size = good
	if good < st.Size() {
		if err := j.f.Truncate(good); err != nil {
			return fmt.Errorf("runstore: truncate torn tail: %w", err)
		}
	}
	return nil
}

// Append durably records one payload. Durability here means "survives a
// process crash": the write lands in the kernel before Append returns,
// so only power loss — out of scope for this store — can lose it.
func (j *Journal) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > maxRecordBytes {
		return fmt.Errorf("runstore: journal payload length %d out of range", len(payload))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("runstore: journal is closed")
	}
	buf := make([]byte, 0, 4+len(payload)+4)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	if _, err := j.f.WriteAt(buf, j.size); err != nil {
		return fmt.Errorf("runstore: append journal record: %w", err)
	}
	j.size += int64(len(buf))
	j.records++
	return nil
}

// Reset discards every record, truncating the file back to its header.
// The store calls it after a snapshot has captured the journaled state.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("runstore: journal is closed")
	}
	if err := j.f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("runstore: reset journal: %w", err)
	}
	j.size = int64(len(walMagic))
	j.records = 0
	return nil
}

// Size returns the journal file's validated size in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Records returns the number of records currently in the journal.
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Close closes the journal file. The journal needs no close-time flush:
// every Append is already on disk.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
