package runstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"zombie/internal/otrace"
)

// Store file names inside the state directory.
const (
	journalFile  = "runs.wal"
	snapshotFile = "state.snap"
	snapshotTmp  = "state.snap.tmp"
)

// snapMagic brands the snapshot file.
var snapMagic = []byte("ZRS1")

// Store combines the write-ahead journal with point-in-time snapshots.
// Every journaled entry carries a monotonically increasing sequence
// number and the snapshot records the last sequence it covers, so
// recovery applies the snapshot and then only the entries journaled
// after it — a crash between the snapshot rename and the journal reset
// replays already-captured entries harmlessly (they are skipped by
// sequence), never twice.
//
// Snapshot layout: magic [4] | body | crc32(body) u32, where body is
// lastSeq u64 | state. The snapshot is written to a temp file and
// renamed into place, so a crash mid-snapshot leaves the previous one
// intact.
type Store struct {
	mu      sync.Mutex
	dir     string
	j       *Journal
	seq     uint64 // last sequence assigned
	snapSeq uint64 // sequence covered by the on-disk snapshot
	tracer  *otrace.Tracer
}

// Open opens (creating if needed) the store in dir and replays state:
// snapshot, if present and valid, receives the most recent snapshot's
// payload; then entry receives every journal record appended after that
// snapshot, in order. Either callback may be nil. A corrupt snapshot is
// an error — recovering from the journal alone would silently resurrect
// pre-snapshot state the journal no longer holds.
func Open(dir string, snapshot func(state []byte) error, entry func(payload []byte) error) (*Store, error) {
	return OpenTraced(dir, snapshot, entry, nil)
}

// OpenTraced is Open with durability spans: recovery is bracketed by one
// "runstore.recover" span (attrs: snapshot/journal bytes replayed), and
// the returned store records a "runstore.append" / "runstore.snapshot"
// span per journal append and snapshot rotation. A nil tracer records
// nothing; tracing is observational and never alters store behavior.
func OpenTraced(dir string, snapshot func(state []byte) error, entry func(payload []byte) error, tracer *otrace.Tracer) (*Store, error) {
	ref := tracer.Start(0, "runstore.recover", otrace.String("dir", dir))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		ref.End()
		return nil, fmt.Errorf("runstore: create state dir: %w", err)
	}
	s := &Store{dir: dir, tracer: tracer}
	state, snapSeq, ok, err := readSnapshot(filepath.Join(dir, snapshotFile))
	if err != nil {
		ref.End()
		return nil, err
	}
	if ok {
		s.snapSeq = snapSeq
		s.seq = snapSeq
		if snapshot != nil {
			if err := snapshot(state); err != nil {
				ref.End()
				return nil, fmt.Errorf("runstore: apply snapshot: %w", err)
			}
		}
	}
	replayed := 0
	j, err := OpenJournal(filepath.Join(dir, journalFile), func(payload []byte) error {
		if len(payload) < 8 {
			return fmt.Errorf("runstore: journal entry shorter than its sequence number")
		}
		seq := binary.LittleEndian.Uint64(payload)
		if seq > s.seq {
			s.seq = seq
		}
		if seq <= s.snapSeq {
			return nil // already captured by the snapshot
		}
		if entry == nil {
			return nil
		}
		replayed++
		return entry(payload[8:])
	})
	if err != nil {
		ref.End()
		return nil, err
	}
	s.j = j
	ref.End(
		otrace.Int("snapshot_bytes", int64(len(state))),
		otrace.Int("replayed", int64(replayed)))
	return s, nil
}

// readSnapshot loads and validates the snapshot file. ok is false when
// the file does not exist; a present-but-corrupt snapshot is an error.
func readSnapshot(path string) (state []byte, lastSeq uint64, ok bool, err error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("runstore: read snapshot: %w", err)
	}
	if len(b) < len(snapMagic)+8+4 || string(b[:len(snapMagic)]) != string(snapMagic) {
		return nil, 0, false, fmt.Errorf("runstore: %s is not a state snapshot", path)
	}
	body := b[len(snapMagic) : len(b)-4]
	sum := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, 0, false, fmt.Errorf("runstore: snapshot %s fails its checksum", path)
	}
	return body[8:], binary.LittleEndian.Uint64(body), true, nil
}

// Append journals one entry, assigning it the next sequence number.
func (s *Store) Append(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref := s.tracer.Start(0, "runstore.append", otrace.Int("bytes", int64(len(payload))))
	defer ref.End()
	s.seq++
	buf := make([]byte, 0, 8+len(payload))
	buf = binary.LittleEndian.AppendUint64(buf, s.seq)
	buf = append(buf, payload...)
	if err := s.j.Append(buf); err != nil {
		s.seq-- // the entry never existed
		return err
	}
	return nil
}

// Snapshot atomically captures state as covering everything journaled so
// far, then resets the journal. A crash at any point leaves a recoverable
// pair: before the rename the old snapshot + full journal, after it the
// new snapshot + a journal whose entries recovery skips by sequence.
func (s *Store) Snapshot(state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref := s.tracer.Start(0, "runstore.snapshot", otrace.Int("bytes", int64(len(state))))
	defer ref.End()
	body := make([]byte, 0, 8+len(state))
	body = binary.LittleEndian.AppendUint64(body, s.seq)
	body = append(body, state...)
	out := make([]byte, 0, len(snapMagic)+len(body)+4)
	out = append(out, snapMagic...)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	tmp := filepath.Join(s.dir, snapshotTmp)
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return fmt.Errorf("runstore: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return fmt.Errorf("runstore: install snapshot: %w", err)
	}
	s.snapSeq = s.seq
	return s.j.Reset()
}

// JournalBytes returns the journal file's current size.
func (s *Store) JournalBytes() int64 { return s.j.Size() }

// JournalRecords returns the number of entries in the journal (since the
// last snapshot).
func (s *Store) JournalRecords() int { return s.j.Records() }

// Seq returns the last assigned sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Close closes the journal. Callers snapshot first when they want the
// fast recovery path; a skipped snapshot only costs the next Open a
// journal replay, never data.
func (s *Store) Close() error {
	return s.j.Close()
}
