package runstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stateMachine is a toy reducer: snapshot = comma-joined history, entry =
// one item appended. It stands in for the server's persistState.
type stateMachine struct {
	items []string
}

func (m *stateMachine) snapshot(state []byte) error {
	if len(state) == 0 {
		return nil
	}
	m.items = strings.Split(string(state), ",")
	return nil
}

func (m *stateMachine) entry(payload []byte) error {
	m.items = append(m.items, string(payload))
	return nil
}

func (m *stateMachine) encode() []byte { return []byte(strings.Join(m.items, ",")) }

func openMachine(t *testing.T, dir string) (*stateMachine, *Store) {
	t.Helper()
	m := &stateMachine{}
	s, err := Open(dir, m.snapshot, m.entry)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m, s
}

func TestStoreJournalOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	_, s := openMachine(t, dir)
	for _, v := range []string{"a", "b", "c"} {
		if err := s.Append([]byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	m2, s2 := openMachine(t, dir)
	defer s2.Close()
	if got := strings.Join(m2.items, ","); got != "a,b,c" {
		t.Fatalf("recovered %q, want a,b,c", got)
	}
	if s2.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", s2.Seq())
	}
}

func TestStoreSnapshotPlusJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	m, s := openMachine(t, dir)
	for _, v := range []string{"a", "b"} {
		if err := s.Append([]byte(v)); err != nil {
			t.Fatal(err)
		}
		m.entry([]byte(v))
	}
	if err := s.Snapshot(m.encode()); err != nil {
		t.Fatal(err)
	}
	if s.JournalRecords() != 0 {
		t.Fatalf("journal holds %d records after snapshot, want 0", s.JournalRecords())
	}
	if err := s.Append([]byte("c")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	m2, s2 := openMachine(t, dir)
	defer s2.Close()
	if got := strings.Join(m2.items, ","); got != "a,b,c" {
		t.Fatalf("recovered %q, want a,b,c", got)
	}
	// Sequence numbers continue past the snapshot across restarts.
	if s2.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", s2.Seq())
	}
	if err := s2.Append([]byte("d")); err != nil {
		t.Fatal(err)
	}
	if s2.Seq() != 4 {
		t.Fatalf("Seq after append = %d, want 4", s2.Seq())
	}
}

// TestStoreCrashBetweenRenameAndReset simulates the one window where
// snapshot and journal can disagree: the new snapshot is installed but
// the process dies before the journal reset. Recovery must skip the
// journal entries the snapshot already covers — applying them twice
// would double history.
func TestStoreCrashBetweenRenameAndReset(t *testing.T) {
	dir := t.TempDir()
	m, s := openMachine(t, dir)
	for _, v := range []string{"a", "b"} {
		if err := s.Append([]byte(v)); err != nil {
			t.Fatal(err)
		}
		m.entry([]byte(v))
	}
	// Capture the journal as it stands, snapshot (which resets it), then
	// put the old journal back — exactly the disk state of a crash between
	// the rename and the reset.
	walPath := filepath.Join(dir, journalFile)
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(m.encode()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(walPath, wal, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, s2 := openMachine(t, dir)
	defer s2.Close()
	if got := strings.Join(m2.items, ","); got != "a,b" {
		t.Fatalf("recovered %q, want a,b (no double-apply)", got)
	}
	if s2.Seq() != 2 {
		t.Fatalf("Seq = %d, want 2", s2.Seq())
	}
}

// TestStoreReplayEquivalence drives the same entry sequence through two
// stores — one snapshotting mid-stream, one never — and asserts both
// recover to identical state.
func TestStoreReplayEquivalence(t *testing.T) {
	entries := []string{"s1", "s2", "s3", "s4", "s5", "s6", "s7"}
	snapAt := 4

	dirSnap, dirPlain := t.TempDir(), t.TempDir()
	mSnap, sSnap := openMachine(t, dirSnap)
	_, sPlain := openMachine(t, dirPlain)
	for i, v := range entries {
		if err := sSnap.Append([]byte(v)); err != nil {
			t.Fatal(err)
		}
		mSnap.entry([]byte(v))
		if err := sPlain.Append([]byte(v)); err != nil {
			t.Fatal(err)
		}
		if i == snapAt {
			if err := sSnap.Snapshot(mSnap.encode()); err != nil {
				t.Fatal(err)
			}
		}
	}
	sSnap.Close()
	sPlain.Close()

	m1, s1 := openMachine(t, dirSnap)
	defer s1.Close()
	m2, s2 := openMachine(t, dirPlain)
	defer s2.Close()
	if a, b := strings.Join(m1.items, ","), strings.Join(m2.items, ","); a != b {
		t.Fatalf("snapshot+journal state %q != journal-only state %q", a, b)
	}
	if s1.Seq() != s2.Seq() {
		t.Fatalf("Seq diverged: %d vs %d", s1.Seq(), s2.Seq())
	}
}

func TestStoreCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	m, s := openMachine(t, dir)
	if err := s.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	m.entry([]byte("a"))
	if err := s.Snapshot(m.encode()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, snapshotFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil, nil); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

func TestStoreSnapshotCrashMidWriteKeepsOld(t *testing.T) {
	dir := t.TempDir()
	m, s := openMachine(t, dir)
	if err := s.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	m.entry([]byte("a"))
	if err := s.Snapshot(m.encode()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// A crash mid-write leaves a stray temp file; it must be ignored.
	if err := os.WriteFile(filepath.Join(dir, snapshotTmp), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	m2, s2 := openMachine(t, dir)
	defer s2.Close()
	if got := strings.Join(m2.items, ","); got != "a" {
		t.Fatalf("recovered %q, want a", got)
	}
}

func TestStoreEntryErrorAbortsOpen(t *testing.T) {
	dir := t.TempDir()
	_, s := openMachine(t, dir)
	if err := s.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, err := Open(dir, nil, func([]byte) error { return fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("Open ignored an entry replay error")
	}
}
