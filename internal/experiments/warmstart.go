package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"zombie/internal/core"
	"zombie/internal/featcache"
	"zombie/internal/featurepipe"
	"zombie/internal/recipe"
)

// sessionWarmstartDecay is the warm-start decay the S1 experiment uses —
// the same 0.5 zombie-serve defaults sessions to, so the experiment
// validates the shipped default. Half trust beats full trust here: with
// decay 1.0 the seeded posterior occasionally over-commits to a group
// whose usefulness density hurts early F1 on an adverse corpus draw, and
// a single such run can erase the aggregate saving.
const sessionWarmstartDecay = 0.5

// sessionWarmstartTrials is how many independent corpora the comparison
// repeats over. Time-to-quality crossings are noisy near flat curve
// regions, and a fixed corpus correlates the trials, so each trial draws
// its own corpus and the claim is asserted on the aggregate.
const sessionWarmstartTrials = 7

// warmstartTrial is one corpus draw's warm-vs-cold pair.
type warmstartTrial struct {
	corpusSeed  int64
	v1Quality   float64
	target      float64
	coldTo      int // inputs for the cold v2 to reach target (capped when unreached)
	warmTo      int
	coldReached bool
	warmReached bool
	seededPulls int64
}

// saved is the trial's margin: inputs the warm start saved over the cold
// restart (negative when warm was slower).
func (t warmstartTrial) saved() int { return t.coldTo - t.warmTo }

// sessionWarmstartOutcome is the raw material S1 and its bench entry
// share.
type sessionWarmstartOutcome struct {
	trials     []warmstartTrial
	totalSaved int
	medianCold int
	medianWarm int
}

// degenerate reports whether the comparison carries no signal: every
// trial's v1 plateaued at quality 0, so the 95%-of-plateau target is 0
// and both paths trivially "reach" it at zero inputs.
func (o *sessionWarmstartOutcome) degenerate() bool {
	for _, t := range o.trials {
		if t.target > 0 {
			return false
		}
	}
	return true
}

// runSessionWarmstart runs the warm-vs-cold comparison: recipe v1 (three
// wiki parts), then v2 with one part edited, once in a decay-0 session
// (v2 restarts cold) and once in a decay-0.5 session (v2's bandit is
// seeded from v1's arm statistics) — repeated over independent corpus
// draws. Each trial opens its own extraction cache: generated corpora
// reuse input IDs ("wiki-0001" exists in every draw), so a shared cache
// would serve one corpus's extractions for another's inputs. Within a
// trial both paths share the trial's cache, so the comparison isolates
// the bandit warm start.
func runSessionWarmstart(cfg Config) (*sessionWarmstartOutcome, error) {
	cfg = cfg.withDefaults()
	out := &sessionWarmstartOutcome{}
	for i := 0; i < sessionWarmstartTrials; i++ {
		trialCfg := cfg
		trialCfg.Seed = cfg.Seed + int64(i)*7919 // distinct corpus per trial
		trial := warmstartTrial{corpusSeed: trialCfg.Seed}
		wl, err := WikiWorkload(trialCfg)
		if err != nil {
			return nil, err
		}
		groups, err := wl.Groups(wl.DefaultK, trialCfg.Seed+1)
		if err != nil {
			return nil, err
		}
		v1, err := recipe.New("s1", []recipe.Part{
			{Name: "base", Kind: "wiki", Version: 2},
			{Name: "mid", Kind: "wiki", Version: 4, Deps: []string{"base"}},
			{Name: "top", Kind: "wiki", Version: 5, Deps: []string{"mid"}},
		})
		if err != nil {
			return nil, err
		}
		edited := append([]recipe.Part(nil), v1.Parts()...)
		for j := range edited {
			if edited[j].Name == "top" {
				edited[j].Version = 6
			}
		}
		v2, err := recipe.New("s1", edited)
		if err != nil {
			return nil, err
		}
		cache, err := featcache.Open(featcache.Config{}, featurepipe.ResultCodec{})
		if err != nil {
			return nil, err
		}
		for _, decay := range []float64{0, sessionWarmstartDecay} {
			engCfg := core.Config{
				Policy:    "thompson",
				Seed:      trialCfg.Seed + 2,
				MaxInputs: trialCfg.n(3000),
				EvalEvery: 25,
				Cache:     cache,
			}
			s, err := recipe.NewSession("s1", wl.Task, groups, recipe.Config{Engine: engCfg, Decay: decay})
			if err != nil {
				cache.Close()
				return nil, err
			}
			r1, err := s.Submit(context.Background(), v1)
			if err != nil {
				cache.Close()
				return nil, err
			}
			r2, err := s.Submit(context.Background(), v2)
			if err != nil {
				cache.Close()
				return nil, err
			}
			target := wl.QualityTarget * r1.Run.FinalQuality
			to, _, reached := r2.Run.InputsToQuality(target)
			if !reached {
				to = r2.Run.InputsProcessed + 1 // rank unreached below any crossing
			}
			if decay == 0 {
				trial.v1Quality = r1.Run.FinalQuality
				trial.target = target
				trial.coldTo, trial.coldReached = to, reached
			} else {
				trial.warmTo, trial.warmReached = to, reached
				trial.seededPulls = r2.WarmStart.SeededPulls
			}
		}
		cache.Close()
		out.trials = append(out.trials, trial)
		out.totalSaved += trial.saved()
	}
	out.medianCold = medianInt(out.trials, func(t warmstartTrial) int { return t.coldTo })
	out.medianWarm = medianInt(out.trials, func(t warmstartTrial) int { return t.warmTo })
	// The acceptance claim: across independent corpus draws, warm-started
	// edits re-reach the previous version's plateau quality in fewer total
	// inputs than cold restarts. This is asserted, not just reported — a
	// regression that breaks seeding fails the experiment instead of
	// silently printing a worse table. The one exemption is the degenerate
	// zero-target case (every trial's v1 plateaued at 0), where both paths
	// trivially "reach" the target immediately and no comparison is
	// possible.
	if !out.degenerate() && out.totalSaved <= 0 {
		return nil, fmt.Errorf("experiments: S1: warm start saved %d inputs over %d independent corpora — expected a positive saving",
			out.totalSaved, len(out.trials))
	}
	return out, nil
}

// medianInt returns the median of pick over the trials.
func medianInt(trials []warmstartTrial, pick func(warmstartTrial) int) int {
	vals := make([]int, len(trials))
	for i, t := range trials {
		vals[i] = pick(t)
	}
	sort.Ints(vals)
	return vals[len(vals)/2]
}

// S1SessionWarmstart reproduces the session workspace's core claim (an
// extension beyond the paper): after editing one recipe part, seeding the
// new version's bandit from the previous version's arm statistics re-
// reaches plateau quality in fewer inputs than restarting cold, in
// aggregate over independent corpus draws. Wall-clock timings stay out of
// the table; zombie-bench's session_warmstart block carries the same
// comparison for CI diffing.
func S1SessionWarmstart(cfg Config, w io.Writer) error {
	out, err := runSessionWarmstart(cfg)
	if err != nil {
		return err
	}
	table := &Table{
		ID:     "S1",
		Title:  "Warm-vs-cold recipe session (edit one part of three, wiki, thompson)",
		Header: []string{"corpus-seed", "v1-plateau", "target", "cold-to-target", "warm-to-target", "saved", "seeded-pulls"},
	}
	cell := func(to int, reached bool) string {
		if !reached {
			return "n/a"
		}
		return d(to)
	}
	for _, tr := range out.trials {
		table.AddRow(fmt.Sprintf("%d", tr.corpusSeed), f(tr.v1Quality), f(tr.target),
			cell(tr.coldTo, tr.coldReached), cell(tr.warmTo, tr.warmReached),
			d(tr.saved()), fmt.Sprintf("%d", tr.seededPulls))
	}
	verdict := fmt.Sprintf("total inputs saved by the warm start over %d independent corpora: %d (decay %.1f; asserted > 0)",
		len(out.trials), out.totalSaved, sessionWarmstartDecay)
	if out.degenerate() {
		verdict = "degenerate at this scale: every v1 plateaued at quality 0, no comparison possible"
	}
	table.Notes = append(table.Notes,
		verdict,
		fmt.Sprintf("median inputs to re-reach v1 plateau: cold %d, warm %d", out.medianCold, out.medianWarm),
		"each trial draws its own corpus and extraction cache; within a trial both paths share the cache, isolating the bandit warm start",
	)
	return table.Fprint(w)
}

// SessionWarmstartBenchEntry is the warm-vs-cold block zombie-bench
// writes to its JSON report when the bench includes S1.
type SessionWarmstartBenchEntry struct {
	Trials int `json:"trials"`
	// MedianColdInputs / MedianWarmInputs are the median inputs v2 needed
	// to re-reach 95% of v1's plateau quality, cold vs warm-started.
	MedianColdInputs int `json:"median_cold_inputs"`
	MedianWarmInputs int `json:"median_warm_inputs"`
	// InputsSavedTotal is the asserted quantity: summed over the trials,
	// how many fewer inputs the warm-started v2 needed than the cold one.
	InputsSavedTotal int  `json:"inputs_saved_total"`
	Degenerate       bool `json:"degenerate,omitempty"`
}

// SessionWarmstartBench runs the S1 comparison for the bench report.
func SessionWarmstartBench(cfg Config) (*SessionWarmstartBenchEntry, error) {
	out, err := runSessionWarmstart(cfg)
	if err != nil {
		return nil, err
	}
	return &SessionWarmstartBenchEntry{
		Trials:           len(out.trials),
		MedianColdInputs: out.medianCold,
		MedianWarmInputs: out.medianWarm,
		InputsSavedTotal: out.totalSaved,
		Degenerate:       out.degenerate(),
	}, nil
}
