package experiments

import (
	"fmt"
	"sort"
	"time"

	"zombie/internal/bandit"
	"zombie/internal/core"
	"zombie/internal/index"
	"zombie/internal/parallel"
)

// comparison is the time-to-quality contest between the random-scan
// baseline and Zombie on one workload — the primitive most experiments
// are built from.
type comparison struct {
	Target        float64
	Scan          *core.RunResult
	Zombie        *core.RunResult
	ScanInputs    int
	ZombieInputs  int
	ScanSim       time.Duration
	ZombieSim     time.Duration
	ScanReached   bool
	ZombieReached bool
}

// SpeedupInputs is how many times fewer inputs Zombie needed. Crossings
// at input 0 (a target already met by the floor) clamp to one evaluation
// interval so degenerate tiny-scale runs report 1x rather than dividing
// by zero.
func (c *comparison) SpeedupInputs() float64 {
	if !c.ScanReached || !c.ZombieReached {
		return 0
	}
	scan, zombie := c.ScanInputs, c.ZombieInputs
	if scan < 1 {
		scan = 1
	}
	if zombie < 1 {
		zombie = 1
	}
	return float64(scan) / float64(zombie)
}

// SpeedupSim is the simulated-time speedup, with the same degenerate-case
// clamping as SpeedupInputs.
func (c *comparison) SpeedupSim() float64 {
	if !c.ScanReached || !c.ZombieReached {
		return 0
	}
	scan, zombie := c.ScanSim, c.ZombieSim
	if scan <= 0 {
		scan = 1
	}
	if zombie <= 0 {
		zombie = 1
	}
	return float64(scan) / float64(zombie)
}

// engineFor builds the standard experiment engine: no early stop, no
// budget, usefulness reward unless overridden by mutate.
func engineFor(policy bandit.Spec, seed int64, mutate func(*core.Config)) (*core.Engine, error) {
	cfg := core.Config{Policy: policy, Seed: seed}
	if mutate != nil {
		mutate(&cfg)
	}
	return core.New(cfg)
}

// policyFor resolves the effective policy: the workload's default when
// set, otherwise the experiment's requested spec.
func policyFor(w *Workload, requested bandit.Spec) bandit.Spec {
	if w.Policy != "" {
		return w.Policy
	}
	return requested
}

// compareToTarget runs the random scan and Zombie to pool exhaustion and
// locates the first curve point of each at targetFrac of the scan's final
// quality.
func compareToTarget(w *Workload, groups *index.Groups, policy bandit.Spec, targetFrac float64, seed int64, mutate func(*core.Config)) (*comparison, error) {
	eng, err := engineFor(policyFor(w, policy), seed, withWorkloadDefaults(w, mutate))
	if err != nil {
		return nil, err
	}
	scan, err := eng.RunScan(w.Task, true)
	if err != nil {
		return nil, fmt.Errorf("experiments: scan run: %w", err)
	}
	zombie, err := eng.Run(w.Task, groups)
	if err != nil {
		return nil, fmt.Errorf("experiments: zombie run: %w", err)
	}
	// Base the target on the worse of the two finals so both runs reach
	// it by construction; frac < 1 relaxes positive metrics (F1), frac > 1
	// relaxes negative ones (-RMSE).
	base := scan.FinalQuality
	if zombie.FinalQuality < base {
		base = zombie.FinalQuality
	}
	target := targetFrac * base
	c := &comparison{Target: target, Scan: scan, Zombie: zombie}
	c.ScanInputs, c.ScanSim, c.ScanReached = scan.InputsToQuality(target)
	c.ZombieInputs, c.ZombieSim, c.ZombieReached = zombie.InputsToQuality(target)
	return c, nil
}

// compareMedian repeats compareToTarget over `trials` seeds — concurrently
// up to workers — and returns the trial with the median input-speedup.
// Time-to-quality crossings are noisy near flat curve regions; the median
// trial is what the tables report. Each trial's seed is a function of its
// index and the runs sort by speedup after all complete, so the median is
// identical for any worker count.
func compareMedian(w *Workload, groups *index.Groups, policy bandit.Spec, targetFrac float64, seed int64, trials, workers int, mutate func(*core.Config)) (*comparison, error) {
	if trials < 1 {
		trials = 1
	}
	runs, err := parallel.MapErr(workers, trials, func(i int) (*comparison, error) {
		return compareToTarget(w, groups, policy, targetFrac, seed+int64(1000*i), mutate)
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(runs, func(a, b int) bool { return runs[a].SpeedupInputs() < runs[b].SpeedupInputs() })
	return runs[len(runs)/2], nil
}

// withWorkloadDefaults layers the workload's default reward under the
// caller's mutation.
func withWorkloadDefaults(w *Workload, mutate func(*core.Config)) func(*core.Config) {
	return func(c *core.Config) {
		c.Reward = w.Reward
		if w.RewardSubsample > 0 {
			c.RewardSubsample = w.RewardSubsample
		}
		var zero bandit.StatsConfig
		if w.PolicyStats != zero {
			c.PolicyStats = w.PolicyStats
		}
		if mutate != nil {
			mutate(c)
		}
	}
}

// runStrategy executes one named selection strategy on a workload: the
// zombie policies, the scans, or the oracle. Used by the ablations that
// sweep strategies.
func runStrategy(w *Workload, groups *index.Groups, strategy string, policy bandit.Spec, seed int64, mutate func(*core.Config)) (*core.RunResult, error) {
	eng, err := engineFor(policyFor(w, policy), seed, withWorkloadDefaults(w, mutate))
	if err != nil {
		return nil, err
	}
	switch strategy {
	case "zombie":
		return eng.Run(w.Task, groups)
	case "scan-random":
		return eng.RunScan(w.Task, true)
	case "scan-sequential":
		return eng.RunScan(w.Task, false)
	case "oracle":
		return eng.RunOracle(w.Task)
	default:
		return nil, fmt.Errorf("experiments: unknown strategy %q", strategy)
	}
}
