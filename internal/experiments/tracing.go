package experiments

import (
	"fmt"
	"reflect"
	"runtime"

	"zombie/internal/core"
	"zombie/internal/otrace"
)

// TracingBenchEntry is the span-tracer overhead block zombie-bench writes
// to its JSON report: the reference wiki zombie run timed with the span
// tracer off and on. Overhead is traced wall over untraced wall — the
// number the bench gate holds under 1.05, making the "observational and
// near-free" contract a measured artifact rather than a claim. Both runs
// execute in this same process back to back, so the ratio is
// hardware-independent in a way comparing absolute wall times across
// BENCH_*.json files is not.
type TracingBenchEntry struct {
	// UntracedWallSeconds and TracedWallSeconds are each side's best
	// timing sample — informational; the gate reads Overhead.
	UntracedWallSeconds float64 `json:"untraced_wall_seconds"`
	TracedWallSeconds   float64 `json:"traced_wall_seconds"`
	// Overhead is the ratio of the two minima — each side's
	// interference-free floor (see TracingBench for why min/min).
	Overhead float64 `json:"overhead"`
	// Spans is the number of spans the traced run recorded; Dropped how
	// many its bounded buffer refused.
	Spans   int   `json:"spans"`
	Dropped int64 `json:"dropped"`
	// ByteIdentical reports whether the traced run's curve and quarantine
	// list matched the untraced run exactly — the determinism contract,
	// re-proven on every bench run.
	ByteIdentical bool `json:"byte_identical"`
}

// TracingBench runs the standard wiki zombie loop twice — without and
// with a span tracer — and reports the wall-time overhead and whether the
// results stayed byte-identical.
func TracingBench(cfg Config) (*TracingBenchEntry, error) {
	cfg = cfg.withDefaults()
	wl, err := WikiWorkload(cfg)
	if err != nil {
		return nil, err
	}
	groups, err := wl.Groups(wl.DefaultK, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	run := func(tracer *otrace.Tracer) (*core.RunResult, error) {
		eng, err := engineFor(policyFor(wl, "eps-greedy:0.1"), cfg.Seed+2,
			withWorkloadDefaults(wl, func(c *core.Config) { c.Tracer = tracer }))
		if err != nil {
			return nil, err
		}
		return eng.Run(wl.Task, groups)
	}
	// The reference run is short (tens of milliseconds at bench scale), so
	// a single traced/untraced pair would gate on scheduler noise, not on
	// the tracer. Each side instead gets many interleaved runs and keeps
	// its minimum wall time — a run's floor is its interference-free cost,
	// so min/min isolates the tracer's true overhead the way a mean or a
	// single pair cannot on a busy box. Every sample starts on a forced GC
	// (what testing.B does) so allocation debt from outside the timed
	// region — the traced side's buffer setup especially — cannot trigger
	// a collection inside whichever run executes next.
	const rounds = 16
	sample := func(tracer *otrace.Tracer) (*core.RunResult, float64, error) {
		runtime.GC()
		r, err := run(tracer)
		if err != nil {
			return nil, 0, err
		}
		return r, r.WallTime.Seconds(), nil
	}
	var plain, traced *core.RunResult
	var plainWall, tracedWall float64
	var spans []otrace.Span
	var dropped int64
	// One tracer reused (via Reset) across every traced round: fresh
	// per-round buffers would grow the traced side's heap and pull GC
	// cycles into only its runs.
	tracer := otrace.New("bench-tracing", otrace.DefaultCapacity)
	for i := 0; i < rounds; i++ {
		p, pw, err := sample(nil)
		if err != nil {
			return nil, err
		}
		tracer.Reset()
		tr, tw, err := sample(tracer)
		if err != nil {
			return nil, err
		}
		if plain == nil || pw < plainWall {
			plainWall = pw
		}
		if traced == nil || tw < tracedWall {
			tracedWall = tw
		}
		plain, traced = p, tr
		spans, dropped = tracer.Snapshot()
	}
	overhead := 0.0
	if plainWall > 0 {
		overhead = tracedWall / plainWall
	}
	entry := &TracingBenchEntry{
		UntracedWallSeconds: plainWall,
		TracedWallSeconds:   tracedWall,
		Overhead:            overhead,
		Spans:               len(spans),
		Dropped:             dropped,
		ByteIdentical: reflect.DeepEqual(plain.Curve, traced.Curve) &&
			reflect.DeepEqual(plain.Quarantined, traced.Quarantined) &&
			plain.Stop == traced.Stop,
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("experiments: traced reference run recorded no spans")
	}
	return entry, nil
}
