package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunBenchSequential: a Parallel=1 bench times each experiment and
// omits the baseline fields.
func TestRunBenchSequential(t *testing.T) {
	var out bytes.Buffer
	report, err := RunBench(tiny, []string{"T1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Experiments) != 1 {
		t.Fatalf("entries = %d", len(report.Experiments))
	}
	e := report.Experiments[0]
	if e.ID != "T1" || e.WallSeconds <= 0 || e.OutputBytes != out.Len() {
		t.Fatalf("entry malformed: %+v (output %d bytes)", e, out.Len())
	}
	if e.ByteIdentical != nil || e.SequentialWallSeconds != 0 {
		t.Fatalf("sequential bench must not carry baseline fields: %+v", e)
	}
	if !strings.Contains(out.String(), "=== T1") {
		t.Fatal("experiment output missing from writer")
	}
	if report.Version == "" || report.Commit == "" {
		t.Fatalf("report missing build identity: version=%q commit=%q", report.Version, report.Commit)
	}
	tr := report.Tracing
	if tr == nil {
		t.Fatal("tracing block missing from bench report")
	}
	if tr.UntracedWallSeconds <= 0 || tr.TracedWallSeconds <= 0 || tr.Overhead <= 0 || tr.Spans == 0 {
		t.Fatalf("tracing timings malformed: %+v", tr)
	}
	if !tr.ByteIdentical {
		t.Fatalf("traced reference run diverged from untraced: %+v", tr)
	}
}

// TestRunBenchParallelBaseline: with Parallel > 1 the bench re-runs the
// sequential baseline and checks byte identity (T2 has no wall-clock
// columns, so it must match).
func TestRunBenchParallelBaseline(t *testing.T) {
	cfg := tiny
	cfg.Parallel = 4
	var out bytes.Buffer
	report, err := RunBench(cfg, []string{"T2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	e := report.Experiments[0]
	if e.SequentialWallSeconds <= 0 || e.Speedup <= 0 {
		t.Fatalf("baseline fields missing: %+v", e)
	}
	if e.ByteIdentical == nil || !*e.ByteIdentical {
		t.Fatalf("T2 must be byte-identical across worker counts: %+v", e)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round BenchReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if round.Parallel != 4 || len(round.Experiments) != 1 {
		t.Fatalf("round-trip mismatch: %+v", round)
	}
}

// TestRunBenchCacheIteration: benching C1 fills the cold-vs-warm cache
// timing block, and the warm replay reproduces the cold pass.
func TestRunBenchCacheIteration(t *testing.T) {
	var out bytes.Buffer
	report, err := RunBench(tiny, []string{"C1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	ci := report.CacheIteration
	if ci == nil {
		t.Fatal("cache_iteration block missing from C1 bench")
	}
	if ci.ColdWallSeconds <= 0 || ci.WarmWallSeconds <= 0 || ci.Speedup <= 0 {
		t.Fatalf("cache timings malformed: %+v", ci)
	}
	if !ci.ByteIdentical {
		t.Fatalf("warm replay diverged from cold pass: %+v", ci)
	}
	if ci.WarmHits == 0 || ci.WarmMisses != 0 {
		t.Fatalf("warm traffic wrong: %+v", ci)
	}
	// Benching T1 alone leaves the block out.
	report, err = RunBench(tiny, []string{"T1"}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if report.CacheIteration != nil {
		t.Fatal("cache_iteration present without C1")
	}
}

// TestRunBenchUnknownID rejects ids the registry does not know.
func TestRunBenchUnknownID(t *testing.T) {
	if _, err := RunBench(tiny, []string{"T9"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown id should fail")
	}
}

// TestRunBenchBatchAndAllocBlocks: every bench report carries the batch
// sweep (with its K=1 identity check green) and the leaf allocs/op block.
func TestRunBenchBatchAndAllocBlocks(t *testing.T) {
	report, err := RunBench(tiny, []string{"T1"}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	bs := report.BatchSweep
	if bs == nil || len(bs.Points) != 3 {
		t.Fatalf("batch_sweep block malformed: %+v", bs)
	}
	if !bs.ByteIdentical {
		t.Fatal("K=1 bench run diverged from the unbatched run")
	}
	for _, p := range bs.Points {
		if p.Inputs <= 0 || p.WallSeconds <= 0 || p.StepsPerSec <= 0 {
			t.Fatalf("batch point malformed: %+v", p)
		}
	}
	if bs.SpeedupK16 <= 0 {
		t.Fatalf("speedup_k16 missing: %+v", bs)
	}
	a := report.Alloc
	if a == nil || a.WikiExtractAllocsPerOp <= 0 || a.HoldoutQualityAllocsPerOp < 0 {
		t.Fatalf("alloc block malformed: %+v", a)
	}
	d := report.Durability
	if d == nil || d.Records <= 0 || d.JournalBytes <= 0 {
		t.Fatalf("durability block malformed: %+v", d)
	}
	if d.AppendMicros <= 0 || d.RecoveryMillis <= 0 || d.SnapshotMillis <= 0 {
		t.Fatalf("durability timings malformed: %+v", d)
	}
	if d.RecoveredRecords != d.Records {
		t.Fatalf("durability recovery replayed %d of %d records", d.RecoveredRecords, d.Records)
	}
}
